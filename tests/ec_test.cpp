#include <gtest/gtest.h>

#include "bigint/u256.h"
#include "ec/curves.h"
#include "test_util.h"

namespace {

using ibbe::bigint::U256;
using ibbe::ec::G1;
using ibbe::ec::G2;
using ibbe::ec::P256Point;
using ibbe::testutil::random_u256;
using ibbe::testutil::rng;

template <typename Point>
class CurveGroupTest : public ::testing::Test {};

using CurveTypes = ::testing::Types<G1, G2, P256Point>;
TYPED_TEST_SUITE(CurveGroupTest, CurveTypes);

TYPED_TEST(CurveGroupTest, GeneratorOnCurve) {
  EXPECT_TRUE(TypeParam::generator().on_curve());
  EXPECT_FALSE(TypeParam::generator().is_infinity());
}

TYPED_TEST(CurveGroupTest, InfinityBehaves) {
  auto inf = TypeParam::infinity();
  auto g = TypeParam::generator();
  EXPECT_TRUE(inf.is_infinity());
  EXPECT_TRUE(inf.on_curve());
  EXPECT_EQ(inf + g, g);
  EXPECT_EQ(g + inf, g);
  EXPECT_TRUE(inf.dbl().is_infinity());
  EXPECT_FALSE(inf.to_affine().has_value());
}

TYPED_TEST(CurveGroupTest, AdditionLaws) {
  auto g = TypeParam::generator();
  auto a = g.scalar_mul(random_u256());
  auto b = g.scalar_mul(random_u256());
  auto c = g.scalar_mul(random_u256());
  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ((a + b) + c, a + (b + c));
  EXPECT_TRUE((a - a).is_infinity());
  EXPECT_TRUE((a + b).on_curve());
}

TYPED_TEST(CurveGroupTest, DoublingMatchesAddition) {
  auto g = TypeParam::generator();
  auto a = g.scalar_mul(random_u256());
  EXPECT_EQ(a.dbl(), a + a);
  EXPECT_TRUE(a.dbl().on_curve());
}

TYPED_TEST(CurveGroupTest, SmallScalarsMatchRepeatedAddition) {
  auto g = TypeParam::generator();
  auto acc = TypeParam::infinity();
  for (std::uint64_t k = 0; k <= 17; ++k) {
    EXPECT_EQ(g.scalar_mul(U256::from_u64(k)), acc) << "k=" << k;
    acc += g;
  }
}

TYPED_TEST(CurveGroupTest, ScalarMulDistributes) {
  auto g = TypeParam::generator();
  U256 a = U256::from_u64(rng()());
  U256 b = U256::from_u64(rng()());
  U256 sum;
  ibbe::bigint::add_with_carry(a, b, sum);
  EXPECT_EQ(g.scalar_mul(a) + g.scalar_mul(b), g.scalar_mul(sum));
}

TYPED_TEST(CurveGroupTest, WnafMatchesDoubleAndAdd) {
  auto g = TypeParam::generator();
  for (int i = 0; i < 10; ++i) {
    U256 k = random_u256();
    EXPECT_EQ(g.scalar_mul_wnaf(k), g.scalar_mul(k));
  }
}

TYPED_TEST(CurveGroupTest, WnafWindowSweep) {
  auto g = TypeParam::generator();
  U256 k = random_u256();
  auto expected = g.scalar_mul(k);
  for (unsigned w : {2u, 3u, 4u, 5u, 6u}) {
    EXPECT_EQ(g.scalar_mul_wnaf(k, w), expected) << "window " << w;
  }
}

TYPED_TEST(CurveGroupTest, WnafEdgeScalars) {
  auto g = TypeParam::generator();
  EXPECT_TRUE(g.scalar_mul_wnaf(U256::zero()).is_infinity());
  EXPECT_EQ(g.scalar_mul_wnaf(U256::one()), g);
  EXPECT_EQ(g.scalar_mul_wnaf(U256::from_u64(2)), g.dbl());
  // All-ones low word exercises long carry chains in the recoding.
  EXPECT_EQ(g.scalar_mul_wnaf(U256::from_u64(~std::uint64_t{0})),
            g.scalar_mul(U256::from_u64(~std::uint64_t{0})));
}

TEST(G1, WnafHandlesGroupOrderNeighborhood) {
  auto g = G1::generator();
  U256 r = ibbe::ec::bn_group_order();
  EXPECT_TRUE(g.scalar_mul_wnaf(r).is_infinity());
  U256 r_minus_1;
  ibbe::bigint::sub_with_borrow(r, U256::one(), r_minus_1);
  EXPECT_EQ(g.scalar_mul_wnaf(r_minus_1), g.neg());
}

// ------------------------------------------------------------ BN specifics

TEST(G1, GeneratorHasOrderR) {
  EXPECT_TRUE(G1::generator().scalar_mul(ibbe::ec::bn_group_order()).is_infinity());
}

TEST(G2, GeneratorHasOrderR) {
  // This also pins down the hard-coded G2 generator constants.
  EXPECT_TRUE(G2::generator().scalar_mul(ibbe::ec::bn_group_order()).is_infinity());
}

TEST(P256, GeneratorHasOrderN) {
  EXPECT_TRUE(P256Point::generator()
                  .scalar_mul(ibbe::field::P256Fr::modulus())
                  .is_infinity());
}

TEST(P256, KnownDoubleOfGenerator) {
  // 2G from the NIST/SECG test vectors.
  auto dbl = P256Point::generator().dbl().to_affine();
  ASSERT_TRUE(dbl.has_value());
  EXPECT_EQ(dbl->first.to_hex(),
            "7cf27b188d034f7e8a52380304b51ac3c08969e277f21b35a60b48fc47669978");
  EXPECT_EQ(dbl->second.to_hex(),
            "07775510db8ed040293d9ac69f7430dbba7dade63ce982299e04b79d227873d1");
}

// ---------------------------------------------------------- serialization

TEST(G1Serialization, RoundTrip) {
  for (int i = 0; i < 10; ++i) {
    G1 p = G1::generator().scalar_mul(random_u256());
    auto bytes = ibbe::ec::g1_to_bytes(p);
    ASSERT_EQ(bytes.size(), ibbe::ec::g1_serialized_size);
    EXPECT_EQ(ibbe::ec::g1_from_bytes(bytes), p);
  }
}

TEST(G1Serialization, InfinityRoundTrip) {
  auto bytes = ibbe::ec::g1_to_bytes(G1::infinity());
  EXPECT_EQ(bytes[0], 0x00);
  EXPECT_TRUE(ibbe::ec::g1_from_bytes(bytes).is_infinity());
}

TEST(G1Serialization, BothParitiesRecoverable) {
  G1 p = G1::generator().scalar_mul(U256::from_u64(5));
  EXPECT_EQ(ibbe::ec::g1_from_bytes(ibbe::ec::g1_to_bytes(p)), p);
  EXPECT_EQ(ibbe::ec::g1_from_bytes(ibbe::ec::g1_to_bytes(p.neg())), p.neg());
}

TEST(G1Serialization, RejectsMalformed) {
  EXPECT_THROW(ibbe::ec::g1_from_bytes(std::vector<std::uint8_t>(5)),
               ibbe::util::DeserializeError);
  std::vector<std::uint8_t> bad(33, 0);
  bad[0] = 0x07;  // invalid flag
  EXPECT_THROW(ibbe::ec::g1_from_bytes(bad), ibbe::util::DeserializeError);
}

TEST(G1Serialization, RejectsXNotOnCurve) {
  // x = 4: rhs = 64 + 3 = 67 must not be a QR for this to hold; if it were,
  // pick the next x. Verified empirically that x=4 is off-curve for BN254.
  std::vector<std::uint8_t> data(33, 0);
  data[0] = 0x02;
  data[32] = 4;
  EXPECT_THROW(ibbe::ec::g1_from_bytes(data), ibbe::util::DeserializeError);
}

TEST(G2Serialization, RoundTrip) {
  for (int i = 0; i < 5; ++i) {
    G2 p = G2::generator().scalar_mul(random_u256());
    auto bytes = ibbe::ec::g2_to_bytes(p);
    ASSERT_EQ(bytes.size(), ibbe::ec::g2_serialized_size);
    EXPECT_EQ(ibbe::ec::g2_from_bytes(bytes), p);
  }
}

TEST(G2Serialization, InfinityRoundTrip) {
  auto bytes = ibbe::ec::g2_to_bytes(G2::infinity());
  EXPECT_TRUE(ibbe::ec::g2_from_bytes(bytes).is_infinity());
}

TEST(G2Serialization, SubgroupCheckCatchesTwistTorsion) {
  // Find a twist point that is on the curve but (with overwhelming
  // probability) outside the order-r subgroup, by decompressing a valid-x
  // encoding without the check and verifying the check rejects it.
  std::vector<std::uint8_t> candidate(ibbe::ec::g2_serialized_size, 0);
  candidate[0] = 0x02;
  bool found_rejection = false;
  for (std::uint8_t x = 1; x < 60 && !found_rejection; ++x) {
    candidate[64] = x;
    G2 point;
    try {
      point = ibbe::ec::g2_from_bytes(candidate, /*subgroup_check=*/false);
    } catch (const ibbe::util::DeserializeError&) {
      continue;  // x not on the twist
    }
    if (!point.scalar_mul(ibbe::ec::bn_group_order()).is_infinity()) {
      EXPECT_THROW(ibbe::ec::g2_from_bytes(candidate, /*subgroup_check=*/true),
                   ibbe::util::DeserializeError);
      found_rejection = true;
    }
  }
  EXPECT_TRUE(found_rejection)
      << "no twist-torsion candidate found in the scanned range";
}

TEST(P256Serialization, RoundTrip) {
  for (int i = 0; i < 10; ++i) {
    P256Point p = P256Point::generator().scalar_mul(random_u256());
    auto bytes = ibbe::ec::p256_to_bytes(p);
    ASSERT_EQ(bytes.size(), ibbe::ec::p256_serialized_size);
    EXPECT_EQ(ibbe::ec::p256_from_bytes(bytes), p);
  }
}

// ---------------------------------------------------------- hash-to-curve

TEST(HashToG1, DeterministicAndOnCurve) {
  auto p1 = ibbe::ec::hash_to_g1("alice@example.com");
  auto p2 = ibbe::ec::hash_to_g1("alice@example.com");
  EXPECT_EQ(p1, p2);
  EXPECT_TRUE(p1.on_curve());
  EXPECT_FALSE(p1.is_infinity());
}

TEST(HashToG1, DistinctInputsGiveDistinctPoints) {
  auto p1 = ibbe::ec::hash_to_g1("alice@example.com");
  auto p2 = ibbe::ec::hash_to_g1("bob@example.com");
  EXPECT_FALSE(p1 == p2);
}

TEST(HashToG1, OutputHasOrderR) {
  auto p = ibbe::ec::hash_to_g1("charlie@example.com");
  EXPECT_TRUE(p.scalar_mul(ibbe::ec::bn_group_order()).is_infinity());
}

}  // namespace
