#include <gtest/gtest.h>

#include <array>
#include <random>

#include "ec/curves.h"
#include "field/fields.h"
#include "pairing/pairing.h"
#include "util/hex.h"

namespace {

using ibbe::ec::G1;
using ibbe::ec::G2;
using ibbe::field::Fp12;
using ibbe::field::Fr;
using ibbe::pairing::Gt;

std::mt19937_64& rng() {
  static std::mt19937_64 gen(1234);
  return gen;
}

Fr random_fr() {
  ibbe::bigint::U256 v;
  for (auto& limb : v.limb) limb = rng()();
  Fr out = Fr::from_u256_reduce(v);
  return out.is_zero() ? Fr::one() : out;
}

TEST(Pairing, NonDegenerate) {
  Gt e = ibbe::pairing::pairing(G1::generator(), G2::generator());
  EXPECT_FALSE(e.is_one());
}

TEST(Pairing, InfinityMapsToOne) {
  EXPECT_TRUE(ibbe::pairing::pairing(G1::infinity(), G2::generator()).is_one());
  EXPECT_TRUE(ibbe::pairing::pairing(G1::generator(), G2::infinity()).is_one());
}

TEST(Pairing, OutputHasOrderR) {
  Gt e = ibbe::pairing::pairing(G1::generator(), G2::generator());
  EXPECT_TRUE(e.exp(Fr::zero()).is_one());
  // e^r == 1 <=> e^(r-1) == e^-1
  Fr r_minus_1 = Fr::zero() - Fr::one();
  EXPECT_EQ(e.exp(r_minus_1), e.inverse());
}

class PairingBilinearity : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, PairingBilinearity, ::testing::Values(1, 2, 3));

TEST_P(PairingBilinearity, ScalarsMoveAcross) {
  Fr a = random_fr();
  Fr b = random_fr();
  G1 pa = G1::generator().mul(a);
  G2 qb = G2::generator().mul(b);

  Gt lhs = ibbe::pairing::pairing(pa, qb);
  Gt base = ibbe::pairing::pairing(G1::generator(), G2::generator());
  EXPECT_EQ(lhs, base.exp(a * b));
  EXPECT_EQ(ibbe::pairing::pairing(pa, G2::generator()), base.exp(a));
  EXPECT_EQ(ibbe::pairing::pairing(G1::generator(), qb), base.exp(b));
}

TEST(Pairing, AdditiveInFirstArgument) {
  Fr a = random_fr(), b = random_fr();
  G1 p1 = G1::generator().mul(a);
  G1 p2 = G1::generator().mul(b);
  Gt lhs = ibbe::pairing::pairing(p1 + p2, G2::generator());
  Gt rhs = ibbe::pairing::pairing(p1, G2::generator()) *
           ibbe::pairing::pairing(p2, G2::generator());
  EXPECT_EQ(lhs, rhs);
}

TEST(Pairing, AdditiveInSecondArgument) {
  Fr a = random_fr(), b = random_fr();
  G2 q1 = G2::generator().mul(a);
  G2 q2 = G2::generator().mul(b);
  Gt lhs = ibbe::pairing::pairing(G1::generator(), q1 + q2);
  Gt rhs = ibbe::pairing::pairing(G1::generator(), q1) *
           ibbe::pairing::pairing(G1::generator(), q2);
  EXPECT_EQ(lhs, rhs);
}

TEST(Pairing, NegationInverts) {
  Gt e = ibbe::pairing::pairing(G1::generator(), G2::generator());
  Gt e_neg = ibbe::pairing::pairing(G1::generator().neg(), G2::generator());
  EXPECT_EQ(e * e_neg, Gt::one());
  EXPECT_EQ(e_neg, e.inverse());
}

TEST(Pairing, FastFinalExpMatchesNaive) {
  Fp12 f = ibbe::pairing::miller_loop(G1::generator(), G2::generator());
  EXPECT_EQ(ibbe::pairing::final_exponentiation(f),
            ibbe::pairing::final_exponentiation_naive(f));
}

TEST(Pairing, FastFinalExpMatchesNaiveOnRandomPoints) {
  // The u-decomposed hard part must agree with the naive (p^4-p^2+1)/r
  // exponentiation on arbitrary Miller-loop outputs, not just the generator
  // pairing.
  for (int i = 0; i < 3; ++i) {
    Fp12 f = ibbe::pairing::miller_loop(G1::generator().mul(random_fr()),
                                        G2::generator().mul(random_fr()));
    EXPECT_EQ(ibbe::pairing::final_exponentiation(f),
              ibbe::pairing::final_exponentiation_naive(f));
  }
}

TEST(Pairing, ProjectiveMillerLoopMatchesAffine) {
  // The inversion-free projective loop and the affine oracle walk different
  // addition chains (NAF vs binary) but compute the same f_{6u+2,Q}(P) up to
  // factors the final exponentiation kills, so compare after final exp.
  for (int i = 0; i < 4; ++i) {
    G1 p = G1::generator().mul(random_fr());
    G2 q = G2::generator().mul(random_fr());
    Fp12 proj = ibbe::pairing::miller_loop(p, q);
    Fp12 affine = ibbe::pairing::miller_loop_affine(p, q);
    EXPECT_EQ(ibbe::pairing::final_exponentiation(proj),
              ibbe::pairing::final_exponentiation(affine));
  }
}

TEST(Pairing, AffineMillerLoopInfinityIsOne) {
  EXPECT_TRUE(
      ibbe::pairing::miller_loop_affine(G1::infinity(), G2::generator()).is_one());
  EXPECT_TRUE(
      ibbe::pairing::miller_loop_affine(G1::generator(), G2::infinity()).is_one());
}

TEST(G2Prepared, MatchesUnpreparedPairing) {
  for (int i = 0; i < 3; ++i) {
    G1 p = G1::generator().mul(random_fr());
    G2 q = G2::generator().mul(random_fr());
    ibbe::pairing::G2Prepared prep(q);
    EXPECT_EQ(ibbe::pairing::pairing(p, prep), ibbe::pairing::pairing(p, q));
  }
}

TEST(G2Prepared, InfinityPairsToOne) {
  ibbe::pairing::G2Prepared prep_inf;
  EXPECT_TRUE(prep_inf.is_infinity());
  EXPECT_TRUE(ibbe::pairing::pairing(G1::generator(), prep_inf).is_one());
  EXPECT_TRUE(
      ibbe::pairing::G2Prepared(G2::infinity()).is_infinity());
}

TEST(G2Prepared, PreparedProductMatchesIndependentPairings) {
  Fr a = random_fr(), b = random_fr(), c = random_fr();
  G2 q1 = G2::generator().mul(b);
  G2 q2 = G2::generator().mul(c);
  ibbe::pairing::G2Prepared prep1(q1), prep2(q2);
  std::array<ibbe::pairing::PairingInput, 2> inputs = {{
      {G1::generator().mul(a), &prep1},
      {G1::generator(), &prep2},
  }};
  Gt combined = ibbe::pairing::pairing_product_prepared(inputs);
  Gt expected = ibbe::pairing::pairing(inputs[0].g1, q1) *
                ibbe::pairing::pairing(inputs[1].g1, q2);
  EXPECT_EQ(combined, expected);
}

TEST(G2Prepared, NullInputRejected) {
  std::array<ibbe::pairing::PairingInput, 1> inputs = {{{G1::generator(), nullptr}}};
  EXPECT_THROW((void)ibbe::pairing::pairing_product_prepared(inputs),
               std::invalid_argument);
}

TEST(G2PreparedAffine, MatchesUnpreparedPairing) {
  // The normalized (batched-inversion) line tables scale every line by a
  // nonzero Fp2 factor, which the final exponentiation kills — full pairing
  // values must be identical.
  for (int i = 0; i < 3; ++i) {
    G1 p = G1::generator().mul(random_fr());
    G2 q = G2::generator().mul(random_fr());
    ibbe::pairing::G2PreparedAffine prep(q);
    EXPECT_EQ(ibbe::pairing::pairing(p, prep), ibbe::pairing::pairing(p, q));
    // And the two-step construction path agrees with the direct one.
    ibbe::pairing::G2Prepared proj(q);
    ibbe::pairing::G2PreparedAffine from_proj(proj);
    EXPECT_EQ(ibbe::pairing::pairing(p, from_proj),
              ibbe::pairing::pairing(p, q));
  }
}

TEST(G2PreparedAffine, InfinityPairsToOne) {
  ibbe::pairing::G2PreparedAffine prep_inf;
  EXPECT_TRUE(prep_inf.is_infinity());
  EXPECT_TRUE(ibbe::pairing::pairing(G1::generator(), prep_inf).is_one());
  EXPECT_TRUE(ibbe::pairing::G2PreparedAffine(G2::infinity()).is_infinity());
}

TEST(G2PreparedAffine, MixedProductMatchesIndependentPairings) {
  // One projective table and one normalized table walking the same
  // shared-squaring Miller loop — the exact shape of the cached decrypt path.
  Fr a = random_fr(), b = random_fr(), c = random_fr();
  G2 q1 = G2::generator().mul(b);
  G2 q2 = G2::generator().mul(c);
  ibbe::pairing::G2Prepared prep1(q1);
  ibbe::pairing::G2PreparedAffine prep2(q2);
  std::array<ibbe::pairing::PairingInput, 1> proj = {{
      {G1::generator().mul(a), &prep1},
  }};
  std::array<ibbe::pairing::PairingInputAffine, 1> affine = {{
      {G1::generator(), &prep2},
  }};
  Gt combined = ibbe::pairing::pairing_product_prepared(proj, affine);
  Gt expected = ibbe::pairing::pairing(proj[0].g1, q1) *
                ibbe::pairing::pairing(affine[0].g1, q2);
  EXPECT_EQ(combined, expected);

  // All-affine overload.
  ibbe::pairing::G2PreparedAffine prep1_affine(q1);
  std::array<ibbe::pairing::PairingInputAffine, 2> all_affine = {{
      {proj[0].g1, &prep1_affine},
      {affine[0].g1, &prep2},
  }};
  EXPECT_EQ(ibbe::pairing::pairing_product_prepared(all_affine), expected);
}

TEST(G2PreparedAffine, NullInputRejected) {
  std::array<ibbe::pairing::PairingInputAffine, 1> inputs = {
      {{G1::generator(), nullptr}}};
  EXPECT_THROW((void)ibbe::pairing::pairing_product_prepared(inputs),
               std::invalid_argument);
}

TEST(Pairing, ProductMatchesIndividualPairings) {
  Fr a = random_fr(), b = random_fr();
  std::vector<std::pair<G1, G2>> pairs = {
      {G1::generator().mul(a), G2::generator()},
      {G1::generator(), G2::generator().mul(b)},
  };
  Gt combined = ibbe::pairing::pairing_product(pairs);
  Gt expected = ibbe::pairing::pairing(pairs[0].first, pairs[0].second) *
                ibbe::pairing::pairing(pairs[1].first, pairs[1].second);
  EXPECT_EQ(combined, expected);
}

TEST(Pairing, EmptyProductIsOne) {
  EXPECT_TRUE(ibbe::pairing::pairing_product({}).is_one());
}

TEST(Pairing, ProductSkipsInfinityPairs) {
  Fr a = random_fr();
  std::vector<std::pair<G1, G2>> pairs = {
      {G1::generator().mul(a), G2::generator()},
      {G1::infinity(), G2::generator()},
      {G1::generator(), G2::infinity()},
  };
  EXPECT_EQ(ibbe::pairing::pairing_product(pairs),
            ibbe::pairing::pairing(pairs[0].first, pairs[0].second));
}

TEST(Pairing, RegressionPinOnGeneratorPairing) {
  // Not an external vector (GT serialization is implementation-defined);
  // this pins e(G1, G2) so accidental changes to the tower, the Miller loop,
  // the final exponentiation or the serialization order are caught loudly.
  // Validity of the value itself is established by the bilinearity and
  // naive-final-exponentiation cross-checks above.
  Gt e = ibbe::pairing::pairing(G1::generator(), G2::generator());
  auto bytes = e.to_bytes();
  EXPECT_EQ(ibbe::util::to_hex({bytes.data(), 64}),
            "12c70e90e12b7874510cd1707e8856f71bf7f61d72631e268fca81000db9a1f5"
            "084f330485b09e866bc2f2ea2b897394deaf3f12aa31f28cb0552990967d4704");
  EXPECT_EQ(ibbe::util::to_hex(e.hash()),
            "fb26b1c6e9acaab5348b05c9e7aa5e9418aa797c24f49052ae4585632b1cb52b");
}

TEST(Gt, SerializationRoundTrip) {
  Gt e = ibbe::pairing::pairing(G1::generator(), G2::generator());
  auto bytes = e.to_bytes();
  ASSERT_EQ(bytes.size(), Gt::serialized_size);
  EXPECT_EQ(Gt::from_bytes(bytes), e);
}

TEST(Gt, HashIsStableAndKeyed) {
  Gt e = ibbe::pairing::pairing(G1::generator(), G2::generator());
  EXPECT_EQ(e.hash(), e.hash());
  Gt e2 = e.exp(Fr::from_u64(2));
  EXPECT_NE(e.hash(), e2.hash());
}

TEST(Gt, ExpHomomorphism) {
  Gt e = ibbe::pairing::pairing(G1::generator(), G2::generator());
  Fr a = random_fr(), b = random_fr();
  EXPECT_EQ(e.exp(a) * e.exp(b), e.exp(a + b));
  EXPECT_EQ(e.exp(a).exp(b), e.exp(a * b));
}

}  // namespace
