// Differential property tests for the G2 scalar-multiplication strategies.
//
// The repo now ships five ways to compute k*Q on G2 — plain double-and-add,
// wNAF, the 2-dim GLS split, the 4-dim psi split, fixed-base combs (generic
// and psi-split), and two MSM engines that degenerate to single
// multiplications — and their agreement is what makes routing changes safe.
// Every strategy here is run against the same scalars (edge cases from
// tests/test_util.h plus randomized ones) and the same points, and results
// are compared BITWISE on affine coordinates, not just by the projective
// equality predicate. The same binary runs under both Montgomery backends:
// scripts/ci.sh executes it in the forced-portable build tree too, where
// results must be identical.
//
// Also here: the psi-endomorphism invariants backing the 4-dim split (the
// degree-4 minimal polynomial, linearity, affine-table commutation,
// prepare-after-psi), and MSM boundary regressions (n = 0 / 1 / the
// Straus-Pippenger crossover, infinity and duplicate inputs).
#include <gtest/gtest.h>

#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "bigint/biguint.h"
#include "bigint/u256.h"
#include "ec/curves.h"
#include "ec/glv.h"
#include "ec/msm.h"
#include "field/fields.h"
#include "pairing/gt_exp.h"
#include "pairing/pairing.h"
#include "test_util.h"

namespace {

using ibbe::bigint::BigUInt;
using ibbe::bigint::U256;
using ibbe::ec::AffinePt;
using ibbe::ec::G1;
using ibbe::ec::G2;
using ibbe::field::Fp2;
using ibbe::field::Fr;
namespace tu = ibbe::testutil;

/// Affine coordinates as a comparable value; nullopt encodes infinity.
using Affine = std::optional<std::pair<Fp2, Fp2>>;

Affine affine_of(const G2& p) { return p.to_affine(); }

/// Bitwise comparison of two strategies' results: both infinity, or equal
/// x AND y coordinates under the exact field equality (Montgomery-form
/// representations are canonical, so == is bit-equality of the limbs).
void expect_same_affine(const G2& got, const G2& want, const char* strategy,
                        const U256& k) {
  Affine g = affine_of(got), w = affine_of(want);
  ASSERT_EQ(g.has_value(), w.has_value())
      << strategy << " infinity mismatch at k=" << k.to_hex();
  if (!g) return;
  EXPECT_TRUE(g->first == w->first && g->second == w->second)
      << strategy << " affine mismatch at k=" << k.to_hex();
}

/// All-strategy differential run for one base point. The fixed-base tables
/// are built once per point and reused across scalars.
void check_all_strategies(const G2& q) {
  const ibbe::ec::FixedBaseTable<G2> comb(q);
  const ibbe::ec::G2Comb4 comb4(q);
  const std::vector<G2> bases{q};
  const ibbe::ec::G2PowersMsm powers{std::span<const G2>(bases)};

  auto scalars = tu::edge_scalars();
  for (int i = 0; i < 10; ++i) scalars.push_back(tu::random_u256());

  for (const U256& k : scalars) {
    const G2 oracle = q.scalar_mul(k);  // plain double-and-add
    expect_same_affine(q.scalar_mul_wnaf(k), oracle, "wnaf", k);
    expect_same_affine(ibbe::ec::g2_mul_endo(q, k), oracle, "gls2", k);
    expect_same_affine(ibbe::ec::g2_mul_endo4(q, k), oracle, "gls4", k);
    expect_same_affine(comb.mul(k), oracle, "comb", k);
    expect_same_affine(comb4.mul(k), oracle, "comb4", k);
    // The Fr-typed strategies see k mod r, which agrees on the order-r
    // subgroup.
    const Fr kf = Fr::from_u256_reduce(k);
    const std::vector<Fr> coef{kf};
    expect_same_affine(ibbe::ec::msm(std::span<const G2>(bases),
                                     std::span<const Fr>(coef)),
                       oracle, "msm-of-1", k);
    expect_same_affine(powers.msm(coef), oracle, "powers-msm-of-1", k);
    expect_same_affine(q.mul(kf), oracle, "mul-routing", k);
  }
}

TEST(StrategyEquivalence, ArbitraryPoint) { check_all_strategies(tu::random_g2()); }

TEST(StrategyEquivalence, Generator) { check_all_strategies(G2::generator()); }

TEST(StrategyEquivalence, SmallOrderMultipleOfGenerator) {
  // A point with tiny discrete log, so carries/borrows in the recodings hit
  // the doubling-only regime.
  check_all_strategies(G2::generator().dbl());
}

TEST(StrategyEquivalence, GeneratorCombRoutingMatchesOracle) {
  // The static generator comb behind JacobianPoint<G2>::mul.
  for (const U256& k : tu::edge_scalars()) {
    expect_same_affine(ibbe::ec::g2_generator_comb4().mul(k),
                       G2::generator().scalar_mul(k), "generator-comb4", k);
  }
}

TEST(StrategyEquivalence, InfinityBase) {
  const G2 inf = G2::infinity();
  const U256 k = tu::random_u256();
  EXPECT_TRUE(ibbe::ec::g2_mul_endo4(inf, k).is_infinity());
  EXPECT_TRUE(ibbe::ec::G2Comb4(inf).mul(k).is_infinity());
  EXPECT_TRUE(inf.mul(Fr::from_u256_reduce(k)).is_infinity());
}

// ------------------------------------------------------- 4-dim decomposition

TEST(Gls4Decompose, ReassemblesModRAndIsShort) {
  const BigUInt n = BigUInt::from_u256(Fr::modulus());
  const BigUInt mu = BigUInt(6) * BigUInt(tu::kBnU) * BigUInt(tu::kBnU);
  auto scalars = tu::edge_scalars();
  for (int i = 0; i < 50; ++i) scalars.push_back(tu::random_u256());
  for (const U256& k : scalars) {
    auto d = ibbe::ec::decompose_gls4(k);
    BigUInt acc;
    BigUInt mu_pow(1);
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_LE(d.k[i].bit_length(),
                ibbe::ec::bn_psi_lattice().max_sub_bits())
          << "sub-scalar " << i << " too long at k=" << k.to_hex();
      BigUInt term = BigUInt::from_u256(d.k[i]) * mu_pow % n;
      if (d.neg[i] && !term.is_zero()) term = n - term;
      acc = (acc + term) % n;
      mu_pow = mu_pow * mu % n;
    }
    EXPECT_EQ(acc, BigUInt::from_u256(k) % n) << "k=" << k.to_hex();
  }
}

TEST(Gls4Decompose, SharesTheGtLattice) {
  // psi on G2 and Frobenius on Gt have the same eigenvalue, so the G2 and
  // Gt engines must literally agree on every decomposition.
  EXPECT_EQ(ibbe::ec::bn_psi_lattice().lambda(), ibbe::pairing::gt_lambda());
  EXPECT_EQ(ibbe::ec::gls_mu(), ibbe::ec::bn_psi_lattice().lambda());
  for (int i = 0; i < 10; ++i) {
    U256 k = ibbe::bigint::mod(tu::random_u256(), Fr::modulus());
    auto dg = ibbe::ec::decompose_gls4(k);
    auto dt = ibbe::pairing::decompose_gt(k);
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_EQ(dg.k[j], dt.k[j]);
      EXPECT_EQ(dg.neg[j], dt.neg[j]);
    }
  }
}

// ----------------------------------------------------------- psi invariants

TEST(PsiInvariants, DegreeFourMinimalPolynomial) {
  // psi^4 - psi^2 + 1 = 0 on the order-r subgroup, the identity that makes
  // the four lattice dimensions independent.
  for (int i = 0; i < 5; ++i) {
    G2 p = tu::random_g2();
    G2 p2 = ibbe::ec::apply_psi(ibbe::ec::apply_psi(p));
    G2 p4 = ibbe::ec::apply_psi(ibbe::ec::apply_psi(p2));
    EXPECT_EQ(p4 + p, p2);
  }
}

TEST(PsiInvariants, PsiPowersActAsMuPowers) {
  const BigUInt n = BigUInt::from_u256(Fr::modulus());
  const BigUInt mu = BigUInt::from_u256(ibbe::ec::gls_mu());
  G2 p = tu::random_g2();
  G2 img = p;
  BigUInt mu_pow(1);
  for (int i = 1; i <= 3; ++i) {
    img = ibbe::ec::apply_psi(img);
    mu_pow = mu_pow * mu % n;
    EXPECT_EQ(img, p.scalar_mul(mu_pow.to_u256())) << "psi^" << i;
  }
}

TEST(PsiInvariants, Linearity) {
  G2 p = tu::random_g2();
  G2 q = tu::random_g2();
  EXPECT_EQ(ibbe::ec::apply_psi(p + q),
            ibbe::ec::apply_psi(p) + ibbe::ec::apply_psi(q));
  EXPECT_EQ(ibbe::ec::apply_psi(p.neg()), ibbe::ec::apply_psi(p).neg());
  EXPECT_TRUE(ibbe::ec::apply_psi(G2::infinity()).is_infinity());
}

TEST(PsiInvariants, AffineTableEntryMatchesJacobianMap) {
  // apply_psi on an affine table entry (the form every precomputed table
  // stores) must agree with the Jacobian map plus normalization.
  for (int i = 0; i < 5; ++i) {
    G2 p = tu::random_g2();
    auto aff = p.to_affine();
    ASSERT_TRUE(aff.has_value());
    AffinePt<Fp2> entry{aff->first, aff->second, false};
    AffinePt<Fp2> mapped = ibbe::ec::apply_psi(entry);
    auto want = ibbe::ec::apply_psi(p).to_affine();
    ASSERT_TRUE(want.has_value());
    EXPECT_TRUE(mapped.x == want->first && mapped.y == want->second);
  }
  AffinePt<Fp2> inf{};
  EXPECT_TRUE(ibbe::ec::apply_psi(inf).inf);
}

TEST(PsiInvariants, PreparedAffineEntryMatchesPrepareAfterPsi) {
  // Preparing a pairing table from the psi image of an affine table entry
  // must be indistinguishable (as a pairing argument) from applying psi to
  // the point first and preparing that: psi-mapped cached tables are safe
  // to feed to the Miller loop.
  G1 p = tu::random_g1();
  G2 q = tu::random_g2();
  auto aff = q.to_affine();
  ASSERT_TRUE(aff.has_value());
  AffinePt<Fp2> entry{aff->first, aff->second, false};

  ibbe::pairing::G2PreparedAffine via_entry(
      G2::from_affine(ibbe::ec::apply_psi(entry)));
  ibbe::pairing::G2PreparedAffine via_point(ibbe::ec::apply_psi(q));
  EXPECT_EQ(ibbe::pairing::pairing(p, via_entry),
            ibbe::pairing::pairing(p, via_point));
  // And both equal the unprepared pairing against psi(q).
  EXPECT_EQ(ibbe::pairing::pairing(p, via_entry),
            ibbe::pairing::pairing(p, ibbe::ec::apply_psi(q)));
}

// --------------------------------------------------- MSM boundary regressions

G2 naive_msm(std::span<const G2> bases, std::span<const Fr> scalars) {
  G2 acc = G2::infinity();
  for (std::size_t i = 0; i < std::min(bases.size(), scalars.size()); ++i) {
    acc += bases[i].scalar_mul(scalars[i].to_u256());
  }
  return acc;
}

TEST(MsmBoundary, EmptyInput) {
  EXPECT_TRUE(ibbe::ec::msm(std::span<const G2>{}, std::span<const Fr>{})
                  .is_infinity());
}

TEST(MsmBoundary, SingleTerm) {
  std::vector<G2> bases{tu::random_g2()};
  std::vector<Fr> coefs{tu::random_fr()};
  EXPECT_EQ(ibbe::ec::msm(std::span<const G2>(bases),
                          std::span<const Fr>(coefs)),
            naive_msm(bases, coefs));
}

TEST(MsmBoundary, StrausPippengerCrossover) {
  // n = 32 is the last Straus-routed size, n = 33 the first Pippenger one —
  // but with the 4-dim split the engine sees up to 4n sub-terms, so both
  // sides of the internal crossover are exercised well before n = 32.
  for (std::size_t n : {8u, 32u, 33u}) {
    std::vector<G2> bases;
    std::vector<Fr> coefs;
    for (std::size_t i = 0; i < n; ++i) {
      bases.push_back(tu::random_g2());
      coefs.push_back(tu::random_fr());
    }
    EXPECT_EQ(ibbe::ec::msm(std::span<const G2>(bases),
                            std::span<const Fr>(coefs)),
              naive_msm(bases, coefs))
        << "n=" << n;
  }
}

TEST(MsmBoundary, InfinityAndZeroMixedIn) {
  std::vector<G2> bases;
  std::vector<Fr> coefs;
  for (std::size_t i = 0; i < 12; ++i) {
    bases.push_back(i % 3 == 1 ? G2::infinity() : tu::random_g2());
    coefs.push_back(i % 4 == 2 ? Fr::zero() : tu::random_fr());
  }
  EXPECT_EQ(ibbe::ec::msm(std::span<const G2>(bases),
                          std::span<const Fr>(coefs)),
            naive_msm(bases, coefs));
  // All-infinity / all-zero degenerate to the identity.
  std::vector<G2> infs(4, G2::infinity());
  std::vector<Fr> zeros(4, Fr::zero());
  EXPECT_TRUE(ibbe::ec::msm(std::span<const G2>(infs),
                            std::span<const Fr>(coefs)).is_infinity());
  EXPECT_TRUE(ibbe::ec::msm(std::span<const G2>(bases),
                            std::span<const Fr>(zeros)).is_infinity());
}

TEST(MsmBoundary, DuplicateBases) {
  // Identical bases make the Straus odd-multiple tables and Pippenger
  // buckets hit doublings instead of generic additions; both engines must
  // handle the P + P edge in their addition chains.
  const G2 q = tu::random_g2();
  for (std::size_t n : {2u, 33u}) {
    std::vector<G2> bases(n, q);
    std::vector<Fr> coefs;
    Fr sum = Fr::zero();
    for (std::size_t i = 0; i < n; ++i) {
      // Same scalar every time maximizes bucket collisions.
      coefs.push_back(Fr::from_u64(7));
      sum += Fr::from_u64(7);
    }
    EXPECT_EQ(ibbe::ec::msm(std::span<const G2>(bases),
                            std::span<const Fr>(coefs)),
              q.scalar_mul(sum.to_u256()))
        << "n=" << n;
  }
}

TEST(MsmBoundary, G2PowersMsmPrefixAndZeroHandling) {
  std::vector<G2> bases;
  for (int i = 0; i < 5; ++i) bases.push_back(tu::random_g2());
  ibbe::ec::G2PowersMsm prepared{std::span<const G2>(bases)};
  std::vector<Fr> coefs;
  for (int i = 0; i < 5; ++i) {
    coefs.push_back(i == 2 ? Fr::zero() : tu::random_fr());
  }
  EXPECT_EQ(prepared.msm(coefs), naive_msm(bases, coefs));
  // Shorter coefficient vectors use a prefix of the table; empty is identity.
  EXPECT_EQ(prepared.msm(std::span<const Fr>(coefs).first(2)),
            naive_msm(std::span<const G2>(bases).first(2),
                      std::span<const Fr>(coefs).first(2)));
  EXPECT_TRUE(prepared.msm({}).is_infinity());
}

}  // namespace
