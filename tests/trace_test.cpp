#include <gtest/gtest.h>

#include <set>

#include "he/he_pki.h"
#include "system/ibbe_scheme.h"
#include "trace/replay.h"
#include "trace/trace.h"

namespace {

using ibbe::trace::MembershipTrace;
using ibbe::trace::OpKind;

// ----------------------------------------------------------- generators

TEST(LinuxKernelTrace, MatchesRequestedShape) {
  auto trace = ibbe::trace::linux_kernel_trace(2000, 150, /*seed=*/1);
  EXPECT_EQ(trace.ops.size(), 2000u);
  // Peak approaches the target from below and never exceeds the hard cap.
  EXPECT_GE(trace.peak_size(), 120u);
  EXPECT_LE(trace.peak_size(), 150u);
  EXPECT_GT(trace.remove_count(), 200u);  // real churn, not just adds
}

TEST(LinuxKernelTrace, DeterministicPerSeed) {
  auto a = ibbe::trace::linux_kernel_trace(500, 50, 7);
  auto b = ibbe::trace::linux_kernel_trace(500, 50, 7);
  auto c = ibbe::trace::linux_kernel_trace(500, 50, 8);
  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_EQ(a.ops[i].kind, b.ops[i].kind);
    EXPECT_EQ(a.ops[i].user, b.ops[i].user);
  }
  bool differs = false;
  for (std::size_t i = 0; i < std::min(a.ops.size(), c.ops.size()); ++i) {
    if (a.ops[i].user != c.ops[i].user || a.ops[i].kind != c.ops[i].kind) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(LinuxKernelTrace, OpsAreConsistent) {
  // A remove always targets a currently-live user; adds are always fresh.
  auto trace = ibbe::trace::linux_kernel_trace(1500, 100, 3);
  std::set<std::string> live;
  for (const auto& op : trace.ops) {
    if (op.kind == OpKind::add) {
      EXPECT_TRUE(live.insert(op.user).second) << "re-added " << op.user;
    } else {
      EXPECT_EQ(live.erase(op.user), 1u) << "removed non-member " << op.user;
    }
  }
}

TEST(RevocationTrace, RateZeroIsAllAdds) {
  auto trace = ibbe::trace::revocation_trace(300, 0.0, 1);
  EXPECT_EQ(trace.add_count(), 300u);
  EXPECT_EQ(trace.final_members().size(), 300u);
}

TEST(RevocationTrace, RateControlsRemovalShare) {
  // From an empty group the removal share is capped near 50% (each removal
  // needs a prior add), so the expected share is min(rate, ~0.5).
  for (double rate : {0.2, 0.5, 0.8}) {
    auto trace = ibbe::trace::revocation_trace(4000, rate, 2);
    double observed = static_cast<double>(trace.remove_count()) /
                      static_cast<double>(trace.ops.size());
    double expected = std::min(rate, 0.5);
    EXPECT_NEAR(observed, expected, 0.07) << rate;
  }
}

TEST(RevocationTrace, InitialSizeUnlocksHighRates) {
  // With a pre-populated group, high revocation rates are achievable.
  auto trace = ibbe::trace::revocation_trace(1000, 0.9, 2, /*initial_size=*/1500);
  EXPECT_EQ(trace.initial_members.size(), 1500u);
  double observed = static_cast<double>(trace.remove_count()) /
                    static_cast<double>(trace.ops.size());
  EXPECT_NEAR(observed, 0.9, 0.05);
  EXPECT_EQ(trace.final_members().size(),
            1500u + trace.add_count() - trace.remove_count());
}

TEST(Replay, InitialMembersBootstrapTheGroup) {
  ibbe::he::HePkiScheme scheme(12);
  auto trace = ibbe::trace::revocation_trace(20, 0.5, 3, /*initial_size=*/10);
  ibbe::trace::ReplayOptions options;
  options.verify = true;
  auto result = ibbe::trace::replay(scheme, trace, options);
  EXPECT_GT(result.setup_seconds, 0.0);
  EXPECT_EQ(result.final_group_size, trace.final_members().size());
}

TEST(RevocationTrace, FullRateOscillates) {
  // rate=1.0 degenerates to add-remove-add-remove (can't remove from empty).
  auto trace = ibbe::trace::revocation_trace(100, 1.0, 3);
  EXPECT_LE(trace.final_members().size(), 1u);
}

TEST(RevocationTrace, RejectsBadRate) {
  EXPECT_THROW(ibbe::trace::revocation_trace(10, 1.5, 1), std::invalid_argument);
  EXPECT_THROW(ibbe::trace::revocation_trace(10, -0.1, 1), std::invalid_argument);
}

TEST(RevocationTrace, RemovesTargetLiveUsers) {
  auto trace = ibbe::trace::revocation_trace(2000, 0.5, 4);
  std::set<std::string> live;
  for (const auto& op : trace.ops) {
    if (op.kind == OpKind::add) {
      EXPECT_TRUE(live.insert(op.user).second);
    } else {
      EXPECT_EQ(live.erase(op.user), 1u);
    }
  }
}

// -------------------------------------------------------------- replayer

TEST(Replay, DrivesHePkiWithVerification) {
  ibbe::he::HePkiScheme scheme(9);
  auto trace = ibbe::trace::revocation_trace(60, 0.3, 5);
  ibbe::trace::ReplayOptions options;
  options.verify = true;
  options.decrypt_sample_every = 10;
  auto result = ibbe::trace::replay(scheme, trace, options);
  EXPECT_EQ(result.ops_applied, 60u);
  EXPECT_EQ(result.final_group_size, trace.final_members().size());
  EXPECT_GT(result.admin_seconds, 0.0);
  EXPECT_GT(result.decrypt_latencies.count(), 0u);
  EXPECT_EQ(result.add_latencies.count(), trace.add_count());
  EXPECT_EQ(result.remove_latencies.count(), trace.remove_count());
}

TEST(Replay, DrivesIbbeSgxWithVerification) {
  // End-to-end: enclave + partitioning + cloud + client decrypts, with the
  // security invariant checked after every operation.
  ibbe::system::IbbeSgxScheme scheme(/*partition_size=*/5, /*seed=*/6);
  auto trace = ibbe::trace::revocation_trace(40, 0.35, 6);
  ibbe::trace::ReplayOptions options;
  options.verify = true;
  auto result = ibbe::trace::replay(scheme, trace, options);
  EXPECT_EQ(result.ops_applied, 40u);
  EXPECT_EQ(result.final_group_size, trace.final_members().size());
}

TEST(Replay, LinuxTraceOnIbbeSgxKeepsInvariants) {
  ibbe::system::IbbeSgxScheme scheme(/*partition_size=*/6, /*seed=*/7);
  auto trace = ibbe::trace::linux_kernel_trace(80, 20, 8);
  ibbe::trace::ReplayOptions options;
  options.verify = true;
  auto result = ibbe::trace::replay(scheme, trace, options);
  EXPECT_EQ(result.ops_applied, 80u);
}

TEST(Replay, MetadataReportedAtEnd) {
  ibbe::he::HePkiScheme scheme(10);
  auto trace = ibbe::trace::revocation_trace(30, 0.0, 9);
  auto result = ibbe::trace::replay(scheme, trace);
  EXPECT_GT(result.final_metadata_bytes, 0u);
  EXPECT_EQ(result.final_group_size, 30u);
}

}  // namespace
