#include <gtest/gtest.h>

#include "crypto/drbg.h"
#include "crypto/sha256.h"
#include "sgx/attestation.h"
#include "sgx/enclave.h"

namespace {

using ibbe::crypto::Drbg;
using ibbe::sgx::AttestationService;
using ibbe::sgx::Auditor;
using ibbe::sgx::EnclaveBase;
using ibbe::sgx::EnclaveImage;
using ibbe::sgx::EnclavePlatform;
using ibbe::sgx::Quote;
using ibbe::sgx::SealedBlob;
using ibbe::util::Bytes;

EnclaveImage test_image(const std::string& version = "1.0") {
  EnclaveImage img;
  img.name = "test-enclave";
  img.version = version;
  img.code_hash = Bytes(32, 0x5a);
  return img;
}

/// Minimal concrete enclave for exercising the base-class facilities.
class TestEnclave : public EnclaveBase {
 public:
  TestEnclave(EnclavePlatform& platform, const EnclaveImage& image)
      : EnclaveBase(platform, image) {}

  SealedBlob ecall_seal(const Bytes& secret) {
    EcallScope scope(*this);
    return seal(secret);
  }
  std::optional<Bytes> ecall_unseal(const SealedBlob& blob) {
    EcallScope scope(*this);
    return unseal(blob);
  }
  void ecall_use_epc(std::size_t bytes) {
    EcallScope scope(*this);
    epc_alloc(bytes);
  }
  void ecall_release_epc(std::size_t bytes) {
    EcallScope scope(*this);
    epc_free(bytes);
  }
};

TEST(Measurement, DependsOnEveryImageField) {
  auto base = test_image().measure();
  EXPECT_EQ(base, test_image().measure());
  EXPECT_NE(base, test_image("1.1").measure());
  auto img = test_image();
  img.code_hash[0] ^= 1;
  EXPECT_NE(base, img.measure());
  img = test_image();
  img.name = "other";
  EXPECT_NE(base, img.measure());
}

TEST(Sealing, RoundTripSameEnclave) {
  EnclavePlatform platform("machine-a");
  TestEnclave enclave(platform, test_image());
  Bytes secret = {'m', 's', 'k'};
  auto blob = enclave.ecall_seal(secret);
  auto opened = enclave.ecall_unseal(blob);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, secret);
}

TEST(Sealing, BoundToMeasurement) {
  // A different enclave build on the same machine cannot unseal (MRENCLAVE
  // policy).
  EnclavePlatform platform("machine-a");
  TestEnclave v1(platform, test_image("1.0"));
  TestEnclave v2(platform, test_image("2.0"));
  auto blob = v1.ecall_seal(Bytes(16, 1));
  EXPECT_FALSE(v2.ecall_unseal(blob).has_value());
  EXPECT_TRUE(v1.ecall_unseal(blob).has_value());
}

TEST(Sealing, BoundToPlatform) {
  // The same enclave build on a different machine cannot unseal (fuse key).
  EnclavePlatform a("machine-a"), b("machine-b");
  TestEnclave on_a(a, test_image());
  TestEnclave on_b(b, test_image());
  auto blob = on_a.ecall_seal(Bytes(16, 2));
  EXPECT_FALSE(on_b.ecall_unseal(blob).has_value());
}

TEST(Sealing, DetectsCorruption) {
  EnclavePlatform platform("machine-a");
  TestEnclave enclave(platform, test_image());
  auto blob = enclave.ecall_seal(Bytes(16, 3));
  blob.ciphertext[4] ^= 1;
  EXPECT_FALSE(enclave.ecall_unseal(blob).has_value());
}

TEST(Sealing, BlobSerializationRoundTrip) {
  EnclavePlatform platform("machine-a");
  TestEnclave enclave(platform, test_image());
  Bytes secret(40, 9);
  auto blob = enclave.ecall_seal(secret);
  auto back = SealedBlob::from_bytes(blob.to_bytes());
  auto opened = enclave.ecall_unseal(back);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, secret);
}

TEST(Instrumentation, EcallCounterAndEpcMeter) {
  EnclavePlatform platform("machine-a");
  TestEnclave enclave(platform, test_image());
  EXPECT_EQ(enclave.ecall_count(), 0u);
  enclave.ecall_use_epc(1000);
  enclave.ecall_use_epc(500);
  enclave.ecall_release_epc(800);
  EXPECT_EQ(enclave.ecall_count(), 3u);
  EXPECT_EQ(enclave.epc_bytes_used(), 700u);
  EXPECT_EQ(enclave.epc_bytes_peak(), 1500u);
}

TEST(Instrumentation, EpcLimitEnforced) {
  EnclavePlatform platform("machine-a");
  TestEnclave enclave(platform, test_image());
  EXPECT_THROW(enclave.ecall_use_epc(EnclaveBase::epc_limit + 1),
               std::runtime_error);
}

// -------------------------------------------------------------- attestation

TEST(Attestation, QuoteVerifiesOnRegisteredPlatform) {
  EnclavePlatform platform("machine-a");
  TestEnclave enclave(platform, test_image());
  AttestationService ias;
  ias.register_platform(platform);
  auto quote = enclave.generate_quote(Bytes{1, 2, 3});
  EXPECT_TRUE(ias.verify_quote(quote));
}

TEST(Attestation, RejectsUnknownPlatform) {
  EnclavePlatform platform("machine-a");
  TestEnclave enclave(platform, test_image());
  AttestationService ias;  // nothing registered
  EXPECT_FALSE(ias.verify_quote(enclave.generate_quote({})));
}

TEST(Attestation, RejectsTamperedQuote) {
  EnclavePlatform platform("machine-a");
  TestEnclave enclave(platform, test_image());
  AttestationService ias;
  ias.register_platform(platform);
  auto quote = enclave.generate_quote(Bytes{1});
  quote.report_data = Bytes{2};
  EXPECT_FALSE(ias.verify_quote(quote));
}

TEST(Attestation, QuoteSerializationRoundTrip) {
  EnclavePlatform platform("machine-a");
  TestEnclave enclave(platform, test_image());
  AttestationService ias;
  ias.register_platform(platform);
  auto quote = enclave.generate_quote(Bytes{9, 9});
  auto back = Quote::from_bytes(quote.to_bytes());
  EXPECT_TRUE(ias.verify_quote(back));
  EXPECT_EQ(back.measurement, quote.measurement);
}

// ------------------------------------------------------------------ auditor

struct AuditorFixture : ::testing::Test {
  AuditorFixture()
      : platform("machine-a"),
        enclave(platform, test_image()),
        key(ibbe::pki::EcdsaKeyPair::generate(rng)) {
    ias.register_platform(platform);
  }

  Quote quote_for_key(const Bytes& pubkey) {
    auto digest = ibbe::crypto::Sha256::hash(pubkey);
    return enclave.generate_quote(Bytes(digest.begin(), digest.end()));
  }

  Drbg rng{77};
  EnclavePlatform platform;
  TestEnclave enclave;
  AttestationService ias;
  ibbe::pki::EcdsaKeyPair key;
};

TEST_F(AuditorFixture, CertifiesExpectedMeasurement) {
  Auditor auditor("auditor", ias, test_image().measure(), rng);
  auto pub = key.public_key_bytes();
  auto cert = auditor.attest_and_certify(quote_for_key(pub), pub);
  ASSERT_TRUE(cert.has_value());
  EXPECT_TRUE(ibbe::pki::CertificateAuthority::verify(*cert,
                                                      auditor.ca_public_key()));
  EXPECT_EQ(cert->public_key, pub);
}

TEST_F(AuditorFixture, RejectsUnexpectedMeasurement) {
  Auditor auditor("auditor", ias, test_image("9.9").measure(), rng);
  auto pub = key.public_key_bytes();
  EXPECT_FALSE(auditor.attest_and_certify(quote_for_key(pub), pub).has_value());
}

TEST_F(AuditorFixture, RejectsKeyNotBoundToQuote) {
  Auditor auditor("auditor", ias, test_image().measure(), rng);
  auto pub = key.public_key_bytes();
  auto other = ibbe::pki::EcdsaKeyPair::generate(rng).public_key_bytes();
  // Quote commits to `pub` but the rogue presents `other`.
  EXPECT_FALSE(auditor.attest_and_certify(quote_for_key(pub), other).has_value());
}

TEST_F(AuditorFixture, RejectsForgedQuote) {
  Auditor auditor("auditor", ias, test_image().measure(), rng);
  auto pub = key.public_key_bytes();
  auto quote = quote_for_key(pub);
  quote.platform_id = "machine-unknown";
  EXPECT_FALSE(auditor.attest_and_certify(quote, pub).has_value());
}

}  // namespace
