#include <gtest/gtest.h>

#include <memory>

#include "he/he_ibe.h"
#include "he/he_pki.h"

namespace {

using ibbe::core::Identity;
using ibbe::he::GroupScheme;
using ibbe::util::Bytes;

std::vector<Identity> make_users(std::size_t n) {
  std::vector<Identity> users;
  for (std::size_t i = 0; i < n; ++i) users.push_back("u" + std::to_string(i));
  return users;
}

/// Both baselines must satisfy the same access-control contract; run the
/// suite against each.
class HeSchemeTest : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<GroupScheme> make() {
    if (std::string(GetParam()) == "pki") {
      return std::make_unique<ibbe::he::HePkiScheme>(42);
    }
    return std::make_unique<ibbe::he::HeIbeScheme>(42);
  }
};

INSTANTIATE_TEST_SUITE_P(Baselines, HeSchemeTest, ::testing::Values("pki", "ibe"));

TEST_P(HeSchemeTest, MembersShareOneKey) {
  auto scheme = make();
  auto users = make_users(5);
  scheme->create_group(users);
  auto first = scheme->user_decrypt(users[0]);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->size(), 32u);
  for (const auto& id : users) {
    auto gk = scheme->user_decrypt(id);
    ASSERT_TRUE(gk.has_value()) << id;
    EXPECT_EQ(*gk, *first) << id;
  }
  EXPECT_EQ(scheme->group_size(), 5u);
}

TEST_P(HeSchemeTest, NonMemberGetsNothing) {
  auto scheme = make();
  scheme->create_group(make_users(3));
  EXPECT_FALSE(scheme->user_decrypt("stranger").has_value());
}

TEST_P(HeSchemeTest, AddUserJoinsCurrentKey) {
  auto scheme = make();
  auto users = make_users(3);
  scheme->create_group(users);
  auto before = scheme->user_decrypt(users[0]);
  scheme->add_user("newbie");
  auto newbie = scheme->user_decrypt("newbie");
  ASSERT_TRUE(newbie.has_value());
  EXPECT_EQ(*newbie, *before);  // add does not rotate gk
  EXPECT_EQ(scheme->group_size(), 4u);
}

TEST_P(HeSchemeTest, RemoveRotatesKeyAndRevokes) {
  auto scheme = make();
  auto users = make_users(4);
  scheme->create_group(users);
  auto before = scheme->user_decrypt(users[0]);
  scheme->remove_user(users[2]);
  EXPECT_FALSE(scheme->user_decrypt(users[2]).has_value());
  auto after = scheme->user_decrypt(users[0]);
  ASSERT_TRUE(after.has_value());
  EXPECT_NE(*after, *before);  // rotation on revocation
  EXPECT_EQ(scheme->group_size(), 3u);
  // Remaining members converge on the new key.
  EXPECT_EQ(scheme->user_decrypt(users[1]), after);
  EXPECT_EQ(scheme->user_decrypt(users[3]), after);
}

TEST_P(HeSchemeTest, MetadataGrowsLinearly) {
  // The weakness the paper's Fig. 2b shows: linear metadata expansion.
  auto scheme = make();
  scheme->create_group(make_users(4));
  auto small = scheme->metadata_size();
  scheme->create_group(make_users(16));
  auto large = scheme->metadata_size();
  EXPECT_GT(large, 3 * small);
  EXPECT_LT(large, 6 * small);
}

TEST_P(HeSchemeTest, RemoveUnknownUserIsHarmless) {
  auto scheme = make();
  auto users = make_users(2);
  scheme->create_group(users);
  auto before = scheme->user_decrypt(users[0]);
  ASSERT_TRUE(before.has_value());
  scheme->remove_user("ghost");
  // gk may rotate (the scheme need not check membership first), but members
  // must still decrypt consistently.
  auto after = scheme->user_decrypt(users[0]);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(scheme->user_decrypt(users[1]), after);
}

TEST_P(HeSchemeTest, RecreateResetsMembership) {
  auto scheme = make();
  scheme->create_group(make_users(3));
  scheme->create_group({make_users(2)});
  EXPECT_EQ(scheme->group_size(), 2u);
  EXPECT_FALSE(scheme->user_decrypt("u2").has_value());
}

TEST(HePki, RegisterUsersMakesKeysStable) {
  ibbe::he::HePkiScheme scheme(7);
  auto users = make_users(3);
  scheme.register_users(users);
  scheme.create_group(users);
  auto gk = scheme.user_decrypt(users[0]);
  EXPECT_TRUE(gk.has_value());
}

TEST(HeIbe, PerUserCiphertextsDiffer) {
  ibbe::he::HeIbeScheme scheme(7);
  auto users = make_users(2);
  scheme.create_group(users);
  // Identity-based: each member's entry is encrypted to their identity, so
  // cross-decryption is impossible by construction (checked via revocation
  // of one user not affecting structure of the other's entry).
  auto a = scheme.user_decrypt(users[0]);
  auto b = scheme.user_decrypt(users[1]);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, *b);
}

}  // namespace
