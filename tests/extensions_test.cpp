// Tests for the future-work extensions (paper §VIII): batch revocation,
// multi-administrator coordination, the audit log, and dynamic partition
// sizing.
#include <gtest/gtest.h>

#include "crypto/gcm.h"
#include "system/admin.h"
#include "system/advisor.h"
#include "system/client.h"
#include "system/oplog.h"

namespace {

using ibbe::core::Identity;
using ibbe::system::AdminApi;
using ibbe::system::AdminConfig;
using ibbe::system::ClientApi;
using ibbe::system::LogOp;
using ibbe::system::MembershipLog;
using ibbe::system::PartitionAdvisor;
using ibbe::util::Bytes;

std::vector<Identity> make_users(std::size_t n, std::size_t offset = 0) {
  std::vector<Identity> users;
  for (std::size_t i = 0; i < n; ++i) {
    users.push_back("user" + std::to_string(offset + i));
  }
  return users;
}

// ------------------------------------------------------------ batch removal

struct BatchFixture : ::testing::Test {
  BatchFixture() : rng(3), keys(ibbe::core::setup(16, rng)) {}

  ibbe::core::UserSecretKey usk(const Identity& id) {
    return ibbe::core::extract_user_key(keys.msk, id);
  }

  ibbe::crypto::Drbg rng;
  ibbe::core::SystemKeys keys;
};

TEST_F(BatchFixture, CoreBatchRemovalMatchesSequential) {
  auto users = make_users(8);
  auto enc = ibbe::core::encrypt_with_msk(keys.msk, keys.pk, users, rng);

  std::vector<Identity> leavers = {users[1], users[4], users[6]};
  auto batch = ibbe::core::remove_users_with_msk(keys.msk, keys.pk, enc.ct,
                                                 leavers, rng);

  // Sequential removals land on the same C3 (same receiver set).
  auto seq = enc;
  for (const auto& id : leavers) {
    seq = ibbe::core::remove_user_with_msk(keys.msk, keys.pk, seq.ct, id, rng);
  }
  EXPECT_EQ(batch.ct.c3, seq.ct.c3);

  std::vector<Identity> remaining = {users[0], users[2], users[3],
                                     users[5], users[7]};
  EXPECT_EQ(batch.ct.c3, ibbe::core::compute_c3_public(keys.pk, remaining));
  for (const auto& id : remaining) {
    auto bk = ibbe::core::decrypt(keys.pk, usk(id), remaining, batch.ct);
    ASSERT_TRUE(bk.has_value()) << id;
    EXPECT_EQ(*bk, batch.bk);
  }
  for (const auto& id : leavers) {
    EXPECT_FALSE(
        ibbe::core::decrypt(keys.pk, usk(id), remaining, batch.ct).has_value());
  }
}

TEST_F(BatchFixture, EmptyBatchIsRekey) {
  auto users = make_users(3);
  auto enc = ibbe::core::encrypt_with_msk(keys.msk, keys.pk, users, rng);
  auto batch =
      ibbe::core::remove_users_with_msk(keys.msk, keys.pk, enc.ct, {}, rng);
  EXPECT_EQ(batch.ct.c3, enc.ct.c3);  // membership unchanged
  EXPECT_NE(batch.bk, enc.bk);        // but re-keyed
}

TEST(BatchEnclave, OneGkRotationForWholeBatch) {
  ibbe::sgx::EnclavePlatform platform("batch-box");
  ibbe::enclave::IbbeEnclave enclave(platform, 8);
  std::vector<std::vector<Identity>> partitions = {make_users(4, 0),
                                                   make_users(4, 4)};
  auto group = enclave.ecall_create_group(partitions);

  // Revoke one user from each partition in a single ECALL.
  std::vector<ibbe::enclave::IbbeEnclave::BatchRemovalSpec> hosts = {
      {group.partitions[0].ct, {"user0"}},
      {group.partitions[1].ct, {"user5"}},
  };
  auto before = enclave.ecall_count();
  auto result = enclave.ecall_remove_users(hosts, {});
  EXPECT_EQ(enclave.ecall_count(), before + 1);
  ASSERT_EQ(result.partitions.size(), 2u);

  auto unwrap = [&](const Identity& id, std::span<const Identity> members,
                    const ibbe::enclave::PartitionCiphertext& pc)
      -> std::optional<Bytes> {
    auto usk = enclave.ecall_extract_user_key(id);
    auto bk = ibbe::core::decrypt(enclave.public_key(), usk, members, pc.ct);
    if (!bk) return std::nullopt;
    ibbe::crypto::Aes256Gcm gcm(bk->hash());
    return gcm.open(pc.nonce, pc.wrapped_gk);
  };

  std::vector<Identity> p0 = {"user1", "user2", "user3"};
  std::vector<Identity> p1 = {"user4", "user6", "user7"};
  auto gk0 = unwrap("user1", p0, result.partitions[0]);
  auto gk1 = unwrap("user4", p1, result.partitions[1]);
  ASSERT_TRUE(gk0.has_value());
  ASSERT_TRUE(gk1.has_value());
  EXPECT_EQ(*gk0, *gk1);  // one gk for the whole batch
  EXPECT_FALSE(unwrap("user0", p0, result.partitions[0]).has_value());
  EXPECT_FALSE(unwrap("user5", p1, result.partitions[1]).has_value());
}

struct SystemBatchFixture : ::testing::Test {
  SystemBatchFixture()
      : platform("box"),
        enclave(platform, 4),
        rng(5),
        admin(enclave, cloud, ibbe::pki::EcdsaKeyPair::generate(rng),
              AdminConfig{.partition_size = 4}, 6) {}

  ClientApi client(const Identity& id) {
    return ClientApi(cloud, enclave.public_key(),
                     enclave.ecall_extract_user_key(id),
                     admin.verification_point());
  }

  ibbe::sgx::EnclavePlatform platform;
  ibbe::enclave::IbbeEnclave enclave;
  ibbe::cloud::CloudStore cloud;
  ibbe::crypto::Drbg rng;
  AdminApi admin;
};

TEST_F(SystemBatchFixture, AdminBatchRemovalRevokesAllAtOnce) {
  auto users = make_users(10);
  admin.create_group("g", users);
  auto before = client(users[0]).fetch_group_key("g");
  ASSERT_TRUE(before.has_value());

  std::vector<Identity> leavers = {users[1], users[5], users[9]};
  auto ecalls_before = enclave.ecall_count();
  admin.remove_users("g", leavers);
  // One gk-rotation enclave round for the whole batch; the other two
  // crossings are the constant-size freshness attest/confirm pair around the
  // index CAS (docs/fault_model.md), not per-user work.
  EXPECT_EQ(enclave.ecall_count(), ecalls_before + 3);
  EXPECT_EQ(admin.group_size("g"), 7u);

  auto after = client(users[0]).fetch_group_key("g");
  ASSERT_TRUE(after.has_value());
  EXPECT_NE(*after, *before);
  for (const auto& id : leavers) {
    EXPECT_FALSE(client(id).fetch_group_key("g").has_value()) << id;
  }
  for (const auto& id : {users[2], users[4], users[8]}) {
    EXPECT_EQ(client(id).fetch_group_key("g"), after) << id;
  }
}

TEST_F(SystemBatchFixture, BatchRemovalDropsEmptiedPartitions) {
  admin.create_group("g", make_users(8));  // two full partitions of 4
  ASSERT_EQ(admin.partition_count("g"), 2u);
  // Empty the first partition entirely.
  admin.remove_users("g", make_users(4));
  EXPECT_EQ(admin.partition_count("g"), 1u);
  EXPECT_EQ(admin.group_size("g"), 4u);
}

TEST_F(SystemBatchFixture, BatchOfUnknownUsersIsNoOp) {
  admin.create_group("g", make_users(4));
  auto before = client("user0").fetch_group_key("g");
  std::vector<Identity> ghosts = {"ghost1", "ghost2"};
  admin.remove_users("g", ghosts);
  EXPECT_EQ(client("user0").fetch_group_key("g"), before);
}

// ------------------------------------------------------------- multi-admin

struct MultiAdminFixture : ::testing::Test {
  MultiAdminFixture()
      : platform("shared-admin-server"),
        enclave(platform, 8),
        rng(7),
        key_a(ibbe::pki::EcdsaKeyPair::generate(rng)),
        key_b(ibbe::pki::EcdsaKeyPair::generate(rng)) {
    AdminConfig config_a;
    config_a.partition_size = 4;
    config_a.multi_admin = true;
    config_a.admin_nonce = 1;
    config_a.peer_verification_keys = {ibbe::ec::p256_to_bytes(key_b.public_key())};
    admin_a = std::make_unique<AdminApi>(enclave, cloud, key_a, config_a, 8);

    AdminConfig config_b = config_a;
    config_b.admin_nonce = 2;
    config_b.peer_verification_keys = {ibbe::ec::p256_to_bytes(key_a.public_key())};
    admin_b = std::make_unique<AdminApi>(enclave, cloud, key_b, config_b, 9);
  }

  ClientApi client(const Identity& id) {
    return ClientApi(cloud, enclave.public_key(),
                     enclave.ecall_extract_user_key(id),
                     {key_a.public_key(), key_b.public_key()});
  }

  ibbe::sgx::EnclavePlatform platform;
  ibbe::enclave::IbbeEnclave enclave;
  ibbe::cloud::CloudStore cloud;
  ibbe::crypto::Drbg rng;
  ibbe::pki::EcdsaKeyPair key_a;
  ibbe::pki::EcdsaKeyPair key_b;
  std::unique_ptr<AdminApi> admin_a;
  std::unique_ptr<AdminApi> admin_b;
};

TEST_F(MultiAdminFixture, PeerSyncsGroupFromCloud) {
  admin_a->create_group("g", make_users(6));
  admin_b->sync_from_cloud("g");
  EXPECT_EQ(admin_b->group_size("g"), 6u);
  EXPECT_TRUE(admin_b->is_member("g", "user3"));
}

TEST_F(MultiAdminFixture, ConcurrentUpdatesConvergeViaCas) {
  admin_a->create_group("g", make_users(6));
  admin_b->sync_from_cloud("g");

  // B publishes first; A's cached index version is now stale.
  admin_b->add_user("g", "bob-side");
  admin_a->add_user("g", "alice-side");  // conflict -> resync -> retry

  EXPECT_GE(admin_a->stats().cas_conflicts, 1u);
  // A's final view contains both updates.
  EXPECT_TRUE(admin_a->is_member("g", "bob-side"));
  EXPECT_TRUE(admin_a->is_member("g", "alice-side"));
  EXPECT_EQ(admin_a->group_size("g"), 8u);

  // Both joiners can derive the key; metadata verifies under either admin key.
  EXPECT_TRUE(client("bob-side").fetch_group_key("g").has_value());
  EXPECT_TRUE(client("alice-side").fetch_group_key("g").has_value());
}

TEST_F(MultiAdminFixture, PeerRevocationIsPickedUp) {
  admin_a->create_group("g", make_users(6));
  admin_b->sync_from_cloud("g");

  admin_b->remove_user("g", "user2");  // rotates gk, mirrors sealed blob
  admin_a->add_user("g", "late");      // conflicts, resyncs, then succeeds

  EXPECT_FALSE(admin_a->is_member("g", "user2"));
  EXPECT_FALSE(client("user2").fetch_group_key("g").has_value());
  auto a = client("user0").fetch_group_key("g");
  auto b = client("late").fetch_group_key("g");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a, b);
}

TEST_F(MultiAdminFixture, CopyOnWriteKeepsCloudConsistent) {
  admin_a->create_group("g", make_users(4));  // full partition
  admin_b->sync_from_cloud("g");
  admin_a->add_user("g", "a-new");  // A creates a second partition
  // B's first attempt creates an orphan partition file (stale view), then the
  // CAS conflict triggers a re-sync; the retry joins A's open partition and
  // the garbage collector sweeps the orphan.
  admin_b->add_user("g", "b-new");

  admin_a->sync_from_cloud("g");
  EXPECT_TRUE(admin_a->is_member("g", "a-new"));
  EXPECT_TRUE(admin_a->is_member("g", "b-new"));
  EXPECT_EQ(admin_a->group_size("g"), 6u);

  // Exactly the live shards remain on the cloud — no stale copies, no
  // orphans from the failed attempt.
  std::size_t shard_files = cloud.list("groups/g/s").size();
  EXPECT_EQ(shard_files, admin_a->shard_count("g"));
  EXPECT_EQ(cloud.list("groups/g/").size(), admin_a->cloud_object_count("g"));

  // And every member still converges on one key.
  auto a = client("a-new").fetch_group_key("g");
  auto b = client("b-new").fetch_group_key("g");
  auto c = client("user0").fetch_group_key("g");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST_F(MultiAdminFixture, SyncRejectsUntrustedSignatures) {
  admin_a->create_group("g", make_users(4));
  // A rogue (unknown key) rewrites the index.
  ibbe::crypto::Drbg rogue_rng(99);
  auto rogue = ibbe::pki::EcdsaKeyPair::generate(rogue_rng);
  auto env = ibbe::system::SignedEnvelope::sign(rogue, Bytes{1, 2, 3});
  cloud.put("groups/g/index", env.to_bytes());
  EXPECT_THROW(admin_b->sync_from_cloud("g"), std::runtime_error);
}

// ---------------------------------------------------------------- audit log

TEST(MembershipLogTest, AppendAndAuditCleanChain) {
  ibbe::crypto::Drbg rng(11);
  auto key = ibbe::pki::EcdsaKeyPair::generate(rng);
  MembershipLog log;
  log.append(LogOp::create_group, "members=3", "alice-admin", key);
  log.append(LogOp::add_user, "dave", "alice-admin", key);
  log.append(LogOp::remove_user, "bob", "alice-admin", key);

  std::vector<ibbe::ec::P256Point> keys = {key.public_key()};
  auto result = log.audit(keys);
  EXPECT_TRUE(result.ok) << result.failure;
  EXPECT_EQ(log.size(), 3u);
}

TEST(MembershipLogTest, SerializationRoundTrip) {
  ibbe::crypto::Drbg rng(12);
  auto key = ibbe::pki::EcdsaKeyPair::generate(rng);
  MembershipLog log;
  log.append(LogOp::create_group, "members=2", "a", key);
  log.append(LogOp::add_user, "x", "a", key);
  auto back = MembershipLog::from_bytes(log.to_bytes());
  std::vector<ibbe::ec::P256Point> keys = {key.public_key()};
  EXPECT_TRUE(back.audit(keys).ok);
  EXPECT_EQ(back.size(), 2u);
}

TEST(MembershipLogTest, AuditDetectsTampering) {
  ibbe::crypto::Drbg rng(13);
  auto key = ibbe::pki::EcdsaKeyPair::generate(rng);
  MembershipLog log;
  log.append(LogOp::create_group, "members=2", "a", key);
  log.append(LogOp::add_user, "mallory", "a", key);
  log.append(LogOp::remove_user, "mallory", "a", key);
  std::vector<ibbe::ec::P256Point> keys = {key.public_key()};

  // Drop the revocation (truncation is visible only via external anchoring,
  // but *internal* splices are caught): replace entry 1's subject.
  auto bytes = log.to_bytes();
  auto tampered = MembershipLog::from_bytes(bytes);
  // Tamper by rebuilding from edited serialization: flip a subject byte.
  auto edited = bytes;
  // find "mallory" and corrupt it
  for (std::size_t i = 0; i + 7 <= edited.size(); ++i) {
    if (std::equal(edited.begin() + static_cast<std::ptrdiff_t>(i),
                   edited.begin() + static_cast<std::ptrdiff_t>(i + 7),
                   reinterpret_cast<const std::uint8_t*>("mallory"))) {
      edited[i] = 'M';
      break;
    }
  }
  auto forged = MembershipLog::from_bytes(edited);
  auto result = forged.audit(keys);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.first_bad_index, 1u);
}

TEST(MembershipLogTest, AuditDetectsUnknownSigner) {
  ibbe::crypto::Drbg rng(14);
  auto key = ibbe::pki::EcdsaKeyPair::generate(rng);
  auto rogue = ibbe::pki::EcdsaKeyPair::generate(rng);
  MembershipLog log;
  log.append(LogOp::create_group, "m=1", "a", key);
  log.append(LogOp::add_user, "evil", "a", rogue);  // rogue-signed entry
  std::vector<ibbe::ec::P256Point> keys = {key.public_key()};
  auto result = log.audit(keys);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.first_bad_index, 1u);
}

TEST(AdminLogIntegration, EveryOperationIsLoggedAndAuditable) {
  ibbe::sgx::EnclavePlatform platform("logged");
  ibbe::enclave::IbbeEnclave enclave(platform, 4);
  ibbe::cloud::CloudStore cloud;
  ibbe::crypto::Drbg rng(15);
  auto key = ibbe::pki::EcdsaKeyPair::generate(rng);
  AdminConfig config;
  config.partition_size = 4;
  config.log_operations = true;
  config.admin_name = "ops@example.com";
  AdminApi admin(enclave, cloud, key, config, 16);

  admin.create_group("g", make_users(5));
  admin.add_user("g", "newbie");
  admin.remove_user("g", "user1");
  admin.add_user("g", "newbie");  // no-op: must NOT be logged

  // The log is mirrored to the cloud and audits cleanly.
  auto raw = cloud.get(ibbe::system::oplog_path("g"));
  ASSERT_TRUE(raw.has_value());
  auto log = MembershipLog::from_bytes(*raw);
  EXPECT_EQ(log.size(), 3u);
  std::vector<ibbe::ec::P256Point> keys = {key.public_key()};
  EXPECT_TRUE(log.audit(keys).ok);
  EXPECT_EQ(log.entries()[1].op, LogOp::add_user);
  EXPECT_EQ(log.entries()[1].subject, "newbie");
  EXPECT_EQ(log.entries()[2].op, LogOp::remove_user);
  EXPECT_EQ(log.entries()[2].admin, "ops@example.com");
}

// ------------------------------------------------------- partition advisor

TEST(Advisor, NoRemovalsMeansSmallestPartitions) {
  PartitionAdvisor advisor;
  advisor.record_add();
  advisor.record_decrypt();
  EXPECT_EQ(advisor.recommend(10000, 64, 4096), 64u);
}

TEST(Advisor, NoDecryptsMeansLargestPartitions) {
  PartitionAdvisor advisor;
  advisor.record_remove();
  EXPECT_EQ(advisor.recommend(10000, 64, 4096), 4096u);
}

TEST(Advisor, RemovalHeavyBeatsDecryptHeavy) {
  PartitionAdvisor removal_heavy;
  for (int i = 0; i < 100; ++i) removal_heavy.record_remove();
  removal_heavy.record_decrypt();

  PartitionAdvisor decrypt_heavy;
  decrypt_heavy.record_remove();
  for (int i = 0; i < 100; ++i) decrypt_heavy.record_decrypt();

  auto m_removal = removal_heavy.recommend(10000, 16, 100000);
  auto m_decrypt = decrypt_heavy.recommend(10000, 16, 100000);
  EXPECT_GT(m_removal, m_decrypt);
}

TEST(Advisor, MatchesClosedForm) {
  PartitionAdvisor::CostModel model;
  model.rekey_seconds = 4e-3;
  model.decrypt_seconds_per_member = 1e-3;
  PartitionAdvisor advisor(model);
  for (int i = 0; i < 10; ++i) advisor.record_remove();
  for (int i = 0; i < 40; ++i) advisor.record_decrypt();
  // m* = sqrt(10 * 1000 * 4e-3 / (40 * 1e-3)) = sqrt(1000) ~ 32.
  EXPECT_NEAR(static_cast<double>(advisor.recommend(1000, 1, 100000)), 31.6, 1.0);
}

TEST(Advisor, ClampsAndResets) {
  PartitionAdvisor advisor;
  for (int i = 0; i < 5; ++i) advisor.record_remove();
  advisor.record_decrypt();
  EXPECT_LE(advisor.recommend(100, 8, 64), 64u);
  EXPECT_GE(advisor.recommend(100, 8, 64), 8u);
  advisor.reset_window();
  EXPECT_EQ(advisor.removes(), 0u);
  EXPECT_EQ(advisor.recommend(100, 8, 64), 8u);  // back to "no removals"
}

TEST(AdaptivePartitioning, RepartitionAdoptsAdvisorRecommendation) {
  ibbe::sgx::EnclavePlatform platform("adaptive");
  ibbe::enclave::IbbeEnclave enclave(platform, 64);
  ibbe::cloud::CloudStore cloud;
  ibbe::crypto::Drbg rng(17);
  AdminConfig config;
  config.partition_size = 8;
  config.adaptive_partitioning = true;
  config.min_partition_size = 4;
  AdminApi admin(enclave, cloud, ibbe::pki::EcdsaKeyPair::generate(rng), config, 18);

  admin.create_group("g", make_users(24));  // 3 partitions of 8
  EXPECT_EQ(admin.partition_size_target("g"), 8u);

  // Removal-heavy window with no decrypt pressure: the advisor recommends
  // the maximum (the enclave bound, 64).
  for (const auto& id : {"user0", "user1", "user2", "user8", "user9", "user10"}) {
    admin.remove_user("g", id);
  }
  ASSERT_GT(admin.stats().repartitions, 0u);
  EXPECT_EQ(admin.partition_size_target("g"), 64u);
  // 18 survivors in one big partition.
  EXPECT_EQ(admin.partition_count("g"), 1u);
}

TEST(AdaptivePartitioning, DecryptPressureShrinksPartitions) {
  ibbe::sgx::EnclavePlatform platform("adaptive2");
  ibbe::enclave::IbbeEnclave enclave(platform, 64);
  ibbe::cloud::CloudStore cloud;
  ibbe::crypto::Drbg rng(19);
  AdminConfig config;
  config.partition_size = 8;
  config.adaptive_partitioning = true;
  config.min_partition_size = 4;
  AdminApi admin(enclave, cloud, ibbe::pki::EcdsaKeyPair::generate(rng), config, 20);

  admin.create_group("g", make_users(24));
  // Overwhelming decrypt pressure from the client fleet.
  for (int i = 0; i < 100000; ++i) admin.advisor().record_decrypt();
  for (const auto& id : {"user0", "user1", "user2", "user8", "user9", "user10"}) {
    admin.remove_user("g", id);
  }
  ASSERT_GT(admin.stats().repartitions, 0u);
  EXPECT_EQ(admin.partition_size_target("g"), 4u);
}

}  // namespace
