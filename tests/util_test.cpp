#include <gtest/gtest.h>

#include <stdexcept>

#include "util/bytes.h"
#include "util/hex.h"
#include "util/stats.h"

namespace {

using ibbe::util::ByteReader;
using ibbe::util::Bytes;
using ibbe::util::ByteWriter;

TEST(Hex, RoundTrip) {
  Bytes data = {0x00, 0x01, 0xab, 0xff, 0x10};
  auto hex = ibbe::util::to_hex(data);
  EXPECT_EQ(hex, "0001abff10");
  EXPECT_EQ(ibbe::util::from_hex(hex), data);
}

TEST(Hex, AcceptsPrefixAndUppercase) {
  EXPECT_EQ(ibbe::util::from_hex("0xDEADBEEF"), (Bytes{0xde, 0xad, 0xbe, 0xef}));
}

TEST(Hex, RejectsOddLength) {
  EXPECT_THROW(ibbe::util::from_hex("abc"), std::invalid_argument);
}

TEST(Hex, RejectsBadDigit) {
  EXPECT_THROW(ibbe::util::from_hex("zz"), std::invalid_argument);
}

TEST(Hex, EmptyIsEmpty) {
  EXPECT_TRUE(ibbe::util::from_hex("").empty());
  EXPECT_EQ(ibbe::util::to_hex({}), "");
}

TEST(ByteIo, IntegersRoundTripBigEndian) {
  ByteWriter w;
  w.u8(0x12);
  w.u16(0x3456);
  w.u32(0x789abcde);
  w.u64(0x0123456789abcdefULL);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0x12);
  EXPECT_EQ(r.u16(), 0x3456);
  EXPECT_EQ(r.u32(), 0x789abcdeu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.empty());
}

TEST(ByteIo, BlobAndStringRoundTrip) {
  ByteWriter w;
  w.blob(Bytes{1, 2, 3});
  w.str("hello");
  w.blob(Bytes{});
  ByteReader r(w.bytes());
  EXPECT_EQ(r.blob(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.blob().empty());
  r.expect_end();
}

TEST(ByteIo, TruncatedReadThrows) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0);
  EXPECT_THROW(r.u32(), ibbe::util::DeserializeError);
}

TEST(ByteIo, TruncatedBlobThrows) {
  ByteWriter w;
  w.u32(100);  // claims 100 bytes follow
  w.u8(1);
  ByteReader r(w.bytes());
  EXPECT_THROW(r.blob(), ibbe::util::DeserializeError);
}

TEST(ByteIo, ExpectEndThrowsOnTrailing) {
  Bytes data{1, 2};
  ByteReader r(data);
  r.u8();
  EXPECT_THROW(r.expect_end(), ibbe::util::DeserializeError);
}

TEST(CtEqual, Basics) {
  Bytes a{1, 2, 3};
  Bytes b{1, 2, 3};
  Bytes c{1, 2, 4};
  Bytes d{1, 2};
  EXPECT_TRUE(ibbe::util::ct_equal(a, b));
  EXPECT_FALSE(ibbe::util::ct_equal(a, c));
  EXPECT_FALSE(ibbe::util::ct_equal(a, d));
  EXPECT_TRUE(ibbe::util::ct_equal({}, {}));
}

TEST(Summary, MeanMinMax) {
  ibbe::util::Summary s;
  for (double v : {4.0, 1.0, 3.0, 2.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_EQ(s.count(), 4u);
}

TEST(Summary, Percentile) {
  ibbe::util::Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
}

TEST(Summary, CdfIsMonotonic) {
  ibbe::util::Summary s;
  for (int i = 0; i < 57; ++i) s.add(i * 0.37);
  auto cdf = s.cdf(10);
  ASSERT_EQ(cdf.size(), 10u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].first, cdf[i].first);
    EXPECT_LT(cdf[i - 1].second, cdf[i].second);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(Summary, ThrowsWithoutSamples) {
  ibbe::util::Summary s;
  EXPECT_THROW(s.mean(), std::logic_error);
  EXPECT_THROW(s.percentile(0.5), std::logic_error);
}

TEST(Summary, Stddev) {
  ibbe::util::Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
}

TEST(ByteReader, CountAcceptsPlausiblePrefixes) {
  ByteWriter w;
  w.u32(3);
  w.raw(std::vector<std::uint8_t>(12, 0xaa));
  ByteReader r(w.bytes());
  EXPECT_EQ(r.count(4), 3u);
}

TEST(ByteReader, CountRejectsHostilePrefixBeforeAllocating) {
  // A count claiming more elements than the remaining bytes could possibly
  // encode must throw DeserializeError, not drive reserve() into bad_alloc.
  ByteWriter w;
  w.u32(0xffffffffu);
  w.raw(std::vector<std::uint8_t>(8, 0));
  ByteReader r(w.bytes());
  EXPECT_THROW((void)r.count(4), ibbe::util::DeserializeError);
}

}  // namespace
