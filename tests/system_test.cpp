#include <gtest/gtest.h>

#include <set>

#include "system/admin.h"
#include "system/client.h"
#include "system/ibbe_scheme.h"

namespace {

using namespace std::chrono_literals;
using ibbe::core::Identity;
using ibbe::system::AdminApi;
using ibbe::system::AdminConfig;
using ibbe::system::ClientApi;
using ibbe::system::GroupId;
using ibbe::util::Bytes;

std::vector<Identity> make_users(std::size_t n, std::size_t offset = 0) {
  std::vector<Identity> users;
  for (std::size_t i = 0; i < n; ++i) {
    users.push_back("user" + std::to_string(offset + i));
  }
  return users;
}

struct SystemFixture : ::testing::Test {
  SystemFixture()
      : platform("admin-box"),
        enclave(platform, 8),
        rng(11),
        admin(enclave, cloud, ibbe::pki::EcdsaKeyPair::generate(rng),
              AdminConfig{.partition_size = 3, .repartitioning = true},
              /*seed=*/5) {}

  ClientApi client(const Identity& id) {
    return ClientApi(cloud, enclave.public_key(),
                     enclave.ecall_extract_user_key(id),
                     admin.verification_point());
  }

  ibbe::sgx::EnclavePlatform platform;
  ibbe::enclave::IbbeEnclave enclave;
  ibbe::cloud::CloudStore cloud;
  ibbe::crypto::Drbg rng;
  AdminApi admin;
  const GroupId gid = "team-alpha";
};

TEST_F(SystemFixture, CreateGroupSplitsIntoFixedPartitions) {
  admin.create_group(gid, make_users(8));
  EXPECT_EQ(admin.group_size(gid), 8u);
  EXPECT_EQ(admin.partition_count(gid), 3u);  // 3+3+2 under |p|=3
  // Cloud layout: exactly the objects the admin accounts for — manifest,
  // sealed gk, the member-list shards, the cipher bundle (create is a
  // snapshot barrier: no overlays, no retained deltas).
  EXPECT_EQ(cloud.list("groups/" + gid + "/").size(),
            admin.cloud_object_count(gid));
  EXPECT_EQ(cloud.list("groups/" + gid + "/s").size(), admin.shard_count(gid));
}

TEST_F(SystemFixture, EveryMemberDerivesTheSameKey) {
  auto users = make_users(7);
  admin.create_group(gid, users);
  std::optional<Bytes> seen;
  for (const auto& id : users) {
    auto c = client(id);
    auto gk = c.fetch_group_key(gid);
    ASSERT_TRUE(gk.has_value()) << id;
    if (!seen) seen = *gk;
    EXPECT_EQ(*gk, *seen) << id;
  }
}

TEST_F(SystemFixture, NonMemberCannotDeriveKey) {
  admin.create_group(gid, make_users(4));
  auto c = client("outsider");
  EXPECT_FALSE(c.fetch_group_key(gid).has_value());
}

TEST_F(SystemFixture, AddUserGrantsAccessWithoutRotation) {
  auto users = make_users(4);
  admin.create_group(gid, users);
  auto before = client(users[0]).fetch_group_key(gid);

  admin.add_user(gid, "late-joiner");
  auto joined = client("late-joiner").fetch_group_key(gid);
  ASSERT_TRUE(joined.has_value());
  EXPECT_EQ(*joined, *before);  // adds do not re-key (paper semantics)
  EXPECT_EQ(admin.group_size(gid), 5u);
}

TEST_F(SystemFixture, AddOverflowsIntoNewPartition) {
  admin.create_group(gid, make_users(6));  // two full partitions of 3
  EXPECT_EQ(admin.partition_count(gid), 2u);
  admin.add_user(gid, "overflow");
  EXPECT_EQ(admin.partition_count(gid), 3u);
  EXPECT_TRUE(client("overflow").fetch_group_key(gid).has_value());
}

TEST_F(SystemFixture, DuplicateAddIsIdempotent) {
  admin.create_group(gid, make_users(3));
  admin.add_user(gid, "user1");
  EXPECT_EQ(admin.group_size(gid), 3u);
}

TEST_F(SystemFixture, RemoveRevokesAndRotates) {
  auto users = make_users(6);
  admin.create_group(gid, users);
  auto before = client(users[0]).fetch_group_key(gid);
  ASSERT_TRUE(before.has_value());

  admin.remove_user(gid, users[4]);
  EXPECT_EQ(admin.group_size(gid), 5u);
  EXPECT_FALSE(admin.is_member(gid, users[4]));

  auto revoked = client(users[4]).fetch_group_key(gid);
  EXPECT_FALSE(revoked.has_value());

  // Remaining members (across *all* partitions) see one fresh key.
  auto after = client(users[0]).fetch_group_key(gid);
  ASSERT_TRUE(after.has_value());
  EXPECT_NE(*after, *before);
  for (const auto& id : {users[1], users[2], users[3], users[5]}) {
    auto gk = client(id).fetch_group_key(gid);
    ASSERT_TRUE(gk.has_value()) << id;
    EXPECT_EQ(*gk, *after) << id;
  }
}

TEST_F(SystemFixture, RemoveUnknownUserIsNoOp) {
  admin.create_group(gid, make_users(3));
  auto before = client("user0").fetch_group_key(gid);
  admin.remove_user(gid, "ghost");
  EXPECT_EQ(client("user0").fetch_group_key(gid), before);
}

TEST_F(SystemFixture, EmptiedPartitionIsDropped) {
  admin.create_group(gid, make_users(3));
  admin.add_user(gid, "solo");  // new partition with a single member
  ASSERT_EQ(admin.partition_count(gid), 2u);
  admin.remove_user(gid, "solo");
  EXPECT_EQ(admin.partition_count(gid), 1u);
  // No stale objects: the footprint is exactly what the admin accounts for
  // (manifest, rotated gk, surviving shard, fresh cipher bundle, retained
  // delta chain).
  EXPECT_EQ(cloud.list("groups/" + gid + "/").size(),
            admin.cloud_object_count(gid));
}

TEST_F(SystemFixture, RepartitioningMergesSparsePartitions) {
  // Build 3 partitions of 3, then remove users until most are sparse.
  auto users = make_users(9);
  admin.create_group(gid, users);
  ASSERT_EQ(admin.partition_count(gid), 3u);
  auto before_repartitions = admin.stats().repartitions;

  // Removing one user from each partition leaves all at 2/3 occupancy =>
  // every partition below ceil(2/3*3)=2? occupancy 2 == threshold... remove
  // two users from two partitions to force clearly sparse layouts.
  admin.remove_user(gid, users[0]);
  admin.remove_user(gid, users[1]);
  admin.remove_user(gid, users[3]);
  admin.remove_user(gid, users[4]);

  EXPECT_GT(admin.stats().repartitions, before_repartitions);
  // After the rebuild the survivors still share one key.
  auto a = client(users[2]).fetch_group_key(gid);
  auto b = client(users[8]).fetch_group_key(gid);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, *b);
  // And the rebuilt layout is compact: 5 members in 2 partitions.
  EXPECT_EQ(admin.group_size(gid), 5u);
  EXPECT_EQ(admin.partition_count(gid), 2u);
}

TEST_F(SystemFixture, ClientRejectsForgedMetadata) {
  admin.create_group(gid, make_users(3));
  // A curious cloud tampers with the stored index.
  auto path = "groups/" + gid + "/index";
  auto raw = cloud.get(path);
  ASSERT_TRUE(raw.has_value());
  (*raw)[raw->size() / 2] ^= 1;
  cloud.put(path, *raw);
  auto c = client("user0");
  EXPECT_FALSE(c.fetch_group_key(gid).has_value());
  EXPECT_GT(c.stats().signature_failures, 0u);
}

TEST_F(SystemFixture, LongPollObservesMembershipChange) {
  auto users = make_users(3);
  admin.create_group(gid, users);
  auto c = client(users[0]);
  auto initial = c.fetch_group_key(gid);
  ASSERT_TRUE(initial.has_value());

  // No change: times out.
  EXPECT_FALSE(c.wait_for_update(gid, 30ms).has_value());

  // A revocation elsewhere rotates the key; the poller picks it up.
  admin.remove_user(gid, users[2]);
  auto updated = c.wait_for_update(gid, 1s);
  ASSERT_TRUE(updated.has_value());
  EXPECT_NE(*updated, *initial);
}

TEST_F(SystemFixture, MetadataSizeTracksCloudContent) {
  admin.create_group(gid, make_users(6));
  // Reported metadata should be close to what is actually stored for the
  // group (paths and envelope framing differ slightly).
  auto reported = admin.metadata_size(gid);
  auto stored = cloud.stored_bytes();
  EXPECT_GT(reported, 0u);
  EXPECT_NEAR(static_cast<double>(reported), static_cast<double>(stored),
              static_cast<double>(stored) * 0.2);
}

TEST_F(SystemFixture, UnknownGroupThrows) {
  EXPECT_THROW(admin.add_user("nope", "x"), std::out_of_range);
  EXPECT_THROW((void)admin.group_size("nope"), std::out_of_range);
}

TEST_F(SystemFixture, PartitionSizeMustFitEnclaveBound) {
  EXPECT_THROW(AdminApi(enclave, cloud, ibbe::pki::EcdsaKeyPair::generate(rng),
                        AdminConfig{.partition_size = 9}),
               std::invalid_argument);
}

// ------------------------------------------------------------ scheme adapter

TEST(IbbeSgxScheme, BehavesLikeAGroupScheme) {
  ibbe::system::IbbeSgxScheme scheme(/*partition_size=*/4, /*seed=*/3);
  auto users = make_users(6);
  scheme.create_group(users);
  EXPECT_EQ(scheme.group_size(), 6u);

  auto gk = scheme.user_decrypt(users[0]);
  ASSERT_TRUE(gk.has_value());

  scheme.add_user("extra");
  EXPECT_EQ(scheme.user_decrypt("extra"), gk);

  scheme.remove_user(users[0]);
  EXPECT_FALSE(scheme.user_decrypt(users[0]).has_value());
  auto rotated = scheme.user_decrypt(users[1]);
  ASSERT_TRUE(rotated.has_value());
  EXPECT_NE(*rotated, *gk);
  EXPECT_GT(scheme.metadata_size(), 0u);
}

TEST(IbbeSgxScheme, AddBeforeCreateBootstrapsGroup) {
  ibbe::system::IbbeSgxScheme scheme(4, 3);
  scheme.add_user("first");
  EXPECT_EQ(scheme.group_size(), 1u);
  EXPECT_TRUE(scheme.user_decrypt("first").has_value());
}

TEST(IbbeSgxScheme, ConstantMetadataPerPartition) {
  // The headline storage property: metadata is per-partition constant, so a
  // full partition of n users stores barely more than one of 1 user.
  ibbe::system::IbbeSgxScheme small(8, 1);
  std::vector<Identity> one = {"a"};
  small.create_group(one);
  ibbe::system::IbbeSgxScheme big(8, 1);
  big.create_group(make_users(8));
  // 8x the members, same single partition: only the member lists grow (each
  // identity appears once in the partition record and once in the index,
  // with 4-byte framing); the cryptographic payload stays constant.
  std::size_t per_member = 2 * (4 + 5);  // "userN" in record + index
  EXPECT_LT(big.metadata_size(), small.metadata_size() + 8 * per_member + 16);
}

}  // namespace
