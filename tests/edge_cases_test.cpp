// Edge cases and boundary behaviour across the stack — the "unhappy paths"
// that unit suites for the happy path tend to miss.
#include <gtest/gtest.h>

#include "crypto/drbg.h"
#include "field/fp2.h"
#include "ibbe/ibbe.h"
#include "pairing/pairing.h"

namespace {

using ibbe::bigint::U256;
using ibbe::crypto::Drbg;
using ibbe::field::Fp;
using ibbe::field::Fp2;
using ibbe::field::Fr;

// ------------------------------------------------------------------- field

TEST(FieldEdge, ZeroBehaviour) {
  EXPECT_TRUE(Fp::zero().is_zero());
  EXPECT_EQ(Fp::zero().neg(), Fp::zero());
  EXPECT_EQ(Fp::zero().square(), Fp::zero());
  EXPECT_THROW((void)Fp::zero().inverse(), std::domain_error);
  auto root = Fp::zero().sqrt();
  ASSERT_TRUE(root.has_value());
  EXPECT_TRUE(root->is_zero());
}

TEST(FieldEdge, MaxValueArithmetic) {
  // p-1 = -1: squares to 1, inverts to itself.
  Fp minus_one = Fp::zero() - Fp::one();
  EXPECT_EQ(minus_one.square(), Fp::one());
  EXPECT_EQ(minus_one.inverse(), minus_one);
  EXPECT_EQ(minus_one + Fp::one(), Fp::zero());
}

TEST(FieldEdge, PowZeroAndOne) {
  Fp a = Fp::from_u64(12345);
  EXPECT_EQ(a.pow(U256::zero()), Fp::one());
  EXPECT_EQ(a.pow(U256::one()), a);
  EXPECT_EQ(Fp::zero().pow(U256::from_u64(5)), Fp::zero());
}

TEST(FieldEdge, Fp2ZeroInverseThrows) {
  EXPECT_THROW((void)Fp2::zero().inverse(), std::domain_error);
}

TEST(FieldEdge, Fp2SqrtOfZeroAndOne) {
  auto z = Fp2::zero().sqrt();
  ASSERT_TRUE(z.has_value());
  EXPECT_TRUE(z->is_zero());
  auto o = Fp2::one().sqrt();
  ASSERT_TRUE(o.has_value());
  EXPECT_EQ(o->square(), Fp2::one());
}

TEST(FieldEdge, FrReductionBoundary) {
  // r itself reduces to zero; r-1 stays.
  EXPECT_TRUE(Fr::from_u256_reduce(Fr::modulus()).is_zero());
  U256 r_minus_1;
  ibbe::bigint::sub_with_borrow(Fr::modulus(), U256::one(), r_minus_1);
  EXPECT_FALSE(Fr::from_u256_reduce(r_minus_1).is_zero());
  EXPECT_THROW((void)Fr::from_u256(Fr::modulus()), std::invalid_argument);
}

// ------------------------------------------------------------------- curve

TEST(CurveEdge, NegationOfInfinity) {
  EXPECT_TRUE(ibbe::ec::G1::infinity().neg().is_infinity());
  EXPECT_TRUE((ibbe::ec::G1::infinity() + ibbe::ec::G1::infinity()).is_infinity());
}

TEST(CurveEdge, AddingInverseCoordinatesGivesInfinity) {
  auto g = ibbe::ec::G2::generator();
  auto p = g.scalar_mul(U256::from_u64(77));
  EXPECT_TRUE((p + p.neg()).is_infinity());
  EXPECT_TRUE((p - p).is_infinity());
}

TEST(CurveEdge, ScalarLargerThanOrderWraps) {
  // k and k + r act identically on order-r points.
  auto g = ibbe::ec::G1::generator();
  U256 k = U256::from_u64(123456789);
  U256 k_plus_r;
  ibbe::bigint::add_with_carry(k, ibbe::ec::bn_group_order(), k_plus_r);
  EXPECT_EQ(g.scalar_mul(k), g.scalar_mul(k_plus_r));
}

// -------------------------------------------------------------------- ibbe

struct IbbeEdge : ::testing::Test {
  IbbeEdge() : rng(31), keys(ibbe::core::setup(4, rng)) {}
  Drbg rng;
  ibbe::core::SystemKeys keys;
};

TEST_F(IbbeEdge, SingleUserGroupRoundTrips) {
  std::vector<ibbe::core::Identity> solo = {"only-member"};
  auto enc = ibbe::core::encrypt_with_msk(keys.msk, keys.pk, solo, rng);
  auto usk = ibbe::core::extract_user_key(keys.msk, solo[0]);
  auto bk = ibbe::core::decrypt(keys.pk, usk, solo, enc.ct);
  ASSERT_TRUE(bk.has_value());
  EXPECT_EQ(*bk, enc.bk);
  // The public path agrees even at the degenerate size.
  auto pub = ibbe::core::encrypt_public(keys.pk, solo, rng);
  EXPECT_EQ(pub.ct.c3, enc.ct.c3);
}

TEST_F(IbbeEdge, ExactlyFullPartitionWorks) {
  auto users = std::vector<ibbe::core::Identity>{"a", "b", "c", "d"};  // == m
  auto enc = ibbe::core::encrypt_with_msk(keys.msk, keys.pk, users, rng);
  auto usk = ibbe::core::extract_user_key(keys.msk, "d");
  EXPECT_TRUE(ibbe::core::decrypt(keys.pk, usk, users, enc.ct).has_value());
}

TEST_F(IbbeEdge, RemoveDownToSingleUser) {
  std::vector<ibbe::core::Identity> users = {"a", "b"};
  auto enc = ibbe::core::encrypt_with_msk(keys.msk, keys.pk, users, rng);
  auto rem = ibbe::core::remove_user_with_msk(keys.msk, keys.pk, enc.ct, "b", rng);
  std::vector<ibbe::core::Identity> remaining = {"a"};
  auto usk = ibbe::core::extract_user_key(keys.msk, "a");
  auto bk = ibbe::core::decrypt(keys.pk, usk, remaining, rem.ct);
  ASSERT_TRUE(bk.has_value());
  EXPECT_EQ(*bk, rem.bk);
}

TEST_F(IbbeEdge, RemoveEveryUserLeavesUndecryptableCiphertext) {
  std::vector<ibbe::core::Identity> users = {"a"};
  auto enc = ibbe::core::encrypt_with_msk(keys.msk, keys.pk, users, rng);
  auto rem = ibbe::core::remove_user_with_msk(keys.msk, keys.pk, enc.ct, "a", rng);
  // C3 collapses to h (empty product); no identity is in the receiver set.
  EXPECT_EQ(rem.ct.c3, keys.pk.h());
  auto usk = ibbe::core::extract_user_key(keys.msk, "a");
  EXPECT_FALSE(ibbe::core::decrypt(keys.pk, usk, {}, rem.ct).has_value());
}

TEST_F(IbbeEdge, DuplicateIdentitiesInReceiverSetStillDecrypt) {
  // Pathological caller input: the ciphertext then encodes (gamma+H(a))^2,
  // and decrypt with the *same duplicated set* remains consistent.
  std::vector<ibbe::core::Identity> dup = {"a", "a"};
  auto enc = ibbe::core::encrypt_with_msk(keys.msk, keys.pk, dup, rng);
  auto usk = ibbe::core::extract_user_key(keys.msk, "a");
  auto bk = ibbe::core::decrypt(keys.pk, usk, dup, enc.ct);
  ASSERT_TRUE(bk.has_value());
  EXPECT_EQ(*bk, enc.bk);
}

TEST_F(IbbeEdge, UnicodeAndLongIdentities) {
  std::vector<ibbe::core::Identity> users = {
      std::string("émile@exámple.com"), std::string(500, 'x'),
      std::string("\x01\x02 binary \xff id")};
  auto enc = ibbe::core::encrypt_with_msk(keys.msk, keys.pk, users, rng);
  for (const auto& id : users) {
    auto usk = ibbe::core::extract_user_key(keys.msk, id);
    auto bk = ibbe::core::decrypt(keys.pk, usk, users, enc.ct);
    ASSERT_TRUE(bk.has_value());
    EXPECT_EQ(*bk, enc.bk);
  }
}

TEST_F(IbbeEdge, RekeyOfRekeyStaysConsistent) {
  std::vector<ibbe::core::Identity> users = {"a", "b"};
  auto enc = ibbe::core::encrypt_with_msk(keys.msk, keys.pk, users, rng);
  auto r1 = ibbe::core::rekey(keys.pk, enc.ct, rng);
  auto r2 = ibbe::core::rekey(keys.pk, r1.ct, rng);
  EXPECT_NE(r1.bk, r2.bk);
  auto usk = ibbe::core::extract_user_key(keys.msk, "b");
  auto bk = ibbe::core::decrypt(keys.pk, usk, users, r2.ct);
  ASSERT_TRUE(bk.has_value());
  EXPECT_EQ(*bk, r2.bk);
}

}  // namespace
