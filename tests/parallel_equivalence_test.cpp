// Parallel-equivalence suite (the test tentpole of the parallel engine PR),
// in the differential style of strategy_equivalence_test: every parallelized
// path — decrypt_batched (both overloads), Pippenger per-window MSM, the
// enclave's create / remove / batch-remove fan-outs (which back AdminApi
// create, re-partition and batch-revoke), and HeIbeScheme::grant_many — is
// run at t = 1 / 2 / 4 / 7 pool threads and its outputs compared BITWISE
// against the t = 1 serial path. The determinism contract under test: all
// randomness is drawn serially on the calling thread in the serial order,
// workers write only pre-sized slots, so the pool changes WHEN work happens
// but never WHAT is computed.
//
// The suite is wired into the default, portable-field, ASan and TSan trees
// by scripts/ci.sh; the first test doubles as the TSan first-use hammer for
// the lazily-initialized shared state (GLV/GLS contexts, comb/generator
// tables, GT exponentiation contexts, Montgomery backend dispatch).
#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <stdexcept>
#include <vector>

#include "crypto/drbg.h"
#include "ec/msm.h"
#include "enclave/ibbe_enclave.h"
#include "he/he_ibe.h"
#include "ibbe/ibbe.h"
#include "pairing/pairing.h"
#include "sgx/enclave.h"
#include "test_util.h"
#include "util/thread_pool.h"

namespace ibbe {
namespace {

using core::BroadcastCiphertext;
using core::Identity;
using util::ThreadPool;

const std::vector<std::size_t> kThreadSweep = {1, 2, 4, 7};

/// Every test leaves the global pool in single-thread mode so suites that
/// run after this one see the default serial behavior.
struct GlobalThreadsGuard {
  ~GlobalThreadsGuard() { ThreadPool::set_global_threads(1); }
};

std::vector<Identity> make_ids(std::size_t n, const std::string& prefix) {
  std::vector<Identity> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ids.push_back(prefix + std::to_string(i));
  }
  return ids;
}

// ---------------------------------------------------------------------------
// Declared FIRST so it runs first in this binary: hammer the lazily-built
// shared singletons (GLV/GLS decomposition contexts, the G1 generator comb,
// the G2 4-dim generator comb, the GT exponentiation contexts, the pairing
// tower constants, the Montgomery backend dispatch) from many pool workers
// at once, while they are still uninitialized in this process. Under TSan
// this pins that every one of them is a magic static / properly synchronized
// — the latent hazard the parallel paths would otherwise hit on first use.
TEST(ParallelEquivalenceTest, ConcurrentFirstUseOfLazySingletons) {
  GlobalThreadsGuard guard;
  ThreadPool::set_global_threads(7);
  const field::Fr s = testutil::random_nonzero_fr();
  std::vector<util::Bytes> g1(32), g2(32), gt(32), pair(32);
  ThreadPool::global().parallel_for(0, 32, 1, [&](std::size_t i) {
    field::Fr k = s + field::Fr::from_u64(i);
    g1[i] = ec::g1_to_bytes(ec::G1::generator().mul(k));     // GLV + G1 comb
    g2[i] = ec::g2_to_bytes(ec::G2::generator().mul(k));     // GLS + G2 comb4
    gt[i] = pairing::pairing(ec::G1::generator(), ec::G2::generator())
                .exp(k)
                .to_bytes();                                 // GT exp contexts
    pair[i] = pairing::pairing(ec::G1::generator().mul(k),
                               ec::G2::generator())
                  .to_bytes();                               // Miller + Mont
  });
  // Same inputs computed serially must match — the singletons the workers
  // raced to build are shared state, not per-thread state.
  for (std::size_t i = 0; i < 32; ++i) {
    field::Fr k = s + field::Fr::from_u64(i);
    EXPECT_EQ(g1[i], ec::g1_to_bytes(ec::G1::generator().mul(k)));
    EXPECT_EQ(g2[i], ec::g2_to_bytes(ec::G2::generator().mul(k)));
  }
}

// --------------------------------------------------------------- MSM layer

TEST(ParallelEquivalenceTest, PippengerMsmBitwiseAcrossThreadCounts) {
  GlobalThreadsGuard guard;
  // n > 32 routes msm_u256 to Pippenger (the Straus path has no fan-out);
  // the Fr overloads split first (GLV 2-way / GLS 4-way), multiplying the
  // point count the bucket stage sees.
  for (std::size_t n : {33u, 64u}) {
    std::vector<ec::G2> bases_g2(n);
    std::vector<ec::G1> bases_g1(n);
    std::vector<field::Fr> scalars(n);
    for (std::size_t i = 0; i < n; ++i) {
      bases_g2[i] = testutil::random_g2();
      bases_g1[i] = testutil::random_g1();
      scalars[i] = testutil::random_fr();
    }
    // Edge scalars in the mix: zero, one, r-neighborhood, all-ones.
    auto edges = testutil::edge_scalars();
    for (std::size_t i = 0; i < edges.size() && i < n; ++i) {
      scalars[i] = field::Fr::from_u256_reduce(edges[i]);
    }

    ThreadPool::set_global_threads(1);
    const util::Bytes serial_g2 =
        ec::g2_to_bytes(ec::msm(std::span<const ec::G2>(bases_g2), scalars));
    const util::Bytes serial_g1 =
        ec::g1_to_bytes(ec::msm(std::span<const ec::G1>(bases_g1), scalars));

    for (std::size_t t : kThreadSweep) {
      ThreadPool::set_global_threads(t);
      EXPECT_EQ(
          ec::g2_to_bytes(ec::msm(std::span<const ec::G2>(bases_g2), scalars)),
          serial_g2)
          << "n=" << n << " t=" << t;
      EXPECT_EQ(
          ec::g1_to_bytes(ec::msm(std::span<const ec::G1>(bases_g1), scalars)),
          serial_g1)
          << "n=" << n << " t=" << t;
    }
  }
}

// ------------------------------------------------------------- decrypt layer

struct DecryptFixture {
  core::SystemKeys keys;
  core::UserSecretKey usk;
  std::vector<std::vector<Identity>> receiver_sets;
  std::vector<BroadcastCiphertext> cts;

  /// `shapes[i]` is the receiver-set size of partition i; the subject user
  /// is a member of partition i iff member[i].
  DecryptFixture(std::uint64_t seed, const std::vector<std::size_t>& shapes,
                 const std::vector<bool>& member) {
    crypto::Drbg rng(seed);
    keys = core::setup(16, rng);
    usk = core::extract_user_key(keys.msk, "subject");
    for (std::size_t p = 0; p < shapes.size(); ++p) {
      auto ids = make_ids(shapes[p], "p" + std::to_string(p) + "-u");
      if (member[p] && !ids.empty()) ids[0] = "subject";
      // A shape beyond the PK bound cannot be encrypted; decrypt hits the
      // oversized -> nullopt path from the receiver list alone, so encrypt a
      // truncated set and keep the oversized list for the decrypt refs.
      auto enc_ids = ids;
      if (enc_ids.size() > keys.pk.max_receivers()) {
        enc_ids.resize(keys.pk.max_receivers());
      }
      auto enc = core::encrypt_with_msk(keys.msk, keys.pk, enc_ids, rng);
      receiver_sets.push_back(std::move(ids));
      cts.push_back(enc.ct);
    }
  }

  [[nodiscard]] std::vector<core::PartitionRef> refs() const {
    std::vector<core::PartitionRef> parts;
    for (std::size_t i = 0; i < cts.size(); ++i) {
      parts.push_back({receiver_sets[i], &cts[i]});
    }
    return parts;
  }
};

std::vector<std::optional<util::Bytes>> serialize(
    const std::vector<std::optional<pairing::Gt>>& v) {
  std::vector<std::optional<util::Bytes>> out;
  out.reserve(v.size());
  for (const auto& g : v) {
    out.push_back(g ? std::optional<util::Bytes>(g->to_bytes()) : std::nullopt);
  }
  return out;
}

TEST(ParallelEquivalenceTest, DecryptBatchedBitwiseAcrossThreadCounts) {
  GlobalThreadsGuard guard;
  // 4 member partitions of 16 plus nullopt shapes: a non-member partition
  // and an oversized one (17 > m = 16).
  const std::vector<std::size_t> shapes = {16, 16, 16, 16, 8, 17};
  const std::vector<bool> member = {true, true, true, true, false, true};
  DecryptFixture fx(0xDEC0DE, shapes, member);
  auto parts = fx.refs();

  ThreadPool::set_global_threads(1);
  const auto serial = serialize(core::decrypt_batched(fx.keys.pk, fx.usk, parts));
  ASSERT_EQ(serial.size(), shapes.size());
  EXPECT_FALSE(serial[4].has_value());  // non-member
  EXPECT_FALSE(serial[5].has_value());  // oversized
  // Semantic anchor: the batch agrees with the one-at-a-time decrypt.
  for (std::size_t i = 0; i < parts.size(); ++i) {
    auto one = core::decrypt(fx.keys.pk, fx.usk, fx.receiver_sets[i], fx.cts[i]);
    ASSERT_EQ(one.has_value(), serial[i].has_value()) << i;
    if (one) EXPECT_EQ(one->to_bytes(), *serial[i]) << i;
  }

  for (std::size_t t : kThreadSweep) {
    ThreadPool::set_global_threads(t);
    EXPECT_EQ(serialize(core::decrypt_batched(fx.keys.pk, fx.usk, parts)),
              serial)
        << "t=" << t;
  }
}

TEST(ParallelEquivalenceTest, DecryptBatchedEdgeShapes) {
  GlobalThreadsGuard guard;
  const std::vector<std::size_t> shapes = {4};
  const std::vector<bool> member = {true};
  DecryptFixture fx(0xED6E, shapes, member);
  for (std::size_t t : kThreadSweep) {
    ThreadPool::set_global_threads(t);
    // n = 0 partitions.
    EXPECT_TRUE(
        core::decrypt_batched(fx.keys.pk, fx.usk, std::span<const core::PartitionRef>())
            .empty());
    // n = 1 partition.
    auto parts = fx.refs();
    auto one = core::decrypt_batched(fx.keys.pk, fx.usk, parts);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_TRUE(one[0].has_value());
    // Null ciphertext throws regardless of thread count.
    core::PartitionRef bad{fx.receiver_sets[0], nullptr};
    EXPECT_THROW(core::decrypt_batched(fx.keys.pk, fx.usk,
                                       std::span<const core::PartitionRef>(&bad, 1)),
                 std::invalid_argument);
  }
}

TEST(ParallelEquivalenceTest, PreparedDecryptBatchedBitwiseAcrossThreadCounts) {
  GlobalThreadsGuard guard;
  const std::vector<std::size_t> shapes = {16, 16, 16, 16};
  const std::vector<bool> member = {true, true, true, true};
  DecryptFixture fx(0xBA7C4, shapes, member);

  std::vector<core::PreparedPartition> prepared;
  for (std::size_t i = 0; i < fx.cts.size(); ++i) {
    auto p = core::PreparedPartition::prepare(fx.keys.pk, fx.usk,
                                              fx.receiver_sets[i]);
    ASSERT_TRUE(p.has_value());
    prepared.push_back(std::move(*p));
  }
  std::vector<core::PreparedPartitionRef> refs;
  for (std::size_t i = 0; i < prepared.size(); ++i) {
    refs.push_back({&prepared[i], &fx.cts[i]});
  }

  ThreadPool::set_global_threads(1);
  std::vector<util::Bytes> serial;
  for (const auto& g : core::decrypt_batched(refs)) {
    serial.push_back(g.to_bytes());
  }

  for (std::size_t t : kThreadSweep) {
    ThreadPool::set_global_threads(t);
    auto got = core::decrypt_batched(refs);
    ASSERT_EQ(got.size(), serial.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].to_bytes(), serial[i]) << "t=" << t << " i=" << i;
    }
    // Empty input stays empty.
    EXPECT_TRUE(
        core::decrypt_batched(std::span<const core::PreparedPartitionRef>())
            .empty());
  }
}

// ------------------------------------------------------------- enclave layer

/// Two same-seed enclaves of the same image on one platform produce
/// bitwise-identical partition ciphertexts; only sealed_gk differs (seal
/// nonces come from platform entropy, outside the enclave DRBG). Run one at
/// t = 1 and the other at t, and compare every PartitionCiphertext.
TEST(ParallelEquivalenceTest, EnclaveCreateRemoveBitwiseAcrossThreadCounts) {
  GlobalThreadsGuard guard;
  sgx::EnclavePlatform platform("equiv-platform");
  constexpr std::uint64_t kSeed = 0x5EED;

  std::vector<std::vector<Identity>> partitions;
  for (std::size_t p = 0; p < 6; ++p) {
    partitions.push_back(make_ids(4, "g" + std::to_string(p) + "-u"));
  }

  // Serial oracle: a fresh seeded enclave driven entirely at t = 1.
  ThreadPool::set_global_threads(1);
  enclave::IbbeEnclave oracle(platform, 8, kSeed);
  auto serial_create = oracle.ecall_create_group(partitions);
  auto serial_remove = oracle.ecall_remove_user(
      serial_create.partitions[0].ct,
      std::vector<BroadcastCiphertext>{serial_create.partitions[1].ct,
                                       serial_create.partitions[2].ct},
      partitions[0][0]);
  std::vector<enclave::IbbeEnclave::BatchRemovalSpec> specs(2);
  specs[0] = {serial_create.partitions[3].ct, {partitions[3][1], partitions[3][2]}};
  specs[1] = {serial_create.partitions[4].ct, {partitions[4][0]}};
  auto serial_batch = oracle.ecall_remove_users(
      specs, std::vector<BroadcastCiphertext>{serial_create.partitions[5].ct});

  for (std::size_t t : kThreadSweep) {
    ThreadPool::set_global_threads(t);
    enclave::IbbeEnclave en(platform, 8, kSeed);
    auto create = en.ecall_create_group(partitions);
    ASSERT_EQ(create.partitions.size(), serial_create.partitions.size());
    for (std::size_t i = 0; i < create.partitions.size(); ++i) {
      EXPECT_EQ(create.partitions[i].to_bytes(),
                serial_create.partitions[i].to_bytes())
          << "create t=" << t << " i=" << i;
    }

    auto remove = en.ecall_remove_user(
        create.partitions[0].ct,
        std::vector<BroadcastCiphertext>{create.partitions[1].ct,
                                         create.partitions[2].ct},
        partitions[0][0]);
    ASSERT_EQ(remove.partitions.size(), serial_remove.partitions.size());
    for (std::size_t i = 0; i < remove.partitions.size(); ++i) {
      EXPECT_EQ(remove.partitions[i].to_bytes(),
                serial_remove.partitions[i].to_bytes())
          << "remove t=" << t << " i=" << i;
    }

    auto batch = en.ecall_remove_users(
        specs, std::vector<BroadcastCiphertext>{create.partitions[5].ct});
    ASSERT_EQ(batch.partitions.size(), serial_batch.partitions.size());
    for (std::size_t i = 0; i < batch.partitions.size(); ++i) {
      EXPECT_EQ(batch.partitions[i].to_bytes(),
                serial_batch.partitions[i].to_bytes())
          << "batch t=" << t << " i=" << i;
    }
  }
}

// ------------------------------------------------------------------ HE layer

TEST(ParallelEquivalenceTest, GrantManyBitwiseAcrossThreadCounts) {
  GlobalThreadsGuard guard;
  auto members = make_ids(24, "he-u");
  constexpr std::uint64_t kSeed = 0x6EA27;

  ThreadPool::set_global_threads(1);
  he::HeIbeScheme serial(kSeed);
  serial.create_group(members);
  serial.remove_user(members[3]);  // re-key path also runs grant_many
  const auto serial_digest = serial.entries_digest();

  for (std::size_t t : kThreadSweep) {
    ThreadPool::set_global_threads(t);
    he::HeIbeScheme scheme(kSeed);
    scheme.create_group(members);
    scheme.remove_user(members[3]);
    EXPECT_EQ(scheme.entries_digest(), serial_digest) << "t=" << t;
    // The granted credentials actually decrypt.
    auto gk = scheme.user_decrypt(members[5]);
    ASSERT_TRUE(gk.has_value());
    EXPECT_FALSE(scheme.user_decrypt(members[3]).has_value());
  }
}

// -------------------------------------------------- failure-path interaction

TEST(ParallelEquivalenceTest, WorkerExceptionLeavesCryptoPathsIntact) {
  GlobalThreadsGuard guard;
  ThreadPool::set_global_threads(4);

  const std::vector<std::size_t> shapes = {8, 8};
  const std::vector<bool> member = {true, true};
  DecryptFixture fx(0xFA11, shapes, member);
  auto parts = fx.refs();
  const auto before = serialize(core::decrypt_batched(fx.keys.pk, fx.usk, parts));

  // A worker task throws; the global pool must propagate it and survive.
  EXPECT_THROW(ThreadPool::global().parallel_for(
                   0, 64, 1,
                   [](std::size_t i) {
                     if (i == 17) throw std::runtime_error("worker fault");
                   }),
               std::runtime_error);

  // Subsequent parallel crypto on the same (reused) pool is unperturbed.
  EXPECT_EQ(serialize(core::decrypt_batched(fx.keys.pk, fx.usk, parts)),
            before);
}

}  // namespace
}  // namespace ibbe
