// The cyclotomic GT exponentiation engine (pairing/gt_exp.h) against the
// naive Fp12::pow / pow_cyclotomic oracles, plus the Karabina compression
// round-trips it builds on.
#include <gtest/gtest.h>

#include <vector>

#include "bigint/biguint.h"
#include "ec/curves.h"
#include "field/fields.h"
#include "field/fp12.h"
#include "pairing/gt_exp.h"
#include "pairing/pairing.h"
#include "test_util.h"

namespace {

using ibbe::bigint::BigUInt;
using ibbe::bigint::U256;
using ibbe::ec::G1;
using ibbe::ec::G2;
using ibbe::field::Fp12;
using ibbe::field::Fp12Compressed;
using ibbe::field::Fr;
using ibbe::testutil::kBnU;
using ibbe::testutil::random_gt;
using ibbe::testutil::random_u256;

/// Oracle: plain square-and-multiply in the full field (no cyclotomic or
/// order-r assumptions at all).
Fp12 pow_oracle(const Fp12& x, const U256& e) { return x.pow(e); }

// ------------------------------------------------------------- decomposition

TEST(GtDecompose, ReassemblesModR) {
  const BigUInt n = BigUInt::from_u256(Fr::modulus());
  const BigUInt lam = BigUInt::from_u256(ibbe::pairing::gt_lambda());
  for (int trial = 0; trial < 50; ++trial) {
    U256 k = ibbe::bigint::mod(random_u256(), Fr::modulus());
    auto d = ibbe::pairing::decompose_gt(k);
    BigUInt acc;
    BigUInt lam_pow(1);
    for (int i = 0; i < 4; ++i) {
      auto idx = static_cast<std::size_t>(i);
      EXPECT_LE(d.k[idx].bit_length(), 72u) << "sub-scalar " << i << " too long";
      BigUInt term = BigUInt::from_u256(d.k[idx]) * lam_pow % n;
      if (d.neg[idx] && !term.is_zero()) term = n - term;
      acc = (acc + term) % n;
      lam_pow = lam_pow * lam % n;
    }
    EXPECT_EQ(acc, BigUInt::from_u256(k));
  }
}

TEST(GtDecompose, LambdaIsSixUSquared) {
  BigUInt u(kBnU);
  EXPECT_EQ(BigUInt::from_u256(ibbe::pairing::gt_lambda()), BigUInt(6) * u * u);
}

TEST(GtDecompose, RejectsUnreducedScalar) {
  EXPECT_THROW(ibbe::pairing::decompose_gt(Fr::modulus()),
               std::invalid_argument);
}

// ----------------------------------------------------------------- gt_pow

TEST(GtPow, EdgeExponents) {
  Fp12 x = random_gt();
  // 0 and r (== 0 mod r) give the identity; 1 gives x back.
  EXPECT_TRUE(ibbe::pairing::gt_pow(x, U256::zero()).is_one());
  EXPECT_TRUE(ibbe::pairing::gt_pow(x, Fr::modulus()).is_one());
  EXPECT_EQ(ibbe::pairing::gt_pow(x, U256::one()), x);
  // r - 1 is the inverse, i.e. the conjugate for unitary elements.
  U256 r_minus_1 = (BigUInt::from_u256(Fr::modulus()) - BigUInt(1)).to_u256();
  EXPECT_EQ(ibbe::pairing::gt_pow(x, r_minus_1), x.conjugate());
  EXPECT_EQ(ibbe::pairing::gt_pow(x, r_minus_1), pow_oracle(x, r_minus_1));
}

TEST(GtPow, MatchesOracleOn63BitU) {
  Fp12 x = random_gt();
  EXPECT_EQ(ibbe::pairing::gt_pow(x, U256::from_u64(kBnU)),
            pow_oracle(x, U256::from_u64(kBnU)));
}

TEST(GtPow, MatchesOracleOnRandom256Bit) {
  for (int trial = 0; trial < 5; ++trial) {
    Fp12 x = random_gt();
    U256 k = random_u256();  // full 256 bits; gt_pow reduces mod r
    EXPECT_EQ(ibbe::pairing::gt_pow(x, k),
              pow_oracle(x, ibbe::bigint::mod(k, Fr::modulus())));
  }
}

TEST(GtPow, IdentityBaseStaysIdentity) {
  EXPECT_TRUE(ibbe::pairing::gt_pow(Fp12::one(), random_u256()).is_one());
}

// ---------------------------------------------------------------- gt_pow_u

TEST(GtPowU, MatchesOracleOnOrderRElements) {
  Fp12 x = random_gt();
  EXPECT_EQ(ibbe::pairing::gt_pow_u(x), pow_oracle(x, U256::from_u64(kBnU)));
}

TEST(GtPowU, MatchesOracleOutsideOrderRSubgroup) {
  // Easy-part outputs are cyclotomic but typically NOT order r — exactly the
  // elements the final exponentiation feeds through pow_u. Build one.
  Fp12 f = random_gt() + Fp12::one();  // generic nonzero field element
  Fp12 t = f.conjugate() * f.inverse();
  Fp12 x = t.frobenius().frobenius() * t;
  ASSERT_FALSE(x.is_one());
  EXPECT_EQ(ibbe::pairing::gt_pow_u(x), pow_oracle(x, U256::from_u64(kBnU)));
}

// ----------------------------------------------------- Karabina compression

TEST(Karabina, RoundTrip) {
  for (int trial = 0; trial < 5; ++trial) {
    Fp12 x = random_gt();
    EXPECT_EQ(x.compress().decompress(), x);
  }
}

TEST(Karabina, CompressedSquareMatchesCyclotomicSquare) {
  Fp12 x = random_gt();
  Fp12Compressed c = x.compress();
  Fp12 full = x;
  for (int step = 0; step < 8; ++step) {
    c = c.square();
    full = full.cyclotomic_square();
    EXPECT_EQ(c.decompress(), full) << "diverged at squaring " << step;
  }
}

TEST(Karabina, IdentityRoundTrips) {
  EXPECT_TRUE(Fp12::one().compress().decompress().is_one());
  EXPECT_TRUE(Fp12::one().compress().square().decompress().is_one());
}

TEST(Karabina, BatchDecompressMatchesSingle) {
  std::vector<Fp12Compressed> compressed;
  std::vector<Fp12> expected;
  Fp12Compressed run = random_gt().compress();
  for (int i = 0; i < 10; ++i) {
    run = run.square();
    compressed.push_back(run);
    expected.push_back(run.decompress());
  }
  auto batch = Fp12Compressed::decompress_many(compressed);
  ASSERT_EQ(batch.size(), expected.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i], expected[i]) << "element " << i;
  }
  EXPECT_TRUE(Fp12Compressed::decompress_many({}).empty());
}

// ------------------------------------------------------- engine integration

TEST(GtEngine, GtExpRoutesThroughEngine) {
  // Gt::exp and the oracle must agree on a real pairing output.
  auto e = ibbe::pairing::pairing(G1::generator(), G2::generator());
  Fr k = Fr::from_u256_reduce(random_u256());
  EXPECT_EQ(e.exp(k).value(), pow_oracle(e.value(), k.to_u256()));
}

TEST(GtEngine, FinalExponentiationStillMatchesNaive) {
  // pow_u now runs NAF-of-u over compressed squarings; the whole hard part
  // must still agree with the naive big-integer oracle.
  Fp12 f = ibbe::pairing::miller_loop(G1::generator(), G2::generator());
  EXPECT_EQ(ibbe::pairing::final_exponentiation(f),
            ibbe::pairing::final_exponentiation_naive(f));
}

TEST(GtEngine, FinalExponentiationManyMatchesSingle) {
  std::vector<Fp12> fs;
  for (int i = 1; i <= 4; ++i) {
    fs.push_back(ibbe::pairing::miller_loop(
        G1::generator().mul(Fr::from_u64(static_cast<std::uint64_t>(i))),
        G2::generator()));
  }
  auto batch = ibbe::pairing::final_exponentiation_many(fs);
  ASSERT_EQ(batch.size(), fs.size());
  for (std::size_t i = 0; i < fs.size(); ++i) {
    EXPECT_EQ(batch[i], ibbe::pairing::final_exponentiation(fs[i]));
  }
  EXPECT_TRUE(ibbe::pairing::final_exponentiation_many({}).empty());
}

}  // namespace
