// Sharded-index + incremental-delta behaviour (the million-user metadata
// layout): warm clients fold signed deltas instead of re-downloading the
// index, every fold failure degrades into the snapshot path (never a parse
// error or a wrong view), and the CachedIndex fold primitive rejects
// replays, gaps and structurally inconsistent deltas by construction.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>

#include "cloud/fault.h"
#include "system/admin.h"
#include "system/client.h"

namespace {

using namespace std::chrono_literals;
using ibbe::cloud::CloudStore;
using ibbe::cloud::FaultInjectingStore;
using ibbe::cloud::FaultPlan;
using ibbe::core::Identity;
using ibbe::system::AdminApi;
using ibbe::system::AdminConfig;
using ibbe::system::CachedIndex;
using ibbe::system::ClientApi;
using ibbe::system::DeltaOp;
using ibbe::system::GroupId;
using ibbe::system::IndexDelta;
using ibbe::system::SignedEnvelope;
using ibbe::util::Bytes;

std::vector<Identity> make_users(std::size_t n, std::size_t offset = 0) {
  std::vector<Identity> users;
  for (std::size_t i = 0; i < n; ++i) {
    users.push_back("user" + std::to_string(offset + i));
  }
  return users;
}

/// The delta files currently on the cloud for `gid`, sorted by sequence
/// number (numeric — "d10" must sort after "d9").
std::vector<std::pair<std::uint64_t, std::string>> delta_files(
    const CloudStore& cloud, const GroupId& gid) {
  std::vector<std::pair<std::uint64_t, std::string>> out;
  for (const auto& path : cloud.list("groups/" + gid + "/d")) {
    auto pos = path.rfind("/d");
    out.emplace_back(std::stoull(path.substr(pos + 2)), path);
  }
  std::sort(out.begin(), out.end());
  return out;
}

struct ShardDeltaFixture : ::testing::Test {
  ShardDeltaFixture() : platform("delta-box"), enclave(platform, 8), rng(17) {}

  AdminApi admin_on(CloudStore& store, AdminConfig config,
                    std::uint64_t seed = 5) {
    return AdminApi(enclave, store, ibbe::pki::EcdsaKeyPair::generate(rng),
                    config, seed);
  }

  ClientApi client_on(CloudStore& store, const AdminApi& admin,
                      const Identity& id) {
    return ClientApi(store, enclave.public_key(),
                     enclave.ecall_extract_user_key(id),
                     admin.verification_point());
  }

  ibbe::sgx::EnclavePlatform platform;
  ibbe::enclave::IbbeEnclave enclave;
  ibbe::crypto::Drbg rng;
  const GroupId gid = "g";
};

// ---------------------------------------------------------------------------
// Warm path: fold, don't re-download
// ---------------------------------------------------------------------------

TEST_F(ShardDeltaFixture, WarmClientFoldsDeltaInsteadOfSnapshot) {
  ibbe::cloud::CloudStore cloud;
  auto admin = admin_on(cloud, {.partition_size = 3});
  admin.create_group(gid, make_users(6));

  auto c = client_on(cloud, admin, "user0");
  ASSERT_TRUE(c.fetch_group_key(gid).has_value());  // cold: full snapshot
  EXPECT_EQ(c.stats().delta_folds, 0u);

  admin.add_user(gid, "late-joiner");
  EXPECT_EQ(admin.stats().deltas_published, 1u);

  auto key = c.fetch_group_key(gid);
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(c.stats().delta_folds, 1u);      // exactly the one new commit
  EXPECT_EQ(c.stats().fold_fallbacks, 0u);   // no snapshot re-download
  EXPECT_EQ(c.stats().degraded_refetches, 0u);
  EXPECT_EQ(*key, *client_on(cloud, admin, "late-joiner").fetch_group_key(gid));

  // No change since: the warm path re-reads the manifest and nothing else.
  auto gets_before = cloud.stats().gets;
  ASSERT_TRUE(c.fetch_group_key(gid).has_value());
  EXPECT_EQ(c.stats().delta_folds, 1u);
  EXPECT_LE(cloud.stats().gets - gets_before, 2u);
}

TEST_F(ShardDeltaFixture, DeltaGapFallsBackToSnapshot) {
  ibbe::cloud::CloudStore cloud;
  // Retain only 2 deltas: three commits later a warm cache is out of window.
  auto admin = admin_on(cloud, {.partition_size = 3, .delta_window = 2});
  admin.create_group(gid, make_users(6));

  auto c = client_on(cloud, admin, "user0");
  ASSERT_TRUE(c.fetch_group_key(gid).has_value());

  for (int i = 0; i < 3; ++i) admin.add_user(gid, "j" + std::to_string(i));
  EXPECT_EQ(delta_files(cloud, gid).size(), 2u);  // window enforced by GC

  auto key = c.fetch_group_key(gid);
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(c.stats().fold_fallbacks, 1u);  // gap -> snapshot, not an error
  EXPECT_EQ(c.stats().delta_folds, 0u);

  // The freshly snapshotted cache is warm again: the next commit folds.
  admin.add_user(gid, "j3");
  ASSERT_TRUE(c.fetch_group_key(gid).has_value());
  EXPECT_EQ(c.stats().delta_folds, 1u);
  EXPECT_EQ(c.stats().fold_fallbacks, 1u);
}

TEST_F(ShardDeltaFixture, WarmClientFoldsAcrossShardRepartition) {
  ibbe::cloud::CloudStore cloud;
  auto admin =
      admin_on(cloud, {.partition_size = 3, .repartitioning = true,
                       .shard_partitions = 2});
  // 12 users -> 4 full partitions -> 2 shards of 2.
  admin.create_group(gid, make_users(12));
  ASSERT_EQ(admin.partition_count(gid), 4u);
  ASSERT_EQ(admin.shard_count(gid), 2u);

  auto c = client_on(cloud, admin, "user0");
  ASSERT_TRUE(c.fetch_group_key(gid).has_value());

  // Empty out most of the second shard's partitions: 2 of its 2 partitions
  // drop below ceil(2m/3) while globally only 2 of 4 are sparse — the
  // shard-local rule fires, the global (snapshot-barrier) rebuild does not.
  admin.remove_users(gid, std::vector<Identity>{"user7", "user8", "user10",
                                                "user11"});
  EXPECT_EQ(admin.stats().shard_repartitions, 1u);
  EXPECT_EQ(admin.stats().repartitions, 0u);

  // The warm client folds the removes + the repartition op — no snapshot.
  auto key = c.fetch_group_key(gid);
  ASSERT_TRUE(key.has_value());
  EXPECT_GE(c.stats().delta_folds, 1u);
  EXPECT_EQ(c.stats().fold_fallbacks, 0u);

  // Survivors of the repartitioned shard share the rotated key; the revoked
  // users are out.
  EXPECT_EQ(*key, *client_on(cloud, admin, "user6").fetch_group_key(gid));
  EXPECT_EQ(*key, *client_on(cloud, admin, "user9").fetch_group_key(gid));
  EXPECT_FALSE(client_on(cloud, admin, "user7").fetch_group_key(gid));
}

// ---------------------------------------------------------------------------
// Fold rejection paths (all must degrade into the snapshot path)
// ---------------------------------------------------------------------------

TEST_F(ShardDeltaFixture, NonAdminSignedDeltaForcesSnapshot) {
  ibbe::cloud::CloudStore cloud;
  auto admin = admin_on(cloud, {.partition_size = 3});
  admin.create_group(gid, make_users(6));

  auto c = client_on(cloud, admin, "user0");
  ASSERT_TRUE(c.fetch_group_key(gid).has_value());

  admin.add_user(gid, "x");
  admin.add_user(gid, "y");
  auto deltas = delta_files(cloud, gid);
  ASSERT_EQ(deltas.size(), 2u);

  // A rogue (non-admin) key re-signs the FIRST delta's genuine payload. The
  // manifest's delta_hash only pins the newest delta; the older one is
  // caught by the per-delta signature check while folding.
  auto stored = cloud.get(deltas[0].second);
  ASSERT_TRUE(stored.has_value());
  auto env = SignedEnvelope::from_bytes(*stored);
  ibbe::crypto::Drbg rogue_rng(99);
  auto rogue = ibbe::pki::EcdsaKeyPair::generate(rogue_rng);
  (void)cloud.put(deltas[0].second,
                  SignedEnvelope::sign(rogue, env.payload).to_bytes());

  auto fails_before = c.stats().signature_failures;
  auto key = c.fetch_group_key(gid);
  ASSERT_TRUE(key.has_value());  // snapshot fallback still authenticates
  EXPECT_GE(c.stats().signature_failures, fails_before + 1);
  EXPECT_EQ(c.stats().fold_fallbacks, 1u);
  EXPECT_EQ(*key, *client_on(cloud, admin, "y").fetch_group_key(gid));
}

TEST_F(ShardDeltaFixture, TornDeltaReadDegradesToSnapshot) {
  ibbe::cloud::CloudStore inner;
  FaultInjectingStore faulty(inner, FaultPlan{});
  auto admin = admin_on(faulty, {.partition_size = 3});
  admin.create_group(gid, make_users(6));

  auto c = client_on(faulty, admin, "user0");
  ASSERT_TRUE(c.fetch_group_key(gid).has_value());

  admin.add_user(gid, "x");
  auto deltas = delta_files(inner, gid);
  ASSERT_EQ(deltas.size(), 1u);

  // A lagging replica serves the committed manifest but not the delta it
  // references: the fold degrades to a snapshot, it does not error.
  faulty.withhold_path(deltas[0].second);
  auto key = c.fetch_group_key(gid);
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(c.stats().fold_fallbacks, 1u);
  EXPECT_EQ(c.stats().delta_folds, 0u);
  EXPECT_GE(faulty.fault_stats().stale_reads, 1u);
}

TEST_F(ShardDeltaFixture, MissingShardDegradesLikeTornSnapshotThenRecovers) {
  ibbe::cloud::CloudStore inner;
  FaultInjectingStore faulty(inner, FaultPlan{});
  auto admin = admin_on(faulty, {.partition_size = 3});
  admin.create_group(gid, make_users(6));

  auto shards = inner.list("groups/" + gid + "/s");
  ASSERT_FALSE(shards.empty());
  faulty.withhold_path(shards[0]);

  // A cold client sees a committed manifest whose shard the replica does not
  // serve yet. That is the torn-snapshot re-fetch loop — bounded retries and
  // an `unavailable` verdict, never a parse error or a false non-member.
  auto c = client_on(faulty, admin, "user0");
  c.set_retry_policy({.max_attempts = 3,
                      .base_delay = std::chrono::microseconds(1),
                      .max_delay = std::chrono::microseconds(10)});
  auto result = c.fetch(gid);
  EXPECT_EQ(result.status, ClientApi::FetchStatus::unavailable);
  EXPECT_FALSE(result.key.has_value());
  EXPECT_GE(c.stats().degraded_refetches, 1u);

  // The replica catches up: the very next fetch succeeds.
  faulty.clear_withheld();
  auto healed = c.fetch(gid);
  EXPECT_EQ(healed.status, ClientApi::FetchStatus::ok);
  ASSERT_TRUE(healed.key.has_value());
}

// ---------------------------------------------------------------------------
// CachedIndex fold primitive
// ---------------------------------------------------------------------------

TEST(CachedIndexFold, ReplayedOrDuplicatedDeltaIsNoOp) {
  CachedIndex view;
  view.counter = 5;
  view.log_head.fill(0x11);
  view.add_partition(1, {"a", "b"});

  IndexDelta d;
  d.seq = 6;
  d.prev_log_head.fill(0x11);
  d.log_head.fill(0x22);
  DeltaOp add;
  add.kind = DeltaOp::Kind::add_member;
  add.user = "c";
  add.pid = 1;
  d.ops = {add};

  ASSERT_TRUE(view.apply(d));
  EXPECT_EQ(view.counter, 6u);
  EXPECT_EQ(view.member_count(), 3u);
  EXPECT_EQ(view.find_user("c"), std::optional<std::uint64_t>(1));

  // Replaying the very same delta is rejected by the seq/log-head chain and
  // leaves the view untouched.
  EXPECT_FALSE(view.apply(d));
  EXPECT_EQ(view.counter, 6u);
  EXPECT_EQ(view.member_count(), 3u);

  // A gap (seq jumps ahead) is rejected too.
  IndexDelta gap = d;
  gap.seq = 8;
  gap.prev_log_head = d.log_head;
  EXPECT_FALSE(view.apply(gap));

  // Right seq but the wrong chain (spliced from another history).
  IndexDelta spliced = d;
  spliced.seq = 7;
  spliced.prev_log_head.fill(0x77);
  EXPECT_FALSE(view.apply(spliced));
  EXPECT_EQ(view.counter, 6u);
}

TEST(CachedIndexFold, StructurallyInconsistentDeltaIsRejected) {
  CachedIndex view;
  view.counter = 1;
  view.add_partition(1, {"a"});

  // Removing a user who is not in the named partition cannot be folded.
  IndexDelta d;
  d.seq = 2;
  DeltaOp remove;
  remove.kind = DeltaOp::Kind::remove_member;
  remove.user = "ghost";
  remove.pid = 1;
  d.ops = {remove};
  EXPECT_FALSE(view.apply(d));
  EXPECT_EQ(view.member_count(), 1u);

  // Repartitioning a partition the view does not have: same verdict.
  DeltaOp repart;
  repart.kind = DeltaOp::Kind::repartition;
  repart.dropped = {42};
  d.ops = {repart};
  EXPECT_FALSE(view.apply(d));
  EXPECT_EQ(view.counter, 1u);
}

// ---------------------------------------------------------------------------
// Audit splice across the delta chain
// ---------------------------------------------------------------------------

TEST_F(ShardDeltaFixture, AuditCatchesLogSpliceAcrossDeltaChain) {
  ibbe::cloud::CloudStore cloud;
  auto admin = admin_on(cloud, {.partition_size = 3, .log_operations = true});
  admin.create_group(gid, make_users(6));
  admin.add_user(gid, "x");
  ASSERT_TRUE(admin.audit_group_log(gid).ok);

  // Snapshot the op-log mid-chain, land one more delta commit (whose
  // manifest anchors the new log head), then roll the cloud's op-log back to
  // the snapshot. The log alone is a perfectly valid chain — only the
  // anchor the delta-carrying manifest committed exposes the splice.
  auto old_log = cloud.get("groups/" + gid + "/oplog");
  ASSERT_TRUE(old_log.has_value());
  admin.remove_user(gid, "user1");
  ASSERT_TRUE(admin.audit_group_log(gid).ok);

  (void)cloud.put("groups/" + gid + "/oplog", *old_log);
  auto audit = admin.audit_group_log(gid);
  EXPECT_FALSE(audit.ok);
  EXPECT_FALSE(audit.failure.empty());
}

// ---------------------------------------------------------------------------
// Scale: O(1) lookups and O(1) objects per mutation
// ---------------------------------------------------------------------------

TEST(CachedIndexScale, MillionMemberLookupIsConstantTime) {
  // 1000 partitions x 1000 members. The seed's per-fetch linear scan was
  // O(total members); the hash map makes membership O(1) after one lazy
  // build. 200k lookups through a linear scan would take hours — the bound
  // below is generous for the map yet catches any scan regression.
  CachedIndex view;
  std::size_t uid = 0;
  for (std::uint64_t pid = 0; pid < 1000; ++pid) {
    std::vector<Identity> members;
    members.reserve(1000);
    for (int i = 0; i < 1000; ++i) members.push_back("u" + std::to_string(uid++));
    view.add_partition(pid, std::move(members));
  }
  ASSERT_EQ(view.member_count(), 1'000'000u);

  ASSERT_EQ(view.find_user("u0"), std::optional<std::uint64_t>(0));  // builds map

  auto start = std::chrono::steady_clock::now();
  std::size_t hits = 0;
  for (std::size_t i = 0; i < 200'000; ++i) {
    // Alternate hits (stride over the whole range) and guaranteed misses.
    if (i % 2 == 0) {
      hits += view.find_user("u" + std::to_string((i * 4999) % 1'000'000))
                  .has_value();
    } else {
      hits += view.find_user("nobody" + std::to_string(i)).has_value();
    }
  }
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_EQ(hits, 100'000u);
  EXPECT_LT(elapsed.count(), 2000) << "find_user is no longer O(1)";

  EXPECT_EQ(view.find_user("u999999"), std::optional<std::uint64_t>(999));
}

TEST_F(ShardDeltaFixture, MutationUploadsSameObjectCountRegardlessOfScale) {
  ibbe::cloud::CloudStore cloud;
  auto admin = admin_on(cloud, {.partition_size = 3, .shard_partitions = 2});
  admin.create_group("small", make_users(12));   //  4 partitions
  admin.create_group("big", make_users(48));     // 16 partitions

  auto puts = [&] { return cloud.stats().puts; };

  auto p0 = puts();
  admin.remove_user("small", "user5");
  auto small_remove = puts() - p0;
  admin.remove_user("big", "user5");
  auto big_remove = puts() - p0 - small_remove;
  // A revocation touches the host shard, the rotated cipher bundle, the
  // fresh sealed gk, the delta, the manifest and the gossip note — the same
  // object count whether the group has 4 partitions or 16.
  EXPECT_EQ(small_remove, big_remove);

  auto p1 = puts();
  admin.add_user("small", "fresh-a");
  auto small_add = puts() - p1;
  admin.add_user("big", "fresh-b");
  auto big_add = puts() - p1 - small_add;
  EXPECT_EQ(small_add, big_add);
  EXPECT_LE(small_add, small_remove);  // adds skip the bundle + gk rewrite
}

}  // namespace
