#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "crypto/gcm.h"
#include "enclave/ibbe_enclave.h"
#include "pki/ecies.h"
#include "sgx/attestation.h"

namespace {

using ibbe::core::Identity;
using ibbe::core::UserSecretKey;
using ibbe::enclave::IbbeEnclave;
using ibbe::enclave::PartitionCiphertext;
using ibbe::util::Bytes;

std::vector<Identity> make_users(std::size_t n, std::size_t offset = 0) {
  std::vector<Identity> users;
  for (std::size_t i = 0; i < n; ++i) {
    users.push_back("user" + std::to_string(offset + i));
  }
  return users;
}

/// Client-side recovery of gk from a partition ciphertext (what ClientApi
/// does at the system layer).
std::optional<Bytes> unwrap_gk(const ibbe::core::PublicKey& pk,
                               const UserSecretKey& usk,
                               std::span<const Identity> members,
                               const PartitionCiphertext& pc) {
  auto bk = ibbe::core::decrypt(pk, usk, members, pc.ct);
  if (!bk) return std::nullopt;
  ibbe::crypto::Aes256Gcm gcm(bk->hash());
  return gcm.open(pc.nonce, pc.wrapped_gk);
}

struct EnclaveFixture : ::testing::Test {
  EnclaveFixture() : platform("admin-server"), enclave(platform, 8) {}

  UserSecretKey usk(const Identity& id) {
    return enclave.ecall_extract_user_key(id);
  }

  ibbe::sgx::EnclavePlatform platform;
  IbbeEnclave enclave;
};

TEST_F(EnclaveFixture, CreateGroupAllMembersRecoverSameGk) {
  std::vector<std::vector<Identity>> partitions = {make_users(3, 0),
                                                   make_users(3, 3)};
  auto group = enclave.ecall_create_group(partitions);
  ASSERT_EQ(group.partitions.size(), 2u);

  std::optional<Bytes> gk_seen;
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    for (const auto& id : partitions[p]) {
      auto gk = unwrap_gk(enclave.public_key(), usk(id), partitions[p],
                          group.partitions[p]);
      ASSERT_TRUE(gk.has_value()) << id;
      if (!gk_seen) gk_seen = *gk;
      EXPECT_EQ(*gk, *gk_seen) << id;  // one gk across partitions
    }
  }
  EXPECT_EQ(gk_seen->size(), ibbe::enclave::group_key_size);
}

TEST_F(EnclaveFixture, OutsiderCannotRecoverGk) {
  std::vector<std::vector<Identity>> partitions = {make_users(3)};
  auto group = enclave.ecall_create_group(partitions);
  auto outsider = usk("outsider");
  EXPECT_FALSE(unwrap_gk(enclave.public_key(), outsider, partitions[0],
                         group.partitions[0])
                   .has_value());
}

TEST_F(EnclaveFixture, AddUserFastPathKeepsWrappedKeyValid) {
  auto members = make_users(3);
  auto group = enclave.ecall_create_group({{members}});
  auto& pc = group.partitions[0];

  Identity newcomer = "newcomer";
  auto updated_ct = enclave.ecall_add_user_to_partition(pc.ct, newcomer);
  auto extended = members;
  extended.push_back(newcomer);

  // The wrapped gk (y_p) was NOT re-issued — bk is unchanged by design, so
  // the newcomer must be able to open the existing y_p via the updated C2.
  PartitionCiphertext updated = pc;
  updated.ct = updated_ct;
  auto gk_new = unwrap_gk(enclave.public_key(), usk(newcomer), extended, updated);
  ASSERT_TRUE(gk_new.has_value());
  auto gk_old = unwrap_gk(enclave.public_key(), usk(members[0]), extended, updated);
  ASSERT_TRUE(gk_old.has_value());
  EXPECT_EQ(*gk_new, *gk_old);
}

TEST_F(EnclaveFixture, CreatePartitionWrapsExistingSealedGk) {
  auto members = make_users(2);
  auto group = enclave.ecall_create_group({{members}});

  auto late_users = make_users(2, 10);
  auto new_pc = enclave.ecall_create_partition(late_users, group.sealed_gk);

  auto gk_a = unwrap_gk(enclave.public_key(), usk(members[0]), members,
                        group.partitions[0]);
  auto gk_b = unwrap_gk(enclave.public_key(), usk(late_users[0]), late_users, new_pc);
  ASSERT_TRUE(gk_a.has_value());
  ASSERT_TRUE(gk_b.has_value());
  EXPECT_EQ(*gk_a, *gk_b);
}

TEST_F(EnclaveFixture, RemoveUserRotatesGkEverywhere) {
  std::vector<std::vector<Identity>> partitions = {make_users(3, 0),
                                                   make_users(3, 3)};
  auto group = enclave.ecall_create_group(partitions);
  auto gk_before = unwrap_gk(enclave.public_key(), usk("user0"), partitions[0],
                             group.partitions[0]);
  ASSERT_TRUE(gk_before.has_value());

  // Remove user1 (hosted in partition 0).
  Identity removed = "user1";
  std::vector<ibbe::core::BroadcastCiphertext> others = {group.partitions[1].ct};
  auto result = enclave.ecall_remove_user(group.partitions[0].ct, others, removed);
  ASSERT_EQ(result.partitions.size(), 2u);

  std::vector<Identity> remaining_p0 = {"user0", "user2"};
  auto gk_p0 = unwrap_gk(enclave.public_key(), usk("user0"), remaining_p0,
                         result.partitions[0]);
  auto gk_p1 = unwrap_gk(enclave.public_key(), usk("user3"), partitions[1],
                         result.partitions[1]);
  ASSERT_TRUE(gk_p0.has_value());
  ASSERT_TRUE(gk_p1.has_value());
  EXPECT_EQ(*gk_p0, *gk_p1);
  EXPECT_NE(*gk_p0, *gk_before);  // revocation rotated the group key

  // The removed user can no longer derive the new key from any partition.
  EXPECT_FALSE(unwrap_gk(enclave.public_key(), usk(removed), remaining_p0,
                         result.partitions[0])
                   .has_value());
  EXPECT_FALSE(unwrap_gk(enclave.public_key(), usk(removed), partitions[1],
                         result.partitions[1])
                   .has_value());
}

TEST_F(EnclaveFixture, RekeyPartitionRotatesBkButKeepsGk) {
  auto members = make_users(3);
  auto group = enclave.ecall_create_group({{members}});
  auto rekeyed = enclave.ecall_rekey_partition(group.partitions[0].ct,
                                               group.sealed_gk);
  EXPECT_EQ(rekeyed.ct.c3, group.partitions[0].ct.c3);
  EXPECT_FALSE(rekeyed.ct.c2 == group.partitions[0].ct.c2);
  auto gk_old = unwrap_gk(enclave.public_key(), usk(members[0]), members,
                          group.partitions[0]);
  auto gk_new = unwrap_gk(enclave.public_key(), usk(members[0]), members, rekeyed);
  ASSERT_TRUE(gk_old.has_value());
  ASSERT_TRUE(gk_new.has_value());
  EXPECT_EQ(*gk_old, *gk_new);
}

TEST_F(EnclaveFixture, SealedGkIsBoundToTheEnclave) {
  auto group = enclave.ecall_create_group({{make_users(2)}});
  // A second enclave instance (fresh MSK, same build) cannot use this blob's
  // contents meaningfully, but more importantly a *different build* cannot
  // even unseal it.
  ibbe::sgx::EnclavePlatform other_platform("other-machine");
  IbbeEnclave other(other_platform, 8);
  EXPECT_THROW((void)other.ecall_create_partition(make_users(1), group.sealed_gk),
               std::invalid_argument);
}

TEST_F(EnclaveFixture, PartitionCiphertextSerializationRoundTrip) {
  auto members = make_users(2);
  auto group = enclave.ecall_create_group({{members}});
  auto bytes = group.partitions[0].to_bytes();
  auto back = PartitionCiphertext::from_bytes(bytes);
  auto gk = unwrap_gk(enclave.public_key(), usk(members[0]), members, back);
  EXPECT_TRUE(gk.has_value());
}

TEST_F(EnclaveFixture, EcallsAreCounted) {
  auto before = enclave.ecall_count();
  (void)enclave.ecall_create_group({{make_users(2)}});
  (void)enclave.ecall_extract_user_key("someone");
  EXPECT_EQ(enclave.ecall_count(), before + 2);
}

TEST_F(EnclaveFixture, EpcAccountsForPkTable) {
  EXPECT_GT(enclave.epc_bytes_used(), 8 * ibbe::ec::g2_serialized_size);
  EXPECT_LE(enclave.epc_bytes_used(), ibbe::sgx::EnclaveBase::epc_limit);
}

// ------------------------------------------------- provisioning (Fig. 3)

TEST_F(EnclaveFixture, FullAttestationAndProvisioningFlow) {
  // (1)-(2): platform registered with IAS, auditor expects this build.
  ibbe::sgx::AttestationService ias;
  ias.register_platform(platform);
  ibbe::crypto::Drbg auditor_rng(7);
  ibbe::sgx::Auditor auditor("auditor", ias, IbbeEnclave::image().measure(),
                             auditor_rng);

  // (3): certificate for the enclave's identity key.
  auto cert = auditor.attest_and_certify(enclave.attestation_quote(),
                                         enclave.identity_public_key());
  ASSERT_TRUE(cert.has_value());
  EXPECT_TRUE(ibbe::pki::CertificateAuthority::verify(*cert,
                                                      auditor.ca_public_key()));

  // (4): the user checks the certificate, then requests their key over an
  // encrypted channel (ECIES to the user's key).
  ibbe::crypto::Drbg user_rng(8);
  auto user_kp = ibbe::pki::EciesKeyPair::generate(user_rng);
  auto encrypted_usk = enclave.ecall_provision_user_key(
      "alice", user_kp.public_key_bytes());

  auto usk_bytes = user_kp.decrypt(encrypted_usk);
  ASSERT_TRUE(usk_bytes.has_value());
  auto usk = UserSecretKey::from_bytes(*usk_bytes);
  EXPECT_EQ(usk.id, "alice");
  EXPECT_TRUE(ibbe::core::verify_user_key(enclave.public_key(), usk));
}

TEST_F(EnclaveFixture, AuditorRejectsWrongBuild) {
  ibbe::sgx::AttestationService ias;
  ias.register_platform(platform);
  ibbe::crypto::Drbg auditor_rng(7);
  ibbe::sgx::Measurement wrong{};
  wrong.fill(0xde);
  ibbe::sgx::Auditor auditor("auditor", ias, wrong, auditor_rng);
  EXPECT_FALSE(auditor
                   .attest_and_certify(enclave.attestation_quote(),
                                       enclave.identity_public_key())
                   .has_value());
}

}  // namespace
