#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "cloud/store.h"
#include "util/stopwatch.h"

namespace {

using namespace std::chrono_literals;
using ibbe::cloud::CloudStore;
using ibbe::util::Bytes;

TEST(CloudStore, PutGetRoundTrip) {
  CloudStore store;
  store.put("groups/g1/p0", Bytes{1, 2, 3});
  auto got = store.get("groups/g1/p0");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, (Bytes{1, 2, 3}));
  EXPECT_FALSE(store.get("groups/g1/p1").has_value());
}

TEST(CloudStore, OverwriteReplaces) {
  CloudStore store;
  store.put("a/b", Bytes{1});
  store.put("a/b", Bytes{2, 2});
  EXPECT_EQ(*store.get("a/b"), (Bytes{2, 2}));
}

TEST(CloudStore, EraseRemoves) {
  CloudStore store;
  store.put("a/b", Bytes{1});
  EXPECT_TRUE(store.erase("a/b"));
  EXPECT_FALSE(store.get("a/b").has_value());
  EXPECT_FALSE(store.erase("a/b"));
}

TEST(CloudStore, ListByPrefix) {
  CloudStore store;
  store.put("groups/g1/index", Bytes{1});
  store.put("groups/g1/p0", Bytes{1});
  store.put("groups/g1/p1", Bytes{1});
  store.put("groups/g2/p0", Bytes{1});
  auto g1 = store.list("groups/g1/");
  ASSERT_EQ(g1.size(), 3u);
  EXPECT_EQ(g1[0], "groups/g1/index");
  EXPECT_EQ(g1[1], "groups/g1/p0");
  EXPECT_EQ(store.list("groups/").size(), 4u);
  EXPECT_TRUE(store.list("nothing/").empty());
}

TEST(CloudStore, DirectoryVersionsBumpOnWrites) {
  CloudStore store;
  EXPECT_EQ(store.dir_version("groups/g1"), 0u);
  store.put("groups/g1/p0", Bytes{1});
  auto v1 = store.dir_version("groups/g1");
  EXPECT_GT(v1, 0u);
  // Ancestors are bumped too (long polling at any level works).
  EXPECT_EQ(store.dir_version("groups"), v1);
  EXPECT_EQ(store.dir_version(""), v1);
  store.put("groups/g1/p1", Bytes{1});
  EXPECT_GT(store.dir_version("groups/g1"), v1);
  // Sibling directories are unaffected.
  EXPECT_EQ(store.dir_version("groups/g2"), 0u);
}

TEST(CloudStore, EraseBumpsVersions) {
  CloudStore store;
  store.put("g/x", Bytes{1});
  auto v = store.dir_version("g");
  store.erase("g/x");
  EXPECT_GT(store.dir_version("g"), v);
}

TEST(CloudStore, LongPollTimesOutWithoutChange) {
  CloudStore store;
  store.put("g/x", Bytes{1});
  auto v = store.dir_version("g");
  EXPECT_FALSE(store.long_poll("g", v, 30ms).has_value());
}

TEST(CloudStore, LongPollReturnsImmediatelyIfBehind) {
  CloudStore store;
  store.put("g/x", Bytes{1});
  auto result = store.long_poll("g", 0, 1s);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, store.dir_version("g"));
}

TEST(CloudStore, LongPollWakesOnPut) {
  CloudStore store;
  store.put("g/x", Bytes{1});
  auto since = store.dir_version("g");

  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    auto result = store.long_poll("g", since, 5s);
    woke = result.has_value();
  });
  std::this_thread::sleep_for(20ms);
  store.put("g/y", Bytes{2});
  waiter.join();
  EXPECT_TRUE(woke);
}

TEST(CloudStore, StatsAndFootprint) {
  CloudStore store;
  store.put("a/b", Bytes(100, 1));
  (void)store.get("a/b");
  (void)store.get("a/missing");
  auto stats = store.stats();
  EXPECT_EQ(stats.puts, 1u);
  EXPECT_EQ(stats.gets, 2u);
  EXPECT_EQ(stats.bytes_uploaded, 100u);
  EXPECT_EQ(stats.bytes_downloaded, 100u);
  EXPECT_EQ(store.stored_bytes(), 100u + 3u);  // value + path
}

TEST(CloudStore, LatencyModelDelays) {
  ibbe::cloud::LatencyModel latency;
  latency.get = std::chrono::microseconds(20000);
  CloudStore store(latency);
  store.put("a/b", Bytes{1});
  ibbe::util::Stopwatch watch;
  (void)store.get("a/b");
  EXPECT_GE(watch.millis(), 15.0);
}

}  // namespace
