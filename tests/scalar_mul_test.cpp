// GLV/GLS decomposition, endomorphism scalar multiplication, the MSM
// engine, fixed-base tables, and the subproduct-tree polynomial expansion.
#include <gtest/gtest.h>

#include <vector>

#include "bigint/biguint.h"
#include "bigint/u256.h"
#include "ec/curves.h"
#include "ec/glv.h"
#include "ec/msm.h"
#include "field/fields.h"
#include "ibbe/poly.h"
#include "test_util.h"

namespace {

using ibbe::bigint::BigUInt;
using ibbe::bigint::U256;
using ibbe::ec::G1;
using ibbe::ec::G2;
using ibbe::ec::P256Point;
using ibbe::field::Fr;
using ibbe::testutil::edge_scalars;
using ibbe::testutil::random_fr;
using ibbe::testutil::random_u256;

/// (-1)^neg0 k0 + (-1)^neg1 k1 eig mod r, computed with BigUInt.
BigUInt recombine(const ibbe::ec::EndoDecomp& d, const U256& eig) {
  const BigUInt n = BigUInt::from_u256(ibbe::ec::bn_group_order());
  BigUInt a = BigUInt::from_u256(d.k0) % n;
  if (d.neg0 && !a.is_zero()) a = n - a;
  BigUInt b = BigUInt::from_u256(d.k1) * BigUInt::from_u256(eig) % n;
  if (d.neg1 && !b.is_zero()) b = n - b;
  return (a + b) % n;
}

// ------------------------------------------------------------ decomposition

TEST(Glv, DecompositionRoundTripsAndIsShort) {
  const BigUInt n = BigUInt::from_u256(ibbe::ec::bn_group_order());
  auto scalars = edge_scalars();
  for (int i = 0; i < 50; ++i) scalars.push_back(random_u256());
  for (const U256& k : scalars) {
    auto d = ibbe::ec::decompose_glv(k);
    EXPECT_EQ(recombine(d, ibbe::ec::glv_lambda()), BigUInt::from_u256(k) % n);
    EXPECT_LE(d.k0.bit_length(), 132u);
    EXPECT_LE(d.k1.bit_length(), 132u);
  }
}

TEST(Gls, DecompositionRoundTripsAndIsShort) {
  const BigUInt n = BigUInt::from_u256(ibbe::ec::bn_group_order());
  auto scalars = edge_scalars();
  for (int i = 0; i < 50; ++i) scalars.push_back(random_u256());
  for (const U256& k : scalars) {
    auto d = ibbe::ec::decompose_gls(k);
    EXPECT_FALSE(d.neg0);
    EXPECT_FALSE(d.neg1);
    // Exact integer identity: k mod r = k1 * mu + k0 with k0 < mu.
    EXPECT_EQ(BigUInt::from_u256(d.k1) * BigUInt::from_u256(ibbe::ec::gls_mu())
                  + BigUInt::from_u256(d.k0),
              BigUInt::from_u256(k) % n);
    EXPECT_LT(ibbe::bigint::cmp(d.k0, ibbe::ec::gls_mu()), 0);
    EXPECT_LE(d.k1.bit_length(), 129u);
  }
}

TEST(Glv, LambdaIsPrimitiveCubeRootModR) {
  Fr l = Fr::from_u256(ibbe::ec::glv_lambda());
  EXPECT_FALSE(l.is_one());
  EXPECT_TRUE((l * l + l + Fr::one()).is_zero());
}

TEST(Glv, PhiActsAsLambda) {
  for (int i = 0; i < 5; ++i) {
    G1 p = G1::generator().scalar_mul(random_u256());
    EXPECT_EQ(ibbe::ec::apply_phi(p), p.scalar_mul(ibbe::ec::glv_lambda()));
  }
}

TEST(Gls, PsiActsAsMu) {
  for (int i = 0; i < 5; ++i) {
    G2 p = G2::generator().scalar_mul(random_u256());
    EXPECT_EQ(ibbe::ec::apply_psi(p), p.scalar_mul(ibbe::ec::gls_mu()));
  }
}

// -------------------------------------------------- endomorphism scalar mul

TEST(Glv, MulMatchesScalarMulOnEdgeAndRandomScalars) {
  G1 p = G1::generator().scalar_mul(random_u256());
  for (const U256& k : edge_scalars()) {
    EXPECT_EQ(ibbe::ec::g1_mul_endo(p, k), p.scalar_mul(k)) << k.to_hex();
  }
  for (int i = 0; i < 10; ++i) {
    U256 k = random_u256();
    EXPECT_EQ(ibbe::ec::g1_mul_endo(p, k), p.scalar_mul(k)) << k.to_hex();
  }
  EXPECT_TRUE(ibbe::ec::g1_mul_endo(G1::infinity(), random_u256()).is_infinity());
}

TEST(Gls, MulMatchesScalarMulOnEdgeAndRandomScalars) {
  G2 p = G2::generator().scalar_mul(random_u256());
  for (const U256& k : edge_scalars()) {
    EXPECT_EQ(ibbe::ec::g2_mul_endo(p, k), p.scalar_mul(k)) << k.to_hex();
  }
  for (int i = 0; i < 10; ++i) {
    U256 k = random_u256();
    EXPECT_EQ(ibbe::ec::g2_mul_endo(p, k), p.scalar_mul(k)) << k.to_hex();
  }
  EXPECT_TRUE(ibbe::ec::g2_mul_endo(G2::infinity(), random_u256()).is_infinity());
}

TEST(MulRouting, SpecializedMulMatchesGenericOracle) {
  // The Fr specializations of JacobianPoint::mul (comb tables for the
  // generators, GLV/GLS elsewhere) must agree with plain double-and-add.
  for (int i = 0; i < 5; ++i) {
    Fr k = random_fr();
    EXPECT_EQ(G1::generator().mul(k), G1::generator().scalar_mul(k.to_u256()));
    EXPECT_EQ(G2::generator().mul(k), G2::generator().scalar_mul(k.to_u256()));
    G1 p1 = G1::generator().dbl() + G1::generator();
    G2 p2 = G2::generator().dbl() + G2::generator();
    EXPECT_EQ(p1.mul(k), p1.scalar_mul(k.to_u256()));
    EXPECT_EQ(p2.mul(k), p2.scalar_mul(k.to_u256()));
  }
  ibbe::field::P256Fr k = ibbe::field::P256Fr::from_u256_reduce(random_u256());
  EXPECT_EQ(P256Point::generator().mul(k),
            P256Point::generator().scalar_mul(k.to_u256()));
  P256Point q = P256Point::generator().dbl();
  EXPECT_EQ(q.mul(k), q.scalar_mul(k.to_u256()));
}

// ----------------------------------------------------------------- the MSM

template <typename Point>
void check_msm_vs_naive(std::size_t n) {
  std::vector<Point> bases;
  std::vector<Fr> scalars;
  Point naive = Point::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    Point p = Point::generator().scalar_mul(random_u256());
    if (i == 1) p = Point::infinity();  // engine must skip infinity bases
    Fr k = random_fr();
    if (i == 2) k = Fr::zero();  // ... and zero scalars
    bases.push_back(p);
    scalars.push_back(k);
    naive += p.scalar_mul(k.to_u256());
  }
  EXPECT_EQ(ibbe::ec::msm(std::span<const Point>(bases),
                          std::span<const Fr>(scalars)),
            naive)
      << "n=" << n;
}

TEST(Msm, G1MatchesNaiveSum) {
  for (std::size_t n : {1u, 2u, 17u, 100u}) check_msm_vs_naive<G1>(n);
}

TEST(Msm, G2MatchesNaiveSum) {
  for (std::size_t n : {1u, 2u, 17u, 100u}) check_msm_vs_naive<G2>(n);
}

TEST(Msm, PippengerBoundaryMatchesStraus) {
  // n = 33 is the first Pippenger-routed size; n = 32 the last Straus one.
  for (std::size_t n : {32u, 33u}) check_msm_vs_naive<G1>(n);
}

TEST(Msm, GenericU256EngineOnP256) {
  std::vector<P256Point> bases;
  std::vector<U256> scalars;
  P256Point naive = P256Point::infinity();
  for (int i = 0; i < 7; ++i) {
    P256Point p = P256Point::generator().scalar_mul(random_u256());
    U256 k = random_u256();
    bases.push_back(p);
    scalars.push_back(k);
    naive += p.scalar_mul(k);
  }
  EXPECT_EQ(ibbe::ec::msm_u256(std::span<const P256Point>(bases),
                               std::span<const U256>(scalars)),
            naive);
}

TEST(Msm, EmptyAndAllZeroInputs) {
  EXPECT_TRUE(ibbe::ec::msm(std::span<const G1>{}, std::span<const Fr>{})
                  .is_infinity());
  std::vector<G1> bases{G1::generator()};
  std::vector<Fr> zeros{Fr::zero()};
  EXPECT_TRUE(ibbe::ec::msm(std::span<const G1>(bases),
                            std::span<const Fr>(zeros))
                  .is_infinity());
}

TEST(FixedBaseTable, MatchesScalarMul) {
  G1 base = G1::generator().scalar_mul(random_u256());
  ibbe::ec::FixedBaseTable<G1> tbl(base);
  for (const U256& k : edge_scalars()) {
    EXPECT_EQ(tbl.mul(k), base.scalar_mul(k)) << k.to_hex();
  }
  for (int i = 0; i < 5; ++i) {
    U256 k = random_u256();
    EXPECT_EQ(tbl.mul(k), base.scalar_mul(k));
  }
}

TEST(G2PowersMsm, MatchesNaiveSum) {
  std::vector<G2> bases;
  for (int i = 0; i < 9; ++i) {
    bases.push_back(G2::generator().scalar_mul(random_u256()));
  }
  ibbe::ec::G2PowersMsm prepared{std::span<const G2>(bases)};
  std::vector<Fr> coefs;
  G2 naive = G2::infinity();
  for (int i = 0; i < 9; ++i) {
    Fr k = i == 4 ? Fr::zero() : random_fr();
    coefs.push_back(k);
    naive += bases[static_cast<std::size_t>(i)].scalar_mul(k.to_u256());
  }
  EXPECT_EQ(prepared.msm(coefs), naive);
  // Shorter coefficient vectors use a prefix of the table.
  G2 prefix = G2::infinity();
  for (int i = 0; i < 4; ++i) {
    prefix += bases[static_cast<std::size_t>(i)].scalar_mul(coefs[static_cast<std::size_t>(i)].to_u256());
  }
  EXPECT_EQ(prepared.msm(std::span<const Fr>(coefs).first(4)), prefix);
}

// ----------------------------------------------------- polynomial expansion

TEST(Poly, SubproductTreeMatchesIncremental) {
  namespace poly = ibbe::core::poly;
  for (std::size_t n : {0u, 1u, 5u, 24u, 25u, 40u, 100u}) {
    std::vector<Fr> roots;
    for (std::size_t i = 0; i < n; ++i) roots.push_back(random_fr());
    auto tree = poly::expand_roots(roots);
    auto inc = poly::expand_roots_incremental(roots);
    ASSERT_EQ(tree.size(), n + 1);
    EXPECT_EQ(tree, inc) << "n=" << n;
  }
}

TEST(Poly, KaratsubaMatchesSchoolbookShape) {
  namespace poly = ibbe::core::poly;
  // Unequal operand sizes around the Karatsuba threshold.
  for (auto [na, nb] : {std::pair<std::size_t, std::size_t>{30, 30},
                        {40, 25},
                        {25, 64},
                        {70, 33}}) {
    std::vector<Fr> a, b;
    for (std::size_t i = 0; i < na; ++i) a.push_back(random_fr());
    for (std::size_t i = 0; i < nb; ++i) b.push_back(random_fr());
    auto prod = poly::mul(a, b);
    ASSERT_EQ(prod.size(), na + nb - 1);
    // Evaluate both sides at a random point: mul must respect evaluation.
    Fr x = random_fr();
    auto eval = [&x](std::span<const Fr> p) {
      Fr acc = Fr::zero();
      for (std::size_t i = p.size(); i-- > 0;) acc = acc * x + p[i];
      return acc;
    };
    EXPECT_EQ(eval(prod), eval(a) * eval(b));
  }
}

}  // namespace
