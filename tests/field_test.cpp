#include <gtest/gtest.h>

#include <random>

#include "bigint/biguint.h"
#include "field/fields.h"
#include "field/fp12.h"
#include "field/fp2.h"
#include "field/fp6.h"
#include "field/tower_consts.h"

namespace {

using ibbe::bigint::BigUInt;
using ibbe::bigint::U256;
using ibbe::field::Fp;
using ibbe::field::Fp12;
using ibbe::field::Fp2;
using ibbe::field::Fp6;
using ibbe::field::Fr;

std::mt19937_64& rng() {
  static std::mt19937_64 gen(42);
  return gen;
}

Fp random_fp() {
  U256 v;
  for (auto& limb : v.limb) limb = rng()();
  return Fp::from_u256_reduce(v);
}

Fr random_fr() {
  U256 v;
  for (auto& limb : v.limb) limb = rng()();
  return Fr::from_u256_reduce(v);
}

Fp2 random_fp2() { return {random_fp(), random_fp()}; }
Fp6 random_fp6() { return {random_fp2(), random_fp2(), random_fp2()}; }
Fp12 random_fp12() { return {random_fp6(), random_fp6()}; }

BigUInt fp_modulus_big() { return BigUInt::from_u256(Fp::modulus()); }

// -------------------------------------------------------------------- Fp

TEST(Fp, AdditiveGroupLaws) {
  for (int i = 0; i < 20; ++i) {
    Fp a = random_fp(), b = random_fp(), c = random_fp();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a + Fp::zero(), a);
    EXPECT_EQ(a + a.neg(), Fp::zero());
    EXPECT_EQ(a - b, a + b.neg());
  }
}

TEST(Fp, MultiplicativeLaws) {
  for (int i = 0; i < 20; ++i) {
    Fp a = random_fp(), b = random_fp(), c = random_fp();
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a * Fp::one(), a);
    EXPECT_EQ(a.square(), a * a);
    EXPECT_EQ(a.dbl(), a + a);
    if (!a.is_zero()) EXPECT_EQ(a * a.inverse(), Fp::one());
  }
}

TEST(Fp, FromU256RejectsUnreduced) {
  EXPECT_THROW(Fp::from_u256(Fp::modulus()), std::invalid_argument);
  EXPECT_NO_THROW(Fp::from_u256_reduce(Fp::modulus()));
  EXPECT_TRUE(Fp::from_u256_reduce(Fp::modulus()).is_zero());
}

TEST(Fp, RoundTrips) {
  for (int i = 0; i < 20; ++i) {
    Fp a = random_fp();
    EXPECT_EQ(Fp::from_u256(a.to_u256()), a);
    EXPECT_EQ(Fp::from_hex(a.to_hex()), a);
    EXPECT_EQ(Fp::from_be_bytes_reduce(a.to_be_bytes()), a);
  }
}

TEST(Fp, SqrtOfSquares) {
  for (int i = 0; i < 20; ++i) {
    Fp a = random_fp();
    auto root = a.square().sqrt();
    ASSERT_TRUE(root.has_value());
    EXPECT_TRUE(*root == a || *root == a.neg());
  }
}

TEST(Fp, SqrtRejectsNonResidue) {
  // Exactly one of x, -x is a QR when x != 0 (p = 3 mod 4 => -1 is a non-residue).
  int rejected = 0;
  for (int i = 0; i < 20; ++i) {
    Fp a = random_fp();
    if (a.is_zero()) continue;
    bool qr_a = a.sqrt().has_value();
    bool qr_neg = a.neg().sqrt().has_value();
    EXPECT_NE(qr_a, qr_neg);
    rejected += qr_a ? 0 : 1;
  }
  EXPECT_GT(rejected, 0);  // statistically certain over 20 draws
}

TEST(Fp, PowMatchesFermat) {
  Fp a = random_fp();
  BigUInt p = fp_modulus_big();
  EXPECT_EQ(a.pow(p - BigUInt(1)), Fp::one());
  EXPECT_EQ(a.pow(p), a);  // Frobenius is identity on the prime field
}

TEST(Fr, DistinctModulusFromFp) {
  EXPECT_NE(ibbe::bigint::cmp(Fr::modulus(), Fp::modulus()), 0);
  // r < p for BN curves.
  EXPECT_LT(Fr::modulus(), Fp::modulus());
}

TEST(Fr, BasicFieldSanity) {
  Fr a = random_fr();
  if (!a.is_zero()) EXPECT_EQ(a * a.inverse(), Fr::one());
  EXPECT_EQ(a + a.neg(), Fr::zero());
}

// -------------------------------------------------------------------- Fp2

TEST(Fp2, RingLaws) {
  for (int i = 0; i < 20; ++i) {
    Fp2 a = random_fp2(), b = random_fp2(), c = random_fp2();
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a.square(), a * a);
    if (!a.is_zero()) EXPECT_EQ(a * a.inverse(), Fp2::one());
  }
}

TEST(Fp2, ISquaredIsMinusOne) {
  Fp2 i(Fp::zero(), Fp::one());
  EXPECT_EQ(i * i, Fp2(Fp::one().neg(), Fp::zero()));
}

TEST(Fp2, MulByXiMatchesGenericMul) {
  for (int i = 0; i < 20; ++i) {
    Fp2 a = random_fp2();
    EXPECT_EQ(a.mul_by_xi(), a * Fp2::xi());
  }
}

TEST(Fp2, ConjugateIsFrobenius) {
  // x^p = conj(x) in Fp2.
  BigUInt p = fp_modulus_big();
  for (int i = 0; i < 5; ++i) {
    Fp2 a = random_fp2();
    EXPECT_EQ(a.pow(p), a.conjugate());
  }
}

TEST(Fp2, SqrtOfSquares) {
  for (int i = 0; i < 10; ++i) {
    Fp2 a = random_fp2();
    auto root = a.square().sqrt();
    ASSERT_TRUE(root.has_value());
    EXPECT_TRUE(*root == a || *root == a.neg());
  }
}

TEST(Fp2, SqrtRejectsNonResidues) {
  // xi = 9 + i is a sextic (hence quadratic) non-residue by construction.
  EXPECT_FALSE(Fp2::xi().sqrt().has_value());
}

TEST(Fp2, XiIsCubicNonResidue) {
  // Required for Fp6 = Fp2[v]/(v^3 - xi) to be a field: xi^((q-1)/3) != 1
  // where q = p^2.
  BigUInt p = fp_modulus_big();
  BigUInt e = (p * p - BigUInt(1)) / BigUInt(3);
  EXPECT_NE(Fp2::xi().pow(e), Fp2::one());
}

// -------------------------------------------------------------------- Fp6

TEST(Fp6, RingLaws) {
  for (int i = 0; i < 10; ++i) {
    Fp6 a = random_fp6(), b = random_fp6(), c = random_fp6();
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    if (!a.is_zero()) EXPECT_EQ(a * a.inverse(), Fp6::one());
  }
}

TEST(Fp6, VCubedIsXi) {
  Fp6 v(Fp2::zero(), Fp2::one(), Fp2::zero());
  Fp6 xi(Fp2::xi(), Fp2::zero(), Fp2::zero());
  EXPECT_EQ(v * v * v, xi);
}

TEST(Fp6, MulByVMatchesGenericMul) {
  Fp6 v(Fp2::zero(), Fp2::one(), Fp2::zero());
  for (int i = 0; i < 10; ++i) {
    Fp6 a = random_fp6();
    EXPECT_EQ(a.mul_by_v(), a * v);
  }
}

TEST(Fp6, FrobeniusMatchesPow) {
  BigUInt p = fp_modulus_big();
  for (int i = 0; i < 3; ++i) {
    Fp6 a = random_fp6();
    Fp6 expected = Fp6::one();
    // a^p by square-and-multiply over Fp6.
    for (unsigned bit = p.bit_length(); bit-- > 0;) {
      expected = expected * expected;
      if (p.bit(bit)) expected = expected * a;
    }
    EXPECT_EQ(a.frobenius(), expected);
  }
}

// -------------------------------------------------------------------- Fp12

TEST(Fp12, RingLaws) {
  for (int i = 0; i < 5; ++i) {
    Fp12 a = random_fp12(), b = random_fp12(), c = random_fp12();
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a.square(), a * a);
    if (!a.is_zero()) EXPECT_EQ(a * a.inverse(), Fp12::one());
  }
}

TEST(Fp12, WSquaredIsV) {
  Fp12 w(Fp6::zero(), Fp6::one());
  Fp6 v(Fp2::zero(), Fp2::one(), Fp2::zero());
  EXPECT_EQ(w * w, Fp12(v, Fp6::zero()));
}

TEST(Fp12, FrobeniusMatchesPow) {
  BigUInt p = fp_modulus_big();
  Fp12 a = random_fp12();
  EXPECT_EQ(a.frobenius(), a.pow(p));
}

TEST(Fp12, FrobeniusTwelfthPowerIsIdentity) {
  Fp12 a = random_fp12();
  Fp12 cur = a;
  for (int i = 0; i < 12; ++i) cur = cur.frobenius();
  EXPECT_EQ(cur, a);
}

TEST(Fp12, ConjugateIsPSixthFrobenius) {
  Fp12 a = random_fp12();
  Fp12 cur = a;
  for (int i = 0; i < 6; ++i) cur = cur.frobenius();
  EXPECT_EQ(cur, a.conjugate());
}

TEST(Fp12, MulByLineMatchesGenericMul) {
  for (int i = 0; i < 10; ++i) {
    Fp12 f = random_fp12();
    Fp2 a = random_fp2(), b = random_fp2(), c = random_fp2();
    Fp12 line(Fp6(a, Fp2::zero(), Fp2::zero()), Fp6(b, c, Fp2::zero()));
    EXPECT_EQ(f.mul_by_line(a, b, c), f * line);
  }
}

TEST(Fp12, CyclotomicSquareAgreesOnCyclotomicSubgroup) {
  // Map a random element into the cyclotomic subgroup with x^((p^6-1)(p^2+1))
  // and compare squarings.
  BigUInt p = fp_modulus_big();
  BigUInt p2 = p * p;
  BigUInt p6 = p2 * p2 * p2;
  for (int i = 0; i < 3; ++i) {
    Fp12 x = random_fp12();
    Fp12 y = x.pow(p6 - BigUInt(1));
    y = y.pow(p2 + BigUInt(1));
    EXPECT_EQ(y.cyclotomic_square(), y.square());
    EXPECT_EQ(y * y.conjugate(), Fp12::one());  // unitary
  }
}

TEST(Fp12, PowCyclotomicMatchesPow) {
  BigUInt p = fp_modulus_big();
  BigUInt p2 = p * p;
  BigUInt p6 = p2 * p2 * p2;
  Fp12 x = random_fp12();
  Fp12 y = x.pow(p6 - BigUInt(1)).pow(p2 + BigUInt(1));
  U256 e;
  for (auto& limb : e.limb) limb = rng()();
  EXPECT_EQ(y.pow_cyclotomic(e), y.pow(e));
}

TEST(Fp12, SerializationRoundTrip) {
  for (int i = 0; i < 5; ++i) {
    Fp12 a = random_fp12();
    auto bytes = a.to_bytes();
    ASSERT_EQ(bytes.size(), Fp12::serialized_size);
    EXPECT_EQ(Fp12::from_bytes(bytes), a);
  }
  EXPECT_THROW(Fp12::from_bytes(std::vector<std::uint8_t>(10)),
               ibbe::util::DeserializeError);
}

// ----------------------------------------- lazy-reduction cross-validation
//
// Fp2/Fp6 multiplication accumulates unreduced 512-bit products and reduces
// once per coefficient (field/lazy.h). These tests pin the lazy formulas to
// independent reference implementations built ONLY from reduced Fp
// arithmetic, over both random and adversarial (near-p, saturated-limb)
// operands — the inputs that maximize the wide accumulator.

Fp2 ref_fp2_mul(const Fp2& a, const Fp2& b) {
  // (a0 + a1 i)(b0 + b1 i) with i^2 = -1, schoolbook over reduced Fp ops.
  return {a.c0() * b.c0() - a.c1() * b.c1(),
          a.c0() * b.c1() + a.c1() * b.c0()};
}

Fp6 ref_fp6_mul(const Fp6& a, const Fp6& b) {
  // Schoolbook with v^3 = xi folds, all products through ref_fp2_mul.
  Fp2 c0 = ref_fp2_mul(a.c0(), b.c0()) +
           (ref_fp2_mul(a.c1(), b.c2()) + ref_fp2_mul(a.c2(), b.c1()))
               .mul_by_xi();
  Fp2 c1 = ref_fp2_mul(a.c0(), b.c1()) + ref_fp2_mul(a.c1(), b.c0()) +
           ref_fp2_mul(a.c2(), b.c2()).mul_by_xi();
  Fp2 c2 = ref_fp2_mul(a.c0(), b.c2()) + ref_fp2_mul(a.c1(), b.c1()) +
           ref_fp2_mul(a.c2(), b.c0());
  return {c0, c1, c2};
}

/// Field elements that stress every carry/bound in the lazy path: 0, 1, p-1,
/// p-2, and reduced saturated-limb patterns.
std::vector<Fp> adversarial_fps() {
  std::vector<Fp> out = {Fp::zero(), Fp::one(), Fp::zero() - Fp::one(),
                         Fp::zero() - Fp::one() - Fp::one()};
  U256 sat;
  for (auto& limb : sat.limb) limb = ~std::uint64_t{0};
  out.push_back(Fp::from_u256_reduce(sat));
  sat.limb = {0, 0, 0, ~std::uint64_t{0}};
  out.push_back(Fp::from_u256_reduce(sat));
  return out;
}

TEST(FieldLazy, Fp2MulMatchesReferenceOnWorstCaseOperands) {
  auto fps = adversarial_fps();
  for (const Fp& w : fps) {
    for (const Fp& x : fps) {
      for (const Fp& y : fps) {
        for (const Fp& z : fps) {
          Fp2 a(w, x), b(y, z);
          EXPECT_EQ(a * b, ref_fp2_mul(a, b));
          EXPECT_EQ(a.square(), ref_fp2_mul(a, a));
        }
      }
    }
  }
  for (int i = 0; i < 500; ++i) {
    Fp2 a = random_fp2(), b = random_fp2();
    EXPECT_EQ(a * b, ref_fp2_mul(a, b));
    EXPECT_EQ(a.square(), ref_fp2_mul(a, a));
  }
}

TEST(FieldLazy, Fp6MulMatchesReferenceOnWorstCaseOperands) {
  // All-(p-1) components maximize every one of the 12 accumulated products
  // per coefficient — the deepest lazy accumulation in the tower.
  Fp pm1 = Fp::zero() - Fp::one();
  Fp2 ext(pm1, pm1);
  Fp6 worst(ext, ext, ext);
  EXPECT_EQ(worst * worst, ref_fp6_mul(worst, worst));

  auto fps = adversarial_fps();
  for (std::size_t i = 0; i < fps.size(); ++i) {
    Fp6 a(Fp2(fps[i], fps[(i + 1) % fps.size()]),
          Fp2(fps[(i + 2) % fps.size()], fps[(i + 3) % fps.size()]),
          Fp2(fps[(i + 4) % fps.size()], fps[(i + 5) % fps.size()]));
    EXPECT_EQ(a * worst, ref_fp6_mul(a, worst));
    EXPECT_EQ(worst * a, ref_fp6_mul(worst, a));
  }
  for (int i = 0; i < 200; ++i) {
    Fp6 a = random_fp6(), b = random_fp6();
    EXPECT_EQ(a * b, ref_fp6_mul(a, b));
  }
}

TEST(FieldLazy, Fp6MulBy01MatchesDenseMul) {
  Fp pm1 = Fp::zero() - Fp::one();
  Fp2 ext(pm1, pm1);
  for (int i = 0; i < 100; ++i) {
    Fp6 a = i == 0 ? Fp6(ext, ext, ext) : random_fp6();
    Fp2 b0 = i == 0 ? ext : random_fp2();
    Fp2 b1 = i == 0 ? ext : random_fp2();
    EXPECT_EQ(a.mul_by_01(b0, b1), a * Fp6(b0, b1, Fp2::zero()));
  }
}

TEST(FieldLazy, Fp2InverseOnWorstCaseOperands) {
  for (const Fp& x : adversarial_fps()) {
    for (const Fp& y : adversarial_fps()) {
      Fp2 a(x, y);
      if (a.is_zero()) continue;
      EXPECT_EQ(a * a.inverse(), Fp2::one());
    }
  }
}

TEST(Fp12, MulByLineAffineMatchesGenericMul) {
  for (int i = 0; i < 10; ++i) {
    Fp12 f = random_fp12();
    Fp a = i == 0 ? Fp::zero() - Fp::one() : random_fp();
    Fp2 b = random_fp2(), c = random_fp2();
    Fp12 line(Fp6(Fp2(a, Fp::zero()), Fp2::zero(), Fp2::zero()),
              Fp6(b, c, Fp2::zero()));
    EXPECT_EQ(f.mul_by_line_affine(a, b, c), f * line);
  }
}

TEST(TowerConsts, GammaPowersConsistent) {
  const auto& g = ibbe::field::TowerConsts::get().gamma;
  // g[k] = g1^(k+1); g1^6 = xi^(p-1).
  for (int k = 1; k < 5; ++k) {
    EXPECT_EQ(g[static_cast<std::size_t>(k)],
              g[static_cast<std::size_t>(k - 1)] * g[0]);
  }
  BigUInt p = fp_modulus_big();
  EXPECT_EQ(g[0].pow(BigUInt(6)), Fp2::xi().pow(p - BigUInt(1)));
}

}  // namespace
