// Model-based randomized integration testing.
//
// A trivially-correct reference model (a set of members plus a key epoch)
// runs in lockstep with a real GroupScheme through random operation
// sequences. After every step the scheme must agree with the model on:
//
//   * membership: exactly the model's members can derive a key;
//   * convergence: all members derive the *same* key;
//   * rotation: the derived key changes across a removal epoch and is stable
//     across adds within an epoch;
//   * revocation: a removed user's old key never matches the current one.
//
// The same harness runs against the full IBBE-SGX stack and both Hybrid
// Encryption baselines — any divergence between scheme semantics shows up as
// a model violation in whichever scheme is wrong.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <random>
#include <set>

#include "he/he_ibe.h"
#include "he/he_pki.h"
#include "system/ibbe_scheme.h"
#include "util/thread_pool.h"

namespace {

using ibbe::core::Identity;
using ibbe::he::GroupScheme;
using ibbe::util::Bytes;

struct ReferenceModel {
  std::set<Identity> members;
  std::uint64_t epoch = 0;  // bumped on every removal of an actual member

  void add(const Identity& id) { members.insert(id); }
  bool remove(const Identity& id) {
    if (members.erase(id) == 0) return false;
    ++epoch;
    return true;
  }
};

struct SchemeFactory {
  const char* name;
  std::function<std::unique_ptr<GroupScheme>(std::uint64_t seed)> make;
  std::size_t ops;      // sequence length (IBBE decrypts are pricier)
  std::size_t checks;   // membership samples verified per step
};

// Runs an inner scheme with the global thread pool widened for its lifetime
// and restores single-threaded mode on destruction. The model makes no
// allowance for the pool: the parallelized enclave/decrypt paths must behave
// exactly like the serial ones, proving the system layer (including the
// fault-injection and Byzantine stacks) is oblivious to worker threads.
class PooledScheme : public GroupScheme {
 public:
  PooledScheme(std::unique_ptr<GroupScheme> inner, std::size_t threads)
      : inner_(std::move(inner)) {
    ibbe::util::ThreadPool::set_global_threads(threads);
  }
  ~PooledScheme() override { ibbe::util::ThreadPool::set_global_threads(1); }

  [[nodiscard]] std::string name() const override {
    return inner_->name() + "+pool";
  }
  void create_group(std::span<const Identity> members) override {
    inner_->create_group(members);
  }
  void add_user(const Identity& id) override { inner_->add_user(id); }
  void remove_user(const Identity& id) override { inner_->remove_user(id); }
  [[nodiscard]] std::optional<Bytes> user_decrypt(const Identity& id) override {
    return inner_->user_decrypt(id);
  }
  [[nodiscard]] std::size_t metadata_size() const override {
    return inner_->metadata_size();
  }
  [[nodiscard]] std::size_t group_size() const override {
    return inner_->group_size();
  }

 private:
  std::unique_ptr<GroupScheme> inner_;
};

std::vector<SchemeFactory> factories() {
  return {
      {"ibbe_sgx",
       [](std::uint64_t seed) {
         return std::make_unique<ibbe::system::IbbeSgxScheme>(5, seed);
       },
       28, 2},
      {"he_pki",
       [](std::uint64_t seed) { return std::make_unique<ibbe::he::HePkiScheme>(seed); },
       80, 4},
      {"he_ibe",
       [](std::uint64_t seed) { return std::make_unique<ibbe::he::HeIbeScheme>(seed); },
       30, 2},
      // The full stack again, but every cloud round trip runs under a seeded
      // random fault schedule — transient errors, ambiguous writes, spurious
      // CAS conflicts, stale replica reads, and process crashes with recovery
      // interleaved mid-sequence (IbbeSgxScheme restarts the admin and
      // re-issues the op on every CrashError). The oracle is IDENTICAL to the
      // fault-free deployments: faults may cost retries and restarts, never
      // correctness.
      {"ibbe_sgx_faulty",
       [](std::uint64_t seed) {
         ibbe::cloud::FaultPlan plan;
         plan.seed = seed * 7919 + 13;  // schedule replays from the test seed
         plan.put_error_rate = 0.03;
         plan.ambiguous_put_rate = 0.02;
         plan.spurious_cas_rate = 0.02;
         plan.get_error_rate = 0.03;
         plan.stale_read_rate = 0.02;
         plan.poll_timeout_rate = 0.05;
         plan.crash_rate = 0.02;
         return std::make_unique<ibbe::system::IbbeSgxScheme>(5, seed, plan);
       },
       24, 2},
      // The BYZANTINE stack: a MaliciousStore replays whole rolled-back
      // generations, withholds op-log tails and equivocates on single files,
      // with the fail-stop tier layered on top. Freshness-verifying,
      // gossiping clients and the enclave-anchored admin are STILL held to
      // the identical fault-free oracle: a bounded-window attack may cost
      // retries, never a wrong or stale key. (Window max 4 keeps attacks
      // inside the clients' retry budget, as docs/fault_model.md derives.)
      {"ibbe_sgx_byzantine",
       [](std::uint64_t seed) {
         ibbe::cloud::FaultPlan plan;
         plan.seed = seed * 7919 + 13;
         plan.put_error_rate = 0.02;
         plan.get_error_rate = 0.02;
         plan.crash_rate = 0.01;
         ibbe::cloud::MaliciousPlan malice;
         malice.seed = seed * 6151 + 29;
         malice.rollback_rate = 0.02;
         malice.withhold_rate = 0.02;
         malice.equivocate_rate = 0.02;
         malice.max_window = 4;
         return std::make_unique<ibbe::system::IbbeSgxScheme>(5, seed, plan,
                                                              malice);
       },
       20, 2},
      // The full stack again, but with the global thread pool at t=4 so the
      // enclave's partition fan-out, decrypt batching and MSM all run on
      // worker threads — held to the SAME oracle as the serial run.
      {"ibbe_sgx_pool4",
       [](std::uint64_t seed) {
         return std::make_unique<PooledScheme>(
             std::make_unique<ibbe::system::IbbeSgxScheme>(5, seed), 4);
       },
       24, 2},
      // The NETWORKED stack: the same deployment behind a real loopback
      // NetServer, the admin and every client on their own AES-GCM session
      // over a seeded FaultInjectingTransport — latency spikes, dropped and
      // duplicated frames, torn frames, and disconnects both before and
      // right AFTER a delivered request (the mid-mutation ambiguity that
      // reconnect-with-resume + server-side dedup must resolve). Corruption
      // is deliberately NOT in this schedule: a flipped bit is an integrity
      // fault and MUST fail the run — that path has its own directed tests.
      // The oracle is identical to the in-process deployments: wire faults
      // may cost retries and resumed sessions, never correctness.
      {"ibbe_sgx_remote",
       [](std::uint64_t seed) {
         ibbe::system::RemotePlan plan;
         plan.faults.seed = seed * 9241 + 17;
         plan.faults.send_drop_rate = 0.01;
         plan.faults.send_dup_rate = 0.02;
         plan.faults.recv_drop_rate = 0.01;
         plan.faults.recv_dup_rate = 0.02;
         plan.faults.torn_frame_rate = 0.01;
         plan.faults.disconnect_send_rate = 0.01;
         plan.faults.disconnect_after_send_rate = 0.01;
         plan.faults.disconnect_recv_rate = 0.01;
         plan.faults.latency_spike_rate = 0.02;
         plan.faults.latency_spike = std::chrono::microseconds{1000};
         return std::make_unique<ibbe::system::IbbeSgxScheme>(5, seed, plan);
       },
       20, 2},
  };
}

class ModelBasedTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

INSTANTIATE_TEST_SUITE_P(
    SchemesAndSeeds, ModelBasedTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5, 6),  // factory index
                       ::testing::Values(101u, 202u)),    // RNG seed
    [](const auto& info) {
      return std::string(factories()[static_cast<std::size_t>(
                             std::get<0>(info.param))]
                             .name) +
             "_seed" + std::to_string(std::get<1>(info.param));
    });

TEST_P(ModelBasedTest, SchemeAgreesWithReferenceModel) {
  auto factory = factories()[static_cast<std::size_t>(std::get<0>(GetParam()))];
  std::uint64_t seed = std::get<1>(GetParam());
  // Everything — the operation sequence AND any fault schedule — derives
  // from this one seed, so a failure replays bit-for-bit from the trace line.
  SCOPED_TRACE(std::string(factory.name) + " seed=" + std::to_string(seed));
  std::mt19937_64 rng(seed);

  auto scheme = factory.make(seed);
  ReferenceModel model;

  // Bootstrap with a few members.
  std::vector<Identity> bootstrap = {"m0", "m1", "m2", "m3"};
  scheme->create_group(bootstrap);
  for (const auto& id : bootstrap) model.add(id);

  std::uint64_t next_user = 0;
  std::optional<Bytes> epoch_key;          // key observed this epoch
  std::uint64_t epoch_of_key = model.epoch;
  std::map<Identity, Bytes> revoked_keys;  // last key each leaver held

  for (std::size_t step = 0; step < factory.ops; ++step) {
    // --- pick and apply a random operation on both scheme and model.
    bool do_remove = model.members.size() > 1 && rng() % 100 < 40;
    if (do_remove) {
      auto it = model.members.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(rng() % model.members.size()));
      Identity leaver = *it;
      if (epoch_key) revoked_keys[leaver] = *epoch_key;
      scheme->remove_user(leaver);
      model.remove(leaver);
    } else if (rng() % 4 == 0 && !revoked_keys.empty()) {
      // Re-admit a previously revoked user.
      auto it = revoked_keys.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(rng() % revoked_keys.size()));
      scheme->add_user(it->first);
      model.add(it->first);
      revoked_keys.erase(it);
    } else {
      Identity joiner = "n" + std::to_string(next_user++);
      scheme->add_user(joiner);
      model.add(joiner);
    }

    // --- scheme must agree with the model.
    ASSERT_EQ(scheme->group_size(), model.members.size()) << "step " << step;

    // Sampled members all derive one key.
    std::optional<Bytes> current;
    for (std::size_t c = 0; c < factory.checks && !model.members.empty(); ++c) {
      auto it = model.members.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(rng() % model.members.size()));
      auto gk = scheme->user_decrypt(*it);
      ASSERT_TRUE(gk.has_value())
          << factory.name << ": member " << *it << " locked out at step " << step;
      if (current) {
        ASSERT_EQ(*gk, *current)
            << factory.name << ": key divergence at step " << step;
      }
      current = *gk;
    }

    if (current) {
      // Key stability within an epoch, rotation across epochs.
      if (epoch_key && epoch_of_key == model.epoch) {
        ASSERT_EQ(*current, *epoch_key)
            << factory.name << ": key rotated without a removal (step " << step << ")";
      }
      if (epoch_key && epoch_of_key != model.epoch) {
        ASSERT_NE(*current, *epoch_key)
            << factory.name << ": key not rotated on removal (step " << step << ")";
      }
      epoch_key = current;
      epoch_of_key = model.epoch;

      // No revoked user's stale key may equal the current key, and revoked
      // users must not be able to re-derive (sample one).
      if (!revoked_keys.empty()) {
        auto it = revoked_keys.begin();
        std::advance(it,
                     static_cast<std::ptrdiff_t>(rng() % revoked_keys.size()));
        ASSERT_NE(it->second, *current)
            << factory.name << ": revoked key still current at step " << step;
        if (model.members.find(it->first) == model.members.end()) {
          auto stale = scheme->user_decrypt(it->first);
          ASSERT_FALSE(stale.has_value())
              << factory.name << ": revoked user " << it->first
              << " re-derived a key at step " << step;
        }
      }
    }
  }
}

}  // namespace
