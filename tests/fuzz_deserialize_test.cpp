// Robustness sweep over every wire format in the system: valid encodings
// survive a round trip; truncated, bit-flipped and random inputs must either
// parse to *something* or throw DeserializeError — never crash, hang, or
// throw anything else. (This is what "parse untrusted cloud bytes" means for
// the clients and the re-syncing administrators.)
#include <gtest/gtest.h>

#include <functional>
#include <random>

#include "enclave/ibbe_enclave.h"
#include "ibbe/ibbe.h"
#include "pki/cert.h"
#include "sgx/enclave.h"
#include "system/metadata.h"
#include "system/oplog.h"

namespace {

using ibbe::util::Bytes;
using ibbe::util::DeserializeError;

struct Format {
  const char* name;
  Bytes valid;  // a syntactically valid encoding of this format
  std::function<void(std::span<const std::uint8_t>)> parse;
};

/// Builds one valid specimen of every format plus its parser.
std::vector<Format> all_formats() {
  std::vector<Format> formats;

  ibbe::crypto::Drbg rng(2718);
  auto keys = ibbe::core::setup(4, rng);
  std::vector<ibbe::core::Identity> users = {"a", "b", "c"};
  auto enc = ibbe::core::encrypt_with_msk(keys.msk, keys.pk, users, rng);
  auto usk = ibbe::core::extract_user_key(keys.msk, "a");

  formats.push_back({"PublicKey", keys.pk.to_bytes(), [](auto d) {
                       (void)ibbe::core::PublicKey::from_bytes(d);
                     }});
  formats.push_back({"UserSecretKey", usk.to_bytes(), [](auto d) {
                       (void)ibbe::core::UserSecretKey::from_bytes(d);
                     }});
  formats.push_back({"BroadcastCiphertext", enc.ct.to_bytes(), [](auto d) {
                       (void)ibbe::core::BroadcastCiphertext::from_bytes(d);
                     }});
  formats.push_back({"G1", ibbe::ec::g1_to_bytes(keys.msk.g), [](auto d) {
                       (void)ibbe::ec::g1_from_bytes(d);
                     }});
  formats.push_back({"G2", ibbe::ec::g2_to_bytes(keys.pk.h()), [](auto d) {
                       (void)ibbe::ec::g2_from_bytes(d);
                     }});

  // SGX formats.
  ibbe::sgx::EnclavePlatform platform("fuzz-box");
  ibbe::enclave::IbbeEnclave enclave(platform, 4);
  auto group = enclave.ecall_create_group({{users}});
  formats.push_back({"SealedBlob", group.sealed_gk.to_bytes(), [](auto d) {
                       (void)ibbe::sgx::SealedBlob::from_bytes(d);
                     }});
  formats.push_back({"Quote", enclave.attestation_quote().to_bytes(),
                     [](auto d) { (void)ibbe::sgx::Quote::from_bytes(d); }});
  formats.push_back(
      {"PartitionCiphertext", group.partitions[0].to_bytes(), [](auto d) {
         (void)ibbe::enclave::PartitionCiphertext::from_bytes(d);
       }});

  // PKI formats.
  auto admin_key = ibbe::pki::EcdsaKeyPair::generate(rng);
  ibbe::pki::CertificateAuthority ca("fuzz-ca", rng);
  auto cert = ca.issue("subject", admin_key.public_key_bytes(), Bytes(32, 1));
  formats.push_back({"Certificate", cert.to_bytes(), [](auto d) {
                       (void)ibbe::pki::Certificate::from_bytes(d);
                     }});
  formats.push_back({"EcdsaSignature", admin_key.sign("x").to_bytes(),
                     [](auto d) { (void)ibbe::pki::EcdsaSignature::from_bytes(d); }});

  // System metadata formats (sharded manifest layout).
  ibbe::system::GroupManifest manifest;
  manifest.shards = {{7, {}}, {9, {}}};
  manifest.cipher_set = 11;
  manifest.overlays = {{3, 12}};
  manifest.gk_epoch = 2;
  manifest.delta_base = 5;
  formats.push_back({"GroupManifest", manifest.to_bytes(), [](auto d) {
                       (void)ibbe::system::GroupManifest::from_bytes(d);
                     }});
  ibbe::system::IndexShard shard;
  shard.sid = 7;
  shard.partitions = {{3, users}, {4, {"d"}}};
  formats.push_back({"IndexShard", shard.to_bytes(), [](auto d) {
                       (void)ibbe::system::IndexShard::from_bytes(d);
                     }});
  ibbe::system::CipherBundle bundle;
  bundle.entries = {{3, group.partitions[0]}};
  formats.push_back({"CipherBundle", bundle.to_bytes(), [](auto d) {
                       (void)ibbe::system::CipherBundle::from_bytes(d);
                     }});
  ibbe::system::CipherOverlay overlay;
  overlay.pid = 3;
  overlay.cipher = group.partitions[0];
  formats.push_back({"CipherOverlay", overlay.to_bytes(), [](auto d) {
                       (void)ibbe::system::CipherOverlay::from_bytes(d);
                     }});
  ibbe::system::IndexDelta delta;
  delta.seq = 6;
  ibbe::system::DeltaOp add;
  add.kind = ibbe::system::DeltaOp::Kind::add_member;
  add.user = "d";
  add.pid = 3;
  ibbe::system::DeltaOp repart;
  repart.kind = ibbe::system::DeltaOp::Kind::repartition;
  repart.dropped = {3, 4};
  repart.created = {{5, users}};
  delta.ops = {add, repart};
  formats.push_back({"IndexDelta", delta.to_bytes(), [](auto d) {
                       (void)ibbe::system::IndexDelta::from_bytes(d);
                     }});
  auto env = ibbe::system::SignedEnvelope::sign(admin_key, Bytes(40, 9));
  formats.push_back({"SignedEnvelope", env.to_bytes(), [](auto d) {
                       (void)ibbe::system::SignedEnvelope::from_bytes(d);
                     }});
  ibbe::system::MembershipLog log;
  log.append(ibbe::system::LogOp::create_group, "m=3", "admin", admin_key);
  log.append(ibbe::system::LogOp::add_user, "d", "admin", admin_key);
  formats.push_back({"MembershipLog", log.to_bytes(), [](auto d) {
                       (void)ibbe::system::MembershipLog::from_bytes(d);
                     }});
  return formats;
}

/// Runs the parser and fails the test on anything but success or
/// DeserializeError (std::bad_alloc from a hostile length prefix counts as a
/// failure: parsers must validate lengths before allocating).
void expect_graceful(const Format& format, std::span<const std::uint8_t> data) {
  try {
    format.parse(data);
  } catch (const DeserializeError&) {
    // expected rejection
  } catch (const std::exception& e) {
    FAIL() << format.name << ": wrong exception type: " << e.what();
  }
}

TEST(FuzzDeserialize, ValidEncodingsParse) {
  for (const auto& format : all_formats()) {
    EXPECT_NO_THROW(format.parse(format.valid)) << format.name;
  }
}

TEST(FuzzDeserialize, AllTruncationsAreGraceful) {
  for (const auto& format : all_formats()) {
    // Every prefix, and for large formats a stride to keep runtime sane.
    std::size_t stride = format.valid.size() > 512 ? 7 : 1;
    for (std::size_t len = 0; len < format.valid.size(); len += stride) {
      expect_graceful(format,
                      std::span<const std::uint8_t>(format.valid.data(), len));
    }
  }
}

TEST(FuzzDeserialize, BitFlipsAreGraceful) {
  std::mt19937_64 rng(99);
  for (const auto& format : all_formats()) {
    for (int trial = 0; trial < 64; ++trial) {
      Bytes mutated = format.valid;
      std::size_t pos = rng() % mutated.size();
      mutated[pos] ^= static_cast<std::uint8_t>(1 << (rng() % 8));
      expect_graceful(format, mutated);
    }
  }
}

TEST(FuzzDeserialize, RandomGarbageIsGraceful) {
  std::mt19937_64 rng(7);
  for (const auto& format : all_formats()) {
    for (int trial = 0; trial < 32; ++trial) {
      Bytes garbage(format.valid.size());
      for (auto& b : garbage) b = static_cast<std::uint8_t>(rng());
      expect_graceful(format, garbage);
    }
    // And garbage of random lengths.
    for (int trial = 0; trial < 16; ++trial) {
      Bytes garbage(rng() % 200);
      for (auto& b : garbage) b = static_cast<std::uint8_t>(rng());
      expect_graceful(format, garbage);
    }
  }
}

// Allocation-bomb resistance: a hostile count field claiming ~4 billion
// elements in a tiny buffer must fail the remaining-bytes clamp
// (ByteReader::count) BEFORE any reserve/allocation happens — a
// DeserializeError, never std::bad_alloc or an OOM kill.
TEST(FuzzDeserialize, HostileCountFieldsDoNotAllocate) {
  auto bomb = [](std::initializer_list<std::uint8_t> bytes) {
    return Bytes(bytes);
  };
  // GroupManifest: shard count 0xFFFFFFFF, then nothing.
  Bytes manifest_bomb = bomb({0xff, 0xff, 0xff, 0xff});
  EXPECT_THROW(ibbe::system::GroupManifest::from_bytes(manifest_bomb),
               DeserializeError);
  // IndexShard: sid, then partition count 0xFFFFFFFF.
  Bytes shard_bomb = bomb({0, 0, 0, 0, 0, 0, 0, 7, 0xff, 0xff, 0xff, 0xff});
  EXPECT_THROW(ibbe::system::IndexShard::from_bytes(shard_bomb),
               DeserializeError);
  // IndexShard: one partition whose MEMBER count is the bomb.
  Bytes member_bomb = bomb({0, 0, 0, 0, 0, 0, 0, 7,   // sid
                            0, 0, 0, 1,               // 1 partition
                            0, 0, 0, 0, 0, 0, 0, 3,   // pid
                            0xff, 0xff, 0xff, 0xff}); // member count
  EXPECT_THROW(ibbe::system::IndexShard::from_bytes(member_bomb),
               DeserializeError);
  // CipherBundle: entry count 0xFFFFFFFF.
  Bytes bundle_bomb = bomb({0xff, 0xff, 0xff, 0xff});
  EXPECT_THROW(ibbe::system::CipherBundle::from_bytes(bundle_bomb),
               DeserializeError);
  // IndexDelta: header, then op count 0xFFFFFFFF.
  Bytes delta_bomb(8 + 32 + 32, 0);
  delta_bomb.insert(delta_bomb.end(), {0xff, 0xff, 0xff, 0xff});
  EXPECT_THROW(ibbe::system::IndexDelta::from_bytes(delta_bomb),
               DeserializeError);
  // IndexDelta: one repartition op whose dropped-pid count is the bomb.
  Bytes repart_bomb(8 + 32 + 32, 0);
  repart_bomb.insert(repart_bomb.end(), {0, 0, 0, 1});  // 1 op
  repart_bomb.push_back(3);                             // kind: repartition
  repart_bomb.insert(repart_bomb.end(), {0xff, 0xff, 0xff, 0xff});
  EXPECT_THROW(ibbe::system::IndexDelta::from_bytes(repart_bomb),
               DeserializeError);
}

TEST(FuzzDeserialize, TrailingBytesAreRejected) {
  for (const auto& format : all_formats()) {
    // Fixed-size point formats tolerate no trailing data by construction;
    // the length-prefixed ones must call expect_end. Either way appending a
    // byte must not produce a silently different object.
    Bytes extended = format.valid;
    extended.push_back(0xab);
    expect_graceful(format, extended);
  }
}

}  // namespace
