#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/drbg.h"
#include "ibbe/ibbe.h"

namespace {

using ibbe::core::BroadcastCiphertext;
using ibbe::core::Identity;
using ibbe::core::PublicKey;
using ibbe::core::SystemKeys;
using ibbe::core::UserSecretKey;
using ibbe::crypto::Drbg;

std::vector<Identity> make_users(std::size_t n, const std::string& prefix = "user") {
  std::vector<Identity> users;
  users.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    users.push_back(prefix + std::to_string(i) + "@example.com");
  }
  return users;
}

struct IbbeFixture : ::testing::Test {
  IbbeFixture() : rng(99), keys(ibbe::core::setup(32, rng)) {}

  UserSecretKey usk(const Identity& id) {
    return ibbe::core::extract_user_key(keys.msk, id);
  }

  Drbg rng;
  SystemKeys keys;
};

// ------------------------------------------------------------------- setup

TEST_F(IbbeFixture, SetupShapes) {
  EXPECT_EQ(keys.pk.max_receivers(), 32u);
  EXPECT_EQ(keys.pk.h_powers.size(), 33u);
  EXPECT_FALSE(keys.msk.gamma.is_zero());
  // w = g^gamma.
  EXPECT_EQ(keys.pk.w, keys.msk.g.mul(keys.msk.gamma));
  // h_powers[i+1] = h_powers[i]^gamma.
  EXPECT_EQ(keys.pk.h_powers[1], keys.pk.h().mul(keys.msk.gamma));
  EXPECT_EQ(keys.pk.h_powers[5], keys.pk.h_powers[4].mul(keys.msk.gamma));
}

TEST(IbbeSetup, RejectsZeroSize) {
  Drbg rng(1);
  EXPECT_THROW(ibbe::core::setup(0, rng), std::invalid_argument);
}

TEST_F(IbbeFixture, HashIdentityIsStableAndNonZero) {
  auto a = ibbe::core::hash_identity("alice");
  EXPECT_EQ(a, ibbe::core::hash_identity("alice"));
  EXPECT_FALSE(a.is_zero());
  EXPECT_NE(a, ibbe::core::hash_identity("bob"));
}

TEST_F(IbbeFixture, ExtractedKeysVerify) {
  auto key = usk("alice");
  EXPECT_TRUE(ibbe::core::verify_user_key(keys.pk, key));
  // A key presented under a different identity fails the pairing check.
  UserSecretKey forged = key;
  forged.id = "bob";
  EXPECT_FALSE(ibbe::core::verify_user_key(keys.pk, forged));
}

// --------------------------------------------------------- encrypt/decrypt

class IbbeRoundTrip : public ::testing::TestWithParam<std::size_t> {};
INSTANTIATE_TEST_SUITE_P(SetSizes, IbbeRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 8u, 17u));

TEST_P(IbbeRoundTrip, EveryMemberRecoversBk) {
  Drbg rng(5);
  auto keys = ibbe::core::setup(20, rng);
  auto users = make_users(GetParam());
  auto enc = ibbe::core::encrypt_with_msk(keys.msk, keys.pk, users, rng);
  for (const auto& id : users) {
    auto usk = ibbe::core::extract_user_key(keys.msk, id);
    auto bk = ibbe::core::decrypt(keys.pk, usk, users, enc.ct);
    ASSERT_TRUE(bk.has_value()) << id;
    EXPECT_EQ(*bk, enc.bk) << id;
  }
}

TEST_P(IbbeRoundTrip, PublicEncryptMatchesMskEncryptStructure) {
  Drbg rng(6);
  auto keys = ibbe::core::setup(20, rng);
  auto users = make_users(GetParam());
  // C3 is randomizer-free, so the two paths must agree on it exactly.
  auto enc_msk = ibbe::core::encrypt_with_msk(keys.msk, keys.pk, users, rng);
  auto enc_pub = ibbe::core::encrypt_public(keys.pk, users, rng);
  EXPECT_EQ(enc_msk.ct.c3, enc_pub.ct.c3);
  EXPECT_EQ(enc_msk.ct.c3, ibbe::core::compute_c3_public(keys.pk, users));
  // And a member can decrypt the public-path ciphertext.
  auto usk = ibbe::core::extract_user_key(keys.msk, users.front());
  auto bk = ibbe::core::decrypt(keys.pk, usk, users, enc_pub.ct);
  ASSERT_TRUE(bk.has_value());
  EXPECT_EQ(*bk, enc_pub.bk);
}

TEST_F(IbbeFixture, NonMemberGetsNullopt) {
  auto users = make_users(4);
  auto enc = ibbe::core::encrypt_with_msk(keys.msk, keys.pk, users, rng);
  auto outsider = usk("outsider@example.com");
  EXPECT_FALSE(ibbe::core::decrypt(keys.pk, outsider, users, enc.ct).has_value());
}

TEST_F(IbbeFixture, WrongKeyYieldsWrongBk) {
  // A member identity with someone else's USK decrypts to garbage, not bk.
  auto users = make_users(3);
  auto enc = ibbe::core::encrypt_with_msk(keys.msk, keys.pk, users, rng);
  UserSecretKey mismatched = usk(users[1]);
  mismatched.id = users[0];  // claims to be user0 but holds user1's key
  auto bk = ibbe::core::decrypt(keys.pk, mismatched, users, enc.ct);
  ASSERT_TRUE(bk.has_value());
  EXPECT_NE(*bk, enc.bk);
}

TEST_F(IbbeFixture, EncryptRejectsEmptyAndOversizedSets) {
  std::vector<Identity> empty;
  EXPECT_THROW(ibbe::core::encrypt_with_msk(keys.msk, keys.pk, empty, rng),
               std::invalid_argument);
  auto too_many = make_users(33);
  EXPECT_THROW(ibbe::core::encrypt_with_msk(keys.msk, keys.pk, too_many, rng),
               std::invalid_argument);
  EXPECT_THROW(ibbe::core::encrypt_public(keys.pk, too_many, rng),
               std::invalid_argument);
}

TEST_F(IbbeFixture, DecryptRejectsOversizedSet) {
  auto users = make_users(4);
  auto enc = ibbe::core::encrypt_with_msk(keys.msk, keys.pk, users, rng);
  auto too_many = make_users(33);
  auto key = usk(too_many[0]);
  EXPECT_FALSE(ibbe::core::decrypt(keys.pk, key, too_many, enc.ct).has_value());
}

TEST_F(IbbeFixture, FreshRandomizerPerEncrypt) {
  auto users = make_users(2);
  auto e1 = ibbe::core::encrypt_with_msk(keys.msk, keys.pk, users, rng);
  auto e2 = ibbe::core::encrypt_with_msk(keys.msk, keys.pk, users, rng);
  EXPECT_NE(e1.bk, e2.bk);
  EXPECT_FALSE(e1.ct.c1 == e2.ct.c1);
  EXPECT_EQ(e1.ct.c3, e2.ct.c3);  // C3 has no randomizer
}

// -------------------------------------------------------- membership ops

TEST_F(IbbeFixture, AddUserKeepsBkAndExtendsSet) {
  auto users = make_users(3);
  auto enc = ibbe::core::encrypt_with_msk(keys.msk, keys.pk, users, rng);

  Identity newcomer = "newcomer@example.com";
  ibbe::core::add_user_with_msk(keys.msk, enc.ct, newcomer);
  auto extended = users;
  extended.push_back(newcomer);

  // C3 invariant: matches a from-scratch public computation on the new set.
  EXPECT_EQ(enc.ct.c3, ibbe::core::compute_c3_public(keys.pk, extended));

  // The newcomer and the old members all recover the *unchanged* bk.
  for (const auto& id : extended) {
    auto bk = ibbe::core::decrypt(keys.pk, usk(id), extended, enc.ct);
    ASSERT_TRUE(bk.has_value()) << id;
    EXPECT_EQ(*bk, enc.bk) << id;
  }
}

TEST_F(IbbeFixture, RemoveUserRekeysAndShrinksSet) {
  auto users = make_users(4);
  auto enc = ibbe::core::encrypt_with_msk(keys.msk, keys.pk, users, rng);

  Identity leaver = users[2];
  auto removed =
      ibbe::core::remove_user_with_msk(keys.msk, keys.pk, enc.ct, leaver, rng);
  std::vector<Identity> remaining = {users[0], users[1], users[3]};

  EXPECT_NE(removed.bk, enc.bk);
  EXPECT_EQ(removed.ct.c3, ibbe::core::compute_c3_public(keys.pk, remaining));

  for (const auto& id : remaining) {
    auto bk = ibbe::core::decrypt(keys.pk, usk(id), remaining, removed.ct);
    ASSERT_TRUE(bk.has_value()) << id;
    EXPECT_EQ(*bk, removed.bk) << id;
  }
  // The leaver is no longer in the receiver set.
  EXPECT_FALSE(
      ibbe::core::decrypt(keys.pk, usk(leaver), remaining, removed.ct).has_value());
  // Even pretending to still be in the set, the old key yields a wrong bk.
  auto cheat = ibbe::core::decrypt(keys.pk, usk(leaver), users, removed.ct);
  if (cheat.has_value()) EXPECT_NE(*cheat, removed.bk);
}

TEST_F(IbbeFixture, RekeyChangesBkNotMembership) {
  auto users = make_users(3);
  auto enc = ibbe::core::encrypt_with_msk(keys.msk, keys.pk, users, rng);
  auto rekeyed = ibbe::core::rekey(keys.pk, enc.ct, rng);

  EXPECT_NE(rekeyed.bk, enc.bk);
  EXPECT_EQ(rekeyed.ct.c3, enc.ct.c3);
  for (const auto& id : users) {
    auto bk = ibbe::core::decrypt(keys.pk, usk(id), users, rekeyed.ct);
    ASSERT_TRUE(bk.has_value());
    EXPECT_EQ(*bk, rekeyed.bk);
  }
}

TEST_F(IbbeFixture, AddThenRemoveIsConsistent) {
  auto users = make_users(2);
  auto enc = ibbe::core::encrypt_with_msk(keys.msk, keys.pk, users, rng);
  Identity temp = "temp@example.com";
  ibbe::core::add_user_with_msk(keys.msk, enc.ct, temp);
  auto removed = ibbe::core::remove_user_with_msk(keys.msk, keys.pk, enc.ct, temp, rng);
  // Back to the original receiver set.
  EXPECT_EQ(removed.ct.c3, ibbe::core::compute_c3_public(keys.pk, users));
  auto bk = ibbe::core::decrypt(keys.pk, usk(users[0]), users, removed.ct);
  ASSERT_TRUE(bk.has_value());
  EXPECT_EQ(*bk, removed.bk);
}

// ----------------------------------------------------------- serialization

TEST_F(IbbeFixture, PublicKeyRoundTrip) {
  auto bytes = keys.pk.to_bytes();
  auto back = PublicKey::from_bytes(bytes);
  EXPECT_EQ(back.w, keys.pk.w);
  EXPECT_EQ(back.v, keys.pk.v);
  ASSERT_EQ(back.h_powers.size(), keys.pk.h_powers.size());
  for (std::size_t i = 0; i < back.h_powers.size(); ++i) {
    EXPECT_EQ(back.h_powers[i], keys.pk.h_powers[i]) << i;
  }
}

TEST_F(IbbeFixture, UserKeyRoundTrip) {
  auto key = usk("alice");
  auto back = UserSecretKey::from_bytes(key.to_bytes());
  EXPECT_EQ(back.id, key.id);
  EXPECT_EQ(back.value, key.value);
  EXPECT_TRUE(ibbe::core::verify_user_key(keys.pk, back));
}

TEST_F(IbbeFixture, CiphertextRoundTrip) {
  auto users = make_users(3);
  auto enc = ibbe::core::encrypt_with_msk(keys.msk, keys.pk, users, rng);
  auto bytes = enc.ct.to_bytes();
  EXPECT_EQ(bytes.size(), BroadcastCiphertext::serialized_size);
  auto back = BroadcastCiphertext::from_bytes(bytes);
  EXPECT_EQ(back.c1, enc.ct.c1);
  EXPECT_EQ(back.c2, enc.ct.c2);
  EXPECT_EQ(back.c3, enc.ct.c3);
  // Deserialized ciphertext still decrypts.
  auto bk = ibbe::core::decrypt(keys.pk, usk(users[1]), users, back);
  ASSERT_TRUE(bk.has_value());
  EXPECT_EQ(*bk, enc.bk);
}

TEST_F(IbbeFixture, CiphertextIsConstantSize) {
  // The headline IBBE property: ciphertext size independent of |S|.
  auto small = ibbe::core::encrypt_with_msk(keys.msk, keys.pk, make_users(1), rng);
  auto large = ibbe::core::encrypt_with_msk(keys.msk, keys.pk, make_users(30), rng);
  EXPECT_EQ(small.ct.to_bytes().size(), large.ct.to_bytes().size());
}

// -------------------------------------------------------- batched decrypt

TEST_F(IbbeFixture, BatchedDecryptMatchesPerPartitionDecrypt) {
  // One client ("user0...") in four partitions with otherwise disjoint
  // receiver sets — the multi-group / multi-partition client of the paper.
  auto key = usk(make_users(1)[0]);
  std::vector<std::vector<Identity>> sets;
  std::vector<ibbe::core::EncryptResult> encs;
  for (int p = 0; p < 4; ++p) {
    auto set = make_users(5, "p" + std::to_string(p) + "-member");
    set[2] = key.id;  // the common client, at different positions
    encs.push_back(ibbe::core::encrypt_with_msk(keys.msk, keys.pk, set, rng));
    sets.push_back(std::move(set));
  }

  std::vector<ibbe::core::PartitionRef> parts;
  for (int p = 0; p < 4; ++p) {
    auto idx = static_cast<std::size_t>(p);
    parts.push_back({sets[idx], &encs[idx].ct});
  }
  auto batched = ibbe::core::decrypt_batched(keys.pk, key, parts);
  ASSERT_EQ(batched.size(), 4u);
  for (int p = 0; p < 4; ++p) {
    auto idx = static_cast<std::size_t>(p);
    auto single = ibbe::core::decrypt(keys.pk, key, sets[idx], encs[idx].ct);
    ASSERT_TRUE(single.has_value());
    ASSERT_TRUE(batched[idx].has_value()) << "partition " << p;
    EXPECT_EQ(*batched[idx], *single) << "partition " << p;
    EXPECT_EQ(*batched[idx], encs[idx].bk) << "partition " << p;
  }
}

TEST_F(IbbeFixture, BatchedDecryptSkipsNonMemberPartitions) {
  auto key = usk(make_users(1)[0]);
  auto in_set = make_users(4);                    // contains user0
  auto out_set = make_users(4, "stranger");       // does not
  auto enc_in = ibbe::core::encrypt_with_msk(keys.msk, keys.pk, in_set, rng);
  auto enc_out = ibbe::core::encrypt_with_msk(keys.msk, keys.pk, out_set, rng);

  std::vector<ibbe::core::PartitionRef> parts = {
      {out_set, &enc_out.ct},
      {in_set, &enc_in.ct},
      {out_set, &enc_out.ct},
  };
  auto batched = ibbe::core::decrypt_batched(keys.pk, key, parts);
  ASSERT_EQ(batched.size(), 3u);
  EXPECT_FALSE(batched[0].has_value());
  ASSERT_TRUE(batched[1].has_value());
  EXPECT_EQ(*batched[1], enc_in.bk);
  EXPECT_FALSE(batched[2].has_value());
}

TEST_F(IbbeFixture, BatchedDecryptEmptyAndErrors) {
  auto key = usk(make_users(1)[0]);
  EXPECT_TRUE(ibbe::core::decrypt_batched(keys.pk, key, {}).empty());
  std::vector<ibbe::core::PartitionRef> bad = {{make_users(2), nullptr}};
  EXPECT_THROW(ibbe::core::decrypt_batched(keys.pk, key, bad),
               std::invalid_argument);
}

TEST_F(IbbeFixture, BatchedDecryptSinglePartitionEqualsDecrypt) {
  auto users = make_users(8);
  auto key = usk(users[3]);
  auto enc = ibbe::core::encrypt_with_msk(keys.msk, keys.pk, users, rng);
  std::vector<ibbe::core::PartitionRef> parts = {{users, &enc.ct}};
  auto batched = ibbe::core::decrypt_batched(keys.pk, key, parts);
  ASSERT_EQ(batched.size(), 1u);
  ASSERT_TRUE(batched[0].has_value());
  EXPECT_EQ(*batched[0], *ibbe::core::decrypt(keys.pk, key, users, enc.ct));
}

// ------------------------------------------------- cached partition decrypt

TEST_F(IbbeFixture, PreparedPartitionDecryptEqualsDecrypt) {
  auto users = make_users(8);
  auto key = usk(users[2]);
  auto part = ibbe::core::PreparedPartition::prepare(keys.pk, key, users);
  ASSERT_TRUE(part.has_value());

  // The cache stays valid across re-keys (C3 unchanged) and fresh messages.
  auto enc = ibbe::core::encrypt_with_msk(keys.msk, keys.pk, users, rng);
  EXPECT_EQ(ibbe::core::decrypt(*part, enc.ct),
            *ibbe::core::decrypt(keys.pk, key, users, enc.ct));
  auto rekeyed = ibbe::core::rekey(keys.pk, enc.ct, rng);
  EXPECT_EQ(ibbe::core::decrypt(*part, rekeyed.ct), rekeyed.bk);
}

TEST_F(IbbeFixture, PreparedPartitionRejectsNonMembersAndOversizedSets) {
  auto users = make_users(4);
  auto outsider = usk("outsider@example.com");
  EXPECT_FALSE(
      ibbe::core::PreparedPartition::prepare(keys.pk, outsider, users)
          .has_value());
  auto too_many = make_users(33);
  auto key = usk(too_many[0]);
  EXPECT_FALSE(
      ibbe::core::PreparedPartition::prepare(keys.pk, key, too_many)
          .has_value());
}

TEST_F(IbbeFixture, PreparedBatchedDecryptEqualsPerPartitionDecrypt) {
  // One client in three partitions, all prepared once, batch-decrypted.
  auto shared_user = make_users(1)[0];
  auto key = usk(shared_user);
  std::vector<std::vector<Identity>> sets;
  std::vector<ibbe::core::EncryptResult> encs;
  std::vector<ibbe::core::PreparedPartition> parts;
  for (int p = 0; p < 3; ++p) {
    auto set = make_users(5 + static_cast<std::size_t>(p),
                          "p" + std::to_string(p) + "-user");
    set[static_cast<std::size_t>(p)] = shared_user;
    encs.push_back(ibbe::core::encrypt_with_msk(keys.msk, keys.pk, set, rng));
    auto part = ibbe::core::PreparedPartition::prepare(keys.pk, key, set);
    ASSERT_TRUE(part.has_value());
    parts.push_back(std::move(*part));
    sets.push_back(std::move(set));
  }
  std::vector<ibbe::core::PreparedPartitionRef> refs;
  for (int p = 0; p < 3; ++p) {
    refs.push_back({&parts[static_cast<std::size_t>(p)],
                    &encs[static_cast<std::size_t>(p)].ct});
  }
  auto batched = ibbe::core::decrypt_batched(refs);
  ASSERT_EQ(batched.size(), 3u);
  for (int p = 0; p < 3; ++p) {
    EXPECT_EQ(batched[static_cast<std::size_t>(p)],
              encs[static_cast<std::size_t>(p)].bk);
    EXPECT_EQ(batched[static_cast<std::size_t>(p)],
              *ibbe::core::decrypt(keys.pk, key, sets[static_cast<std::size_t>(p)],
                                   encs[static_cast<std::size_t>(p)].ct));
  }
}

TEST(PreparedPartitionErrors, NullRefsRejected) {
  std::vector<ibbe::core::PreparedPartitionRef> bad = {{nullptr, nullptr}};
  EXPECT_THROW(ibbe::core::decrypt_batched(bad), std::invalid_argument);
}

}  // namespace
