// Byzantine-cloud tests: MaliciousStore adversary schedules, enclave-anchored
// freshness, and client-side fork detection.
//
// Four layers:
//   1. unit tests for cloud::MaliciousStore (replayable attack schedules,
//      per-view forking, generation pinning) and the enclave freshness
//      counter protocol (attest / confirm / floor);
//   2. single-attack system tests: every adversary schedule the store can
//      mount — wholesale rollback, tail withholding, selective equivocation
//      — is DETECTED (`stale` / `forked` / failed anchored audit) or
//      harmless; a client never silently accepts unverified state and
//      degrades to its last VERIFIED key read-only;
//   3. the fork construction: two admins race one index CAS so two
//      enclave-attested tokens share a counter with divergent log heads; the
//      cloud serves one to each client, and gossip makes both clients detect
//      the fork within one poll round;
//   4. the full Byzantine scheme (malice + fail-stop faults + crash
//      recovery) held to the same membership/key invariants as a fault-free
//      deployment, plus the splice-across-fork audit regression.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cloud/fault.h"
#include "cloud/store.h"
#include "system/admin.h"
#include "system/client.h"
#include "system/ibbe_scheme.h"
#include "system/oplog.h"
#include "util/retry.h"

namespace {

using ibbe::cloud::CloudStore;
using ibbe::cloud::FaultInjectingStore;
using ibbe::cloud::FaultPlan;
using ibbe::cloud::MaliciousPlan;
using ibbe::cloud::MaliciousStore;
using ibbe::cloud::TransientError;
using ibbe::core::Identity;
using ibbe::system::AdminApi;
using ibbe::system::AdminConfig;
using ibbe::system::ClientApi;
using ibbe::system::GroupId;
using ibbe::system::LogOp;
using ibbe::system::MembershipLog;
using ibbe::util::Bytes;
using ibbe::util::RetryPolicy;
using FetchStatus = ClientApi::FetchStatus;

std::vector<Identity> make_users(std::size_t n, std::size_t offset = 0) {
  std::vector<Identity> users;
  for (std::size_t i = 0; i < n; ++i) {
    users.push_back("u" + std::to_string(offset + i));
  }
  return users;
}

Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }

std::string str_of(const Bytes& b) { return std::string(b.begin(), b.end()); }

// ----------------------------------------------------------- MaliciousStore

TEST(MaliciousStore, SameSeedReplaysIdenticalAttackTrace) {
  auto run = [](std::uint64_t seed) {
    CloudStore inner;
    MaliciousPlan plan;
    plan.seed = seed;
    plan.rollback_rate = 0.25;
    plan.withhold_rate = 0.2;
    plan.equivocate_rate = 0.15;
    plan.max_window = 3;
    MaliciousStore mal(inner, plan);
    // Six committed generations (every index write auto-captures).
    for (int i = 0; i < 6; ++i) {
      mal.put("groups/g/oplog", bytes_of("log" + std::to_string(i)));
      mal.put("groups/g/index", bytes_of("idx" + std::to_string(i)));
    }
    std::string trace;
    for (int i = 0; i < 48; ++i) {
      auto idx = mal.get("groups/g/index");
      auto log = mal.get("groups/g/oplog");
      trace += idx ? str_of(*idx) : "-";
      trace += '/';
      trace += log ? str_of(*log) : "-";
      trace += ';';
    }
    auto stats = mal.malicious_stats();
    return std::make_pair(trace, stats.total_attacks());
  };
  auto [first, attacks] = run(5);
  EXPECT_GT(attacks, 0u) << "schedule mounted no attacks at these rates";
  EXPECT_NE(first.find("idx5/log5"), std::string::npos) << "never served live";
  EXPECT_EQ(first, run(5).first);  // bit-for-bit replay from the seed
  EXPECT_NE(first, run(6).first);  // a different seed diverges
}

TEST(MaliciousStore, RollbackWindowServesOneConsistentOldGeneration) {
  CloudStore inner;
  MaliciousPlan plan;
  plan.rollback_rate = 1.0;  // every targeted read opens/continues a window
  plan.min_window = 2;
  plan.max_window = 2;
  MaliciousStore mal(inner, plan);
  mal.put("groups/g/index", bytes_of("old"));
  mal.put("groups/g/index", bytes_of("new"));
  // Only generation 0 predates the live state, so any rollback serves "old"
  // — and within one window the view must be CONSISTENT, not re-rolled.
  auto first = mal.get("groups/g/index");
  ASSERT_TRUE(first.has_value());
  std::string served = str_of(*first);
  EXPECT_TRUE(served == "old" || served == "new");
  EXPECT_GT(mal.malicious_stats().rollback_windows, 0u);
  // Untargeted paths are never touched by the schedule.
  mal.put("gossip/g/client-x", bytes_of("hint"));
  EXPECT_EQ(mal.get("gossip/g/client-x"), bytes_of("hint"));
}

TEST(MaliciousStore, ForkedViewsSeeDivergentGenerationsWritesStayLive) {
  CloudStore inner;
  MaliciousStore mal(inner, MaliciousPlan{});  // no random schedule
  mal.put("groups/g/index", bytes_of("g0"));
  mal.put("groups/g/index", bytes_of("g1"));
  ASSERT_EQ(mal.generation_count(), 2u);

  auto& view_x = mal.view("x");
  auto& view_y = mal.view("y");
  mal.pin_view("x", 0);
  mal.pin_view("y", 1);
  EXPECT_EQ(view_x.get("groups/g/index"), bytes_of("g0"));
  EXPECT_EQ(view_y.get("groups/g/index"), bytes_of("g1"));
  EXPECT_EQ(mal.get("groups/g/index"), bytes_of("g1"));  // default: live

  // Writes through a pinned view still reach the one true store.
  (void)view_x.put("groups/g/aux", bytes_of("from-x"));
  EXPECT_EQ(inner.get("groups/g/aux"), bytes_of("from-x"));
  // ...and a pinned view keeps serving its old world regardless.
  EXPECT_EQ(view_x.get("groups/g/index"), bytes_of("g0"));
  mal.unpin_view("x");
  EXPECT_EQ(view_x.get("groups/g/index"), bytes_of("g1"));

  // The gossip namespace stays shared and live even for pinned views.
  mal.pin_view("x", 0);
  (void)view_y.put("gossip/g/client-y", bytes_of("obs"));
  EXPECT_EQ(view_x.get("gossip/g/client-y"), bytes_of("obs"));
}

TEST(MaliciousStore, RecordsLosingCasPayloadsAsEquivocationMaterial) {
  CloudStore inner;
  MaliciousStore mal(inner, MaliciousPlan{});
  auto v1 = mal.put("groups/g/index", bytes_of("committed"));
  EXPECT_EQ(mal.put_cas("groups/g/index", bytes_of("loser"), v1 + 7),
            std::nullopt);
  auto rejected = mal.rejected_writes("groups/g/index");
  ASSERT_EQ(rejected.size(), 1u);
  EXPECT_EQ(rejected[0], bytes_of("loser"));
  EXPECT_EQ(mal.get("groups/g/index"), bytes_of("committed"));
  EXPECT_EQ(mal.malicious_stats().rejected_writes, 1u);
}

// ------------------------------------------------- enclave freshness counters

TEST(FreshnessCounter, AttestIsTentativeConfirmRaisesTheFloor) {
  ibbe::sgx::EnclavePlatform platform("fresh-box");
  ibbe::enclave::IbbeEnclave enclave(platform, 4);
  std::array<std::uint8_t, 32> head{};
  head.fill(0x5a);

  auto t1 = enclave.ecall_attest_freshness("g", 0, 7, head);
  EXPECT_EQ(t1.counter, 1u);
  EXPECT_EQ(t1.gk_epoch, 7u);
  // Attestation alone must NOT advance the platform counter: a failed CAS
  // would otherwise brick the group (every committed index below the floor).
  EXPECT_EQ(enclave.ecall_freshness_floor("g"), 0u);
  auto t1b = enclave.ecall_attest_freshness("g", 0, 7, head);
  EXPECT_EQ(t1b.counter, 1u);  // same tentative counter until confirmed

  enclave.ecall_confirm_freshness("g", t1.counter);
  EXPECT_EQ(enclave.ecall_freshness_floor("g"), 1u);
  EXPECT_EQ(enclave.ecall_attest_freshness("g", 1, 7, head).counter, 2u);
  // Counters are per group.
  EXPECT_EQ(enclave.ecall_freshness_floor("other"), 0u);

  // The token authenticates counter, epoch, head AND the group it names.
  EXPECT_TRUE(t1.verify(enclave.freshness_verification_key(), "g"));
  EXPECT_FALSE(t1.verify(enclave.freshness_verification_key(), "other"));
  auto tampered = t1;
  tampered.counter = 99;
  EXPECT_FALSE(tampered.verify(enclave.freshness_verification_key(), "g"));
  auto rebound = t1;
  rebound.gk_epoch = 8;
  EXPECT_FALSE(rebound.verify(enclave.freshness_verification_key(), "g"));
}

// --------------------------------------------------- single-attack schedules

struct ByzantineFixture : ::testing::Test {
  ByzantineFixture()
      : platform("byz-box"),
        enclave(platform, 8),
        malicious(inner, MaliciousPlan{}),  // attacks driven explicitly
        rng(21),
        admin_key(ibbe::pki::EcdsaKeyPair::generate(rng)),
        admin(enclave, malicious, admin_key,
              AdminConfig{.partition_size = 3,
                          .retry = RetryPolicy{}.without_delays(),
                          .log_operations = true},
              /*seed=*/4) {
    admin.create_group(gid, make_users(4));  // generation 0, counter 1
    admin.add_user(gid, "u9");               // generation 1, counter 2
  }

  ClientApi make_client(const Identity& id, const std::string& gossip_name,
                        CloudStore& store) {
    ClientApi client(store, enclave.public_key(),
                     enclave.ecall_extract_user_key(id),
                     admin.verification_point());
    client.set_retry_policy(RetryPolicy{}.without_delays());
    client.enable_freshness(enclave.freshness_verification_key());
    client.enable_gossip(gossip_name);
    return client;
  }

  ibbe::sgx::EnclavePlatform platform;
  ibbe::enclave::IbbeEnclave enclave;
  CloudStore inner;
  MaliciousStore malicious;
  ibbe::crypto::Drbg rng;
  ibbe::pki::EcdsaKeyPair admin_key;
  AdminApi admin;
  const GroupId gid = "g";
};

TEST_F(ByzantineFixture, WholesaleRollbackIsDetectedNeverAccepted) {
  ASSERT_GE(malicious.generation_count(), 2u);
  auto client = make_client("u0", "u0", malicious);
  auto live = client.fetch(gid);
  ASSERT_EQ(live.status, FetchStatus::ok);
  const Bytes current_key = *live.key;

  // The cloud rolls every client back to the pre-add generation: a wholly
  // consistent, correctly signed, merely OLD index+log pair.
  malicious.serve_generation(0);

  // A client that has seen the newer commit rejects on its own high-water
  // mark; degraded mode hands back the last VERIFIED key, read-only.
  auto rolled = client.fetch(gid);
  EXPECT_EQ(rolled.status, FetchStatus::stale);
  ASSERT_TRUE(rolled.key.has_value());
  EXPECT_EQ(*rolled.key, current_key);
  EXPECT_GT(client.stats().freshness_rejections, 0u);
  EXPECT_FALSE(client.is_forked(gid));

  // A BRAND-NEW client has no high-water mark — the admin's commit-time
  // gossip is what tells it the served view is old. No key, but no lie.
  auto newcomer = make_client("u1", "u1", malicious);
  auto fresh = newcomer.fetch(gid);
  EXPECT_EQ(fresh.status, FetchStatus::stale);
  EXPECT_FALSE(fresh.key.has_value());
  EXPECT_GT(newcomer.stats().freshness_rejections, 0u);

  // The admin's own re-sync refuses the rolled-back view outright: the
  // enclave's confirmed floor cannot be rolled back with the cloud.
  EXPECT_THROW(admin.sync_from_cloud(gid), TransientError);
  EXPECT_GT(admin.stats().rollback_rejections, 0u);

  // Healing restores everyone without restarts or re-provisioning.
  malicious.serve_live();
  auto healed = client.fetch(gid);
  ASSERT_EQ(healed.status, FetchStatus::ok);
  EXPECT_EQ(*healed.key, current_key);
  EXPECT_EQ(newcomer.fetch(gid).status, FetchStatus::ok);
}

TEST_F(ByzantineFixture, WithheldLogTailFailsTheAnchoredAudit) {
  // The committed index stays LIVE while the op-log is served from before
  // the add: chain-valid, signature-valid, merely missing the tail the
  // index's log_head anchors.
  auto old_log = malicious.snapshot_value(0, ibbe::system::oplog_path(gid));
  ASSERT_TRUE(old_log.has_value());
  malicious.override_path("", ibbe::system::oplog_path(gid), old_log->value);

  auto audit = admin.audit_group_log(gid);
  EXPECT_FALSE(audit.ok);
  EXPECT_NE(audit.failure.find("truncated"), std::string::npos)
      << audit.failure;

  // Clients do not consume the log; the live index still serves them.
  auto client = make_client("u9", "u9", malicious);
  EXPECT_EQ(client.fetch(gid).status, FetchStatus::ok);
}

TEST_F(ByzantineFixture, SelectiveStaleIndexIsRejectedByFreshness) {
  auto client = make_client("u0", "u0", malicious);
  auto live = client.fetch(gid);
  ASSERT_EQ(live.status, FetchStatus::ok);
  const Bytes current_key = *live.key;

  // Equivocation: ONLY the index file is served old (counter 1); partitions,
  // op-log and directory versions stay live.
  auto old_index = malicious.snapshot_value(0, ibbe::system::index_path(gid));
  ASSERT_TRUE(old_index.has_value());
  malicious.override_path("", ibbe::system::index_path(gid), old_index->value);

  auto result = client.fetch(gid);
  EXPECT_EQ(result.status, FetchStatus::stale);
  ASSERT_TRUE(result.key.has_value());
  EXPECT_EQ(*result.key, current_key);  // never the rolled-back epoch's view

  // A newcomer is saved by gossip again — admin announced counter 2.
  auto newcomer = make_client("u1", "u1", malicious);
  auto fresh = newcomer.fetch(gid);
  EXPECT_EQ(fresh.status, FetchStatus::stale);
  EXPECT_FALSE(fresh.key.has_value());

  malicious.clear_overrides("");
  EXPECT_EQ(client.fetch(gid).status, FetchStatus::ok);
}

// ------------------------------------------------------------ the fork test

TEST(ByzantineFork, ForkedClientsDetectDivergenceWithinOnePollRound) {
  // Construct a REAL fork: two admins race one index CAS, so two
  // enclave-attested freshness tokens share counter c+1 with divergent log
  // heads. The loser's payload never committed — but it is correctly signed
  // all the way down, which makes it perfect equivocation material for a
  // Byzantine cloud.
  ibbe::sgx::EnclavePlatform platform("fork-box");
  ibbe::enclave::IbbeEnclave enclave(platform, 8);
  CloudStore inner;
  MaliciousStore malicious(inner, MaliciousPlan{});
  FaultInjectingStore faulty(malicious, FaultPlan{});  // for the write hook
  ibbe::crypto::Drbg rng(31);
  auto key_a = ibbe::pki::EcdsaKeyPair::generate(rng);
  auto key_b = ibbe::pki::EcdsaKeyPair::generate(rng);

  auto config_for = [&](std::uint32_t nonce, const std::string& name,
                        const ibbe::pki::EcdsaKeyPair& peer) {
    AdminConfig config;
    config.partition_size = 3;
    config.multi_admin = true;
    config.admin_nonce = nonce;
    config.admin_name = name;
    config.log_operations = true;
    config.retry = RetryPolicy{}.without_delays();
    config.peer_verification_keys = {ibbe::ec::p256_to_bytes(peer.public_key())};
    return config;
  };
  AdminApi admin_a(enclave, faulty, key_a, config_for(1, "A", key_b), 8);
  AdminApi admin_b(enclave, faulty, key_b, config_for(2, "B", key_a), 9);

  const GroupId gid = "g";
  const std::string index = ibbe::system::index_path(gid);
  admin_a.create_group(gid, make_users(4));  // counter 1 committed
  admin_b.sync_from_cloud(gid);

  // Pause B at its index CAS; A commits a full add in that window. Both
  // attested counter 2 — A's confirmed with head h_A, B's rejected with
  // head h_B.
  bool fired = false;
  faulty.set_write_hook([&](const std::string& path) {
    if (fired || path != index) return;
    fired = true;
    admin_a.add_user(gid, "from-a");  // auto-captures the h_A generation
  });
  admin_b.add_user(gid, "from-b");  // retries and commits counter 3 after
  ASSERT_TRUE(fired);
  auto rejected = malicious.rejected_writes(index);
  ASSERT_EQ(rejected.size(), 1u) << "B's losing CAS payload not captured";
  const std::size_t fork_gen = 1;  // generation captured at A's mid-hook add
  ASSERT_GE(malicious.generation_count(), 3u);

  // The adversary suppresses the admins' commit announcements (models
  // clients racing ahead of gossip propagation) and serves each client one
  // side of the counter-2 fork: X gets B's rejected world, Y gets A's.
  for (const auto& path : inner.list(ibbe::system::gossip_dir(gid))) {
    (void)inner.erase(path);
  }
  malicious.pin_view("X", fork_gen);
  malicious.override_path("X", index, rejected[0]);
  malicious.pin_view("Y", fork_gen);

  std::vector<ibbe::ec::P256Point> admin_keys = {key_a.public_key(),
                                                 key_b.public_key()};
  auto make_client = [&](const Identity& id, const std::string& name) {
    ClientApi client(malicious.view(name), enclave.public_key(),
                     enclave.ecall_extract_user_key(id), admin_keys);
    client.set_retry_policy(RetryPolicy{}.without_delays());
    client.enable_freshness(enclave.freshness_verification_key());
    client.enable_gossip(name);
    return client;
  };
  auto x = make_client("u0", "X");
  auto y = make_client("u1", "Y");

  // X has nothing to compare against: its side of the fork verifies clean.
  // Its observation lands on the gossip channel.
  auto x_first = x.fetch(gid);
  ASSERT_EQ(x_first.status, FetchStatus::ok);

  // Y's side also verifies clean — but X's observation carries the SAME
  // counter with a DIFFERENT head. One poll round, fork proven.
  auto y_first = y.fetch(gid);
  EXPECT_EQ(y_first.status, FetchStatus::forked);
  EXPECT_TRUE(y.is_forked(gid));
  EXPECT_EQ(y.stats().forks_detected, 1u);

  // Y's proof-of-divergence announcement closes the loop: X detects on ITS
  // next round (here via the change-watch path), without ever accepting a
  // second unverified view. The verdict is sticky.
  EXPECT_EQ(x.wait_for_update(gid, std::chrono::milliseconds(200)),
            std::nullopt);
  EXPECT_TRUE(x.is_forked(gid));
  EXPECT_EQ(x.fetch(gid).status, FetchStatus::forked);
  // Degraded mode: the last VERIFIED key remains available read-only.
  EXPECT_TRUE(x.fetch(gid).key.has_value());

  // A client on the HEALED live view (counter 3) is past the forked counter
  // and accepts normally: detection never poisons honest state.
  auto z = make_client("u2", "Z");
  EXPECT_EQ(z.fetch(gid).status, FetchStatus::ok);
}

// ------------------------------------------------ splice-across-fork audit

TEST(OpLogFork, TwoValidChainsSharingAPrefixAreSplitByTheAnchor) {
  ibbe::crypto::Drbg rng(77);
  auto key = ibbe::pki::EcdsaKeyPair::generate(rng);
  MembershipLog base;
  base.append(LogOp::create_group, "members=2", "solo", key);
  base.append(LogOp::add_user, "x", "solo", key);

  // The server forks history after the shared prefix: one chain adds alice,
  // the "other timeline" adds mallory. BOTH are internally perfect.
  auto fork_a = MembershipLog::from_bytes(base.to_bytes());
  auto fork_b = MembershipLog::from_bytes(base.to_bytes());
  fork_a.append(LogOp::add_user, "alice", "solo", key);
  fork_b.append(LogOp::add_user, "mallory", "solo", key);

  std::vector<ibbe::ec::P256Point> keys = {key.public_key()};
  EXPECT_TRUE(fork_a.audit(keys).ok);
  EXPECT_TRUE(fork_b.audit(keys).ok);  // chain integrity cannot tell them apart

  // The committed index anchors exactly one timeline; the enclave freshness
  // token binds that anchor to a monotonic counter, so the cloud cannot
  // re-anchor an old index either. The other timeline must be rejected.
  const auto anchor = fork_a.entries().back().hash;
  EXPECT_TRUE(fork_a.audit(keys, &anchor).ok);
  auto verdict = fork_b.audit(keys, &anchor);
  EXPECT_FALSE(verdict.ok);
  EXPECT_NE(verdict.failure.find("truncated"), std::string::npos)
      << verdict.failure;
}

// ------------------------------------------------------- full Byzantine stack

TEST(ByzantineScheme, RandomAttackScheduleCostsRetriesNeverCorrectness) {
  FaultPlan faults;
  faults.seed = 1234;
  faults.put_error_rate = 0.02;
  faults.get_error_rate = 0.02;
  faults.crash_rate = 0.02;  // composed with crash points and recovery
  MaliciousPlan malice;
  malice.seed = 4321;
  malice.rollback_rate = 0.05;
  malice.withhold_rate = 0.05;
  malice.equivocate_rate = 0.05;
  malice.max_window = 4;
  ibbe::system::IbbeSgxScheme scheme(4, /*seed=*/11, faults, malice);
  EXPECT_NE(scheme.name().find("+byzantine"), std::string::npos);

  auto users = make_users(8);
  scheme.create_group(std::vector<Identity>(users.begin(), users.begin() + 6));
  scheme.add_user(users[6]);
  scheme.remove_user(users[1]);
  scheme.add_user(users[7]);
  scheme.remove_user(users[4]);

  // The oracle is the fault-free one: every member derives the SAME key,
  // every outsider derives none, under an actively lying store.
  std::set<Identity> members = {users[0], users[2], users[3],
                                users[5], users[6], users[7]};
  std::optional<Bytes> reference;
  for (const auto& u : users) {
    auto key = scheme.user_decrypt(u);
    if (members.count(u)) {
      ASSERT_TRUE(key.has_value()) << u << " locked out";
      if (!reference) reference = key;
      EXPECT_EQ(*key, *reference) << u << " diverged";
    } else {
      EXPECT_FALSE(key.has_value()) << u << " not revoked";
    }
  }
  // The schedule genuinely attacked this run (replayable from the seeds).
  EXPECT_GT(scheme.malicious_store()->malicious_stats().generations, 0u);
}

}  // namespace
