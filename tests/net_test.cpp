// Networked cloud front-end (src/net): protocol codecs, session crypto, the
// socket server/RemoteStore stack over real loopback TCP, and the wire-level
// fault injector. Structure:
//
//   1. unit tests for the frame codecs and the per-session AEAD cipher;
//   2. end-to-end RPC semantics against a live NetServer (every CloudStore
//      op, long-poll wake and timeout, typed store-fault forwarding);
//   3. robustness: overload shedding (handshake and slot level),
//      reconnect-with-resume and mutation dedup across a mid-mutation
//      disconnect, torn/duplicated/corrupted frames, drain-on-shutdown;
//   4. RetryPolicy interaction: server-side poll timeouts consume no retry
//      attempts; jitter sequences replay bit-identically from a seed;
//   5. a concurrent-client hammer (TSan coverage for the server's session
//      machinery and the thread-safe fault schedules).
//
// Everything runs under tight deadlines: the acceptance criterion for this
// layer is "completes, returns typed degraded status, or throws a retryable
// FaultKind" — never a hang.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include "cloud/fault.h"
#include "cloud/store.h"
#include "ec/curves.h"
#include "field/fields.h"
#include "net/protocol.h"
#include "net/remote_store.h"
#include "net/server.h"
#include "net/transport.h"
#include "util/bytes.h"
#include "util/errors.h"
#include "util/retry.h"

namespace {

using ibbe::cloud::CloudStore;
using ibbe::net::FaultInjectingTransport;
using ibbe::net::NetFaultPlan;
using ibbe::net::NetFaultSchedule;
using ibbe::net::NetServer;
using ibbe::net::NetServerConfig;
using ibbe::net::RemoteStore;
using ibbe::net::RemoteStoreConfig;
using ibbe::net::Request;
using ibbe::net::Response;
using ibbe::net::SessionCipher;
using ibbe::net::Status;
using ibbe::util::Bytes;
using ibbe::util::IntegrityError;
using ibbe::util::RetryPolicy;
using ibbe::util::TransientError;

Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }

// ------------------------------------------------- hand-rolled wire client
//
// A minimal protocol client built from the public primitives, for tests
// that need byte-level control the RemoteStore deliberately hides: replaying
// a captured ClientHello, aborting a connection mid-handshake with an RST,
// flooding the accept loop with mute connections.

ibbe::field::P256Fr scalar_from(std::uint64_t seed) {
  Bytes be(32, 0);
  for (int i = 0; i < 8; ++i) {
    be[31 - i] = static_cast<std::uint8_t>(seed >> (8 * i));
  }
  return ibbe::field::P256Fr::from_be_bytes_reduce(be);
}

Bytes seq_frame(std::uint64_t seq, const Bytes& payload) {
  ibbe::util::ByteWriter w;
  w.u64(seq);
  w.raw(payload);
  return w.take();
}

struct ManualSession {
  std::unique_ptr<ibbe::net::SocketTransport> transport;
  ibbe::net::ServerHello reply;
  ibbe::net::SessionKeys keys;
  Bytes hello_frame;  // the seq-0 frame body as sent — replayable verbatim
};

/// Connects and handshakes by hand. session_id == 0 = fresh session; else a
/// resume attempt proving ownership of `resume_secret`.
ManualSession manual_handshake(std::uint16_t port, std::uint64_t eph_seed,
                               std::uint64_t session_id = 0,
                               const Bytes& resume_secret = {}) {
  auto eph = scalar_from(eph_seed);
  ibbe::net::ClientHello hello;
  hello.eph_pub =
      ibbe::ec::p256_to_bytes(ibbe::ec::P256Point::generator().mul(eph));
  if (session_id != 0) {
    hello.session_id = session_id;
    hello.resume_proof =
        ibbe::net::make_resume_proof(resume_secret, hello.eph_pub);
  }
  ManualSession s;
  s.transport = ibbe::net::SocketTransport::connect_loopback(
      port, std::chrono::milliseconds(1000));
  s.hello_frame = seq_frame(0, hello.to_bytes());
  s.transport->send_frame(s.hello_frame);
  auto frame = s.transport->recv_frame(std::chrono::milliseconds(1000));
  if (!frame) throw std::runtime_error("manual handshake: no ServerHello");
  ibbe::util::ByteReader r(*frame);
  if (r.u64() != 0) throw std::runtime_error("manual handshake: bad seq");
  s.reply = ibbe::net::ServerHello::from_bytes(r.raw(r.remaining()));
  if (s.reply.outcome != ibbe::net::ServerHello::busy) {
    auto server_eph = ibbe::ec::p256_from_bytes(s.reply.eph_pub);
    s.keys = ibbe::net::derive_session_keys(server_eph.mul(eph),
                                            hello.eph_pub, s.reply.eph_pub);
  }
  return s;
}

/// One sealed request/response round trip on a manual session.
Response manual_request(ManualSession& s, std::uint64_t seq,
                        const Request& req) {
  SessionCipher tx(s.keys.client_to_server, 'c');
  SessionCipher rx(s.keys.server_to_client, 's');
  s.transport->send_frame(seq_frame(seq, tx.seal(seq, req.to_bytes())));
  auto frame = s.transport->recv_frame(std::chrono::milliseconds(1000));
  if (!frame) throw std::runtime_error("manual request: no response");
  ibbe::util::ByteReader r(*frame);
  auto rseq = r.u64();
  auto opened = rx.open(rseq, r.raw(r.remaining()));
  if (!opened) throw std::runtime_error("manual request: AEAD failure");
  return Response::from_bytes(*opened);
}

/// Plain connected TCP socket (no protocol traffic), -1 on failure.
int raw_connect(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void raw_send(int fd, const Bytes& body) {
  Bytes wire(4 + body.size());
  auto len = static_cast<std::uint32_t>(body.size());
  wire[0] = static_cast<std::uint8_t>(len >> 24);
  wire[1] = static_cast<std::uint8_t>(len >> 16);
  wire[2] = static_cast<std::uint8_t>(len >> 8);
  wire[3] = static_cast<std::uint8_t>(len);
  std::memcpy(wire.data() + 4, body.data(), body.size());
  (void)::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL);
}

/// Closes with SO_LINGER{1,0}: an RST, not an orderly FIN — the server's
/// next send or recv on this connection fails immediately.
void rst_close(int fd) {
  linger lg{1, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
  ::close(fd);
}

RemoteStoreConfig client_config(const NetServer& server) {
  RemoteStoreConfig cfg;
  cfg.port = server.port();
  cfg.server_identity = server.identity_key();
  cfg.retry = RetryPolicy{}.without_delays();
  cfg.retry.max_attempts = 8;
  cfg.request_deadline = std::chrono::milliseconds(500);
  return cfg;
}

// ------------------------------------------------------------------ codecs

TEST(NetProtocol, RequestRoundTrip) {
  Request q;
  q.op = ibbe::net::Op::put_cas;
  q.id = 42;
  q.path = "groups/g/index";
  q.value = bytes_of("payload");
  q.expected = 7;
  auto decoded = Request::from_bytes(q.to_bytes());
  EXPECT_EQ(decoded.op, q.op);
  EXPECT_EQ(decoded.id, q.id);
  EXPECT_EQ(decoded.path, q.path);
  EXPECT_EQ(decoded.value, q.value);
  EXPECT_EQ(decoded.expected, q.expected);
}

TEST(NetProtocol, ResponseRoundTrip) {
  Response p;
  p.status = Status::conflict;
  p.id = 9;
  p.value = bytes_of("v");
  p.version = 31;
  p.flag = true;
  p.names = {"a/b", "a/c"};
  p.stats.puts = 5;
  p.stats.bytes_downloaded = 1234;
  p.bytes = 99;
  p.error = "detail";
  auto decoded = Response::from_bytes(p.to_bytes());
  EXPECT_EQ(decoded.status, p.status);
  EXPECT_EQ(decoded.id, p.id);
  EXPECT_EQ(decoded.value, p.value);
  EXPECT_EQ(decoded.version, p.version);
  EXPECT_EQ(decoded.flag, p.flag);
  EXPECT_EQ(decoded.names, p.names);
  EXPECT_EQ(decoded.stats.puts, 5u);
  EXPECT_EQ(decoded.stats.bytes_downloaded, 1234u);
  EXPECT_EQ(decoded.bytes, 99u);
  EXPECT_EQ(decoded.error, "detail");
}

TEST(NetProtocol, SessionCipherSealsPerSequence) {
  Bytes key(32, 0x42);
  SessionCipher tx(key, 'c');
  SessionCipher rx(key, 'c');
  auto sealed = tx.seal(1, bytes_of("hello"));
  auto opened = rx.open(1, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, bytes_of("hello"));
  // The sequence number is authenticated: the same frame under a different
  // seq must not open (replay onto another slot fails).
  EXPECT_FALSE(rx.open(2, sealed).has_value());
  // And a flipped bit anywhere fails the tag.
  auto tampered = sealed;
  tampered[tampered.size() / 2] ^= 1;
  EXPECT_FALSE(rx.open(1, tampered).has_value());
}

TEST(NetProtocol, DirectionsUseDistinctKeystreams) {
  Bytes key(32, 0x17);
  SessionCipher c2s(key, 'c');
  SessionCipher s2c(key, 's');
  auto sealed = c2s.seal(1, bytes_of("x"));
  EXPECT_FALSE(s2c.open(1, sealed).has_value());
}

// ------------------------------------------------------- end-to-end basics

TEST(NetEndToEnd, FullCloudStoreSurfaceOverLoopback) {
  CloudStore backing;
  NetServer server(backing);
  RemoteStore remote(client_config(server));

  auto v1 = remote.put("a/x", bytes_of("one"));
  EXPECT_GT(v1, 0u);
  EXPECT_EQ(remote.get("a/x"), bytes_of("one"));
  EXPECT_FALSE(remote.get("a/missing").has_value());

  auto vv = remote.get_versioned("a/x");
  ASSERT_TRUE(vv.has_value());
  EXPECT_EQ(vv->value, bytes_of("one"));
  EXPECT_EQ(vv->version, v1);
  EXPECT_EQ(remote.file_version("a/x"), v1);

  auto v2 = remote.put_cas("a/x", bytes_of("two"), v1);
  ASSERT_TRUE(v2.has_value());
  EXPECT_FALSE(remote.put_cas("a/x", bytes_of("lost"), v1).has_value());
  EXPECT_EQ(remote.get("a/x"), bytes_of("two"));

  remote.put("a/y", bytes_of("Y"));
  EXPECT_EQ(remote.list("a/"), (std::vector<std::string>{"a/x", "a/y"}));
  EXPECT_GT(remote.dir_version("a"), 0u);

  EXPECT_TRUE(remote.erase("a/y"));
  EXPECT_FALSE(remote.erase("a/y"));

  auto stats = remote.stats();
  EXPECT_GT(stats.puts, 0u);
  EXPECT_EQ(remote.stored_bytes(), backing.stored_bytes());
}

TEST(NetEndToEnd, LongPollWakesOnRemoteWrite) {
  CloudStore backing;
  NetServer server(backing);
  RemoteStore poller(client_config(server));
  RemoteStore writer(client_config(server));

  auto since = poller.dir_version("g");
  std::optional<std::uint64_t> woke;
  std::thread t([&] {
    woke = poller.long_poll("g", since, std::chrono::milliseconds(3000));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  writer.put("g/file", bytes_of("news"));
  t.join();
  ASSERT_TRUE(woke.has_value());
  EXPECT_GT(*woke, since);
}

TEST(NetEndToEnd, ServerSidePollTimeoutIsSuccessNotFault) {
  CloudStore backing;
  NetServer server(backing);
  auto cfg = client_config(server);
  // A retry budget of ONE: if the poll timeout consumed a retry attempt (or
  // surfaced as a fault), this would throw.
  cfg.retry.max_attempts = 1;
  RemoteStore remote(cfg);
  auto since = remote.dir_version("quiet");
  auto woke = remote.long_poll("quiet", since, std::chrono::milliseconds(80));
  EXPECT_FALSE(woke.has_value());
  EXPECT_EQ(remote.wire_retries(), 0u);
}

TEST(NetEndToEnd, StoreFaultsForwardTyped) {
  CloudStore backing;
  ibbe::cloud::FaultPlan plan;  // all rates zero; we arm crashes explicitly
  ibbe::cloud::FaultInjectingStore faulty(backing, plan);
  NetServer server(faulty);
  auto cfg = client_config(server);
  RemoteStore remote(cfg);

  remote.put("p/x", bytes_of("ok"));
  faulty.arm_crash_after(1);
  // A store-side crash crosses the wire as Status::error_crash and re-throws
  // as CrashError — never absorbed by the wire retry loop.
  EXPECT_THROW(remote.put("p/x", bytes_of("boom")), ibbe::util::CrashError);
  // The wire itself was healthy: no wire retries were consumed by the fault.
  EXPECT_EQ(remote.wire_retries(), 0u);
  // The connection survives a forwarded fault.
  EXPECT_EQ(remote.get("p/x"), bytes_of("ok"));
}

TEST(NetEndToEnd, PinnedIdentityMismatchIsIntegrity) {
  CloudStore backing;
  NetServer server(backing);
  NetServerConfig other_cfg;
  other_cfg.identity_seed = 999;
  CloudStore other_backing;
  NetServer other(other_backing, other_cfg);

  auto cfg = client_config(server);
  cfg.server_identity = other.identity_key();  // pin the WRONG key
  RemoteStore remote(cfg);
  EXPECT_THROW(remote.get("x"), IntegrityError);
}

// ------------------------------------------------------------- robustness

TEST(NetRobustness, HandshakeOverloadShedsBusy) {
  CloudStore backing;
  NetServerConfig cfg;
  cfg.max_sessions = 2;
  NetServer server(backing, cfg);

  RemoteStore a(client_config(server));
  RemoteStore b(client_config(server));
  a.put("k", bytes_of("a"));
  b.put("k", bytes_of("b"));

  auto ccfg = client_config(server);
  ccfg.retry.max_attempts = 2;
  RemoteStore c(ccfg);
  // Both live slots are held; the third client is shed with a signed busy
  // ServerHello every attempt and surfaces a typed transient — not a hang.
  EXPECT_THROW(c.put("k", bytes_of("c")), TransientError);
  EXPECT_GE(server.stats().busy_handshakes, 2u);

  // Capacity freed -> the same client object succeeds on its next call.
  a.disconnect();
  b.disconnect();
  std::this_thread::sleep_for(std::chrono::milliseconds(250));  // reap slices
  const auto version = c.put("k", bytes_of("c"));
  EXPECT_EQ(version, backing.file_version("k"));
}

TEST(NetRobustness, RequestSlotExhaustionShedsBusyNotHangs) {
  CloudStore backing;
  NetServerConfig cfg;
  cfg.request_slots = 0;  // every request is shed
  NetServer server(backing, cfg);
  auto ccfg = client_config(server);
  ccfg.retry.max_attempts = 3;
  RemoteStore remote(ccfg);
  try {
    remote.put("x", bytes_of("v"));
    FAIL() << "expected a typed busy/transient failure";
  } catch (const TransientError& e) {
    EXPECT_NE(std::string(e.what()).find("busy"), std::string::npos);
  }
  EXPECT_GE(server.stats().busy_requests, 3u);
  // Its retry attempts were consumed by explicit sheds, not timeouts.
  EXPECT_EQ(remote.wire_retries(), 2u);
}

TEST(NetRobustness, PollSlotExhaustionShedsBusy) {
  CloudStore backing;
  NetServerConfig cfg;
  cfg.poll_slots = 0;
  NetServer server(backing, cfg);
  auto ccfg = client_config(server);
  ccfg.retry.max_attempts = 2;
  RemoteStore remote(ccfg);
  remote.put("d/x", bytes_of("v"));  // plain requests still fine
  EXPECT_THROW(
      (void)remote.long_poll("d", 0, std::chrono::milliseconds(50)),
      TransientError);
  EXPECT_GE(server.stats().busy_polls, 2u);
}

TEST(NetRobustness, ReconnectResumesSessionAndDedupsMutation) {
  CloudStore backing;
  NetServer server(backing);
  auto cfg = client_config(server);
  auto schedule = std::make_shared<NetFaultSchedule>(NetFaultPlan{});
  cfg.faults = schedule;
  RemoteStore remote(cfg);

  auto v1 = remote.put("g/file", bytes_of("first"));

  // The next frame the client sends is DELIVERED, then the connection dies:
  // the server applies the put_cas but the response is lost — the classic
  // mid-mutation ambiguity. The client must reconnect, resume its session,
  // resend the same request id, and be answered from the dedup cache
  // WITHOUT the mutation re-executing.
  schedule->arm_disconnect_after_send(1);
  auto v2 = remote.put_cas("g/file", bytes_of("second"), v1);
  ASSERT_TRUE(v2.has_value());
  EXPECT_EQ(remote.get("g/file"), bytes_of("second"));
  EXPECT_EQ(remote.resumes(), 1u);
  auto stats = server.stats();
  EXPECT_EQ(stats.sessions_resumed, 1u);
  EXPECT_GE(stats.dedup_hits, 1u);
  // Dedup means exactly ONE server-side put_cas for this logical call: the
  // backing store saw 2 puts total (the first put + the one CAS).
  EXPECT_EQ(backing.stats().puts, 2u);
}

TEST(NetRobustness, ArmedDisconnectOnEraseDedups) {
  CloudStore backing;
  NetServer server(backing);
  auto cfg = client_config(server);
  auto schedule = std::make_shared<NetFaultSchedule>(NetFaultPlan{});
  cfg.faults = schedule;
  RemoteStore remote(cfg);
  remote.put("e/x", bytes_of("v"));
  schedule->arm_disconnect_after_send(1);
  // Without dedup the retried erase would find nothing and report false.
  EXPECT_TRUE(remote.erase("e/x"));
  EXPECT_GE(remote.resumes(), 1u);
}

TEST(NetRobustness, DroppedResponseIsRetriedToCompletion) {
  CloudStore backing;
  NetServer server(backing);
  auto cfg = client_config(server);
  cfg.request_deadline = std::chrono::milliseconds(200);
  auto schedule = std::make_shared<NetFaultSchedule>(NetFaultPlan{});
  cfg.faults = schedule;
  RemoteStore remote(cfg);
  remote.put("r/x", bytes_of("v0"));
  schedule->arm_drop_next_recv();  // the response evaporates once
  EXPECT_EQ(remote.get("r/x"), bytes_of("v0"));
  EXPECT_GE(remote.wire_retries(), 1u);
}

TEST(NetRobustness, CorruptedFrameIsIntegrityAndNeverRetried) {
  CloudStore backing;
  NetServer server(backing);
  auto cfg = client_config(server);
  auto schedule = std::make_shared<NetFaultSchedule>(NetFaultPlan{});
  cfg.faults = schedule;
  RemoteStore remote(cfg);
  remote.put("c/x", bytes_of("v"));
  schedule->arm_corrupt_next_recv();
  EXPECT_THROW(remote.get("c/x"), IntegrityError);
  // Integrity faults are NEVER absorbed by the wire retry loop.
  EXPECT_EQ(remote.wire_retries(), 0u);
  // The channel is torn down; a fresh call re-handshakes and succeeds.
  EXPECT_EQ(remote.get("c/x"), bytes_of("v"));
}

TEST(NetRobustness, TornFrameIsTransientAndRecovered) {
  CloudStore backing;
  NetServer server(backing);
  auto cfg = client_config(server);
  NetFaultPlan plan;
  plan.seed = 5;
  plan.torn_frame_rate = 1.0;  // every send tears...
  auto schedule = std::make_shared<NetFaultSchedule>(plan);
  schedule->set_enabled(false);  // ...once we enable it
  cfg.faults = schedule;
  RemoteStore remote(cfg);
  remote.put("t/x", bytes_of("v"));
  schedule->set_enabled(true);
  // Every attempt tears, so the budget exhausts with a TRANSIENT fault —
  // truncation is indistinguishable from loss, and it must stay retryable.
  EXPECT_THROW(remote.get("t/x"), TransientError);
  schedule->set_enabled(false);
  EXPECT_EQ(remote.get("t/x"), bytes_of("v"));
  EXPECT_GT(schedule->stats().torn_frames, 0u);
}

TEST(NetRobustness, DuplicatedDeliveryIsDiscardedBySequenceCheck) {
  CloudStore backing;
  NetServer server(backing);
  auto cfg = client_config(server);
  NetFaultPlan plan;
  plan.seed = 11;
  plan.send_dup_rate = 1.0;  // every request frame hits the server twice
  plan.recv_dup_rate = 1.0;  // every response is delivered to the client twice
  cfg.faults = std::make_shared<NetFaultSchedule>(plan);
  RemoteStore remote(cfg);
  auto v1 = remote.put("d/x", bytes_of("one"));
  auto v2 = remote.put_cas("d/x", bytes_of("two"), v1);
  ASSERT_TRUE(v2.has_value());
  EXPECT_EQ(remote.get("d/x"), bytes_of("two"));
  // The duplicated CAS frame did NOT execute twice (it would conflict).
  EXPECT_GT(server.stats().dropped_dup_frames, 0u);
}

TEST(NetRobustness, HandshakeFailureAfterAdmissionReleasesTheSlot) {
  CloudStore backing;
  NetServerConfig scfg;
  scfg.max_sessions = 1;  // a single leaked admission slot = permanent busy
  NetServer server(backing, scfg);

  // Valid hello, then an immediate RST: whenever the RST beats the server's
  // ServerHello send, the handshake throws AFTER the admission slot was
  // taken — the exact leak path. Every iteration must release its slot no
  // matter where on that path the connection died.
  for (std::uint64_t i = 0; i < 25; ++i) {
    ibbe::net::ClientHello hello;
    hello.eph_pub = ibbe::ec::p256_to_bytes(
        ibbe::ec::P256Point::generator().mul(scalar_from(i + 2)));
    int fd = raw_connect(server.port());
    ASSERT_GE(fd, 0);
    raw_send(fd, seq_frame(0, hello.to_bytes()));
    rst_close(fd);
  }

  // The server must drain back to fully idle within a bounded time...
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.stats().live_sessions != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(server.stats().live_sessions, 0u);
  // ...and with max_sessions == 1, a real client only gets in if every one
  // of the aborted handshakes gave its slot back.
  RemoteStore remote(client_config(server));
  remote.put("leak/x", bytes_of("v"));
  EXPECT_EQ(remote.get("leak/x"), bytes_of("v"));
}

TEST(NetRobustness, ReplayedResumeHelloCannotLockOutTheRealClient) {
  CloudStore backing;
  NetServer server(backing);

  // A fresh session with one authenticated request (this also proves the
  // hand-rolled handshake agrees with the server's key schedule).
  auto s1 = manual_handshake(server.port(), 101);
  ASSERT_EQ(s1.reply.outcome, ibbe::net::ServerHello::accepted);
  Request put;
  put.op = ibbe::net::Op::put;
  put.id = 1;
  put.path = "rp/x";
  put.value = bytes_of("v");
  ASSERT_EQ(manual_request(s1, 1, put).status, Status::ok);
  const auto sid = s1.reply.session_id;
  const Bytes secret1 = s1.keys.resume_secret;
  s1.transport->close();

  // Resume, but die before sending any authenticated frame — so the new
  // resume secret stays UNCOMMITTED server-side. The hello is exactly what
  // an on-path attacker could have captured.
  auto s2 = manual_handshake(server.port(), 202, sid, secret1);
  ASSERT_EQ(s2.reply.outcome, ibbe::net::ServerHello::resumed);
  const Bytes secret2 = s2.keys.resume_secret;  // the real client's secret
  const Bytes captured = s2.hello_frame;
  s2.transport->close();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));  // re-park

  // The attacker replays the captured hello verbatim. The server cannot
  // tell it apart and answers it as a resume — but since the attacker can
  // never authenticate a frame (it lacks the ECDH key), the committed
  // secret must NOT rotate away from the real client.
  {
    auto t = ibbe::net::SocketTransport::connect_loopback(
        server.port(), std::chrono::milliseconds(1000));
    t->send_frame(captured);
    auto got = t->recv_frame(std::chrono::milliseconds(1000));
    ASSERT_TRUE(got.has_value());
    t->close();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(150));  // re-park

  // The real client resumes with ITS secret: the replay cost it nothing —
  // same session, dedup state intact, not a degraded fresh session.
  auto s3 = manual_handshake(server.port(), 303, sid, secret2);
  EXPECT_EQ(s3.reply.outcome, ibbe::net::ServerHello::resumed);
  Request get;
  get.op = ibbe::net::Op::get;
  get.id = 2;
  get.path = "rp/x";
  auto resp = manual_request(s3, 1, get);
  EXPECT_EQ(resp.status, Status::ok);
  EXPECT_EQ(resp.value, bytes_of("v"));
  EXPECT_EQ(server.stats().resume_misses, 0u);
  s3.transport->close();
}

TEST(NetRobustness, ConnectionFloodIsShedBeforeSpawningThreads) {
  CloudStore backing;
  NetServerConfig scfg;
  scfg.max_connections = 4;
  scfg.handshake_timeout = std::chrono::milliseconds(200);
  NetServer server(backing, scfg);

  // A flood of mute connections: max_sessions never bounds these (nothing
  // is admitted), so without the pre-admission cap each would pin a thread
  // for the full handshake timeout.
  std::vector<int> fds;
  for (int i = 0; i < 12; ++i) {
    int fd = raw_connect(server.port());
    ASSERT_GE(fd, 0);
    fds.push_back(fd);
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (server.stats().shed_connections < 8 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  auto st = server.stats();
  EXPECT_GE(st.shed_connections, 8u);  // everything beyond the cap: no thread
  EXPECT_LE(st.live_connections, 4u);
  for (int fd : fds) ::close(fd);

  // The held slots free as the closed connections are noticed; a real
  // client then gets in and completes normally.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  RemoteStore remote(client_config(server));
  const auto version = remote.put("f/x", bytes_of("v"));
  EXPECT_EQ(version, backing.file_version("f/x"));
}

TEST(NetEndToEnd, OversizedRequestFailsTypedWithoutTouchingTheWire) {
  CloudStore backing;
  NetServer server(backing);
  RemoteStore remote(client_config(server));
  // Serialized, sealed and framed, this can never fit max_frame_bytes: it
  // must fail up front as a contract violation — NOT leak a bare
  // std::length_error from inside the transport, and NOT burn transient
  // retries on an error no retry can fix.
  Bytes huge(ibbe::net::max_frame_bytes, 0x5a);
  EXPECT_THROW(remote.put("big/x", std::move(huge)), std::invalid_argument);
  EXPECT_EQ(remote.wire_retries(), 0u);
  // The store (and the connection) remain fully usable afterwards.
  remote.put("big/ok", bytes_of("v"));
  EXPECT_EQ(remote.get("big/ok"), bytes_of("v"));
}

TEST(NetRobustness, DrainOnShutdownNeverHangs) {
  CloudStore backing;
  auto server = std::make_unique<NetServer>(backing);
  auto cfg = client_config(*server);
  RemoteStore remote(cfg);
  remote.put("s/x", bytes_of("v"));

  // Park a long-poll on the server, then stop() while it is outstanding:
  // the server must answer/drain and join without hanging.
  std::thread poller([&] {
    try {
      (void)remote.long_poll("quiet", 0, std::chrono::milliseconds(5000));
    } catch (const ibbe::util::FaultError&) {
      // the connection dying at shutdown is an acceptable typed outcome
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  auto begin = std::chrono::steady_clock::now();
  server->stop();
  auto stop_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - begin);
  EXPECT_LT(stop_ms.count(), 2000);
  poller.join();

  // After shutdown a client gets a typed transient, not a hang.
  auto cfg2 = client_config(*server);
  cfg2.retry.max_attempts = 2;
  RemoteStore late(cfg2);
  EXPECT_THROW(late.get("s/x"), TransientError);
}

// -------------------------------------------------- RetryPolicy interplay

TEST(NetRetryPolicy, JitterSequenceReplaysBitIdenticallyFromSeed) {
  RetryPolicy a, b;
  a.seed = b.seed = 0xfeedface;
  std::vector<std::int64_t> first, second;
  for (int k = 1; k <= 32; ++k) first.push_back(a.delay(k).count());
  for (int k = 1; k <= 32; ++k) second.push_back(b.delay(k).count());
  EXPECT_EQ(first, second);
  // And delay() is pure: interleaving calls cannot perturb the sequence.
  RetryPolicy c;
  c.seed = 0xfeedface;
  for (int k = 32; k >= 1; --k) {
    EXPECT_EQ(c.delay(k).count(), first[static_cast<std::size_t>(k - 1)]) << k;
  }
}

TEST(NetRetryPolicy, DeadlineBudgetUnaffectedByServerPollTimeouts) {
  CloudStore backing;
  NetServer server(backing);
  auto cfg = client_config(server);
  cfg.retry.max_attempts = 2;
  cfg.retry.deadline = std::chrono::milliseconds(150);
  RemoteStore remote(cfg);
  // Three successive server-side poll timeouts, each LONGER than the retry
  // deadline: all succeed, because a served timeout is a success that
  // consults neither the attempt budget nor the deadline budget.
  for (int i = 0; i < 3; ++i) {
    auto woke = remote.long_poll("q", 0, std::chrono::milliseconds(200));
    EXPECT_FALSE(woke.has_value());
  }
  EXPECT_EQ(remote.wire_retries(), 0u);
}

// ---------------------------------------------------------------- hammers

TEST(NetHammer, ConcurrentClientsOverFaultyWires) {
  CloudStore backing;
  NetServer server(backing);
  constexpr int kClients = 8;
  constexpr int kOpsPerClient = 30;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto cfg = client_config(server);
      cfg.request_deadline = std::chrono::milliseconds(250);
      NetFaultPlan plan;
      plan.seed = 1000 + static_cast<std::uint64_t>(c);
      plan.send_drop_rate = 0.02;
      plan.send_dup_rate = 0.02;
      plan.recv_dup_rate = 0.02;
      plan.disconnect_after_send_rate = 0.02;
      plan.disconnect_send_rate = 0.02;
      cfg.faults = std::make_shared<NetFaultSchedule>(plan);
      RemoteStore remote(cfg);
      const std::string mine = "h/c" + std::to_string(c);
      for (int i = 0; i < kOpsPerClient; ++i) {
        try {
          auto payload = bytes_of("v" + std::to_string(i));
          remote.put(mine, payload);
          if (remote.get(mine) != payload) {
            ++failures;  // silent data divergence — the one forbidden outcome
          }
          (void)remote.file_version(mine);
        } catch (const TransientError&) {
          // Budget exhaustion under a hostile schedule is a legal, typed
          // outcome; divergence is not.
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// Satellite: the store-level injectors are now hit from many server session
// threads at once — their counters and schedules must be thread-safe. (The
// schedule-heavy plan maximizes contention on the injector's RNG + stats.)
TEST(NetHammer, FaultInjectingStoreThreadSafeUnderServerLoad) {
  CloudStore backing;
  ibbe::cloud::FaultPlan plan;
  plan.seed = 42;
  plan.put_error_rate = 0.05;
  plan.get_error_rate = 0.05;
  plan.ambiguous_put_rate = 0.03;
  plan.spurious_cas_rate = 0.03;
  plan.stale_read_rate = 0.05;
  ibbe::cloud::FaultInjectingStore faulty(backing, plan);
  std::atomic<int> hook_fires{0};
  faulty.set_write_hook([&](const std::string&) { ++hook_fires; });
  NetServer server(faulty);

  constexpr int kClients = 6;
  constexpr int kOps = 25;
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      RemoteStore remote(client_config(server));
      const std::string mine = "f/c" + std::to_string(c);
      for (int i = 0; i < kOps; ++i) {
        try {
          remote.put(mine, bytes_of("x" + std::to_string(i)));
          (void)remote.get(mine);
        } catch (const ibbe::util::FaultError&) {
          // injected store faults forward as typed errors; fine
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  // Per-thread hook suppression: every server session thread's writes fire
  // the hook (a single shared flag would silently drop most of them).
  EXPECT_EQ(hook_fires.load(),
            static_cast<int>(faulty.mutation_ops()));
  auto fs = faulty.fault_stats();
  auto cs = faulty.stats();
  EXPECT_EQ(cs.faults_injected, backing.stats().faults_injected + fs.total());
}

TEST(NetHammer, MaliciousStoreCaptureIsSerializedAcrossThreads) {
  CloudStore backing;
  ibbe::cloud::MaliciousPlan plan;
  plan.target_prefix = "groups/";
  ibbe::cloud::MaliciousStore malicious(backing, plan);
  constexpr int kThreads = 6;
  constexpr int kWritesPerThread = 20;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kWritesPerThread; ++i) {
        // Every index write auto-captures a generation; concurrent
        // committers must not interleave their snapshots.
        malicious.put("groups/g" + std::to_string(t) + "/index",
                      bytes_of("gen" + std::to_string(i)));
        (void)malicious.get("groups/g" + std::to_string(t) + "/index");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(malicious.generation_count(),
            static_cast<std::size_t>(kThreads * kWritesPerThread));
  EXPECT_EQ(malicious.malicious_stats().generations,
            static_cast<std::uint64_t>(kThreads * kWritesPerThread));
}

}  // namespace
