// Unit and stress tests for util::ThreadPool — the scheduling machinery
// itself, independent of any crypto. The determinism contract over real
// workloads (bitwise-equal outputs at every thread count) is pinned
// separately by tests/parallel_equivalence_test.cpp.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "test_util.h"

namespace ibbe {
namespace {

using util::ThreadPool;

TEST(ThreadPoolTest, ThreadsReportsTotalParallelism) {
  EXPECT_EQ(ThreadPool(1).threads(), 1u);
  EXPECT_EQ(ThreadPool(2).threads(), 2u);
  EXPECT_EQ(ThreadPool(4).threads(), 4u);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 4u, 7u}) {
    ThreadPool pool(threads);
    for (std::size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 63u, 64u, 65u, 1000u}) {
      std::vector<std::atomic<int>> hits(n);
      pool.parallel_for(0, n, 2, [&](std::size_t i) { hits[i]++; });
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "n=" << n << " i=" << i
                                     << " threads=" << threads;
      }
    }
  }
}

TEST(ThreadPoolTest, GrainEdgeShapes) {
  ThreadPool pool(4);
  const std::size_t grain = 8;
  // n = 0, 1, grain-1, grain, grain+1 — the shapes where the chunking math
  // (inline cutoff, ceil divisions) has off-by-one room.
  for (std::size_t n :
       {std::size_t{0}, std::size_t{1}, grain - 1, grain, grain + 1}) {
    std::vector<int> hits(n, 0);  // plain ints: n <= grain runs inline
    std::atomic<std::size_t> total{0};
    pool.parallel_for(0, n, grain, [&](std::size_t i) {
      hits[i]++;
      total++;
    });
    EXPECT_EQ(total.load(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i], 1);
  }
}

TEST(ThreadPoolTest, NonZeroBeginAndReversedRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(10, 90, 1, [&](std::size_t i) { hits[i]++; });
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(hits[i].load(), (i >= 10 && i < 90) ? 1 : 0);
  }
  // end < begin is an empty range, not a wraparound.
  pool.parallel_for(90, 10, 1, [&](std::size_t i) { hits[i] += 100; });
  for (std::size_t i = 0; i < 100; ++i) EXPECT_LT(hits[i].load(), 100);
}

TEST(ThreadPoolTest, SingleThreadModeRunsInlineOnCaller) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  bool all_inline = true;
  pool.parallel_for(0, 64, 1, [&](std::size_t) {
    if (std::this_thread::get_id() != caller) all_inline = false;
  });
  EXPECT_TRUE(all_inline);
  // Zero resolves the IBBE_THREADS / hardware count — just run it; inline
  // or not, coverage must hold.
  ThreadPool auto_pool(0);
  std::atomic<int> n{0};
  auto_pool.parallel_for(0, 10, 1, [&](std::size_t) { n++; });
  EXPECT_EQ(n.load(), 10);
}

TEST(ThreadPoolTest, WorkDistributesAcrossThreads) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> seen;
  pool.parallel_for(0, 256, 1, [&](std::size_t) {
    // Enough work per task that workers wake before the caller drains all.
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    std::lock_guard lock(mu);
    seen.insert(std::this_thread::get_id());
  });
  // On a single-core host the scheduler may still serialize onto few
  // threads; at least the caller participated and nothing deadlocked.
  EXPECT_GE(seen.size(), 1u);
}

TEST(ThreadPoolTest, SkewedTaskCostsRebalanceByStealing) {
  // Seeded skew: a few indexes cost ~50x the rest. Correctness (every slot
  // holds the value its own index computes) must be unaffected by who
  // steals what.
  auto& gen = testutil::rng();
  std::vector<int> cost(512);
  for (auto& c : cost) c = (gen() % 16 == 0) ? 50 : 1;
  auto work = [&](std::size_t i) {
    std::uint64_t acc = i + 1;
    for (int rep = 0; rep < cost[i] * 1000; ++rep) {
      acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
    }
    return acc;
  };
  std::vector<std::uint64_t> expected(cost.size());
  for (std::size_t i = 0; i < cost.size(); ++i) expected[i] = work(i);

  ThreadPool pool(4);
  std::vector<std::uint64_t> out(cost.size());
  pool.parallel_for(0, cost.size(), 4,
                    [&](std::size_t i) { out[i] = work(i); });
  EXPECT_EQ(out, expected);
}

TEST(ThreadPoolTest, OversubscriptionTasksFarExceedWorkers) {
  ThreadPool pool(7);
  constexpr std::size_t kN = 20000;
  std::vector<std::uint8_t> hit(kN, 0);
  std::atomic<std::size_t> total{0};
  pool.parallel_for(0, kN, 1, [&](std::size_t i) {
    hit[i] = 1;
    total++;
  });
  EXPECT_EQ(total.load(), kN);
  EXPECT_EQ(std::accumulate(hit.begin(), hit.end(), std::size_t{0}), kN);
}

TEST(ThreadPoolTest, NestedParallelForExecutesInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> cells(16 * 16);
  std::atomic<bool> nested_escaped{false};
  pool.parallel_for(0, 16, 1, [&](std::size_t i) {
    const auto outer_thread = std::this_thread::get_id();
    pool.parallel_for(0, 16, 1, [&](std::size_t j) {
      // Nested loops stay on the worker that owns the outer task.
      if (std::this_thread::get_id() != outer_thread) nested_escaped = true;
      cells[i * 16 + j]++;
    });
  });
  EXPECT_FALSE(nested_escaped.load());
  for (auto& c : cells) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPoolTest, ParallelMapProducesOrderedResults) {
  ThreadPool pool(4);
  auto out = pool.parallel_map<std::size_t>(
      100, 3, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
  EXPECT_TRUE(pool.parallel_map<int>(0, 1, [](std::size_t) { return 7; })
                  .empty());
}

TEST(ThreadPoolTest, ExceptionFromTaskPropagatesToCaller) {
  for (std::size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.parallel_for(0, 64, 1,
                          [&](std::size_t i) {
                            if (i == 13) {
                              throw std::runtime_error("boom");
                            }
                          }),
        std::runtime_error);
  }
}

TEST(ThreadPoolTest, RemainingChunksStillRunAndPoolIsReusableAfterThrow) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 128;
  std::vector<std::atomic<int>> hits(kN);
  try {
    pool.parallel_for(0, kN, 1, [&](std::size_t i) {
      hits[i]++;
      if (i == 0) throw std::logic_error("first chunk fails");
    });
    FAIL() << "expected the task exception to propagate";
  } catch (const std::logic_error&) {
  }
  // A throw abandons the rest of ITS chunk (like a serial loop abandons the
  // indexes after the throw) but every other queued chunk still executes and
  // no index runs twice. Chunks are at most ceil(kN / (4 * threads)) wide,
  // so at most that many indexes may be missing.
  std::size_t total = 0;
  for (auto& h : hits) {
    EXPECT_LE(h.load(), 1);
    total += static_cast<std::size_t>(h.load());
  }
  EXPECT_EQ(hits[0].load(), 1);
  EXPECT_GE(total, kN - (kN + 7) / 8);
  // The pool survives and schedules fresh batches.
  std::atomic<int> after{0};
  pool.parallel_for(0, 64, 1, [&](std::size_t) { after++; });
  EXPECT_EQ(after.load(), 64);
}

TEST(ThreadPoolTest, SubmitRunsAndReportsThroughFuture) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  auto fut = pool.submit([&] { ran++; });
  fut.get();
  EXPECT_EQ(ran.load(), 1);
  auto bad = pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // Inline mode: submit executes on the caller immediately.
  ThreadPool serial(1);
  std::atomic<int> inline_ran{0};
  serial.submit([&] { inline_ran++; }).get();
  EXPECT_EQ(inline_ran.load(), 1);
}

TEST(ThreadPoolTest, ShutdownWhileIdle) {
  auto pool = std::make_unique<ThreadPool>(4);
  std::atomic<int> n{0};
  pool->parallel_for(0, 32, 1, [&](std::size_t) { n++; });
  EXPECT_EQ(n.load(), 32);
  pool.reset();  // workers are asleep; join must not hang
}

TEST(ThreadPoolTest, ShutdownWithQueuedWorkCompletesIt) {
  std::atomic<int> completed{0};
  std::vector<std::future<void>> futs;
  {
    ThreadPool pool(4);
    for (int i = 0; i < 64; ++i) {
      futs.push_back(pool.submit([&completed] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        completed++;
      }));
    }
    // Destructor runs immediately with most tasks still queued.
  }
  EXPECT_EQ(completed.load(), 64);
  for (auto& f : futs) f.get();  // all futures are satisfied, none broken
}

TEST(ThreadPoolTest, GlobalPoolHonorsSetGlobalThreads) {
  ThreadPool::set_global_threads(3);
  EXPECT_EQ(ThreadPool::global().threads(), 3u);
  std::atomic<int> n{0};
  ThreadPool::global().parallel_for(0, 48, 1, [&](std::size_t) { n++; });
  EXPECT_EQ(n.load(), 48);
  ThreadPool::set_global_threads(1);
  EXPECT_EQ(ThreadPool::global().threads(), 1u);
}

TEST(ThreadPoolTest, ConfiguredThreadsParsesEnvironment) {
#ifdef IBBE_SINGLE_THREAD
  EXPECT_EQ(ThreadPool::configured_threads(), 1u);
#else
  ::setenv("IBBE_THREADS", "5", 1);
  EXPECT_EQ(ThreadPool::configured_threads(), 5u);
  ::setenv("IBBE_THREADS", "not-a-number", 1);
  const std::size_t fallback = ThreadPool::configured_threads();
  EXPECT_GE(fallback, 1u);  // falls back to hardware_concurrency
  ::setenv("IBBE_THREADS", "0", 1);
  EXPECT_GE(ThreadPool::configured_threads(), 1u);
  ::unsetenv("IBBE_THREADS");
#endif
}

}  // namespace
}  // namespace ibbe
