#include <gtest/gtest.h>

#include "crypto/drbg.h"
#include "pki/cert.h"
#include "pki/ecdsa.h"
#include "pki/ecies.h"
#include "util/hex.h"

namespace {

using ibbe::crypto::Drbg;
using ibbe::pki::Certificate;
using ibbe::pki::CertificateAuthority;
using ibbe::pki::EcdsaKeyPair;
using ibbe::pki::EcdsaSignature;
using ibbe::pki::EciesKeyPair;
using ibbe::util::Bytes;

Drbg& rng() {
  static Drbg gen(2024);
  return gen;
}

// ------------------------------------------------------------------ ECDSA

TEST(Ecdsa, SignVerifyRoundTrip) {
  auto key = EcdsaKeyPair::generate(rng());
  auto sig = key.sign("membership op: add alice to group g1");
  EXPECT_TRUE(ibbe::pki::ecdsa_verify(key.public_key(),
                                      "membership op: add alice to group g1", sig));
}

TEST(Ecdsa, RejectsWrongMessage) {
  auto key = EcdsaKeyPair::generate(rng());
  auto sig = key.sign("original");
  EXPECT_FALSE(ibbe::pki::ecdsa_verify(key.public_key(), "tampered", sig));
}

TEST(Ecdsa, RejectsWrongKey) {
  auto key = EcdsaKeyPair::generate(rng());
  auto other = EcdsaKeyPair::generate(rng());
  auto sig = key.sign("message");
  EXPECT_FALSE(ibbe::pki::ecdsa_verify(other.public_key(), "message", sig));
}

TEST(Ecdsa, RejectsTamperedSignature) {
  auto key = EcdsaKeyPair::generate(rng());
  auto sig = key.sign("message");
  auto bytes = sig.to_bytes();
  bytes[10] ^= 1;
  auto bad = EcdsaSignature::from_bytes(bytes);
  EXPECT_FALSE(ibbe::pki::ecdsa_verify(key.public_key(), "message", bad));
}

TEST(Ecdsa, DeterministicNonces) {
  // RFC-6979-style derivation: same key + message => same signature.
  auto key = EcdsaKeyPair::from_secret(Bytes(32, 0x11));
  EXPECT_EQ(key.sign("m").to_bytes(), key.sign("m").to_bytes());
  EXPECT_NE(key.sign("m").to_bytes(), key.sign("m2").to_bytes());
}

TEST(Ecdsa, SignatureSerializationRoundTrip) {
  auto key = EcdsaKeyPair::generate(rng());
  auto sig = key.sign("x");
  auto bytes = sig.to_bytes();
  ASSERT_EQ(bytes.size(), EcdsaSignature::serialized_size);
  auto back = EcdsaSignature::from_bytes(bytes);
  EXPECT_TRUE(ibbe::pki::ecdsa_verify(key.public_key(), "x", back));
}

TEST(Ecdsa, FromSecretRejectsZero) {
  EXPECT_THROW(EcdsaKeyPair::from_secret(Bytes(32, 0)), std::invalid_argument);
}

TEST(Ecdsa, Rfc6979P256ReferenceVectorVerifies) {
  // RFC 6979 A.2.5, P-256 with SHA-256, message "sample". Our signer derives
  // nonces differently (same idea, different KDF), but any correct verifier
  // must accept the reference signature against the reference key.
  auto qx = ibbe::util::from_hex(
      "60FED4BA255A9D31C961EB74C6356D68C049B8923B61FA6CE669622E60F29FB6");
  auto qy = ibbe::util::from_hex(
      "7903FE1008B8BC99A41AE9E95628BC64F2F1B20C2D7E9F5177A3C294D4462299");
  auto q = ibbe::ec::P256Point::from_affine(
      ibbe::field::P256Fp::from_u256(ibbe::bigint::U256::from_be_bytes(qx)),
      ibbe::field::P256Fp::from_u256(ibbe::bigint::U256::from_be_bytes(qy)));
  ASSERT_TRUE(q.on_curve());

  auto sig_bytes = ibbe::util::from_hex(
      "EFD48B2AACB6A8FD1140DD9CD45E81D69D2C877B56AAF991C34D0EA84EAF3716"   // r
      "F7CB1C942D657C41D436C7A1B6E29F65F3E900DBB9AFF4064DC4AB2F843ACDA8"); // s
  auto sig = EcdsaSignature::from_bytes(sig_bytes);
  EXPECT_TRUE(ibbe::pki::ecdsa_verify(q, "sample", sig));
  EXPECT_FALSE(ibbe::pki::ecdsa_verify(q, "samplX", sig));
}

TEST(Ecdsa, VerifyRejectsZeroSignatureComponents) {
  auto key = EcdsaKeyPair::generate(rng());
  EcdsaSignature zero_sig{};  // r = s = 0
  EXPECT_FALSE(ibbe::pki::ecdsa_verify(key.public_key(), "m", zero_sig));
}

// ------------------------------------------------------------------ ECIES

TEST(Ecies, EncryptDecryptRoundTrip) {
  auto key = EciesKeyPair::generate(rng());
  Bytes msg = {'g', 'r', 'o', 'u', 'p', '-', 'k', 'e', 'y'};
  auto ct = ibbe::pki::ecies_encrypt(key.public_key(), msg, rng());
  auto pt = key.decrypt(ct);
  ASSERT_TRUE(pt.has_value());
  EXPECT_EQ(*pt, msg);
}

TEST(Ecies, CiphertextSizeIsPlaintextPlusOverhead) {
  auto key = EciesKeyPair::generate(rng());
  Bytes msg(32, 7);
  auto ct = ibbe::pki::ecies_encrypt(key.public_key(), msg, rng());
  EXPECT_EQ(ct.size(), msg.size() + ibbe::pki::ecies_overhead);
}

TEST(Ecies, WrongKeyFails) {
  auto key = EciesKeyPair::generate(rng());
  auto other = EciesKeyPair::generate(rng());
  auto ct = ibbe::pki::ecies_encrypt(key.public_key(), Bytes(16, 1), rng());
  EXPECT_FALSE(other.decrypt(ct).has_value());
}

TEST(Ecies, TamperedCiphertextFails) {
  auto key = EciesKeyPair::generate(rng());
  auto ct = ibbe::pki::ecies_encrypt(key.public_key(), Bytes(16, 1), rng());
  ct.back() ^= 1;
  EXPECT_FALSE(key.decrypt(ct).has_value());
  ct.back() ^= 1;
  ct[1] ^= 1;  // damage the ephemeral point encoding
  EXPECT_FALSE(key.decrypt(ct).has_value());
}

TEST(Ecies, AadIsAuthenticated) {
  auto key = EciesKeyPair::generate(rng());
  Bytes aad = {'c', 't', 'x'};
  auto ct = ibbe::pki::ecies_encrypt(key.public_key(), Bytes(4, 2), rng(), aad);
  EXPECT_TRUE(key.decrypt(ct, aad).has_value());
  Bytes wrong_aad = {'c', 't', 'y'};
  EXPECT_FALSE(key.decrypt(ct, wrong_aad).has_value());
}

TEST(Ecies, RandomizedCiphertexts) {
  auto key = EciesKeyPair::generate(rng());
  Bytes msg(8, 3);
  auto c1 = ibbe::pki::ecies_encrypt(key.public_key(), msg, rng());
  auto c2 = ibbe::pki::ecies_encrypt(key.public_key(), msg, rng());
  EXPECT_NE(c1, c2);
}

TEST(Ecies, TruncatedInputFails) {
  auto key = EciesKeyPair::generate(rng());
  EXPECT_FALSE(key.decrypt(Bytes(10, 0)).has_value());
}

// ----------------------------------------------------------- certificates

TEST(Certificates, IssueAndVerify) {
  CertificateAuthority ca("auditor", rng());
  auto subject_key = EcdsaKeyPair::generate(rng());
  auto cert = ca.issue("enclave:test", subject_key.public_key_bytes(),
                       Bytes(32, 0xaa));
  EXPECT_TRUE(CertificateAuthority::verify(cert, ca.public_key()));
  EXPECT_EQ(cert.issuer, "auditor");
}

TEST(Certificates, VerifyRejectsWrongCa) {
  CertificateAuthority ca("auditor", rng());
  CertificateAuthority rogue("rogue", rng());
  auto cert = ca.issue("enclave:test", Bytes(33, 1), {});
  EXPECT_FALSE(CertificateAuthority::verify(cert, rogue.public_key()));
}

TEST(Certificates, VerifyRejectsFieldTampering) {
  CertificateAuthority ca("auditor", rng());
  auto cert = ca.issue("enclave:test", Bytes(33, 1), Bytes(32, 2));
  cert.subject = "enclave:evil";
  EXPECT_FALSE(CertificateAuthority::verify(cert, ca.public_key()));
}

TEST(Certificates, SerializationRoundTrip) {
  CertificateAuthority ca("auditor", rng());
  auto cert = ca.issue("user:alice", Bytes(33, 9), {});
  auto back = Certificate::from_bytes(cert.to_bytes());
  EXPECT_EQ(back.subject, cert.subject);
  EXPECT_EQ(back.public_key, cert.public_key);
  EXPECT_EQ(back.issuer, cert.issuer);
  EXPECT_TRUE(CertificateAuthority::verify(back, ca.public_key()));
}

}  // namespace
