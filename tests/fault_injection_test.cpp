// Fault-injection and crash-consistency tests.
//
// Three layers:
//   1. unit tests for util::RetryPolicy and cloud::FaultInjectingStore
//      (deterministic schedules, armed crash points, stale reads, ...);
//   2. systematic crash-point enumeration: for every mutation k inside every
//      membership operation, crash the admin right before cloud write k,
//      recover in a fresh admin, and assert the group is EXACTLY in the
//      pre-state or the post-state — never in between — with the full
//      invariant set (every member decrypts one key, outsiders fail, the
//      anchored op-log audit passes, no orphaned cloud files);
//   3. regressions for the multi-admin op-log lost-update and for
//      whole-suffix truncation of the audit log.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cloud/fault.h"
#include "cloud/store.h"
#include "system/admin.h"
#include "system/client.h"
#include "system/oplog.h"
#include "util/retry.h"

namespace {

using ibbe::cloud::CloudStore;
using ibbe::cloud::CrashError;
using ibbe::cloud::FaultInjectingStore;
using ibbe::cloud::FaultPlan;
using ibbe::cloud::TransientError;
using ibbe::core::Identity;
using ibbe::system::AdminApi;
using ibbe::system::AdminConfig;
using ibbe::system::ClientApi;
using ibbe::system::GroupId;
using ibbe::system::LogOp;
using ibbe::system::MembershipLog;
using ibbe::util::Bytes;
using ibbe::util::RetryPolicy;

std::vector<Identity> make_users(std::size_t n, std::size_t offset = 0) {
  std::vector<Identity> users;
  for (std::size_t i = 0; i < n; ++i) {
    users.push_back("u" + std::to_string(offset + i));
  }
  return users;
}

Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }

// ------------------------------------------------------------- RetryPolicy

TEST(RetryPolicy, ExponentialGrowthWithCap) {
  RetryPolicy p;
  p.jitter = 0.0;
  EXPECT_EQ(p.delay(1), std::chrono::microseconds(200));
  EXPECT_EQ(p.delay(2), std::chrono::microseconds(400));
  EXPECT_EQ(p.delay(3), std::chrono::microseconds(800));
  EXPECT_EQ(p.delay(20), p.max_delay);  // capped
}

TEST(RetryPolicy, JitterIsDeterministicPerSeed) {
  RetryPolicy a, b;
  for (int k = 1; k <= 8; ++k) {
    EXPECT_EQ(a.delay(k), b.delay(k)) << k;
  }
  RetryPolicy c;
  c.seed = 12345;
  bool any_different = false;
  for (int k = 1; k <= 8; ++k) {
    any_different = any_different || (a.delay(k) != c.delay(k));
  }
  EXPECT_TRUE(any_different);
}

TEST(RetryPolicy, WithoutDelaysZeroesTheBackoff) {
  auto p = RetryPolicy{}.without_delays();
  for (int k = 1; k <= 8; ++k) {
    EXPECT_EQ(p.delay(k), std::chrono::microseconds(0));
  }
}

TEST(RetryOn, RetriesTransientsThenSucceeds) {
  auto policy = RetryPolicy{}.without_delays();
  int calls = 0;
  std::uint64_t retries = 0;
  int result = ibbe::util::retry_on<TransientError>(
      policy,
      [&] {
        if (++calls < 3) throw TransientError("flaky");
        return 7;
      },
      &retries);
  EXPECT_EQ(result, 7);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2u);
}

TEST(RetryOn, ExhaustsTheAttemptBudget) {
  auto policy = RetryPolicy{}.without_delays();
  int calls = 0;
  EXPECT_THROW(ibbe::util::retry_on<TransientError>(policy,
                                                    [&]() -> int {
                                                      ++calls;
                                                      throw TransientError("x");
                                                    }),
               TransientError);
  EXPECT_EQ(calls, policy.max_attempts);
}

TEST(RetryOn, NeverSwallowsACrash) {
  auto policy = RetryPolicy{}.without_delays();
  int calls = 0;
  // CrashError is deliberately not a TransientError: a simulated process
  // death must reach the harness on the first throw.
  EXPECT_THROW(ibbe::util::retry_on<TransientError>(policy,
                                                    [&]() -> int {
                                                      ++calls;
                                                      throw CrashError("died");
                                                    }),
               CrashError);
  EXPECT_EQ(calls, 1);
}

// ---------------------------------------------------- FaultInjectingStore

TEST(FaultStore, ArmedCrashFiresBeforeTheExactMutation) {
  CloudStore inner;
  FaultInjectingStore faulty(inner, FaultPlan{});
  faulty.put("a", bytes_of("1"));
  faulty.arm_crash_after(2);
  faulty.put("b", bytes_of("2"));  // mutation 1 of 2: applies
  EXPECT_THROW(faulty.put("c", bytes_of("3")), CrashError);
  EXPECT_TRUE(inner.get("b").has_value());
  EXPECT_FALSE(inner.get("c").has_value());  // died BEFORE applying
  // One-shot: the next mutation goes through.
  faulty.put("c", bytes_of("3"));
  EXPECT_TRUE(inner.get("c").has_value());
  EXPECT_EQ(faulty.fault_stats().crashes, 1u);
}

TEST(FaultStore, ScheduleIsDeterministicPerSeed) {
  FaultPlan plan;
  plan.seed = 99;
  plan.put_error_rate = 0.5;
  auto run = [&](FaultPlan p) {
    CloudStore inner;
    FaultInjectingStore faulty(inner, p);
    std::string outcome;
    for (int i = 0; i < 32; ++i) {
      try {
        faulty.put("k" + std::to_string(i), bytes_of("v"));
        outcome += '.';
      } catch (const TransientError&) {
        outcome += 'X';
      }
    }
    return outcome;
  };
  auto first = run(plan);
  EXPECT_EQ(first, run(plan));  // bit-for-bit replay from the seed
  EXPECT_NE(first.find('X'), std::string::npos);
  EXPECT_NE(first.find('.'), std::string::npos);
  plan.seed = 100;
  EXPECT_NE(first, run(plan));
}

TEST(FaultStore, FullMixedOpTraceReplaysByteForByteFromTheSeed) {
  // Stronger than the put-only schedule check above: a mixed-operation run
  // exercising EVERY fault mode must replay its complete observable trace —
  // values served, versions, errors, poll outcomes, and the final counter
  // set — bit-for-bit from the seed alone.
  auto run = [](std::uint64_t seed) {
    FaultPlan plan;
    plan.seed = seed;
    plan.put_error_rate = 0.1;
    plan.ambiguous_put_rate = 0.1;
    plan.spurious_cas_rate = 0.2;
    plan.get_error_rate = 0.1;
    plan.stale_read_rate = 0.2;
    plan.poll_timeout_rate = 0.3;
    plan.crash_rate = 0.15;
    CloudStore inner;
    FaultInjectingStore faulty(inner, plan);
    std::string trace;
    auto note = [&](const std::string& s) { trace += s + ";"; };
    for (int i = 0; i < 64; ++i) {
      const std::string path = "k" + std::to_string(i % 4);
      try {
        switch (i % 6) {
          case 0:
            note("put=" + std::to_string(faulty.put(path, bytes_of("v" + std::to_string(i)))));
            break;
          case 1: {
            auto v = faulty.put_cas(path, bytes_of("c" + std::to_string(i)),
                                    inner.file_version(path));
            note(v ? "cas=" + std::to_string(*v) : "cas-conflict");
            break;
          }
          case 2: {
            auto v = faulty.get(path);
            note(v ? "get=" + std::string(v->begin(), v->end()) : "get-miss");
            break;
          }
          case 3: {
            auto v = faulty.get_versioned(path);
            note(v ? "getv=" + std::string(v->value.begin(), v->value.end()) +
                         "@" + std::to_string(v->version)
                   : "getv-miss");
            break;
          }
          case 4:
            note("list=" + std::to_string(faulty.list("k").size()));
            break;
          case 5: {
            auto v = faulty.long_poll("", 0, std::chrono::milliseconds(0));
            note(v ? "poll=" + std::to_string(*v) : "poll-timeout");
            break;
          }
        }
      } catch (const TransientError&) {
        note("transient");
      } catch (const CrashError&) {
        note("crash");
      }
    }
    auto stats = faulty.fault_stats();
    trace += "|t" + std::to_string(stats.transient_errors) +
             "a" + std::to_string(stats.ambiguous_puts) +
             "s" + std::to_string(stats.spurious_cas) +
             "r" + std::to_string(stats.stale_reads) +
             "p" + std::to_string(stats.poll_timeouts) +
             "c" + std::to_string(stats.crashes);
    return trace;
  };
  auto first = run(2020);
  EXPECT_EQ(first, run(2020));  // byte-identical replay
  EXPECT_NE(first, run(2021));  // a different seed diverges
  // The schedule actually exercised the failure modes it claims to replay.
  EXPECT_NE(first.find("transient"), std::string::npos);
  EXPECT_NE(first.find("crash"), std::string::npos);
}

TEST(FaultStore, AmbiguousPutAppliesThenFails) {
  FaultPlan plan;
  plan.ambiguous_put_rate = 1.0;
  CloudStore inner;
  FaultInjectingStore faulty(inner, plan);
  EXPECT_THROW(faulty.put("x", bytes_of("v")), TransientError);
  EXPECT_EQ(inner.get("x"), bytes_of("v"));  // ... but it landed
}

TEST(FaultStore, SpuriousCasConflictAppliesNothing) {
  FaultPlan plan;
  plan.spurious_cas_rate = 1.0;
  CloudStore inner;
  FaultInjectingStore faulty(inner, plan);
  EXPECT_EQ(faulty.put_cas("x", bytes_of("v"), 0), std::nullopt);
  EXPECT_FALSE(inner.get("x").has_value());
  EXPECT_EQ(faulty.fault_stats().spurious_cas, 1u);
}

TEST(FaultStore, StaleReadServesThePreviousVersion) {
  FaultPlan plan;
  plan.stale_read_rate = 1.0;
  CloudStore inner;
  FaultInjectingStore faulty(inner, plan);
  faulty.put("x", bytes_of("old"));
  faulty.put("x", bytes_of("new"));
  auto stale = faulty.get_versioned("x");
  auto truth = inner.get_versioned("x");
  ASSERT_TRUE(stale.has_value());
  ASSERT_TRUE(truth.has_value());
  EXPECT_EQ(stale->value, bytes_of("old"));
  EXPECT_LT(stale->version, truth->version);
  // A never-overwritten path has no lagging replica to serve.
  faulty.put("fresh", bytes_of("only"));
  EXPECT_EQ(faulty.get("fresh"), bytes_of("only"));
}

TEST(FaultStore, DisablingFaultsKeepsArmedCrashes) {
  FaultPlan plan;
  plan.put_error_rate = 1.0;
  CloudStore inner;
  FaultInjectingStore faulty(inner, plan);
  faulty.set_faults_enabled(false);
  faulty.put("x", bytes_of("v"));  // random fault suppressed
  faulty.arm_crash_after(1);
  EXPECT_THROW(faulty.put("y", bytes_of("v")), CrashError);  // armed one fires
}

TEST(FaultStore, StatsFoldFaultCountersIntoCloudStats) {
  FaultPlan plan;
  plan.ambiguous_put_rate = 1.0;
  CloudStore inner;
  FaultInjectingStore faulty(inner, plan);
  EXPECT_THROW(faulty.put("x", bytes_of("v")), TransientError);
  auto stats = faulty.stats();
  EXPECT_EQ(stats.faults_injected, 1u);
  EXPECT_EQ(stats.crashes_injected, 0u);
  EXPECT_EQ(stats.puts, 1u);  // the inner put still counted
}

// ----------------------------------------------- degraded-mode client reads

TEST(ClientDegradedMode, StaleIndexReadsAreRejectedByVersionFloor) {
  ibbe::sgx::EnclavePlatform platform("stale-box");
  ibbe::enclave::IbbeEnclave enclave(platform, 8);
  CloudStore inner;
  FaultPlan plan;
  plan.stale_read_rate = 1.0;
  FaultInjectingStore faulty(inner, plan);
  ibbe::crypto::Drbg rng(21);
  AdminConfig config;
  config.partition_size = 3;
  config.retry = RetryPolicy{}.without_delays();
  AdminApi admin(enclave, faulty, ibbe::pki::EcdsaKeyPair::generate(rng),
                 config, /*seed=*/4);
  const GroupId gid = "g";
  auto users = make_users(4);
  admin.create_group(gid, users);
  admin.remove_user(gid, "u3");  // overwrites the index: a replica can lag

  ClientApi client(faulty, enclave.public_key(),
                   enclave.ecall_extract_user_key("u0"),
                   admin.verification_point());
  client.set_retry_policy(RetryPolicy{}.without_delays());

  // Observe the committed post-removal index once, faults off: this sets the
  // client's version floor.
  faulty.set_faults_enabled(false);
  auto key = client.fetch_group_key(gid);
  ASSERT_TRUE(key.has_value());

  // Now every read is served by the lagging replica. The client must reject
  // the old index rather than silently regress to the pre-removal view.
  faulty.set_faults_enabled(true);
  EXPECT_FALSE(client.fetch_group_key(gid).has_value());
  EXPECT_GT(client.stats().stale_reads_rejected, 0u);

  // Healthy replica again: same key as before.
  faulty.set_faults_enabled(false);
  EXPECT_EQ(client.fetch_group_key(gid), key);
}

// ------------------------------------------------ crash-point enumeration
//
// For every membership operation we count its cloud mutations M in a crash-
// free dry run, then replay the whole deployment M times, crashing the admin
// immediately before mutation k = 1..M. A fresh admin recovers and the world
// must equal the pre-state or the post-state exactly; re-issuing the
// operation must always land in the post-state.

struct Scenario {
  std::string label;
  std::vector<Identity> initial;                    // create_group members
  std::function<void(AdminApi&, const GroupId&)> prepare;  // optional extra
  std::function<void(AdminApi&, const GroupId&)> op;       // mutation under test
  std::set<Identity> pre;   // membership before op
  std::set<Identity> post;  // membership after op
};

class CrashEnumeration : public ::testing::Test {
 protected:
  // One enclave for every deployment in the suite: mutation counts do not
  // depend on enclave-internal randomness, and sharing it keeps the
  // enumeration fast.
  static void SetUpTestSuite() {
    platform_ = new ibbe::sgx::EnclavePlatform("crash-box");
    enclave_ = new ibbe::enclave::IbbeEnclave(*platform_, 8);
    ibbe::crypto::Drbg rng(42);
    admin_key_ = new ibbe::pki::EcdsaKeyPair(
        ibbe::pki::EcdsaKeyPair::generate(rng));
  }
  static void TearDownTestSuite() {
    delete admin_key_;
    delete enclave_;
    delete platform_;
    admin_key_ = nullptr;
    enclave_ = nullptr;
    platform_ = nullptr;
  }

  static std::unique_ptr<AdminApi> make_admin(CloudStore& store,
                                              std::uint64_t seed) {
    AdminConfig config;
    config.partition_size = 3;
    config.repartitioning = true;
    config.log_operations = true;
    config.retry = RetryPolicy{}.without_delays();
    return std::make_unique<AdminApi>(*enclave_, store, *admin_key_, config,
                                      seed);
  }

  static std::set<Identity> membership(const AdminApi& admin, const GroupId& gid,
                                       const std::vector<Identity>& universe) {
    std::set<Identity> out;
    for (const auto& id : universe) {
      if (admin.is_member(gid, id)) out.insert(id);
    }
    return out;
  }

  /// Full invariant set against the REAL (inner) store through clean
  /// clients: one shared key for every member, failure for everyone else,
  /// anchored audit ok, and not a single unreferenced file on the cloud.
  static void check_world(CloudStore& inner, const AdminApi& admin,
                          const GroupId& gid, const std::set<Identity>& members,
                          const std::vector<Identity>& universe) {
    std::optional<Bytes> shared;
    for (const auto& id : universe) {
      ClientApi client(inner, enclave_->public_key(),
                       enclave_->ecall_extract_user_key(id),
                       admin.verification_point());
      auto key = client.fetch_group_key(gid);
      if (members.count(id)) {
        ASSERT_TRUE(key.has_value()) << id << " cannot decrypt";
        if (!shared) shared = *key;
        EXPECT_EQ(*key, *shared) << id << " derived a different key";
      } else {
        EXPECT_FALSE(key.has_value()) << id << " can still decrypt";
      }
    }
    auto audit = admin.audit_group_log(gid);
    EXPECT_TRUE(audit.ok) << audit.failure;
    // Exact cloud footprint: manifest + oplog + shards + cipher bundle +
    // live overlays + retained deltas + the one live sealed gk. Anything
    // else is an orphan the GC missed.
    EXPECT_EQ(inner.list("groups/" + gid + "/").size(),
              admin.cloud_object_count(gid));
  }

  static void run(const Scenario& sc) {
    const GroupId gid = "g";
    auto universe = make_users(10);
    universe.push_back("joiner");
    const std::uint64_t seed = 1234;

    // Dry run: count the operation's cloud mutations.
    std::uint64_t mutations = 0;
    {
      CloudStore inner;
      FaultInjectingStore faulty(inner, FaultPlan{});
      auto admin = make_admin(faulty, seed);
      admin->create_group(gid, sc.initial);
      if (sc.prepare) sc.prepare(*admin, gid);
      ASSERT_EQ(membership(*admin, gid, universe), sc.pre);
      auto before = faulty.mutation_ops();
      sc.op(*admin, gid);
      mutations = faulty.mutation_ops() - before;
      ASSERT_EQ(membership(*admin, gid, universe), sc.post);
      check_world(inner, *admin, gid, sc.post, universe);
    }
    ASSERT_GT(mutations, 0u) << sc.label;
    SCOPED_TRACE(sc.label + ": " + std::to_string(mutations) +
                 " crash points");

    for (std::uint64_t k = 1; k <= mutations; ++k) {
      SCOPED_TRACE("crash before mutation " + std::to_string(k));
      CloudStore inner;
      FaultInjectingStore faulty(inner, FaultPlan{});
      auto admin = make_admin(faulty, seed);
      admin->create_group(gid, sc.initial);
      if (sc.prepare) sc.prepare(*admin, gid);

      faulty.arm_crash_after(k);
      bool crashed = false;
      try {
        sc.op(*admin, gid);
      } catch (const CrashError&) {
        crashed = true;
      }
      ASSERT_TRUE(crashed);
      admin.reset();  // the process is gone

      // A fresh admin recovers from cloud state alone.
      auto restarted = make_admin(faulty, seed + 999);
      bool exists = restarted->recover(gid);
      if (!exists) {
        // Only a crashed CREATION may leave no group; recovery must have
        // rolled every torn file back.
        ASSERT_TRUE(sc.pre.empty());
        EXPECT_TRUE(inner.list("groups/" + gid + "/").empty());
      } else {
        auto now = membership(*restarted, gid, universe);
        bool at_pre = (now == sc.pre);
        bool at_post = (now == sc.post);
        ASSERT_TRUE(at_pre || at_post)
            << "torn membership state after recovery";
        EXPECT_EQ(restarted->group_size(gid), now.size());
        check_world(inner, *restarted, gid, now, universe);
      }

      // Roll forward: re-issuing the operation must reach the post-state.
      sc.op(*restarted, gid);
      ASSERT_EQ(membership(*restarted, gid, universe), sc.post);
      check_world(inner, *restarted, gid, sc.post, universe);
    }
  }

  static ibbe::sgx::EnclavePlatform* platform_;
  static ibbe::enclave::IbbeEnclave* enclave_;
  static ibbe::pki::EcdsaKeyPair* admin_key_;
};

ibbe::sgx::EnclavePlatform* CrashEnumeration::platform_ = nullptr;
ibbe::enclave::IbbeEnclave* CrashEnumeration::enclave_ = nullptr;
ibbe::pki::EcdsaKeyPair* CrashEnumeration::admin_key_ = nullptr;

std::set<Identity> to_set(const std::vector<Identity>& v) {
  return {v.begin(), v.end()};
}

TEST_F(CrashEnumeration, CreateGroup) {
  // The op itself is the creation: pre-state is "no group".
  auto users = make_users(7);
  Scenario sc;
  sc.label = "create";
  sc.initial = {"bootstrap"};  // placeholder; op recreates from scratch
  sc.pre = {};
  sc.post = to_set(users);
  sc.op = [users](AdminApi& admin, const GroupId& gid) {
    admin.create_group(gid, users);
  };
  // No create_group in the shared path: run a bespoke loop without the
  // fixture's initial creation.
  const GroupId gid = "g";
  const auto universe = make_users(10);
  std::uint64_t mutations = 0;
  {
    CloudStore inner;
    FaultInjectingStore faulty(inner, FaultPlan{});
    auto admin = make_admin(faulty, 1234);
    sc.op(*admin, gid);
    mutations = faulty.mutation_ops();
    check_world(inner, *admin, gid, sc.post, universe);
  }
  ASSERT_GT(mutations, 0u);
  SCOPED_TRACE("create: " + std::to_string(mutations) + " crash points");
  for (std::uint64_t k = 1; k <= mutations; ++k) {
    SCOPED_TRACE("crash before mutation " + std::to_string(k));
    CloudStore inner;
    FaultInjectingStore faulty(inner, FaultPlan{});
    auto admin = make_admin(faulty, 1234);
    faulty.arm_crash_after(k);
    bool crashed = false;
    try {
      sc.op(*admin, gid);
    } catch (const CrashError&) {
      crashed = true;
    }
    ASSERT_TRUE(crashed);
    admin.reset();

    auto restarted = make_admin(faulty, 2233);
    bool exists = restarted->recover(gid);
    if (!exists) {
      EXPECT_TRUE(inner.list("groups/" + gid + "/").empty());
    } else {
      ASSERT_EQ(membership(*restarted, gid, universe), sc.post);
      check_world(inner, *restarted, gid, sc.post, universe);
    }

    if (!exists) {
      sc.op(*restarted, gid);
      ASSERT_EQ(membership(*restarted, gid, universe), sc.post);
      check_world(inner, *restarted, gid, sc.post, universe);
    }
  }
}

TEST_F(CrashEnumeration, AddUserIntoOpenPartition) {
  // 7 members split (3,3,1): only the last partition is open, so placement
  // is deterministic regardless of the admin's RNG.
  auto users = make_users(7);
  Scenario sc;
  sc.label = "add-extend";
  sc.initial = users;
  sc.pre = to_set(users);
  sc.post = sc.pre;
  sc.post.insert("joiner");
  sc.op = [](AdminApi& admin, const GroupId& gid) {
    admin.add_user(gid, "joiner");
  };
  run(sc);
}

TEST_F(CrashEnumeration, AddUserCreatesNewPartition) {
  // 6 members split (3,3): both full, the joiner gets a new partition.
  auto users = make_users(6);
  Scenario sc;
  sc.label = "add-new-partition";
  sc.initial = users;
  sc.pre = to_set(users);
  sc.post = sc.pre;
  sc.post.insert("joiner");
  sc.op = [](AdminApi& admin, const GroupId& gid) {
    admin.add_user(gid, "joiner");
  };
  run(sc);
}

TEST_F(CrashEnumeration, RemoveUserRotatesWithoutRebuild) {
  // 7 members (3,3,1); removing u0 leaves (2,3,1) — 1 sparse partition out
  // of 3, below the rebuild threshold.
  auto users = make_users(7);
  Scenario sc;
  sc.label = "remove";
  sc.initial = users;
  sc.pre = to_set(users);
  sc.post = sc.pre;
  sc.post.erase("u0");
  sc.op = [](AdminApi& admin, const GroupId& gid) {
    admin.remove_user(gid, "u0");
  };
  run(sc);
}

TEST_F(CrashEnumeration, BatchRevocation) {
  // 8 members (3,3,2); revoking u1 and u4 leaves (2,2,2) — no partition
  // under the 2/3 threshold, no rebuild.
  auto users = make_users(8);
  Scenario sc;
  sc.label = "batch-revoke";
  sc.initial = users;
  sc.pre = to_set(users);
  sc.post = sc.pre;
  sc.post.erase("u1");
  sc.post.erase("u4");
  sc.op = [](AdminApi& admin, const GroupId& gid) {
    std::vector<Identity> leavers = {"u1", "u4"};
    admin.remove_users(gid, leavers);
  };
  run(sc);
}

TEST_F(CrashEnumeration, RemoveTriggersRepartition) {
  // 9 members (3,3,3). Preparation removes u0, u1, u3 → (1,2,3), still below
  // the trigger. Removing u4 leaves (1,1,3): 2 of 3 partitions sparse →
  // full rebuild through Algorithm 1, committed by the rebuild's index CAS.
  auto users = make_users(9);
  Scenario sc;
  sc.label = "re-partition";
  sc.initial = users;
  sc.prepare = [](AdminApi& admin, const GroupId& gid) {
    admin.remove_user(gid, "u0");
    admin.remove_user(gid, "u1");
    admin.remove_user(gid, "u3");
  };
  sc.pre = {"u2", "u4", "u5", "u6", "u7", "u8"};
  sc.post = {"u2", "u5", "u6", "u7", "u8"};
  sc.op = [](AdminApi& admin, const GroupId& gid) {
    admin.remove_user(gid, "u4");
  };
  run(sc);
}

// --------------------------------------------- op-log lost-update regression

TEST(OpLogConcurrency, InterleavedAdminsLoseNoEntries) {
  // Admin B is paused at the exact moment it publishes its op-log entry;
  // admin A commits a full add in that window. With the seed's last-writer-
  // wins put, B's rewrite would erase A's entry; the CAS-merge publication
  // must keep both.
  ibbe::sgx::EnclavePlatform platform("interleave-box");
  ibbe::enclave::IbbeEnclave enclave(platform, 8);
  CloudStore inner;
  FaultInjectingStore faulty(inner, FaultPlan{});
  ibbe::crypto::Drbg rng(31);
  auto key_a = ibbe::pki::EcdsaKeyPair::generate(rng);
  auto key_b = ibbe::pki::EcdsaKeyPair::generate(rng);

  auto config_for = [&](std::uint32_t nonce, const std::string& name,
                        const ibbe::pki::EcdsaKeyPair& peer) {
    AdminConfig config;
    config.partition_size = 3;
    config.multi_admin = true;
    config.admin_nonce = nonce;
    config.admin_name = name;
    config.log_operations = true;
    config.retry = RetryPolicy{}.without_delays();
    config.peer_verification_keys = {ibbe::ec::p256_to_bytes(peer.public_key())};
    return config;
  };
  AdminApi admin_a(enclave, faulty, key_a, config_for(1, "A", key_b), 8);
  AdminApi admin_b(enclave, faulty, key_b, config_for(2, "B", key_a), 9);

  const GroupId gid = "g";
  admin_a.create_group(gid, make_users(4));
  admin_b.sync_from_cloud(gid);

  const std::string log_path = ibbe::system::oplog_path(gid);
  bool fired = false;
  faulty.set_write_hook([&](const std::string& path) {
    if (fired || path != log_path) return;
    fired = true;
    admin_a.add_user(gid, "from-a");  // full commit inside B's window
  });
  admin_b.add_user(gid, "from-b");
  ASSERT_TRUE(fired);

  // Both entries survived the interleaving.
  auto raw = inner.get(log_path);
  ASSERT_TRUE(raw.has_value());
  auto log = MembershipLog::from_bytes(*raw);
  std::set<std::string> subjects;
  for (const auto& e : log.entries()) subjects.insert(e.subject);
  EXPECT_TRUE(subjects.count("from-a")) << "admin A's entry was lost";
  EXPECT_TRUE(subjects.count("from-b")) << "admin B's entry was lost";
  EXPECT_GE(admin_b.stats().cas_conflicts, 1u);

  // And the merged log still audits cleanly from both sides.
  EXPECT_TRUE(admin_a.audit_group_log(gid).ok);
  EXPECT_TRUE(admin_b.audit_group_log(gid).ok);
  EXPECT_TRUE(admin_b.is_member(gid, "from-a"));
  EXPECT_TRUE(admin_b.is_member(gid, "from-b"));
}

// ------------------------------------------------- truncation detection

struct TruncationFixture : ::testing::Test {
  TruncationFixture()
      : platform("truncate-box"),
        enclave(platform, 8),
        rng(17),
        admin(enclave, cloud, ibbe::pki::EcdsaKeyPair::generate(rng),
              AdminConfig{.partition_size = 3,
                          .log_operations = true},
              /*seed=*/6) {
    admin.create_group(gid, make_users(4));
    admin.add_user(gid, "late");
    admin.remove_user(gid, "u1");
  }

  ibbe::sgx::EnclavePlatform platform;
  ibbe::enclave::IbbeEnclave enclave;
  CloudStore cloud;
  ibbe::crypto::Drbg rng;
  AdminApi admin;
  const GroupId gid = "g";
};

TEST_F(TruncationFixture, SuffixTruncationIsInvisibleToChainButCaughtByAnchor) {
  auto raw = cloud.get(ibbe::system::oplog_path(gid));
  ASSERT_TRUE(raw.has_value());
  auto log = MembershipLog::from_bytes(*raw);
  ASSERT_EQ(log.size(), 3u);

  // The cloud rolls the log back to its first two entries.
  ibbe::util::ByteWriter w;
  w.u32(2);
  w.raw(log.entries()[0].to_bytes());
  w.raw(log.entries()[1].to_bytes());
  cloud.put(ibbe::system::oplog_path(gid), w.take());

  // The shorter prefix is still a perfectly valid chain...
  auto truncated = MembershipLog::from_bytes(*cloud.get(ibbe::system::oplog_path(gid)));
  std::vector<ibbe::ec::P256Point> keys = {admin.verification_point()};
  EXPECT_TRUE(truncated.audit(keys).ok);

  // ...but the committed index anchors the removed head: the anchored audit
  // must fail.
  auto audit = admin.audit_group_log(gid);
  EXPECT_FALSE(audit.ok);
  EXPECT_NE(audit.failure.find("truncated"), std::string::npos);
}

TEST_F(TruncationFixture, SplicedEntryStillFailsTheChainAudit) {
  auto raw = cloud.get(ibbe::system::oplog_path(gid));
  ASSERT_TRUE(raw.has_value());
  auto log = MembershipLog::from_bytes(*raw);

  // The cloud rewrites one entry's subject in place.
  ibbe::util::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(log.size()));
  for (std::size_t i = 0; i < log.size(); ++i) {
    auto entry = log.entries()[i];
    if (i == 1) entry.subject = "mallory";
    w.raw(entry.to_bytes());
  }
  cloud.put(ibbe::system::oplog_path(gid), w.take());

  auto audit = admin.audit_group_log(gid);
  EXPECT_FALSE(audit.ok);
}

TEST(OpLogAnchor, UncommittedTailAfterTheAnchorIsTolerated) {
  ibbe::crypto::Drbg rng(77);
  auto key = ibbe::pki::EcdsaKeyPair::generate(rng);
  MembershipLog log;
  log.append(LogOp::create_group, "members=2", "solo", key);
  log.append(LogOp::add_user, "x", "solo", key);
  log.append(LogOp::add_user, "y", "solo", key);  // index CAS never landed
  std::vector<ibbe::ec::P256Point> keys = {key.public_key()};

  auto anchor = log.entries()[1].hash;
  EXPECT_TRUE(log.audit(keys, &anchor).ok);  // tail beyond the anchor is fine

  // A log that lost the anchored entry itself is truncated.
  ibbe::util::ByteWriter w;
  w.u32(2);
  w.raw(log.entries()[0].to_bytes());
  w.raw(log.entries()[1].to_bytes());
  auto rolled_back = MembershipLog::from_bytes(w.take());
  auto missing = log.entries()[2].hash;
  EXPECT_FALSE(rolled_back.audit(keys, &missing).ok);
}

}  // namespace
