#include <gtest/gtest.h>

#include <random>

#include "bigint/biguint.h"
#include "bigint/mont.h"
#include "bigint/mont_backend.h"
#include "bigint/u256.h"
#include "bigint/u512.h"

namespace {

using ibbe::bigint::BigUInt;
using ibbe::bigint::MontgomeryCtx;
using ibbe::bigint::U256;
using ibbe::bigint::U512;

// BN254 base-field and scalar-field moduli; used throughout as realistic test
// primes.
const char* const bn_p_hex =
    "30644e72e131a029b85045b68181585d97816a916871ca8d3c208c16d87cfd47";
const char* const bn_r_hex =
    "30644e72e131a029b85045b68181585d2833e84879b9709143e1f593f0000001";

U256 random_u256(std::mt19937_64& rng) {
  U256 out;
  for (auto& limb : out.limb) limb = rng();
  return out;
}

TEST(U256, HexRoundTrip) {
  U256 v = U256::from_hex(bn_p_hex);
  EXPECT_EQ(v.to_hex(), bn_p_hex);
  EXPECT_EQ(U256::from_hex("0x1").to_hex(),
            "0000000000000000000000000000000000000000000000000000000000000001");
}

TEST(U256, BytesRoundTrip) {
  std::mt19937_64 rng(1);
  for (int i = 0; i < 50; ++i) {
    U256 v = random_u256(rng);
    EXPECT_EQ(U256::from_be_bytes(v.to_be_bytes()), v);
  }
}

TEST(U256, FromHexRejectsBadInput) {
  EXPECT_THROW(U256::from_hex(""), std::invalid_argument);
  EXPECT_THROW(U256::from_hex(std::string(65, 'f')), std::invalid_argument);
}

TEST(U256, AddSubInverse) {
  std::mt19937_64 rng(2);
  for (int i = 0; i < 100; ++i) {
    U256 a = random_u256(rng);
    U256 b = random_u256(rng);
    U256 sum, back;
    std::uint64_t carry = ibbe::bigint::add_with_carry(a, b, sum);
    std::uint64_t borrow = ibbe::bigint::sub_with_borrow(sum, b, back);
    EXPECT_EQ(back, a);
    EXPECT_EQ(carry, borrow);  // overflow happened iff underflow undoes it
  }
}

TEST(U256, CmpAndBitLength) {
  EXPECT_EQ(ibbe::bigint::cmp(U256::zero(), U256::one()), -1);
  EXPECT_EQ(ibbe::bigint::cmp(U256::one(), U256::zero()), 1);
  EXPECT_EQ(ibbe::bigint::cmp(U256::one(), U256::one()), 0);
  EXPECT_EQ(U256::zero().bit_length(), 0u);
  EXPECT_EQ(U256::one().bit_length(), 1u);
  EXPECT_EQ(U256::from_u64(0x100).bit_length(), 9u);
  EXPECT_EQ(U256::from_hex(bn_p_hex).bit_length(), 254u);
}

TEST(U256, MulWideMatchesBigUInt) {
  std::mt19937_64 rng(3);
  for (int i = 0; i < 100; ++i) {
    U256 a = random_u256(rng);
    U256 b = random_u256(rng);
    auto wide = ibbe::bigint::mul_wide(a, b);
    BigUInt expect = BigUInt::from_u256(a) * BigUInt::from_u256(b);
    BigUInt got;
    for (int j = 7; j >= 0; --j) {
      got = (got << 64) + BigUInt(wide[static_cast<std::size_t>(j)]);
    }
    EXPECT_EQ(got, expect);
  }
}

TEST(U256, ModMatchesBigUInt) {
  std::mt19937_64 rng(4);
  U256 p = U256::from_hex(bn_p_hex);
  for (int i = 0; i < 100; ++i) {
    U256 a = random_u256(rng);
    U256 got = ibbe::bigint::mod(a, p);
    BigUInt expect = BigUInt::from_u256(a) % BigUInt::from_u256(p);
    EXPECT_EQ(BigUInt::from_u256(got), expect);
  }
}

TEST(U256, ModSmallerThanModulusIsIdentity) {
  U256 p = U256::from_hex(bn_p_hex);
  EXPECT_EQ(ibbe::bigint::mod(U256::one(), p), U256::one());
  EXPECT_EQ(ibbe::bigint::mod(U256::zero(), p), U256::zero());
}

TEST(BigUInt, HexAndDecimal) {
  BigUInt v = BigUInt::from_hex("ff");
  EXPECT_EQ(v.to_dec(), "255");
  EXPECT_EQ(v.to_hex(), "ff");
  EXPECT_EQ(BigUInt(0).to_dec(), "0");
  EXPECT_EQ(BigUInt(0).to_hex(), "0");
  // BN254 p in decimal, cross-checked against the literature.
  EXPECT_EQ(BigUInt::from_hex(bn_p_hex).to_dec(),
            "21888242871839275222246405745257275088696311157297823662689037894"
            "645226208583");
  EXPECT_EQ(BigUInt::from_hex(bn_r_hex).to_dec(),
            "21888242871839275222246405745257275088548364400416034343698204186"
            "575808495617");
}

TEST(BigUInt, AddSubMul) {
  BigUInt a = BigUInt::from_hex("ffffffffffffffffffffffffffffffff");
  BigUInt b(1);
  EXPECT_EQ((a + b).to_hex(), "100000000000000000000000000000000");
  EXPECT_EQ((a + b - b), a);
  EXPECT_EQ((a * a).to_hex(),
            "fffffffffffffffffffffffffffffffe00000000000000000000000000000001");
  EXPECT_THROW(b - a, std::underflow_error);
}

TEST(BigUInt, Shifts) {
  BigUInt one(1);
  EXPECT_EQ((one << 200) >> 200, one);
  EXPECT_EQ(((one << 64) >> 1).to_hex(), "8000000000000000");
  EXPECT_TRUE((one >> 1).is_zero());
  EXPECT_EQ((one << 0), one);
}

TEST(BigUInt, DivMod) {
  BigUInt a = BigUInt::from_hex("123456789abcdef0123456789abcdef0");
  BigUInt b = BigUInt::from_hex("fedcba987");
  auto [q, r] = BigUInt::divmod(a, b);
  EXPECT_EQ(q * b + r, a);
  EXPECT_TRUE(r < b);
  EXPECT_THROW(BigUInt::divmod(a, BigUInt{}), std::domain_error);
}

TEST(BigUInt, DivModRandomizedIdentity) {
  std::mt19937_64 rng(5);
  for (int i = 0; i < 100; ++i) {
    BigUInt a;
    for (int w = 0; w < 8; ++w) a = (a << 64) + BigUInt(rng());
    BigUInt b;
    int bw = 1 + static_cast<int>(rng() % 4);
    for (int w = 0; w < bw; ++w) b = (b << 64) + BigUInt(rng());
    if (b.is_zero()) continue;
    auto [q, r] = BigUInt::divmod(a, b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_TRUE(r < b);
  }
}

TEST(BigUInt, PowMod) {
  // Fermat's little theorem with BN254 r (prime): a^(r-1) = 1 mod r.
  BigUInt r = BigUInt::from_hex(bn_r_hex);
  BigUInt a = BigUInt::from_hex("abcdef0123456789");
  EXPECT_EQ(BigUInt::pow_mod(a, r - BigUInt(1), r), BigUInt(1));
  EXPECT_EQ(BigUInt::pow_mod(a, BigUInt(0), r), BigUInt(1));
  EXPECT_EQ(BigUInt::pow_mod(a, BigUInt(1), r), a % r);
}

TEST(BigUInt, InvMod) {
  BigUInt r = BigUInt::from_hex(bn_r_hex);
  std::mt19937_64 rng(6);
  for (int i = 0; i < 25; ++i) {
    BigUInt a;
    for (int w = 0; w < 4; ++w) a = (a << 64) + BigUInt(rng());
    a = a % r;
    if (a.is_zero()) continue;
    BigUInt inv = BigUInt::inv_mod(a, r);
    EXPECT_EQ((a * inv) % r, BigUInt(1));
  }
  EXPECT_THROW(BigUInt::inv_mod(BigUInt(0), r), std::domain_error);
}

TEST(BigUInt, InvModNonCoprimeThrows) {
  EXPECT_THROW(BigUInt::inv_mod(BigUInt(6), BigUInt(9)), std::domain_error);
}

TEST(BigUInt, BytesRoundTrip) {
  BigUInt a = BigUInt::from_hex("0123456789abcdef00ff");
  EXPECT_EQ(BigUInt::from_be_bytes(a.to_be_bytes()), a);
}

TEST(BigUInt, U256RoundTrip) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 50; ++i) {
    U256 v = random_u256(rng);
    EXPECT_EQ(BigUInt::from_u256(v).to_u256(), v);
  }
  EXPECT_THROW((void)(BigUInt(1) << 256).to_u256(), std::overflow_error);
}

class MontgomeryTest : public ::testing::TestWithParam<const char*> {};

INSTANTIATE_TEST_SUITE_P(Moduli, MontgomeryTest,
                         ::testing::Values(
                             // BN254 p, BN254 r, P-256 p, P-256 n
                             "30644e72e131a029b85045b68181585d97816a916871ca8d3c208c16d87cfd47",
                             "30644e72e131a029b85045b68181585d2833e84879b9709143e1f593f0000001",
                             "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff",
                             "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551"));

TEST_P(MontgomeryTest, ToFromMontRoundTrip) {
  MontgomeryCtx ctx(U256::from_hex(GetParam()));
  std::mt19937_64 rng(8);
  for (int i = 0; i < 50; ++i) {
    U256 a = ibbe::bigint::mod(random_u256(rng), ctx.modulus());
    EXPECT_EQ(ctx.from_mont(ctx.to_mont(a)), a);
  }
}

TEST_P(MontgomeryTest, MulMatchesBigUIntOracle) {
  MontgomeryCtx ctx(U256::from_hex(GetParam()));
  BigUInt n = BigUInt::from_u256(ctx.modulus());
  std::mt19937_64 rng(9);
  for (int i = 0; i < 100; ++i) {
    U256 a = ibbe::bigint::mod(random_u256(rng), ctx.modulus());
    U256 b = ibbe::bigint::mod(random_u256(rng), ctx.modulus());
    U256 got = ctx.from_mont(ctx.mul(ctx.to_mont(a), ctx.to_mont(b)));
    BigUInt expect = (BigUInt::from_u256(a) * BigUInt::from_u256(b)) % n;
    EXPECT_EQ(BigUInt::from_u256(got), expect);
  }
}

TEST_P(MontgomeryTest, AddSubNeg) {
  MontgomeryCtx ctx(U256::from_hex(GetParam()));
  BigUInt n = BigUInt::from_u256(ctx.modulus());
  std::mt19937_64 rng(10);
  for (int i = 0; i < 100; ++i) {
    U256 a = ibbe::bigint::mod(random_u256(rng), ctx.modulus());
    U256 b = ibbe::bigint::mod(random_u256(rng), ctx.modulus());
    EXPECT_EQ(BigUInt::from_u256(ctx.add(a, b)),
              (BigUInt::from_u256(a) + BigUInt::from_u256(b)) % n);
    EXPECT_EQ(ctx.sub(ctx.add(a, b), b), a);
    EXPECT_EQ(ctx.add(a, ctx.neg(a)), U256::zero());
  }
}

TEST_P(MontgomeryTest, PowMatchesOracle) {
  MontgomeryCtx ctx(U256::from_hex(GetParam()));
  BigUInt n = BigUInt::from_u256(ctx.modulus());
  std::mt19937_64 rng(11);
  for (int i = 0; i < 10; ++i) {
    U256 a = ibbe::bigint::mod(random_u256(rng), ctx.modulus());
    U256 e = random_u256(rng);
    U256 got = ctx.from_mont(ctx.pow(ctx.to_mont(a), e));
    BigUInt expect =
        BigUInt::pow_mod(BigUInt::from_u256(a), BigUInt::from_u256(e), n);
    EXPECT_EQ(BigUInt::from_u256(got), expect);
  }
}

TEST_P(MontgomeryTest, InverseOfProduct) {
  // All four moduli are prime, so Fermat inversion applies.
  MontgomeryCtx ctx(U256::from_hex(GetParam()));
  std::mt19937_64 rng(12);
  for (int i = 0; i < 20; ++i) {
    U256 a = ibbe::bigint::mod(random_u256(rng), ctx.modulus());
    if (a.is_zero()) continue;
    U256 am = ctx.to_mont(a);
    EXPECT_EQ(ctx.mul(am, ctx.inv(am)), ctx.one());
  }
  EXPECT_THROW((void)ctx.inv(U256::zero()), std::domain_error);
}

TEST_P(MontgomeryTest, OneIsMultiplicativeIdentity) {
  MontgomeryCtx ctx(U256::from_hex(GetParam()));
  std::mt19937_64 rng(13);
  U256 a = ibbe::bigint::mod(random_u256(rng), ctx.modulus());
  U256 am = ctx.to_mont(a);
  EXPECT_EQ(ctx.mul(am, ctx.one()), am);
  EXPECT_EQ(ctx.from_mont(ctx.one()), U256::one());
}

BigUInt biguint_from_limbs8(const std::uint64_t* limbs) {
  BigUInt out;
  for (int j = 7; j >= 0; --j) out = (out << 64) + BigUInt(limbs[j]);
  return out;
}

/// Worst-case operands for carry-chain bugs: near the modulus and with
/// saturated limbs.
std::vector<U256> adversarial_operands(const U256& n) {
  U256 n_minus_1, n_minus_2;
  ibbe::bigint::sub_with_borrow(n, U256::one(), n_minus_1);
  ibbe::bigint::sub_with_borrow(n, U256::from_u64(2), n_minus_2);
  std::vector<U256> out = {U256::zero(), U256::one(), n_minus_1, n_minus_2};
  // High-limb saturation patterns, reduced into the field.
  for (int pattern = 0; pattern < 4; ++pattern) {
    U256 v;
    for (int i = 0; i < 4; ++i) {
      v.limb[static_cast<std::size_t>(i)] =
          (pattern >> (i % 2)) & 1 ? ~std::uint64_t{0} : ~std::uint64_t{0} << 32;
    }
    out.push_back(ibbe::bigint::mod(v, n));
  }
  return out;
}

TEST_P(MontgomeryTest, MulWorstCaseOperandsMatchOracle) {
  MontgomeryCtx ctx(U256::from_hex(GetParam()));
  BigUInt n = BigUInt::from_u256(ctx.modulus());
  BigUInt r_inv = BigUInt::inv_mod((BigUInt(1) << 256) % n, n);
  auto ops = adversarial_operands(ctx.modulus());
  for (const U256& a : ops) {
    for (const U256& b : ops) {
      // Montgomery product of raw values: a*b*R^-1 mod n.
      BigUInt expect =
          (((BigUInt::from_u256(a) * BigUInt::from_u256(b)) % n) * r_inv) % n;
      EXPECT_EQ(BigUInt::from_u256(ctx.mul(a, b)), expect);
      BigUInt sq_expect =
          (((BigUInt::from_u256(a) * BigUInt::from_u256(a)) % n) * r_inv) % n;
      EXPECT_EQ(BigUInt::from_u256(ctx.sqr(a)), sq_expect);
    }
  }
}

TEST_P(MontgomeryTest, RedcMatchesOracleOnArbitrary512BitInput) {
  // redc accepts ANY t < 2^512 (the lazy-reduction tower feeds it sums of
  // products): check against the BigUInt oracle on random, saturated, and
  // near-2^512 inputs.
  MontgomeryCtx ctx(U256::from_hex(GetParam()));
  BigUInt n = BigUInt::from_u256(ctx.modulus());
  BigUInt r_inv = BigUInt::inv_mod((BigUInt(1) << 256) % n, n);
  std::mt19937_64 rng(14);
  for (int i = 0; i < 300; ++i) {
    U512 t;
    if (i == 0) {
      for (auto& limb : t.limb) limb = ~std::uint64_t{0};  // 2^512 - 1
    } else if (i == 1) {
      t.limb = {0, 0, 0, 0, 0, 0, 0, ~std::uint64_t{0}};  // top-limb only
    } else {
      for (auto& limb : t.limb) limb = rng();
    }
    BigUInt expect = ((biguint_from_limbs8(t.limb.data()) % n) * r_inv) % n;
    EXPECT_EQ(BigUInt::from_u256(ctx.redc(t)), expect);
  }
}

TEST_P(MontgomeryTest, SplitMulWideRedcEqualsFusedMul) {
  MontgomeryCtx ctx(U256::from_hex(GetParam()));
  std::mt19937_64 rng(15);
  for (int i = 0; i < 200; ++i) {
    U256 a = ibbe::bigint::mod(random_u256(rng), ctx.modulus());
    U256 b = ibbe::bigint::mod(random_u256(rng), ctx.modulus());
    EXPECT_EQ(ctx.redc(MontgomeryCtx::mul_wide(a, b)), ctx.mul(a, b));
  }
}

TEST_P(MontgomeryTest, AccumulatedCarryStress) {
  // The lazy-reduction pattern: sum several wide products (plus n^2 offsets)
  // and reduce once; must equal the sum of individually reduced products.
  // The accumulation depth the 512-bit word supports is 2^(512 - 2*bits(n))
  // — 16 for the 254-bit BN primes (the tower uses at most 12), 1 for the
  // 256-bit P-256 moduli, which is exactly why the lazy layer is BN-only.
  MontgomeryCtx ctx(U256::from_hex(GetParam()));
  const unsigned spare = 512 - 2 * ctx.modulus().bit_length();
  const int depth = spare >= 4 ? 12 : 1 << spare;
  std::mt19937_64 rng(16);
  U256 n_minus_1;
  ibbe::bigint::sub_with_borrow(ctx.modulus(), U256::one(), n_minus_1);
  for (int round = 0; round < 50; ++round) {
    U512 acc;
    U256 expect = U256::zero();
    for (int k = 0; k < depth; ++k) {
      U256 a = round == 0 ? n_minus_1
                          : ibbe::bigint::mod(random_u256(rng), ctx.modulus());
      U256 b = round == 0 ? n_minus_1
                          : ibbe::bigint::mod(random_u256(rng), ctx.modulus());
      std::uint64_t carry =
          ibbe::bigint::u512_add(acc, MontgomeryCtx::mul_wide(a, b));
      ASSERT_EQ(carry, 0u);
      expect = ctx.add(expect, ctx.mul(a, b));
    }
    EXPECT_EQ(ctx.redc(acc), expect);
  }
}

TEST(MontgomeryBackend, DifferentialFuzzAccelVsPortable) {
  // 10k random pairs through both backends, mul and sqr. On machines (or
  // builds) without the MULX/ADX path this degenerates to portable-vs-
  // portable and still checks the fused-vs-split agreement.
  std::printf("backend under test: %s\n", ibbe::bigint::backend::name());
  const U256 moduli[2] = {
      U256::from_hex(bn_p_hex),
      U256::from_hex(bn_r_hex),
  };
  std::mt19937_64 rng(17);
  for (const U256& n : moduli) {
    MontgomeryCtx ctx(n);
    for (int i = 0; i < 5000; ++i) {
      U256 a = ibbe::bigint::mod(random_u256(rng), n);
      U256 b = ibbe::bigint::mod(random_u256(rng), n);
      std::uint64_t fused[4], split_t[8], split[4];
      ibbe::bigint::backend::mont_mul_portable(
          fused, a.limb.data(), b.limb.data(), n.limb.data(),
          [&] {  // recompute n0inv the same way the ctx does
            std::uint64_t n0 = n.limb[0], x = n0;
            for (int r = 0; r < 6; ++r) x *= 2 - n0 * x;
            return ~x + 1;
          }());
      U256 fused_u{{fused[0], fused[1], fused[2], fused[3]}};
      // ctx.mul/sqr dispatch to the accelerated path when available; both
      // are compared against the PORTABLE fused CIOS (sqr via a genuinely
      // independent portable run, not via ctx.mul which would be the same
      // accelerated code path).
      EXPECT_EQ(ctx.mul(a, b), fused_u) << "mul diverged at iter " << i;
      std::uint64_t sq_fused[4];
      ibbe::bigint::backend::mont_mul_portable(
          sq_fused, a.limb.data(), a.limb.data(), n.limb.data(), [&] {
            std::uint64_t n0 = n.limb[0], x = n0;
            for (int r = 0; r < 6; ++r) x *= 2 - n0 * x;
            return ~x + 1;
          }());
      EXPECT_EQ(ctx.sqr(a),
                (U256{{sq_fused[0], sq_fused[1], sq_fused[2], sq_fused[3]}}))
          << "sqr diverged at iter " << i;
      // And the split pipeline must agree limb-for-limb with the portable
      // wide multiply.
      ibbe::bigint::backend::mul4_portable(split_t, a.limb.data(),
                                           b.limb.data());
      U512 wide = MontgomeryCtx::mul_wide(a, b);
      for (int j = 0; j < 8; ++j) {
        ASSERT_EQ(wide.limb[static_cast<std::size_t>(j)], split_t[j])
            << "mul_wide diverged at iter " << i << " limb " << j;
      }
      ibbe::bigint::backend::redc_portable(split, split_t, n.limb.data(), [&] {
        std::uint64_t n0 = n.limb[0], x = n0;
        for (int r = 0; r < 6; ++r) x *= 2 - n0 * x;
        return ~x + 1;
      }());
      EXPECT_EQ(ctx.redc(wide), (U256{{split[0], split[1], split[2], split[3]}}))
          << "redc diverged at iter " << i;
    }
  }
}

TEST(Montgomery, RejectsEvenModulus) {
  EXPECT_THROW(MontgomeryCtx(U256::from_u64(100)), std::invalid_argument);
  EXPECT_THROW(MontgomeryCtx(U256::from_u64(1)), std::invalid_argument);
}

TEST(Montgomery, PowWithBigUIntExponent) {
  MontgomeryCtx ctx(U256::from_hex(bn_r_hex));
  // a^(r-1) == 1 (Fermat), exercised through the BigUInt-exponent overload.
  U256 a = U256::from_u64(123456789);
  BigUInt e = BigUInt::from_hex(bn_r_hex) - BigUInt(1);
  EXPECT_EQ(ctx.pow(ctx.to_mont(a), e), ctx.one());
}

}  // namespace
