#include <gtest/gtest.h>

#include <random>

#include "bigint/biguint.h"
#include "bigint/mont.h"
#include "bigint/u256.h"

namespace {

using ibbe::bigint::BigUInt;
using ibbe::bigint::MontgomeryCtx;
using ibbe::bigint::U256;

// BN254 base-field and scalar-field moduli; used throughout as realistic test
// primes.
const char* const bn_p_hex =
    "30644e72e131a029b85045b68181585d97816a916871ca8d3c208c16d87cfd47";
const char* const bn_r_hex =
    "30644e72e131a029b85045b68181585d2833e84879b9709143e1f593f0000001";

U256 random_u256(std::mt19937_64& rng) {
  U256 out;
  for (auto& limb : out.limb) limb = rng();
  return out;
}

TEST(U256, HexRoundTrip) {
  U256 v = U256::from_hex(bn_p_hex);
  EXPECT_EQ(v.to_hex(), bn_p_hex);
  EXPECT_EQ(U256::from_hex("0x1").to_hex(),
            "0000000000000000000000000000000000000000000000000000000000000001");
}

TEST(U256, BytesRoundTrip) {
  std::mt19937_64 rng(1);
  for (int i = 0; i < 50; ++i) {
    U256 v = random_u256(rng);
    EXPECT_EQ(U256::from_be_bytes(v.to_be_bytes()), v);
  }
}

TEST(U256, FromHexRejectsBadInput) {
  EXPECT_THROW(U256::from_hex(""), std::invalid_argument);
  EXPECT_THROW(U256::from_hex(std::string(65, 'f')), std::invalid_argument);
}

TEST(U256, AddSubInverse) {
  std::mt19937_64 rng(2);
  for (int i = 0; i < 100; ++i) {
    U256 a = random_u256(rng);
    U256 b = random_u256(rng);
    U256 sum, back;
    std::uint64_t carry = ibbe::bigint::add_with_carry(a, b, sum);
    std::uint64_t borrow = ibbe::bigint::sub_with_borrow(sum, b, back);
    EXPECT_EQ(back, a);
    EXPECT_EQ(carry, borrow);  // overflow happened iff underflow undoes it
  }
}

TEST(U256, CmpAndBitLength) {
  EXPECT_EQ(ibbe::bigint::cmp(U256::zero(), U256::one()), -1);
  EXPECT_EQ(ibbe::bigint::cmp(U256::one(), U256::zero()), 1);
  EXPECT_EQ(ibbe::bigint::cmp(U256::one(), U256::one()), 0);
  EXPECT_EQ(U256::zero().bit_length(), 0u);
  EXPECT_EQ(U256::one().bit_length(), 1u);
  EXPECT_EQ(U256::from_u64(0x100).bit_length(), 9u);
  EXPECT_EQ(U256::from_hex(bn_p_hex).bit_length(), 254u);
}

TEST(U256, MulWideMatchesBigUInt) {
  std::mt19937_64 rng(3);
  for (int i = 0; i < 100; ++i) {
    U256 a = random_u256(rng);
    U256 b = random_u256(rng);
    auto wide = ibbe::bigint::mul_wide(a, b);
    BigUInt expect = BigUInt::from_u256(a) * BigUInt::from_u256(b);
    BigUInt got;
    for (int j = 7; j >= 0; --j) {
      got = (got << 64) + BigUInt(wide[static_cast<std::size_t>(j)]);
    }
    EXPECT_EQ(got, expect);
  }
}

TEST(U256, ModMatchesBigUInt) {
  std::mt19937_64 rng(4);
  U256 p = U256::from_hex(bn_p_hex);
  for (int i = 0; i < 100; ++i) {
    U256 a = random_u256(rng);
    U256 got = ibbe::bigint::mod(a, p);
    BigUInt expect = BigUInt::from_u256(a) % BigUInt::from_u256(p);
    EXPECT_EQ(BigUInt::from_u256(got), expect);
  }
}

TEST(U256, ModSmallerThanModulusIsIdentity) {
  U256 p = U256::from_hex(bn_p_hex);
  EXPECT_EQ(ibbe::bigint::mod(U256::one(), p), U256::one());
  EXPECT_EQ(ibbe::bigint::mod(U256::zero(), p), U256::zero());
}

TEST(BigUInt, HexAndDecimal) {
  BigUInt v = BigUInt::from_hex("ff");
  EXPECT_EQ(v.to_dec(), "255");
  EXPECT_EQ(v.to_hex(), "ff");
  EXPECT_EQ(BigUInt(0).to_dec(), "0");
  EXPECT_EQ(BigUInt(0).to_hex(), "0");
  // BN254 p in decimal, cross-checked against the literature.
  EXPECT_EQ(BigUInt::from_hex(bn_p_hex).to_dec(),
            "21888242871839275222246405745257275088696311157297823662689037894"
            "645226208583");
  EXPECT_EQ(BigUInt::from_hex(bn_r_hex).to_dec(),
            "21888242871839275222246405745257275088548364400416034343698204186"
            "575808495617");
}

TEST(BigUInt, AddSubMul) {
  BigUInt a = BigUInt::from_hex("ffffffffffffffffffffffffffffffff");
  BigUInt b(1);
  EXPECT_EQ((a + b).to_hex(), "100000000000000000000000000000000");
  EXPECT_EQ((a + b - b), a);
  EXPECT_EQ((a * a).to_hex(),
            "fffffffffffffffffffffffffffffffe00000000000000000000000000000001");
  EXPECT_THROW(b - a, std::underflow_error);
}

TEST(BigUInt, Shifts) {
  BigUInt one(1);
  EXPECT_EQ((one << 200) >> 200, one);
  EXPECT_EQ(((one << 64) >> 1).to_hex(), "8000000000000000");
  EXPECT_TRUE((one >> 1).is_zero());
  EXPECT_EQ((one << 0), one);
}

TEST(BigUInt, DivMod) {
  BigUInt a = BigUInt::from_hex("123456789abcdef0123456789abcdef0");
  BigUInt b = BigUInt::from_hex("fedcba987");
  auto [q, r] = BigUInt::divmod(a, b);
  EXPECT_EQ(q * b + r, a);
  EXPECT_TRUE(r < b);
  EXPECT_THROW(BigUInt::divmod(a, BigUInt{}), std::domain_error);
}

TEST(BigUInt, DivModRandomizedIdentity) {
  std::mt19937_64 rng(5);
  for (int i = 0; i < 100; ++i) {
    BigUInt a;
    for (int w = 0; w < 8; ++w) a = (a << 64) + BigUInt(rng());
    BigUInt b;
    int bw = 1 + static_cast<int>(rng() % 4);
    for (int w = 0; w < bw; ++w) b = (b << 64) + BigUInt(rng());
    if (b.is_zero()) continue;
    auto [q, r] = BigUInt::divmod(a, b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_TRUE(r < b);
  }
}

TEST(BigUInt, PowMod) {
  // Fermat's little theorem with BN254 r (prime): a^(r-1) = 1 mod r.
  BigUInt r = BigUInt::from_hex(bn_r_hex);
  BigUInt a = BigUInt::from_hex("abcdef0123456789");
  EXPECT_EQ(BigUInt::pow_mod(a, r - BigUInt(1), r), BigUInt(1));
  EXPECT_EQ(BigUInt::pow_mod(a, BigUInt(0), r), BigUInt(1));
  EXPECT_EQ(BigUInt::pow_mod(a, BigUInt(1), r), a % r);
}

TEST(BigUInt, InvMod) {
  BigUInt r = BigUInt::from_hex(bn_r_hex);
  std::mt19937_64 rng(6);
  for (int i = 0; i < 25; ++i) {
    BigUInt a;
    for (int w = 0; w < 4; ++w) a = (a << 64) + BigUInt(rng());
    a = a % r;
    if (a.is_zero()) continue;
    BigUInt inv = BigUInt::inv_mod(a, r);
    EXPECT_EQ((a * inv) % r, BigUInt(1));
  }
  EXPECT_THROW(BigUInt::inv_mod(BigUInt(0), r), std::domain_error);
}

TEST(BigUInt, InvModNonCoprimeThrows) {
  EXPECT_THROW(BigUInt::inv_mod(BigUInt(6), BigUInt(9)), std::domain_error);
}

TEST(BigUInt, BytesRoundTrip) {
  BigUInt a = BigUInt::from_hex("0123456789abcdef00ff");
  EXPECT_EQ(BigUInt::from_be_bytes(a.to_be_bytes()), a);
}

TEST(BigUInt, U256RoundTrip) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 50; ++i) {
    U256 v = random_u256(rng);
    EXPECT_EQ(BigUInt::from_u256(v).to_u256(), v);
  }
  EXPECT_THROW((void)(BigUInt(1) << 256).to_u256(), std::overflow_error);
}

class MontgomeryTest : public ::testing::TestWithParam<const char*> {};

INSTANTIATE_TEST_SUITE_P(Moduli, MontgomeryTest,
                         ::testing::Values(
                             // BN254 p, BN254 r, P-256 p, P-256 n
                             "30644e72e131a029b85045b68181585d97816a916871ca8d3c208c16d87cfd47",
                             "30644e72e131a029b85045b68181585d2833e84879b9709143e1f593f0000001",
                             "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff",
                             "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551"));

TEST_P(MontgomeryTest, ToFromMontRoundTrip) {
  MontgomeryCtx ctx(U256::from_hex(GetParam()));
  std::mt19937_64 rng(8);
  for (int i = 0; i < 50; ++i) {
    U256 a = ibbe::bigint::mod(random_u256(rng), ctx.modulus());
    EXPECT_EQ(ctx.from_mont(ctx.to_mont(a)), a);
  }
}

TEST_P(MontgomeryTest, MulMatchesBigUIntOracle) {
  MontgomeryCtx ctx(U256::from_hex(GetParam()));
  BigUInt n = BigUInt::from_u256(ctx.modulus());
  std::mt19937_64 rng(9);
  for (int i = 0; i < 100; ++i) {
    U256 a = ibbe::bigint::mod(random_u256(rng), ctx.modulus());
    U256 b = ibbe::bigint::mod(random_u256(rng), ctx.modulus());
    U256 got = ctx.from_mont(ctx.mul(ctx.to_mont(a), ctx.to_mont(b)));
    BigUInt expect = (BigUInt::from_u256(a) * BigUInt::from_u256(b)) % n;
    EXPECT_EQ(BigUInt::from_u256(got), expect);
  }
}

TEST_P(MontgomeryTest, AddSubNeg) {
  MontgomeryCtx ctx(U256::from_hex(GetParam()));
  BigUInt n = BigUInt::from_u256(ctx.modulus());
  std::mt19937_64 rng(10);
  for (int i = 0; i < 100; ++i) {
    U256 a = ibbe::bigint::mod(random_u256(rng), ctx.modulus());
    U256 b = ibbe::bigint::mod(random_u256(rng), ctx.modulus());
    EXPECT_EQ(BigUInt::from_u256(ctx.add(a, b)),
              (BigUInt::from_u256(a) + BigUInt::from_u256(b)) % n);
    EXPECT_EQ(ctx.sub(ctx.add(a, b), b), a);
    EXPECT_EQ(ctx.add(a, ctx.neg(a)), U256::zero());
  }
}

TEST_P(MontgomeryTest, PowMatchesOracle) {
  MontgomeryCtx ctx(U256::from_hex(GetParam()));
  BigUInt n = BigUInt::from_u256(ctx.modulus());
  std::mt19937_64 rng(11);
  for (int i = 0; i < 10; ++i) {
    U256 a = ibbe::bigint::mod(random_u256(rng), ctx.modulus());
    U256 e = random_u256(rng);
    U256 got = ctx.from_mont(ctx.pow(ctx.to_mont(a), e));
    BigUInt expect =
        BigUInt::pow_mod(BigUInt::from_u256(a), BigUInt::from_u256(e), n);
    EXPECT_EQ(BigUInt::from_u256(got), expect);
  }
}

TEST_P(MontgomeryTest, InverseOfProduct) {
  // All four moduli are prime, so Fermat inversion applies.
  MontgomeryCtx ctx(U256::from_hex(GetParam()));
  std::mt19937_64 rng(12);
  for (int i = 0; i < 20; ++i) {
    U256 a = ibbe::bigint::mod(random_u256(rng), ctx.modulus());
    if (a.is_zero()) continue;
    U256 am = ctx.to_mont(a);
    EXPECT_EQ(ctx.mul(am, ctx.inv(am)), ctx.one());
  }
  EXPECT_THROW((void)ctx.inv(U256::zero()), std::domain_error);
}

TEST_P(MontgomeryTest, OneIsMultiplicativeIdentity) {
  MontgomeryCtx ctx(U256::from_hex(GetParam()));
  std::mt19937_64 rng(13);
  U256 a = ibbe::bigint::mod(random_u256(rng), ctx.modulus());
  U256 am = ctx.to_mont(a);
  EXPECT_EQ(ctx.mul(am, ctx.one()), am);
  EXPECT_EQ(ctx.from_mont(ctx.one()), U256::one());
}

TEST(Montgomery, RejectsEvenModulus) {
  EXPECT_THROW(MontgomeryCtx(U256::from_u64(100)), std::invalid_argument);
  EXPECT_THROW(MontgomeryCtx(U256::from_u64(1)), std::invalid_argument);
}

TEST(Montgomery, PowWithBigUIntExponent) {
  MontgomeryCtx ctx(U256::from_hex(bn_r_hex));
  // a^(r-1) == 1 (Fermat), exercised through the BigUInt-exponent overload.
  U256 a = U256::from_u64(123456789);
  BigUInt e = BigUInt::from_hex(bn_r_hex) - BigUInt(1);
  EXPECT_EQ(ctx.pow(ctx.to_mont(a), e), ctx.one());
}

}  // namespace
