#include <gtest/gtest.h>

#include <set>
#include <string>

#include "crypto/aes256.h"
#include "crypto/chacha20.h"
#include "crypto/drbg.h"
#include "crypto/gcm.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "util/hex.h"

namespace {

using ibbe::crypto::Aes256;
using ibbe::crypto::Aes256Gcm;
using ibbe::crypto::ChaCha20;
using ibbe::crypto::Drbg;
using ibbe::crypto::Sha256;
using ibbe::util::Bytes;
using ibbe::util::from_hex;
using ibbe::util::to_hex;

std::string digest_hex(const Sha256::Digest& d) { return to_hex(d); }

// ---------------------------------------------------------------- SHA-256

TEST(Sha256, Fips180EmptyString) {
  EXPECT_EQ(digest_hex(Sha256::hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Fips180Abc) {
  EXPECT_EQ(digest_hex(Sha256::hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, Fips180TwoBlocks) {
  EXPECT_EQ(digest_hex(Sha256::hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(digest_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  std::string msg =
      "The quick brown fox jumps over the lazy dog, repeatedly and at odd "
      "block boundaries.";
  for (std::size_t split = 0; split <= msg.size(); split += 7) {
    Sha256 h;
    h.update(std::string_view(msg).substr(0, split));
    h.update(std::string_view(msg).substr(split));
    EXPECT_EQ(h.finish(), Sha256::hash(msg));
  }
}

TEST(Sha256, ExactBlockBoundary) {
  std::string block64(64, 'x');
  Sha256 h;
  h.update(block64);
  EXPECT_EQ(h.finish(), Sha256::hash(block64));
}

// ------------------------------------------------------------------ HMAC

TEST(Hmac, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  std::string data = "Hi There";
  auto mac = ibbe::crypto::hmac_sha256(
      key, {reinterpret_cast<const std::uint8_t*>(data.data()), data.size()});
  EXPECT_EQ(to_hex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  std::string key = "Jefe";
  std::string data = "what do ya want for nothing?";
  auto mac = ibbe::crypto::hmac_sha256(
      {reinterpret_cast<const std::uint8_t*>(key.data()), key.size()},
      {reinterpret_cast<const std::uint8_t*>(data.data()), data.size()});
  EXPECT_EQ(to_hex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3LongKeyBlocks) {
  Bytes key(20, 0xaa);
  Bytes data(50, 0xdd);
  auto mac = ibbe::crypto::hmac_sha256(key, data);
  EXPECT_EQ(to_hex(mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case6KeyLargerThanBlock) {
  Bytes key(131, 0xaa);
  std::string data = "Test Using Larger Than Block-Size Key - Hash Key First";
  auto mac = ibbe::crypto::hmac_sha256(
      key, {reinterpret_cast<const std::uint8_t*>(data.data()), data.size()});
  EXPECT_EQ(to_hex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// ------------------------------------------------------------------ HKDF

TEST(Hkdf, Rfc5869Case1) {
  Bytes ikm(22, 0x0b);
  Bytes salt = from_hex("000102030405060708090a0b0c");
  auto prk = ibbe::crypto::hkdf_extract(salt, ikm);
  EXPECT_EQ(to_hex(prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");
  Bytes info = from_hex("f0f1f2f3f4f5f6f7f8f9");
  auto okm = ibbe::crypto::hkdf_expand(
      prk, std::string_view(reinterpret_cast<const char*>(info.data()), info.size()),
      42);
  EXPECT_EQ(to_hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, EmptySaltUsesZeros) {
  Bytes ikm(22, 0x0b);
  auto okm = ibbe::crypto::hkdf({}, ikm, "", 42);
  // RFC 5869 test case 3.
  EXPECT_EQ(to_hex(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(Hkdf, RejectsOversizedOutput) {
  Bytes prk(32, 1);
  EXPECT_THROW(ibbe::crypto::hkdf_expand(prk, "", 255 * 32 + 1),
               std::invalid_argument);
}

// ----------------------------------------------------------------- AES-256

TEST(Aes256, Fips197Example) {
  auto key = from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  Aes256 cipher(key);
  Aes256::Block block;
  auto pt = from_hex("00112233445566778899aabbccddeeff");
  std::copy(pt.begin(), pt.end(), block.begin());
  cipher.encrypt_block(block);
  EXPECT_EQ(to_hex(block), "8ea2b7ca516745bfeafc49904b496089");
}

TEST(Aes256, NistSp800_38aEcbVectors) {
  auto key = from_hex("603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4");
  Aes256 cipher(key);
  const char* pts[] = {"6bc1bee22e409f96e93d7e117393172a",
                       "ae2d8a571e03ac9c9eb76fac45af8e51",
                       "30c81c46a35ce411e5fbc1191a0a52ef",
                       "f69f2445df4f9b17ad2b417be66c3710"};
  const char* cts[] = {"f3eed1bdb5d2a03c064b5a7e3db181f8",
                       "591ccb10d410ed26dc5ba74a31362870",
                       "b6ed21b99ca6f4f9f153e7b1beafed1d",
                       "23304b7a39f9f3ff067d8d8f9e24ecc7"};
  for (int i = 0; i < 4; ++i) {
    Aes256::Block block;
    auto pt = from_hex(pts[i]);
    std::copy(pt.begin(), pt.end(), block.begin());
    cipher.encrypt_block(block);
    EXPECT_EQ(to_hex(block), cts[i]) << "vector " << i;
  }
}

TEST(Aes256, RejectsBadKeySize) {
  Bytes short_key(16, 0);
  EXPECT_THROW(Aes256 cipher(short_key), std::invalid_argument);
}

TEST(Aes256Ctr, XorTwiceIsIdentity) {
  Bytes key(32, 7);
  Aes256 cipher(key);
  Bytes iv(12, 3);
  Bytes msg(100);
  for (std::size_t i = 0; i < msg.size(); ++i) msg[i] = static_cast<std::uint8_t>(i);
  Bytes ct(msg.size()), back(msg.size());
  ibbe::crypto::aes256_ctr_xor(cipher, iv, 2, msg, ct);
  EXPECT_NE(ct, msg);
  ibbe::crypto::aes256_ctr_xor(cipher, iv, 2, ct, back);
  EXPECT_EQ(back, msg);
}

// ------------------------------------------------------------------- GCM

TEST(Aes256Gcm, NistCase13EmptyEverything) {
  Bytes key(32, 0);
  Aes256Gcm gcm(key);
  Bytes nonce(12, 0);
  auto sealed = gcm.seal(nonce, {});
  EXPECT_EQ(to_hex(sealed), "530f8afbc74536b9a963b4f1c4cb738b");
}

TEST(Aes256Gcm, NistCase14SingleZeroBlock) {
  Bytes key(32, 0);
  Aes256Gcm gcm(key);
  Bytes nonce(12, 0);
  Bytes pt(16, 0);
  auto sealed = gcm.seal(nonce, pt);
  EXPECT_EQ(to_hex(sealed),
            "cea7403d4d606b6e074ec5d3baf39d18d0d1c8a799996bf0265b98b5d48ab919");
}

TEST(Aes256Gcm, NistCase15FourBlocks) {
  auto key = from_hex(
      "feffe9928665731c6d6a8f9467308308feffe9928665731c6d6a8f9467308308");
  Aes256Gcm gcm(key);
  auto nonce = from_hex("cafebabefacedbaddecaf888");
  auto pt = from_hex(
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255");
  auto sealed = gcm.seal(nonce, pt);
  EXPECT_EQ(to_hex(sealed),
            "522dc1f099567d07f47f37a32a84427d643a8cdcbfe5c0c97598a2bd2555d1aa"
            "8cb08e48590dbb3da7b08b1056828838c5f61e6393ba7a0abcc9f662898015ad"
            "b094dac5d93471bdec1a502270e3cc6c");
}

TEST(Aes256Gcm, SealOpenRoundTripWithAad) {
  Bytes key(32, 0x42);
  Aes256Gcm gcm(key);
  Bytes nonce(12, 0x24);
  Bytes pt = {'s', 'e', 'c', 'r', 'e', 't'};
  Bytes aad = {'h', 'd', 'r'};
  auto sealed = gcm.seal(nonce, pt, aad);
  auto opened = gcm.open(nonce, sealed, aad);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, pt);
}

TEST(Aes256Gcm, TamperedCiphertextFailsOpen) {
  Bytes key(32, 0x42);
  Aes256Gcm gcm(key);
  Bytes nonce(12, 0x24);
  Bytes pt(40, 0x11);
  auto sealed = gcm.seal(nonce, pt);
  sealed[5] ^= 1;
  EXPECT_FALSE(gcm.open(nonce, sealed).has_value());
}

TEST(Aes256Gcm, TamperedTagFailsOpen) {
  Bytes key(32, 0x42);
  Aes256Gcm gcm(key);
  Bytes nonce(12, 0x24);
  Bytes pt(40, 0x11);
  auto sealed = gcm.seal(nonce, pt);
  sealed.back() ^= 1;
  EXPECT_FALSE(gcm.open(nonce, sealed).has_value());
}

TEST(Aes256Gcm, WrongAadFailsOpen) {
  Bytes key(32, 0x42);
  Aes256Gcm gcm(key);
  Bytes nonce(12, 0x24);
  Bytes pt(5, 0x11);
  Bytes aad = {1, 2, 3};
  auto sealed = gcm.seal(nonce, pt, aad);
  Bytes other_aad = {1, 2, 4};
  EXPECT_FALSE(gcm.open(nonce, sealed, other_aad).has_value());
  EXPECT_TRUE(gcm.open(nonce, sealed, aad).has_value());
}

TEST(Aes256Gcm, WrongNonceFailsOpen) {
  Bytes key(32, 0x42);
  Aes256Gcm gcm(key);
  Bytes nonce(12, 0x24), other(12, 0x25);
  auto sealed = gcm.seal(nonce, Bytes(8, 1));
  EXPECT_FALSE(gcm.open(other, sealed).has_value());
}

TEST(Aes256Gcm, TruncatedInputFailsOpen) {
  Bytes key(32, 0x42);
  Aes256Gcm gcm(key);
  Bytes nonce(12, 0);
  EXPECT_FALSE(gcm.open(nonce, Bytes(10, 0)).has_value());
}

// --------------------------------------------------------------- ChaCha20

TEST(ChaCha20, Rfc8439KeystreamBlock) {
  auto key = from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  auto nonce = from_hex("000000090000004a00000000");
  ChaCha20 stream(key, nonce, 1);
  Bytes block(64);
  stream.next_block(block);
  EXPECT_EQ(to_hex(block),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaCha20, CounterAdvances) {
  Bytes key(32, 1), nonce(12, 2);
  ChaCha20 stream(key, nonce);
  Bytes b1(64), b2(64);
  stream.next_block(b1);
  stream.next_block(b2);
  EXPECT_NE(b1, b2);
}

// ------------------------------------------------------------------ DRBG

TEST(Drbg, DeterministicWithSeed) {
  Drbg a(1234), b(1234), c(1235);
  auto x = a.bytes(48);
  EXPECT_EQ(x, b.bytes(48));
  EXPECT_NE(x, c.bytes(48));
}

TEST(Drbg, OsSeededInstancesDiffer) {
  Drbg a, b;
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(Drbg, UniformStaysInBound) {
  Drbg rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    auto v = rng.uniform(17);
    EXPECT_LT(v, 17u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 17u);  // every residue hit over 2000 draws
  EXPECT_THROW((void)rng.uniform(0), std::invalid_argument);
}

TEST(Drbg, FillCrossesBlockBoundaries) {
  Drbg a(7);
  Bytes one_shot = a.bytes(200);
  Drbg b(7);
  Bytes pieces;
  for (std::size_t n : {1u, 63u, 64u, 65u, 7u}) {
    auto chunk = b.bytes(n);
    pieces.insert(pieces.end(), chunk.begin(), chunk.end());
  }
  ASSERT_EQ(pieces.size(), 200u);
  EXPECT_EQ(pieces, one_shot);
}

}  // namespace
