// Shared RNG / sample-scalar / sample-point helpers for the test suites.
//
// Before this header every suite carried its own copy of the same four
// helpers (a seeded mt19937_64, random_u256, random_fr, and a
// generator-times-random sample point); the differential strategy tests
// made the duplication untenable. Everything here is deterministic — one
// fixed seed per test binary — so failures reproduce.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "bigint/biguint.h"
#include "bigint/u256.h"
#include "ec/curves.h"
#include "field/fields.h"
#include "field/fp12.h"
#include "pairing/pairing.h"

namespace ibbe::testutil {

/// The BN254 curve parameter u = 4965661367192848881, pinned independently
/// of the library so edge scalars don't inherit a library transcription bug.
inline constexpr std::uint64_t kBnU = 0x44e992b44a6909f1ULL;

/// Process-wide deterministic RNG.
inline std::mt19937_64& rng() {
  static std::mt19937_64 gen(42);
  return gen;
}

inline bigint::U256 random_u256() {
  bigint::U256 v;
  for (auto& limb : v.limb) limb = rng()();
  return v;
}

inline field::Fr random_fr() {
  return field::Fr::from_u256_reduce(random_u256());
}

inline field::Fr random_nonzero_fr() {
  field::Fr k = random_fr();
  return k.is_zero() ? field::Fr::one() : k;
}

/// Random subgroup points (uniform up to the negligible bias of a 256-bit
/// scalar mod r), via the endomorphism-free double-and-add oracle so the
/// sample itself cannot depend on the machinery under test.
inline ec::G1 random_g1() {
  return ec::G1::generator().scalar_mul(random_u256());
}

inline ec::G2 random_g2() {
  return ec::G2::generator().scalar_mul(random_u256());
}

/// A random order-r element of GT: e(aG1, bG2) for random nonzero a, b.
inline field::Fp12 random_gt() {
  return ibbe::pairing::pairing(ec::G1::generator().mul(random_nonzero_fr()),
                                ec::G2::generator().mul(random_nonzero_fr()))
      .value();
}

/// Edge-case scalars for scalar-multiplication and decomposition tests:
/// 0, 1, 2, the group-order neighborhood r-1 / r / r+1, the curve parameter
/// u and the psi/Frobenius eigenvalue mu = 6u^2 with its neighbors, the
/// lattice-basis-norm boundaries (the 4-dim psi basis entries are +-u,
/// +-(u+1), +-2u, +-(2u+1); their column l1-norm is 6u+2, and the Babai
/// rounding flips at half-norm multiples), powers of mu (so a single
/// sub-scalar exercises each basis dimension), floor(r/2) and its
/// neighbor (the rounding midpoint), and the all-ones 2^256 - 1.
inline std::vector<bigint::U256> edge_scalars() {
  using bigint::BigUInt;
  using bigint::U256;
  const BigUInt r = BigUInt::from_u256(field::Fr::modulus());
  const BigUInt u(kBnU);
  const BigUInt mu = BigUInt(6) * u * u;

  std::vector<BigUInt> big{
      BigUInt(0),
      BigUInt(1),
      BigUInt(2),
      r - BigUInt(1),
      r,
      r + BigUInt(1),
      u,
      u - BigUInt(1),
      u + BigUInt(1),
      BigUInt(2) * u,
      BigUInt(2) * u + BigUInt(1),
      BigUInt(6) * u + BigUInt(2),              // basis column l1-norm
      (BigUInt(6) * u + BigUInt(2)) / BigUInt(2),  // half-norm boundary
      mu - BigUInt(1),
      mu,
      mu + BigUInt(1),
      mu * mu % r,
      mu * mu % r * mu % r,
      r / BigUInt(2),
      r / BigUInt(2) + BigUInt(1),
  };
  std::vector<U256> out;
  out.reserve(big.size() + 1);
  for (const auto& b : big) out.push_back(b.to_u256());
  out.push_back(U256{{~0ull, ~0ull, ~0ull, ~0ull}});
  return out;
}

}  // namespace ibbe::testutil
