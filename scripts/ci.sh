#!/usr/bin/env bash
# Harness-level CI: configure, build, run the test suite, then run every
# bench binary at --scale smoke (and a short micro-crypto sweep) so that a
# perf regression or bit-rotted bench fails the pipeline, not just a broken
# unit test. Also emits BENCH_scalar.json (pairing, G1/G2 mul, MSM-64,
# decrypt-16) so future revisions have a perf trajectory to diff against.
#
# Usage: scripts/ci.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
JOBS="$(nproc)"

# The build tree must stay out of version control: refuse to build into a
# directory git would track (build/ is in .gitignore; anything else needs to
# be ignored too, or live outside the work tree).
if git rev-parse --is-inside-work-tree > /dev/null 2>&1; then
  ignore_status=0
  git check-ignore -q "$BUILD_DIR/.ci-probe" 2> /dev/null || ignore_status=$?
  # 0 = ignored (fine); 128 = outside the work tree (also fine); 1 = a
  # build into the work tree that git would pick up.
  if [ "$ignore_status" -eq 1 ]; then
    echo "ci.sh: build dir '$BUILD_DIR' is not git-ignored;" \
         "add it to .gitignore or build outside the work tree" >&2
    exit 1
  fi
fi

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS"

# Figure/table reproduction benches, smoke scale (seconds each).
for bench in "$BUILD_DIR"/bench_fig* "$BUILD_DIR"/bench_table* \
             "$BUILD_DIR"/bench_ablation*; do
  [ -x "$bench" ] || continue
  echo "==> $bench --scale smoke"
  "$bench" --scale smoke
done

# Scalar-multiplication perf trajectory: machine-readable summary for
# cross-revision diffing.
echo "==> $BUILD_DIR/bench_scalar_suite"
"$BUILD_DIR/bench_scalar_suite" --scale smoke --json "$BUILD_DIR/BENCH_scalar.json"
cat "$BUILD_DIR/BENCH_scalar.json"

# Micro benches of the crypto substrate (built only when google-benchmark is
# available); keep the run short — this is a regression tripwire, not a
# measurement.
if [ -x "$BUILD_DIR/bench_micro_crypto" ]; then
  echo "==> $BUILD_DIR/bench_micro_crypto (smoke)"
  "$BUILD_DIR/bench_micro_crypto" \
    --benchmark_filter='FrInverse|G1ScalarMul|G1MulGlv|G2MulGls|MsmG2|GtExp|Pairing' \
    --benchmark_min_time=0.05
fi

echo "ci.sh: all stages passed"
