#!/usr/bin/env bash
# Harness-level CI: configure, build, run the test suite, then run every
# bench binary at --scale smoke (and a short micro-crypto sweep) so that a
# perf regression or bit-rotted bench fails the pipeline, not just a broken
# unit test.
#
# Usage: scripts/ci.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
JOBS="$(nproc)"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS"

# Figure/table reproduction benches, smoke scale (seconds each).
for bench in "$BUILD_DIR"/bench_fig* "$BUILD_DIR"/bench_table* \
             "$BUILD_DIR"/bench_ablation*; do
  [ -x "$bench" ] || continue
  echo "==> $bench --scale smoke"
  "$bench" --scale smoke
done

# Micro benches of the crypto substrate (built only when google-benchmark is
# available); keep the run short — this is a regression tripwire, not a
# measurement.
if [ -x "$BUILD_DIR/bench_micro_crypto" ]; then
  echo "==> $BUILD_DIR/bench_micro_crypto (smoke)"
  "$BUILD_DIR/bench_micro_crypto" \
    --benchmark_filter='FrInverse|G1ScalarMul|GtExp|Pairing' \
    --benchmark_min_time=0.05
fi

echo "ci.sh: all stages passed"
