#!/usr/bin/env bash
# Harness-level CI: docs checks (module READMEs present, markdown links
# resolve), configure, build, run the test suite, then run every bench
# binary at --scale smoke (and a short micro-crypto sweep) so that a perf
# regression or bit-rotted bench fails the pipeline, not just a broken unit
# test. Also emits BENCH_scalar.json (pairing / G1 / G2 / GT exponentiation
# / MSM-64 / decrypt-16 / batched decrypt; schema in docs/benchmarks.md) so
# future revisions have a perf trajectory to diff against.
#
# Usage: scripts/ci.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
JOBS="$(nproc)"

# The build tree must stay out of version control: refuse to build into a
# directory git would track (build/ is in .gitignore; anything else needs to
# be ignored too, or live outside the work tree).
if git rev-parse --is-inside-work-tree > /dev/null 2>&1; then
  ignore_status=0
  git check-ignore -q "$BUILD_DIR/.ci-probe" 2> /dev/null || ignore_status=$?
  # 0 = ignored (fine); 128 = outside the work tree (also fine); 1 = a
  # build into the work tree that git would pick up.
  if [ "$ignore_status" -eq 1 ]; then
    echo "ci.sh: build dir '$BUILD_DIR' is not git-ignored;" \
         "add it to .gitignore or build outside the work tree" >&2
    exit 1
  fi
fi

# Documentation gate: every src/<module>/ must carry a README.md, and no
# markdown link in any README.md (or docs/*.md) may point at a nonexistent
# file — so the module map cannot rot silently.
docs_failed=0
for module_dir in src/*/; do
  if [ ! -f "$module_dir/README.md" ]; then
    echo "ci.sh: missing $module_dir/README.md" >&2
    docs_failed=1
  fi
done
# Relative markdown links: [text](target). External links (scheme:// or
# mailto:) and pure #anchors are skipped; optional "title" suffixes are
# stripped; /-rooted targets resolve against the repo root; intra-repo
# anchors are checked by file part.
while IFS=: read -r doc target; do
  target="${target%% \"*}"
  target="${target%% \'*}"
  case "$target" in
    *://*|mailto:*|'#'*) continue ;;
    /*) resolved=".${target%%#*}" ;;
    *)  resolved="$(dirname "$doc")/${target%%#*}" ;;
  esac
  if [ ! -e "$resolved" ]; then
    echo "ci.sh: broken link in $doc -> $target" >&2
    docs_failed=1
  fi
done < <(find . \( -name 'build*' -o -name '.git' \) -prune -o -name '*.md' -print \
           | grep -E 'README\.md$|^\./docs/' \
           | xargs grep -oE '\]\([^)]+\)' /dev/null \
           | sed -E 's/\]\(([^)]*)\)$/\1/')
if [ "$docs_failed" -ne 0 ]; then
  echo "ci.sh: documentation checks failed" >&2
  exit 1
fi
echo "ci.sh: documentation checks passed"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS"

# Forced single-thread pass: IBBE_THREADS=1 makes every parallel_for inline
# on the calling thread (the pool spawns no workers). The whole suite must
# stay green with the pool compiled in but idle — serial recoverability is
# a hard requirement, same contract as the forced-portable stage below.
echo "==> ctest (IBBE_THREADS=1, pool inline)"
IBBE_THREADS=1 ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS"

# The networked front-end by name under the inline pool: the NetServer's
# session threads and the long-poll wake path must not depend on worker
# threads existing. Already inside the ctest pass above; pinned here so a
# future filtered ctest invocation cannot silently drop it.
echo "==> $BUILD_DIR/net_test (IBBE_THREADS=1)"
IBBE_THREADS=1 "$BUILD_DIR/net_test" --gtest_brief=1

# Figure/table reproduction benches, smoke scale (seconds each).
for bench in "$BUILD_DIR"/bench_fig* "$BUILD_DIR"/bench_table* \
             "$BUILD_DIR"/bench_ablation*; do
  [ -x "$bench" ] || continue
  echo "==> $bench --scale smoke"
  "$bench" --scale smoke
done

# Scalar-multiplication perf trajectory: machine-readable summary for
# cross-revision diffing. The bench header prints which Montgomery backend
# (MULX/ADX vs portable) the run dispatched to.
echo "==> $BUILD_DIR/bench_scalar_suite"
"$BUILD_DIR/bench_scalar_suite" --scale smoke --json "$BUILD_DIR/BENCH_scalar.json"
cat "$BUILD_DIR/BENCH_scalar.json"

# Degraded-mode trajectory: admin mutation cost at 0%/1%/10% cloud fault
# rates plus 64-partition crash recovery, merged into the same JSON so one
# file carries the whole perf surface.
echo "==> $BUILD_DIR/bench_fault_suite"
"$BUILD_DIR/bench_fault_suite" --scale smoke --json "$BUILD_DIR/BENCH_fault.json"

# Networked front-end trajectory: RPC round-trip cost, grant/revoke
# throughput over the wire, and long-poll fan-out wake-up latency against a
# live loopback NetServer, merged into the same JSON.
echo "==> $BUILD_DIR/bench_net_suite"
"$BUILD_DIR/bench_net_suite" --scale smoke --json "$BUILD_DIR/BENCH_net.json"

# Million-member group-state trajectory: mutation throughput, index bytes per
# membership op under the sharded layout vs the monolithic matrix (the bench
# itself fails below the 100x acceptance ratio), client delta-fold cost, and
# the Linux-trace metadata replay. The RSS ceiling is always on: the
# million-member scenario must never regress into matrix-sized allocations.
echo "==> $BUILD_DIR/bench_group_suite"
"$BUILD_DIR/bench_group_suite" --scale smoke --rss-ceiling-mb 1536 \
  --json "$BUILD_DIR/BENCH_group.json"
python3 - "$BUILD_DIR/BENCH_scalar.json" "$BUILD_DIR/BENCH_fault.json" \
  "$BUILD_DIR/BENCH_net.json" "$BUILD_DIR/BENCH_group.json" << 'PY'
import json, sys
merged = json.load(open(sys.argv[1]))
for extra in sys.argv[2:]:
    merged.update(json.load(open(extra)))
with open(sys.argv[1], "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
PY

# Diff against the committed baseline snapshot: prints per-metric ratios and
# WARNS (never fails — container timings jitter) on >1.15x regressions.
if [ -f BENCH_baseline.json ]; then
  echo "==> bench_diff vs BENCH_baseline.json"
  python3 scripts/bench_diff.py BENCH_baseline.json "$BUILD_DIR/BENCH_scalar.json"
else
  echo "ci.sh: no BENCH_baseline.json committed; skipping perf diff" >&2
fi

# Micro benches of the crypto substrate (built only when google-benchmark is
# available); keep the run short — this is a regression tripwire, not a
# measurement.
if [ -x "$BUILD_DIR/bench_micro_crypto" ]; then
  echo "==> $BUILD_DIR/bench_micro_crypto (smoke)"
  "$BUILD_DIR/bench_micro_crypto" \
    --benchmark_filter='FrInverse|G1ScalarMul|G1MulGlv|G2MulGls|MsmG2|GtExp|GtPowU|Pairing' \
    --benchmark_min_time=0.05
fi

# When this machine can run the MULX/ADX Montgomery backend, the suite above
# exercised only the accelerated path — build and test a second tree with the
# backend compiled out (-DIBBE_FORCE_PORTABLE_MUL=ON) and the runtime
# override exported too, so the portable fallback stays green on every
# commit. Results are bit-identical by construction; only timings differ.
if [ -r /proc/cpuinfo ] && grep -qw adx /proc/cpuinfo; then
  PORTABLE_DIR="${BUILD_DIR}-portable"
  if git rev-parse --is-inside-work-tree > /dev/null 2>&1; then
    portable_ignore=0
    git check-ignore -q "$PORTABLE_DIR/.ci-probe" 2> /dev/null || portable_ignore=$?
    if [ "$portable_ignore" -eq 1 ]; then
      echo "ci.sh: portable build dir '$PORTABLE_DIR' is not git-ignored" >&2
      exit 1
    fi
  fi
  echo "==> portable-fallback build ($PORTABLE_DIR)"
  cmake -B "$PORTABLE_DIR" -S . -DIBBE_FORCE_PORTABLE_MUL=ON
  cmake --build "$PORTABLE_DIR" -j"$JOBS"
  IBBE_FORCE_PORTABLE_MUL=1 ctest --test-dir "$PORTABLE_DIR" \
    --output-on-failure -j"$JOBS"
  # The differential strategy-equivalence suite (every G2 scalar-mul
  # strategy against the double-and-add oracle) must hold bit-for-bit under
  # the portable backend too. It already ran inside the full ctest above;
  # run it once more by name so a future filtered ctest invocation cannot
  # silently drop it from the fallback tree.
  echo "==> $PORTABLE_DIR/strategy_equivalence_test (portable backend)"
  IBBE_FORCE_PORTABLE_MUL=1 "$PORTABLE_DIR/strategy_equivalence_test" \
    --gtest_brief=1
else
  echo "ci.sh: no ADX on this CPU; default build already covers the portable path"
fi

# Sanitizer stage: when the toolchain can link ASan+UBSan, build a third tree
# with -DIBBE_SANITIZE=address,undefined and run the suites that exercise the
# fault-injection / crash-recovery machinery (heap-heavy, exception-heavy)
# under instrumentation. Probed rather than assumed: minimal containers often
# ship a compiler without the sanitizer runtimes.
san_probe="$(mktemp)"
if echo 'int main() { return 0; }' \
     | c++ -x c++ - -fsanitize=address,undefined -fno-omit-frame-pointer \
           -o "$san_probe" 2> /dev/null; then
  rm -f "$san_probe"
  SAN_DIR="${BUILD_DIR}-asan"
  if git rev-parse --is-inside-work-tree > /dev/null 2>&1; then
    san_ignore=0
    git check-ignore -q "$SAN_DIR/.ci-probe" 2> /dev/null || san_ignore=$?
    if [ "$san_ignore" -eq 1 ]; then
      echo "ci.sh: sanitizer build dir '$SAN_DIR' is not git-ignored" >&2
      exit 1
    fi
  fi
  echo "==> sanitizer build ($SAN_DIR, address+undefined)"
  cmake -B "$SAN_DIR" -S . -DIBBE_SANITIZE=address,undefined
  cmake --build "$SAN_DIR" -j"$JOBS" --target \
    util_test cloud_test fault_injection_test byzantine_test system_test \
    extensions_test shard_delta_test thread_pool_test \
    parallel_equivalence_test net_test
  for suite in util_test cloud_test fault_injection_test byzantine_test \
               system_test extensions_test shard_delta_test thread_pool_test \
               parallel_equivalence_test net_test; do
    echo "==> $SAN_DIR/$suite (sanitized)"
    "$SAN_DIR/$suite" --gtest_brief=1
  done
else
  rm -f "$san_probe"
  echo "ci.sh: toolchain lacks ASan/UBSan runtimes; skipping sanitizer stage"
fi

# ThreadSanitizer stage: the Byzantine store wraps every fault decision in a
# mutex and clients race long-polls, gossip publishes, and CAS retries
# against it — exactly the shapes TSan exists to check. The thread-pool
# suites ride along: they hammer the work-stealing scheduler and the lazy
# first-use of the shared crypto singletons (GLV/GLS lattices, comb tables,
# the Montgomery-backend dispatch) from many workers at once. Probed the
# same way as ASan: minimal toolchains often lack the tsan runtime.
tsan_probe="$(mktemp)"
if echo 'int main() { return 0; }' \
     | c++ -x c++ - -fsanitize=thread -fno-omit-frame-pointer \
           -o "$tsan_probe" 2> /dev/null; then
  rm -f "$tsan_probe"
  TSAN_DIR="${BUILD_DIR}-tsan"
  if git rev-parse --is-inside-work-tree > /dev/null 2>&1; then
    tsan_ignore=0
    git check-ignore -q "$TSAN_DIR/.ci-probe" 2> /dev/null || tsan_ignore=$?
    if [ "$tsan_ignore" -eq 1 ]; then
      echo "ci.sh: tsan build dir '$TSAN_DIR' is not git-ignored" >&2
      exit 1
    fi
  fi
  echo "==> tsan build ($TSAN_DIR, thread)"
  cmake -B "$TSAN_DIR" -S . -DIBBE_SANITIZE=thread
  cmake --build "$TSAN_DIR" -j"$JOBS" --target \
    cloud_test fault_injection_test byzantine_test system_test \
    thread_pool_test parallel_equivalence_test net_test
  for suite in cloud_test fault_injection_test byzantine_test system_test \
               thread_pool_test parallel_equivalence_test net_test; do
    echo "==> $TSAN_DIR/$suite (tsan)"
    "$TSAN_DIR/$suite" --gtest_brief=1
  done
else
  rm -f "$tsan_probe"
  echo "ci.sh: toolchain lacks the TSan runtime; skipping tsan stage"
fi

echo "ci.sh: all stages passed"
