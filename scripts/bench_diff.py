#!/usr/bin/env python3
"""Diff two BENCH_scalar.json snapshots and print per-metric ratios.

Usage: bench_diff.py BASELINE.json FRESH.json

Prints one row per metric (ratio = fresh / baseline; > 1 means slower than
the baseline) and a WARNING line for every shared metric that regressed by
more than the threshold. Always exits 0 — container benchmarks jitter by
+-10%, so the perf trajectory warns instead of failing CI; a genuine
regression shows up as the same warning on every run.

The committed BENCH_baseline.json at the repo root is the reference
snapshot; refresh it (and the README tables) whenever a PR intentionally
moves the numbers.
"""

import json
import sys

THRESHOLD = 1.15


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        with open(sys.argv[1]) as f:
            base = json.load(f)
        with open(sys.argv[2]) as f:
            fresh = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_diff: cannot load inputs: {e}", file=sys.stderr)
        return 2

    width = max((len(k) for k in list(base) + list(fresh)), default=6)
    print(f"{'metric':<{width}}  {'baseline':>12}  {'fresh':>12}  {'ratio':>7}")
    warnings = []
    for key in sorted(set(base) | set(fresh)):
        b, n = base.get(key), fresh.get(key)
        if b is None or n is None:
            present = "fresh" if b is None else "baseline"
            value = n if b is None else b
            print(f"{key:<{width}}  (only in {present}: {value:.2f})")
            continue
        ratio = n / b if b else float("inf")
        flag = "  <-- regression" if ratio > THRESHOLD else ""
        print(f"{key:<{width}}  {b:12.2f}  {n:12.2f}  {ratio:7.3f}{flag}")
        if ratio > THRESHOLD:
            warnings.append(
                f"bench_diff: WARNING: {key} regressed {ratio:.2f}x "
                f"({b:.2f} -> {n:.2f})")
    for w in warnings:
        print(w, file=sys.stderr)
    if not warnings:
        print(f"bench_diff: no metric regressed beyond {THRESHOLD}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
