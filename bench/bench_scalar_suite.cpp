// Scalar-multiplication perf trajectory: a small always-built suite (no
// google-benchmark dependency) that times the operations ISSUE/ROADMAP track
// across PRs — pairing, G1/G2 single muls (naive ladder vs 2-dim GLS vs the
// 4-dim psi split), GT exponentiation (naive ladder vs cyclotomic engine), a 64-term
// G2 MSM, end-to-end decrypt(|S|=16), and a 4-partition batched decrypt —
// and optionally writes them as JSON so CI can diff a BENCH_scalar.json
// between revisions. The schema is documented in docs/benchmarks.md.
//
// The `_t{N}` metrics re-run a parallelized operation with the global thread
// pool at N total threads — the scaling curve for the work-stealing pool.
// On a single-core host the curve is flat (or slightly worse at higher N,
// pure scheduling overhead); see docs/benchmarks.md for interpretation.
//
// Usage: bench_scalar_suite [--json PATH] [--scale smoke|default|full]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bigint/mont_backend.h"
#include "common.h"
#include "crypto/drbg.h"
#include "ec/curves.h"
#include "ec/glv.h"
#include "ec/msm.h"
#include "field/fp12.h"
#include "ibbe/ibbe.h"
#include "pairing/gt_exp.h"
#include "pairing/pairing.h"
#include "system/admin.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace {

using ibbe::crypto::Drbg;
using ibbe::ec::G1;
using ibbe::ec::G2;
using ibbe::field::Fr;

/// Median-free mean over `iters` runs after one warm-up call.
template <typename F>
double time_us(F&& f, int iters) {
  f();  // warm-up (also builds lazy tables so they are not billed below)
  ibbe::util::Stopwatch sw;
  for (int i = 0; i < iters; ++i) f();
  return sw.micros() / iters;
}

/// Nanoseconds per op for sub-microsecond field operations: a DEPENDENT
/// multiplication chain (x <- x * y), so the number is the serial latency the
/// tower formulas actually wait on, not a throughput figure.
template <typename F>
double chain_ns(F x, const F& y, int iters) {
  ibbe::util::Stopwatch sw;
  for (int i = 0; i < iters; ++i) x *= y;
  double ns = sw.micros() * 1000.0 / iters;
  volatile bool sink = x.is_zero();  // keep the chain alive
  (void)sink;
  return ns;
}

}  // namespace

int main(int argc, char** argv) {
  const ibbe::bench::Scale scale = ibbe::bench::parse_scale(argc, argv);
  std::string json_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }
  const int iters = scale == ibbe::bench::Scale::smoke  ? 5
                    : scale == ibbe::bench::Scale::full ? 200
                                                        : 50;

  Drbg rng(2718);
  auto random_fr = [&rng] {
    Fr k = Fr::from_be_bytes_reduce(rng.bytes(32));
    return k.is_zero() ? Fr::one() : k;
  };

  const G1 p1 = G1::generator().mul(random_fr());
  const G2 p2 = G2::generator().mul(random_fr());
  const Fr k = random_fr();
  const auto ku = k.to_u256();

  std::vector<G2> msm_bases;
  std::vector<Fr> msm_scalars;
  for (int i = 0; i < 64; ++i) {
    msm_bases.push_back(G2::generator().mul(random_fr()));
    msm_scalars.push_back(random_fr());
  }

  auto keys = ibbe::core::setup(16, rng);
  std::vector<ibbe::core::Identity> users;
  for (int i = 0; i < 16; ++i) users.push_back("user" + std::to_string(i));
  auto enc = ibbe::core::encrypt_with_msk(keys.msk, keys.pk, users, rng);
  auto usk = ibbe::core::extract_user_key(keys.msk, users[0]);

  // GT exponentiation operands: a genuine order-r element and a scalar.
  const auto gt_elem =
      ibbe::pairing::pairing(G1::generator().mul(random_fr()), p2);
  const Fr gt_k = random_fr();

  // Four |S|=16 partitions sharing the client user0 (distinct otherwise).
  std::vector<std::vector<ibbe::core::Identity>> part_sets;
  std::vector<ibbe::core::EncryptResult> part_encs;
  for (int p = 0; p < 4; ++p) {
    std::vector<ibbe::core::Identity> set;
    for (int i = 0; i < 16; ++i) {
      set.push_back("part" + std::to_string(p) + "-user" + std::to_string(i));
    }
    set[0] = users[0];
    part_encs.push_back(ibbe::core::encrypt_with_msk(keys.msk, keys.pk, set, rng));
    part_sets.push_back(std::move(set));
  }
  std::vector<ibbe::core::PartitionRef> parts;
  for (std::size_t p = 0; p < 4; ++p) {
    parts.push_back({part_sets[p], &part_encs[p].ct});
  }

  std::printf("montgomery backend: %s\n", ibbe::bigint::backend::name());
  // Baseline metrics are serial regardless of the host's core count; the
  // `_t{N}` sweeps below widen the pool explicitly.
  ibbe::util::ThreadPool::set_global_threads(1);

  // Base-field / tower operands for the ns-scale metrics.
  using ibbe::field::Fp;
  const Fp fp_x = Fp::from_be_bytes_reduce(rng.bytes(32));
  const Fp fp_y = Fp::from_be_bytes_reduce(rng.bytes(32));
  const ibbe::field::Fp2 fp2_x(fp_x, fp_y);
  const ibbe::field::Fp2 fp2_y(fp_y, fp_x + fp_y);
  const ibbe::field::Fp12 fp12_x = ibbe::pairing::miller_loop(p1, p2);
  const ibbe::field::Fp12 fp12_y = fp12_x.square();
  const int fp_iters = iters * 80000;    // ~25-45 ns each
  const int fp2_iters = iters * 20000;   // ~150-250 ns each
  const int fp12_iters = iters * 800;    // ~2-4 us each

  // The cached-decrypt path: everything receiver-set-dependent prepared once.
  const auto prepared_part =
      ibbe::core::PreparedPartition::prepare(keys.pk, usk, users);

  struct Metric {
    const char* name;
    double us;
  };
  std::vector<Metric> metrics;
  metrics.push_back({"fp_mul_ns", chain_ns(fp_x, fp_y, fp_iters)});
  metrics.push_back({"fp2_mul_ns", chain_ns(fp2_x, fp2_y, fp2_iters)});
  metrics.push_back({"fp12_mul_ns", chain_ns(fp12_x, fp12_y, fp12_iters)});
  metrics.push_back({"pairing_us", time_us(
      [] {
        volatile bool sink =
            ibbe::pairing::pairing(G1::generator(), G2::generator()).is_one();
        (void)sink;
      },
      iters)});
  metrics.push_back({"g1_mul_naive_us",
                     time_us([&] { (void)p1.scalar_mul(ku); }, iters)});
  metrics.push_back({"g1_mul_glv_us", time_us([&] { (void)p1.mul(k); }, iters)});
  metrics.push_back({"g2_mul_naive_us",
                     time_us([&] { (void)p2.scalar_mul(ku); }, iters)});
  // g2_mul_gls_us keeps measuring the 2-dim split it always measured;
  // mul() itself routes through the 4-dim path since PR 5.
  metrics.push_back({"g2_mul_gls_us",
                     time_us([&] { (void)ibbe::ec::g2_mul_endo(p2, ku); },
                             iters)});
  metrics.push_back({"g2_mul_4dim_us", time_us([&] { (void)p2.mul(k); }, iters)});
  metrics.push_back({"gt_pow_naive_us", time_us(
      [&] { (void)gt_elem.value().pow_cyclotomic(gt_k.to_u256()); }, iters)});
  metrics.push_back({"gt_pow_us", time_us(
      [&] { (void)gt_elem.exp(gt_k); }, iters)});
  metrics.push_back({"msm_g2_64_us", time_us(
      [&] {
        (void)ibbe::ec::msm(std::span<const G2>(msm_bases),
                            std::span<const Fr>(msm_scalars));
      },
      iters)});
  metrics.push_back({"decrypt_16_us", time_us(
      [&] { (void)ibbe::core::decrypt(keys.pk, usk, users, enc.ct); },
      iters)});
  metrics.push_back({"decrypt_16_prepared_us", time_us(
      [&] { (void)ibbe::core::decrypt(*prepared_part, enc.ct); }, iters)});
  metrics.push_back({"decrypt_batched_4x16_us", time_us(
      [&] { (void)ibbe::core::decrypt_batched(keys.pk, usk, parts); },
      iters)});

  // ---- thread-pool scaling sweeps ----------------------------------------
  // Same operations, global pool widened to N threads. Results stay bitwise
  // identical at every N (tests/parallel_equivalence_test.cpp); only the
  // wall time may move.
  static const char* kBatchedNames[] = {
      "decrypt_batched_4x16_t1_us", "decrypt_batched_4x16_t2_us",
      "decrypt_batched_4x16_t4_us", "decrypt_batched_4x16_t8_us"};
  const std::size_t batched_threads[] = {1, 2, 4, 8};
  for (std::size_t s = 0; s < 4; ++s) {
    ibbe::util::ThreadPool::set_global_threads(batched_threads[s]);
    metrics.push_back({kBatchedNames[s], time_us(
        [&] { (void)ibbe::core::decrypt_batched(keys.pk, usk, parts); },
        iters)});
  }
  static const char* kMsmNames[] = {"msm_g2_64_t1_us", "msm_g2_64_t4_us"};
  const std::size_t msm_threads[] = {1, 4};
  for (std::size_t s = 0; s < 2; ++s) {
    ibbe::util::ThreadPool::set_global_threads(msm_threads[s]);
    metrics.push_back({kMsmNames[s], time_us(
        [&] {
          (void)ibbe::ec::msm(std::span<const G2>(msm_bases),
                              std::span<const Fr>(msm_scalars));
        },
        iters)});
  }
  // End-to-end admin group creation: 256 members in |p|=16 partitions, so
  // the enclave's per-partition encrypt fan-out carries 16-way work. The
  // CloudStore writes and the commit protocol stay on the calling thread.
  static const char* kAdminNames[] = {"admin_create_256_t1_us",
                                      "admin_create_256_t4_us"};
  const std::size_t admin_threads[] = {1, 4};
  const int admin_iters = iters >= 10 ? iters / 10 : 1;
  for (std::size_t s = 0; s < 2; ++s) {
    ibbe::util::ThreadPool::set_global_threads(admin_threads[s]);
    ibbe::sgx::EnclavePlatform platform("bench-scalar");
    ibbe::enclave::IbbeEnclave enclave(platform, 16);
    ibbe::cloud::CloudStore cloud;
    ibbe::crypto::Drbg admin_rng(31 + s);
    ibbe::system::AdminConfig config;
    config.partition_size = 16;
    ibbe::system::AdminApi admin(enclave, cloud,
                                 ibbe::pki::EcdsaKeyPair::generate(admin_rng),
                                 config, /*seed=*/17);
    std::vector<ibbe::core::Identity> group;
    for (int i = 0; i < 256; ++i) group.push_back("m" + std::to_string(i));
    int next_gid = 0;
    ibbe::util::Stopwatch sw;
    for (int i = 0; i < admin_iters; ++i) {
      admin.create_group("g" + std::to_string(next_gid++), group);
    }
    metrics.push_back({kAdminNames[s], sw.micros() / admin_iters});
  }
  ibbe::util::ThreadPool::set_global_threads(1);

  ibbe::bench::Table table("scalar suite (" +
                               std::string(ibbe::bench::scale_name(scale)) +
                               ")",
                           {"metric", "time_us"});
  for (const auto& m : metrics) {
    table.row({m.name, std::to_string(m.us)});
  }
  table.print();

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    for (std::size_t i = 0; i < metrics.size(); ++i) {
      std::fprintf(f, "  \"%s\": %.2f%s\n", metrics[i].name, metrics[i].us,
                   i + 1 < metrics.size() ? "," : "");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
