// Figure 8 —
//   (a) CDF of add-user latency: IBBE-SGX has two paths (O(1) extension of an
//       open partition vs creation of a fresh partition when all are full),
//       visible as a knee in the CDF; HE-PKI adds are a single ECIES
//       encryption and sit below both.
//   (b) client decrypt latency vs partition size (the O(|p|^2) + pairings
//       user-side cost the partitioning bounds).
#include "common.h"
#include "he/he_pki.h"
#include "system/ibbe_scheme.h"
#include "util/stats.h"
#include "util/stopwatch.h"

using namespace ibbe;

namespace {

std::vector<core::Identity> make_users(std::size_t n, const char* prefix) {
  std::vector<core::Identity> users;
  users.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    users.push_back(std::string(prefix) + std::to_string(i));
  }
  return users;
}

}  // namespace

int main(int argc, char** argv) {
  auto scale = bench::parse_scale(argc, argv);
  std::printf("# Figure 8: add-user CDF and decrypt latency [scale=%s]\n",
              bench::scale_name(scale));

  std::size_t partition_size, adds;
  std::vector<std::size_t> decrypt_partitions;
  switch (scale) {
    case bench::Scale::smoke:
      partition_size = 16;
      adds = 40;
      decrypt_partitions = {16, 32};
      break;
    case bench::Scale::full:
      partition_size = 1000;
      adds = 4000;
      decrypt_partitions = {1000, 2000, 3000, 4000};
      break;
    default:
      partition_size = 250;
      adds = 1000;
      decrypt_partitions = {256, 512, 1024, 2048};
  }

  // ------------------------------------------------------------ Fig. 8a
  util::Summary ibbe_adds, he_adds;
  {
    system::IbbeSgxScheme scheme(partition_size, 11);
    std::vector<core::Identity> seed_users = {"seed0"};
    scheme.create_group(seed_users);
    for (std::size_t i = 0; i < adds; ++i) {
      util::Stopwatch watch;
      scheme.add_user("joiner" + std::to_string(i));
      ibbe_adds.add(watch.seconds());
    }
  }
  {
    he::HePkiScheme scheme(12);
    auto users = make_users(adds + 1, "h");
    scheme.register_users(users);
    std::vector<core::Identity> seed_users = {users[0]};
    scheme.create_group(seed_users);
    for (std::size_t i = 1; i <= adds; ++i) {
      util::Stopwatch watch;
      scheme.add_user(users[i]);
      he_adds.add(watch.seconds());
    }
  }

  bench::Table fig8a("Fig. 8a — add-user latency CDF (|p|=" +
                         std::to_string(partition_size) + ", " +
                         std::to_string(adds) + " adds)",
                     {"CDF", "IBBE-SGX", "HE-PKI"});
  for (double q : {0.10, 0.25, 0.50, 0.75, 0.80, 0.90, 0.95, 0.99, 1.00}) {
    fig8a.row({bench::fmt_double(q, 2), bench::fmt_seconds(ibbe_adds.percentile(q)),
               bench::fmt_seconds(he_adds.percentile(q))});
  }
  fig8a.print();

  // ------------------------------------------------------------ Fig. 8b
  bench::Table fig8b("Fig. 8b — client decrypt latency vs partition size",
                     {"partition size", "decrypt latency", "HE-PKI decrypt"});
  for (std::size_t p : decrypt_partitions) {
    system::IbbeSgxScheme scheme(p, 13);
    auto users = make_users(p, "d");  // exactly one full partition
    scheme.create_group(users);
    util::Stopwatch watch;
    auto gk = scheme.user_decrypt(users[p / 2]);
    double ibbe_s = watch.seconds();
    if (!gk) return 1;

    he::HePkiScheme he_scheme(14);
    he_scheme.register_users(users);
    he_scheme.create_group(users);
    watch.reset();
    auto he_gk = he_scheme.user_decrypt(users[p / 2]);
    double he_s = watch.seconds();
    if (!he_gk) return 1;

    fig8b.row({std::to_string(p), bench::fmt_seconds(ibbe_s),
               bench::fmt_seconds(he_s)});
  }
  fig8b.print();

  std::printf(
      "Expected shape (paper): the add CDF shows ~80%% cheap in-partition adds\n"
      "and a 20%% knee for new-partition adds; HE adds ~2x faster than IBBE-SGX.\n"
      "Decrypt grows superlinearly with partition size and sits ~2 orders of\n"
      "magnitude above HE's constant-time decrypt.\n");
  return 0;
}
