// Figure 10 — synthetic workloads with increasing revocation rates.
//
// Eleven traces (0%..100% revocations in steps of 10) are replayed per
// partition size. The paper observes: total time rises roughly linearly with
// the revocation share up to ~50% (each revocation re-keys every partition),
// then plateaus and finally *drops* past ~90% because revocations empty and
// merge partitions — re-partitioning keeps |P| small, making each subsequent
// revocation cheaper.
#include "common.h"
#include "system/ibbe_scheme.h"
#include "trace/replay.h"

using namespace ibbe;

int main(int argc, char** argv) {
  auto scale = bench::parse_scale(argc, argv);
  std::printf("# Figure 10: revocation-rate sweep [scale=%s]\n",
              bench::scale_name(scale));

  std::size_t ops, initial;
  std::vector<std::size_t> partition_sizes;
  switch (scale) {
    case bench::Scale::smoke:
      ops = 60;
      initial = 40;
      partition_sizes = {10};
      break;
    case bench::Scale::full:
      ops = 10000;
      initial = 5000;
      partition_sizes = {1000, 1500, 2000};
      break;
    default:
      ops = 400;
      initial = 400;
      partition_sizes = {50, 100, 150};
  }

  bench::Table table("Fig. 10 — total replay time per revocation rate",
                     {"revocation rate %", "partition size", "replay time",
                      "final group", "partitions created", "repartitions"});

  for (std::size_t p : partition_sizes) {
    for (int rate = 0; rate <= 100; rate += 10) {
      auto trace = trace::revocation_trace(ops, rate / 100.0, /*seed=*/31,
                                           /*initial_size=*/initial);
      system::IbbeSgxScheme scheme(p, 32);
      auto result = trace::replay(scheme, trace);
      table.row({std::to_string(rate), std::to_string(p),
                 bench::fmt_seconds(result.admin_seconds),
                 std::to_string(result.final_group_size),
                 std::to_string(scheme.admin().stats().partitions_created),
                 std::to_string(scheme.admin().stats().repartitions)});
    }
  }

  table.print();
  std::printf(
      "Expected shape (paper): replay time increases with the revocation rate\n"
      "while adds dominate, stabilizes past ~50%%, and decreases beyond ~90%%\n"
      "as sparse partitions merge and the group shrinks.\n");
  return 0;
}
