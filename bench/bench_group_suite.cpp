// Million-user group-state trajectory: what the sharded manifest + delta
// layout buys over the seed's monolithic member matrix, and what the new
// fold primitive costs.
//
//   mutation_ops_s       — end-to-end membership mutations per second
//                          (remove+add churn pairs through the real enclave,
//                          cloud store and commit protocol at |p|=4);
//   index_bytes_per_op   — mean MEMBER-INDEX bytes uploaded per membership
//                          mutation at one million members under the sharded
//                          layout (host shard rewrite + signed delta +
//                          manifest), measured with the real serializers;
//   index_bytes_per_op_monolithic — the same churn under the seed's layout:
//                          every mutation re-uploads the whole member matrix
//                          as one object;
//   index_churn_ratio    — monolithic / sharded. HARD GATE at the million
//                          scale: the bench exits non-zero below 100x, which
//                          is the acceptance bar for the layout change;
//   delta_fold_us        — mean CachedIndex::apply of a single-op delta into
//                          a warm million-member view (the client's warm
//                          path per commit);
//   replay_ops_s         — metadata-layer replay of the Linux-kernel trace
//                          with contributors scaled by --contributors-x
//                          (shape from trace.h; x=100 reproduces the
//                          tentpole's 100x-contributors scenario);
//   peak_rss_mb          — VmHWM after everything above. --rss-ceiling-mb N
//                          turns it into a gate: exceeding N fails the run,
//                          so the million-member scenario cannot silently
//                          regress into matrix-sized allocations.
//
// Cipher bytes are deliberately excluded from the index churn metrics: the
// cipher bundle/overlay split is covered by bench_fig7's footprint numbers,
// and the seed-vs-sharded comparison here isolates the member-matrix cost
// the tentpole replaced.
//
// Usage: bench_group_suite [--json PATH] [--scale smoke|default|full]
//                          [--contributors-x N] [--rss-ceiling-mb N]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common.h"
#include "system/admin.h"
#include "system/advisor.h"
#include "system/client.h"
#include "system/metadata.h"
#include "trace/trace.h"
#include "util/stopwatch.h"

namespace {

using ibbe::core::Identity;
using ibbe::system::CachedIndex;
using ibbe::system::DeltaOp;
using ibbe::system::GroupManifest;
using ibbe::system::IndexDelta;
using ibbe::system::IndexShard;
using ibbe::system::PartitionId;

constexpr std::size_t kEnvelopeOverhead =
    4 + ibbe::pki::EcdsaSignature::serialized_size;  // length prefix + ECDSA

std::vector<Identity> make_users(std::size_t n) {
  std::vector<Identity> users;
  for (std::size_t i = 0; i < n; ++i) users.push_back("u" + std::to_string(i));
  return users;
}

/// Peak resident set (VmHWM) of this process, in MiB; 0 if unreadable.
double peak_rss_mb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::stod(line.substr(6)) / 1024.0;  // kB -> MiB
    }
  }
  return 0.0;
}

/// End-to-end churn throughput: remove+add pairs through the real enclave,
/// store and commit protocol (small group — this measures protocol + crypto,
/// not the index layout; the layout is what the metadata metrics below
/// isolate).
double mutation_ops_s(int iters) {
  ibbe::sgx::EnclavePlatform platform("bench-group");
  ibbe::enclave::IbbeEnclave enclave(platform, 4);
  ibbe::cloud::CloudStore cloud;
  ibbe::crypto::Drbg rng(7);
  ibbe::system::AdminConfig config;
  config.partition_size = 4;
  ibbe::system::AdminApi admin(enclave, cloud,
                               ibbe::pki::EcdsaKeyPair::generate(rng), config,
                               /*seed=*/3);
  admin.create_group("g", make_users(24));
  admin.remove_user("g", "u0");  // warm-up pair
  admin.add_user("g", "u0");
  ibbe::util::Stopwatch sw;
  for (int i = 0; i < iters; ++i) {
    admin.remove_user("g", "u0");
    admin.add_user("g", "u0");
  }
  return (2.0 * iters) / sw.seconds();
}

// ---------------------------------------------------------------------------
// Metadata-layer group model
// ---------------------------------------------------------------------------
// Mirrors exactly which INDEX objects AdminApi re-serializes per mutation
// (host shard + delta + manifest under the sharded layout; the whole member
// matrix under the seed's), using the real wire formats, without paying for
// IBBE partition crypto — which is what makes a million-member group and a
// 100x-contributors replay measurable at all.

class MetaGroup {
 public:
  MetaGroup(std::size_t partition_size, std::size_t shard_partitions)
      : m_(partition_size), k_(shard_partitions) {}

  void bootstrap(const std::vector<Identity>& members) {
    for (const auto& id : members) place(id);
    for (auto& s : shards_) refresh_ref(s);
  }

  /// Adds one member; returns the bytes the sharded layout uploads for the
  /// index (shard + delta + manifest, each envelope-framed).
  std::size_t add(const Identity& id) {
    std::size_t shard = place(id);
    return commit(shard, DeltaOp::Kind::add_member, id);
  }

  /// Removes one member; same accounting.
  std::size_t remove(const Identity& id) {
    auto it = locate_.find(id);
    if (it == locate_.end()) return 0;
    auto [shard, pid] = it->second;
    auto& partitions = shards_[shard].shard.partitions;
    for (auto p = partitions.begin(); p != partitions.end(); ++p) {
      if (p->first != pid) continue;
      p->second.erase(std::find(p->second.begin(), p->second.end(), id));
      if (p->second.empty()) partitions.erase(p);
      break;
    }
    locate_.erase(it);
    if (open_ && open_->first == shard) open_.reset();  // may have changed
    return commit(shard, DeltaOp::Kind::remove_member, id);
  }

  /// One object holding every partition's member list — the seed's
  /// GroupIndex member matrix, re-uploaded wholesale per mutation.
  std::size_t monolithic_bytes() const {
    IndexShard matrix;
    for (const auto& s : shards_) {
      for (const auto& p : s.shard.partitions) matrix.partitions.push_back(p);
    }
    return matrix.to_bytes().size() + kEnvelopeOverhead;
  }

  std::size_t member_count() const { return locate_.size(); }
  std::size_t partition_count() const {
    std::size_t n = 0;
    for (const auto& s : shards_) n += s.shard.partitions.size();
    return n;
  }
  std::size_t shard_count() const {
    std::size_t n = 0;
    for (const auto& s : shards_) n += s.shard.partitions.empty() ? 0 : 1;
    return n;
  }

 private:
  struct ShardState {
    IndexShard shard;
    ibbe::system::ShardRef ref;
    std::size_t bytes = 0;  // last serialized size, envelope-framed
  };

  /// Puts `id` into the open partition (or a fresh partition in the last
  /// shard with room, or a fresh shard); returns the shard index.
  std::size_t place(const Identity& id) {
    if (!open_ || member_count_of(open_->first, open_->second) >= m_) {
      open_.reset();
      // A fresh partition: last shard if it has room, else a new shard
      // (an emptied-out tail shard is reused, as the real admin's
      // assign_to_shard does after the GC drops it).
      if (shards_.empty() || shards_.back().shard.partitions.size() >= k_) {
        shards_.push_back({});
        shards_.back().shard.sid = next_object_++;
        shards_.back().ref.sid = shards_.back().shard.sid;
      }
      auto& shard = shards_.back().shard;
      shard.partitions.emplace_back(next_pid_++,
                                    std::vector<Identity>{});
      open_ = {shards_.size() - 1, shard.partitions.back().first};
    }
    auto& partitions = shards_[open_->first].shard.partitions;
    for (auto& p : partitions) {
      if (p.first == open_->second) {
        p.second.push_back(id);
        break;
      }
    }
    locate_[id] = *open_;
    return open_->first;
  }

  std::size_t member_count_of(std::size_t shard, PartitionId pid) const {
    for (const auto& p : shards_[shard].shard.partitions) {
      if (p.first == pid) return p.second.size();
    }
    return m_;  // gone -> treat as full so place() opens a fresh one
  }

  void refresh_ref(ShardState& s) {
    auto bytes = s.shard.to_bytes();
    s.ref.hash = ibbe::system::content_hash(bytes);
    s.bytes = bytes.size() + kEnvelopeOverhead;
  }

  /// Serializes what the admin uploads for this mutation and returns the
  /// byte total: the rewritten host shard, the signed single-op delta, and
  /// the manifest carrying every shard ref.
  std::size_t commit(std::size_t shard, DeltaOp::Kind kind,
                     const Identity& id) {
    refresh_ref(shards_[shard]);
    IndexDelta delta;
    delta.seq = ++counter_;
    DeltaOp op;
    op.kind = kind;
    op.user = id;
    delta.ops = {op};
    GroupManifest manifest;
    manifest.shards.reserve(shards_.size());
    // Emptied shards leave the manifest (the admin erases them); slots stay
    // in shards_ so locate_'s indices remain stable.
    for (const auto& s : shards_) {
      if (!s.shard.partitions.empty()) manifest.shards.push_back(s.ref);
    }
    manifest.delta_base = counter_ > 64 ? counter_ - 63 : 1;
    return shards_[shard].bytes + delta.to_bytes().size() + kEnvelopeOverhead +
           manifest.to_bytes().size() + kEnvelopeOverhead;
  }

  std::size_t m_;
  std::size_t k_;
  std::vector<ShardState> shards_;
  std::unordered_map<Identity, std::pair<std::size_t, PartitionId>> locate_;
  std::optional<std::pair<std::size_t, PartitionId>> open_;
  PartitionId next_pid_ = 0;
  std::uint64_t next_object_ = 0;
  std::uint64_t counter_ = 0;
};

struct ChurnResult {
  double sharded_bytes_per_op = 0;
  double monolithic_bytes_per_op = 0;
  double fold_us = 0;
};

/// Builds the million-member group, churns it, and measures both layouts +
/// the client-side fold cost of each commit's delta.
ChurnResult million_member_churn(std::size_t members, int churn_ops) {
  const std::size_t m = 1000;  // the paper's large-deployment |p|
  const std::size_t partitions = (members + m - 1) / m;
  const std::size_t k =
      ibbe::system::PartitionAdvisor::recommend_shard_partitions(partitions, m);
  MetaGroup group(m, k);
  group.bootstrap(make_users(members));
  std::printf("  group: %zu members, %zu partitions, %zu shards (k=%zu)\n",
              group.member_count(), group.partition_count(),
              group.shard_count(), k);

  // A warm client's view of the same group, for the fold timing.
  CachedIndex view;
  {
    std::size_t uid = 0;
    for (std::size_t p = 0; p < partitions; ++p) {
      std::vector<Identity> list;
      list.reserve(m);
      for (std::size_t i = 0; i < m && uid < members; ++i) {
        list.push_back("u" + std::to_string(uid++));
      }
      view.add_partition(p, std::move(list));
    }
    (void)view.find_user("u0");  // build the lookup map outside the timing
  }

  ChurnResult r;
  r.monolithic_bytes_per_op = static_cast<double>(group.monolithic_bytes());
  std::size_t total = 0;
  double fold_total_us = 0;
  for (int i = 0; i < churn_ops; ++i) {
    const Identity joiner = "joiner" + std::to_string(i);
    total += group.add(joiner);
    total += group.remove(joiner);
    // Fold both commits into the warm view (what every online client does).
    for (auto kind : {DeltaOp::Kind::add_member, DeltaOp::Kind::remove_member}) {
      IndexDelta d;
      d.seq = view.counter + 1;
      d.prev_log_head = view.log_head;
      DeltaOp op;
      op.kind = kind;
      op.user = joiner;
      op.pid = partitions + 7;  // the churn partition
      d.ops = {op};
      ibbe::util::Stopwatch sw;
      if (!view.apply(d)) std::fprintf(stderr, "fold failed\n");
      fold_total_us += sw.micros();
    }
  }
  r.sharded_bytes_per_op = static_cast<double>(total) / (2.0 * churn_ops);
  r.fold_us = fold_total_us / (2.0 * churn_ops);
  return r;
}

/// Metadata-layer replay of the Linux-kernel trace with the contributor
/// population scaled by `x` (ops scale with it so the peak is reached).
double replay_ops_s(std::size_t x) {
  auto trace = ibbe::trace::linux_kernel_trace(43468 * x, 2803 * x,
                                               /*seed=*/2018);
  const std::size_t m = 1000;
  const std::size_t peak_partitions = (trace.peak_size() + m - 1) / m;
  const std::size_t k = ibbe::system::PartitionAdvisor::recommend_shard_partitions(
      std::max<std::size_t>(peak_partitions, 1), m);
  MetaGroup group(m, k);
  group.bootstrap(trace.initial_members);
  ibbe::util::Stopwatch sw;
  for (const auto& op : trace.ops) {
    if (op.kind == ibbe::trace::OpKind::add) {
      (void)group.add(op.user);
    } else {
      (void)group.remove(op.user);
    }
  }
  double secs = sw.seconds();
  std::printf("  replay: %zu ops, peak %zu contributors, %zu shards -> %s\n",
              trace.ops.size(), trace.peak_size(), group.shard_count(),
              ibbe::bench::fmt_seconds(secs).c_str());
  return static_cast<double>(trace.ops.size()) / secs;
}

}  // namespace

int main(int argc, char** argv) {
  const ibbe::bench::Scale scale = ibbe::bench::parse_scale(argc, argv);
  std::string json_path;
  long contributors_x = 0;  // 0 = pick per scale
  long rss_ceiling_mb = 0;  // 0 = report only
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
    if (std::strcmp(argv[i], "--contributors-x") == 0) {
      contributors_x = std::atol(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--rss-ceiling-mb") == 0) {
      rss_ceiling_mb = std::atol(argv[i + 1]);
    }
  }
  // The million-member scenario runs at EVERY scale — it is the point of the
  // suite; scale only varies iteration counts and the replay multiplier.
  const int iters = scale == ibbe::bench::Scale::smoke  ? 5
                    : scale == ibbe::bench::Scale::full ? 100
                                                        : 25;
  const int churn_ops = scale == ibbe::bench::Scale::smoke ? 50 : 500;
  if (contributors_x <= 0) {
    contributors_x = scale == ibbe::bench::Scale::smoke  ? 1
                     : scale == ibbe::bench::Scale::full ? 100
                                                         : 2;
  }

  std::printf("# group suite [scale=%s, contributors-x=%ld]\n",
              ibbe::bench::scale_name(scale), contributors_x);

  struct Metric {
    const char* name;
    double value;
  };
  std::vector<Metric> metrics;
  metrics.push_back({"mutation_ops_s", mutation_ops_s(iters)});

  auto churn = million_member_churn(1'000'000, churn_ops);
  metrics.push_back({"index_bytes_per_op", churn.sharded_bytes_per_op});
  metrics.push_back(
      {"index_bytes_per_op_monolithic", churn.monolithic_bytes_per_op});
  const double ratio =
      churn.monolithic_bytes_per_op / churn.sharded_bytes_per_op;
  metrics.push_back({"index_churn_ratio", ratio});
  metrics.push_back({"delta_fold_us", churn.fold_us});
  metrics.push_back(
      {"replay_ops_s",
       replay_ops_s(static_cast<std::size_t>(contributors_x))});
  const double rss = peak_rss_mb();
  metrics.push_back({"peak_rss_mb", rss});

  ibbe::bench::Table table(
      "group suite (" + std::string(ibbe::bench::scale_name(scale)) + ")",
      {"metric", "value"});
  for (const auto& m : metrics) {
    table.row({m.name, ibbe::bench::fmt_double(m.value, 2)});
  }
  table.print();

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    for (std::size_t i = 0; i < metrics.size(); ++i) {
      std::fprintf(f, "  \"%s\": %.2f%s\n", metrics[i].name, metrics[i].value,
                   i + 1 < metrics.size() ? "," : "");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  // Acceptance gates: the sharded layout must beat the matrix by >=100x per
  // op at a million members, and the whole scenario must fit the ceiling.
  if (ratio < 100.0) {
    std::fprintf(stderr,
                 "FAIL: index_churn_ratio %.1f < 100 — a membership op "
                 "uploads too much index\n",
                 ratio);
    return 1;
  }
  if (rss_ceiling_mb > 0 && rss > static_cast<double>(rss_ceiling_mb)) {
    std::fprintf(stderr, "FAIL: peak RSS %.0f MiB exceeds ceiling %ld MiB\n",
                 rss, rss_ceiling_mb);
    return 1;
  }
  return 0;
}
