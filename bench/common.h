// Shared helpers for the figure/table reproduction benches.
//
// Every bench binary accepts:  --scale smoke|default|full
//   smoke   — seconds; sanity check that the harness runs (CI)
//   default — minutes for the whole suite; reproduces every figure's *shape*
//   full    — paper-scale grids where feasible (hours for some figures)
//
// Output: a human-readable markdown table followed by machine-readable CSV
// lines prefixed with "csv,".
#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace ibbe::bench {

enum class Scale { smoke, standard, full };

inline Scale parse_scale(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view(argv[i]) == "--scale") {
      std::string_view v = argv[i + 1];
      if (v == "smoke") return Scale::smoke;
      if (v == "full") return Scale::full;
      return Scale::standard;
    }
  }
  return Scale::standard;
}

inline const char* scale_name(Scale s) {
  switch (s) {
    case Scale::smoke: return "smoke";
    case Scale::full: return "full";
    default: return "default";
  }
}

/// Accumulates rows and prints them as a markdown table + CSV block.
class Table {
 public:
  Table(std::string title, std::vector<std::string> columns)
      : title_(std::move(title)), columns_(std::move(columns)) {}

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print() const {
    std::printf("\n## %s\n\n", title_.c_str());
    auto print_row = [](const std::vector<std::string>& cells) {
      std::printf("|");
      for (const auto& c : cells) std::printf(" %s |", c.c_str());
      std::printf("\n");
    };
    print_row(columns_);
    std::printf("|");
    for (std::size_t i = 0; i < columns_.size(); ++i) std::printf("---|");
    std::printf("\n");
    for (const auto& r : rows_) print_row(r);
    std::printf("\n");
    for (const auto& r : rows_) {
      std::printf("csv");
      for (const auto& c : r) std::printf(",%s", c.c_str());
      std::printf("\n");
    }
  }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt_seconds(double s) {
  char buf[64];
  if (s < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.1f us", s * 1e6);
  } else if (s < 1.0) {
    std::snprintf(buf, sizeof buf, "%.2f ms", s * 1e3);
  } else if (s < 120.0) {
    std::snprintf(buf, sizeof buf, "%.2f s", s);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f min", s / 60.0);
  }
  return buf;
}

inline std::string fmt_bytes(std::size_t b) {
  char buf[64];
  if (b < 1024) {
    std::snprintf(buf, sizeof buf, "%zu B", b);
  } else if (b < 1024 * 1024) {
    std::snprintf(buf, sizeof buf, "%.1f KiB", static_cast<double>(b) / 1024.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f MiB",
                  static_cast<double>(b) / (1024.0 * 1024.0));
  }
  return buf;
}

inline std::string fmt_double(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace ibbe::bench
