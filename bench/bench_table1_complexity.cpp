// Table I — empirical check of the complexity table:
//
//   Operation              IBBE-SGX         IBBE (public-key path)
//   System Setup           O(|p|)           O(|S|)
//   Extract User Key       O(1)             O(1)
//   Create Group Key       |P| x O(|p|)     O(|S|^2)
//   Add User to Group      O(1)             (quadratic re-encrypt)
//   Remove User from Group |P| x O(1)       (quadratic re-encrypt)
//   Decrypt Group Key      O(|p|^2)         O(|S|^2)
//
// For each operation we measure a size sweep and report the log-log fitted
// growth exponent alongside the raw times. Constant-time rows should fit
// ~0; linear rows ~1. Group-element exponentiations dominate the measured
// decrypt at these sizes, so its quadratic Zr term (the asymptotic bound)
// only bends the curve near the PK crossover — the fit reports the observed
// regime and the raw numbers make the trend inspectable.
#include <cmath>

#include "common.h"
#include "crypto/drbg.h"
#include "ibbe/ibbe.h"
#include "util/stopwatch.h"

using namespace ibbe;

namespace {

std::vector<core::Identity> make_users(std::size_t n) {
  std::vector<core::Identity> users;
  users.reserve(n);
  for (std::size_t i = 0; i < n; ++i) users.push_back("user" + std::to_string(i));
  return users;
}

double fit_exponent(const std::vector<std::size_t>& xs,
                    const std::vector<double>& ys) {
  // Least-squares slope of log(y) on log(x).
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  auto n = static_cast<double>(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    double lx = std::log(static_cast<double>(xs[i]));
    double ly = std::log(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

std::string fmt_row(const std::vector<std::size_t>& sizes,
                    const std::vector<double>& times) {
  std::string out;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    if (i) out += ", ";
    out += std::to_string(sizes[i]) + ":" + bench::fmt_seconds(times[i]);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  auto scale = bench::parse_scale(argc, argv);
  std::printf("# Table I: operation complexity check [scale=%s]\n",
              bench::scale_name(scale));

  std::vector<std::size_t> sizes;
  switch (scale) {
    case bench::Scale::smoke:
      sizes = {32, 64, 128};
      break;
    case bench::Scale::full:
      sizes = {512, 1024, 2048, 4096};
      break;
    default:
      sizes = {128, 256, 512, 1024};
  }

  bench::Table table("Table I — measured times and fitted growth exponents",
                     {"operation", "expected", "fitted exponent", "samples"});
  crypto::Drbg rng(41);

  // System Setup: O(m).
  {
    std::vector<double> times;
    for (auto m : sizes) {
      util::Stopwatch watch;
      auto keys = core::setup(m, rng);
      times.push_back(watch.seconds());
    }
    table.row({"System Setup", "O(|p|) linear",
               bench::fmt_double(fit_exponent(sizes, times), 2),
               fmt_row(sizes, times)});
  }

  auto keys = core::setup(sizes.back(), rng);

  // Extract: O(1) in m (measure across the same sweep; expect exponent ~0).
  {
    std::vector<double> times;
    for (auto m : sizes) {
      auto k = core::setup(m, rng);
      util::Stopwatch watch;
      for (int i = 0; i < 16; ++i) {
        (void)core::extract_user_key(k.msk, "u" + std::to_string(i));
      }
      times.push_back(watch.seconds() / 16);
    }
    table.row({"Extract User Key", "O(1) flat",
               bench::fmt_double(fit_exponent(sizes, times), 2),
               fmt_row(sizes, times)});
  }

  // Create (MSK path): O(|p|) per partition.
  {
    std::vector<double> times;
    for (auto n : sizes) {
      auto users = make_users(n);
      util::Stopwatch watch;
      (void)core::encrypt_with_msk(keys.msk, keys.pk, users, rng);
      times.push_back(watch.seconds());
    }
    table.row({"Create Group Key (IBBE-SGX)", "O(|p|) linear*",
               bench::fmt_double(fit_exponent(sizes, times), 2),
               fmt_row(sizes, times)});
  }

  // Create (public path): O(|S|^2) expansion + O(|S|) G2 exponentiations.
  {
    std::vector<double> times;
    for (auto n : sizes) {
      auto users = make_users(n);
      util::Stopwatch watch;
      (void)core::encrypt_public(keys.pk, users, rng);
      times.push_back(watch.seconds());
    }
    table.row({"Create Group Key (IBBE)", "O(|S|^2) superlinear",
               bench::fmt_double(fit_exponent(sizes, times), 2),
               fmt_row(sizes, times)});
  }

  // Add user: O(1) regardless of partition fill.
  {
    std::vector<double> times;
    for (auto n : sizes) {
      auto users = make_users(n);
      auto enc = core::encrypt_with_msk(keys.msk, keys.pk, users, rng);
      util::Stopwatch watch;
      core::add_user_with_msk(keys.msk, enc.ct, "late");
      times.push_back(watch.seconds());
    }
    table.row({"Add User to Group", "O(1) flat",
               bench::fmt_double(fit_exponent(sizes, times), 2),
               fmt_row(sizes, times)});
  }

  // Remove user from one partition: O(1) regardless of partition fill.
  {
    std::vector<double> times;
    for (auto n : sizes) {
      auto users = make_users(n);
      auto enc = core::encrypt_with_msk(keys.msk, keys.pk, users, rng);
      util::Stopwatch watch;
      (void)core::remove_user_with_msk(keys.msk, keys.pk, enc.ct, users[0], rng);
      times.push_back(watch.seconds());
    }
    table.row({"Remove User (per partition)", "O(1) flat",
               bench::fmt_double(fit_exponent(sizes, times), 2),
               fmt_row(sizes, times)});
  }

  // Re-key: O(1).
  {
    std::vector<double> times;
    for (auto n : sizes) {
      auto users = make_users(n);
      auto enc = core::encrypt_with_msk(keys.msk, keys.pk, users, rng);
      util::Stopwatch watch;
      (void)core::rekey(keys.pk, enc.ct, rng);
      times.push_back(watch.seconds());
    }
    table.row({"Re-key Broadcast Key", "O(1) flat",
               bench::fmt_double(fit_exponent(sizes, times), 2),
               fmt_row(sizes, times)});
  }

  // Decrypt: O(|p|^2) Zr work + O(|p|) G2 exponentiations.
  {
    std::vector<double> times;
    for (auto n : sizes) {
      auto users = make_users(n);
      auto enc = core::encrypt_with_msk(keys.msk, keys.pk, users, rng);
      auto usk = core::extract_user_key(keys.msk, users[0]);
      util::Stopwatch watch;
      (void)core::decrypt(keys.pk, usk, users, enc.ct);
      times.push_back(watch.seconds());
    }
    table.row({"Decrypt Group Key", "O(|p|^2) (exp-dominated: ~1 here)",
               bench::fmt_double(fit_exponent(sizes, times), 2),
               fmt_row(sizes, times)});
  }

  table.print();
  std::printf(
      "* the linear terms of MSK-path create are Zr multiplications (~60 ns)\n"
      "  under three fixed group exponentiations, so small sweeps read ~0;\n"
      "  contrast with the IBBE row where G2 exponentiations scale with |S|.\n");
  return 0;
}
