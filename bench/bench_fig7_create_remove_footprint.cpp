// Figure 7 — IBBE-SGX vs HE on the three administrator-facing metrics:
//   (a) create-group latency, remove-user latency, and metadata footprint
//       as the group grows (fixed partition size 1000);
//   (b) the same metrics for IBBE-SGX only, sweeping the partition size.
//
// Uses the full system stack (enclave + partitioning + cloud metadata), so
// the footprint numbers are real serialized bytes.
#include "common.h"
#include "he/he_pki.h"
#include "system/ibbe_scheme.h"
#include "util/stopwatch.h"

using namespace ibbe;

namespace {

std::vector<core::Identity> make_users(std::size_t n) {
  std::vector<core::Identity> users;
  users.reserve(n);
  for (std::size_t i = 0; i < n; ++i) users.push_back("user" + std::to_string(i));
  return users;
}

struct Metrics {
  double create_s;
  double remove_s;
  std::size_t footprint;
};

Metrics measure(he::GroupScheme& scheme, const std::vector<core::Identity>& users) {
  if (auto* pki = dynamic_cast<he::HePkiScheme*>(&scheme)) {
    pki->register_users(users);
  }
  Metrics m{};
  util::Stopwatch watch;
  scheme.create_group(users);
  m.create_s = watch.seconds();
  watch.reset();
  scheme.remove_user(users[users.size() / 2]);
  m.remove_s = watch.seconds();
  m.footprint = scheme.metadata_size();
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  auto scale = bench::parse_scale(argc, argv);
  std::printf("# Figure 7: create/remove/footprint, IBBE-SGX vs HE [scale=%s]\n",
              bench::scale_name(scale));

  std::vector<std::size_t> group_sizes;
  std::size_t he_cap, fig7a_partition;
  std::vector<std::size_t> partition_sweep;
  std::vector<std::size_t> sweep_groups;
  switch (scale) {
    case bench::Scale::smoke:
      group_sizes = {200};
      he_cap = 200;
      fig7a_partition = 50;
      partition_sweep = {25, 50};
      sweep_groups = {200};
      break;
    case bench::Scale::full:
      group_sizes = {1000, 10000, 100000, 1000000};
      he_cap = 100000;
      fig7a_partition = 1000;
      partition_sweep = {1000, 2000, 3000, 4000};
      sweep_groups = {100000, 500000, 1000000};
      break;
    default:
      group_sizes = {1000, 10000, 50000};
      he_cap = 10000;
      fig7a_partition = 1000;
      partition_sweep = {500, 1000, 2000};
      sweep_groups = {20000, 50000};
  }

  // ------------------------------------------------------------ Fig. 7a
  bench::Table fig7a(
      "Fig. 7a — IBBE-SGX (|p|=" + std::to_string(fig7a_partition) +
          ") vs HE-PKI",
      {"group size", "scheme", "create", "remove 1 user", "footprint"});

  for (std::size_t n : group_sizes) {
    auto users = make_users(n);
    {
      system::IbbeSgxScheme scheme(fig7a_partition, 3);
      auto m = measure(scheme, users);
      fig7a.row({std::to_string(n), "IBBE-SGX", bench::fmt_seconds(m.create_s),
                 bench::fmt_seconds(m.remove_s), bench::fmt_bytes(m.footprint)});
    }
    if (n <= he_cap) {
      he::HePkiScheme scheme(4);
      auto m = measure(scheme, users);
      fig7a.row({std::to_string(n), "HE-PKI", bench::fmt_seconds(m.create_s),
                 bench::fmt_seconds(m.remove_s), bench::fmt_bytes(m.footprint)});
    } else {
      fig7a.row({std::to_string(n), "HE-PKI", "(skipped: time budget)", "-", "-"});
    }
  }
  fig7a.print();

  // ------------------------------------------------------------ Fig. 7b
  bench::Table fig7b("Fig. 7b — IBBE-SGX partition-size sweep",
                     {"group size", "partition size", "create", "remove 1 user",
                      "crypto footprint"});
  for (std::size_t n : sweep_groups) {
    auto users = make_users(n);
    for (std::size_t p : partition_sweep) {
      system::IbbeSgxScheme scheme(p, 5);
      auto m = measure(scheme, users);
      // The paper's Fig. 7b footprint counts the cryptographic payload per
      // group (ciphertexts + wrapped keys), excluding the member lists that
      // both schemes need; approximate by subtracting the identity bytes.
      std::size_t names = 0;
      for (const auto& u : users) names += 2 * (u.size() + 4);
      std::size_t crypto_bytes = m.footprint > names ? m.footprint - names : 0;
      fig7b.row({std::to_string(n), std::to_string(p),
                 bench::fmt_seconds(m.create_s), bench::fmt_seconds(m.remove_s),
                 bench::fmt_bytes(crypto_bytes)});
    }
  }
  fig7b.print();

  std::printf(
      "Expected shape (paper): IBBE-SGX create/remove ~1.2 orders of magnitude\n"
      "faster than HE; footprint up to 6 orders smaller (per-partition constant\n"
      "vs per-member ciphertexts). Remove ~= half of create cost; smaller\n"
      "partitions cost little extra storage.\n");
  return 0;
}
