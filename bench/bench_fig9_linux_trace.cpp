// Figure 9 — Linux-kernel ACL trace replay: total administrator time and
// average user decryption time per partition size, with HE-PKI as the
// partition-independent baseline.
//
// The paper replays 43,468 membership operations with a peak group of 2,803
// (derived from the kernel's git history); the default scale replays a
// synthesized trace with the same shape at ~1/14th the size, with the
// partition-size grid scaled to the peak in the same proportions as the
// paper's {250..2803-ish} sweep.
// --contributors-x N scales BOTH the operation count and the peak
// contributor population by N (default 1, the paper's shape): the
// million-user metadata work is validated end-to-end by replaying the same
// trace with 100x the contributors (pair it with --scale smoke to keep the
// partition-size grid small; the group-state layer is what the multiplier
// stresses).
#include <cstring>

#include "common.h"
#include "he/he_pki.h"
#include "system/ibbe_scheme.h"
#include "trace/replay.h"

using namespace ibbe;

int main(int argc, char** argv) {
  auto scale = bench::parse_scale(argc, argv);
  std::size_t contributors_x = 1;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--contributors-x") == 0) {
      long v = std::atol(argv[i + 1]);
      if (v > 0) contributors_x = static_cast<std::size_t>(v);
    }
  }
  std::printf(
      "# Figure 9: Linux-kernel ACL trace replay [scale=%s, contributors-x=%zu]\n",
      bench::scale_name(scale), contributors_x);

  std::size_t ops, peak, decrypt_every;
  std::vector<std::size_t> partition_sizes;
  switch (scale) {
    case bench::Scale::smoke:
      ops = 150;
      peak = 30;
      partition_sizes = {10, 30};
      decrypt_every = 25;
      break;
    case bench::Scale::full:
      ops = 43468;
      peak = 2803;
      partition_sizes = {250, 500, 750, 1000, 1500, 2000};
      decrypt_every = 500;
      break;
    default:
      ops = 3000;
      peak = 250;
      partition_sizes = {25, 50, 100, 175, 250};
      decrypt_every = 100;
  }

  auto trace = trace::linux_kernel_trace(ops * contributors_x,
                                         peak * contributors_x, /*seed=*/2018);
  std::printf("trace: %zu ops (%zu adds, %zu removes), peak group %zu\n",
              trace.ops.size(), trace.add_count(), trace.remove_count(),
              trace.peak_size());

  trace::ReplayOptions options;
  options.decrypt_sample_every = decrypt_every;

  bench::Table table("Fig. 9 — admin replay time and average decrypt time",
                     {"scheme", "partition size", "admin replay", "avg add",
                      "avg remove", "avg decrypt"});

  for (std::size_t p : partition_sizes) {
    system::IbbeSgxScheme scheme(p, 21);
    auto result = trace::replay(scheme, trace, options);
    table.row({"IBBE-SGX", std::to_string(p),
               bench::fmt_seconds(result.admin_seconds),
               bench::fmt_seconds(result.add_latencies.mean()),
               bench::fmt_seconds(result.remove_latencies.mean()),
               bench::fmt_seconds(result.decrypt_latencies.mean())});
  }

  {
    he::HePkiScheme scheme(22);
    auto result = trace::replay(scheme, trace, options);
    table.row({"HE-PKI", "n/a", bench::fmt_seconds(result.admin_seconds),
               bench::fmt_seconds(result.add_latencies.mean()),
               bench::fmt_seconds(result.remove_latencies.mean()),
               bench::fmt_seconds(result.decrypt_latencies.mean())});
  }

  table.print();
  std::printf(
      "Expected shape (paper): IBBE-SGX replay time falls as the partition\n"
      "size approaches the peak group size (fewer partitions to re-key per\n"
      "revocation) and sits ~1 order of magnitude below HE; decrypt time grows\n"
      "with partition size — the administrator/user trade-off of Fig. 9.\n");
  return 0;
}
