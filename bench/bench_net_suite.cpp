// Networked front-end performance: the paper's sync experiment replayed
// against a live loopback server instead of an in-process store.
//
//   net_rpc_get_us        — one get() round trip through the full stack
//                           (frame, AES-GCM seal/open both directions, TCP
//                           loopback): the wire tax on the hot read path;
//   net_rpc_put_us        — one put() round trip (mutation + dedup-cache
//                           insert server-side);
//   net_grant_revoke_ops  — sustained membership mutations per second with
//                           the AdminApi driving a RemoteStore: the paper's
//                           grant/revoke throughput, now with every cloud
//                           round trip crossing a real socket;
//   net_poll_p99_ms       — p99 latency from an admin put landing to a
//                           long-polling client's wake-up, with `clients`
//                           concurrent pollers parked on the server (the
//                           Dropbox /longpoll_delta fan-out experiment;
//                           smoke=32 clients, default=128, full=512);
//   net_poll_mean_ms      — mean of the same samples.
//
// All sessions are real: every client its own TCP connection, handshake and
// AEAD session state. No fault schedules — this suite measures the healthy
// wire (bench_fault_suite covers degraded mode for the store; the net fault
// paths are covered by tests/net_test.cpp).
//
// Usage: bench_net_suite [--json PATH] [--scale smoke|default|full]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cloud/store.h"
#include "common.h"
#include "net/remote_store.h"
#include "net/server.h"
#include "system/admin.h"
#include "util/stopwatch.h"

namespace {

using ibbe::cloud::CloudStore;
using ibbe::net::NetServer;
using ibbe::net::NetServerConfig;
using ibbe::net::RemoteStore;
using ibbe::net::RemoteStoreConfig;

RemoteStoreConfig client_config(const NetServer& server) {
  RemoteStoreConfig cfg;
  cfg.port = server.port();
  cfg.server_identity = server.identity_key();
  cfg.retry = ibbe::util::RetryPolicy{}.without_delays();
  cfg.retry.max_attempts = 20;  // busy sheds at startup burst are retried
  cfg.request_deadline = std::chrono::milliseconds(5000);
  return cfg;
}

ibbe::util::Bytes payload_bytes() {
  // A typical wrapped-partition record size.
  return ibbe::util::Bytes(256, 0xab);
}

/// Mean microseconds per RPC round trip over an established session.
double rpc_us(bool mutate, int iters) {
  CloudStore backing;
  NetServer server(backing);
  RemoteStore remote(client_config(server));
  auto payload = payload_bytes();
  remote.put("bench/x", payload);  // connect + warm both paths
  (void)remote.get("bench/x");
  ibbe::util::Stopwatch sw;
  for (int i = 0; i < iters; ++i) {
    if (mutate) {
      remote.put("bench/x", payload);
    } else {
      (void)remote.get("bench/x");
    }
  }
  return sw.micros() / iters;
}

/// Sustained membership mutations per second with the admin over the wire.
double grant_revoke_ops(int iters) {
  ibbe::sgx::EnclavePlatform platform("bench-net");
  ibbe::enclave::IbbeEnclave enclave(platform, 4);
  CloudStore backing;
  NetServer server(backing);
  RemoteStore remote(client_config(server));
  ibbe::crypto::Drbg rng(7);
  ibbe::system::AdminConfig config;
  config.partition_size = 4;
  config.retry = ibbe::util::RetryPolicy{}.without_delays();
  ibbe::system::AdminApi admin(enclave, remote,
                               ibbe::pki::EcdsaKeyPair::generate(rng), config,
                               /*seed=*/3);
  const ibbe::system::GroupId gid = "g";
  std::vector<ibbe::core::Identity> users;
  for (int i = 0; i < 24; ++i) users.push_back("u" + std::to_string(i));
  admin.create_group(gid, users);
  admin.remove_user(gid, "u0");  // warm-up pair
  admin.add_user(gid, "u0");
  ibbe::util::Stopwatch sw;
  for (int i = 0; i < iters; ++i) {
    admin.remove_user(gid, users[static_cast<std::size_t>(i % 24)]);
    admin.add_user(gid, users[static_cast<std::size_t>(i % 24)]);
  }
  return (2.0 * iters) / sw.seconds();
}

struct PollLatencies {
  double p99_ms = 0.0;
  double mean_ms = 0.0;
};

/// Wake-up latency from a put landing to `clients` concurrent long-pollers
/// observing it, over `rounds` sequential publications.
PollLatencies poll_latency_ms(int clients, int rounds) {
  CloudStore backing;
  NetServerConfig scfg;
  scfg.max_sessions = static_cast<std::size_t>(clients) + 8;
  scfg.poll_slots = static_cast<std::size_t>(clients) + 8;
  scfg.request_slots = static_cast<std::size_t>(clients) + 8;
  NetServer server(backing, scfg);

  std::mutex mutex;  // guards stamp + samples
  std::chrono::steady_clock::time_point stamp;
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(clients) * rounds);
  std::atomic<int> observed{0};
  std::atomic<int> parked{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> pollers;
  pollers.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    pollers.emplace_back([&] {
      RemoteStore remote(client_config(server));
      std::uint64_t cursor = remote.dir_version("feed");
      parked.fetch_add(1);
      while (!done.load()) {
        std::optional<std::uint64_t> woke;
        try {
          woke = remote.long_poll("feed", cursor,
                                  std::chrono::milliseconds(500));
        } catch (const ibbe::util::FaultError&) {
          break;  // shutdown race; samples so far stand
        }
        if (!woke) continue;
        auto now = std::chrono::steady_clock::now();
        cursor = *woke;
        {
          std::lock_guard lock(mutex);
          samples.push_back(
              std::chrono::duration<double, std::milli>(now - stamp).count());
        }
        observed.fetch_add(1);
      }
    });
  }

  while (parked.load() < clients) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  RemoteStore writer(client_config(server));
  auto payload = payload_bytes();
  for (int r = 0; r < rounds; ++r) {
    {
      std::lock_guard lock(mutex);
      stamp = std::chrono::steady_clock::now();
    }
    writer.put("feed/f", payload);
    const int target = clients * (r + 1);
    while (observed.load() < target) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  done.store(true);
  for (auto& t : pollers) t.join();

  std::sort(samples.begin(), samples.end());
  PollLatencies out;
  if (!samples.empty()) {
    out.p99_ms = samples[std::min(samples.size() - 1,
                                  static_cast<std::size_t>(
                                      0.99 * static_cast<double>(samples.size())))];
    double sum = 0.0;
    for (double s : samples) sum += s;
    out.mean_ms = sum / static_cast<double>(samples.size());
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const ibbe::bench::Scale scale = ibbe::bench::parse_scale(argc, argv);
  std::string json_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }
  const bool smoke = scale == ibbe::bench::Scale::smoke;
  const bool full = scale == ibbe::bench::Scale::full;
  const int rpc_iters = smoke ? 200 : full ? 10000 : 2000;
  const int churn_iters = smoke ? 5 : full ? 100 : 25;
  const int clients = smoke ? 32 : full ? 512 : 128;
  const int rounds = smoke ? 5 : full ? 50 : 20;

  struct Metric {
    const char* name;
    double value;
  };
  std::vector<Metric> metrics;
  metrics.push_back({"net_rpc_get_us", rpc_us(false, rpc_iters)});
  metrics.push_back({"net_rpc_put_us", rpc_us(true, rpc_iters)});
  metrics.push_back({"net_grant_revoke_ops", grant_revoke_ops(churn_iters)});
  auto poll = poll_latency_ms(clients, rounds);
  metrics.push_back({"net_poll_p99_ms", poll.p99_ms});
  metrics.push_back({"net_poll_mean_ms", poll.mean_ms});

  ibbe::bench::Table table(
      "net suite (" + std::string(ibbe::bench::scale_name(scale)) + ", " +
          std::to_string(clients) + " pollers)",
      {"metric", "value"});
  for (const auto& m : metrics) {
    table.row({m.name, ibbe::bench::fmt_double(m.value, 2)});
  }
  table.print();

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    for (std::size_t i = 0; i < metrics.size(); ++i) {
      std::fprintf(f, "  \"%s\": %.2f%s\n", metrics[i].name, metrics[i].value,
                   i + 1 < metrics.size() ? "," : "");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
