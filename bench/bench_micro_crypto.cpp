// Micro-benchmarks of the cryptographic substrate (google-benchmark).
//
// These correspond to the paper's implementation section (§V-B): the costs of
// the PBC/GMP primitives the scheme is built from. They also calibrate the
// figure benches: IBBE-SGX operation costs are small multiples of G2/GT
// exponentiations and pairings.
#include <benchmark/benchmark.h>

#include "crypto/drbg.h"
#include "crypto/gcm.h"
#include "crypto/sha256.h"
#include "ec/curves.h"
#include "ec/glv.h"
#include "ec/msm.h"
#include "ibbe/ibbe.h"
#include "pairing/gt_exp.h"
#include "pairing/pairing.h"
#include "pki/ecies.h"

namespace {

using ibbe::crypto::Drbg;
using ibbe::ec::G1;
using ibbe::ec::G2;
using ibbe::field::Fp;
using ibbe::field::Fr;

Fr random_fr(Drbg& rng) {
  auto raw = rng.bytes(32);
  auto v = Fr::from_be_bytes_reduce(raw);
  return v.is_zero() ? Fr::one() : v;
}

void BM_FpMul(benchmark::State& state) {
  Drbg rng(1);
  Fp a = Fp::from_be_bytes_reduce(rng.bytes(32));
  Fp b = Fp::from_be_bytes_reduce(rng.bytes(32));
  for (auto _ : state) {
    a = a * b;
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_FpMul);

void BM_FrInverse(benchmark::State& state) {
  Drbg rng(2);
  Fr a = random_fr(rng);
  for (auto _ : state) {
    a = a.inverse() + Fr::one();
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_FrInverse);

// Generator multiplications hit the fixed-base comb tables.
void BM_G1ScalarMul(benchmark::State& state) {
  Drbg rng(3);
  G1 p = G1::generator();
  Fr k = random_fr(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.mul(k));
  }
}
BENCHMARK(BM_G1ScalarMul);

void BM_G2ScalarMul(benchmark::State& state) {
  Drbg rng(4);
  G2 p = G2::generator();
  Fr k = random_fr(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.mul(k));
  }
}
BENCHMARK(BM_G2ScalarMul);

// Arbitrary-point multiplications: the GLV/GLS endomorphism path vs the
// plain double-and-add ladder it replaced.
void BM_G1MulGlv(benchmark::State& state) {
  Drbg rng(3);
  G1 p = G1::generator().mul(random_fr(rng));
  Fr k = random_fr(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.mul(k));
  }
}
BENCHMARK(BM_G1MulGlv);

void BM_G1MulNaive(benchmark::State& state) {
  Drbg rng(3);
  G1 p = G1::generator().mul(random_fr(rng));
  Fr k = random_fr(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.scalar_mul(k.to_u256()));
  }
}
BENCHMARK(BM_G1MulNaive);

void BM_G2MulGls(benchmark::State& state) {
  Drbg rng(4);
  G2 p = G2::generator().mul(random_fr(rng));
  Fr k = random_fr(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.mul(k));
  }
}
BENCHMARK(BM_G2MulGls);

void BM_G2MulNaive(benchmark::State& state) {
  Drbg rng(4);
  G2 p = G2::generator().mul(random_fr(rng));
  Fr k = random_fr(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.scalar_mul(k.to_u256()));
  }
}
BENCHMARK(BM_G2MulNaive);

// One-shot MSM (Straus at 17, Pippenger at 64/100) vs the n scalar_mul +
// adds it replaces.
void BM_MsmG2(benchmark::State& state) {
  Drbg rng(9);
  auto n = static_cast<std::size_t>(state.range(0));
  std::vector<G2> bases;
  std::vector<Fr> scalars;
  for (std::size_t i = 0; i < n; ++i) {
    bases.push_back(G2::generator().mul(random_fr(rng)));
    scalars.push_back(random_fr(rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ibbe::ec::msm(std::span<const G2>(bases),
                                           std::span<const Fr>(scalars)));
  }
}
BENCHMARK(BM_MsmG2)->Arg(17)->Arg(64);

void BM_MsmG2Naive(benchmark::State& state) {
  Drbg rng(9);
  auto n = static_cast<std::size_t>(state.range(0));
  std::vector<G2> bases;
  std::vector<Fr> scalars;
  for (std::size_t i = 0; i < n; ++i) {
    bases.push_back(G2::generator().mul(random_fr(rng)));
    scalars.push_back(random_fr(rng));
  }
  for (auto _ : state) {
    G2 acc = G2::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      acc += bases[i].scalar_mul(scalars[i].to_u256());
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_MsmG2Naive)->Arg(17)->Arg(64);

void BM_MsmG1(benchmark::State& state) {
  Drbg rng(10);
  auto n = static_cast<std::size_t>(state.range(0));
  std::vector<G1> bases;
  std::vector<Fr> scalars;
  for (std::size_t i = 0; i < n; ++i) {
    bases.push_back(G1::generator().mul(random_fr(rng)));
    scalars.push_back(random_fr(rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ibbe::ec::msm(std::span<const G1>(bases),
                                           std::span<const Fr>(scalars)));
  }
}
BENCHMARK(BM_MsmG1)->Arg(64);

void BM_GtExp(benchmark::State& state) {
  // Routes through the cyclotomic engine: 4-dim Frobenius decomposition.
  Drbg rng(5);
  auto e = ibbe::pairing::pairing(G1::generator(), G2::generator());
  Fr k = random_fr(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.exp(k));
  }
}
BENCHMARK(BM_GtExp);

void BM_GtExpNaive(benchmark::State& state) {
  // The pre-engine path: plain bit-scan over Granger-Scott squarings.
  Drbg rng(5);
  auto e = ibbe::pairing::pairing(G1::generator(), G2::generator());
  auto k = random_fr(rng).to_u256();
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.value().pow_cyclotomic(k));
  }
}
BENCHMARK(BM_GtExpNaive);

void BM_GtPowU(benchmark::State& state) {
  // The final exponentiation's u-ladder: NAF-of-u over Karabina compressed
  // squarings with one batched decompression. Three of these per pairing.
  auto e = ibbe::pairing::pairing(G1::generator(), G2::generator());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ibbe::pairing::gt_pow_u(e.value()));
  }
}
BENCHMARK(BM_GtPowU);

void BM_GtPowUNaive(benchmark::State& state) {
  auto e = ibbe::pairing::pairing(G1::generator(), G2::generator());
  auto u = ibbe::bigint::U256::from_u64(0x44e992b44a6909f1ULL);
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.value().pow_cyclotomic(u));
  }
}
BENCHMARK(BM_GtPowUNaive);

void BM_Pairing(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ibbe::pairing::pairing(G1::generator(), G2::generator()));
  }
}
BENCHMARK(BM_Pairing);

void BM_PairingProduct2(benchmark::State& state) {
  std::vector<std::pair<G1, G2>> pairs = {
      {G1::generator(), G2::generator()},
      {G1::generator().dbl(), G2::generator()},
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(ibbe::pairing::pairing_product(pairs));
  }
}
BENCHMARK(BM_PairingProduct2);

void BM_HashToG1(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ibbe::ec::hash_to_g1("user" + std::to_string(i++)));
  }
}
BENCHMARK(BM_HashToG1);

void BM_Sha256_1KiB(benchmark::State& state) {
  std::vector<std::uint8_t> data(1024, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ibbe::crypto::Sha256::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_AesGcmSeal_1KiB(benchmark::State& state) {
  std::vector<std::uint8_t> key(32, 1), nonce(12, 2), data(1024, 3);
  ibbe::crypto::Aes256Gcm gcm(key);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gcm.seal(nonce, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_AesGcmSeal_1KiB);

void BM_EciesEncrypt(benchmark::State& state) {
  Drbg rng(6);
  auto key = ibbe::pki::EciesKeyPair::generate(rng);
  std::vector<std::uint8_t> gk(32, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ibbe::pki::ecies_encrypt(key.public_key(), gk, rng));
  }
}
BENCHMARK(BM_EciesEncrypt);

void BM_IbbeEncryptMsk(benchmark::State& state) {
  Drbg rng(7);
  auto n = static_cast<std::size_t>(state.range(0));
  auto keys = ibbe::core::setup(n, rng);
  std::vector<ibbe::core::Identity> users;
  for (std::size_t i = 0; i < n; ++i) users.push_back("u" + std::to_string(i));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ibbe::core::encrypt_with_msk(keys.msk, keys.pk, users, rng));
  }
}
BENCHMARK(BM_IbbeEncryptMsk)->Arg(16)->Arg(64)->Arg(256);

void BM_IbbeDecrypt(benchmark::State& state) {
  Drbg rng(8);
  auto n = static_cast<std::size_t>(state.range(0));
  auto keys = ibbe::core::setup(n, rng);
  std::vector<ibbe::core::Identity> users;
  for (std::size_t i = 0; i < n; ++i) users.push_back("u" + std::to_string(i));
  auto enc = ibbe::core::encrypt_with_msk(keys.msk, keys.pk, users, rng);
  auto usk = ibbe::core::extract_user_key(keys.msk, users[0]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ibbe::core::decrypt(keys.pk, usk, users, enc.ct));
  }
}
BENCHMARK(BM_IbbeDecrypt)->Arg(16)->Arg(64)->Arg(256);

void BM_IbbeDecryptBatched4(benchmark::State& state) {
  // One client in four |S|=range partitions, decrypted in one batched call;
  // compare against 4x BM_IbbeDecrypt at the same size.
  Drbg rng(8);
  auto n = static_cast<std::size_t>(state.range(0));
  auto keys = ibbe::core::setup(n, rng);
  std::vector<std::vector<ibbe::core::Identity>> sets;
  std::vector<ibbe::core::EncryptResult> encs;
  for (int p = 0; p < 4; ++p) {
    std::vector<ibbe::core::Identity> set;
    for (std::size_t i = 0; i < n; ++i) {
      set.push_back("p" + std::to_string(p) + "u" + std::to_string(i));
    }
    set[0] = "u0";  // the shared client
    encs.push_back(ibbe::core::encrypt_with_msk(keys.msk, keys.pk, set, rng));
    sets.push_back(std::move(set));
  }
  auto usk = ibbe::core::extract_user_key(keys.msk, "u0");
  std::vector<ibbe::core::PartitionRef> parts;
  for (std::size_t p = 0; p < 4; ++p) parts.push_back({sets[p], &encs[p].ct});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ibbe::core::decrypt_batched(keys.pk, usk, parts));
  }
}
BENCHMARK(BM_IbbeDecryptBatched4)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
