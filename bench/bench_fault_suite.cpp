// Degraded-mode perf trajectory: what fault handling costs when it is idle,
// what it costs when the cloud actually misbehaves, and how long crash
// recovery takes at scale.
//
//   admin_op_fault0_us   — one membership mutation (remove+add pair averaged)
//                          through a FaultInjectingStore with every rate at 0:
//                          the injector + commit-protocol overhead on the
//                          fault-free hot path;
//   admin_op_fault1_us   — the same mutation at ~1% fault rates;
//   admin_op_fault10_us  — at ~10% fault rates (retries, CAS re-syncs and
//                          op-log merges dominate);
//   recover_64p_us       — AdminApi::recover() of a committed 64-partition
//                          group: full signed-metadata re-sync, counter
//                          bump-past, orphan sweep.
//
// Retry backoff delays are zeroed throughout so the numbers measure protocol
// work (re-fetches, re-pushes, signature verifies), not sleep time. All
// schedules are seeded: the run is deterministic.
//
// Usage: bench_fault_suite [--json PATH] [--scale smoke|default|full]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cloud/fault.h"
#include "common.h"
#include "system/admin.h"
#include "util/stopwatch.h"

namespace {

using ibbe::cloud::FaultPlan;
using ibbe::system::AdminApi;
using ibbe::system::AdminConfig;
using ibbe::system::GroupId;

std::vector<ibbe::core::Identity> make_users(std::size_t n) {
  std::vector<ibbe::core::Identity> users;
  for (std::size_t i = 0; i < n; ++i) users.push_back("u" + std::to_string(i));
  return users;
}

/// Mean microseconds per membership mutation on a 24-member, |p|=4 group with
/// all fault rates set around `rate`.
double admin_op_us(double rate, int iters) {
  ibbe::sgx::EnclavePlatform platform("bench-fault");
  ibbe::enclave::IbbeEnclave enclave(platform, 4);
  ibbe::cloud::CloudStore inner;
  FaultPlan plan;
  plan.seed = 4242;
  plan.put_error_rate = rate;
  plan.ambiguous_put_rate = rate / 2;
  plan.spurious_cas_rate = rate / 2;
  plan.get_error_rate = rate;
  plan.stale_read_rate = rate / 2;
  ibbe::cloud::FaultInjectingStore faulty(inner, plan);
  ibbe::crypto::Drbg rng(7);
  AdminConfig config;
  config.partition_size = 4;
  config.log_operations = true;
  config.retry = ibbe::util::RetryPolicy{}.without_delays();
  AdminApi admin(enclave, faulty, ibbe::pki::EcdsaKeyPair::generate(rng),
                 config, /*seed=*/3);
  const GroupId gid = "g";
  admin.create_group(gid, make_users(24));

  // Warm-up pair, then the timed churn loop: every iteration revokes and
  // re-admits one member (gk rotation + partition re-key + extend).
  admin.remove_user(gid, "u0");
  admin.add_user(gid, "u0");
  ibbe::util::Stopwatch sw;
  for (int i = 0; i < iters; ++i) {
    admin.remove_user(gid, "u0");
    admin.add_user(gid, "u0");
  }
  return sw.micros() / (2.0 * iters);
}

/// Mean microseconds for a cold admin to recover a committed 128-member,
/// |p|=2 group: 64 partition fetches + signature verifies, counter scan,
/// orphan sweep.
double recover_64p_us(int iters) {
  ibbe::sgx::EnclavePlatform platform("bench-recover");
  ibbe::enclave::IbbeEnclave enclave(platform, 2);
  ibbe::cloud::CloudStore cloud;
  ibbe::crypto::Drbg rng(9);
  auto key = ibbe::pki::EcdsaKeyPair::generate(rng);
  AdminConfig config;
  config.partition_size = 2;
  config.log_operations = true;
  AdminApi builder(enclave, cloud, key, config, /*seed=*/11);
  const GroupId gid = "g";
  builder.create_group(gid, make_users(128));

  double total = 0;
  for (int i = 0; i < iters; ++i) {
    AdminApi cold(enclave, cloud, key, config, /*seed=*/100 + i);
    ibbe::util::Stopwatch sw;
    volatile bool ok = cold.recover(gid);
    total += sw.micros();
    if (!ok) std::fprintf(stderr, "recover failed\n");
  }
  return total / iters;
}

}  // namespace

int main(int argc, char** argv) {
  const ibbe::bench::Scale scale = ibbe::bench::parse_scale(argc, argv);
  std::string json_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }
  const int iters = scale == ibbe::bench::Scale::smoke  ? 5
                    : scale == ibbe::bench::Scale::full ? 100
                                                        : 25;

  struct Metric {
    const char* name;
    double us;
  };
  std::vector<Metric> metrics;
  metrics.push_back({"admin_op_fault0_us", admin_op_us(0.0, iters)});
  metrics.push_back({"admin_op_fault1_us", admin_op_us(0.01, iters)});
  metrics.push_back({"admin_op_fault10_us", admin_op_us(0.10, iters)});
  metrics.push_back({"recover_64p_us", recover_64p_us(iters)});

  ibbe::bench::Table table("fault suite (" +
                               std::string(ibbe::bench::scale_name(scale)) +
                               ")",
                           {"metric", "time_us"});
  for (const auto& m : metrics) {
    table.row({m.name, std::to_string(m.us)});
  }
  table.print();

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    for (std::size_t i = 0; i < metrics.size(); ++i) {
      std::fprintf(f, "  \"%s\": %.2f%s\n", metrics[i].name, metrics[i].us,
                   i + 1 < metrics.size() ? "," : "");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
