// Degraded-mode perf trajectory: what fault handling costs when it is idle,
// what it costs when the cloud actually misbehaves, and how long crash
// recovery takes at scale.
//
//   admin_op_fault0_us   — one membership mutation (remove+add pair averaged)
//                          through a FaultInjectingStore with every rate at 0:
//                          the injector + commit-protocol overhead on the
//                          fault-free hot path;
//   admin_op_fault1_us   — the same mutation at ~1% fault rates;
//   admin_op_fault10_us  — at ~10% fault rates (retries, CAS re-syncs and
//                          op-log merges dominate);
//   recover_64p_us       — AdminApi::recover() of a committed 64-partition
//                          group: full signed-metadata re-sync, counter
//                          bump-past, orphan sweep;
//   fetch_plain_us       — ClientApi group-key fetch with freshness
//                          verification OFF (admin-signature check only);
//   fetch_verified_us    — the same fetch with enclave-anchored freshness
//                          ON: one extra P-256 verify over the 112-byte
//                          token plus the high-water-mark comparison. The
//                          acceptance bar is <10% over fetch_plain_us;
//   fork_detect_rounds   — poll rounds a client on one side of an
//                          equal-counter fork needs before it reports
//                          `forked` (the protocol guarantees 1: the first
//                          gossip observation from the other side proves
//                          divergence).
//
// Retry backoff delays are zeroed throughout so the numbers measure protocol
// work (re-fetches, re-pushes, signature verifies), not sleep time. All
// schedules are seeded: the run is deterministic.
//
// Usage: bench_fault_suite [--json PATH] [--scale smoke|default|full]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cloud/fault.h"
#include "common.h"
#include "system/admin.h"
#include "system/client.h"
#include "util/stopwatch.h"

namespace {

using ibbe::cloud::FaultPlan;
using ibbe::system::AdminApi;
using ibbe::system::AdminConfig;
using ibbe::system::GroupId;

std::vector<ibbe::core::Identity> make_users(std::size_t n) {
  std::vector<ibbe::core::Identity> users;
  for (std::size_t i = 0; i < n; ++i) users.push_back("u" + std::to_string(i));
  return users;
}

/// Mean microseconds per membership mutation on a 24-member, |p|=4 group with
/// all fault rates set around `rate`.
double admin_op_us(double rate, int iters) {
  ibbe::sgx::EnclavePlatform platform("bench-fault");
  ibbe::enclave::IbbeEnclave enclave(platform, 4);
  ibbe::cloud::CloudStore inner;
  FaultPlan plan;
  plan.seed = 4242;
  plan.put_error_rate = rate;
  plan.ambiguous_put_rate = rate / 2;
  plan.spurious_cas_rate = rate / 2;
  plan.get_error_rate = rate;
  plan.stale_read_rate = rate / 2;
  ibbe::cloud::FaultInjectingStore faulty(inner, plan);
  ibbe::crypto::Drbg rng(7);
  AdminConfig config;
  config.partition_size = 4;
  config.log_operations = true;
  config.retry = ibbe::util::RetryPolicy{}.without_delays();
  AdminApi admin(enclave, faulty, ibbe::pki::EcdsaKeyPair::generate(rng),
                 config, /*seed=*/3);
  const GroupId gid = "g";
  admin.create_group(gid, make_users(24));

  // Warm-up pair, then the timed churn loop: every iteration revokes and
  // re-admits one member (gk rotation + partition re-key + extend).
  admin.remove_user(gid, "u0");
  admin.add_user(gid, "u0");
  ibbe::util::Stopwatch sw;
  for (int i = 0; i < iters; ++i) {
    admin.remove_user(gid, "u0");
    admin.add_user(gid, "u0");
  }
  return sw.micros() / (2.0 * iters);
}

/// Mean microseconds for a cold admin to recover a committed 128-member,
/// |p|=2 group: 64 partition fetches + signature verifies, counter scan,
/// orphan sweep.
double recover_64p_us(int iters) {
  ibbe::sgx::EnclavePlatform platform("bench-recover");
  ibbe::enclave::IbbeEnclave enclave(platform, 2);
  ibbe::cloud::CloudStore cloud;
  ibbe::crypto::Drbg rng(9);
  auto key = ibbe::pki::EcdsaKeyPair::generate(rng);
  AdminConfig config;
  config.partition_size = 2;
  config.log_operations = true;
  AdminApi builder(enclave, cloud, key, config, /*seed=*/11);
  const GroupId gid = "g";
  builder.create_group(gid, make_users(128));

  double total = 0;
  for (int i = 0; i < iters; ++i) {
    AdminApi cold(enclave, cloud, key, config, /*seed=*/100 + i);
    ibbe::util::Stopwatch sw;
    volatile bool ok = cold.recover(gid);
    total += sw.micros();
    if (!ok) std::fprintf(stderr, "recover failed\n");
  }
  return total / iters;
}

/// Mean microseconds per client group-key fetch on a committed 24-member
/// group, with or without the enclave-anchored freshness check.
double fetch_us(bool verified, int iters) {
  ibbe::sgx::EnclavePlatform platform("bench-fetch");
  ibbe::enclave::IbbeEnclave enclave(platform, 4);
  ibbe::cloud::CloudStore cloud;
  ibbe::crypto::Drbg rng(13);
  AdminConfig config;
  config.partition_size = 4;
  config.log_operations = true;
  AdminApi admin(enclave, cloud, ibbe::pki::EcdsaKeyPair::generate(rng),
                 config, /*seed=*/5);
  const GroupId gid = "g";
  admin.create_group(gid, make_users(24));
  admin.remove_user(gid, "u0");  // a second commit so the counter has moved
  admin.add_user(gid, "u0");

  ibbe::system::ClientApi client(cloud, enclave.public_key(),
                                 enclave.ecall_extract_user_key("u1"),
                                 admin.verification_point());
  if (verified) {
    client.enable_freshness(enclave.freshness_verification_key());
  }
  if (!client.fetch_group_key(gid)) std::fprintf(stderr, "fetch failed\n");
  ibbe::util::Stopwatch sw;
  for (int i = 0; i < iters; ++i) {
    volatile bool ok = client.fetch_group_key(gid).has_value();
    if (!ok) std::fprintf(stderr, "fetch failed\n");
  }
  return sw.micros() / iters;
}

/// Poll rounds until a client on one side of an equal-counter fork reports
/// `forked`. Reproduces the equivocation construction from the Byzantine
/// test suite: admin B's index CAS loses to a full commit by admin A inside
/// the CAS window, so B's rejected payload is an enclave-attested view of
/// the same counter with a different log head.
double fork_detect_rounds() {
  ibbe::sgx::EnclavePlatform platform("bench-fork");
  ibbe::enclave::IbbeEnclave enclave(platform, 8);
  ibbe::cloud::CloudStore inner;
  ibbe::cloud::MaliciousStore malicious(inner, ibbe::cloud::MaliciousPlan{});
  ibbe::cloud::FaultInjectingStore faulty(malicious,
                                          FaultPlan{});  // write hook only
  ibbe::crypto::Drbg rng(17);
  auto key_a = ibbe::pki::EcdsaKeyPair::generate(rng);
  auto key_b = ibbe::pki::EcdsaKeyPair::generate(rng);
  auto config_for = [&](std::uint32_t nonce, const std::string& name,
                        const ibbe::pki::EcdsaKeyPair& peer) {
    AdminConfig config;
    config.partition_size = 3;
    config.multi_admin = true;
    config.admin_nonce = nonce;
    config.admin_name = name;
    config.log_operations = true;
    config.retry = ibbe::util::RetryPolicy{}.without_delays();
    config.peer_verification_keys = {
        ibbe::ec::p256_to_bytes(peer.public_key())};
    return config;
  };
  AdminApi admin_a(enclave, faulty, key_a, config_for(1, "A", key_b), 8);
  AdminApi admin_b(enclave, faulty, key_b, config_for(2, "B", key_a), 9);
  const GroupId gid = "g";
  const std::string index = ibbe::system::index_path(gid);
  admin_a.create_group(gid, make_users(4));
  admin_b.sync_from_cloud(gid);
  bool fired = false;
  faulty.set_write_hook([&](const std::string& path) {
    if (fired || path != index) return;
    fired = true;
    admin_a.add_user(gid, "from-a");
  });
  admin_b.add_user(gid, "from-b");
  auto rejected = malicious.rejected_writes(index);
  if (!fired || rejected.empty()) {
    std::fprintf(stderr, "fork construction failed\n");
    return -1;
  }
  for (const auto& path : inner.list(ibbe::system::gossip_dir(gid))) {
    (void)inner.erase(path);
  }
  const std::size_t fork_gen = 1;
  malicious.pin_view("X", fork_gen);
  malicious.override_path("X", index, rejected[0]);
  malicious.pin_view("Y", fork_gen);

  std::vector<ibbe::ec::P256Point> admin_keys = {key_a.public_key(),
                                                 key_b.public_key()};
  auto make_client = [&](const std::string& id, const std::string& name) {
    ibbe::system::ClientApi client(malicious.view(name), enclave.public_key(),
                                   enclave.ecall_extract_user_key(id),
                                   admin_keys);
    client.set_retry_policy(ibbe::util::RetryPolicy{}.without_delays());
    client.enable_freshness(enclave.freshness_verification_key());
    client.enable_gossip(name);
    return client;
  };
  auto x = make_client("u0", "X");
  auto y = make_client("u1", "Y");
  if (x.fetch(gid).status != ibbe::system::ClientApi::FetchStatus::ok) {
    std::fprintf(stderr, "fork bench: side X did not verify\n");
    return -1;
  }
  int rounds = 0;
  while (rounds < 16) {
    ++rounds;
    if (y.fetch(gid).status == ibbe::system::ClientApi::FetchStatus::forked) {
      return rounds;
    }
  }
  std::fprintf(stderr, "fork bench: divergence never detected\n");
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  const ibbe::bench::Scale scale = ibbe::bench::parse_scale(argc, argv);
  std::string json_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }
  const int iters = scale == ibbe::bench::Scale::smoke  ? 5
                    : scale == ibbe::bench::Scale::full ? 100
                                                        : 25;

  struct Metric {
    const char* name;
    double us;
  };
  std::vector<Metric> metrics;
  metrics.push_back({"admin_op_fault0_us", admin_op_us(0.0, iters)});
  metrics.push_back({"admin_op_fault1_us", admin_op_us(0.01, iters)});
  metrics.push_back({"admin_op_fault10_us", admin_op_us(0.10, iters)});
  metrics.push_back({"recover_64p_us", recover_64p_us(iters)});
  metrics.push_back({"fetch_plain_us", fetch_us(false, 4 * iters)});
  metrics.push_back({"fetch_verified_us", fetch_us(true, 4 * iters)});
  metrics.push_back({"fork_detect_rounds", fork_detect_rounds()});

  ibbe::bench::Table table("fault suite (" +
                               std::string(ibbe::bench::scale_name(scale)) +
                               ")",
                           {"metric", "value"});
  for (const auto& m : metrics) {
    table.row({m.name, std::to_string(m.us)});
  }
  table.print();

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    for (std::size_t i = 0; i < metrics.size(); ++i) {
      std::fprintf(f, "  \"%s\": %.2f%s\n", metrics[i].name, metrics[i].us,
                   i + 1 < metrics.size() ? "," : "");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
