// Figure 6 — system bootstrap:
//   (a) System Setup latency vs partition size (linear: the PK power table
//       h^gamma^i costs one G2 exponentiation per slot);
//   (b) user-key extraction throughput (constant per partition size).
//
// Runs inside the enclave, as in the paper (the enclave constructor performs
// Setup; extraction is an ECALL).
#include "common.h"
#include "enclave/ibbe_enclave.h"
#include "util/stopwatch.h"

using namespace ibbe;

int main(int argc, char** argv) {
  auto scale = bench::parse_scale(argc, argv);
  std::printf("# Figure 6: bootstrap (setup latency, key-extract throughput) [scale=%s]\n",
              bench::scale_name(scale));

  std::vector<std::size_t> partition_sizes;
  std::size_t extractions;
  switch (scale) {
    case bench::Scale::smoke:
      partition_sizes = {64, 128};
      extractions = 20;
      break;
    case bench::Scale::full:
      partition_sizes = {1000, 2000, 3000, 4000};
      extractions = 500;
      break;
    default:
      partition_sizes = {500, 1000, 2000, 4000};
      extractions = 200;
  }

  bench::Table table("Fig. 6a/6b — setup latency and extract throughput",
                     {"partition size", "setup latency", "setup s/1k users",
                      "extract ops/s"});

  for (std::size_t m : partition_sizes) {
    sgx::EnclavePlatform platform("bench");
    util::Stopwatch setup_watch;
    enclave::IbbeEnclave enclave(platform, m);
    double setup_s = setup_watch.seconds();

    util::Stopwatch extract_watch;
    for (std::size_t i = 0; i < extractions; ++i) {
      (void)enclave.ecall_extract_user_key("user" + std::to_string(i));
    }
    double ops_per_s =
        static_cast<double>(extractions) / extract_watch.seconds();

    table.row({std::to_string(m), bench::fmt_seconds(setup_s),
               bench::fmt_seconds(setup_s * 1000.0 / static_cast<double>(m)),
               bench::fmt_double(ops_per_s, 0)});
  }

  table.print();
  std::printf(
      "Expected shape (paper): setup grows linearly with the partition size\n"
      "(~1.2 s per 1000 users on the paper's i7-6600U); extraction throughput\n"
      "is flat across partition sizes (~764 op/s in the paper).\n");
  return 0;
}
