// Figure 2 — raw schemes, no SGX, no partitioning:
//   (a) latency to create a group of n users under HE-PKI, HE-IBE and
//       traditional IBBE (the O(n^2) public-key encrypt path);
//   (b) group metadata expansion of the same three schemes.
//
// The paper's grid runs to one million users (10+ hours for raw IBBE on the
// authors' hardware — that impracticality is the figure's entire point); the
// scaled grids below reproduce the crossovers and slopes in minutes. Sizes
// at which a scheme would exceed the time budget are skipped and marked.
#include <memory>
#include <optional>

#include "common.h"
#include "crypto/drbg.h"
#include "he/he_ibe.h"
#include "he/he_pki.h"
#include "ibbe/ibbe.h"
#include "util/stopwatch.h"

using namespace ibbe;

namespace {

std::vector<core::Identity> make_users(std::size_t n) {
  std::vector<core::Identity> users;
  users.reserve(n);
  for (std::size_t i = 0; i < n; ++i) users.push_back("user" + std::to_string(i));
  return users;
}

struct Sample {
  double create_seconds;
  std::size_t metadata_bytes;
};

Sample run_he(he::GroupScheme& scheme, const std::vector<core::Identity>& users) {
  if (auto* pki = dynamic_cast<he::HePkiScheme*>(&scheme)) {
    pki->register_users(users);  // PKI registration is out-of-band
  }
  util::Stopwatch watch;
  scheme.create_group(users);
  return {watch.seconds(), scheme.metadata_size()};
}

Sample run_raw_ibbe(const std::vector<core::Identity>& users) {
  crypto::Drbg rng(17);
  // Raw IBBE: a single "partition" spanning the whole group; the system
  // public key is linear in the group size (paper §III-C).
  auto keys = core::setup(users.size(), rng);
  util::Stopwatch watch;
  auto enc = core::encrypt_public(keys.pk, users, rng);
  double seconds = watch.seconds();
  return {seconds, enc.ct.to_bytes().size()};
}

}  // namespace

int main(int argc, char** argv) {
  auto scale = bench::parse_scale(argc, argv);
  std::printf("# Figure 2: raw HE-PKI / HE-IBE / IBBE (no SGX) [scale=%s]\n",
              bench::scale_name(scale));

  std::vector<std::size_t> sizes;
  std::size_t he_ibe_cap, ibbe_cap;
  switch (scale) {
    case bench::Scale::smoke:
      sizes = {64, 128};
      he_ibe_cap = 128;
      ibbe_cap = 128;
      break;
    case bench::Scale::full:
      sizes = {1000, 10000, 100000};
      he_ibe_cap = 10000;
      ibbe_cap = 20000;
      break;
    default:
      sizes = {256, 512, 1024, 2048, 4096};
      he_ibe_cap = 1024;
      ibbe_cap = 4096;
  }

  bench::Table table("Fig. 2a/2b — group creation latency and metadata size",
                     {"users", "scheme", "create", "metadata", "bytes/user"});

  for (std::size_t n : sizes) {
    auto users = make_users(n);

    he::HePkiScheme he_pki(1);
    auto pki = run_he(he_pki, users);
    table.row({std::to_string(n), "HE-PKI", bench::fmt_seconds(pki.create_seconds),
               bench::fmt_bytes(pki.metadata_bytes),
               bench::fmt_double(static_cast<double>(pki.metadata_bytes) /
                                 static_cast<double>(n), 1)});

    if (n <= he_ibe_cap) {
      he::HeIbeScheme he_ibe(2);
      auto ibe = run_he(he_ibe, users);
      table.row({std::to_string(n), "HE-IBE", bench::fmt_seconds(ibe.create_seconds),
                 bench::fmt_bytes(ibe.metadata_bytes),
                 bench::fmt_double(static_cast<double>(ibe.metadata_bytes) /
                                   static_cast<double>(n), 1)});
    } else {
      table.row({std::to_string(n), "HE-IBE", "(skipped: time budget)", "-", "-"});
    }

    if (n <= ibbe_cap) {
      auto raw = run_raw_ibbe(users);
      table.row({std::to_string(n), "IBBE-raw",
                 bench::fmt_seconds(raw.create_seconds),
                 bench::fmt_bytes(raw.metadata_bytes),
                 bench::fmt_double(static_cast<double>(raw.metadata_bytes) /
                                   static_cast<double>(n), 2)});
    } else {
      table.row({std::to_string(n), "IBBE-raw", "(skipped: time budget)", "-", "-"});
    }
  }

  table.print();
  std::printf(
      "Expected shape (paper): IBBE metadata constant (~hundreds of bytes) vs\n"
      "linear HE growth; IBBE latency 2+ orders of magnitude above HE-PKI and\n"
      "growing superlinearly — the impracticality IBBE-SGX removes.\n");
  return 0;
}
