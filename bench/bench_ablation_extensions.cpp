// Ablations for the design choices and future-work extensions DESIGN.md
// calls out:
//
//   A. C3 caching            — O(1) add/remove vs recomputing from PK
//   B. batch revocation      — one gk rotation per batch vs one per user
//   C. adaptive partitioning — fixed vs advisor-driven size under churn
//   D. wNAF scalar mult      — windowed-NAF vs double-and-add
#include "common.h"
#include "crypto/drbg.h"
#include "ibbe/ibbe.h"
#include "system/ibbe_scheme.h"
#include "trace/replay.h"
#include "util/stopwatch.h"

using namespace ibbe;

namespace {

std::vector<core::Identity> make_users(std::size_t n) {
  std::vector<core::Identity> users;
  users.reserve(n);
  for (std::size_t i = 0; i < n; ++i) users.push_back("user" + std::to_string(i));
  return users;
}

}  // namespace

int main(int argc, char** argv) {
  auto scale = bench::parse_scale(argc, argv);
  std::printf("# Ablations: extension design choices [scale=%s]\n",
              bench::scale_name(scale));

  std::size_t n = scale == bench::Scale::smoke ? 64 : 512;
  std::size_t batch_group = scale == bench::Scale::smoke ? 60 : 600;
  std::size_t batch_k = scale == bench::Scale::smoke ? 6 : 40;
  std::size_t churn_ops = scale == bench::Scale::smoke ? 80 : 600;

  crypto::Drbg rng(77);

  // ---------------------------------------------------- A: C3 caching
  {
    auto keys = core::setup(n + 1, rng);  // +1: head-room for the joiner
    auto users = make_users(n);
    auto enc = core::encrypt_with_msk(keys.msk, keys.pk, users, rng);

    util::Stopwatch watch;
    core::add_user_with_msk(keys.msk, enc.ct, "joiner");
    double cached = watch.seconds();

    // Without the cached C3 the admin would recompute it from the PK powers
    // (the paper's Formula 4/5 quadratic path) on every membership change.
    auto extended = users;
    extended.push_back("joiner");
    watch.reset();
    (void)core::compute_c3_public(keys.pk, extended);
    double recomputed = watch.seconds();

    bench::Table t("Ablation A — C3 cache (add-user to a " + std::to_string(n) +
                       "-user partition)",
                   {"variant", "latency", "speedup"});
    t.row({"cached C3 (paper's O(1))", bench::fmt_seconds(cached), "1x"});
    t.row({"recompute C3 from PK (no cache)", bench::fmt_seconds(recomputed),
           bench::fmt_double(recomputed / cached, 1) + "x slower"});
    t.print();
  }

  // ------------------------------------------------ B: batch revocation
  {
    bench::Table t("Ablation B — batch revocation (" + std::to_string(batch_k) +
                       " users out of " + std::to_string(batch_group) + ")",
                   {"variant", "latency", "enclave calls", "gk rotations"});
    auto leavers = make_users(batch_k);  // user0..user{k-1}

    {
      system::IbbeSgxScheme scheme(100, 1);
      scheme.create_group(make_users(batch_group));
      auto ecalls0 = scheme.enclave().ecall_count();
      util::Stopwatch watch;
      for (const auto& id : leavers) scheme.admin().remove_user("g", id);
      t.row({"sequential remove_user", bench::fmt_seconds(watch.seconds()),
             std::to_string(scheme.enclave().ecall_count() - ecalls0),
             std::to_string(batch_k)});
    }
    {
      system::IbbeSgxScheme scheme(100, 1);
      scheme.create_group(make_users(batch_group));
      auto ecalls0 = scheme.enclave().ecall_count();
      util::Stopwatch watch;
      scheme.admin().remove_users("g", leavers);
      t.row({"batched remove_users", bench::fmt_seconds(watch.seconds()),
             std::to_string(scheme.enclave().ecall_count() - ecalls0), "1"});
    }
    t.print();
  }

  // -------------------------------------- C: adaptive partition sizing
  {
    bench::Table t("Ablation C — fixed vs adaptive partition size (removal-heavy churn)",
                   {"variant", "admin replay", "final |p| target", "repartitions"});
    auto trace = trace::revocation_trace(churn_ops, 0.7, 5, churn_ops);

    auto run = [&](bool adaptive) {
      sgx::EnclavePlatform platform("ablation");
      enclave::IbbeEnclave enclave(platform, 512);
      cloud::CloudStore cloud;
      crypto::Drbg key_rng(9);
      system::AdminConfig config;
      config.partition_size = 32;
      config.adaptive_partitioning = adaptive;
      config.min_partition_size = 8;
      system::AdminApi admin(enclave, cloud, pki::EcdsaKeyPair::generate(key_rng),
                             config, 10);
      admin.create_group("g", trace.initial_members);
      util::Stopwatch watch;
      for (const auto& op : trace.ops) {
        if (op.kind == trace::OpKind::add) {
          admin.add_user("g", op.user);
        } else {
          admin.remove_user("g", op.user);
        }
      }
      t.row({adaptive ? "adaptive (advisor-driven)" : "fixed |p|=32",
             bench::fmt_seconds(watch.seconds()),
             std::to_string(admin.partition_size_target("g")),
             std::to_string(admin.stats().repartitions)});
    };
    run(false);
    run(true);
    t.print();
  }

  // ------------------------------------------------------- D: wNAF
  {
    bench::Table t("Ablation D — scalar multiplication (G2, 200 multiplies)",
                   {"variant", "total", "per op"});
    std::vector<bigint::U256> scalars;
    for (int i = 0; i < 200; ++i) {
      bigint::U256 k;
      for (auto& limb : k.limb) limb = rng.next_u64();
      scalars.push_back(k);
    }
    auto g2 = ec::G2::generator();
    util::Stopwatch watch;
    for (const auto& k : scalars) (void)g2.scalar_mul(k);
    double plain = watch.seconds();
    watch.reset();
    for (const auto& k : scalars) (void)g2.scalar_mul_wnaf(k);
    double wnaf = watch.seconds();
    t.row({"double-and-add", bench::fmt_seconds(plain),
           bench::fmt_seconds(plain / 200)});
    t.row({"wNAF (w=4)", bench::fmt_seconds(wnaf),
           bench::fmt_seconds(wnaf / 200) + " (" +
               bench::fmt_double(plain / wnaf, 2) + "x)"});
    t.print();
  }

  return 0;
}
