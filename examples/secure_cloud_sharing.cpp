// Secure cloud file sharing — the paper's motivating scenario, end to end:
//
//   * a WAN-latency cloud store (simulated Dropbox);
//   * the full Fig. 3 trust establishment: enclave quote -> IAS check ->
//     Auditor/CA certificate -> users verify the certificate and receive
//     their IBBE keys over an encrypted channel;
//   * collaborative editing: members AES-GCM-encrypt file revisions under
//     the group key; clients discover changes by long polling;
//   * revocation: the key rotates, the revoked member keeps access to
//     nothing written afterwards.
//
// Build & run:  ./build/examples/secure_cloud_sharing
#include <cstdio>
#include <thread>

#include "crypto/gcm.h"
#include "pki/ecies.h"
#include "sgx/attestation.h"
#include "system/admin.h"
#include "system/client.h"

using namespace ibbe;
using namespace std::chrono_literals;

namespace {

// A member encrypts a file revision under the group key and uploads it.
void upload_document(cloud::CloudStore& cloud, const util::Bytes& gk,
                     const std::string& path, const std::string& text,
                     crypto::Drbg& rng) {
  crypto::Aes256Gcm gcm(gk);
  auto nonce = rng.bytes(crypto::Aes256Gcm::nonce_size);
  auto sealed = gcm.seal(nonce, {reinterpret_cast<const std::uint8_t*>(text.data()),
                                 text.size()});
  util::ByteWriter w;
  w.blob(nonce);
  w.blob(sealed);
  cloud.put(path, w.take());
}

std::optional<std::string> download_document(cloud::CloudStore& cloud,
                                             const util::Bytes& gk,
                                             const std::string& path) {
  auto raw = cloud.get(path);
  if (!raw) return std::nullopt;
  util::ByteReader r(*raw);
  auto nonce = r.blob();
  auto sealed = r.blob();
  crypto::Aes256Gcm gcm(gk);
  auto pt = gcm.open(nonce, sealed);
  if (!pt) return std::nullopt;
  return std::string(pt->begin(), pt->end());
}

}  // namespace

int main() {
  // ------------------------------------------------------------------
  // Trust establishment (Fig. 3).
  // ------------------------------------------------------------------
  sgx::EnclavePlatform platform("admin-server");
  enclave::IbbeEnclave enclave(platform, /*max_partition_size=*/8);

  sgx::AttestationService ias;           // Intel's attestation service
  ias.register_platform(platform);

  crypto::Drbg auditor_rng;
  sgx::Auditor auditor("acme-auditor", ias,
                       enclave::IbbeEnclave::image().measure(), auditor_rng);

  auto cert = auditor.attest_and_certify(enclave.attestation_quote(),
                                         enclave.identity_public_key());
  if (!cert) {
    std::printf("attestation failed\n");
    return 1;
  }
  std::printf("[auditor] enclave attested and certified (issuer=%s)\n",
              cert->issuer.c_str());

  // Users verify the certificate chain, then receive their keys through the
  // enclave's encrypted provisioning channel.
  auto provision_user = [&](const core::Identity& id) {
    if (!pki::CertificateAuthority::verify(*cert, auditor.ca_public_key())) {
      throw std::runtime_error("certificate verification failed");
    }
    crypto::Drbg user_rng;
    auto channel_key = pki::EciesKeyPair::generate(user_rng);
    auto blob = enclave.ecall_provision_user_key(id, channel_key.public_key_bytes());
    auto usk_bytes = channel_key.decrypt(blob);
    if (!usk_bytes) throw std::runtime_error("provisioning channel corrupted");
    auto usk = core::UserSecretKey::from_bytes(*usk_bytes);
    if (!core::verify_user_key(enclave.public_key(), usk)) {
      throw std::runtime_error("provisioned key failed the pairing check");
    }
    std::printf("[%s] key provisioned and verified against PK\n", id.c_str());
    return usk;
  };

  // ------------------------------------------------------------------
  // Group setup over a WAN-latency cloud.
  // ------------------------------------------------------------------
  cloud::CloudStore cloud(cloud::LatencyModel::wan());
  crypto::Drbg rng;
  system::AdminApi admin(enclave, cloud, pki::EcdsaKeyPair::generate(rng),
                         {.partition_size = 4});

  std::vector<core::Identity> team = {"alice", "bob", "carol", "dave", "erin"};
  admin.create_group("design-docs", team);
  std::printf("[admin] group 'design-docs' pushed to the cloud (%zu partitions)\n",
              admin.partition_count("design-docs"));

  system::ClientApi alice(cloud, enclave.public_key(), provision_user("alice"),
                          admin.verification_point());
  system::ClientApi bob(cloud, enclave.public_key(), provision_user("bob"),
                        admin.verification_point());
  if (!alice.verify_credentials() || !bob.verify_credentials()) {
    std::printf("client credential check failed\n");
    return 1;
  }

  // ------------------------------------------------------------------
  // Collaborative editing.
  // ------------------------------------------------------------------
  auto gk_alice = alice.fetch_group_key("design-docs");
  upload_document(cloud, *gk_alice, "files/design-docs/spec.md",
                  "v1: the quick brown fox", rng);
  std::printf("[alice] uploaded spec.md (encrypted under gk)\n");

  auto gk_bob = bob.fetch_group_key("design-docs");
  auto doc = download_document(cloud, *gk_bob, "files/design-docs/spec.md");
  std::printf("[bob]   read spec.md: \"%s\"\n", doc->c_str());

  // Bob watches for membership changes in the background (long polling),
  // exactly like the paper's Dropbox client.
  std::optional<util::Bytes> bob_new_key;
  std::thread watcher([&] {
    bob_new_key = bob.wait_for_update("design-docs", 5s);
  });

  // ------------------------------------------------------------------
  // Revocation.
  // ------------------------------------------------------------------
  std::this_thread::sleep_for(50ms);
  admin.remove_user("design-docs", "erin");
  std::printf("[admin] revoked erin; group re-keyed\n");
  watcher.join();

  if (!bob_new_key) {
    std::printf("[bob]   long poll missed the update\n");
    return 1;
  }
  std::printf("[bob]   long poll picked up the rotation (key %s)\n",
              *bob_new_key == *gk_bob ? "unchanged?!" : "changed");

  upload_document(cloud, *bob_new_key, "files/design-docs/spec.md",
                  "v2: adds the lazy dog (post-revocation)", rng);

  // Erin still holds the old gk — it no longer opens the new revision.
  auto erin_view = download_document(cloud, *gk_alice /* the OLD key */,
                                     "files/design-docs/spec.md");
  std::printf("[erin]  decrypting v2 with the pre-revocation key: %s\n",
              erin_view ? "SUCCEEDED (bug!)" : "failed, as intended");

  auto alice_refreshed = alice.fetch_group_key("design-docs");
  auto v2 = download_document(cloud, *alice_refreshed,
                              "files/design-docs/spec.md");
  std::printf("[alice] read spec.md: \"%s\"\n", v2->c_str());

  auto stats = cloud.stats();
  std::printf(
      "[cloud] %llu puts / %llu gets / %llu long-polls, %llu B up, %llu B down\n",
      static_cast<unsigned long long>(stats.puts),
      static_cast<unsigned long long>(stats.gets),
      static_cast<unsigned long long>(stats.long_polls),
      static_cast<unsigned long long>(stats.bytes_uploaded),
      static_cast<unsigned long long>(stats.bytes_downloaded));
  return 0;
}
