// Quickstart: the smallest end-to-end IBBE-SGX deployment.
//
//   1. Boot a (simulated) SGX platform and load the IBBE-SGX enclave.
//   2. Create a group of users; the enclave emits per-partition metadata.
//   3. A member client derives the group key from public metadata alone.
//   4. Revoke a member and watch the key rotate underneath everyone.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "system/admin.h"
#include "system/client.h"

using namespace ibbe;

namespace {

std::string hex_prefix(const util::Bytes& bytes) {
  static const char digits[] = "0123456789abcdef";
  std::string out;
  for (std::size_t i = 0; i < 8 && i < bytes.size(); ++i) {
    out.push_back(digits[bytes[i] >> 4]);
    out.push_back(digits[bytes[i] & 0xf]);
  }
  return out + "...";
}

}  // namespace

int main() {
  // --- infrastructure: one SGX machine, one cloud store, one administrator.
  sgx::EnclavePlatform platform("admin-laptop");
  enclave::IbbeEnclave enclave(platform, /*max_partition_size=*/4);

  cloud::CloudStore cloud;
  crypto::Drbg rng;
  system::AdminApi admin(enclave, cloud, pki::EcdsaKeyPair::generate(rng),
                         {.partition_size = 4});

  // --- the administrator creates a group. It never sees the group key: all
  // key material is produced inside the enclave and leaves it wrapped.
  std::vector<core::Identity> members = {"alice", "bob", "carol",
                                         "dave",  "erin", "frank"};
  admin.create_group("demo-team", members);
  std::printf("created group 'demo-team' with %zu members in %zu partitions\n",
              admin.group_size("demo-team"), admin.partition_count("demo-team"));

  // --- a member derives the group key from public cloud metadata + her
  // provisioned user secret key. (Provisioning normally runs the Fig. 3
  // attestation flow; examples/secure_cloud_sharing.cpp shows it in full.)
  auto make_client = [&](const core::Identity& id) {
    return system::ClientApi(cloud, enclave.public_key(),
                             enclave.ecall_extract_user_key(id),
                             admin.verification_point());
  };

  auto alice = make_client("alice");
  auto gk1 = alice.fetch_group_key("demo-team");
  if (!gk1) return 1;
  std::printf("alice derived the group key:  %s\n", hex_prefix(*gk1).c_str());

  auto erin = make_client("erin");
  auto gk_erin = erin.fetch_group_key("demo-team");
  std::printf("erin derived the same key:    %s (%s)\n",
              hex_prefix(*gk_erin).c_str(),
              *gk_erin == *gk1 ? "match" : "MISMATCH");

  // --- membership changes: adds are O(1) and do not rotate the key...
  admin.add_user("demo-team", "grace");
  auto grace = make_client("grace");
  auto gk_grace = grace.fetch_group_key("demo-team");
  std::printf("grace joined; her key:        %s (%s)\n",
              hex_prefix(*gk_grace).c_str(),
              *gk_grace == *gk1 ? "unchanged, as designed" : "MISMATCH");

  // --- ...while a revocation re-keys every partition in O(|P|).
  admin.remove_user("demo-team", "bob");
  auto gk2 = alice.fetch_group_key("demo-team");
  std::printf("bob revoked; key rotated to:  %s\n", hex_prefix(*gk2).c_str());

  auto bob = make_client("bob");
  auto bob_view = bob.fetch_group_key("demo-team");
  std::printf("bob's view after revocation:  %s\n",
              bob_view ? "STILL HAS ACCESS (bug!)" : "access denied");

  std::printf("enclave served %llu ecalls; peak EPC use %zu KiB\n",
              static_cast<unsigned long long>(enclave.ecall_count()),
              enclave.epc_bytes_peak() / 1024);
  return 0;
}
