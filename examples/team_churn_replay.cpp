// Team-churn replay: drive the full IBBE-SGX system with a realistic
// membership trace (the Linux-kernel-shaped workload of the paper's Fig. 9)
// and print what the administrator actually experiences: per-op latencies,
// partition dynamics, and re-partitioning events.
//
// Usage:  ./build/examples/team_churn_replay [ops] [peak] [partition_size]
// Defaults: 600 ops, peak 60 members, partitions of 20.
#include <cstdio>
#include <cstdlib>

#include "system/ibbe_scheme.h"
#include "trace/replay.h"

using namespace ibbe;

int main(int argc, char** argv) {
  std::size_t ops = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 600;
  std::size_t peak = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 60;
  std::size_t partition = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 20;

  std::printf("synthesizing a kernel-shaped trace: %zu ops, peak %zu members\n",
              ops, peak);
  auto trace = trace::linux_kernel_trace(ops, peak, /*seed=*/7);
  std::printf("  adds: %zu   removes: %zu   final size: %zu\n\n",
              trace.add_count(), trace.remove_count(),
              trace.final_members().size());

  system::IbbeSgxScheme scheme(partition, /*seed=*/1);
  trace::ReplayOptions options;
  options.decrypt_sample_every = ops / 10;

  std::printf("replaying against %s ...\n", scheme.name().c_str());
  auto result = trace::replay(scheme, trace, options);

  const auto& admin_stats = scheme.admin().stats();
  std::printf("\n-- administrator view ----------------------------------\n");
  std::printf("total membership-change time : %.2f s\n", result.admin_seconds);
  std::printf("add    latency mean / p99    : %.2f ms / %.2f ms\n",
              result.add_latencies.mean() * 1e3,
              result.add_latencies.percentile(0.99) * 1e3);
  std::printf("remove latency mean / p99    : %.2f ms / %.2f ms\n",
              result.remove_latencies.mean() * 1e3,
              result.remove_latencies.percentile(0.99) * 1e3);
  std::printf("partitions created over run  : %llu\n",
              static_cast<unsigned long long>(admin_stats.partitions_created));
  std::printf("re-partitioning events       : %llu\n",
              static_cast<unsigned long long>(admin_stats.repartitions));

  std::printf("\n-- user view -------------------------------------------\n");
  std::printf("decrypt latency mean         : %.2f ms (%zu samples)\n",
              result.decrypt_latencies.mean() * 1e3,
              result.decrypt_latencies.count());

  std::printf("\n-- storage / enclave -----------------------------------\n");
  std::printf("final group metadata         : %zu B for %zu members\n",
              result.final_metadata_bytes, result.final_group_size);
  std::printf("enclave ecalls               : %llu\n",
              static_cast<unsigned long long>(scheme.enclave().ecall_count()));
  std::printf("enclave peak EPC use         : %zu KiB (limit %zu MiB)\n",
              scheme.enclave().epc_bytes_peak() / 1024,
              sgx::EnclaveBase::epc_limit / (1024 * 1024));

  auto cloud_stats = scheme.cloud().stats();
  std::printf("cloud traffic                : %llu B up over %llu puts\n",
              static_cast<unsigned long long>(cloud_stats.bytes_uploaded),
              static_cast<unsigned long long>(cloud_stats.puts));
  return 0;
}
