// Pay-per-view broadcasting — the paper's non-cloud use case (§I): the same
// construction encrypts content for a changing subscriber base over any
// shared medium.
//
// A broadcaster (administrator + enclave) manages channel subscribers;
// every program is encrypted under the current channel key. Subscribers
// derive the key from the broadcast metadata; lapsed subscribers lose access
// from their revocation onward but keep old recordings — exactly the forward
// semantics of the group key rotation.
//
// Build & run:  ./build/examples/pay_tv_broadcast
#include <cstdio>
#include <map>

#include "crypto/gcm.h"
#include "system/admin.h"
#include "system/client.h"

using namespace ibbe;

namespace {

struct Broadcast {
  util::Bytes nonce;
  util::Bytes payload;  // AES-GCM under the channel key at air time
};

Broadcast air(const util::Bytes& channel_key, const std::string& program,
              crypto::Drbg& rng) {
  crypto::Aes256Gcm gcm(channel_key);
  Broadcast b;
  b.nonce = rng.bytes(crypto::Aes256Gcm::nonce_size);
  b.payload = gcm.seal(b.nonce, {reinterpret_cast<const std::uint8_t*>(
                                     program.data()),
                                 program.size()});
  return b;
}

std::optional<std::string> tune_in(const util::Bytes& channel_key,
                                   const Broadcast& b) {
  crypto::Aes256Gcm gcm(channel_key);
  auto pt = gcm.open(b.nonce, b.payload);
  if (!pt) return std::nullopt;
  return std::string(pt->begin(), pt->end());
}

}  // namespace

int main() {
  sgx::EnclavePlatform head_end("broadcast-head-end");
  enclave::IbbeEnclave enclave(head_end, /*max_partition_size=*/8);
  cloud::CloudStore satellite;  // any shared medium works as the "carrier"
  crypto::Drbg rng;
  system::AdminApi operator_(enclave, satellite,
                             pki::EcdsaKeyPair::generate(rng),
                             {.partition_size = 8});

  // Season start: eight subscribers.
  std::vector<core::Identity> subscribers;
  for (int i = 0; i < 8; ++i) subscribers.push_back("sub" + std::to_string(i));
  operator_.create_group("movies-channel", subscribers);
  std::printf("[operator] channel online, %zu subscribers\n", subscribers.size());

  auto receiver = [&](const core::Identity& id) {
    return system::ClientApi(satellite, enclave.public_key(),
                             enclave.ecall_extract_user_key(id),
                             operator_.verification_point());
  };

  auto sub0 = receiver("sub0");
  auto sub3 = receiver("sub3");

  // Program 1 airs.
  auto key_week1 = sub0.fetch_group_key("movies-channel");
  auto program1 = air(*key_week1, "[week 1] The Pairing Strikes Back", rng);
  std::printf("[sub0] watches: \"%s\"\n",
              tune_in(*sub0.fetch_group_key("movies-channel"), program1)->c_str());
  std::printf("[sub3] watches: \"%s\"\n",
              tune_in(*sub3.fetch_group_key("movies-channel"), program1)->c_str());

  // sub3's subscription lapses: revocation rotates the channel key.
  operator_.remove_user("movies-channel", "sub3");
  std::printf("[operator] sub3 lapsed; channel re-keyed in O(|P|)\n");

  // Program 2 airs under the rotated key.
  auto key_week2 = sub0.fetch_group_key("movies-channel");
  auto program2 = air(*key_week2, "[week 2] Attack of the Curious Cloud", rng);

  std::printf("[sub0] watches: \"%s\"\n",
              tune_in(*sub0.fetch_group_key("movies-channel"), program2)->c_str());

  // sub3 tries the stale key, then tries to re-derive from the broadcast.
  auto stale_attempt = tune_in(*key_week1, program2);
  std::printf("[sub3] stale-key attempt on week 2: %s\n",
              stale_attempt ? "DECRYPTED (bug!)" : "blocked");
  auto rederive = sub3.fetch_group_key("movies-channel");
  std::printf("[sub3] re-derive from broadcast metadata: %s\n",
              rederive ? "SUCCEEDED (bug!)" : "denied (revoked)");

  // Old recordings remain playable with the old key (forward semantics).
  std::printf("[sub3] replaying week 1 recording: \"%s\"\n",
              tune_in(*key_week1, program1)->c_str());

  // A new subscriber joins mid-season: O(1), no re-key, immediate access.
  operator_.add_user("movies-channel", "sub8");
  auto sub8 = receiver("sub8");
  std::printf("[sub8] joins and watches: \"%s\"\n",
              tune_in(*sub8.fetch_group_key("movies-channel"), program2)->c_str());

  return 0;
}
