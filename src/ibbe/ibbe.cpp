#include "ibbe/ibbe.h"

#include <algorithm>
#include <stdexcept>

#include "crypto/sha256.h"
#include "ec/msm.h"
#include "ibbe/poly.h"
#include "util/thread_pool.h"

namespace ibbe::core {

using ec::G1;
using ec::G2;
using field::Fr;
using pairing::Gt;

field::Fr hash_identity(const Identity& id) {
  for (std::uint8_t counter = 0;; ++counter) {
    crypto::Sha256 h;
    h.update("ibbe-sgx:identity:v1:");
    h.update(id);
    std::array<std::uint8_t, 1> c{counter};
    h.update(c);
    Fr out = Fr::from_be_bytes_reduce(h.finish());
    if (!out.is_zero()) return out;
  }
}

Fr random_nonzero_fr(crypto::Drbg& rng) {
  while (true) {
    auto raw = rng.bytes(32);
    Fr k = Fr::from_be_bytes_reduce(raw);
    if (!k.is_zero()) return k;
  }
}

namespace {

void check_receivers(const PublicKey& pk, std::span<const Identity> receivers) {
  if (receivers.empty()) {
    throw std::invalid_argument("ibbe: receiver set must not be empty");
  }
  if (receivers.size() > pk.max_receivers()) {
    throw std::invalid_argument("ibbe: receiver set exceeds the PK bound m");
  }
}

/// Coefficients (ascending degree) of prod_u (x + H(u)) over Zr — the
/// polynomial expansion of the paper's Formula 4, via a subproduct tree for
/// large sets (ibbe/poly.h). `skip` excludes exactly ONE occurrence (decrypt
/// divides a single (gamma+H(i)) factor out of the product, even if an
/// identity is duplicated in S).
std::vector<Fr> expand_polynomial(std::span<const Identity> receivers,
                                  const Identity* skip) {
  std::vector<Fr> roots;
  roots.reserve(receivers.size());
  bool skipped = false;
  for (const Identity& id : receivers) {
    if (skip && !skipped && id == *skip) {
      skipped = true;
      continue;
    }
    roots.push_back(hash_identity(id));
  }
  return poly::expand_roots(roots);
}

/// h^(poly(gamma)) assembled from the PK powers: prod_i (h^gamma^i)^coef_i,
/// one GLS-decomposed multi-scalar multiplication over the key's cached
/// affine tables instead of |coef| independent G2 ladders.
G2 evaluate_in_exponent(const PublicKey& pk, std::span<const Fr> coef) {
  if (coef.size() > pk.h_powers.size()) {
    throw std::invalid_argument("ibbe: polynomial degree exceeds PK powers");
  }
  return pk.powers_msm(coef.size())->msm(coef);
}

/// Completes (bk, C1, C2) for the randomizer k over an existing C3.
EncryptResult assemble_from_c3(const PublicKey& pk, const G2& c3,
                               const Fr& k) {
  EncryptResult out;
  out.bk = pk.v.exp(k);
  out.ct.c1 = pk.w.mul(k.neg());
  out.ct.c2 = c3.mul(k);
  out.ct.c3 = c3;
  return out;
}

EncryptResult assemble_from_c3(const PublicKey& pk, const G2& c3,
                               crypto::Drbg& rng) {
  return assemble_from_c3(pk, c3, random_nonzero_fr(rng));
}

}  // namespace

// ------------------------------------------------------------ serialization

namespace {

/// Double-checked lazy init so concurrent first calls on a shared const
/// PublicKey race benignly (one winner, losers adopt its table) instead of
/// tearing a shared_ptr.
const pairing::G2PreparedAffine& prepare_cached(
    std::shared_ptr<const pairing::G2PreparedAffine>& slot, const G2& q) {
  auto cur = std::atomic_load_explicit(&slot, std::memory_order_acquire);
  if (!cur) {
    auto fresh = std::make_shared<const pairing::G2PreparedAffine>(q);
    if (!std::atomic_compare_exchange_strong(&slot, &cur, fresh)) {
      return *cur;  // another thread won; cur now holds its table
    }
    return *fresh;
  }
  return *cur;
}

}  // namespace

const pairing::G2PreparedAffine& PublicKey::prepared_h() const {
  return prepare_cached(prep_h_, h());
}

const pairing::G2PreparedAffine& PublicKey::prepared_h_gamma() const {
  return prepare_cached(prep_h_gamma_, h_powers.at(1));
}

std::shared_ptr<const ec::G2PowersMsm> PublicKey::powers_msm(
    std::size_t need) const {
  need = std::min(need, h_powers.size());
  auto cur = std::atomic_load_explicit(&prep_msm_, std::memory_order_acquire);
  if (cur && cur->size() >= need) return cur;
  // Cover at least `need` powers, growing geometrically (and jumping
  // straight to the full key once past half of it), so steadily growing
  // receiver sets trigger at most O(log m) rebuilds.
  std::size_t size = std::max(need, cur ? 2 * cur->size() : need);
  if (2 * size >= h_powers.size()) size = h_powers.size();
  auto fresh = std::make_shared<const ec::G2PowersMsm>(
      std::span<const ec::G2>(h_powers.data(), size));
  while (true) {
    if (cur && cur->size() >= need) return cur;
    if (std::atomic_compare_exchange_strong(&prep_msm_, &cur, fresh)) {
      return fresh;
    }
  }
}

util::Bytes PublicKey::to_bytes() const {
  util::ByteWriter out;
  out.blob(ec::g1_to_bytes(w));
  out.blob(v.to_bytes());
  out.u32(static_cast<std::uint32_t>(h_powers.size()));
  for (const auto& p : h_powers) out.raw(ec::g2_to_bytes(p));
  return out.take();
}

PublicKey PublicKey::from_bytes(std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  PublicKey pk;
  pk.w = ec::g1_from_bytes(r.blob());
  pk.v = Gt::from_bytes(r.blob());
  std::uint32_t n = r.u32();
  pk.h_powers.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    pk.h_powers.push_back(ec::g2_from_bytes(r.raw(ec::g2_serialized_size)));
  }
  r.expect_end();
  if (pk.h_powers.empty()) throw util::DeserializeError("PublicKey: no h powers");
  return pk;
}

util::Bytes UserSecretKey::to_bytes() const {
  util::ByteWriter w;
  w.str(id);
  w.raw(ec::g1_to_bytes(value));
  return w.take();
}

UserSecretKey UserSecretKey::from_bytes(std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  UserSecretKey usk;
  usk.id = r.str();
  usk.value = ec::g1_from_bytes(r.raw(ec::g1_serialized_size));
  r.expect_end();
  return usk;
}

util::Bytes BroadcastCiphertext::to_bytes() const {
  util::ByteWriter w;
  w.raw(ec::g1_to_bytes(c1));
  w.raw(ec::g2_to_bytes(c2));
  w.raw(ec::g2_to_bytes(c3));
  return w.take();
}

BroadcastCiphertext BroadcastCiphertext::from_bytes(
    std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  BroadcastCiphertext ct;
  ct.c1 = ec::g1_from_bytes(r.raw(ec::g1_serialized_size));
  ct.c2 = ec::g2_from_bytes(r.raw(ec::g2_serialized_size));
  ct.c3 = ec::g2_from_bytes(r.raw(ec::g2_serialized_size));
  r.expect_end();
  return ct;
}

// ------------------------------------------------------------------- scheme

SystemKeys setup(std::size_t max_receivers, crypto::Drbg& rng) {
  if (max_receivers == 0) {
    throw std::invalid_argument("ibbe: max_receivers must be positive");
  }
  SystemKeys keys;
  keys.msk.g = G1::generator().mul(random_nonzero_fr(rng));
  keys.msk.gamma = random_nonzero_fr(rng);
  G2 h = G2::generator().mul(random_nonzero_fr(rng));

  keys.pk.w = keys.msk.g.mul(keys.msk.gamma);
  keys.pk.v = pairing::pairing(keys.msk.g, h);
  keys.pk.h_powers.reserve(max_receivers + 1);
  keys.pk.h_powers.push_back(h);
  for (std::size_t i = 0; i < max_receivers; ++i) {
    keys.pk.h_powers.push_back(keys.pk.h_powers.back().mul(keys.msk.gamma));
  }
  return keys;
}

UserSecretKey extract_user_key(const MasterSecretKey& msk, const Identity& id) {
  Fr denom = msk.gamma + hash_identity(id);
  if (denom.is_zero()) {
    // Probability 2^-254; would reveal gamma = -H(id).
    throw std::runtime_error("ibbe: identity collides with master secret");
  }
  return {id, msk.g.mul(denom.inverse())};
}

EncryptResult encrypt_with_msk(const MasterSecretKey& msk, const PublicKey& pk,
                               std::span<const Identity> receivers,
                               const Fr& k) {
  check_receivers(pk, receivers);
  // O(|S|): the product lives in Zr thanks to gamma.
  Fr prod = Fr::one();
  for (const Identity& id : receivers) {
    prod *= msk.gamma + hash_identity(id);
  }
  G2 c3 = pk.h().mul(prod);
  return assemble_from_c3(pk, c3, k);
}

EncryptResult encrypt_with_msk(const MasterSecretKey& msk, const PublicKey& pk,
                               std::span<const Identity> receivers,
                               crypto::Drbg& rng) {
  check_receivers(pk, receivers);  // validate before consuming the DRBG
  return encrypt_with_msk(msk, pk, receivers, random_nonzero_fr(rng));
}

EncryptResult encrypt_public(const PublicKey& pk,
                             std::span<const Identity> receivers,
                             crypto::Drbg& rng) {
  check_receivers(pk, receivers);
  // O(|S|^2) polynomial expansion, then |S|+1 G2 exponentiations.
  auto coef = expand_polynomial(receivers, nullptr);
  G2 c3 = evaluate_in_exponent(pk, coef);
  return assemble_from_c3(pk, c3, rng);
}

void add_user_with_msk(const MasterSecretKey& msk, BroadcastCiphertext& ct,
                       const Identity& added) {
  Fr factor = msk.gamma + hash_identity(added);
  ct.c2 = ct.c2.mul(factor);
  ct.c3 = ct.c3.mul(factor);
}

EncryptResult remove_user_with_msk(const MasterSecretKey& msk,
                                   const PublicKey& pk,
                                   const BroadcastCiphertext& ct,
                                   const Identity& removed, const Fr& k) {
  Fr factor = msk.gamma + hash_identity(removed);
  G2 c3 = ct.c3.mul(factor.inverse());
  return assemble_from_c3(pk, c3, k);
}

EncryptResult remove_user_with_msk(const MasterSecretKey& msk,
                                   const PublicKey& pk,
                                   const BroadcastCiphertext& ct,
                                   const Identity& removed, crypto::Drbg& rng) {
  return remove_user_with_msk(msk, pk, ct, removed, random_nonzero_fr(rng));
}

EncryptResult remove_users_with_msk(const MasterSecretKey& msk,
                                    const PublicKey& pk,
                                    const BroadcastCiphertext& ct,
                                    std::span<const Identity> removed,
                                    const Fr& k) {
  Fr product = Fr::one();
  for (const Identity& id : removed) {
    product *= msk.gamma + hash_identity(id);
  }
  G2 c3 = ct.c3.mul(product.inverse());
  return assemble_from_c3(pk, c3, k);
}

EncryptResult remove_users_with_msk(const MasterSecretKey& msk,
                                    const PublicKey& pk,
                                    const BroadcastCiphertext& ct,
                                    std::span<const Identity> removed,
                                    crypto::Drbg& rng) {
  return remove_users_with_msk(msk, pk, ct, removed, random_nonzero_fr(rng));
}

EncryptResult rekey(const PublicKey& pk, const BroadcastCiphertext& ct,
                    const Fr& k) {
  return assemble_from_c3(pk, ct.c3, k);
}

EncryptResult rekey(const PublicKey& pk, const BroadcastCiphertext& ct,
                    crypto::Drbg& rng) {
  return assemble_from_c3(pk, ct.c3, rng);
}

namespace {

/// The per-partition polynomial work shared by decrypt and decrypt_batched:
/// membership check, Delta, and the MSM-assembled h^(p_i(gamma)).
struct PartitionPlan {
  Fr delta;
  G2 h_pi;
};

std::optional<PartitionPlan> plan_partition(const PublicKey& pk,
                                            const UserSecretKey& usk,
                                            std::span<const Identity> receivers) {
  if (receivers.size() > pk.max_receivers()) return std::nullopt;
  bool member = false;
  for (const Identity& id : receivers) {
    if (id == usk.id) {
      member = true;
      break;
    }
  }
  if (!member) return std::nullopt;

  // coef = coefficients of prod_{j != i}(x + H(j)); Delta = constant term.
  auto coef = expand_polynomial(receivers, &usk.id);
  PartitionPlan plan;
  plan.delta = coef[0];
  // p_i(gamma) = (prod_{j != i}(gamma + H(j)) - Delta) / gamma: strip the
  // constant term and shift degrees down by one.
  std::vector<Fr> p_coef(coef.begin() + 1, coef.end());
  plan.h_pi = evaluate_in_exponent(pk, p_coef);
  return plan;
}

}  // namespace

std::optional<Gt> decrypt(const PublicKey& pk, const UserSecretKey& usk,
                          std::span<const Identity> receivers,
                          const BroadcastCiphertext& ct) {
  auto plan = plan_partition(pk, usk, receivers);
  if (!plan) return std::nullopt;

  // bk = (e(C1, h^p_i) * e(USK, C2))^(1/Delta), one shared final exp, then
  // the 1/Delta tail through the GT engine (Gt::exp).
  std::array<std::pair<G1, G2>, 2> pairs = {
      std::make_pair(ct.c1, plan->h_pi),
      std::make_pair(usk.value, ct.c2),
  };
  Gt combined = pairing::pairing_product(pairs);
  return combined.exp(plan->delta.inverse());
}

std::optional<PreparedPartition> PreparedPartition::prepare(
    const PublicKey& pk, const UserSecretKey& usk,
    std::span<const Identity> receivers) {
  auto plan = plan_partition(pk, usk, receivers);
  if (!plan) return std::nullopt;
  PreparedPartition part;
  part.delta_inv_ = plan->delta.inverse();
  part.usk_value_ = usk.value;
  part.h_pi_ = pairing::G2PreparedAffine(plan->h_pi);
  return part;
}

Gt decrypt(const PreparedPartition& part, const BroadcastCiphertext& ct) {
  // Only C2's line table is ciphertext-dependent; everything else comes from
  // the cache. One mixed 2-pair multi-pairing, then the GT tail.
  pairing::G2Prepared c2_prep(ct.c2);
  std::array<pairing::PairingInput, 1> proj = {{{part.usk_value(), &c2_prep}}};
  std::array<pairing::PairingInputAffine, 1> affine = {{{ct.c1, &part.h_pi()}}};
  Gt combined = pairing::pairing_product_prepared(proj, affine);
  return combined.exp(part.delta_inv());
}

std::vector<Gt> decrypt_batched(std::span<const PreparedPartitionRef> parts) {
  // Validate every ref up front so the fan-out below is pure math.
  for (const auto& ref : parts) {
    if (ref.part == nullptr || ref.ct == nullptr) {
      throw std::invalid_argument("decrypt_batched: null PreparedPartitionRef");
    }
  }
  // Per-partition Miller loops are independent — one slot per partition, one
  // task per partition (each builds its own C2 line table locally), so the
  // results are the values the serial loop would produce, in its order.
  auto& pool = util::ThreadPool::global();
  std::vector<field::Fp12> millers(parts.size());
  pool.parallel_for(0, parts.size(), 1, [&](std::size_t i) {
    pairing::G2Prepared c2_prep(parts[i].ct->c2);
    std::array<pairing::PairingInput, 1> proj = {
        {{parts[i].part->usk_value(), &c2_prep}}};
    std::array<pairing::PairingInputAffine, 1> affine = {
        {{parts[i].ct->c1, &parts[i].part->h_pi()}}};
    millers[i] = pairing::miller_loop_product_prepared(proj, affine);
  });
  // The batched easy-part inversion is a cross-partition reduction: serial.
  auto exped = pairing::final_exponentiation_many(millers);
  // Per-partition GT tails: independent again.
  std::vector<Gt> out(parts.size());
  pool.parallel_for(0, parts.size(), 1, [&](std::size_t i) {
    out[i] = Gt::from_fp12_unchecked(exped[i]).exp(parts[i].part->delta_inv());
  });
  return out;
}

std::vector<std::optional<Gt>> decrypt_batched(
    const PublicKey& pk, const UserSecretKey& usk,
    std::span<const PartitionRef> parts) {
  std::size_t max_set = 0;
  for (const auto& p : parts) {
    if (p.ct == nullptr) {
      throw std::invalid_argument("decrypt_batched: null ciphertext");
    }
    max_set = std::max(max_set, p.receivers.size());
  }
  // Warm the PK's MSM table once on the calling thread: concurrent first
  // calls would each build their own candidate table (the CAS race is benign
  // but the duplicate builds are not free). Table size never affects MSM
  // results, so this is output-invisible.
  if (max_set > 0) {
    (void)pk.powers_msm(std::min(max_set, pk.max_receivers()));
  }

  // Per-partition planning (polynomial expansion + MSM) and Miller loops are
  // independent: one slot per partition.
  struct Planned {
    bool live = false;
    Fr delta;
    field::Fp12 miller;
  };
  auto& pool = util::ThreadPool::global();
  std::vector<Planned> slots(parts.size());
  pool.parallel_for(0, parts.size(), 1, [&](std::size_t i) {
    auto plan = plan_partition(pk, usk, parts[i].receivers);
    if (!plan) return;  // out[i] stays nullopt, exactly as decrypt would
    std::array<std::pair<G1, G2>, 2> pairs = {
        std::make_pair(parts[i].ct->c1, plan->h_pi),
        std::make_pair(usk.value, parts[i].ct->c2),
    };
    slots[i].live = true;
    slots[i].delta = plan->delta;
    slots[i].miller = pairing::miller_loop_product(pairs);
  });

  // Compact the live partitions in index order — the exact vectors the
  // serial loop would have built.
  std::vector<std::size_t> live;
  std::vector<Fr> deltas;
  std::vector<field::Fp12> millers;
  live.reserve(parts.size());
  deltas.reserve(parts.size());
  millers.reserve(parts.size());
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (!slots[i].live) continue;
    live.push_back(i);
    deltas.push_back(slots[i].delta);
    millers.push_back(slots[i].miller);
  }

  // One batched easy-part inversion for all final exponentiations, one
  // batched Fr inversion for all Deltas (both cross-partition reductions:
  // serial), then the independent per-partition GT tails.
  auto exped = pairing::final_exponentiation_many(millers);
  field::batch_inverse(std::span<Fr>(deltas));
  std::vector<std::optional<Gt>> out(parts.size());
  pool.parallel_for(0, live.size(), 1, [&](std::size_t j) {
    out[live[j]] = Gt::from_fp12_unchecked(exped[j]).exp(deltas[j]);
  });
  return out;
}

G2 compute_c3_public(const PublicKey& pk, std::span<const Identity> receivers) {
  check_receivers(pk, receivers);
  auto coef = expand_polynomial(receivers, nullptr);
  return evaluate_in_exponent(pk, coef);
}

bool verify_user_key(const PublicKey& pk, const UserSecretKey& usk) {
  if (pk.h_powers.size() < 2) return false;
  // e(usk, h^gamma) * e(usk^H(id), h) == v: moving H(id) to the (4x cheaper)
  // G1 side leaves both G2 arguments fixed per PK, so the cached normalized
  // line tables and the shared-squaring multi-pairing do all the work.
  std::array<pairing::PairingInputAffine, 2> inputs = {{
      {usk.value, &pk.prepared_h_gamma()},
      {usk.value.mul(hash_identity(usk.id)), &pk.prepared_h()},
  }};
  return pairing::pairing_product_prepared(inputs) == pk.v;
}

}  // namespace ibbe::core
