// Identity-Based Broadcast Encryption (Delerablée, ASIACRYPT 2007) with the
// IBBE-SGX master-secret fast paths of Contiu et al. (DSN 2018, Appendix A).
//
// Keys and ciphertexts:
//   MSK = (g, gamma)                      g random in G1, gamma random in Zr*
//   PK  = (w = g^gamma, v = e(g,h), h, h^gamma, ..., h^gamma^m)
//   USK_u = g^(1/(gamma + H(u)))
//   For receiver set S with randomizer k:
//     bk = v^k                                      (the broadcast key)
//     C1 = w^(-k)
//     C2 = h^(k * prod_{u in S}(gamma + H(u)))
//     C3 = h^(prod_{u in S}(gamma + H(u)))          (paper's Formula 5 cache)
//
// Complexities (Table I of the paper):
//   encrypt_with_msk   O(|S|)   — gamma collapses the product to Zr mults
//   encrypt_public     O(|S|^2) — polynomial expansion over the PK powers
//   add_user_with_msk  O(1)     — C{2,3} <- C{2,3}^(gamma+H(u))
//   remove_user_with_msk O(1)   — C3 <- C3^(1/(gamma+H(u))), then re-key
//   rekey              O(1)     — fresh k applied to the cached C3 (PK only)
//   decrypt            O(|S|^2) — polynomial expansion, then 2 pairings
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "crypto/drbg.h"
#include "ec/curves.h"
#include "field/fields.h"
#include "pairing/pairing.h"
#include "util/bytes.h"

namespace ibbe::ec {
class G2PowersMsm;  // ec/msm.h
}

namespace ibbe::core {

using Identity = std::string;

/// H: identity -> Zr*. SHA-256 with rejection of zero.
field::Fr hash_identity(const Identity& id);

/// The canonical randomizer draw: 32 DRBG bytes reduced into Zr, redrawn on
/// zero. Every k this module consumes comes through here, so a caller that
/// needs to PRE-DRAW randomizers (e.g. to fan per-partition work out to a
/// thread pool while keeping the DRBG serial) can pull them in the exact
/// order the serial code would and pass them to the explicit-k overloads
/// below — the outputs stay bitwise-identical.
field::Fr random_nonzero_fr(crypto::Drbg& rng);

struct MasterSecretKey {
  ec::G1 g;
  field::Fr gamma;
};

struct PublicKey {
  ec::G1 w;                       // g^gamma
  pairing::Gt v;                  // e(g, h)
  std::vector<ec::G2> h_powers;   // h^(gamma^i), i = 0..m; h_powers[0] = h

  [[nodiscard]] const ec::G2& h() const { return h_powers.at(0); }
  /// Largest receiver set this key supports (the paper's m: the partition
  /// size in IBBE-SGX, the group size in raw IBBE).
  [[nodiscard]] std::size_t max_receivers() const { return h_powers.size() - 1; }

  /// Pairing precomputation (normalized Miller-loop line tables) for
  /// h = h_powers[0] and h^gamma = h_powers[1] — the two fixed G2 arguments
  /// every verify_user_key pairing uses. Cached G2 arguments use the
  /// batched-inversion affine form (pairing::G2PreparedAffine): one Fp2
  /// inversion at build time buys cheaper line evaluations on every reuse.
  /// Built lazily on first use (concurrent first calls race benignly: one
  /// table wins) and cached for the lifetime of this key — rebuild the key
  /// if h_powers change.
  [[nodiscard]] const pairing::G2PreparedAffine& prepared_h() const;
  [[nodiscard]] const pairing::G2PreparedAffine& prepared_h_gamma() const;

  /// Prepared multi-scalar-multiplication tables over the first `need`
  /// h_powers (grown to the full key once `need` passes half of it), for the
  /// Σ coef_i * h^(gamma^i) sums in encrypt/decrypt. Built lazily, cached
  /// with the same benign-race discipline as the pairing tables above.
  [[nodiscard]] std::shared_ptr<const ec::G2PowersMsm> powers_msm(
      std::size_t need) const;

  [[nodiscard]] util::Bytes to_bytes() const;
  static PublicKey from_bytes(std::span<const std::uint8_t> data);

 private:
  mutable std::shared_ptr<const pairing::G2PreparedAffine> prep_h_;
  mutable std::shared_ptr<const pairing::G2PreparedAffine> prep_h_gamma_;
  mutable std::shared_ptr<const ec::G2PowersMsm> prep_msm_;
};

struct UserSecretKey {
  Identity id;
  ec::G1 value;  // g^(1/(gamma+H(id)))

  [[nodiscard]] util::Bytes to_bytes() const;
  static UserSecretKey from_bytes(std::span<const std::uint8_t> data);
};

struct BroadcastCiphertext {
  ec::G1 c1;
  ec::G2 c2;
  ec::G2 c3;

  [[nodiscard]] util::Bytes to_bytes() const;
  static BroadcastCiphertext from_bytes(std::span<const std::uint8_t> data);
  static constexpr std::size_t serialized_size =
      ec::g1_serialized_size + 2 * ec::g2_serialized_size;
};

struct SystemKeys {
  MasterSecretKey msk;
  PublicKey pk;
};

/// System Setup(lambda, m): lambda is fixed by the BN254 instantiation
/// (~100-bit); m bounds the receiver-set size. O(m) G2 exponentiations.
SystemKeys setup(std::size_t max_receivers, crypto::Drbg& rng);

/// Extract User Secret: O(1).
UserSecretKey extract_user_key(const MasterSecretKey& msk, const Identity& id);

struct EncryptResult {
  pairing::Gt bk;
  BroadcastCiphertext ct;
};

/// IBBE-SGX encrypt: uses gamma, O(|S|). Throws if |S| exceeds
/// pk.max_receivers() or S is empty.
EncryptResult encrypt_with_msk(const MasterSecretKey& msk, const PublicKey& pk,
                               std::span<const Identity> receivers,
                               crypto::Drbg& rng);

/// Deterministic variant taking the randomizer explicitly (k must be a
/// random_nonzero_fr draw). Lets a parallel caller pre-draw every k on its
/// own thread and fan the O(|S|) arithmetic out; identical output to the
/// rng overload given the same k.
EncryptResult encrypt_with_msk(const MasterSecretKey& msk, const PublicKey& pk,
                               std::span<const Identity> receivers,
                               const field::Fr& k);

/// Traditional IBBE encrypt: PK only, O(|S|^2) (quadratic polynomial
/// expansion, Formula 4 of the paper). Same output distribution as
/// encrypt_with_msk.
EncryptResult encrypt_public(const PublicKey& pk,
                             std::span<const Identity> receivers,
                             crypto::Drbg& rng);

/// O(1) membership addition (MSK path): folds (gamma + H(id)) into C2 and C3.
/// bk is unchanged — the joiner may read prior ciphertexts by design (the
/// paper re-keys only on revocation).
void add_user_with_msk(const MasterSecretKey& msk, BroadcastCiphertext& ct,
                       const Identity& added);

/// O(1) membership removal (MSK path): divides (gamma + H(id)) out of C3 and
/// re-keys. Returns the fresh bk.
EncryptResult remove_user_with_msk(const MasterSecretKey& msk,
                                   const PublicKey& pk,
                                   const BroadcastCiphertext& ct,
                                   const Identity& removed, crypto::Drbg& rng);

/// Explicit-randomizer variant of remove_user_with_msk (see the explicit-k
/// encrypt_with_msk overload for the pre-draw contract).
EncryptResult remove_user_with_msk(const MasterSecretKey& msk,
                                   const PublicKey& pk,
                                   const BroadcastCiphertext& ct,
                                   const Identity& removed, const field::Fr& k);

/// Batch removal (extension; paper future-work direction): divides the whole
/// product prod(gamma + H(id)) out of C3 in one shot — O(k) Zr work and a
/// single G2 exponentiation for k simultaneous revocations, instead of k
/// sequential removals.
EncryptResult remove_users_with_msk(const MasterSecretKey& msk,
                                    const PublicKey& pk,
                                    const BroadcastCiphertext& ct,
                                    std::span<const Identity> removed,
                                    crypto::Drbg& rng);

/// Explicit-randomizer variant of remove_users_with_msk.
EncryptResult remove_users_with_msk(const MasterSecretKey& msk,
                                    const PublicKey& pk,
                                    const BroadcastCiphertext& ct,
                                    std::span<const Identity> removed,
                                    const field::Fr& k);

/// O(1) re-key (PK only, Appendix A-G): fresh k over the cached C3.
EncryptResult rekey(const PublicKey& pk, const BroadcastCiphertext& ct,
                    crypto::Drbg& rng);

/// Explicit-randomizer variant of rekey.
EncryptResult rekey(const PublicKey& pk, const BroadcastCiphertext& ct,
                    const field::Fr& k);

/// User-side decrypt: O(|S|^2) + a 2-pair multi-pairing (shared Miller-loop
/// squarings and a single final exponentiation), then one GT exponentiation
/// by 1/Delta through the cyclotomic engine (pairing/gt_exp.h).
/// Returns the broadcast key; std::nullopt if `usk.id` is not in `receivers`
/// or the set exceeds the PK bound. (A wrong-but-well-formed ciphertext still
/// yields a wrong bk — callers authenticate via the AEAD wrap above this
/// layer, exactly as the paper's y_p does.)
std::optional<pairing::Gt> decrypt(const PublicKey& pk,
                                   const UserSecretKey& usk,
                                   std::span<const Identity> receivers,
                                   const BroadcastCiphertext& ct);

/// Cached decrypt state for one (user, receiver set) pair — the partition
/// key of IBBE-SGX. `decrypt` pays two G2Prepared constructions per call;
/// for a client that decrypts the same partition repeatedly (every re-key,
/// every message under a cached C3), everything that depends only on the
/// receiver set can be computed ONCE:
///   * the O(|S|^2) polynomial expansion and Delta (here: 1/Delta, inverted
///     eagerly so the per-decrypt GT tail starts immediately),
///   * h^{p_i(gamma)} assembled from the PK powers (one MSM), and
///   * its Miller line table, in the batched-inversion affine form
///     (pairing::G2PreparedAffine) since it will be replayed many times.
/// Only the ciphertext-dependent C2 table remains per-decrypt. The cache is
/// invalidated by membership changes (C3 changes), not by re-keying.
class PreparedPartition {
 public:
  /// std::nullopt when usk.id is not in `receivers` or the set exceeds the
  /// PK bound — exactly the cases where decrypt would return nullopt.
  static std::optional<PreparedPartition> prepare(
      const PublicKey& pk, const UserSecretKey& usk,
      std::span<const Identity> receivers);

  [[nodiscard]] const field::Fr& delta_inv() const { return delta_inv_; }
  [[nodiscard]] const ec::G1& usk_value() const { return usk_value_; }
  [[nodiscard]] const pairing::G2PreparedAffine& h_pi() const { return h_pi_; }

 private:
  PreparedPartition() = default;
  field::Fr delta_inv_;
  ec::G1 usk_value_;
  pairing::G2PreparedAffine h_pi_;
};

/// Decrypt against a cached PreparedPartition: one projective G2Prepared
/// (C2), a 2-pair mixed multi-pairing, and the GT tail. Equals what
/// decrypt(pk, usk, receivers, ct) returns for the receiver set the
/// partition was prepared from.
pairing::Gt decrypt(const PreparedPartition& part,
                    const BroadcastCiphertext& ct);

/// One partition's decrypt inputs: the receiver set a ciphertext was
/// produced for, plus the ciphertext. The spans/pointers must stay alive for
/// the duration of the decrypt_batched call; nothing is copied.
struct PartitionRef {
  std::span<const Identity> receivers;
  const BroadcastCiphertext* ct = nullptr;
};

/// Batched-decrypt input over cached partition state (see PreparedPartition
/// and decrypt_batched below). Pointers must outlive the call.
struct PreparedPartitionRef {
  const PreparedPartition* part = nullptr;
  const BroadcastCiphertext* ct = nullptr;
};

/// Batched decrypt for a client that belongs to many partitions (the same
/// usk against several receiver sets / ciphertexts under one PK — e.g. one
/// user in n groups, or the paper's partitioned group on re-key). Element i
/// equals exactly what decrypt(pk, usk, parts[i].receivers, *parts[i].ct)
/// would return, including std::nullopt for partitions the user is not in.
///
/// Each partition's broadcast key is an independent GT element, so the
/// per-partition Miller loops and hard-part exponentiations are irreducible
/// (a single shared-squaring multi-pairing would only yield the PRODUCT of
/// the keys); what the batch amortizes is everything around them: ONE
/// Montgomery-batched field inversion for all easy parts
/// (pairing::final_exponentiation_many), ONE batched Fr inversion for all
/// 1/Delta exponents, and the PK's cached MSM/pairing tables warmed once.
/// Throws std::invalid_argument on a null ct pointer.
std::vector<std::optional<pairing::Gt>> decrypt_batched(
    const PublicKey& pk, const UserSecretKey& usk,
    std::span<const PartitionRef> parts);

/// decrypt_batched over cached PreparedPartition state: same amortizations
/// (one batched easy-part inversion across the final exponentiations), but
/// the per-partition polynomial expansion, MSM, Delta inversion, and h^p_i
/// line tables were all paid once at prepare() time. Throws
/// std::invalid_argument on null pointers.
std::vector<pairing::Gt> decrypt_batched(
    std::span<const PreparedPartitionRef> parts);

/// Rebuilds C3 = h^(prod (gamma+H(u))) from the public key alone (paper
/// Formula 5 remark) — O(|S|^2). Used to validate cached C3 values in tests.
ec::G2 compute_c3_public(const PublicKey& pk, std::span<const Identity> receivers);

/// Pairing check e(USK, h^gamma) * e(USK^H(id), h) == v (the bilinear
/// rewrite of e(USK, h^gamma * h^H(id)) == v) that lets a user validate a
/// provisioned key against the public system parameters (guards against a
/// rogue key issuer handing out garbage). Both G2 arguments are fixed PK
/// powers, so repeated checks reuse the PK's cached G2Prepared line tables
/// instead of paying a G2 scalar multiplication and Miller-loop point
/// arithmetic per call.
bool verify_user_key(const PublicKey& pk, const UserSecretKey& usk);

}  // namespace ibbe::core
