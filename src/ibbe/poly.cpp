#include "ibbe/poly.h"

namespace ibbe::core::poly {

using field::Fr;

namespace {

/// Below this operand size Karatsuba's extra additions cost more than the
/// saved multiplication (Fr mult ~ Fr add * ~10 with CIOS Montgomery).
constexpr std::size_t kKaratsubaThreshold = 24;

/// Roots sets at or below this size expand incrementally; above, the
/// subproduct tree halves the multiplication count per level.
constexpr std::size_t kTreeThreshold = 24;

std::vector<Fr> mul_schoolbook(std::span<const Fr> a, std::span<const Fr> b) {
  std::vector<Fr> out(a.size() + b.size() - 1, Fr::zero());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].is_zero()) continue;
    for (std::size_t j = 0; j < b.size(); ++j) {
      out[i + j] += a[i] * b[j];
    }
  }
  return out;
}

void add_into(std::vector<Fr>& acc, std::size_t offset,
              std::span<const Fr> v) {
  if (acc.size() < offset + v.size()) {
    acc.resize(offset + v.size(), Fr::zero());
  }
  for (std::size_t i = 0; i < v.size(); ++i) acc[offset + i] += v[i];
}

void sub_into(std::vector<Fr>& acc, std::size_t offset,
              std::span<const Fr> v) {
  for (std::size_t i = 0; i < v.size(); ++i) acc[offset + i] -= v[i];
}

}  // namespace

std::vector<Fr> mul(std::span<const Fr> a, std::span<const Fr> b) {
  if (a.empty() || b.empty()) return {};
  if (std::min(a.size(), b.size()) <= kKaratsubaThreshold) {
    return mul_schoolbook(a, b);
  }
  // Karatsuba: a = a0 + a1 x^h, b = b0 + b1 x^h;
  // ab = z0 + (z1 - z0 - z2) x^h + z2 x^2h with z1 = (a0+a1)(b0+b1).
  const std::size_t h = std::max(a.size(), b.size()) / 2;
  std::span<const Fr> a0 = a.subspan(0, std::min(h, a.size()));
  std::span<const Fr> a1 = a.size() > h ? a.subspan(h) : std::span<const Fr>{};
  std::span<const Fr> b0 = b.subspan(0, std::min(h, b.size()));
  std::span<const Fr> b1 = b.size() > h ? b.subspan(h) : std::span<const Fr>{};

  auto fold = [](std::span<const Fr> lo, std::span<const Fr> hi) {
    std::vector<Fr> s(std::max(lo.size(), hi.size()), Fr::zero());
    for (std::size_t i = 0; i < lo.size(); ++i) s[i] += lo[i];
    for (std::size_t i = 0; i < hi.size(); ++i) s[i] += hi[i];
    return s;
  };
  std::vector<Fr> z0 = mul(a0, b0);
  std::vector<Fr> z2 = mul(a1, b1);
  std::vector<Fr> z1 = mul(fold(a0, a1), fold(b0, b1));

  std::vector<Fr> out(a.size() + b.size() - 1, Fr::zero());
  add_into(out, 0, z0);
  add_into(out, h, z1);
  sub_into(out, h, z0);
  sub_into(out, h, z2);
  add_into(out, 2 * h, z2);
  return out;
}

std::vector<Fr> expand_roots_incremental(std::span<const Fr> roots) {
  std::vector<Fr> coef{Fr::one()};
  for (const Fr& hu : roots) {
    coef.push_back(Fr::zero());
    // Multiply by (x + hu), highest coefficient first.
    for (std::size_t i = coef.size(); i-- > 1;) {
      coef[i] = coef[i - 1] + coef[i] * hu;
    }
    coef[0] = coef[0] * hu;
  }
  return coef;
}

std::vector<Fr> expand_roots(std::span<const Fr> roots) {
  if (roots.size() <= kTreeThreshold) {
    return expand_roots_incremental(roots);
  }
  const std::size_t h = roots.size() / 2;
  return mul(expand_roots(roots.subspan(0, h)), expand_roots(roots.subspan(h)));
}

}  // namespace ibbe::core::poly
