// Dense polynomial arithmetic over the BN254 scalar field.
//
// The IBBE hot paths expand prod_u (x + H(u)) into coefficients (the paper's
// Formula 4). The classic incremental expansion is O(|S|^2) Zr
// multiplications; for large receiver sets a subproduct tree with Karatsuba
// multiplication brings that down to O(|S|^1.585).
#pragma once

#include <span>
#include <vector>

#include "field/fields.h"

namespace ibbe::core::poly {

/// Product of two dense polynomials (coefficients ascending). Schoolbook for
/// small operands, Karatsuba above a threshold. Empty input = zero
/// polynomial.
std::vector<field::Fr> mul(std::span<const field::Fr> a,
                           std::span<const field::Fr> b);

/// Coefficients (ascending, monic, degree = roots.size()) of
/// prod_i (x + roots[i]) by incremental multiplication — the O(n^2)
/// reference used below the tree threshold and as a test oracle.
std::vector<field::Fr> expand_roots_incremental(
    std::span<const field::Fr> roots);

/// Same product via a subproduct tree: split the root set in halves, expand
/// recursively, multiply the halves with Karatsuba. Falls back to the
/// incremental expansion below a small threshold.
std::vector<field::Fr> expand_roots(std::span<const field::Fr> roots);

}  // namespace ibbe::core::poly
