// Simulated Intel SGX platform and enclave runtime.
//
// What the paper gets from real SGX hardware and what this simulator
// preserves:
//
//   * Isolation      — enclave state is private C++ state reachable only via
//                      the ECALL methods of the derived enclave class; an
//                      EcallScope guard meters every boundary crossing.
//   * Measurement    — MRENCLAVE is the SHA-256 of the enclave image
//                      descriptor (name, version, code hash).
//   * Sealing        — AES-256-GCM under a key derived (HKDF) from the
//                      platform's fuse key and the measurement: a blob sealed
//                      by one enclave build cannot be opened by another, and
//                      not by any code outside an enclave of that build.
//   * Attestation    — quotes (measurement + report data) signed by the
//                      platform's Quoting Enclave key, verified by the
//                      simulated Intel Attestation Service (attestation.h).
//   * EPC pressure   — an allocation meter with the 128 MB EPC limit of the
//                      paper's SGX v1 hardware; benches report peak usage
//                      (the simulator does not fake paging slowdowns).
//   * Monotonic ctrs — a per-platform replay-protected counter service (the
//                      paper's hardware exposes SGX PSE counters; ROTE-style
//                      designs distribute them). Counters only ever move
//                      forward and survive enclave restarts on the same
//                      platform — the anchor the freshness defense
//                      (docs/fault_model.md) builds on.
//
// The deliberate difference: there is no hardware trust root — this is a
// functional model for running and measuring the scheme, not a secure
// boundary against a real co-resident adversary.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "crypto/drbg.h"
#include "pki/ecdsa.h"
#include "util/bytes.h"

namespace ibbe::sgx {

using Measurement = std::array<std::uint8_t, 32>;

/// A sealed blob: AEAD ciphertext bound to the sealing enclave's measurement
/// (MRENCLAVE policy).
struct SealedBlob {
  Measurement measurement{};
  util::Bytes nonce;       // 12 bytes
  util::Bytes ciphertext;  // includes the 16-byte GCM tag

  [[nodiscard]] util::Bytes to_bytes() const;
  static SealedBlob from_bytes(std::span<const std::uint8_t> data);
};

/// An attestation quote: proof that `measurement` runs on a genuine platform,
/// with `report_data` chosen by the enclave (here: SHA-256 of its public key).
struct Quote {
  Measurement measurement{};
  util::Bytes report_data;
  std::string platform_id;
  pki::EcdsaSignature signature;  // by the platform's QE key

  [[nodiscard]] util::Bytes signed_payload() const;
  [[nodiscard]] util::Bytes to_bytes() const;
  static Quote from_bytes(std::span<const std::uint8_t> data);
};

/// One simulated SGX-capable machine: fuse key + quoting-enclave key.
class EnclavePlatform {
 public:
  explicit EnclavePlatform(std::string platform_id);

  [[nodiscard]] const std::string& platform_id() const { return platform_id_; }
  [[nodiscard]] const ec::P256Point& qe_public_key() const {
    return qe_key_.public_key();
  }

  /// Produces a signed quote for an enclave measurement hosted here.
  [[nodiscard]] Quote quote(const Measurement& measurement,
                            util::Bytes report_data) const;

  /// Derives the sealing key for a measurement (fuse key never leaves).
  [[nodiscard]] util::Bytes sealing_key(const Measurement& measurement) const;

  // ---- replay-protected monotonic counters (models SGX PSE / ROTE) ----
  /// Current value of the named counter (0 if never advanced). Counters
  /// survive enclave restarts: they belong to the platform, not the enclave
  /// instance, exactly like the hardware's NVRAM-backed counters.
  [[nodiscard]] std::uint64_t counter_read(const std::string& name) const;
  /// Raises the named counter to `at_least` if it is below it (counters can
  /// only move forward) and returns the resulting value.
  std::uint64_t counter_advance(const std::string& name, std::uint64_t at_least);

 private:
  std::string platform_id_;
  util::Bytes fuse_key_;  // 32 bytes, unique per machine
  pki::EcdsaKeyPair qe_key_;
  mutable std::mutex counter_mutex_;
  std::map<std::string, std::uint64_t> counters_;
};

/// Descriptor hashed into the measurement.
struct EnclaveImage {
  std::string name;
  std::string version;
  /// Stand-in for the code pages; two builds differ here.
  util::Bytes code_hash;

  [[nodiscard]] Measurement measure() const;
};

/// Base class for simulated enclaves. Derived classes hold the private state
/// and expose ECALLs as methods that open an EcallScope.
class EnclaveBase {
 public:
  EnclaveBase(EnclavePlatform& platform, const EnclaveImage& image);
  /// Test/bench constructor with a deterministic in-enclave DRBG: two
  /// same-seed enclaves of the same image produce identical randomized
  /// outputs (up to platform entropy, e.g. seal nonces), which is what the
  /// parallel-equivalence suite compares bitwise.
  EnclaveBase(EnclavePlatform& platform, const EnclaveImage& image,
              std::uint64_t rng_seed);
  virtual ~EnclaveBase() = default;

  EnclaveBase(const EnclaveBase&) = delete;
  EnclaveBase& operator=(const EnclaveBase&) = delete;

  [[nodiscard]] const Measurement& measurement() const { return measurement_; }

  // ---- instrumentation (readable from untrusted code) ----
  [[nodiscard]] std::uint64_t ecall_count() const { return ecall_count_; }
  [[nodiscard]] std::size_t epc_bytes_used() const { return epc_used_; }
  [[nodiscard]] std::size_t epc_bytes_peak() const { return epc_peak_; }
  /// SGX v1 EPC size on the paper's hardware.
  static constexpr std::size_t epc_limit = 128u * 1024 * 1024;

  /// Quote over caller-chosen report data (delegates to the platform QE).
  [[nodiscard]] Quote generate_quote(util::Bytes report_data) const;

 protected:
  /// RAII boundary-crossing marker; every public ECALL opens one.
  class EcallScope {
   public:
    explicit EcallScope(const EnclaveBase& enclave) {
      ++enclave.ecall_count_;
    }
  };

  [[nodiscard]] SealedBlob seal(std::span<const std::uint8_t> plaintext) const;
  /// std::nullopt if the blob was sealed by a different measurement or is
  /// corrupted.
  [[nodiscard]] std::optional<util::Bytes> unseal(const SealedBlob& blob) const;

  /// In-enclave randomness (models RDRAND inside the enclave).
  [[nodiscard]] crypto::Drbg& enclave_rng() { return rng_; }

  /// The hosting platform's services beyond sealing/quoting (derived
  /// enclaves reach the monotonic-counter service through this).
  [[nodiscard]] EnclavePlatform& platform() { return platform_; }
  [[nodiscard]] const EnclavePlatform& platform() const { return platform_; }

  /// EPC accounting hooks for derived enclaves' long-lived state.
  void epc_alloc(std::size_t bytes);
  void epc_free(std::size_t bytes);

 private:
  EnclavePlatform& platform_;
  Measurement measurement_;
  crypto::Drbg rng_;
  mutable std::uint64_t ecall_count_ = 0;
  std::size_t epc_used_ = 0;
  std::size_t epc_peak_ = 0;
};

}  // namespace ibbe::sgx
