#include "sgx/enclave.h"

#include <stdexcept>

#include "crypto/gcm.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace ibbe::sgx {

// ------------------------------------------------------------- SealedBlob

util::Bytes SealedBlob::to_bytes() const {
  util::ByteWriter w;
  w.raw(measurement);
  w.blob(nonce);
  w.blob(ciphertext);
  return w.take();
}

SealedBlob SealedBlob::from_bytes(std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  SealedBlob blob;
  auto m = r.raw(32);
  std::copy(m.begin(), m.end(), blob.measurement.begin());
  blob.nonce = r.blob();
  blob.ciphertext = r.blob();
  r.expect_end();
  return blob;
}

// ------------------------------------------------------------------ Quote

util::Bytes Quote::signed_payload() const {
  util::ByteWriter w;
  w.raw(measurement);
  w.blob(report_data);
  w.str(platform_id);
  return w.take();
}

util::Bytes Quote::to_bytes() const {
  util::ByteWriter w;
  w.raw(measurement);
  w.blob(report_data);
  w.str(platform_id);
  w.raw(signature.to_bytes());
  return w.take();
}

Quote Quote::from_bytes(std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  Quote q;
  auto m = r.raw(32);
  std::copy(m.begin(), m.end(), q.measurement.begin());
  q.report_data = r.blob();
  q.platform_id = r.str();
  q.signature =
      pki::EcdsaSignature::from_bytes(r.raw(pki::EcdsaSignature::serialized_size));
  r.expect_end();
  return q;
}

// --------------------------------------------------------- EnclavePlatform

namespace {

crypto::Drbg& platform_entropy() {
  static crypto::Drbg rng;  // OS-seeded
  return rng;
}

}  // namespace

EnclavePlatform::EnclavePlatform(std::string platform_id)
    : platform_id_(std::move(platform_id)),
      fuse_key_(platform_entropy().bytes(32)),
      qe_key_(pki::EcdsaKeyPair::generate(platform_entropy())) {}

Quote EnclavePlatform::quote(const Measurement& measurement,
                             util::Bytes report_data) const {
  Quote q;
  q.measurement = measurement;
  q.report_data = std::move(report_data);
  q.platform_id = platform_id_;
  q.signature = qe_key_.sign(q.signed_payload());
  return q;
}

util::Bytes EnclavePlatform::sealing_key(const Measurement& measurement) const {
  return crypto::hkdf(measurement, fuse_key_, "sgx-sim:sealing:mrenclave", 32);
}

std::uint64_t EnclavePlatform::counter_read(const std::string& name) const {
  std::lock_guard lock(counter_mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::uint64_t EnclavePlatform::counter_advance(const std::string& name,
                                               std::uint64_t at_least) {
  std::lock_guard lock(counter_mutex_);
  auto& value = counters_[name];
  if (at_least > value) value = at_least;
  return value;
}

// ------------------------------------------------------------ EnclaveImage

Measurement EnclaveImage::measure() const {
  crypto::Sha256 h;
  h.update("sgx-sim:enclave-image:");
  h.update(name);
  h.update("\x00");
  h.update(version);
  h.update("\x00");
  h.update(code_hash);
  return h.finish();
}

// ------------------------------------------------------------- EnclaveBase

EnclaveBase::EnclaveBase(EnclavePlatform& platform, const EnclaveImage& image)
    : platform_(platform), measurement_(image.measure()) {}

EnclaveBase::EnclaveBase(EnclavePlatform& platform, const EnclaveImage& image,
                         std::uint64_t rng_seed)
    : platform_(platform),
      measurement_(image.measure()),
      rng_(rng_seed) {}

Quote EnclaveBase::generate_quote(util::Bytes report_data) const {
  return platform_.quote(measurement_, std::move(report_data));
}

SealedBlob EnclaveBase::seal(std::span<const std::uint8_t> plaintext) const {
  auto key = platform_.sealing_key(measurement_);
  crypto::Aes256Gcm gcm(key);
  SealedBlob blob;
  blob.measurement = measurement_;
  // Random nonce from the platform pool; the measurement doubles as AAD so a
  // blob cannot be replayed under a different claimed identity.
  blob.nonce = platform_entropy().bytes(crypto::Aes256Gcm::nonce_size);
  blob.ciphertext = gcm.seal(blob.nonce, plaintext, measurement_);
  return blob;
}

std::optional<util::Bytes> EnclaveBase::unseal(const SealedBlob& blob) const {
  // MRENCLAVE policy: the key is derived from *our* measurement. A blob
  // sealed by any other enclave build fails authentication.
  auto key = platform_.sealing_key(measurement_);
  crypto::Aes256Gcm gcm(key);
  return gcm.open(blob.nonce, blob.ciphertext, measurement_);
}

void EnclaveBase::epc_alloc(std::size_t bytes) {
  epc_used_ += bytes;
  if (epc_used_ > epc_peak_) epc_peak_ = epc_used_;
  if (epc_used_ > epc_limit) {
    // Real SGX v1 would start paging EPC (heavily penalized); we surface the
    // condition instead of silently modelling the slowdown.
    throw std::runtime_error("sgx-sim: enclave exceeded the 128 MiB EPC budget");
  }
}

void EnclaveBase::epc_free(std::size_t bytes) {
  epc_used_ = bytes > epc_used_ ? 0 : epc_used_ - bytes;
}

}  // namespace ibbe::sgx
