#include "sgx/attestation.h"

#include "crypto/sha256.h"

namespace ibbe::sgx {

void AttestationService::register_platform(const EnclavePlatform& platform) {
  platform_keys_.insert_or_assign(platform.platform_id(),
                                  platform.qe_public_key());
}

bool AttestationService::verify_quote(const Quote& quote) const {
  auto it = platform_keys_.find(quote.platform_id);
  if (it == platform_keys_.end()) return false;
  return pki::ecdsa_verify(it->second, quote.signed_payload(), quote.signature);
}

Auditor::Auditor(std::string name, const AttestationService& ias,
                 Measurement expected_measurement, crypto::Drbg& rng)
    : ias_(ias),
      expected_measurement_(expected_measurement),
      ca_(std::move(name), rng) {}

std::optional<pki::Certificate> Auditor::attest_and_certify(
    const Quote& quote, const util::Bytes& enclave_pubkey) const {
  if (!ias_.verify_quote(quote)) return std::nullopt;
  if (quote.measurement != expected_measurement_) return std::nullopt;
  // The quote must commit to the key being certified.
  auto expected_report = crypto::Sha256::hash(enclave_pubkey);
  if (quote.report_data.size() != expected_report.size() ||
      !util::ct_equal(quote.report_data, expected_report)) {
    return std::nullopt;
  }
  util::Bytes measurement_bytes(quote.measurement.begin(),
                                quote.measurement.end());
  return ca_.issue("enclave:" + quote.platform_id, enclave_pubkey,
                   measurement_bytes);
}

}  // namespace ibbe::sgx
