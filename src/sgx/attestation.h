// Simulated Intel Attestation Service (IAS) and the paper's Auditor/CA.
//
// Fig. 3 flow:  (1) enclave sends {pubkey, measurement/quote} to the Auditor,
// (2) the Auditor checks genuineness with IAS, (3) compares the measurement
// against the expected (audited) build and issues the enclave certificate,
// (4) users verify that certificate before trusting provisioned keys.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "pki/cert.h"
#include "sgx/enclave.h"

namespace ibbe::sgx {

/// IAS stand-in: knows the QE public key of every registered platform and
/// validates quote signatures.
class AttestationService {
 public:
  void register_platform(const EnclavePlatform& platform);

  /// True iff the quote was signed by a registered platform's QE key.
  [[nodiscard]] bool verify_quote(const Quote& quote) const;

 private:
  std::map<std::string, ec::P256Point> platform_keys_;
};

/// The Auditor of the paper: attests enclaves via IAS, compares measurements
/// with the expected audited build, and acts as the CA for enclave
/// certificates.
class Auditor {
 public:
  Auditor(std::string name, const AttestationService& ias,
          Measurement expected_measurement, crypto::Drbg& rng);

  /// Returns a certificate for the enclave public key carried in
  /// `quote.report_data` context iff the quote verifies and matches the
  /// expected measurement. `enclave_pubkey` must hash to the quote's report
  /// data (binding key to quote).
  [[nodiscard]] std::optional<pki::Certificate> attest_and_certify(
      const Quote& quote, const util::Bytes& enclave_pubkey) const;

  [[nodiscard]] const ec::P256Point& ca_public_key() const {
    return ca_.public_key();
  }

 private:
  const AttestationService& ias_;
  Measurement expected_measurement_;
  pki::CertificateAuthority ca_;
};

}  // namespace ibbe::sgx
