#include "crypto/drbg.h"

#include <fstream>
#include <stdexcept>

#include "crypto/sha256.h"

namespace ibbe::crypto {

Drbg::Drbg() {
  std::array<std::uint8_t, 32> seed{};
  std::ifstream urandom("/dev/urandom", std::ios::binary);
  if (!urandom.read(reinterpret_cast<char*>(seed.data()),
                    static_cast<std::streamsize>(seed.size()))) {
    throw std::runtime_error("Drbg: cannot read /dev/urandom");
  }
  reseed(seed);
}

Drbg::Drbg(std::uint64_t seed) {
  std::array<std::uint8_t, 8> raw;
  for (int i = 0; i < 8; ++i) raw[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(seed >> (8 * i));
  auto digest = Sha256::hash(raw);
  reseed(digest);
}

Drbg::Drbg(std::span<const std::uint8_t> seed32) {
  auto digest = Sha256::hash(seed32);
  reseed(digest);
}

void Drbg::reseed(std::span<const std::uint8_t> seed32) {
  std::array<std::uint8_t, 12> nonce{};  // fixed nonce: key is unique per instance
  stream_ = std::make_unique<ChaCha20>(seed32, nonce);
  offset_ = 64;
}

void Drbg::fill(std::span<std::uint8_t> out) {
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (offset_ == 64) {
      stream_->next_block(block_);
      offset_ = 0;
    }
    out[i] = block_[offset_++];
  }
}

util::Bytes Drbg::bytes(std::size_t n) {
  util::Bytes out(n);
  fill(out);
  return out;
}

std::uint64_t Drbg::next_u64() {
  std::array<std::uint8_t, 8> raw;
  fill(raw);
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = v << 8 | raw[static_cast<std::size_t>(i)];
  return v;
}

std::uint64_t Drbg::uniform(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Drbg::uniform: bound must be > 0");
  // Rejection sampling to avoid modulo bias.
  std::uint64_t limit = ~std::uint64_t{0} - ~std::uint64_t{0} % bound;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % bound;
}

}  // namespace ibbe::crypto
