// AES-256 block cipher (FIPS 197) with CTR keystream mode.
//
// The paper uses OpenSSL's AES-256 inside the enclave because the SGX SDK
// only shipped AES-128; this is our equivalent. Table-based implementation —
// fine for a simulator (no cache-timing adversary inside our own process).
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "util/bytes.h"

namespace ibbe::crypto {

class Aes256 {
 public:
  static constexpr std::size_t key_size = 32;
  static constexpr std::size_t block_size = 16;
  using Block = std::array<std::uint8_t, block_size>;

  explicit Aes256(std::span<const std::uint8_t> key);

  /// Encrypts one 16-byte block in place.
  void encrypt_block(Block& block) const;
  /// Value-returning variant.
  [[nodiscard]] Block encrypt(const Block& block) const;

 private:
  // 15 round keys of 4 words each.
  std::array<std::uint32_t, 60> round_keys_;
};

/// AES-256-CTR: XORs `data` with the keystream for (key, iv) starting at
/// block counter `initial_counter`. Encryption and decryption are the same
/// operation. The IV occupies bytes 0..11; the counter is big-endian in
/// bytes 12..15 (GCM convention).
void aes256_ctr_xor(const Aes256& cipher, std::span<const std::uint8_t> iv12,
                    std::uint32_t initial_counter, std::span<const std::uint8_t> in,
                    std::span<std::uint8_t> out);

}  // namespace ibbe::crypto
