// ChaCha20 stream cipher (RFC 8439). Keystream generator for the DRBG.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace ibbe::crypto {

class ChaCha20 {
 public:
  static constexpr std::size_t key_size = 32;
  static constexpr std::size_t nonce_size = 12;

  ChaCha20(std::span<const std::uint8_t> key, std::span<const std::uint8_t> nonce,
           std::uint32_t initial_counter = 0);

  /// Produces the next 64 keystream bytes (advances the block counter).
  void next_block(std::span<std::uint8_t> out64);

 private:
  std::array<std::uint32_t, 16> state_;
};

}  // namespace ibbe::crypto
