// Deterministic random bit generator on a ChaCha20 keystream.
//
// All randomness in the library flows through a Drbg handle so that tests and
// trace replays can be made reproducible by seeding, while production use
// seeds from the OS entropy pool.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>

#include "crypto/chacha20.h"
#include "util/bytes.h"

namespace ibbe::crypto {

class Drbg {
 public:
  /// Seeded from the OS entropy pool (getrandom / /dev/urandom).
  Drbg();
  /// Deterministic: same seed, same stream. For tests and replays.
  explicit Drbg(std::uint64_t seed);
  explicit Drbg(std::span<const std::uint8_t> seed32);

  void fill(std::span<std::uint8_t> out);
  [[nodiscard]] util::Bytes bytes(std::size_t n);
  [[nodiscard]] std::uint64_t next_u64();
  /// Uniform in [0, bound); bound must be > 0. Rejection-sampled.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t bound);

 private:
  void reseed(std::span<const std::uint8_t> seed32);

  std::unique_ptr<ChaCha20> stream_;
  std::array<std::uint8_t, 64> block_{};
  std::size_t offset_ = 64;  // force generation on first use
};

}  // namespace ibbe::crypto
