// AES-256-GCM authenticated encryption (NIST SP 800-38D).
//
// Every confidentiality artifact in the system is AEAD-protected with this:
// the per-partition wrapped group key y_p, sealed enclave state, provisioning
// channel payloads, ECIES bodies, and the example applications' file blobs.
#pragma once

#include <optional>
#include <span>

#include "crypto/aes256.h"
#include "util/bytes.h"

namespace ibbe::crypto {

class Aes256Gcm {
 public:
  static constexpr std::size_t key_size = 32;
  static constexpr std::size_t nonce_size = 12;
  static constexpr std::size_t tag_size = 16;

  explicit Aes256Gcm(std::span<const std::uint8_t> key);

  /// Returns ciphertext || 16-byte tag.
  [[nodiscard]] util::Bytes seal(std::span<const std::uint8_t> nonce,
                                 std::span<const std::uint8_t> plaintext,
                                 std::span<const std::uint8_t> aad = {}) const;

  /// Verifies the tag (constant time) and decrypts; std::nullopt on failure.
  [[nodiscard]] std::optional<util::Bytes> open(
      std::span<const std::uint8_t> nonce, std::span<const std::uint8_t> sealed,
      std::span<const std::uint8_t> aad = {}) const;

 private:
  using Block = Aes256::Block;

  [[nodiscard]] Block ghash(std::span<const std::uint8_t> aad,
                            std::span<const std::uint8_t> ciphertext) const;
  [[nodiscard]] Block gf_mul(const Block& x, const Block& y) const;

  Aes256 cipher_;
  Block h_;  // GHASH key: E_K(0^128)
};

}  // namespace ibbe::crypto
