#include "crypto/hmac.h"

#include <stdexcept>

namespace ibbe::crypto {

Sha256::Digest hmac_sha256(std::span<const std::uint8_t> key,
                           std::span<const std::uint8_t> message) {
  std::array<std::uint8_t, 64> block{};
  if (key.size() > 64) {
    auto digest = Sha256::hash(key);
    std::copy(digest.begin(), digest.end(), block.begin());
  } else {
    std::copy(key.begin(), key.end(), block.begin());
  }

  std::array<std::uint8_t, 64> ipad;
  std::array<std::uint8_t, 64> opad;
  for (std::size_t i = 0; i < 64; ++i) {
    ipad[i] = block[i] ^ 0x36;
    opad[i] = block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(message);
  auto inner_digest = inner.finish();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finish();
}

Sha256::Digest hkdf_extract(std::span<const std::uint8_t> salt,
                            std::span<const std::uint8_t> ikm) {
  if (salt.empty()) {
    std::array<std::uint8_t, 32> zero{};
    return hmac_sha256(zero, ikm);
  }
  return hmac_sha256(salt, ikm);
}

util::Bytes hkdf_expand(std::span<const std::uint8_t> prk, std::string_view info,
                        std::size_t length) {
  if (length > 255 * Sha256::digest_size) {
    throw std::invalid_argument("hkdf_expand: length too large");
  }
  util::Bytes okm;
  okm.reserve(length);
  util::Bytes t;
  std::uint8_t counter = 1;
  while (okm.size() < length) {
    util::Bytes input = t;
    input.insert(input.end(), info.begin(), info.end());
    input.push_back(counter++);
    auto digest = hmac_sha256(prk, input);
    t.assign(digest.begin(), digest.end());
    std::size_t take = std::min(t.size(), length - okm.size());
    okm.insert(okm.end(), t.begin(), t.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return okm;
}

util::Bytes hkdf(std::span<const std::uint8_t> salt, std::span<const std::uint8_t> ikm,
                 std::string_view info, std::size_t length) {
  auto prk = hkdf_extract(salt, ikm);
  return hkdf_expand(prk, info, length);
}

}  // namespace ibbe::crypto
