// SHA-256 (FIPS 180-4).
//
// Used for: IBBE identity hashing H(id) -> Zr*, broadcast-key hashing
// (gk wrap key = SHA-256(bk)), enclave measurements, HMAC/HKDF, and ECDSA
// message digests.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "util/bytes.h"

namespace ibbe::crypto {

class Sha256 {
 public:
  static constexpr std::size_t digest_size = 32;
  using Digest = std::array<std::uint8_t, digest_size>;

  Sha256();

  /// Streaming interface.
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view s);
  [[nodiscard]] Digest finish();

  /// One-shot helpers.
  static Digest hash(std::span<const std::uint8_t> data);
  static Digest hash(std::string_view s);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace ibbe::crypto
