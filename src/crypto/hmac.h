// HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).
//
// HKDF derives: sealing keys from the simulated CPU fuse key, session keys in
// the attestation/provisioning channel, and ECIES symmetric keys.
#pragma once

#include <span>
#include <string_view>

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace ibbe::crypto {

Sha256::Digest hmac_sha256(std::span<const std::uint8_t> key,
                           std::span<const std::uint8_t> message);

Sha256::Digest hkdf_extract(std::span<const std::uint8_t> salt,
                            std::span<const std::uint8_t> ikm);

/// Expands to `length` bytes (length <= 255 * 32).
util::Bytes hkdf_expand(std::span<const std::uint8_t> prk, std::string_view info,
                        std::size_t length);

/// Extract-then-expand convenience.
util::Bytes hkdf(std::span<const std::uint8_t> salt, std::span<const std::uint8_t> ikm,
                 std::string_view info, std::size_t length);

}  // namespace ibbe::crypto
