#include "crypto/gcm.h"

#include <stdexcept>

namespace ibbe::crypto {

Aes256Gcm::Aes256Gcm(std::span<const std::uint8_t> key) : cipher_(key), h_{} {
  cipher_.encrypt_block(h_);
}

Aes256Gcm::Block Aes256Gcm::gf_mul(const Block& x, const Block& y) const {
  // Bitwise GF(2^128) multiplication, MSB-first per the GCM spec.
  Block z{};
  Block v = y;
  for (int i = 0; i < 128; ++i) {
    std::size_t byte = static_cast<std::size_t>(i / 8);
    int bit = 7 - i % 8;
    if ((x[byte] >> bit) & 1) {
      for (int j = 0; j < 16; ++j) z[static_cast<std::size_t>(j)] ^= v[static_cast<std::size_t>(j)];
    }
    bool lsb = v[15] & 1;
    // v >>= 1 (big-endian bit order)
    for (int j = 15; j > 0; --j) {
      v[static_cast<std::size_t>(j)] = static_cast<std::uint8_t>(
          v[static_cast<std::size_t>(j)] >> 1 | v[static_cast<std::size_t>(j - 1)] << 7);
    }
    v[0] >>= 1;
    if (lsb) v[0] ^= 0xe1;
  }
  return z;
}

Aes256Gcm::Block Aes256Gcm::ghash(std::span<const std::uint8_t> aad,
                                  std::span<const std::uint8_t> ciphertext) const {
  Block y{};
  auto absorb = [&](std::span<const std::uint8_t> data) {
    std::size_t offset = 0;
    while (offset < data.size()) {
      std::size_t take = std::min<std::size_t>(16, data.size() - offset);
      for (std::size_t i = 0; i < take; ++i) y[i] ^= data[offset + i];
      y = gf_mul(y, h_);
      offset += take;
    }
  };
  absorb(aad);
  absorb(ciphertext);
  // Length block: 64-bit bit-lengths of AAD and ciphertext.
  Block len{};
  std::uint64_t aad_bits = static_cast<std::uint64_t>(aad.size()) * 8;
  std::uint64_t ct_bits = static_cast<std::uint64_t>(ciphertext.size()) * 8;
  for (int i = 0; i < 8; ++i) {
    len[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(aad_bits >> (56 - 8 * i));
    len[static_cast<std::size_t>(8 + i)] = static_cast<std::uint8_t>(ct_bits >> (56 - 8 * i));
  }
  for (int i = 0; i < 16; ++i) y[static_cast<std::size_t>(i)] ^= len[static_cast<std::size_t>(i)];
  return gf_mul(y, h_);
}

util::Bytes Aes256Gcm::seal(std::span<const std::uint8_t> nonce,
                            std::span<const std::uint8_t> plaintext,
                            std::span<const std::uint8_t> aad) const {
  if (nonce.size() != nonce_size) {
    throw std::invalid_argument("Aes256Gcm: nonce must be 12 bytes");
  }
  util::Bytes out(plaintext.size() + tag_size);
  // CTR encryption starts at counter 2 (counter 1 is reserved for the tag).
  aes256_ctr_xor(cipher_, nonce, 2, plaintext,
                 std::span<std::uint8_t>(out.data(), plaintext.size()));

  Block s = ghash(aad, std::span<const std::uint8_t>(out.data(), plaintext.size()));
  // Tag = E_K(J0) ^ GHASH, with J0 = nonce || 0x00000001.
  Block j0{};
  std::copy(nonce.begin(), nonce.end(), j0.begin());
  j0[15] = 1;
  auto ek_j0 = cipher_.encrypt(j0);
  for (std::size_t i = 0; i < tag_size; ++i) {
    out[plaintext.size() + i] = s[i] ^ ek_j0[i];
  }
  return out;
}

std::optional<util::Bytes> Aes256Gcm::open(std::span<const std::uint8_t> nonce,
                                           std::span<const std::uint8_t> sealed,
                                           std::span<const std::uint8_t> aad) const {
  if (nonce.size() != nonce_size || sealed.size() < tag_size) return std::nullopt;
  std::size_t ct_len = sealed.size() - tag_size;
  auto ciphertext = sealed.first(ct_len);

  Block s = ghash(aad, ciphertext);
  Block j0{};
  std::copy(nonce.begin(), nonce.end(), j0.begin());
  j0[15] = 1;
  auto ek_j0 = cipher_.encrypt(j0);
  std::array<std::uint8_t, tag_size> expected;
  for (std::size_t i = 0; i < tag_size; ++i) expected[i] = s[i] ^ ek_j0[i];

  if (!util::ct_equal(expected, sealed.subspan(ct_len))) return std::nullopt;

  util::Bytes plaintext(ct_len);
  aes256_ctr_xor(cipher_, nonce, 2, ciphertext, plaintext);
  return plaintext;
}

}  // namespace ibbe::crypto
