// HE-PKI baseline: Hybrid Encryption with classical public keys.
//
// The group key is ECIES-encrypted once per member (the paper's "trivial
// broadcast encryption"). Metadata grows linearly with the group;
// revocation re-encrypts for everyone: O(|S|) public-key operations.
#pragma once

#include <map>

#include "crypto/drbg.h"
#include "he/scheme.h"
#include "pki/ecies.h"

namespace ibbe::he {

class HePkiScheme : public GroupScheme {
 public:
  explicit HePkiScheme(std::uint64_t seed = 0);

  /// Pre-creates the long-term P-256 key pairs of `users`, as a real PKI
  /// would have done out-of-band (registration is excluded from op timings).
  void register_users(std::span<const core::Identity> users);

  [[nodiscard]] std::string name() const override { return "HE-PKI"; }
  void create_group(std::span<const core::Identity> members) override;
  void add_user(const core::Identity& id) override;
  void remove_user(const core::Identity& id) override;
  [[nodiscard]] std::optional<util::Bytes> user_decrypt(
      const core::Identity& id) override;
  [[nodiscard]] std::size_t metadata_size() const override;
  [[nodiscard]] std::size_t group_size() const override { return entries_.size(); }

 private:
  const pki::EciesKeyPair& user_key(const core::Identity& id);
  void grant(const core::Identity& id);

  crypto::Drbg rng_;
  util::Bytes gk_;
  std::map<core::Identity, pki::EciesKeyPair> directory_;  // the simulated PKI
  std::map<core::Identity, util::Bytes> entries_;          // per-member ECIES cts
};

}  // namespace ibbe::he
