// HE-IBE baseline: Hybrid Encryption with Boneh-Franklin identity-based
// encryption (adapted to the type-3 BN254 pairing; identities hash into G1,
// the system key lives in G2).
//
//   TA:       s in Zr*, Ppub = s*P2
//   Extract:  d_id = s*H1(id) in G1
//   Encrypt:  r in Zr*; U = r*P2; key = SHA-256(e(H1(id), Ppub)^r);
//             body = AES-GCM_key(gk)
//   Decrypt:  key = SHA-256(e(d_id, U))  [= same pairing value]
//
// One pairing per member per encryption — the order-of-magnitude gap over
// HE-PKI that Fig. 2 of the paper shows.
#pragma once

#include <array>
#include <map>

#include "crypto/drbg.h"
#include "he/scheme.h"
#include "pairing/pairing.h"

namespace ibbe::he {

class HeIbeScheme : public GroupScheme {
 public:
  explicit HeIbeScheme(std::uint64_t seed = 0);

  [[nodiscard]] std::string name() const override { return "HE-IBE"; }
  void create_group(std::span<const core::Identity> members) override;
  void add_user(const core::Identity& id) override;
  void remove_user(const core::Identity& id) override;
  [[nodiscard]] std::optional<util::Bytes> user_decrypt(
      const core::Identity& id) override;
  [[nodiscard]] std::size_t metadata_size() const override;
  [[nodiscard]] std::size_t group_size() const override { return entries_.size(); }

  /// SHA-256 over the whole entry table (id, U, body) in map order — a
  /// compact fingerprint of every granted credential, compared bitwise by
  /// the parallel-equivalence tests across thread counts.
  [[nodiscard]] std::array<std::uint8_t, 32> entries_digest() const;

 private:
  struct Entry {
    util::Bytes u_bytes;  // compressed G2 point U = r*P2
    util::Bytes body;     // AES-GCM(gk) under the pairing-derived key
  };

  /// TA key extraction, memoized per identity.
  const ec::G1& user_key(const core::Identity& id);
  void grant(const core::Identity& id);
  /// Bulk grant (group creation / post-revocation re-key): per-member Miller
  /// loops against the prepared Ppub, then one batched final exponentiation.
  void grant_many(std::span<const core::Identity> ids);

  crypto::Drbg rng_;
  util::Bytes gk_;
  field::Fr master_s_;
  ec::G2 p_pub_;
  /// Normalized line-table precomputation for the fixed Ppub argument —
  /// every grant() pairs against it, so the Miller loop's G2 work (and the
  /// line normalization) is paid once per scheme.
  pairing::G2PreparedAffine p_pub_prepared_;
  std::map<core::Identity, ec::G1> extracted_;  // d_id cache (TA side)
  std::map<core::Identity, Entry> entries_;
};

}  // namespace ibbe::he
