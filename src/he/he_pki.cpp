#include "he/he_pki.h"

namespace ibbe::he {

namespace {
constexpr std::size_t gk_size = 32;
}

HePkiScheme::HePkiScheme(std::uint64_t seed) : rng_(seed) {}

void HePkiScheme::register_users(std::span<const core::Identity> users) {
  for (const auto& id : users) (void)user_key(id);
}

const pki::EciesKeyPair& HePkiScheme::user_key(const core::Identity& id) {
  auto it = directory_.find(id);
  if (it == directory_.end()) {
    it = directory_.emplace(id, pki::EciesKeyPair::generate(rng_)).first;
  }
  return it->second;
}

void HePkiScheme::grant(const core::Identity& id) {
  entries_[id] = pki::ecies_encrypt(user_key(id).public_key(), gk_, rng_);
}

void HePkiScheme::create_group(std::span<const core::Identity> members) {
  entries_.clear();
  gk_ = rng_.bytes(gk_size);
  for (const auto& id : members) grant(id);
}

void HePkiScheme::add_user(const core::Identity& id) {
  if (gk_.empty()) gk_ = rng_.bytes(gk_size);
  grant(id);
}

void HePkiScheme::remove_user(const core::Identity& id) {
  entries_.erase(id);
  // Revocation: fresh gk, re-encrypted to every remaining member — the
  // linear cost the paper's Fig. 7 measures.
  gk_ = rng_.bytes(gk_size);
  for (auto& [member, ct] : entries_) {
    ct = pki::ecies_encrypt(user_key(member).public_key(), gk_, rng_);
  }
}

std::optional<util::Bytes> HePkiScheme::user_decrypt(const core::Identity& id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return std::nullopt;
  auto dir = directory_.find(id);
  if (dir == directory_.end()) return std::nullopt;
  return dir->second.decrypt(it->second);
}

std::size_t HePkiScheme::metadata_size() const {
  std::size_t total = 0;
  for (const auto& [id, ct] : entries_) {
    total += id.size() + ct.size() + 8;  // id, ciphertext, framing
  }
  return total;
}

}  // namespace ibbe::he
