#include "he/he_ibe.h"

#include "crypto/gcm.h"
#include "crypto/sha256.h"
#include "util/thread_pool.h"

namespace ibbe::he {

using ec::G1;
using ec::G2;
using field::Fr;

namespace {

constexpr std::size_t gk_size = 32;

Fr random_nonzero_fr(crypto::Drbg& rng) {
  while (true) {
    auto raw = rng.bytes(32);
    Fr k = Fr::from_be_bytes_reduce(raw);
    if (!k.is_zero()) return k;
  }
}

const util::Bytes& zero_nonce() {
  static const util::Bytes nonce(12, 0);  // key is fresh per encryption
  return nonce;
}

}  // namespace

HeIbeScheme::HeIbeScheme(std::uint64_t seed) : rng_(seed) {
  master_s_ = random_nonzero_fr(rng_);
  p_pub_ = G2::generator().mul(master_s_);
  p_pub_prepared_ = pairing::G2PreparedAffine(p_pub_);
}

const G1& HeIbeScheme::user_key(const core::Identity& id) {
  auto it = extracted_.find(id);
  if (it == extracted_.end()) {
    it = extracted_.emplace(id, ec::hash_to_g1(id).mul(master_s_)).first;
  }
  return it->second;
}

void HeIbeScheme::grant(const core::Identity& id) {
  Fr r = random_nonzero_fr(rng_);
  G2 u = G2::generator().mul(r);
  auto shared = pairing::pairing(ec::hash_to_g1(id), p_pub_prepared_).exp(r);
  crypto::Aes256Gcm gcm(shared.hash());
  Entry entry;
  entry.u_bytes = ec::g2_to_bytes(u);
  entry.body = gcm.seal(zero_nonce(), gk_);
  entries_[id] = std::move(entry);
}

void HeIbeScheme::grant_many(std::span<const core::Identity> ids) {
  // One grant per member, but with the per-member final exponentiations
  // batched (pairing::final_exponentiation_many shares the easy part's field
  // inversion) and the per-member key derivation routed through the GT
  // exponentiation engine via Gt::exp. The per-member math fans out to the
  // thread pool: the r_i are pre-drawn serially in member order, each task
  // writes only its own slots, and the entries_ map is mutated exclusively
  // on the calling thread — the outputs are bitwise-identical to the serial
  // loop at any thread count.
  const std::size_t n = ids.size();
  std::vector<Fr> rs(n);
  for (auto& r : rs) r = random_nonzero_fr(rng_);

  std::vector<util::Bytes> u_bytes(n);
  std::vector<field::Fp12> millers(n);
  auto& pool = util::ThreadPool::global();
  pool.parallel_for(0, n, 1, [&](std::size_t i) {
    u_bytes[i] = ec::g2_to_bytes(G2::generator().mul(rs[i]));
    millers[i] = pairing::miller_loop(ec::hash_to_g1(ids[i]), p_pub_prepared_);
  });
  auto exps = pairing::final_exponentiation_many(millers);

  std::vector<util::Bytes> bodies(n);
  pool.parallel_for(0, n, 1, [&](std::size_t i) {
    auto shared = pairing::Gt::from_fp12_unchecked(exps[i]).exp(rs[i]);
    crypto::Aes256Gcm gcm(shared.hash());
    bodies[i] = gcm.seal(zero_nonce(), gk_);
  });

  for (std::size_t i = 0; i < n; ++i) {
    Entry entry;
    entry.u_bytes = std::move(u_bytes[i]);
    entry.body = std::move(bodies[i]);
    entries_[ids[i]] = std::move(entry);
  }
}

void HeIbeScheme::create_group(std::span<const core::Identity> members) {
  entries_.clear();
  gk_ = rng_.bytes(gk_size);
  grant_many(members);
}

void HeIbeScheme::add_user(const core::Identity& id) {
  if (gk_.empty()) gk_ = rng_.bytes(gk_size);
  grant(id);
}

void HeIbeScheme::remove_user(const core::Identity& id) {
  entries_.erase(id);
  gk_ = rng_.bytes(gk_size);
  std::vector<core::Identity> remaining;
  remaining.reserve(entries_.size());
  for (const auto& [member, entry] : entries_) remaining.push_back(member);
  grant_many(remaining);
}

std::optional<util::Bytes> HeIbeScheme::user_decrypt(const core::Identity& id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return std::nullopt;
  G2 u;
  try {
    u = ec::g2_from_bytes(it->second.u_bytes);
  } catch (const util::DeserializeError&) {
    return std::nullopt;
  }
  auto shared = pairing::pairing(user_key(id), u);
  crypto::Aes256Gcm gcm(shared.hash());
  return gcm.open(zero_nonce(), it->second.body);
}

std::size_t HeIbeScheme::metadata_size() const {
  std::size_t total = 0;
  for (const auto& [id, entry] : entries_) {
    total += id.size() + entry.u_bytes.size() + entry.body.size() + 8;
  }
  return total;
}

std::array<std::uint8_t, 32> HeIbeScheme::entries_digest() const {
  crypto::Sha256 h;
  for (const auto& [id, entry] : entries_) {
    util::ByteWriter w;
    w.str(id);
    w.blob(entry.u_bytes);
    w.blob(entry.body);
    h.update(w.take());
  }
  return h.finish();
}

}  // namespace ibbe::he
