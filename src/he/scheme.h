// Common interface over every group access-control scheme in the repo.
//
// The evaluation replays identical membership traces against IBBE-SGX and the
// Hybrid Encryption baselines (paper Figs. 7, 9, 10); this interface is what
// the replayer drives. "Hybrid Encryption" = symmetric gk for the data,
// per-member public-key encryption of gk for the policy.
#pragma once

#include <optional>
#include <span>
#include <string>

#include "ibbe/ibbe.h"
#include "util/bytes.h"

namespace ibbe::he {

class GroupScheme {
 public:
  virtual ~GroupScheme() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  // ---- administrator operations ----
  /// (Re)creates the group with exactly `members`. Generates a fresh gk.
  virtual void create_group(std::span<const core::Identity> members) = 0;
  /// Grants `id` access to the current gk.
  virtual void add_user(const core::Identity& id) = 0;
  /// Revokes `id`: rotates gk and re-grants the remaining members.
  virtual void remove_user(const core::Identity& id) = 0;

  // ---- user operation ----
  /// Derives the group key as user `id`; std::nullopt when not a member.
  [[nodiscard]] virtual std::optional<util::Bytes> user_decrypt(
      const core::Identity& id) = 0;

  // ---- metrics (paper's storage-footprint axis) ----
  /// Bytes of group metadata that would live on the cloud store.
  [[nodiscard]] virtual std::size_t metadata_size() const = 0;
  [[nodiscard]] virtual std::size_t group_size() const = 0;
};

}  // namespace ibbe::he
