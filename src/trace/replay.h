// Trace replay harness: drives a GroupScheme through a MembershipTrace and
// collects the timings the paper reports in Figs. 9 and 10.
#pragma once

#include <set>

#include "he/scheme.h"
#include "trace/trace.h"
#include "util/stats.h"

namespace ibbe::trace {

struct ReplayOptions {
  /// Sample a user-side decrypt every N membership operations (0 disables).
  /// The paper reports the *average user decryption time* alongside the
  /// total administrator replay time.
  std::size_t decrypt_sample_every = 0;
  /// After every op, check that a current member can decrypt and (when one
  /// exists) that the most recently revoked user cannot. Slow; for tests.
  bool verify = false;
};

struct ReplayResult {
  double admin_seconds = 0;           // total time in scheme membership ops
  double setup_seconds = 0;           // create_group for initial_members
  util::Summary add_latencies;        // seconds per add
  util::Summary remove_latencies;     // seconds per remove
  util::Summary decrypt_latencies;    // seconds per sampled decrypt
  std::size_t final_group_size = 0;
  std::size_t final_metadata_bytes = 0;
  std::size_t ops_applied = 0;
};

/// Replays `trace` against `scheme`. Throws std::runtime_error if `verify`
/// is set and an invariant breaks (member cannot decrypt / revoked user can).
ReplayResult replay(he::GroupScheme& scheme, const MembershipTrace& trace,
                    const ReplayOptions& options = {});

}  // namespace ibbe::trace
