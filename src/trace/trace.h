// Membership-operation traces for the macrobenchmarks (paper §VI-B).
//
// Two generators:
//
//  * linux_kernel_trace — a synthesizer standing in for the Kaggle dump of
//    the Linux kernel's git history used by the paper (first commit = join,
//    last commit = leave). The offline environment has no Kaggle data, so we
//    reproduce the trace's published shape instead: 43,468 membership
//    operations spanning ten years with the live-contributor set peaking at
//    2,803 — scaled by the caller. Contributor lifetimes are heavy-tailed
//    (many drive-by contributors, a long-lived core), which is what makes
//    the add/remove interleaving realistic.
//
//  * revocation_trace — the synthetic workload of Fig. 10: a fixed number of
//    operations where each step is a revocation with probability `rate` (if
//    anyone is left to revoke) and a join of a fresh user otherwise.
//
// Both are deterministic given the seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ibbe/ibbe.h"

namespace ibbe::trace {

enum class OpKind : std::uint8_t { add, remove };

struct MembershipOp {
  OpKind kind;
  core::Identity user;
};

struct MembershipTrace {
  std::string label;
  /// Members present before the first op (replayed as one create_group).
  std::vector<core::Identity> initial_members;
  std::vector<MembershipOp> ops;

  /// Members still present after replaying every op.
  [[nodiscard]] std::vector<core::Identity> final_members() const;
  /// Largest concurrent membership over the trace.
  [[nodiscard]] std::size_t peak_size() const;
  [[nodiscard]] std::size_t add_count() const;
  [[nodiscard]] std::size_t remove_count() const;
};

/// Linux-kernel-shaped trace: `total_ops` membership operations whose live
/// set ramps up to ~`peak_size` and then churns, paper defaults 43468/2803.
MembershipTrace linux_kernel_trace(std::size_t total_ops = 43468,
                                   std::size_t peak_size = 2803,
                                   std::uint64_t seed = 1);

/// Fig. 10 synthetic workload: each op is a removal with probability
/// `revocation_rate` (in [0,1]). `initial_size` pre-populates the group so
/// that high revocation rates have members to revoke (with an initially
/// empty group the removal share is capped at ~50%: every removal needs a
/// preceding add).
MembershipTrace revocation_trace(std::size_t total_ops, double revocation_rate,
                                 std::uint64_t seed = 1,
                                 std::size_t initial_size = 0);

}  // namespace ibbe::trace
