#include "trace/replay.h"

#include <stdexcept>

#include "util/stopwatch.h"

namespace ibbe::trace {

ReplayResult replay(he::GroupScheme& scheme, const MembershipTrace& trace,
                    const ReplayOptions& options) {
  ReplayResult result;
  std::set<core::Identity> live;
  std::optional<core::Identity> last_revoked;

  if (!trace.initial_members.empty()) {
    // Group bootstrap is setup, not a membership change: timed separately.
    util::Stopwatch watch;
    scheme.create_group(trace.initial_members);
    result.setup_seconds = watch.seconds();
    live.insert(trace.initial_members.begin(), trace.initial_members.end());
  }

  for (std::size_t i = 0; i < trace.ops.size(); ++i) {
    const auto& op = trace.ops[i];
    util::Stopwatch watch;
    if (op.kind == OpKind::add) {
      scheme.add_user(op.user);
      double s = watch.seconds();
      result.admin_seconds += s;
      result.add_latencies.add(s);
      live.insert(op.user);
      if (last_revoked == op.user) last_revoked.reset();
    } else {
      scheme.remove_user(op.user);
      double s = watch.seconds();
      result.admin_seconds += s;
      result.remove_latencies.add(s);
      live.erase(op.user);
      last_revoked = op.user;
    }
    ++result.ops_applied;

    bool sample = options.decrypt_sample_every != 0 && !live.empty() &&
                  (i % options.decrypt_sample_every) == 0;
    if (sample || (options.verify && !live.empty())) {
      const auto& member = *live.begin();
      util::Stopwatch dwatch;
      auto gk = scheme.user_decrypt(member);
      double ds = dwatch.seconds();
      if (sample) result.decrypt_latencies.add(ds);
      if (options.verify) {
        if (!gk.has_value()) {
          throw std::runtime_error("replay: live member " + member +
                                   " failed to decrypt after op " +
                                   std::to_string(i) + " (" + scheme.name() + ")");
        }
        if (last_revoked && live.find(*last_revoked) == live.end()) {
          auto stale = scheme.user_decrypt(*last_revoked);
          if (stale.has_value() && *stale == *gk) {
            throw std::runtime_error("replay: revoked user " + *last_revoked +
                                     " still derives the current group key (" +
                                     scheme.name() + ")");
          }
        }
      }
    }
  }

  result.final_group_size = scheme.group_size();
  result.final_metadata_bytes = scheme.metadata_size();
  return result;
}

}  // namespace ibbe::trace
