#include "trace/trace.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "crypto/drbg.h"

namespace ibbe::trace {

std::vector<core::Identity> MembershipTrace::final_members() const {
  std::set<core::Identity> live(initial_members.begin(), initial_members.end());
  for (const auto& op : ops) {
    if (op.kind == OpKind::add) {
      live.insert(op.user);
    } else {
      live.erase(op.user);
    }
  }
  return {live.begin(), live.end()};
}

std::size_t MembershipTrace::peak_size() const {
  std::set<core::Identity> live(initial_members.begin(), initial_members.end());
  std::size_t peak = live.size();
  for (const auto& op : ops) {
    if (op.kind == OpKind::add) {
      live.insert(op.user);
    } else {
      live.erase(op.user);
    }
    peak = std::max(peak, live.size());
  }
  return peak;
}

std::size_t MembershipTrace::add_count() const {
  std::size_t n = 0;
  for (const auto& op : ops) n += op.kind == OpKind::add;
  return n;
}

std::size_t MembershipTrace::remove_count() const {
  return ops.size() - add_count();
}

MembershipTrace linux_kernel_trace(std::size_t total_ops, std::size_t peak_size,
                                   std::uint64_t seed) {
  if (total_ops < 2 || peak_size < 2) {
    throw std::invalid_argument("linux_kernel_trace: trace too small");
  }
  crypto::Drbg rng(seed);
  MembershipTrace trace;
  trace.label = "linux-kernel-acl";
  trace.ops.reserve(total_ops);

  std::vector<core::Identity> live;  // join order retained
  std::uint64_t next_uid = 0;
  auto fresh_user = [&] { return "dev" + std::to_string(next_uid++); };

  // Target live-set size as a function of progress: a ramp to the peak over
  // the first 60% of the trace (the kernel's contributor base mostly grew
  // over the decade), then a plateau with churn.
  auto target = [&](double progress) -> std::size_t {
    double ramp = std::min(1.0, progress / 0.6);
    // smoothstep for a gentle start, floor of 1.
    double s = ramp * ramp * (3 - 2 * ramp);
    return std::max<std::size_t>(1, static_cast<std::size_t>(
                                        s * static_cast<double>(peak_size)));
  };

  for (std::size_t i = 0; i < total_ops; ++i) {
    double progress =
        static_cast<double>(i) / static_cast<double>(total_ops);
    std::size_t want = target(progress);
    bool do_add;
    if (live.empty()) {
      do_add = true;
    } else if (live.size() >= peak_size) {
      do_add = false;  // hard cap: the paper's trace never exceeds its peak
    } else if (live.size() < want) {
      // Growing phase still sees departures: 25% of ops are leavers.
      do_add = rng.uniform(100) >= 25;
    } else {
      // Plateau: balanced churn.
      do_add = rng.uniform(100) >= 50;
    }
    if (do_add) {
      auto user = fresh_user();
      live.push_back(user);
      trace.ops.push_back({OpKind::add, std::move(user)});
    } else {
      // Heavy-tailed lifetimes: drive-by contributors (recent joiners) leave
      // far more often than the long-lived core. Pick from the most recent
      // quarter of joiners 75% of the time.
      std::size_t idx;
      if (live.size() >= 4 && rng.uniform(100) < 75) {
        std::size_t quarter = live.size() / 4;
        idx = live.size() - 1 - rng.uniform(quarter);
      } else {
        idx = rng.uniform(live.size());
      }
      trace.ops.push_back({OpKind::remove, live[idx]});
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
  }
  return trace;
}

MembershipTrace revocation_trace(std::size_t total_ops, double revocation_rate,
                                 std::uint64_t seed, std::size_t initial_size) {
  if (revocation_rate < 0.0 || revocation_rate > 1.0) {
    throw std::invalid_argument("revocation_trace: rate must be in [0,1]");
  }
  crypto::Drbg rng(seed);
  MembershipTrace trace;
  trace.label =
      "synthetic-revocation-" + std::to_string(static_cast<int>(revocation_rate * 100));
  trace.ops.reserve(total_ops);

  std::vector<core::Identity> live;
  for (std::size_t i = 0; i < initial_size; ++i) {
    live.push_back("init" + std::to_string(i));
  }
  trace.initial_members = live;
  std::uint64_t next_uid = 0;
  auto threshold = static_cast<std::uint64_t>(revocation_rate * 1000000.0);

  for (std::size_t i = 0; i < total_ops; ++i) {
    bool do_remove = !live.empty() && rng.uniform(1000000) < threshold;
    if (do_remove) {
      std::size_t idx = rng.uniform(live.size());
      trace.ops.push_back({OpKind::remove, live[idx]});
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      auto user = "u" + std::to_string(next_uid++);
      live.push_back(user);
      trace.ops.push_back({OpKind::add, std::move(user)});
    }
  }
  return trace;
}

}  // namespace ibbe::trace
