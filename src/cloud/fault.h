// Deterministic fault injection over a CloudStore (paper context: IBBE-SGX
// is a *dependability* system — DSN — so the harness must be able to model a
// flaky, adversarially-timed cloud, not just a healthy one).
//
// FaultInjectingStore decorates any CloudStore with the failure modes a real
// Dropbox-style deployment exhibits:
//
//   * transient errors    — a round trip fails outright (TransientError);
//   * ambiguous writes    — the write is APPLIED, then the response is lost
//                           and the caller sees a TransientError (the classic
//                           "did my PUT land?" ambiguity);
//   * spurious CAS fails  — put_cas reports a version conflict without
//                           applying (server-side retry artifacts);
//   * stale reads         — a get is served from a lagging replica: the
//                           previous value AND previous version of the path;
//   * spurious poll wakes — long_poll times out although a change landed;
//   * crash points        — the calling process dies (CrashError) right
//                           before a mutation is applied, leaving every
//                           earlier write of a multi-object mutation behind:
//                           torn cloud state that recovery must repair.
//
// Every decision is drawn from a SplitMix64 stream seeded by FaultPlan::seed,
// so a failing schedule replays bit-for-bit from its printed seed. Crash
// points can additionally be armed one at a time (arm_crash_after) so tests
// can enumerate every mutation inside an operation systematically.
//
// MaliciousStore (below) is the BYZANTINE tier on top of the same decorator
// pattern: instead of failing round trips it answers them with stale truths —
// whole old generations (rollback), different generations to different
// clients (forking), an old op-log under a live index (tail withholding), or
// a single stale file in an otherwise live view (equivocation). Stack it
// under a FaultInjectingStore to compose both tiers.
//
// Thread-safe like the store it wraps; the injectors keep their own lock and
// never hold it across inner-store calls.
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <thread>

#include "cloud/store.h"

namespace ibbe::cloud {

/// Per-operation fault probabilities (0 = never, 1 = always) plus the RNG
/// seed that makes the schedule reproducible.
struct FaultPlan {
  std::uint64_t seed = 1;
  double put_error_rate = 0.0;      // put/put_cas/erase fails before applying
  double ambiguous_put_rate = 0.0;  // put/put_cas applies, then "fails"
  double spurious_cas_rate = 0.0;   // put_cas "conflicts" without applying
  double get_error_rate = 0.0;      // get/get_versioned/list fails
  double stale_read_rate = 0.0;     // get serves the previous value+version
  double poll_timeout_rate = 0.0;   // long_poll returns nullopt immediately
  double crash_rate = 0.0;          // CrashError before applying a mutation
};

struct FaultStats {
  std::uint64_t transient_errors = 0;
  std::uint64_t ambiguous_puts = 0;
  std::uint64_t spurious_cas = 0;
  std::uint64_t stale_reads = 0;
  std::uint64_t poll_timeouts = 0;
  std::uint64_t crashes = 0;

  [[nodiscard]] std::uint64_t total() const {
    return transient_errors + ambiguous_puts + spurious_cas + stale_reads +
           poll_timeouts + crashes;
  }
};

class FaultInjectingStore : public CloudStore {
 public:
  /// Decorates `inner` (not owned; must outlive this object).
  FaultInjectingStore(CloudStore& inner, FaultPlan plan);

  std::uint64_t put(const std::string& path, util::Bytes value) override;
  [[nodiscard]] std::optional<std::uint64_t> put_cas(
      const std::string& path, util::Bytes value,
      std::uint64_t expected) override;
  [[nodiscard]] std::optional<util::Bytes> get(
      const std::string& path) const override;
  [[nodiscard]] std::optional<Versioned> get_versioned(
      const std::string& path) const override;
  [[nodiscard]] std::uint64_t file_version(const std::string& path) const override;
  bool erase(const std::string& path) override;
  [[nodiscard]] std::vector<std::string> list(
      const std::string& prefix) const override;
  [[nodiscard]] std::uint64_t dir_version(const std::string& dir) const override;
  [[nodiscard]] std::optional<std::uint64_t> long_poll(
      const std::string& dir, std::uint64_t since,
      std::chrono::milliseconds timeout) const override;
  /// Inner stats plus this injector's fault counters folded in.
  [[nodiscard]] CloudStats stats() const override;
  [[nodiscard]] std::size_t stored_bytes() const override;

  // ---- crash-point enumeration ----
  /// Arms a one-shot crash on the n-th mutation (put/put_cas/erase) counted
  /// from now (n=1 crashes the very next one). The crash fires BEFORE that
  /// mutation is applied, then disarms itself.
  void arm_crash_after(std::uint64_t n);
  /// Clears an armed crash point.
  void disarm();
  /// Mutations (put/put_cas/erase) that reached this store so far, including
  /// ones that then faulted. The enumeration harness diffs this counter
  /// around an operation to learn how many crash points it contains.
  [[nodiscard]] std::uint64_t mutation_ops() const;

  // ---- schedule control ----
  /// Master switch for the *random* faults (armed crash points still fire).
  /// Harnesses turn faults off for setup and verification phases.
  void set_faults_enabled(bool enabled);
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] FaultStats fault_stats() const;

  /// Test hook invoked with the path of every put/put_cas BEFORE any fault
  /// decision or write. Runs without the injector's lock and is suppressed
  /// re-entrantly, so the hook may itself drive this store — which is how
  /// tests interleave a concurrent admin at an exact write boundary.
  void set_write_hook(std::function<void(const std::string&)> hook);

  // ---- replica-lag modelling ----
  /// From now on, get/get_versioned of exactly `path` answer "absent"
  /// (nullopt) even though the object is committed in the inner store —
  /// a lagging replica that has seen the new manifest but not yet the shard
  /// or delta object it references. Reads of withheld paths count as stale
  /// reads in fault_stats(). Idempotent; writes still pass through.
  void withhold_path(const std::string& path);
  /// Serves every withheld path live again (the replica caught up).
  void clear_withheld();

 private:
  [[nodiscard]] bool roll_locked(double rate) const;
  /// Counts the mutation and fires armed/random crashes and transient
  /// errors; called before the inner write is attempted.
  void mutation_gate(const std::string& what);
  void ambiguity_gate(const std::string& what);
  void fire_hook(const std::string& path);
  /// Snapshots the current value so a later stale read can serve it.
  void record_previous(const std::string& path);

  CloudStore& inner_;
  FaultPlan plan_;
  mutable std::mutex mutex_;
  mutable std::uint64_t rng_state_;
  mutable FaultStats fault_stats_;
  bool enabled_ = true;
  std::uint64_t mutations_ = 0;
  std::uint64_t crash_at_ = 0;  // absolute mutation ordinal; 0 = disarmed
  std::map<std::string, Versioned> previous_;  // last overwritten value
  std::set<std::string> withheld_;             // replica-lag "absent" paths
  std::function<void(const std::string&)> write_hook_;
  // Re-entrancy suppression is PER THREAD: a hook driving this store from
  // its own thread is suppressed, but server session threads hitting the
  // store concurrently must not suppress each other's hooks.
  std::set<std::thread::id> hook_active_threads_;
};

// ---------------------------------------------------------------------------
// Byzantine tier
// ---------------------------------------------------------------------------

/// Seeded probabilities for the replayable attack schedule. Rates are per
/// read of a path under `target_prefix`; an attack "window" serves a
/// CONSISTENT old generation for a bounded run of reads, modelling a cloud
/// that answers from a rolled-back replica for a while and then "heals".
struct MaliciousPlan {
  std::uint64_t seed = 1;
  /// Enter a rollback window: every targeted read (index, op-log, partitions,
  /// directory versions — a wholesale old index+log pair) is served from one
  /// randomly chosen earlier committed generation for the window's length.
  double rollback_rate = 0.0;
  /// One-shot: an op-log read alone is served from an old generation while
  /// the index stays live (tail withholding).
  double withhold_rate = 0.0;
  /// One-shot: THIS read alone is served from an old generation while
  /// everything around it stays live (selective stale equivocation).
  double equivocate_rate = 0.0;
  /// Window length bounds, in targeted reads.
  int min_window = 1;
  int max_window = 8;
  /// The namespace the adversary tampers with. The gossip channel
  /// (gossip/...) deliberately stays outside it: it models the out-of-band
  /// freshness channel of ROTE-style designs — an adversary controlling that
  /// too can only cause denial of service (fork-consistency bound), which
  /// the schedule keeps out so liveness oracles stay meaningful.
  std::string target_prefix = "groups/";
};

struct MaliciousStats {
  std::uint64_t generations = 0;        // committed snapshots captured
  std::uint64_t rollback_windows = 0;   // windows entered by the schedule
  std::uint64_t stale_serves = 0;       // reads answered from an old generation
  std::uint64_t withheld_log_reads = 0; // one-shot old op-log serves
  std::uint64_t equivocations = 0;      // one-shot old single-file serves
  std::uint64_t rejected_writes = 0;    // losing CAS payloads captured

  [[nodiscard]] std::uint64_t total_attacks() const {
    return stale_serves + withheld_log_reads + equivocations;
  }
};

/// A Byzantine CloudStore decorator. Every successful write to an index path
/// under the target prefix snapshots the namespace ("committed generation");
/// reads can then be answered from any earlier generation — wholesale
/// (rollback), per client (forking via `view()`), for the op-log only
/// (withholding), or for one path only (equivocation). Writes always pass
/// through to the live inner store: the adversary can replay old truths, but
/// it cannot forge signed metadata, and it keeps every losing CAS payload as
/// equivocation material (`rejected_writes`).
class MaliciousStore : public CloudStore {
 public:
  /// Decorates `inner` (not owned; must outlive this object).
  explicit MaliciousStore(CloudStore& inner, MaliciousPlan plan = {});
  ~MaliciousStore() override;  // out-of-line: View is incomplete here

  // CloudStore surface — this object is the DEFAULT view.
  std::uint64_t put(const std::string& path, util::Bytes value) override;
  [[nodiscard]] std::optional<std::uint64_t> put_cas(
      const std::string& path, util::Bytes value,
      std::uint64_t expected) override;
  [[nodiscard]] std::optional<util::Bytes> get(
      const std::string& path) const override;
  [[nodiscard]] std::optional<Versioned> get_versioned(
      const std::string& path) const override;
  [[nodiscard]] std::uint64_t file_version(const std::string& path) const override;
  bool erase(const std::string& path) override;
  [[nodiscard]] std::vector<std::string> list(
      const std::string& prefix) const override;
  [[nodiscard]] std::uint64_t dir_version(const std::string& dir) const override;
  [[nodiscard]] std::optional<std::uint64_t> long_poll(
      const std::string& dir, std::uint64_t since,
      std::chrono::milliseconds timeout) const override;
  [[nodiscard]] CloudStats stats() const override;
  [[nodiscard]] std::size_t stored_bytes() const override;

  // ---- per-client forking ----
  /// A named per-client facade: reads through it can be pinned to a
  /// different generation than other clients see (a fork). The reference is
  /// stable for the lifetime of this store. Writes pass through to the
  /// shared live store.
  [[nodiscard]] CloudStore& view(const std::string& name);

  // ---- explicit attack control (deterministic tests) ----
  /// Snapshots the current target namespace; returns the generation id.
  /// (Every committed index write auto-captures, so tests rarely need this.)
  std::size_t capture();
  [[nodiscard]] std::size_t generation_count() const;
  /// A file's value+version in a captured generation (nullopt if absent).
  [[nodiscard]] std::optional<Versioned> snapshot_value(
      std::size_t gen, const std::string& path) const;
  /// Serve EVERY un-pinned view from generation `gen` (wholesale rollback).
  void serve_generation(std::size_t gen);
  /// Back to live serving (heal) for every un-pinned view.
  void serve_live();
  /// Pin one view to a generation (fork that client); unpin to heal it.
  void pin_view(const std::string& name, std::size_t gen);
  void unpin_view(const std::string& name);
  /// Serve exactly `value` for `path` on the named view ("" = default view),
  /// regardless of generations — e.g. a captured losing CAS payload.
  void override_path(const std::string& name, const std::string& path,
                     util::Bytes value);
  void clear_overrides(const std::string& name);
  /// Losing put_cas payloads recorded for `path` (oldest first).
  [[nodiscard]] std::vector<util::Bytes> rejected_writes(
      const std::string& path) const;

  // ---- schedule control ----
  /// Master switch for the *random* schedule (explicit pins/overrides and
  /// auto-capture stay active).
  void set_malice_enabled(bool enabled);
  [[nodiscard]] const MaliciousPlan& plan() const { return plan_; }
  [[nodiscard]] MaliciousStats malicious_stats() const;

 private:
  struct Snapshot {
    std::map<std::string, Versioned> files;          // target-prefix paths
    std::map<std::string, std::uint64_t> dir_versions;
  };
  struct ViewState {
    std::optional<std::size_t> pin;    // explicit fork
    std::optional<std::size_t> window_gen;
    int window_left = 0;               // targeted reads left in the window
    std::map<std::string, util::Bytes> overrides;
  };
  class View;

  [[nodiscard]] bool targeted(const std::string& path) const;
  [[nodiscard]] bool roll_locked(double rate) const;
  Snapshot take_snapshot() const;  // call WITHOUT the lock held
  void auto_capture(const std::string& path);
  ViewState& view_state_locked(const std::string& name) const;
  /// The generation to serve a targeted read from (nullopt = live). `fresh`
  /// lets value reads start new windows / one-shots; version and directory
  /// probes only honour already-active state.
  std::optional<std::size_t> gen_for_read_locked(const std::string& view,
                                                 const std::string& path,
                                                 bool fresh) const;

  // Reads/writes routed by every view, keyed by view name ("" = default).
  std::uint64_t put_for(const std::string& view, const std::string& path,
                        util::Bytes value);
  std::optional<std::uint64_t> put_cas_for(const std::string& view,
                                           const std::string& path,
                                           util::Bytes value,
                                           std::uint64_t expected);
  std::optional<util::Bytes> get_for(const std::string& view,
                                     const std::string& path) const;
  std::optional<Versioned> get_versioned_for(const std::string& view,
                                             const std::string& path) const;
  std::uint64_t file_version_for(const std::string& view,
                                 const std::string& path) const;
  std::vector<std::string> list_for(const std::string& view,
                                    const std::string& prefix) const;
  std::uint64_t dir_version_for(const std::string& view,
                                const std::string& dir) const;
  std::optional<std::uint64_t> long_poll_for(const std::string& view,
                                             const std::string& dir,
                                             std::uint64_t since,
                                             std::chrono::milliseconds timeout) const;

  CloudStore& inner_;
  MaliciousPlan plan_;
  /// Orders concurrent capture() calls so the generation log is a true
  /// history (held across the snapshot reads; never nests inside mutex_).
  mutable std::mutex capture_mutex_;
  mutable std::mutex mutex_;
  mutable std::uint64_t rng_state_;
  mutable MaliciousStats stats_;
  bool enabled_ = true;
  std::vector<Snapshot> snapshots_;
  std::optional<std::size_t> global_pin_;  // serve_generation()
  mutable std::map<std::string, ViewState> views_;
  std::map<std::string, std::vector<util::Bytes>> rejected_;
  std::map<std::string, std::unique_ptr<View>> view_objects_;
};

}  // namespace ibbe::cloud
