// Deterministic fault injection over a CloudStore (paper context: IBBE-SGX
// is a *dependability* system — DSN — so the harness must be able to model a
// flaky, adversarially-timed cloud, not just a healthy one).
//
// FaultInjectingStore decorates any CloudStore with the failure modes a real
// Dropbox-style deployment exhibits:
//
//   * transient errors    — a round trip fails outright (TransientError);
//   * ambiguous writes    — the write is APPLIED, then the response is lost
//                           and the caller sees a TransientError (the classic
//                           "did my PUT land?" ambiguity);
//   * spurious CAS fails  — put_cas reports a version conflict without
//                           applying (server-side retry artifacts);
//   * stale reads         — a get is served from a lagging replica: the
//                           previous value AND previous version of the path;
//   * spurious poll wakes — long_poll times out although a change landed;
//   * crash points        — the calling process dies (CrashError) right
//                           before a mutation is applied, leaving every
//                           earlier write of a multi-object mutation behind:
//                           torn cloud state that recovery must repair.
//
// Every decision is drawn from a SplitMix64 stream seeded by FaultPlan::seed,
// so a failing schedule replays bit-for-bit from its printed seed. Crash
// points can additionally be armed one at a time (arm_crash_after) so tests
// can enumerate every mutation inside an operation systematically.
//
// Thread-safe like the store it wraps; the injector keeps its own lock and
// never holds it across inner-store calls.
#pragma once

#include <functional>

#include "cloud/store.h"

namespace ibbe::cloud {

/// Per-operation fault probabilities (0 = never, 1 = always) plus the RNG
/// seed that makes the schedule reproducible.
struct FaultPlan {
  std::uint64_t seed = 1;
  double put_error_rate = 0.0;      // put/put_cas/erase fails before applying
  double ambiguous_put_rate = 0.0;  // put/put_cas applies, then "fails"
  double spurious_cas_rate = 0.0;   // put_cas "conflicts" without applying
  double get_error_rate = 0.0;      // get/get_versioned/list fails
  double stale_read_rate = 0.0;     // get serves the previous value+version
  double poll_timeout_rate = 0.0;   // long_poll returns nullopt immediately
  double crash_rate = 0.0;          // CrashError before applying a mutation
};

struct FaultStats {
  std::uint64_t transient_errors = 0;
  std::uint64_t ambiguous_puts = 0;
  std::uint64_t spurious_cas = 0;
  std::uint64_t stale_reads = 0;
  std::uint64_t poll_timeouts = 0;
  std::uint64_t crashes = 0;

  [[nodiscard]] std::uint64_t total() const {
    return transient_errors + ambiguous_puts + spurious_cas + stale_reads +
           poll_timeouts + crashes;
  }
};

class FaultInjectingStore : public CloudStore {
 public:
  /// Decorates `inner` (not owned; must outlive this object).
  FaultInjectingStore(CloudStore& inner, FaultPlan plan);

  std::uint64_t put(const std::string& path, util::Bytes value) override;
  [[nodiscard]] std::optional<std::uint64_t> put_cas(
      const std::string& path, util::Bytes value,
      std::uint64_t expected) override;
  [[nodiscard]] std::optional<util::Bytes> get(
      const std::string& path) const override;
  [[nodiscard]] std::optional<Versioned> get_versioned(
      const std::string& path) const override;
  [[nodiscard]] std::uint64_t file_version(const std::string& path) const override;
  bool erase(const std::string& path) override;
  [[nodiscard]] std::vector<std::string> list(
      const std::string& prefix) const override;
  [[nodiscard]] std::uint64_t dir_version(const std::string& dir) const override;
  [[nodiscard]] std::optional<std::uint64_t> long_poll(
      const std::string& dir, std::uint64_t since,
      std::chrono::milliseconds timeout) const override;
  /// Inner stats plus this injector's fault counters folded in.
  [[nodiscard]] CloudStats stats() const override;
  [[nodiscard]] std::size_t stored_bytes() const override;

  // ---- crash-point enumeration ----
  /// Arms a one-shot crash on the n-th mutation (put/put_cas/erase) counted
  /// from now (n=1 crashes the very next one). The crash fires BEFORE that
  /// mutation is applied, then disarms itself.
  void arm_crash_after(std::uint64_t n);
  /// Clears an armed crash point.
  void disarm();
  /// Mutations (put/put_cas/erase) that reached this store so far, including
  /// ones that then faulted. The enumeration harness diffs this counter
  /// around an operation to learn how many crash points it contains.
  [[nodiscard]] std::uint64_t mutation_ops() const;

  // ---- schedule control ----
  /// Master switch for the *random* faults (armed crash points still fire).
  /// Harnesses turn faults off for setup and verification phases.
  void set_faults_enabled(bool enabled);
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] FaultStats fault_stats() const;

  /// Test hook invoked with the path of every put/put_cas BEFORE any fault
  /// decision or write. Runs without the injector's lock and is suppressed
  /// re-entrantly, so the hook may itself drive this store — which is how
  /// tests interleave a concurrent admin at an exact write boundary.
  void set_write_hook(std::function<void(const std::string&)> hook);

 private:
  [[nodiscard]] bool roll_locked(double rate) const;
  /// Counts the mutation and fires armed/random crashes and transient
  /// errors; called before the inner write is attempted.
  void mutation_gate(const std::string& what);
  void ambiguity_gate(const std::string& what);
  void fire_hook(const std::string& path);
  /// Snapshots the current value so a later stale read can serve it.
  void record_previous(const std::string& path);

  CloudStore& inner_;
  FaultPlan plan_;
  mutable std::mutex mutex_;
  mutable std::uint64_t rng_state_;
  mutable FaultStats fault_stats_;
  bool enabled_ = true;
  std::uint64_t mutations_ = 0;
  std::uint64_t crash_at_ = 0;  // absolute mutation ordinal; 0 = disarmed
  std::map<std::string, Versioned> previous_;  // last overwritten value
  std::function<void(const std::string&)> write_hook_;
  bool hook_active_ = false;
};

}  // namespace ibbe::cloud
