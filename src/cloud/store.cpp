#include "cloud/store.h"

#include <thread>

namespace ibbe::cloud {

CloudStore::CloudStore(LatencyModel latency) : latency_(latency) {}

void CloudStore::simulate(std::chrono::microseconds latency) const {
  if (latency.count() > 0) std::this_thread::sleep_for(latency);
}

void CloudStore::bump_ancestors_locked(const std::string& path) {
  // "a/b/c" touches directories "a/b", "a", and "" (the root).
  std::uint64_t version = version_clock_;
  std::string dir = path;
  while (true) {
    auto slash = dir.find_last_of('/');
    dir = (slash == std::string::npos) ? std::string() : dir.substr(0, slash);
    dir_versions_[dir] = version;
    if (dir.empty()) break;
  }
}

std::uint64_t CloudStore::put(const std::string& path, util::Bytes value) {
  simulate(latency_.put);
  std::uint64_t version;
  {
    std::lock_guard lock(mutex_);
    ++stats_.puts;
    stats_.bytes_uploaded += value.size();
    version = ++version_clock_;
    files_[path] = Entry{std::move(value), version};
    bump_ancestors_locked(path);
  }
  changed_.notify_all();
  return version;
}

std::optional<std::uint64_t> CloudStore::put_cas(const std::string& path,
                                                 util::Bytes value,
                                                 std::uint64_t expected) {
  simulate(latency_.put);
  std::uint64_t version;
  {
    std::lock_guard lock(mutex_);
    ++stats_.puts;
    auto it = files_.find(path);
    std::uint64_t current = it == files_.end() ? 0 : it->second.version;
    if (current != expected) return std::nullopt;
    stats_.bytes_uploaded += value.size();
    version = ++version_clock_;
    files_[path] = Entry{std::move(value), version};
    bump_ancestors_locked(path);
  }
  changed_.notify_all();
  return version;
}

std::optional<util::Bytes> CloudStore::get(const std::string& path) const {
  simulate(latency_.get);
  std::lock_guard lock(mutex_);
  ++stats_.gets;
  auto it = files_.find(path);
  if (it == files_.end()) return std::nullopt;
  stats_.bytes_downloaded += it->second.data.size();
  return it->second.data;
}

std::optional<CloudStore::Versioned> CloudStore::get_versioned(
    const std::string& path) const {
  simulate(latency_.get);
  std::lock_guard lock(mutex_);
  ++stats_.gets;
  auto it = files_.find(path);
  if (it == files_.end()) return std::nullopt;
  stats_.bytes_downloaded += it->second.data.size();
  return Versioned{it->second.data, it->second.version};
}

std::uint64_t CloudStore::file_version(const std::string& path) const {
  std::lock_guard lock(mutex_);
  auto it = files_.find(path);
  return it == files_.end() ? 0 : it->second.version;
}

bool CloudStore::erase(const std::string& path) {
  simulate(latency_.put);
  bool erased = false;
  {
    std::lock_guard lock(mutex_);
    ++stats_.erases;
    erased = files_.erase(path) > 0;
    if (erased) {
      ++version_clock_;
      bump_ancestors_locked(path);
    }
  }
  if (erased) changed_.notify_all();
  return erased;
}

std::vector<std::string> CloudStore::list(const std::string& prefix) const {
  simulate(latency_.get);
  std::lock_guard lock(mutex_);
  ++stats_.gets;
  std::vector<std::string> out;
  for (auto it = files_.lower_bound(prefix);
       it != files_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    out.push_back(it->first);
  }
  return out;
}

std::uint64_t CloudStore::dir_version(const std::string& dir) const {
  std::lock_guard lock(mutex_);
  auto it = dir_versions_.find(dir);
  return it == dir_versions_.end() ? 0 : it->second;
}

std::optional<std::uint64_t> CloudStore::long_poll(
    const std::string& dir, std::uint64_t since,
    std::chrono::milliseconds timeout) const {
  std::unique_lock lock(mutex_);
  ++stats_.long_polls;
  auto current = [&]() -> std::uint64_t {
    auto it = dir_versions_.find(dir);
    return it == dir_versions_.end() ? 0 : it->second;
  };
  if (changed_.wait_for(lock, timeout, [&] { return current() > since; })) {
    return current();
  }
  return std::nullopt;
}

CloudStats CloudStore::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::size_t CloudStore::stored_bytes() const {
  std::lock_guard lock(mutex_);
  std::size_t total = 0;
  for (const auto& [path, entry] : files_) {
    total += path.size() + entry.data.size();
  }
  return total;
}

}  // namespace ibbe::cloud
