#include "cloud/fault.h"

#include "util/retry.h"

namespace ibbe::cloud {

FaultInjectingStore::FaultInjectingStore(CloudStore& inner, FaultPlan plan)
    : inner_(inner), plan_(plan), rng_state_(plan.seed) {}

bool FaultInjectingStore::roll_locked(double rate) const {
  if (rate <= 0.0) return false;
  double unit = static_cast<double>(util::splitmix64(rng_state_) >> 11) /
                static_cast<double>(1ull << 53);  // [0, 1)
  return unit < rate;
}

void FaultInjectingStore::fire_hook(const std::string& path) {
  std::function<void(const std::string&)> hook;
  {
    std::lock_guard lock(mutex_);
    if (!write_hook_ || hook_active_) return;
    hook = write_hook_;
    hook_active_ = true;
  }
  try {
    hook(path);
  } catch (...) {
    std::lock_guard lock(mutex_);
    hook_active_ = false;
    throw;
  }
  std::lock_guard lock(mutex_);
  hook_active_ = false;
}

void FaultInjectingStore::mutation_gate(const std::string& what) {
  std::lock_guard lock(mutex_);
  ++mutations_;
  if (crash_at_ != 0 && mutations_ >= crash_at_) {
    crash_at_ = 0;
    ++fault_stats_.crashes;
    throw CrashError("injected crash (armed) at " + what);
  }
  if (!enabled_) return;
  if (roll_locked(plan_.crash_rate)) {
    ++fault_stats_.crashes;
    throw CrashError("injected crash at " + what);
  }
  if (roll_locked(plan_.put_error_rate)) {
    ++fault_stats_.transient_errors;
    throw TransientError("injected transient error at " + what);
  }
}

void FaultInjectingStore::ambiguity_gate(const std::string& what) {
  std::lock_guard lock(mutex_);
  if (!enabled_) return;
  if (roll_locked(plan_.ambiguous_put_rate)) {
    ++fault_stats_.ambiguous_puts;
    throw TransientError("injected ambiguous (applied) write at " + what);
  }
}

void FaultInjectingStore::record_previous(const std::string& path) {
  // Only needed when stale reads can be served at all.
  if (plan_.stale_read_rate <= 0.0) return;
  auto current = inner_.get_versioned(path);
  if (!current) return;
  std::lock_guard lock(mutex_);
  previous_[path] = std::move(*current);
}

std::uint64_t FaultInjectingStore::put(const std::string& path,
                                       util::Bytes value) {
  fire_hook(path);
  mutation_gate("put " + path);
  record_previous(path);
  auto version = inner_.put(path, std::move(value));
  ambiguity_gate("put " + path);
  return version;
}

std::optional<std::uint64_t> FaultInjectingStore::put_cas(
    const std::string& path, util::Bytes value, std::uint64_t expected) {
  fire_hook(path);
  mutation_gate("put_cas " + path);
  {
    std::lock_guard lock(mutex_);
    if (enabled_ && roll_locked(plan_.spurious_cas_rate)) {
      ++fault_stats_.spurious_cas;
      return std::nullopt;  // reported conflict, nothing applied
    }
  }
  record_previous(path);
  auto version = inner_.put_cas(path, std::move(value), expected);
  if (version) ambiguity_gate("put_cas " + path);
  return version;
}

std::optional<util::Bytes> FaultInjectingStore::get(
    const std::string& path) const {
  {
    std::lock_guard lock(mutex_);
    if (enabled_ && roll_locked(plan_.get_error_rate)) {
      ++fault_stats_.transient_errors;
      throw TransientError("injected transient error at get " + path);
    }
    if (enabled_ && roll_locked(plan_.stale_read_rate)) {
      auto it = previous_.find(path);
      if (it != previous_.end()) {
        ++fault_stats_.stale_reads;
        return it->second.value;
      }
    }
  }
  return inner_.get(path);
}

std::optional<CloudStore::Versioned> FaultInjectingStore::get_versioned(
    const std::string& path) const {
  {
    std::lock_guard lock(mutex_);
    if (enabled_ && roll_locked(plan_.get_error_rate)) {
      ++fault_stats_.transient_errors;
      throw TransientError("injected transient error at get " + path);
    }
    if (enabled_ && roll_locked(plan_.stale_read_rate)) {
      auto it = previous_.find(path);
      if (it != previous_.end()) {
        ++fault_stats_.stale_reads;
        return it->second;
      }
    }
  }
  return inner_.get_versioned(path);
}

std::uint64_t FaultInjectingStore::file_version(const std::string& path) const {
  return inner_.file_version(path);
}

bool FaultInjectingStore::erase(const std::string& path) {
  mutation_gate("erase " + path);
  record_previous(path);
  return inner_.erase(path);
}

std::vector<std::string> FaultInjectingStore::list(
    const std::string& prefix) const {
  {
    std::lock_guard lock(mutex_);
    if (enabled_ && roll_locked(plan_.get_error_rate)) {
      ++fault_stats_.transient_errors;
      throw TransientError("injected transient error at list " + prefix);
    }
  }
  return inner_.list(prefix);
}

std::uint64_t FaultInjectingStore::dir_version(const std::string& dir) const {
  return inner_.dir_version(dir);
}

std::optional<std::uint64_t> FaultInjectingStore::long_poll(
    const std::string& dir, std::uint64_t since,
    std::chrono::milliseconds timeout) const {
  {
    std::lock_guard lock(mutex_);
    if (enabled_ && roll_locked(plan_.poll_timeout_rate)) {
      ++fault_stats_.poll_timeouts;
      return std::nullopt;  // spurious timeout; the next poll catches up
    }
  }
  return inner_.long_poll(dir, since, timeout);
}

CloudStats FaultInjectingStore::stats() const {
  auto s = inner_.stats();
  std::lock_guard lock(mutex_);
  s.faults_injected += fault_stats_.total();
  s.crashes_injected += fault_stats_.crashes;
  return s;
}

std::size_t FaultInjectingStore::stored_bytes() const {
  return inner_.stored_bytes();
}

void FaultInjectingStore::arm_crash_after(std::uint64_t n) {
  std::lock_guard lock(mutex_);
  crash_at_ = mutations_ + n;
}

void FaultInjectingStore::disarm() {
  std::lock_guard lock(mutex_);
  crash_at_ = 0;
}

std::uint64_t FaultInjectingStore::mutation_ops() const {
  std::lock_guard lock(mutex_);
  return mutations_;
}

void FaultInjectingStore::set_faults_enabled(bool enabled) {
  std::lock_guard lock(mutex_);
  enabled_ = enabled;
}

FaultStats FaultInjectingStore::fault_stats() const {
  std::lock_guard lock(mutex_);
  return fault_stats_;
}

void FaultInjectingStore::set_write_hook(
    std::function<void(const std::string&)> hook) {
  std::lock_guard lock(mutex_);
  write_hook_ = std::move(hook);
}

}  // namespace ibbe::cloud
