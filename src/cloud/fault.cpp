#include "cloud/fault.h"

#include <algorithm>
#include <set>
#include <thread>

#include "util/retry.h"

namespace ibbe::cloud {

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

FaultInjectingStore::FaultInjectingStore(CloudStore& inner, FaultPlan plan)
    : inner_(inner), plan_(plan), rng_state_(plan.seed) {}

bool FaultInjectingStore::roll_locked(double rate) const {
  if (rate <= 0.0) return false;
  double unit = static_cast<double>(util::splitmix64(rng_state_) >> 11) /
                static_cast<double>(1ull << 53);  // [0, 1)
  return unit < rate;
}

void FaultInjectingStore::fire_hook(const std::string& path) {
  const auto me = std::this_thread::get_id();
  std::function<void(const std::string&)> hook;
  {
    std::lock_guard lock(mutex_);
    if (!write_hook_ || hook_active_threads_.count(me) != 0) return;
    hook = write_hook_;
    hook_active_threads_.insert(me);
  }
  try {
    hook(path);
  } catch (...) {
    std::lock_guard lock(mutex_);
    hook_active_threads_.erase(me);
    throw;
  }
  std::lock_guard lock(mutex_);
  hook_active_threads_.erase(me);
}

void FaultInjectingStore::mutation_gate(const std::string& what) {
  std::lock_guard lock(mutex_);
  ++mutations_;
  if (crash_at_ != 0 && mutations_ >= crash_at_) {
    crash_at_ = 0;
    ++fault_stats_.crashes;
    throw CrashError("injected crash (armed) at " + what);
  }
  if (!enabled_) return;
  if (roll_locked(plan_.crash_rate)) {
    ++fault_stats_.crashes;
    throw CrashError("injected crash at " + what);
  }
  if (roll_locked(plan_.put_error_rate)) {
    ++fault_stats_.transient_errors;
    throw TransientError("injected transient error at " + what);
  }
}

void FaultInjectingStore::ambiguity_gate(const std::string& what) {
  std::lock_guard lock(mutex_);
  if (!enabled_) return;
  if (roll_locked(plan_.ambiguous_put_rate)) {
    ++fault_stats_.ambiguous_puts;
    throw TransientError("injected ambiguous (applied) write at " + what);
  }
}

void FaultInjectingStore::record_previous(const std::string& path) {
  // Only needed when stale reads can be served at all.
  if (plan_.stale_read_rate <= 0.0) return;
  auto current = inner_.get_versioned(path);
  if (!current) return;
  std::lock_guard lock(mutex_);
  previous_[path] = std::move(*current);
}

std::uint64_t FaultInjectingStore::put(const std::string& path,
                                       util::Bytes value) {
  fire_hook(path);
  mutation_gate("put " + path);
  record_previous(path);
  auto version = inner_.put(path, std::move(value));
  ambiguity_gate("put " + path);
  return version;
}

std::optional<std::uint64_t> FaultInjectingStore::put_cas(
    const std::string& path, util::Bytes value, std::uint64_t expected) {
  fire_hook(path);
  mutation_gate("put_cas " + path);
  {
    std::lock_guard lock(mutex_);
    if (enabled_ && roll_locked(plan_.spurious_cas_rate)) {
      ++fault_stats_.spurious_cas;
      return std::nullopt;  // reported conflict, nothing applied
    }
  }
  record_previous(path);
  auto version = inner_.put_cas(path, std::move(value), expected);
  if (version) ambiguity_gate("put_cas " + path);
  return version;
}

std::optional<util::Bytes> FaultInjectingStore::get(
    const std::string& path) const {
  {
    std::lock_guard lock(mutex_);
    if (enabled_ && roll_locked(plan_.get_error_rate)) {
      ++fault_stats_.transient_errors;
      throw TransientError("injected transient error at get " + path);
    }
    if (withheld_.count(path) != 0) {
      ++fault_stats_.stale_reads;
      return std::nullopt;  // lagging replica: committed but not served yet
    }
    if (enabled_ && roll_locked(plan_.stale_read_rate)) {
      auto it = previous_.find(path);
      if (it != previous_.end()) {
        ++fault_stats_.stale_reads;
        return it->second.value;
      }
    }
  }
  return inner_.get(path);
}

std::optional<CloudStore::Versioned> FaultInjectingStore::get_versioned(
    const std::string& path) const {
  {
    std::lock_guard lock(mutex_);
    if (enabled_ && roll_locked(plan_.get_error_rate)) {
      ++fault_stats_.transient_errors;
      throw TransientError("injected transient error at get " + path);
    }
    if (withheld_.count(path) != 0) {
      ++fault_stats_.stale_reads;
      return std::nullopt;  // lagging replica: committed but not served yet
    }
    if (enabled_ && roll_locked(plan_.stale_read_rate)) {
      auto it = previous_.find(path);
      if (it != previous_.end()) {
        ++fault_stats_.stale_reads;
        return it->second;
      }
    }
  }
  return inner_.get_versioned(path);
}

std::uint64_t FaultInjectingStore::file_version(const std::string& path) const {
  return inner_.file_version(path);
}

bool FaultInjectingStore::erase(const std::string& path) {
  mutation_gate("erase " + path);
  record_previous(path);
  return inner_.erase(path);
}

std::vector<std::string> FaultInjectingStore::list(
    const std::string& prefix) const {
  {
    std::lock_guard lock(mutex_);
    if (enabled_ && roll_locked(plan_.get_error_rate)) {
      ++fault_stats_.transient_errors;
      throw TransientError("injected transient error at list " + prefix);
    }
  }
  return inner_.list(prefix);
}

std::uint64_t FaultInjectingStore::dir_version(const std::string& dir) const {
  return inner_.dir_version(dir);
}

std::optional<std::uint64_t> FaultInjectingStore::long_poll(
    const std::string& dir, std::uint64_t since,
    std::chrono::milliseconds timeout) const {
  {
    std::lock_guard lock(mutex_);
    if (enabled_ && roll_locked(plan_.poll_timeout_rate)) {
      ++fault_stats_.poll_timeouts;
      return std::nullopt;  // spurious timeout; the next poll catches up
    }
  }
  return inner_.long_poll(dir, since, timeout);
}

CloudStats FaultInjectingStore::stats() const {
  auto s = inner_.stats();
  std::lock_guard lock(mutex_);
  s.faults_injected += fault_stats_.total();
  s.crashes_injected += fault_stats_.crashes;
  return s;
}

std::size_t FaultInjectingStore::stored_bytes() const {
  return inner_.stored_bytes();
}

void FaultInjectingStore::arm_crash_after(std::uint64_t n) {
  std::lock_guard lock(mutex_);
  crash_at_ = mutations_ + n;
}

void FaultInjectingStore::disarm() {
  std::lock_guard lock(mutex_);
  crash_at_ = 0;
}

std::uint64_t FaultInjectingStore::mutation_ops() const {
  std::lock_guard lock(mutex_);
  return mutations_;
}

void FaultInjectingStore::set_faults_enabled(bool enabled) {
  std::lock_guard lock(mutex_);
  enabled_ = enabled;
}

FaultStats FaultInjectingStore::fault_stats() const {
  std::lock_guard lock(mutex_);
  return fault_stats_;
}

void FaultInjectingStore::withhold_path(const std::string& path) {
  std::lock_guard lock(mutex_);
  withheld_.insert(path);
}

void FaultInjectingStore::clear_withheld() {
  std::lock_guard lock(mutex_);
  withheld_.clear();
}

void FaultInjectingStore::set_write_hook(
    std::function<void(const std::string&)> hook) {
  std::lock_guard lock(mutex_);
  write_hook_ = std::move(hook);
}

// ---------------------------------------------------------------------------
// MaliciousStore
// ---------------------------------------------------------------------------

/// A named facade over the parent store: every call routes through the
/// *_for() family with this view's name, so two View objects can be served
/// divergent generations (a fork) while sharing the same live write path.
class MaliciousStore::View : public CloudStore {
 public:
  View(MaliciousStore& parent, std::string name)
      : parent_(parent), name_(std::move(name)) {}

  std::uint64_t put(const std::string& path, util::Bytes value) override {
    return parent_.put_for(name_, path, std::move(value));
  }
  std::optional<std::uint64_t> put_cas(const std::string& path,
                                       util::Bytes value,
                                       std::uint64_t expected) override {
    return parent_.put_cas_for(name_, path, std::move(value), expected);
  }
  std::optional<util::Bytes> get(const std::string& path) const override {
    return parent_.get_for(name_, path);
  }
  std::optional<Versioned> get_versioned(const std::string& path) const override {
    return parent_.get_versioned_for(name_, path);
  }
  std::uint64_t file_version(const std::string& path) const override {
    return parent_.file_version_for(name_, path);
  }
  bool erase(const std::string& path) override { return parent_.erase(path); }
  std::vector<std::string> list(const std::string& prefix) const override {
    return parent_.list_for(name_, prefix);
  }
  std::uint64_t dir_version(const std::string& dir) const override {
    return parent_.dir_version_for(name_, dir);
  }
  std::optional<std::uint64_t> long_poll(
      const std::string& dir, std::uint64_t since,
      std::chrono::milliseconds timeout) const override {
    return parent_.long_poll_for(name_, dir, since, timeout);
  }
  CloudStats stats() const override { return parent_.stats(); }
  std::size_t stored_bytes() const override { return parent_.stored_bytes(); }

 private:
  MaliciousStore& parent_;
  std::string name_;
};

MaliciousStore::MaliciousStore(CloudStore& inner, MaliciousPlan plan)
    : inner_(inner), plan_(std::move(plan)), rng_state_(plan_.seed) {}

MaliciousStore::~MaliciousStore() = default;

bool MaliciousStore::targeted(const std::string& path) const {
  return path.rfind(plan_.target_prefix, 0) == 0;
}

bool MaliciousStore::roll_locked(double rate) const {
  if (rate <= 0.0) return false;
  double unit = static_cast<double>(util::splitmix64(rng_state_) >> 11) /
                static_cast<double>(1ull << 53);  // [0, 1)
  return unit < rate;
}

MaliciousStore::Snapshot MaliciousStore::take_snapshot() const {
  Snapshot snap;
  for (const auto& path : inner_.list(plan_.target_prefix)) {
    if (auto v = inner_.get_versioned(path)) snap.files[path] = std::move(*v);
  }
  // Capture every ancestor directory's version too, so a rolled-back view's
  // change notifications are as stale as its files.
  std::set<std::string> dirs;
  for (const auto& [path, unused] : snap.files) {
    auto pos = path.rfind('/');
    while (pos != std::string::npos && pos > 0) {
      dirs.insert(path.substr(0, pos));
      pos = path.rfind('/', pos - 1);
    }
  }
  for (const auto& d : dirs) snap.dir_versions[d] = inner_.dir_version(d);
  return snap;
}

void MaliciousStore::auto_capture(const std::string& path) {
  // A landed index write is the system's commit point: snapshot the
  // committed generation it produced.
  if (targeted(path) && ends_with(path, "/index")) capture();
}

std::size_t MaliciousStore::capture() {
  // Serialized: concurrent committers must append generations in the order
  // their snapshots were taken, or a rollback could "roll back" to a
  // generation that never existed as a consistent point in time.
  std::lock_guard capture_lock(capture_mutex_);
  auto snap = take_snapshot();  // inner-store reads, outside the state lock
  std::lock_guard lock(mutex_);
  snapshots_.push_back(std::move(snap));
  ++stats_.generations;
  return snapshots_.size() - 1;
}

MaliciousStore::ViewState& MaliciousStore::view_state_locked(
    const std::string& name) const {
  return views_[name];
}

std::optional<std::size_t> MaliciousStore::gen_for_read_locked(
    const std::string& view, const std::string& path, bool fresh) const {
  // The adversary only tampers with the target namespace; everything else
  // (notably the out-of-band gossip channel) is always served live.
  if (!targeted(path)) return std::nullopt;
  auto& vs = view_state_locked(view);
  if (vs.pin) return vs.pin;        // explicit fork
  if (global_pin_) return global_pin_;  // explicit wholesale rollback
  if (vs.window_left > 0) {         // inside a scheduled rollback window
    if (fresh) {
      --vs.window_left;
      ++stats_.stale_serves;
    }
    return vs.window_gen;
  }
  if (!fresh || !enabled_ || snapshots_.empty()) return std::nullopt;
  if (roll_locked(plan_.rollback_rate)) {
    ++stats_.rollback_windows;
    vs.window_gen = util::splitmix64(rng_state_) % snapshots_.size();
    int span = std::max(1, plan_.max_window - plan_.min_window + 1);
    vs.window_left =
        std::max(1, plan_.min_window) +
        static_cast<int>(util::splitmix64(rng_state_) % static_cast<std::uint64_t>(span));
    --vs.window_left;
    ++stats_.stale_serves;
    return vs.window_gen;
  }
  if (ends_with(path, "/oplog") && roll_locked(plan_.withhold_rate)) {
    ++stats_.withheld_log_reads;
    return util::splitmix64(rng_state_) % snapshots_.size();
  }
  if (roll_locked(plan_.equivocate_rate)) {
    ++stats_.equivocations;
    return util::splitmix64(rng_state_) % snapshots_.size();
  }
  return std::nullopt;
}

std::uint64_t MaliciousStore::put_for(const std::string& /*view*/,
                                      const std::string& path,
                                      util::Bytes value) {
  auto version = inner_.put(path, std::move(value));
  auto_capture(path);
  return version;
}

std::optional<std::uint64_t> MaliciousStore::put_cas_for(
    const std::string& /*view*/, const std::string& path, util::Bytes value,
    std::uint64_t expected) {
  util::Bytes payload = value;  // keep the bytes: a loser is attack material
  auto version = inner_.put_cas(path, std::move(value), expected);
  if (version) {
    auto_capture(path);
  } else if (targeted(path)) {
    std::lock_guard lock(mutex_);
    rejected_[path].push_back(std::move(payload));
    ++stats_.rejected_writes;
  }
  return version;
}

std::optional<util::Bytes> MaliciousStore::get_for(
    const std::string& view, const std::string& path) const {
  {
    std::lock_guard lock(mutex_);
    auto& vs = view_state_locked(view);
    auto ov = vs.overrides.find(path);
    if (ov != vs.overrides.end()) return ov->second;
    if (auto gen = gen_for_read_locked(view, path, /*fresh=*/true)) {
      const auto& snap = snapshots_[*gen];
      auto it = snap.files.find(path);
      if (it == snap.files.end()) return std::nullopt;
      return it->second.value;
    }
  }
  return inner_.get(path);
}

std::optional<CloudStore::Versioned> MaliciousStore::get_versioned_for(
    const std::string& view, const std::string& path) const {
  std::optional<util::Bytes> override_value;
  {
    std::lock_guard lock(mutex_);
    auto& vs = view_state_locked(view);
    auto ov = vs.overrides.find(path);
    if (ov != vs.overrides.end()) {
      override_value = ov->second;
    } else if (auto gen = gen_for_read_locked(view, path, /*fresh=*/true)) {
      const auto& snap = snapshots_[*gen];
      auto it = snap.files.find(path);
      if (it == snap.files.end()) return std::nullopt;
      return it->second;
    }
  }
  if (override_value) {
    // Overrides ride on the live version so pollers treat them as news.
    auto version = inner_.file_version(path);
    return Versioned{std::move(*override_value), version == 0 ? 1 : version};
  }
  return inner_.get_versioned(path);
}

std::uint64_t MaliciousStore::file_version_for(const std::string& view,
                                               const std::string& path) const {
  {
    std::lock_guard lock(mutex_);
    auto& vs = view_state_locked(view);
    if (vs.overrides.count(path) == 0) {
      if (auto gen = gen_for_read_locked(view, path, /*fresh=*/false)) {
        const auto& snap = snapshots_[*gen];
        auto it = snap.files.find(path);
        return it == snap.files.end() ? 0 : it->second.version;
      }
    }
  }
  auto version = inner_.file_version(path);
  {
    std::lock_guard lock(mutex_);
    auto& vs = view_state_locked(view);
    if (vs.overrides.count(path) != 0 && version == 0) return 1;
  }
  return version;
}

std::vector<std::string> MaliciousStore::list_for(
    const std::string& view, const std::string& prefix) const {
  std::optional<std::size_t> gen;
  {
    std::lock_guard lock(mutex_);
    gen = gen_for_read_locked(view, prefix, /*fresh=*/false);
  }
  auto live = inner_.list(prefix);
  if (!gen) return live;
  std::lock_guard lock(mutex_);
  const auto& snap = snapshots_[*gen];
  std::vector<std::string> merged;
  for (auto& p : live) {
    if (!targeted(p)) merged.push_back(p);
  }
  for (const auto& [p, unused] : snap.files) {
    if (p.rfind(prefix, 0) == 0) merged.push_back(p);
  }
  std::sort(merged.begin(), merged.end());
  return merged;
}

std::uint64_t MaliciousStore::dir_version_for(const std::string& view,
                                              const std::string& dir) const {
  {
    std::lock_guard lock(mutex_);
    if (auto gen = gen_for_read_locked(view, dir, /*fresh=*/false)) {
      const auto& snap = snapshots_[*gen];
      auto it = snap.dir_versions.find(dir);
      return it == snap.dir_versions.end() ? 0 : it->second;
    }
  }
  return inner_.dir_version(dir);
}

std::optional<std::uint64_t> MaliciousStore::long_poll_for(
    const std::string& view, const std::string& dir, std::uint64_t since,
    std::chrono::milliseconds timeout) const {
  std::uint64_t snap_version = 0;
  bool stale = false;
  {
    std::lock_guard lock(mutex_);
    if (auto gen = gen_for_read_locked(view, dir, /*fresh=*/false)) {
      stale = true;
      const auto& snap = snapshots_[*gen];
      auto it = snap.dir_versions.find(dir);
      snap_version = it == snap.dir_versions.end() ? 0 : it->second;
    }
  }
  if (!stale) return inner_.long_poll(dir, since, timeout);
  // A rolled-back replica never reports changes past its own state: wake the
  // caller only if the STALE directory version already beats `since`.
  if (snap_version > since) return snap_version;
  std::this_thread::sleep_for(timeout);
  return std::nullopt;
}

std::uint64_t MaliciousStore::put(const std::string& path, util::Bytes value) {
  return put_for("", path, std::move(value));
}

std::optional<std::uint64_t> MaliciousStore::put_cas(const std::string& path,
                                                     util::Bytes value,
                                                     std::uint64_t expected) {
  return put_cas_for("", path, std::move(value), expected);
}

std::optional<util::Bytes> MaliciousStore::get(const std::string& path) const {
  return get_for("", path);
}

std::optional<CloudStore::Versioned> MaliciousStore::get_versioned(
    const std::string& path) const {
  return get_versioned_for("", path);
}

std::uint64_t MaliciousStore::file_version(const std::string& path) const {
  return file_version_for("", path);
}

bool MaliciousStore::erase(const std::string& path) { return inner_.erase(path); }

std::vector<std::string> MaliciousStore::list(const std::string& prefix) const {
  return list_for("", prefix);
}

std::uint64_t MaliciousStore::dir_version(const std::string& dir) const {
  return dir_version_for("", dir);
}

std::optional<std::uint64_t> MaliciousStore::long_poll(
    const std::string& dir, std::uint64_t since,
    std::chrono::milliseconds timeout) const {
  return long_poll_for("", dir, since, timeout);
}

CloudStats MaliciousStore::stats() const {
  auto s = inner_.stats();
  std::lock_guard lock(mutex_);
  s.faults_injected += stats_.total_attacks();
  return s;
}

std::size_t MaliciousStore::stored_bytes() const {
  return inner_.stored_bytes();
}

CloudStore& MaliciousStore::view(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = view_objects_[name];
  if (!slot) slot = std::make_unique<View>(*this, name);
  return *slot;
}

std::size_t MaliciousStore::generation_count() const {
  std::lock_guard lock(mutex_);
  return snapshots_.size();
}

std::optional<CloudStore::Versioned> MaliciousStore::snapshot_value(
    std::size_t gen, const std::string& path) const {
  std::lock_guard lock(mutex_);
  if (gen >= snapshots_.size()) return std::nullopt;
  auto it = snapshots_[gen].files.find(path);
  if (it == snapshots_[gen].files.end()) return std::nullopt;
  return it->second;
}

void MaliciousStore::serve_generation(std::size_t gen) {
  std::lock_guard lock(mutex_);
  global_pin_ = gen;
}

void MaliciousStore::serve_live() {
  std::lock_guard lock(mutex_);
  global_pin_.reset();
}

void MaliciousStore::pin_view(const std::string& name, std::size_t gen) {
  std::lock_guard lock(mutex_);
  views_[name].pin = gen;
}

void MaliciousStore::unpin_view(const std::string& name) {
  std::lock_guard lock(mutex_);
  views_[name].pin.reset();
}

void MaliciousStore::override_path(const std::string& name,
                                   const std::string& path, util::Bytes value) {
  std::lock_guard lock(mutex_);
  views_[name].overrides[path] = std::move(value);
}

void MaliciousStore::clear_overrides(const std::string& name) {
  std::lock_guard lock(mutex_);
  views_[name].overrides.clear();
}

std::vector<util::Bytes> MaliciousStore::rejected_writes(
    const std::string& path) const {
  std::lock_guard lock(mutex_);
  auto it = rejected_.find(path);
  return it == rejected_.end() ? std::vector<util::Bytes>{} : it->second;
}

void MaliciousStore::set_malice_enabled(bool enabled) {
  std::lock_guard lock(mutex_);
  enabled_ = enabled;
}

MaliciousStats MaliciousStore::malicious_stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace ibbe::cloud
