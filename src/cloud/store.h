// Simulated public cloud storage (the paper deploys on Dropbox).
//
// Reproduces the interaction pattern the system depends on:
//   * a hierarchical namespace — group metadata lives under
//     groups/<gid>/p<k>, one file per partition plus an index file;
//   * administrator uploads via put() (the paper's HTTP PUT);
//   * client change detection via directory-level long polling, exactly like
//     Dropbox's /longpoll_delta: every put bumps the version of the enclosing
//     directories, and long_poll() blocks until a directory version exceeds
//     the caller's cursor;
//   * an injectable latency model so end-to-end measurements can include
//     realistic cloud round-trip times (benches default to zero latency —
//     they measure compute, as the paper's microbenchmarks do).
//
// Thread-safe; watchers park on a condition variable.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/errors.h"

namespace ibbe::cloud {

/// The storage layer's failure types are the shared util/errors.h taxonomy
/// under their historical cloud:: names. A TransientError round trip may be
/// retried (util::RetryPolicy); a CrashError is simulated process death,
/// never retried in place — recovery happens in a fresh process via
/// AdminApi::recover(); an IntegrityError is evidence of a Byzantine store
/// and always propagates.
using TransientError = util::TransientError;
using CrashError = util::CrashError;
using IntegrityError = util::IntegrityError;

struct LatencyModel {
  std::chrono::microseconds put{0};
  std::chrono::microseconds get{0};

  /// Rough Dropbox-over-WAN figures for demo purposes.
  static LatencyModel wan() {
    return {std::chrono::milliseconds(45), std::chrono::milliseconds(35)};
  }
};

struct CloudStats {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t erases = 0;
  std::uint64_t long_polls = 0;
  std::uint64_t bytes_uploaded = 0;
  std::uint64_t bytes_downloaded = 0;
  // Fault-injection counters (zero on a plain store; a FaultInjectingStore
  // folds its FaultStats in here so dashboards see one aggregate).
  std::uint64_t faults_injected = 0;
  std::uint64_t crashes_injected = 0;
};

/// The method surface is virtual so decorators (fault.h's
/// FaultInjectingStore) can wrap a store behind the same reference the
/// system layer already takes; the cloud round trips these calls model dwarf
/// the virtual-dispatch cost.
class CloudStore {
 public:
  explicit CloudStore(LatencyModel latency = {});
  virtual ~CloudStore() = default;

  /// Stores `value` at `path` ("a/b/c"); bumps every ancestor directory's
  /// version and wakes long-pollers. Returns the file's new version.
  virtual std::uint64_t put(const std::string& path, util::Bytes value);

  /// Compare-and-swap put: succeeds only if the file's current version is
  /// `expected` (0 = the file must not exist). Returns the new version, or
  /// std::nullopt on a version conflict. This is the optimistic-concurrency
  /// primitive the multi-administrator extension builds on.
  [[nodiscard]] virtual std::optional<std::uint64_t> put_cas(
      const std::string& path, util::Bytes value, std::uint64_t expected);

  [[nodiscard]] virtual std::optional<util::Bytes> get(
      const std::string& path) const;

  /// Value together with its version (for CAS round trips).
  struct Versioned {
    util::Bytes value;
    std::uint64_t version;
  };
  [[nodiscard]] virtual std::optional<Versioned> get_versioned(
      const std::string& path) const;

  /// Current version of a file (0 if absent).
  [[nodiscard]] virtual std::uint64_t file_version(const std::string& path) const;

  /// True if something was deleted. Also a directory change.
  virtual bool erase(const std::string& path);

  /// All paths with the given prefix, sorted.
  [[nodiscard]] virtual std::vector<std::string> list(
      const std::string& prefix) const;

  /// Current version of a directory (0 if never written).
  [[nodiscard]] virtual std::uint64_t dir_version(const std::string& dir) const;

  /// Blocks until dir_version(dir) > since, returning the new version, or
  /// std::nullopt on timeout. This is the client's notification channel.
  [[nodiscard]] virtual std::optional<std::uint64_t> long_poll(
      const std::string& dir, std::uint64_t since,
      std::chrono::milliseconds timeout) const;

  [[nodiscard]] virtual CloudStats stats() const;
  /// Total bytes currently stored (the footprint benches read this).
  [[nodiscard]] virtual std::size_t stored_bytes() const;

 private:
  void simulate(std::chrono::microseconds latency) const;
  void bump_ancestors_locked(const std::string& path);

  struct Entry {
    util::Bytes data;
    std::uint64_t version;
  };

  LatencyModel latency_;
  mutable std::mutex mutex_;
  mutable std::condition_variable changed_;
  std::map<std::string, Entry> files_;
  std::map<std::string, std::uint64_t> dir_versions_;
  std::uint64_t version_clock_ = 0;
  mutable CloudStats stats_;
};

}  // namespace ibbe::cloud
