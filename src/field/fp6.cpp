#include "field/fp6.h"

#include "field/tower_consts.h"

namespace ibbe::field {

Fp6 operator*(const Fp6& a, const Fp6& b) {
  // Schoolbook with v^3 = xi folds:
  // c0 = a0b0 + xi(a1b2 + a2b1)
  // c1 = a0b1 + a1b0 + xi a2b2
  // c2 = a0b2 + a1b1 + a2b0
  Fp2 a0b0 = a.c0_ * b.c0_;
  Fp2 a1b1 = a.c1_ * b.c1_;
  Fp2 a2b2 = a.c2_ * b.c2_;
  Fp2 c0 = a0b0 + (a.c1_ * b.c2_ + a.c2_ * b.c1_).mul_by_xi();
  Fp2 c1 = a.c0_ * b.c1_ + a.c1_ * b.c0_ + a2b2.mul_by_xi();
  Fp2 c2 = a.c0_ * b.c2_ + a1b1 + a.c2_ * b.c0_;
  return {c0, c1, c2};
}

Fp6 Fp6::mul_by_01(const Fp2& b0, const Fp2& b1) const {
  // (a0 + a1 v + a2 v^2)(b0 + b1 v) with v^3 = xi:
  // c0 = a0b0 + xi a2b1, c1 = a0b1 + a1b0, c2 = a1b1 + a2b0.
  Fp2 v0 = c0_ * b0;
  Fp2 v1 = c1_ * b1;
  Fp2 c0 = v0 + ((c1_ + c2_) * b1 - v1).mul_by_xi();
  Fp2 c1 = (c0_ + c1_) * (b0 + b1) - v0 - v1;
  Fp2 c2 = (c0_ + c2_) * b0 - v0 + v1;
  return {c0, c1, c2};
}

Fp6 Fp6::inverse() const {
  // Standard cubic-extension inversion (e.g. Guide to Pairing-Based
  // Cryptography, alg. 5.23).
  Fp2 t0 = c0_.square() - (c1_ * c2_).mul_by_xi();
  Fp2 t1 = c2_.square().mul_by_xi() - c0_ * c1_;
  Fp2 t2 = c1_.square() - c0_ * c2_;
  Fp2 denom = c0_ * t0 + (c1_ * t2 + c2_ * t1).mul_by_xi();
  Fp2 d = denom.inverse();
  return {t0 * d, t1 * d, t2 * d};
}

Fp6 Fp6::frobenius() const {
  const auto& g = TowerConsts::get().gamma;
  // v^p = xi^((p-1)/3) v = g2 * v ; (v^2)^p = g4 * v^2.
  return {c0_.conjugate(), c1_.conjugate() * g[1], c2_.conjugate() * g[3]};
}

}  // namespace ibbe::field
