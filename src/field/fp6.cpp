#include "field/fp6.h"

#include "field/lazy.h"
#include "field/tower_consts.h"

namespace ibbe::field {

Fp6 operator*(const Fp6& a, const Fp6& b) {
  // Lazy schoolbook with v^3 = xi folded INTO the right-hand operands:
  // multiplying b1/b2 by xi up front (cheap shift-and-add, no reduction)
  // turns every xi-weighted term into a plain product, so each output
  // coefficient is a sum of three unreduced Fp2Wide products — 27 wide
  // multiplications and 6 REDCs total, versus 27 + 27 for the reduced
  // schoolbook. Component bounds: 3 * (2, 4) = (6, 12) p^2, within the
  // 27 p^2 accumulator ceiling (field/lazy.h).
  //   c0 = a0 b0 + a1 (xi b2) + a2 (xi b1)
  //   c1 = a0 b1 + a1 b0     + a2 (xi b2)
  //   c2 = a0 b2 + a1 b1     + a2 b0
  const Fp2 xi_b1 = b.c1_.mul_by_xi();
  const Fp2 xi_b2 = b.c2_.mul_by_xi();
  Fp2Wide c0 = Fp2Wide::mul(a.c0_, b.c0_);
  c0.add(Fp2Wide::mul(a.c1_, xi_b2));
  c0.add(Fp2Wide::mul(a.c2_, xi_b1));
  Fp2Wide c1 = Fp2Wide::mul(a.c0_, b.c1_);
  c1.add(Fp2Wide::mul(a.c1_, b.c0_));
  c1.add(Fp2Wide::mul(a.c2_, xi_b2));
  Fp2Wide c2 = Fp2Wide::mul(a.c0_, b.c2_);
  c2.add(Fp2Wide::mul(a.c1_, b.c1_));
  c2.add(Fp2Wide::mul(a.c2_, b.c0_));
  return {c0.redc(), c1.redc(), c2.redc()};
}

Fp6 Fp6::mul_by_01(const Fp2& b0, const Fp2& b1) const {
  // Sparse lazy schoolbook, same pre-multiplied-xi scheme as operator*:
  // c0 = a0 b0 + a2 (xi b1), c1 = a0 b1 + a1 b0, c2 = a1 b1 + a2 b0.
  // 6 Fp2Wide products, 6 REDCs; bounds (4, 8) p^2.
  const Fp2 xi_b1 = b1.mul_by_xi();
  Fp2Wide c0 = Fp2Wide::mul(c0_, b0);
  c0.add(Fp2Wide::mul(c2_, xi_b1));
  Fp2Wide c1 = Fp2Wide::mul(c0_, b1);
  c1.add(Fp2Wide::mul(c1_, b0));
  Fp2Wide c2 = Fp2Wide::mul(c1_, b1);
  c2.add(Fp2Wide::mul(c2_, b0));
  return {c0.redc(), c1.redc(), c2.redc()};
}

Fp6 Fp6::inverse() const {
  // Standard cubic-extension inversion (e.g. Guide to Pairing-Based
  // Cryptography, alg. 5.23).
  Fp2 t0 = c0_.square() - (c1_ * c2_).mul_by_xi();
  Fp2 t1 = c2_.square().mul_by_xi() - c0_ * c1_;
  Fp2 t2 = c1_.square() - c0_ * c2_;
  Fp2 denom = c0_ * t0 + (c1_ * t2 + c2_ * t1).mul_by_xi();
  Fp2 d = denom.inverse();
  return {t0 * d, t1 * d, t2 * d};
}

Fp6 Fp6::frobenius() const {
  const auto& g = TowerConsts::get().gamma;
  // v^p = xi^((p-1)/3) v = g2 * v ; (v^2)^p = g4 * v^2.
  return {c0_.conjugate(), c1_.conjugate() * g[1], c2_.conjugate() * g[3]};
}

}  // namespace ibbe::field
