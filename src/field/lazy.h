// Lazy-reduction arithmetic for the BN254 base field and its quadratic
// extension (Aranha et al., "Faster Explicit Formulas for Computing Pairings
// over Ordinary Curves", EUROCRYPT 2011 — adapted to this tower).
//
// A Montgomery multiplication is a 256x256 -> 512 product followed by a REDC
// that costs roughly half as much again. Since REDC is linear, a SUM of
// products needs only one: the tower formulas here accumulate full-width
// products in `FpWide` (a U512) and reduce once per output coefficient —
// an Fp2 multiplication pays 2 REDCs instead of 3, an Fp6 multiplication 6
// instead of 27 (see field/fp6.cpp).
//
// Bound discipline (everything in units of p^2, p = BN254 base prime):
//   * p < 2^253.6, so p^2 < 2^507.2 and a U512 holds up to
//     floor(2^512 / p^2) = 27 products without overflow.
//   * `FpWide::product` of reduced operands is < p^2; `product_raw` of raw
//     sums (each < 2p < 2^255) is < 4p^2.
//   * Subtraction x - y is computed as x + (p^2 - ...) offsets: adding any
//     multiple of p^2 (indeed of p) does not change redc(x) mod p, so
//     `add_p_squared` before `sub` keeps the accumulator non-negative.
//   * Every formula in fp2.cpp / fp6.cpp carries its worst-case bound as a
//     comment; the largest used is 12 p^2 — well under the 27 p^2 ceiling.
//   * Overflow would mean a carry out of the top limb; debug builds assert
//     on it (Release defines NDEBUG, so the hot path pays nothing).
//
// Only instantiated for the BN254 base field: the bounds need the two spare
// bits of a 254-bit prime in a 256-bit word, and nothing above P-256 or Fr
// multiplies deeply enough to profit.
#pragma once

#include <cassert>

#include "bigint/mont.h"
#include "bigint/u512.h"
#include "field/fields.h"

namespace ibbe::field {

/// Unreduced 512-bit accumulator over the BN254 base field: a sum of
/// Montgomery-residue products (plus p^2 offsets), reduced on demand.
class FpWide {
 public:
  FpWide() = default;

  /// a * b for reduced residues: < p^2.
  static FpWide product(const Fp& a, const Fp& b) {
    FpWide out;
    out.v_ = bigint::MontgomeryCtx::mul_wide(a.mont_repr(), b.mont_repr());
    return out;
  }

  /// a * b for RAW 256-bit operands (unreduced limb sums < 2p each, as
  /// produced by `raw_sum`): < 4p^2.
  static FpWide product_raw(const bigint::U256& a, const bigint::U256& b) {
    FpWide out;
    out.v_ = bigint::MontgomeryCtx::mul_wide(a, b);
    return out;
  }

  /// a + b over the integers (no modular reduction): < 2p < 2^256 for
  /// reduced inputs, so the carry out is always zero.
  static bigint::U256 raw_sum(const Fp& a, const Fp& b) {
    bigint::U256 s;
    [[maybe_unused]] std::uint64_t carry =
        bigint::add_with_carry(a.mont_repr(), b.mont_repr(), s);
    assert(carry == 0 && "FpWide::raw_sum: operands not reduced");
    return s;
  }

  void add(const FpWide& o) {
    [[maybe_unused]] std::uint64_t carry = bigint::u512_add(v_, o.v_);
    assert(carry == 0 && "FpWide::add: accumulator bound exceeded");
  }

  /// this -= o; the caller must have ensured this >= o (usually via
  /// `add_p_squared` first).
  void sub(const FpWide& o) {
    [[maybe_unused]] std::uint64_t borrow = bigint::u512_sub(v_, o.v_);
    assert(borrow == 0 && "FpWide::sub: negative intermediate");
  }

  /// this += p^2 (invisible mod p; buys headroom for one `sub` of a plain
  /// product).
  void add_p_squared() {
    [[maybe_unused]] std::uint64_t carry =
        bigint::u512_add(v_, Fp::ctx().p_squared());
    assert(carry == 0 && "FpWide::add_p_squared: accumulator bound exceeded");
  }

  void dbl() { add(*this); }

  /// One Montgomery reduction: the canonical Fp with value this * R^-1.
  [[nodiscard]] Fp redc() const {
    return Fp::from_mont_unchecked(Fp::ctx().redc(v_));
  }

 private:
  bigint::U512 v_{};
};

/// Unreduced Fp2 product accumulator (component-wise pair of FpWide).
class Fp2Wide {
 public:
  Fp2Wide() = default;

  /// Karatsuba product of reduced Fp2 elements, 3 wide multiplications and
  /// ZERO reductions. Component bounds: c0 <= 2 p^2, c1 <= 4 p^2.
  static Fp2Wide mul(const Fp2& a, const Fp2& b) {
    FpWide t0 = FpWide::product(a.c0(), b.c0());
    FpWide t1 = FpWide::product(a.c1(), b.c1());
    // Raw (integer) operand sums keep mixed >= t0 + t1 over the integers,
    // which is what lets both subtractions below run offset-free.
    FpWide mixed = FpWide::product_raw(FpWide::raw_sum(a.c0(), a.c1()),
                                       FpWide::raw_sum(b.c0(), b.c1()));
    Fp2Wide r;
    r.c0_ = t0;
    r.c0_.add_p_squared();  // t0 + p^2 - t1 in [p^2 - p^2, 2p^2)
    r.c0_.sub(t1);
    r.c1_ = mixed;  // mixed - t0 - t1 = a0 b1 + a1 b0 in [0, 2p^2); raw
    r.c1_.sub(t0);  // mixed itself is < 4p^2
    r.c1_.sub(t1);
    return r;
  }

  /// Squaring: 2 wide multiplications. Component bounds: c0 <= 2p^2,
  /// c1 <= 2p^2.
  static Fp2Wide square(const Fp2& a) {
    Fp2Wide r;
    // (a0 + a1)(a0 - a1) = a0^2 - a1^2 = Re(a^2): the difference is taken
    // reduced mod p (congruence is all REDC needs), the sum raw (< 2p), so
    // the product is < 2p^2 and non-negative by construction.
    r.c0_ = FpWide::product_raw(FpWide::raw_sum(a.c0(), a.c1()),
                                (a.c0() - a.c1()).mont_repr());
    r.c1_ = FpWide::product(a.c0(), a.c1());
    r.c1_.dbl();
    return r;
  }

  /// Component-wise accumulate; bounds add.
  void add(const Fp2Wide& o) {
    c0_.add(o.c0_);
    c1_.add(o.c1_);
  }

  /// Two reductions — one per coefficient, regardless of how many products
  /// were accumulated.
  [[nodiscard]] Fp2 redc() const { return {c0_.redc(), c1_.redc()}; }

 private:
  FpWide c0_, c1_;
};

}  // namespace ibbe::field
