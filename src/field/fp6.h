// Cubic extension Fp6 = Fp2[v] / (v^3 - xi), the middle floor of the tower.
#pragma once

#include "field/fp2.h"

namespace ibbe::field {

class Fp6 {
 public:
  Fp6() = default;
  Fp6(Fp2 c0, Fp2 c1, Fp2 c2) : c0_(c0), c1_(c1), c2_(c2) {}

  static Fp6 zero() { return {}; }
  static Fp6 one() { return {Fp2::one(), Fp2::zero(), Fp2::zero()}; }

  [[nodiscard]] const Fp2& c0() const { return c0_; }
  [[nodiscard]] const Fp2& c1() const { return c1_; }
  [[nodiscard]] const Fp2& c2() const { return c2_; }

  [[nodiscard]] bool is_zero() const {
    return c0_.is_zero() && c1_.is_zero() && c2_.is_zero();
  }
  [[nodiscard]] bool is_one() const {
    return c0_.is_one() && c1_.is_zero() && c2_.is_zero();
  }

  friend Fp6 operator+(const Fp6& a, const Fp6& b) {
    return {a.c0_ + b.c0_, a.c1_ + b.c1_, a.c2_ + b.c2_};
  }
  friend Fp6 operator-(const Fp6& a, const Fp6& b) {
    return {a.c0_ - b.c0_, a.c1_ - b.c1_, a.c2_ - b.c2_};
  }
  friend Fp6 operator*(const Fp6& a, const Fp6& b);
  Fp6& operator+=(const Fp6& o) { return *this = *this + o; }
  Fp6& operator-=(const Fp6& o) { return *this = *this - o; }
  Fp6& operator*=(const Fp6& o) { return *this = *this * o; }

  [[nodiscard]] Fp6 neg() const { return {c0_.neg(), c1_.neg(), c2_.neg()}; }
  [[nodiscard]] Fp6 square() const { return *this * *this; }
  /// Throws std::domain_error on zero.
  [[nodiscard]] Fp6 inverse() const;
  /// Multiplication by v (shifts coefficients; wraps through xi).
  [[nodiscard]] Fp6 mul_by_v() const {
    return {c2_.mul_by_xi(), c0_, c1_};
  }
  [[nodiscard]] Fp6 mul_by_fp2(const Fp2& s) const {
    return {c0_ * s, c1_ * s, c2_ * s};
  }
  /// Scalar multiplication by an Fp element (6 Fp multiplications — the
  /// a-coefficient of a normalized Miller line lives here).
  [[nodiscard]] Fp6 mul_by_fp(const Fp& s) const {
    return {c0_.mul_by_fp(s), c1_.mul_by_fp(s), c2_.mul_by_fp(s)};
  }
  /// Sparse multiplication by b0 + b1 v (the shape of a Miller-loop line
  /// factor embedded in Fp6): 5 Fp2 multiplications instead of 6.
  [[nodiscard]] Fp6 mul_by_01(const Fp2& b0, const Fp2& b1) const;

  /// p-power Frobenius.
  [[nodiscard]] Fp6 frobenius() const;

  friend bool operator==(const Fp6&, const Fp6&) = default;

 private:
  Fp2 c0_;
  Fp2 c1_;
  Fp2 c2_;
};

}  // namespace ibbe::field
