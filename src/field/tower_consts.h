// Frobenius constants for the BN254 tower, derived once at first use.
//
// With Fp6 = Fp2[v]/(v^3 - xi) and Fp12 = Fp6[w]/(w^2 - v) we have w^6 = xi,
// so w^(p-1) = xi^((p-1)/6) =: g1 (an Fp2 value since 6 | p-1). The table
// holds g_k = xi^(k(p-1)/6) for k = 1..5:
//
//   Frobenius on Fp6:  (b0, b1, b2) -> (conj b0, conj b1 * g2, conj b2 * g4)
//   Frobenius on Fp12: w-part additionally scaled by g1
//   G2 twist Frobenius pi(x, y) = (conj x * g2, conj y * g3)
//
// Deriving by exponentiation (instead of hard-coding digits) trades a few
// microseconds at startup for immunity to transcription errors.
#pragma once

#include <array>

#include "field/fp2.h"

namespace ibbe::field {

struct TowerConsts {
  /// gamma[k-1] = xi^(k*(p-1)/6), k = 1..5.
  std::array<Fp2, 5> gamma;

  static const TowerConsts& get();
};

}  // namespace ibbe::field
