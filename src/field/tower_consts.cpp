#include "field/tower_consts.h"

#include "bigint/biguint.h"

namespace ibbe::field {

const TowerConsts& TowerConsts::get() {
  static const TowerConsts instance = [] {
    using bigint::BigUInt;
    BigUInt p = BigUInt::from_u256(Fp::modulus());
    BigUInt e = (p - BigUInt(1)) / BigUInt(6);
    TowerConsts c;
    Fp2 g1 = Fp2::xi().pow(e);
    c.gamma[0] = g1;
    for (std::size_t k = 1; k < c.gamma.size(); ++k) {
      c.gamma[k] = c.gamma[k - 1] * g1;
    }
    return c;
  }();
  return instance;
}

}  // namespace ibbe::field
