#include "field/fp2.h"

#include "field/lazy.h"

namespace ibbe::field {

Fp2 operator*(const Fp2& a, const Fp2& b) {
  // Lazy Karatsuba over i^2 = -1: 3 wide products, 2 REDCs (field/lazy.h).
  return Fp2Wide::mul(a, b).redc();
}

Fp2 Fp2::square() const {
  // (a+bi)^2 = (a+b)(a-b) + 2ab i: 2 wide products, 2 REDCs.
  return Fp2Wide::square(*this).redc();
}

Fp2 Fp2::inverse() const {
  // (a+bi)^-1 = (a - bi) / (a^2 + b^2); the norm accumulates both squares
  // into one wide word (<= 2p^2) and reduces once.
  FpWide norm = FpWide::product(c0_, c0_);
  norm.add(FpWide::product(c1_, c1_));
  Fp d = norm.redc().inverse();
  return {c0_ * d, (c1_ * d).neg()};
}

Fp2 Fp2::mul_by_xi() const {
  // (9 + i)(a + bi) = (9a - b) + (9b + a) i; 9x = 8x + x.
  Fp nine_a = c0_.dbl().dbl().dbl() + c0_;
  Fp nine_b = c1_.dbl().dbl().dbl() + c1_;
  return {nine_a - c1_, nine_b + c0_};
}

Fp2 Fp2::pow(const bigint::BigUInt& e) const {
  Fp2 result = one();
  for (unsigned i = e.bit_length(); i-- > 0;) {
    result = result.square();
    if (e.bit(i)) result *= *this;
  }
  return result;
}

std::optional<Fp2> Fp2::sqrt() const {
  // Algorithm for q = p^2 with p = 3 (mod 4), cf. RFC 9380 appendix I.2.
  if (is_zero()) return zero();
  using bigint::BigUInt;
  static const BigUInt p = BigUInt::from_u256(Fp::modulus());
  static const BigUInt c1 = (p - BigUInt(3)) >> 2;  // (p-3)/4
  static const BigUInt c2 = (p - BigUInt(1)) >> 1;  // (p-1)/2

  Fp2 a1 = pow(c1);
  Fp2 alpha = a1.square() * *this;
  Fp2 x0 = a1 * *this;
  Fp2 candidate;
  if (alpha == Fp2(Fp::one().neg(), Fp::zero())) {
    // x = i * x0
    candidate = Fp2(x0.c1().neg(), x0.c0());
  } else {
    Fp2 b = (Fp2::one() + alpha).pow(c2);
    candidate = b * x0;
  }
  if (candidate.square() == *this) return candidate;
  return std::nullopt;
}

}  // namespace ibbe::field
