// Prime-field elements over the four 256-bit primes used in the project.
//
// `Fp256<Tag>` wraps a Montgomery residue with value semantics. The tag pins
// the modulus at the type level, so mixing elements of different fields is a
// compile error, not a runtime surprise:
//
//   Fp      — BN254 base field  (coordinates of G1, tower below Fp12)
//   Fr      — BN254 scalar field (exponents; IBBE's Z_p^* of the paper)
//   P256Fp  — NIST P-256 base field (classical PKI substrate)
//   P256Fr  — NIST P-256 group order (ECDSA scalars)
#pragma once

#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "bigint/biguint.h"
#include "bigint/mont.h"
#include "bigint/u256.h"

namespace ibbe::field {

struct BnBaseTag {
  static constexpr std::string_view name = "bn254.p";
  static constexpr std::string_view modulus_hex =
      "30644e72e131a029b85045b68181585d97816a916871ca8d3c208c16d87cfd47";
};

struct BnScalarTag {
  static constexpr std::string_view name = "bn254.r";
  static constexpr std::string_view modulus_hex =
      "30644e72e131a029b85045b68181585d2833e84879b9709143e1f593f0000001";
};

struct P256BaseTag {
  static constexpr std::string_view name = "p256.p";
  static constexpr std::string_view modulus_hex =
      "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff";
};

struct P256ScalarTag {
  static constexpr std::string_view name = "p256.n";
  static constexpr std::string_view modulus_hex =
      "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551";
};

template <typename Tag>
class Fp256 {
 public:
  using U256 = bigint::U256;

  /// Zero element.
  constexpr Fp256() = default;

  // __attribute__((const)) is sound here — the function always returns the
  // same reference — and lets the compiler hoist the magic-static guard
  // check out of multiplication-chain loops.
#if defined(__GNUC__)
  __attribute__((const))
#endif
  static const bigint::MontgomeryCtx& ctx() {
    static const bigint::MontgomeryCtx instance(
        U256::from_hex(Tag::modulus_hex));
    return instance;
  }
  static const U256& modulus() { return ctx().modulus(); }

  static Fp256 zero() { return {}; }
  static Fp256 one() { return from_mont(ctx().one()); }

  /// From a canonical (non-Montgomery) value; must be < modulus.
  static Fp256 from_u256(const U256& v) {
    if (bigint::cmp(v, modulus()) >= 0) {
      throw std::invalid_argument(std::string(Tag::name) +
                                  ": value not reduced");
    }
    return from_mont(ctx().to_mont(v));
  }
  /// From an arbitrary 256-bit value, reduced mod the field prime.
  static Fp256 from_u256_reduce(const U256& v) {
    return from_mont(ctx().to_mont(bigint::mod(v, modulus())));
  }
  static Fp256 from_u64(std::uint64_t v) {
    return from_u256_reduce(U256::from_u64(v));
  }
  static Fp256 from_hex(std::string_view hex) {
    return from_u256(U256::from_hex(hex));
  }
  /// 32 big-endian bytes, reduced mod the prime (used by hash-to-field).
  static Fp256 from_be_bytes_reduce(std::span<const std::uint8_t> b32) {
    return from_u256_reduce(U256::from_be_bytes(b32));
  }

  [[nodiscard]] U256 to_u256() const { return ctx().from_mont(v_); }
  [[nodiscard]] std::array<std::uint8_t, 32> to_be_bytes() const {
    return to_u256().to_be_bytes();
  }
  [[nodiscard]] std::string to_hex() const { return to_u256().to_hex(); }

  [[nodiscard]] bool is_zero() const { return v_.is_zero(); }
  [[nodiscard]] bool is_one() const { return v_ == ctx().one(); }

  friend Fp256 operator+(const Fp256& a, const Fp256& b) {
    return from_mont(ctx().add(a.v_, b.v_));
  }
  friend Fp256 operator-(const Fp256& a, const Fp256& b) {
    return from_mont(ctx().sub(a.v_, b.v_));
  }
  friend Fp256 operator*(const Fp256& a, const Fp256& b) {
    return from_mont(ctx().mul(a.v_, b.v_));
  }
  Fp256& operator+=(const Fp256& o) { return *this = *this + o; }
  Fp256& operator-=(const Fp256& o) { return *this = *this - o; }
  Fp256& operator*=(const Fp256& o) {
    ctx().mul_into(v_, o.v_, v_);  // in-place: no result copy
    return *this;
  }

  [[nodiscard]] Fp256 neg() const { return from_mont(ctx().neg(v_)); }
  [[nodiscard]] Fp256 square() const { return from_mont(ctx().sqr(v_)); }
  [[nodiscard]] Fp256 dbl() const { return from_mont(ctx().add(v_, v_)); }
  /// Fermat inversion; throws std::domain_error on zero.
  [[nodiscard]] Fp256 inverse() const { return from_mont(ctx().inv(v_)); }

  [[nodiscard]] Fp256 pow(const U256& e) const {
    return from_mont(ctx().pow(v_, e));
  }
  [[nodiscard]] Fp256 pow(const bigint::BigUInt& e) const {
    return from_mont(ctx().pow(v_, e));
  }

  /// Square root for p = 3 (mod 4) primes (all four of ours):
  /// a^((p+1)/4); std::nullopt if `a` is not a quadratic residue.
  [[nodiscard]] std::optional<Fp256> sqrt() const {
    static const U256 e = [] {
      bigint::BigUInt p = bigint::BigUInt::from_u256(modulus());
      return ((p + bigint::BigUInt(1)) >> 2).to_u256();
    }();
    Fp256 candidate = pow(e);
    if (candidate.square() == *this) return candidate;
    return std::nullopt;
  }

  /// Parity of the canonical representative; used for point compression.
  [[nodiscard]] bool is_odd() const { return to_u256().is_odd(); }

  /// The raw Montgomery residue and its unchecked inverse. These exist for
  /// the lazy-reduction tower (field/lazy.h), which multiplies and
  /// accumulates residues in 512-bit unreduced form and re-wraps the REDC
  /// output; `v` must be a canonical residue (< modulus, Montgomery form).
  [[nodiscard]] const U256& mont_repr() const { return v_; }
  static Fp256 from_mont_unchecked(const U256& v) { return from_mont(v); }

  friend bool operator==(const Fp256&, const Fp256&) = default;

 private:
  static Fp256 from_mont(const U256& v) {
    Fp256 out;
    out.v_ = v;
    return out;
  }

  U256 v_{};  // Montgomery form
};

using Fp = Fp256<BnBaseTag>;
using Fr = Fp256<BnScalarTag>;
using P256Fp = Fp256<P256BaseTag>;
using P256Fr = Fp256<P256ScalarTag>;

/// Montgomery's simultaneous-inversion trick: replaces every element of `xs`
/// by its inverse at the cost of ONE field inversion plus 3(n-1)
/// multiplications. Works for any field-like type with operator* and a
/// throwing inverse() (Fp256, Fp2, Fp12, ...); throws std::domain_error if
/// any element is zero, leaving `xs` unspecified.
template <typename F>
void batch_inverse(std::span<F> xs) {
  if (xs.empty()) return;
  // Prefix products, one inversion of the total, then peel the suffix off.
  std::vector<F> prefix(xs.size());
  prefix[0] = xs[0];
  for (std::size_t i = 1; i < xs.size(); ++i) prefix[i] = prefix[i - 1] * xs[i];
  F inv = prefix.back().inverse();
  for (std::size_t i = xs.size(); i-- > 1;) {
    F xi_inv = inv * prefix[i - 1];
    inv = inv * xs[i];
    xs[i] = xi_inv;
  }
  xs[0] = inv;
}

}  // namespace ibbe::field
