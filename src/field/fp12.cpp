#include "field/fp12.h"

#include <stdexcept>

#include "field/tower_consts.h"

namespace ibbe::field {

Fp12 operator*(const Fp12& a, const Fp12& b) {
  // Karatsuba over w^2 = v.
  Fp6 t0 = a.c0_ * b.c0_;
  Fp6 t1 = a.c1_ * b.c1_;
  Fp6 mixed = (a.c0_ + a.c1_) * (b.c0_ + b.c1_);
  return {t0 + t1.mul_by_v(), mixed - t0 - t1};
}

Fp12 Fp12::square() const {
  // (a0 + a1 w)^2 = (a0^2 + v a1^2) + 2 a0 a1 w
  //              = ((a0+a1)(a0 + v a1) - a0a1 - v a0a1) + 2 a0a1 w
  Fp6 a0a1 = c0_ * c1_;
  Fp6 t = (c0_ + c1_) * (c0_ + c1_.mul_by_v());
  return {t - a0a1 - a0a1.mul_by_v(), a0a1 + a0a1};
}

Fp12 Fp12::inverse() const {
  // (a0 + a1 w)^-1 = (a0 - a1 w) / (a0^2 - v a1^2)
  Fp6 norm = c0_.square() - c1_.square().mul_by_v();
  Fp6 d = norm.inverse();
  return {c0_ * d, (c1_ * d).neg()};
}

Fp12 Fp12::frobenius() const {
  const auto& g = TowerConsts::get().gamma;
  // w^p = g1 * w, so the w-part picks up a scalar g1 after the Fp6 Frobenius.
  return {c0_.frobenius(), c1_.frobenius().mul_by_fp2(g[0])};
}

Fp12 Fp12::mul_by_line(const Fp2& a, const Fp2& b, const Fp2& c) const {
  // Line element L = A + B w with A = (a, 0, 0), B = (b, c, 0), so
  // A + B = (a + b, c, 0) and both Fp6 products are mul_by_01-sparse.
  // Karatsuba as in operator*, but with the cheaper sparse operands.
  Fp6 t0 = c0_.mul_by_fp2(a);
  Fp6 t1 = c1_.mul_by_01(b, c);
  Fp6 mixed = (c0_ + c1_).mul_by_01(a + b, c);
  return {t0 + t1.mul_by_v(), mixed - t0 - t1};
}

Fp12 Fp12::mul_by_line_affine(const Fp& a, const Fp2& b, const Fp2& c) const {
  // As mul_by_line with A = ((a, 0), 0, 0): the t0 product is 6 Fp
  // multiplications instead of 3 full Fp2 ones, and a + b is an Fp add.
  Fp6 t0 = c0_.mul_by_fp(a);
  Fp6 t1 = c1_.mul_by_01(b, c);
  Fp6 mixed = (c0_ + c1_).mul_by_01(Fp2(b.c0() + a, b.c1()), c);
  return {t0 + t1.mul_by_v(), mixed - t0 - t1};
}

Fp12 Fp12::pow(const bigint::BigUInt& e) const {
  Fp12 result = one();
  for (unsigned i = e.bit_length(); i-- > 0;) {
    result = result.square();
    if (e.bit(i)) result *= *this;
  }
  return result;
}

Fp12 Fp12::pow(const bigint::U256& e) const {
  Fp12 result = one();
  for (unsigned i = e.bit_length(); i-- > 0;) {
    result = result.square();
    if (e.bit(i)) result *= *this;
  }
  return result;
}

namespace {

// Fp4 squaring helper for Granger–Scott: squares a + b*t with t^2 = v... the
// quadratic over Fp2 with non-residue xi. Returns (out_a, out_b).
std::pair<Fp2, Fp2> fp4_square(const Fp2& a, const Fp2& b) {
  Fp2 t0 = a.square();
  Fp2 t1 = b.square();
  Fp2 out_a = t1.mul_by_xi() + t0;
  Fp2 out_b = (a + b).square() - t0 - t1;
  return {out_a, out_b};
}

}  // namespace

Fp12 Fp12::cyclotomic_square() const {
  // Granger–Scott "On the final exponentiation..." squaring for GΦ6(p^2).
  const Fp2& c0c0 = c0_.c0();
  const Fp2& c0c1 = c0_.c1();
  const Fp2& c0c2 = c0_.c2();
  const Fp2& c1c0 = c1_.c0();
  const Fp2& c1c1 = c1_.c1();
  const Fp2& c1c2 = c1_.c2();

  auto [t3, t4] = fp4_square(c0c0, c1c1);
  auto [t5, t6] = fp4_square(c1c0, c0c2);
  auto [t7, t8] = fp4_square(c0c1, c1c2);
  Fp2 t9 = t8.mul_by_xi();

  Fp2 o00 = (t3 - c0c0).dbl() + t3;
  Fp2 o01 = (t5 - c0c1).dbl() + t5;
  Fp2 o02 = (t7 - c0c2).dbl() + t7;
  Fp2 o10 = (t9 + c1c0).dbl() + t9;
  Fp2 o11 = (t4 + c1c1).dbl() + t4;
  Fp2 o12 = (t6 + c1c2).dbl() + t6;

  return {Fp6(o00, o01, o02), Fp6(o10, o11, o12)};
}

Fp12 Fp12::pow_cyclotomic(const bigint::U256& e) const {
  Fp12 result = one();
  for (unsigned i = e.bit_length(); i-- > 0;) {
    result = result.cyclotomic_square();
    if (e.bit(i)) result *= *this;
  }
  return result;
}

Fp12Compressed Fp12::compress() const {
  return {c1_.c0(), c0_.c2(), c0_.c1(), c1_.c2()};
}

Fp12Compressed Fp12Compressed::square() const {
  // The Granger–Scott output coordinates (c0.c1, c0.c2, c1.c0, c1.c2) depend
  // only on those same four inputs (see cyclotomic_square above); these are
  // its formulas restricted to that closed subsystem.
  Fp2 g2_sq = g2_.square();
  Fp2 g3_sq = g3_.square();
  Fp2 g4_sq = g4_.square();
  Fp2 g5_sq = g5_.square();

  Fp2 t5 = g3_sq.mul_by_xi() + g2_sq;           // fp4_square(c1.c0, c0.c2).a
  Fp2 t7 = g5_sq.mul_by_xi() + g4_sq;           // fp4_square(c0.c1, c1.c2).a
  Fp2 t6 = (g2_ + g3_).square() - g2_sq - g3_sq;  // 2 c1.c0 c0.c2
  Fp2 t9 = ((g4_ + g5_).square() - g4_sq - g5_sq).mul_by_xi();

  Fp2 out_g4 = (t5 - g4_).dbl() + t5;
  Fp2 out_g3 = (t7 - g3_).dbl() + t7;
  Fp2 out_g2 = (t9 + g2_).dbl() + t9;
  Fp2 out_g5 = (t6 + g5_).dbl() + t6;
  return {out_g2, out_g3, out_g4, out_g5};
}

void Fp12Compressed::g1_fraction(Fp2& num, Fp2& den) const {
  if (!g2_.is_zero()) {
    // g1 = (xi g5^2 + 3 g4^2 - 2 g3) / (4 g2)
    Fp2 g4_sq = g4_.square();
    num = g5_.square().mul_by_xi() + g4_sq.dbl() + g4_sq - g3_.dbl();
    den = g2_.dbl().dbl();
    return;
  }
  // g2 = 0 branch: g1 = 2 g4 g5 / g3. A cyclotomic element with g2 = g3 = 0
  // has g1 = 0 (the identity is the canonical case), so fall back to 0/1
  // rather than evaluating the now-indeterminate quotient.
  if (g3_.is_zero()) {
    num = Fp2::zero();
    den = Fp2::one();
    return;
  }
  num = (g4_ * g5_).dbl();
  den = g3_;
}

Fp12 Fp12Compressed::complete(const Fp2& g1) const {
  // g0 = xi (2 g1^2 + g2 g5 - 3 g3 g4) + 1
  Fp2 g3g4 = g3_ * g4_;
  Fp2 t = g1.square().dbl() + g2_ * g5_ - g3g4.dbl() - g3g4;
  Fp2 g0 = t.mul_by_xi() + Fp2::one();
  return {Fp6(g0, g4_, g3_), Fp6(g2_, g1, g5_)};
}

Fp12 Fp12Compressed::decompress() const {
  Fp2 num, den;
  g1_fraction(num, den);
  return complete(num * den.inverse());
}

std::vector<Fp12> Fp12Compressed::decompress_many(
    std::span<const Fp12Compressed> xs) {
  std::vector<Fp2> nums(xs.size());
  std::vector<Fp2> dens(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i].g1_fraction(nums[i], dens[i]);
  }
  batch_inverse(std::span<Fp2>(dens));
  std::vector<Fp12> out;
  out.reserve(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    out.push_back(xs[i].complete(nums[i] * dens[i]));
  }
  return out;
}

util::Bytes Fp12::to_bytes() const {
  util::ByteWriter w;
  for (const Fp6* h : {&c0_, &c1_}) {
    for (const Fp2* q : {&h->c0(), &h->c1(), &h->c2()}) {
      w.raw(q->c0().to_be_bytes());
      w.raw(q->c1().to_be_bytes());
    }
  }
  return w.take();
}

Fp12 Fp12::from_bytes(std::span<const std::uint8_t> data) {
  if (data.size() != serialized_size) {
    throw util::DeserializeError("Fp12: need 384 bytes");
  }
  std::array<Fp, 12> coeffs;
  for (std::size_t i = 0; i < 12; ++i) {
    bigint::U256 raw = bigint::U256::from_be_bytes(data.subspan(32 * i, 32));
    if (bigint::cmp(raw, Fp::modulus()) >= 0) {
      throw util::DeserializeError("Fp12: coefficient not in field");
    }
    coeffs[i] = Fp::from_u256(raw);
  }
  Fp6 c0(Fp2(coeffs[0], coeffs[1]), Fp2(coeffs[2], coeffs[3]),
         Fp2(coeffs[4], coeffs[5]));
  Fp6 c1(Fp2(coeffs[6], coeffs[7]), Fp2(coeffs[8], coeffs[9]),
         Fp2(coeffs[10], coeffs[11]));
  return {c0, c1};
}

}  // namespace ibbe::field
