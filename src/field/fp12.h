// Fp12 = Fp6[w] / (w^2 - v): the pairing target field.
//
// Values returned by the final exponentiation live in the cyclotomic
// subgroup, where the cheaper Granger–Scott squaring applies; `pow` on Gt
// elements routes through it (see pairing/gt.h).
#pragma once

#include "bigint/biguint.h"
#include "field/fp6.h"
#include "util/bytes.h"

namespace ibbe::field {

class Fp12 {
 public:
  Fp12() = default;
  Fp12(Fp6 c0, Fp6 c1) : c0_(c0), c1_(c1) {}

  static Fp12 zero() { return {}; }
  static Fp12 one() { return {Fp6::one(), Fp6::zero()}; }

  [[nodiscard]] const Fp6& c0() const { return c0_; }
  [[nodiscard]] const Fp6& c1() const { return c1_; }

  [[nodiscard]] bool is_zero() const { return c0_.is_zero() && c1_.is_zero(); }
  [[nodiscard]] bool is_one() const { return c0_.is_one() && c1_.is_zero(); }

  friend Fp12 operator+(const Fp12& a, const Fp12& b) {
    return {a.c0_ + b.c0_, a.c1_ + b.c1_};
  }
  friend Fp12 operator-(const Fp12& a, const Fp12& b) {
    return {a.c0_ - b.c0_, a.c1_ - b.c1_};
  }
  friend Fp12 operator*(const Fp12& a, const Fp12& b);
  Fp12& operator*=(const Fp12& o) { return *this = *this * o; }

  [[nodiscard]] Fp12 square() const;
  /// Throws std::domain_error on zero.
  [[nodiscard]] Fp12 inverse() const;
  /// w-conjugate (a0, -a1) = x^(p^6); inverse on the cyclotomic subgroup.
  [[nodiscard]] Fp12 conjugate() const { return {c0_, c1_.neg()}; }

  /// p-power Frobenius.
  [[nodiscard]] Fp12 frobenius() const;

  /// Sparse multiplication by an optimal-ate line l = a + (b + c*v) * w with
  /// a, b, c in Fp2 (13 Fp2 multiplications instead of the 18 of a full Fp12
  /// multiplication). The projective Miller loop scales its lines by Fp2
  /// denominators, so all three coefficients live in Fp2.
  [[nodiscard]] Fp12 mul_by_line(const Fp2& a, const Fp2& b, const Fp2& c) const;

  [[nodiscard]] Fp12 pow(const bigint::BigUInt& e) const;
  [[nodiscard]] Fp12 pow(const bigint::U256& e) const;

  /// Granger–Scott squaring; valid only for elements of the cyclotomic
  /// subgroup (norm 1), i.e. outputs of the final exponentiation.
  [[nodiscard]] Fp12 cyclotomic_square() const;
  /// Exponentiation using cyclotomic squarings (same subgroup caveat).
  [[nodiscard]] Fp12 pow_cyclotomic(const bigint::U256& e) const;

  /// 384-byte canonical serialization (12 Fp values, big-endian, tower
  /// order c0.c0.c0, c0.c0.c1, c0.c1.c0, ..., c1.c2.c1).
  [[nodiscard]] util::Bytes to_bytes() const;
  static Fp12 from_bytes(std::span<const std::uint8_t> data);
  static constexpr std::size_t serialized_size = 12 * 32;

  friend bool operator==(const Fp12&, const Fp12&) = default;

 private:
  Fp6 c0_;
  Fp6 c1_;
};

}  // namespace ibbe::field
