// Fp12 = Fp6[w] / (w^2 - v): the pairing target field.
//
// Values returned by the final exponentiation live in the cyclotomic
// subgroup, where the cheaper Granger–Scott squaring applies; `pow` on Gt
// elements routes through it (see pairing/gt.h).
#pragma once

#include <span>
#include <vector>

#include "bigint/biguint.h"
#include "field/fp6.h"
#include "util/bytes.h"

namespace ibbe::field {

class Fp12Compressed;

class Fp12 {
 public:
  Fp12() = default;
  Fp12(Fp6 c0, Fp6 c1) : c0_(c0), c1_(c1) {}

  static Fp12 zero() { return {}; }
  static Fp12 one() { return {Fp6::one(), Fp6::zero()}; }

  [[nodiscard]] const Fp6& c0() const { return c0_; }
  [[nodiscard]] const Fp6& c1() const { return c1_; }

  [[nodiscard]] bool is_zero() const { return c0_.is_zero() && c1_.is_zero(); }
  [[nodiscard]] bool is_one() const { return c0_.is_one() && c1_.is_zero(); }

  friend Fp12 operator+(const Fp12& a, const Fp12& b) {
    return {a.c0_ + b.c0_, a.c1_ + b.c1_};
  }
  friend Fp12 operator-(const Fp12& a, const Fp12& b) {
    return {a.c0_ - b.c0_, a.c1_ - b.c1_};
  }
  friend Fp12 operator*(const Fp12& a, const Fp12& b);
  Fp12& operator*=(const Fp12& o) { return *this = *this * o; }

  [[nodiscard]] Fp12 square() const;
  /// Throws std::domain_error on zero.
  [[nodiscard]] Fp12 inverse() const;
  /// w-conjugate (a0, -a1) = x^(p^6); inverse on the cyclotomic subgroup.
  [[nodiscard]] Fp12 conjugate() const { return {c0_, c1_.neg()}; }

  /// p-power Frobenius.
  [[nodiscard]] Fp12 frobenius() const;

  /// Sparse multiplication by an optimal-ate line l = a + (b + c*v) * w with
  /// a, b, c in Fp2 (13 Fp2 multiplications instead of the 18 of a full Fp12
  /// multiplication). The projective Miller loop scales its lines by Fp2
  /// denominators, so all three coefficients live in Fp2.
  [[nodiscard]] Fp12 mul_by_line(const Fp2& a, const Fp2& b, const Fp2& c) const;

  /// Same, for a NORMALIZED line l = a + (b + c*v) * w whose first
  /// coefficient is the Fp scalar a = y_P (the cached affine line tables of
  /// pairing::G2PreparedAffine): the a-products collapse from full Fp2
  /// multiplications to Fp scalar multiplications.
  [[nodiscard]] Fp12 mul_by_line_affine(const Fp& a, const Fp2& b,
                                        const Fp2& c) const;

  [[nodiscard]] Fp12 pow(const bigint::BigUInt& e) const;
  [[nodiscard]] Fp12 pow(const bigint::U256& e) const;

  /// Granger–Scott squaring; valid only for elements of the cyclotomic
  /// subgroup (norm 1), i.e. outputs of the final exponentiation.
  [[nodiscard]] Fp12 cyclotomic_square() const;
  /// Exponentiation using cyclotomic squarings (same subgroup caveat).
  [[nodiscard]] Fp12 pow_cyclotomic(const bigint::U256& e) const;
  /// Karabina compression (same subgroup caveat); see Fp12Compressed.
  [[nodiscard]] Fp12Compressed compress() const;

  /// 384-byte canonical serialization (12 Fp values, big-endian, tower
  /// order c0.c0.c0, c0.c0.c1, c0.c1.c0, ..., c1.c2.c1).
  [[nodiscard]] util::Bytes to_bytes() const;
  static Fp12 from_bytes(std::span<const std::uint8_t> data);
  static constexpr std::size_t serialized_size = 12 * 32;

  friend bool operator==(const Fp12&, const Fp12&) = default;

 private:
  Fp6 c0_;
  Fp6 c1_;
};

/// Karabina compressed representation of a cyclotomic-subgroup element
/// (eprint 2010/542): of the six Fp2 coordinates, (c0.c0, c1.c1) are
/// redundant for norm-1 elements and are dropped. The remaining four form a
/// closed system under cyclotomic squaring — `square` costs 6 Fp2 squarings
/// versus the 9 of the full Granger–Scott formula — at the price of one Fp2
/// inversion to decompress.
/// Square-heavy ladders (the final exponentiation's three pow-by-u chains)
/// stay compressed through the squaring runs and batch their decompressions
/// through one shared inversion (`decompress_many`, Montgomery's trick).
///
/// Only sound for cyclotomic-subgroup elements; compressing anything else
/// silently loses information.
class Fp12Compressed {
 public:
  /// Compressed cyclotomic squaring (6 Fp2 squarings).
  [[nodiscard]] Fp12Compressed square() const;

  /// Single-element decompression: one Fp2 inversion.
  [[nodiscard]] Fp12 decompress() const;
  /// Batch decompression: one Fp2 inversion total (Montgomery's
  /// simultaneous-inversion trick) plus a few multiplications per element.
  static std::vector<Fp12> decompress_many(std::span<const Fp12Compressed> xs);

 private:
  friend class Fp12;
  Fp12Compressed(const Fp2& g2, const Fp2& g3, const Fp2& g4, const Fp2& g5)
      : g2_(g2), g3_(g3), g4_(g4), g5_(g5) {}

  /// Numerator and denominator of the dropped c1.c1 coordinate (the final
  /// division is what `decompress`/`decompress_many` share).
  void g1_fraction(Fp2& num, Fp2& den) const;
  /// Rebuilds the full element from the recovered c1.c1.
  [[nodiscard]] Fp12 complete(const Fp2& g1) const;

  // Karabina's (g2, g3, g4, g5) = our (c1.c0, c0.c2, c0.c1, c1.c2).
  Fp2 g2_;
  Fp2 g3_;
  Fp2 g4_;
  Fp2 g5_;
};

}  // namespace ibbe::field
