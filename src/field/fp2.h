// Quadratic extension Fp2 = Fp[i] / (i^2 + 1) of the BN254 base field.
//
// G2 coordinates live here, as does the ground floor of the Fp12 tower. The
// sextic non-residue used by the next floor is xi = 9 + i.
#pragma once

#include <optional>

#include "bigint/biguint.h"
#include "field/fields.h"

namespace ibbe::field {

class Fp2 {
 public:
  /// Zero.
  Fp2() = default;
  Fp2(Fp c0, Fp c1) : c0_(c0), c1_(c1) {}

  static Fp2 zero() { return {}; }
  static Fp2 one() { return {Fp::one(), Fp::zero()}; }
  static Fp2 from_fp(const Fp& a) { return {a, Fp::zero()}; }
  /// The sextic non-residue xi = 9 + i.
  static Fp2 xi() { return {Fp::from_u64(9), Fp::one()}; }

  [[nodiscard]] const Fp& c0() const { return c0_; }
  [[nodiscard]] const Fp& c1() const { return c1_; }

  [[nodiscard]] bool is_zero() const { return c0_.is_zero() && c1_.is_zero(); }
  [[nodiscard]] bool is_one() const { return c0_.is_one() && c1_.is_zero(); }

  friend Fp2 operator+(const Fp2& a, const Fp2& b) {
    return {a.c0_ + b.c0_, a.c1_ + b.c1_};
  }
  friend Fp2 operator-(const Fp2& a, const Fp2& b) {
    return {a.c0_ - b.c0_, a.c1_ - b.c1_};
  }
  friend Fp2 operator*(const Fp2& a, const Fp2& b);
  Fp2& operator+=(const Fp2& o) { return *this = *this + o; }
  Fp2& operator-=(const Fp2& o) { return *this = *this - o; }
  Fp2& operator*=(const Fp2& o) { return *this = *this * o; }

  [[nodiscard]] Fp2 neg() const { return {c0_.neg(), c1_.neg()}; }
  [[nodiscard]] Fp2 square() const;
  [[nodiscard]] Fp2 dbl() const { return {c0_.dbl(), c1_.dbl()}; }
  /// Throws std::domain_error on zero.
  [[nodiscard]] Fp2 inverse() const;
  [[nodiscard]] Fp2 conjugate() const { return {c0_, c1_.neg()}; }
  /// Multiplication by the non-residue xi = 9 + i.
  [[nodiscard]] Fp2 mul_by_xi() const;
  [[nodiscard]] Fp2 mul_by_fp(const Fp& s) const { return {c0_ * s, c1_ * s}; }

  [[nodiscard]] Fp2 pow(const bigint::BigUInt& e) const;

  /// Square root (p = 3 mod 4 algorithm); std::nullopt for non-residues.
  /// Used by G2 point decompression.
  [[nodiscard]] std::optional<Fp2> sqrt() const;

  /// Canonical "sign" for compression: parity of c0 (or of c1 when c0 = 0).
  [[nodiscard]] bool is_odd() const {
    return c0_.is_zero() ? c1_.is_odd() : c0_.is_odd();
  }

  friend bool operator==(const Fp2&, const Fp2&) = default;

 private:
  Fp c0_;
  Fp c1_;
};

}  // namespace ibbe::field
