#include "pairing/gt.h"

#include "crypto/sha256.h"
#include "pairing/gt_exp.h"

namespace ibbe::pairing {

Gt Gt::exp(const field::Fr& k) const {
  return Gt(gt_pow(v_, k.to_u256()));
}

std::array<std::uint8_t, 32> Gt::hash() const {
  return crypto::Sha256::hash(to_bytes());
}

}  // namespace ibbe::pairing
