#include "pairing/gt.h"

#include "crypto/sha256.h"

namespace ibbe::pairing {

std::array<std::uint8_t, 32> Gt::hash() const {
  return crypto::Sha256::hash(to_bytes());
}

}  // namespace ibbe::pairing
