#include "pairing/pairing.h"

#include <stdexcept>

#include "field/tower_consts.h"

namespace ibbe::pairing {

using bigint::BigUInt;
using ec::G1;
using ec::G2;
using field::Fp;
using field::Fp12;
using field::Fp2;
using field::TowerConsts;

namespace {

/// The BN parameter u = 4965661367192848881 for BN254 / alt_bn128.
const BigUInt& bn_u() {
  static const BigUInt u = BigUInt::from_hex("44e992b44a6909f1");
  return u;
}

/// Optimal-ate Miller loop length 6u + 2.
const BigUInt& ate_loop_count() {
  static const BigUInt s = BigUInt(6) * bn_u() + BigUInt(2);
  return s;
}

/// Hard-part exponent (p^4 - p^2 + 1)/r. The exact divisibility doubles as a
/// consistency check on the curve constants.
const BigUInt& hard_exponent() {
  static const BigUInt d = [] {
    BigUInt p = BigUInt::from_u256(Fp::modulus());
    BigUInt r = BigUInt::from_u256(field::Fr::modulus());
    BigUInt p2 = p * p;
    BigUInt p4 = p2 * p2;
    auto [q, rem] = BigUInt::divmod(p4 - p2 + BigUInt(1), r);
    if (!rem.is_zero()) {
      throw std::logic_error("BN254 constants inconsistent: r does not divide p^4-p^2+1");
    }
    return q;
  }();
  return d;
}

/// Affine working point on the twist during the Miller loop.
struct TwistPoint {
  Fp2 x;
  Fp2 y;
};

/// pi(x, y) = (conj(x) g2, conj(y) g3) with g_k = xi^(k(p-1)/6).
TwistPoint twist_frobenius(const TwistPoint& q) {
  const auto& g = TowerConsts::get().gamma;
  return {q.x.conjugate() * g[1], q.y.conjugate() * g[2]};
}

/// Tangent-line step: multiplies f by l_{T,T}(P) and doubles T in place.
void dbl_step(Fp12& f, TwistPoint& t, const Fp& xp, const Fp& yp) {
  Fp2 lambda = (t.x.square().dbl() + t.x.square()) * t.y.dbl().inverse();
  Fp2 c = lambda * t.x - t.y;
  f = f.mul_by_line(yp, lambda.mul_by_fp(xp).neg(), c);
  Fp2 x3 = lambda.square() - t.x.dbl();
  t.y = lambda * (t.x - x3) - t.y;
  t.x = x3;
}

/// Chord-line step: multiplies f by l_{T,Q}(P) and sets T <- T + Q.
void add_step(Fp12& f, TwistPoint& t, const TwistPoint& q, const Fp& xp,
              const Fp& yp) {
  if (t.x == q.x) {
    // T = Q would need a tangent and T = -Q a vertical; neither can occur for
    // order-r inputs at the multiples visited by the ate loop.
    if (t.y == q.y) {
      dbl_step(f, t, xp, yp);
      return;
    }
    throw std::logic_error("pairing: degenerate addition step (input not in G2?)");
  }
  Fp2 lambda = (q.y - t.y) * (q.x - t.x).inverse();
  Fp2 c = lambda * t.x - t.y;
  f = f.mul_by_line(yp, lambda.mul_by_fp(xp).neg(), c);
  Fp2 x3 = lambda.square() - t.x - q.x;
  t.y = lambda * (t.x - x3) - t.y;
  t.x = x3;
}

Fp12 pow_cyclotomic_big(const Fp12& base, const BigUInt& e) {
  Fp12 result = Fp12::one();
  for (unsigned i = e.bit_length(); i-- > 0;) {
    result = result.cyclotomic_square();
    if (e.bit(i)) result *= base;
  }
  return result;
}

}  // namespace

Fp12 miller_loop(const G1& p, const G2& q) {
  auto pa = p.to_affine();
  auto qa = q.to_affine();
  if (!pa || !qa) return Fp12::one();
  const Fp xp = pa->first;
  const Fp yp = pa->second;
  const TwistPoint q0{qa->first, qa->second};

  TwistPoint t = q0;
  Fp12 f = Fp12::one();
  const BigUInt& s = ate_loop_count();
  for (unsigned i = s.bit_length() - 1; i-- > 0;) {
    f = f.square();
    dbl_step(f, t, xp, yp);
    if (s.bit(i)) add_step(f, t, q0, xp, yp);
  }

  // Final two Frobenius line steps of the optimal ate pairing.
  TwistPoint q1 = twist_frobenius(q0);
  TwistPoint q2 = twist_frobenius(q1);
  add_step(f, t, q1, xp, yp);
  add_step(f, t, {q2.x, q2.y.neg()}, xp, yp);
  return f;
}

Fp12 final_exponentiation(const Fp12& f) {
  // Easy part: f^((p^6 - 1)(p^2 + 1)).
  Fp12 t = f.conjugate() * f.inverse();
  t = t.frobenius().frobenius() * t;
  // Hard part; t is now in the cyclotomic subgroup, so the cheap squaring
  // applies (equivalence with the naive path is covered by tests).
  return pow_cyclotomic_big(t, hard_exponent());
}

Fp12 final_exponentiation_naive(const Fp12& f) {
  Fp12 t = f.conjugate() * f.inverse();
  t = t.frobenius().frobenius() * t;
  return t.pow(hard_exponent());
}

Gt pairing(const G1& p, const G2& q) {
  return Gt::from_fp12_unchecked(final_exponentiation(miller_loop(p, q)));
}

Gt pairing_product(std::span<const std::pair<G1, G2>> pairs) {
  Fp12 f = Fp12::one();
  for (const auto& [p, q] : pairs) {
    f *= miller_loop(p, q);
  }
  return Gt::from_fp12_unchecked(final_exponentiation(f));
}

}  // namespace ibbe::pairing
