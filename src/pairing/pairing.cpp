#include "pairing/pairing.h"

#include <stdexcept>

#include "field/tower_consts.h"
#include "pairing/gt_exp.h"

namespace ibbe::pairing {

using bigint::BigUInt;
using bigint::U256;
using ec::G1;
using ec::G2;
using field::Fp;
using field::Fp12;
using field::Fp2;
using field::TowerConsts;

namespace {

/// The BN parameter u = 4965661367192848881 for BN254 / alt_bn128 (63 bits,
/// positive — the hard-part chain below assumes u > 0).
constexpr std::uint64_t kBnU = 0x44e992b44a6909f1ULL;

const BigUInt& bn_u() {
  static const BigUInt u = BigUInt::from_u256(U256::from_u64(kBnU));
  return u;
}

/// Optimal-ate Miller loop length 6u + 2 (65 bits).
const BigUInt& ate_loop_count() {
  static const BigUInt s = BigUInt(6) * bn_u() + BigUInt(2);
  return s;
}

/// Signed NAF digits of 6u + 2, least significant first. Derived once at
/// first use; the Miller loop and G2 preparation walk this table instead of
/// scanning BigUInt bits per iteration, and the signed form trades additions
/// for (free) twist-point negations.
const std::vector<std::int8_t>& ate_naf_digits() {
  static const std::vector<std::int8_t> digits = [] {
    std::vector<std::int8_t> d;
    auto n = static_cast<unsigned __int128>(6) * kBnU + 2;
    while (n != 0) {
      if (n & 1) {
        if ((n & 3) == 3) {
          d.push_back(-1);
          n += 1;
        } else {
          d.push_back(1);
          n -= 1;
        }
      } else {
        d.push_back(0);
      }
      n >>= 1;
    }
    return d;
  }();
  return digits;
}

/// Hard-part exponent (p^4 - p^2 + 1)/r for the naive oracle. The exact
/// divisibility doubles as a consistency check on the curve constants.
const BigUInt& hard_exponent() {
  static const BigUInt d = [] {
    BigUInt p = BigUInt::from_u256(Fp::modulus());
    BigUInt r = BigUInt::from_u256(field::Fr::modulus());
    BigUInt p2 = p * p;
    BigUInt p4 = p2 * p2;
    auto [q, rem] = BigUInt::divmod(p4 - p2 + BigUInt(1), r);
    if (!rem.is_zero()) {
      throw std::logic_error("BN254 constants inconsistent: r does not divide p^4-p^2+1");
    }
    return q;
  }();
  return d;
}

/// Affine point on the twist (inputs and Frobenius images of Q).
struct TwistPoint {
  Fp2 x;
  Fp2 y;
};

/// pi(x, y) = (conj(x) g2, conj(y) g3) with g_k = xi^(k(p-1)/6).
TwistPoint twist_frobenius(const TwistPoint& q) {
  const auto& g = TowerConsts::get().gamma;
  return {q.x.conjugate() * g[1], q.y.conjugate() * g[2]};
}

// ------------------------------------------------- projective Miller steps
//
// The working point lives in homogeneous projective coordinates (X, Y, Z),
// x = X/Z, y = Y/Z, so both step types are inversion-free: each line is
// scaled by its Fp2 denominator, which the final exponentiation annihilates.

struct ProjPoint {
  Fp2 x;
  Fp2 y;
  Fp2 z;
};

/// Tangent step: emits the line l_{T,T} and doubles T, with the dedicated
/// Costello–Lauter–Naehrig formulas for y^2 = x^3 + b' in homogeneous
/// coordinates (3M + 6S + 1 mult-by-b', vs ~12M + 2S for the generic
/// lambda-derived step):
///   A = XY/2, B = Y^2, C = Z^2, E = 3b'C, F = 3E, G = (B+F)/2,
///   H = (Y+Z)^2 - (B+C) = 2YZ, I = E - B, J = X^2
///   X3 = A(B - F), Y3 = G^2 - 3E^2, Z3 = BH
///   line = -H y_P + 3J x_P + I   (the old line scaled by -1/Z, which the
///   final exponentiation annihilates)
LineCoeffs dbl_step(ProjPoint& t) {
  static const Fp two_inv = Fp::from_u64(2).inverse();
  Fp2 a = (t.x * t.y).mul_by_fp(two_inv);
  Fp2 b = t.y.square();
  Fp2 c = t.z.square();
  Fp2 e = ec::G2Params::b() * (c.dbl() + c);
  Fp2 f = e.dbl() + e;
  Fp2 g = (b + f).mul_by_fp(two_inv);
  Fp2 h = (t.y + t.z).square() - (b + c);
  Fp2 i = e - b;
  Fp2 j = t.x.square();
  Fp2 e2 = e.square();

  LineCoeffs l;
  l.a = h.neg();        // -2YZ       (times y_P)
  l.b = j.dbl() + j;    // 3X^2       (times x_P)
  l.c = i;              // 3b'Z^2 - Y^2

  t.x = a * (b - f);
  t.y = g.square() - (e2.dbl() + e2);
  t.z = b * h;
  return l;
}

/// Chord step: emits the line l_{T,Q} (scaled by F = x_Q Z - X) and sets
/// T <- T + Q for an affine Q.
///   lambda = E/F;  E = y_Q Z - Y, F = x_Q Z - X
///   X3 = HF, Y3 = E(XF^2 - H) - YF^3, Z3 = F^3 Z,  H = E^2 Z - F^3 - 2XF^2
LineCoeffs add_step(ProjPoint& t, const TwistPoint& q) {
  Fp2 e = q.y * t.z - t.y;
  Fp2 f = q.x * t.z - t.x;
  if (f.is_zero()) {
    // T = Q would need a tangent and T = -Q a vertical; neither can occur for
    // order-r inputs at the multiples visited by the ate loop.
    if (e.is_zero()) return dbl_step(t);
    throw std::logic_error("pairing: degenerate addition step (input not in G2?)");
  }
  Fp2 f2 = f.square();
  Fp2 f3 = f2 * f;
  Fp2 e2z = e.square() * t.z;
  Fp2 xf2 = t.x * f2;
  Fp2 h = e2z - f3 - xf2.dbl();

  LineCoeffs l;
  l.a = f;                         // (times y_P)
  l.b = e.neg();                   // (times x_P)
  l.c = e * q.x - f * q.y;

  Fp2 y3 = e * (xf2 - h) - t.y * f3;
  t.x = h * f;
  t.y = y3;
  t.z = f3 * t.z;
  return l;
}

/// One multi-pairing operand: P's affine coordinates plus Q's line table —
/// exactly one of `coeffs` (projective lines) or `affine` (normalized lines)
/// is set.
struct MillerArg {
  Fp xp;
  Fp yp;
  const std::vector<LineCoeffs>* coeffs = nullptr;
  const std::vector<AffineLineCoeffs>* affine = nullptr;
};

/// Shared-squaring Miller loop driver: one f.square() per NAF digit for ALL
/// operands. Every prepared table is generated from the same digit pattern,
/// so a single cursor walks all of them in lockstep.
Fp12 miller_loop_many(std::span<const MillerArg> args) {
  Fp12 f = Fp12::one();
  if (args.empty()) return f;
  const auto& digits = ate_naf_digits();
  std::size_t cursor = 0;
  auto eat_lines = [&] {
    for (const auto& arg : args) {
      if (arg.affine != nullptr) {
        const AffineLineCoeffs& l = (*arg.affine)[cursor];
        f = f.mul_by_line_affine(arg.yp, l.b.mul_by_fp(arg.xp), l.c);
      } else {
        const LineCoeffs& l = (*arg.coeffs)[cursor];
        f = f.mul_by_line(l.a.mul_by_fp(arg.yp), l.b.mul_by_fp(arg.xp), l.c);
      }
    }
    ++cursor;
  };
  for (std::size_t i = digits.size() - 1; i-- > 0;) {
    f = f.square();
    eat_lines();
    if (digits[i] != 0) eat_lines();
  }
  // Final two Frobenius line steps of the optimal ate pairing.
  eat_lines();
  eat_lines();
  return f;
}

Fp12 pow_cyclotomic_big(const Fp12& base, const BigUInt& e) {
  Fp12 result = Fp12::one();
  for (unsigned i = e.bit_length(); i-- > 0;) {
    result = result.cyclotomic_square();
    if (e.bit(i)) result *= base;
  }
  return result;
}

/// f^u over the cyclotomic subgroup (u is 63 bits and positive): signed NAF
/// of u over Karabina compressed squarings with one batched decompression
/// (pairing/gt_exp.h). Valid for any GPhi12(p) member, order r or not.
Fp12 pow_u(const Fp12& f) { return gt_pow_u(f); }

/// Easy part f^((p^6 - 1)(p^2 + 1)) given a precomputed f^-1; lands in the
/// cyclotomic subgroup.
Fp12 easy_part_with_inv(const Fp12& f, const Fp12& f_inv) {
  Fp12 t = f.conjugate() * f_inv;
  return t.frobenius().frobenius() * t;
}

Fp12 easy_part(const Fp12& f) { return easy_part_with_inv(f, f.inverse()); }

/// Hard part t^((p^4 - p^2 + 1)/r) by the BN u-decomposition (the addition
/// chain of Scott et al., "On the final exponentiation for calculating
/// pairings on ordinary elliptic curves", for u > 0): three 63-bit
/// cyclotomic exponentiations by u, Frobenius maps, and conjugations (free
/// inversions in the cyclotomic subgroup) replace the naive ~1000-bit
/// exponentiation. Equivalence with the naive path is covered by tests.
Fp12 hard_part(const Fp12& t) {
  Fp12 fp = t.frobenius();
  Fp12 fp2 = fp.frobenius();
  Fp12 fp3 = fp2.frobenius();
  Fp12 fu = pow_u(t);
  Fp12 fu2 = pow_u(fu);
  Fp12 fu3 = pow_u(fu2);
  Fp12 y0 = fp * fp2 * fp3;
  Fp12 y1 = t.conjugate();
  Fp12 y2 = fu2.frobenius().frobenius();
  Fp12 y3 = fu.frobenius().conjugate();
  Fp12 y4 = (fu * fu2.frobenius()).conjugate();
  Fp12 y5 = fu2.conjugate();
  Fp12 y6 = (fu3 * fu3.frobenius()).conjugate();

  Fp12 t0 = y6.cyclotomic_square() * y4 * y5;
  Fp12 t1 = y3 * y5 * t0;
  t0 = t0 * y2;
  t1 = t1.cyclotomic_square() * t0;
  t1 = t1.cyclotomic_square();
  t0 = t1 * y1;
  t1 = t1 * y0;
  t0 = t0.cyclotomic_square();
  return t0 * t1;
}

}  // namespace

G2Prepared::G2Prepared(const ec::G2& q) {
  auto qa = q.to_affine();
  if (!qa) return;  // stays empty: prepared infinity
  const TwistPoint q0{qa->first, qa->second};
  const TwistPoint q0_neg{q0.x, q0.y.neg()};

  const auto& digits = ate_naf_digits();
  std::size_t adds = 0;
  for (std::size_t i = digits.size() - 1; i-- > 0;) adds += digits[i] != 0;
  coeffs_.reserve((digits.size() - 1) + adds + 2);

  ProjPoint t{q0.x, q0.y, Fp2::one()};
  for (std::size_t i = digits.size() - 1; i-- > 0;) {
    coeffs_.push_back(dbl_step(t));
    if (digits[i] == 1) {
      coeffs_.push_back(add_step(t, q0));
    } else if (digits[i] == -1) {
      coeffs_.push_back(add_step(t, q0_neg));
    }
  }
  TwistPoint q1 = twist_frobenius(q0);
  TwistPoint q2 = twist_frobenius(q1);
  coeffs_.push_back(add_step(t, q1));
  coeffs_.push_back(add_step(t, {q2.x, q2.y.neg()}));
}

G2PreparedAffine::G2PreparedAffine(const ec::G2& q)
    : G2PreparedAffine(G2Prepared(q)) {}

G2PreparedAffine::G2PreparedAffine(const G2Prepared& prepared) {
  if (prepared.is_infinity()) return;
  const auto& coeffs = prepared.coeffs();
  // Every y-coefficient is nonzero for a valid table (-2YZ of a
  // non-infinity doubling, the nonzero chord denominator of an addition), so
  // Montgomery's trick inverts the whole column at the cost of one inversion.
  std::vector<Fp2> inv_a;
  inv_a.reserve(coeffs.size());
  for (const LineCoeffs& l : coeffs) inv_a.push_back(l.a);
  field::batch_inverse(std::span<Fp2>(inv_a));
  lines_.reserve(coeffs.size());
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    lines_.push_back({coeffs[i].b * inv_a[i], coeffs[i].c * inv_a[i]});
  }
}

Fp12 miller_loop(const G1& p, const G2& q) {
  return miller_loop(p, G2Prepared(q));
}

Fp12 miller_loop(const G1& p, const G2Prepared& q) {
  auto pa = p.to_affine();
  if (!pa || q.is_infinity()) return Fp12::one();
  MillerArg arg{pa->first, pa->second, &q.coeffs(), nullptr};
  return miller_loop_many({&arg, 1});
}

Fp12 miller_loop(const G1& p, const G2PreparedAffine& q) {
  auto pa = p.to_affine();
  if (!pa || q.is_infinity()) return Fp12::one();
  MillerArg arg{pa->first, pa->second, nullptr, &q.lines()};
  return miller_loop_many({&arg, 1});
}

Fp12 miller_loop_affine(const G1& p, const G2& q) {
  auto pa = p.to_affine();
  auto qa = q.to_affine();
  if (!pa || !qa) return Fp12::one();
  const Fp xp = pa->first;
  const Fp yp = pa->second;
  const TwistPoint q0{qa->first, qa->second};

  // Affine tangent/chord steps, one Fp2 inversion each.
  TwistPoint t = q0;
  auto affine_dbl = [&](Fp12& f) {
    Fp2 xx = t.x.square();
    Fp2 lambda = (xx.dbl() + xx) * t.y.dbl().inverse();
    Fp2 c = lambda * t.x - t.y;
    f = f.mul_by_line(Fp2::from_fp(yp), lambda.mul_by_fp(xp).neg(), c);
    Fp2 x3 = lambda.square() - t.x.dbl();
    t.y = lambda * (t.x - x3) - t.y;
    t.x = x3;
  };
  auto affine_add = [&](Fp12& f, const TwistPoint& q_add) {
    if (t.x == q_add.x) {
      if (t.y != q_add.y) {
        throw std::logic_error("pairing: degenerate addition step (input not in G2?)");
      }
      affine_dbl(f);
      return;
    }
    Fp2 lambda = (q_add.y - t.y) * (q_add.x - t.x).inverse();
    Fp2 c = lambda * t.x - t.y;
    f = f.mul_by_line(Fp2::from_fp(yp), lambda.mul_by_fp(xp).neg(), c);
    Fp2 x3 = lambda.square() - t.x - q_add.x;
    t.y = lambda * (t.x - x3) - t.y;
    t.x = x3;
  };

  Fp12 f = Fp12::one();
  const BigUInt& s = ate_loop_count();
  for (unsigned i = s.bit_length() - 1; i-- > 0;) {
    f = f.square();
    affine_dbl(f);
    if (s.bit(i)) affine_add(f, q0);
  }
  TwistPoint q1 = twist_frobenius(q0);
  TwistPoint q2 = twist_frobenius(q1);
  affine_add(f, q1);
  affine_add(f, {q2.x, q2.y.neg()});
  return f;
}

Fp12 final_exponentiation(const Fp12& f) { return hard_part(easy_part(f)); }

std::vector<Fp12> final_exponentiation_many(std::span<const Fp12> fs) {
  if (fs.empty()) return {};
  // Per-element results are identical to final_exponentiation; the only
  // sharing is the easy part's field inversion, which Montgomery's trick
  // turns into one inversion for the whole batch.
  std::vector<Fp12> inv(fs.begin(), fs.end());
  field::batch_inverse(std::span<Fp12>(inv));
  std::vector<Fp12> out;
  out.reserve(fs.size());
  for (std::size_t i = 0; i < fs.size(); ++i) {
    out.push_back(hard_part(easy_part_with_inv(fs[i], inv[i])));
  }
  return out;
}

Fp12 final_exponentiation_naive(const Fp12& f) {
  return pow_cyclotomic_big(easy_part(f), hard_exponent());
}

Gt pairing(const G1& p, const G2& q) {
  return Gt::from_fp12_unchecked(final_exponentiation(miller_loop(p, q)));
}

Gt pairing(const G1& p, const G2Prepared& q) {
  return Gt::from_fp12_unchecked(final_exponentiation(miller_loop(p, q)));
}

Gt pairing(const G1& p, const G2PreparedAffine& q) {
  return Gt::from_fp12_unchecked(final_exponentiation(miller_loop(p, q)));
}

Fp12 miller_loop_product(std::span<const std::pair<G1, G2>> pairs) {
  std::vector<G2Prepared> prepared;
  prepared.reserve(pairs.size());
  std::vector<MillerArg> args;
  args.reserve(pairs.size());
  for (const auto& [p, q] : pairs) {
    auto pa = p.to_affine();
    if (!pa || q.is_infinity()) continue;
    prepared.emplace_back(q);
    args.push_back({pa->first, pa->second, &prepared.back().coeffs()});
  }
  return miller_loop_many(args);
}

Gt pairing_product(std::span<const std::pair<G1, G2>> pairs) {
  return Gt::from_fp12_unchecked(
      final_exponentiation(miller_loop_product(pairs)));
}

namespace {

/// Collects the live (non-infinity) operands of a mixed multi-pairing.
std::vector<MillerArg> collect_args(std::span<const PairingInput> pairs,
                                    std::span<const PairingInputAffine> affine) {
  std::vector<MillerArg> args;
  args.reserve(pairs.size() + affine.size());
  for (const auto& input : pairs) {
    if (input.g2 == nullptr) {
      throw std::invalid_argument("pairing_product_prepared: null G2Prepared");
    }
    auto pa = input.g1.to_affine();
    if (!pa || input.g2->is_infinity()) continue;
    args.push_back({pa->first, pa->second, &input.g2->coeffs(), nullptr});
  }
  for (const auto& input : affine) {
    if (input.g2 == nullptr) {
      throw std::invalid_argument(
          "pairing_product_prepared: null G2PreparedAffine");
    }
    auto pa = input.g1.to_affine();
    if (!pa || input.g2->is_infinity()) continue;
    args.push_back({pa->first, pa->second, nullptr, &input.g2->lines()});
  }
  return args;
}

}  // namespace

Gt pairing_product_prepared(std::span<const PairingInput> pairs) {
  return pairing_product_prepared(pairs, {});
}

Gt pairing_product_prepared(std::span<const PairingInputAffine> pairs) {
  return pairing_product_prepared({}, pairs);
}

Gt pairing_product_prepared(std::span<const PairingInput> pairs,
                            std::span<const PairingInputAffine> affine_pairs) {
  return Gt::from_fp12_unchecked(final_exponentiation(
      miller_loop_many(collect_args(pairs, affine_pairs))));
}

Fp12 miller_loop_product_prepared(
    std::span<const PairingInput> pairs,
    std::span<const PairingInputAffine> affine_pairs) {
  return miller_loop_many(collect_args(pairs, affine_pairs));
}

}  // namespace ibbe::pairing
