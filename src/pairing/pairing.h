// Optimal-ate pairing e: G1 x G2 -> GT over BN254.
//
// Structure (Vercauteren 2010, for BN curves with u > 0):
//   f = f_{6u+2,Q}(P) . l_{[6u+2]Q, pi(Q)}(P) . l_{[6u+2]Q + pi(Q), -pi^2(Q)}(P)
//   e(P, Q) = f^((p^12 - 1)/r)
//
// The Miller loop runs over homogeneous projective coordinates on the twist
// (Costello–Lange–Naehrig-style doubling/addition line formulas), so it
// performs ZERO field inversions: every line is scaled by its Fp2 denominator
// instead, which the final exponentiation kills (any Fp2 factor has order
// dividing p^2 - 1, a divisor of (p^12 - 1)/r). The loop walks a precomputed
// static NAF table of 6u + 2 rather than scanning BigUInt bits. Lines embed
// sparsely into Fp12 as
//   l(P) = a y_P + b x_P w + c w^3,   a, b, c in Fp2 depending only on Q.
//
// Because the (a, b, c) triples depend only on Q, they can be computed once
// per G2 point (`G2Prepared`) and replayed against any number of G1 points —
// fixed-argument pairings (the PK's h-powers) skip all G2 point arithmetic.
// Multi-pairings share one f.square() per loop iteration across all pairs and
// a single final exponentiation.
//
// The final exponentiation factors as (p^6-1)(p^2+1) . (p^4-p^2+1)/r; the
// hard part uses the BN u-decomposition (three 63-bit cyclotomic
// exponentiations by u plus Frobenius maps, Scott et al. 2009) and is
// cross-checked in tests against the naive big-integer exponentiation.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "ec/curves.h"
#include "field/fp12.h"
#include "pairing/gt.h"

namespace ibbe::pairing {

/// Coefficients of one Miller-loop line, l(P) = a y_P + b x_P w + c w^3.
/// They depend only on Q; the G1 coordinates scale a and b at evaluation.
struct LineCoeffs {
  field::Fp2 a, b, c;
};

/// Pairing precomputation for a fixed G2 argument: every line coefficient of
/// the optimal-ate Miller loop, computed once with the inversion-free
/// projective point arithmetic. Pairing against a G2Prepared performs no G2
/// point math at all.
class G2Prepared {
 public:
  /// Prepared point at infinity (pairs to 1 with everything).
  G2Prepared() = default;
  explicit G2Prepared(const ec::G2& q);

  [[nodiscard]] bool is_infinity() const { return coeffs_.empty(); }
  [[nodiscard]] const std::vector<LineCoeffs>& coeffs() const { return coeffs_; }

 private:
  std::vector<LineCoeffs> coeffs_;
};

/// One normalized Miller line, l(P) = y_P + b x_P w + c w^3: the y-coefficient
/// of every G2Prepared line is divided out (one batched inversion over the
/// whole table), which the final exponentiation forgives — any Fp2 line
/// scaling has order dividing p^2 - 1. Evaluating a normalized line uses the
/// cheaper Fp12::mul_by_line_affine and skips the per-line a*y_P scaling.
struct AffineLineCoeffs {
  field::Fp2 b, c;
};

/// The batched-inversion ("affine") form of G2Prepared, for G2 arguments
/// cached and reused across MANY pairings (the PK's h and h^gamma, HE-IBE's
/// Ppub, a PreparedPartition's h^p_i): costs one Fp2 batch inversion plus two
/// Fp2 multiplications per line up front, then every subsequent Miller loop
/// evaluates cheaper lines. For one-shot pairings plain G2Prepared wins.
class G2PreparedAffine {
 public:
  /// Prepared point at infinity (pairs to 1 with everything).
  G2PreparedAffine() = default;
  explicit G2PreparedAffine(const ec::G2& q);
  explicit G2PreparedAffine(const G2Prepared& prepared);

  [[nodiscard]] bool is_infinity() const { return lines_.empty(); }
  [[nodiscard]] const std::vector<AffineLineCoeffs>& lines() const {
    return lines_;
  }

 private:
  std::vector<AffineLineCoeffs> lines_;
};

/// One (G1, prepared G2) input of a multi-pairing.
struct PairingInput {
  ec::G1 g1;
  const G2Prepared* g2;
};

/// One (G1, normalized prepared G2) input of a multi-pairing.
struct PairingInputAffine {
  ec::G1 g1;
  const G2PreparedAffine* g2;
};

/// Miller loop only (no final exponentiation). Returns 1 if either input is
/// the point at infinity.
field::Fp12 miller_loop(const ec::G1& p, const ec::G2& q);
field::Fp12 miller_loop(const ec::G1& p, const G2Prepared& q);
/// CAVEAT: normalized tables scale every line by 1/a, so this raw Miller
/// value differs from miller_loop(p, G2Prepared(q)) by a nonzero Fp2 factor.
/// The two agree only AFTER a final exponentiation — do not compare or cache
/// raw Fp12 values across table kinds.
field::Fp12 miller_loop(const ec::G1& p, const G2PreparedAffine& q);

/// Reference Miller loop in affine coordinates (one Fp2 inversion per step);
/// kept as the cross-check oracle for the projective implementation.
field::Fp12 miller_loop_affine(const ec::G1& p, const ec::G2& q);

/// (p^12 - 1)/r exponentiation: easy part + u-decomposed cyclotomic hard part.
field::Fp12 final_exponentiation(const field::Fp12& f);

/// Final exponentiation of many INDEPENDENT Miller-loop outputs (distinct
/// pairing values, not one product). Element-wise identical to calling
/// final_exponentiation on each, but the easy part's Fp12 inversions are
/// batched through one Montgomery simultaneous inversion. Used by the
/// batched decrypt and group-bootstrap paths.
std::vector<field::Fp12> final_exponentiation_many(
    std::span<const field::Fp12> fs);

/// Reference implementation of the hard part by naive big-integer
/// exponentiation of (p^4 - p^2 + 1)/r; exposed for the cross-check tests.
field::Fp12 final_exponentiation_naive(const field::Fp12& f);

/// The full pairing.
Gt pairing(const ec::G1& p, const ec::G2& q);
Gt pairing(const ec::G1& p, const G2Prepared& q);
Gt pairing(const ec::G1& p, const G2PreparedAffine& q);

/// Shared-squaring Miller loop over several pairs WITHOUT the final
/// exponentiation: the raw f value of prod_i e(p_i, q_i). Callers that
/// compute many independent products (batched decrypt) finish them together
/// with final_exponentiation_many.
field::Fp12 miller_loop_product(std::span<const std::pair<ec::G1, ec::G2>> pairs);

/// prod_i e(p_i, q_i) as a true multi-pairing: one shared f.square() per
/// Miller iteration across all pairs and a single final exponentiation — the
/// decrypt path computes e(C1, h^poly) * e(USK, C2) this way.
Gt pairing_product(std::span<const std::pair<ec::G1, ec::G2>> pairs);

/// Multi-pairing over precomputed G2 arguments (null g2 pointers are
/// rejected; infinity on either side skips the pair).
Gt pairing_product_prepared(std::span<const PairingInput> pairs);
Gt pairing_product_prepared(std::span<const PairingInputAffine> pairs);

/// Mixed multi-pairing: projective and normalized prepared arguments walk the
/// same shared-squaring Miller loop (decrypt pairs a cached affine h^p_i
/// table with a per-ciphertext projective C2 table this way).
Gt pairing_product_prepared(std::span<const PairingInput> pairs,
                            std::span<const PairingInputAffine> affine_pairs);

/// Miller-loop-only variant of the mixed multi-pairing, for callers that
/// batch the final exponentiation themselves (decrypt_batched). Same caveat
/// as miller_loop over G2PreparedAffine: the raw value carries the affine
/// tables' 1/a line scalings and is only meaningful modulo final
/// exponentiation.
field::Fp12 miller_loop_product_prepared(
    std::span<const PairingInput> pairs,
    std::span<const PairingInputAffine> affine_pairs);

}  // namespace ibbe::pairing
