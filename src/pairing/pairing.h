// Optimal-ate pairing e: G1 x G2 -> GT over BN254.
//
// Structure (Vercauteren 2010, for BN curves with u > 0):
//   f = f_{6u+2,Q}(P) . l_{[6u+2]Q, pi(Q)}(P) . l_{[6u+2]Q + pi(Q), -pi^2(Q)}(P)
//   e(P, Q) = f^((p^12 - 1)/r)
//
// The Miller loop runs in affine coordinates on the twist (Fp2 inversions are
// one Fp inversion each — an acceptable trade for straight-line clarity), and
// line evaluations are embedded sparsely into Fp12 as
//   l(P) = y_P - lambda x_P w + (lambda x_T - y_T) w^3.
//
// The final exponentiation factors as (p^6-1)(p^2+1) . (p^4-p^2+1)/r; the
// hard part uses cyclotomic squarings and is cross-checked in tests against
// the naive big-integer exponentiation.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "ec/curves.h"
#include "field/fp12.h"
#include "pairing/gt.h"

namespace ibbe::pairing {

/// Miller loop only (no final exponentiation). Returns 1 if either input is
/// the point at infinity.
field::Fp12 miller_loop(const ec::G1& p, const ec::G2& q);

/// (p^12 - 1)/r exponentiation: easy part + cyclotomic hard part.
field::Fp12 final_exponentiation(const field::Fp12& f);

/// Reference implementation of the hard part by naive big-integer
/// exponentiation; exposed for the cross-check tests.
field::Fp12 final_exponentiation_naive(const field::Fp12& f);

/// The full pairing.
Gt pairing(const ec::G1& p, const ec::G2& q);

/// prod_i e(p_i, q_i) with a shared final exponentiation — the decrypt path
/// computes e(C1, h^poly) * e(USK, C2) this way, halving its pairing cost.
Gt pairing_product(std::span<const std::pair<ec::G1, ec::G2>> pairs);

}  // namespace ibbe::pairing
