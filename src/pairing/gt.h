// GT: the order-r multiplicative target group of the pairing.
//
// Wraps an Fp12 value that is promised to lie in the cyclotomic subgroup
// (every constructor enforces provenance from a final exponentiation or GT
// operations), which makes inversion a conjugation and squaring cheap.
#pragma once

#include <span>

#include "field/fields.h"
#include "field/fp12.h"
#include "util/bytes.h"

namespace ibbe::pairing {

class Gt {
 public:
  /// Identity element.
  Gt() : v_(field::Fp12::one()) {}

  static Gt one() { return {}; }
  /// Wraps a value already in GT (output of a final exponentiation).
  static Gt from_fp12_unchecked(const field::Fp12& v) { return Gt(v); }

  [[nodiscard]] const field::Fp12& value() const { return v_; }
  [[nodiscard]] bool is_one() const { return v_.is_one(); }

  friend Gt operator*(const Gt& a, const Gt& b) { return Gt(a.v_ * b.v_); }
  Gt& operator*=(const Gt& o) { return *this = *this * o; }

  /// GT elements are unitary: x^(-1) = conj(x).
  [[nodiscard]] Gt inverse() const { return Gt(v_.conjugate()); }

  /// Exponentiation by a scalar in Zr, through the cyclotomic engine
  /// (pairing/gt_exp.h): 4-dimensional Frobenius decomposition plus a joint
  /// wNAF ladder, ~2.8x the plain square-and-multiply pow_cyclotomic. Relies
  /// on the class invariant that the wrapped value has order r; a value
  /// smuggled in through from_bytes that is outside GT yields an unspecified
  /// (but non-crashing) wrong result, exactly as pow_cyclotomic did.
  [[nodiscard]] Gt exp(const field::Fr& k) const;

  [[nodiscard]] util::Bytes to_bytes() const { return v_.to_bytes(); }
  static Gt from_bytes(std::span<const std::uint8_t> data) {
    return Gt(field::Fp12::from_bytes(data));
  }
  static constexpr std::size_t serialized_size = field::Fp12::serialized_size;

  /// SHA-256 of the canonical serialization; the "SHA(bk)" of the paper's
  /// group-key wrap y_p = AES(SHA(bk), gk).
  [[nodiscard]] std::array<std::uint8_t, 32> hash() const;

  friend bool operator==(const Gt&, const Gt&) = default;

 private:
  explicit Gt(const field::Fp12& v) : v_(v) {}

  field::Fp12 v_;
};

}  // namespace ibbe::pairing
