#include "pairing/gt_exp.h"

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "bigint/biguint.h"
#include "bigint/lattice4.h"
#include "ec/glv.h"
#include "ec/wnaf.h"
#include "field/fields.h"
#include "pairing/pairing.h"

namespace ibbe::pairing {

using bigint::BigUInt;
using bigint::U256;
using field::Fp12;
using field::Fp12Compressed;
using field::Fr;

namespace {

/// The BN parameter u = 4965661367192848881 (63 bits, positive), the same
/// constant the Miller loop and final exponentiation are built from.
constexpr std::uint64_t kBnU = 0x44e992b44a6909f1ULL;

// -------------------------------------------------------- NAF of u (static)

/// Signed NAF digits of u, least significant first (top digit is +1):
/// width-2 wNAF from the shared recoding helper IS the canonical NAF.
const std::vector<int>& u_naf_digits() {
  static const std::vector<int> digits =
      ec::wnaf_digits(U256::from_u64(kBnU), 2);
  return digits;
}

/// x^u over the compressed-squaring ladder; factored out of gt_pow_u so the
/// context self-checks can call it before the context finishes constructing.
Fp12 pow_u_impl(const Fp12& x) {
  const auto& naf = u_naf_digits();
  // Snapshot x^(2^i) (compressed) at every nonzero digit position i >= 1;
  // one batched decompression then recovers all of them together.
  std::vector<Fp12Compressed> snaps;
  std::vector<int> signs;
  snaps.reserve(naf.size() / 3 + 1);
  Fp12Compressed run = x.compress();
  for (std::size_t i = 1; i < naf.size(); ++i) {
    run = run.square();
    if (naf[i] != 0) {
      snaps.push_back(run);
      signs.push_back(naf[i]);
    }
  }
  std::vector<Fp12> full = Fp12Compressed::decompress_many(snaps);
  Fp12 acc = naf[0] == 1    ? x
             : naf[0] == -1 ? x.conjugate()
                            : Fp12::one();
  for (std::size_t j = 0; j < full.size(); ++j) {
    acc *= signs[j] > 0 ? full[j] : full[j].conjugate();
  }
  return acc;
}

/// Deterministic non-trivial member of the cyclotomic subgroup GPhi12(p):
/// the easy part f^((p^6-1)(p^2+1)) of a fixed element, computed with plain
/// field arithmetic so the self-checks need no pairing machinery.
Fp12 sample_cyclotomic() {
  using field::Fp;
  using field::Fp2;
  using field::Fp6;
  Fp6 c0(Fp2(Fp::from_u64(1), Fp::from_u64(2)),
         Fp2(Fp::from_u64(3), Fp::from_u64(4)),
         Fp2(Fp::from_u64(5), Fp::from_u64(6)));
  Fp6 c1(Fp2(Fp::from_u64(7), Fp::from_u64(8)),
         Fp2(Fp::from_u64(9), Fp::from_u64(10)),
         Fp2(Fp::from_u64(11), Fp::from_u64(12)));
  Fp12 f(c0, c1);
  Fp12 t = f.conjugate() * f.inverse();   // f^(p^6 - 1)
  return t.frobenius().frobenius() * t;   // ^(p^2 + 1)
}

// -------------------------------------------------- Karabina / NAF-of-u ctx

struct UCtx {
  UCtx() {
    const Fp12 x = sample_cyclotomic();
    if (x.is_one()) throw std::logic_error("gt_exp: degenerate sample element");
    if (x.compress().decompress() != x) {
      throw std::logic_error("gt_exp: Karabina decompression round-trip failed");
    }
    if (x.compress().square().decompress() != x.cyclotomic_square()) {
      throw std::logic_error("gt_exp: Karabina compressed squaring mismatch");
    }
    if (pow_u_impl(x) != x.pow_cyclotomic(U256::from_u64(kBnU))) {
      throw std::logic_error("gt_exp: NAF-of-u exponentiation mismatch");
    }
  }

  static const UCtx& get() {
    static const UCtx ctx;
    return ctx;
  }
};

// ----------------------------------------------------- 4-dim Frobenius ctx

struct Gt4Ctx {
  // The lattice itself (basis, determinant, Babai reciprocals, and the
  // integer recombination/shortness self-checks) is ec::bn_psi_lattice():
  // psi on G2 and the p-power Frobenius here share the eigenvalue
  // lambda = 6u^2 = p mod r, so both engines decompose against the SAME
  // basis. This context only adds the Fp12-specific facts.
  const bigint::Lattice4& lat;
  U256 lambda;  // p mod r = 6u^2

  Gt4Ctx() : lat(ec::bn_psi_lattice()), lambda(lat.lambda()) {
    const BigUInt u(kBnU);
    if (BigUInt::from_u256(lambda) != BigUInt(6) * u * u) {
      throw std::logic_error("gt_exp: lattice eigenvalue is not 6u^2");
    }

    // End-to-end self-checks on a genuine order-r element (one final
    // exponentiation; its u-ladders route through the UCtx above, which is
    // independent of this context, so there is no initialization cycle).
    const Fp12 x = final_exponentiation(sample_cyclotomic());
    if (x.is_one() || !x.pow_cyclotomic(Fr::modulus()).is_one()) {
      throw std::logic_error("gt_exp: sample element is not order r");
    }
    if (x.frobenius() != x.pow_cyclotomic(lambda)) {
      throw std::logic_error("gt_exp: Frobenius does not act as [lambda]");
    }
    for (const U256& k :
         {U256::one(), U256::from_u64(0xdeadbeefcafef00dULL),
          bigint::mod(U256{{~0ull, ~0ull, ~0ull, ~0ull}}, Fr::modulus())}) {
      if (pow(x, k) != x.pow_cyclotomic(k)) {
        throw std::logic_error("gt_exp: 4-dim exponentiation mismatch");
      }
    }
  }

  [[nodiscard]] Gt4Decomp decompose(const U256& k) const {
    return lat.decompose(k);
  }

  /// The 4-way joint wNAF ladder; callable from the constructor self-check.
  [[nodiscard]] Fp12 pow(const Fp12& x, const U256& k) const {
    if (k.is_zero()) return Fp12::one();
    Gt4Decomp d = decompose(k);

    constexpr unsigned kWindow = 4;
    std::array<std::vector<int>, 4> digits;
    std::size_t len = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      digits[i] = ec::wnaf_digits(d.k[i], kWindow);
      len = std::max(len, digits[i].size());
    }
    if (len == 0) return Fp12::one();

    // Odd-multiple tables: tbl[0] costs one squaring and three
    // multiplications; the other three are Frobenius images of it
    // (pi(x^m) = pi(x)^m, one cheap map per entry). Sub-scalar signs fold
    // into the digit sign at application time (conjugation is free).
    std::array<std::array<Fp12, 4>, 4> tbl;
    tbl[0][0] = x;
    Fp12 x2 = x.cyclotomic_square();
    for (std::size_t m = 1; m < 4; ++m) tbl[0][m] = tbl[0][m - 1] * x2;
    for (std::size_t i = 1; i < 4; ++i) {
      for (std::size_t m = 0; m < 4; ++m) tbl[i][m] = tbl[i - 1][m].frobenius();
    }

    Fp12 acc = Fp12::one();
    bool started = false;
    for (std::size_t pos = len; pos-- > 0;) {
      if (started) acc = acc.cyclotomic_square();
      for (std::size_t i = 0; i < 4; ++i) {
        if (pos >= digits[i].size() || digits[i][pos] == 0) continue;
        int v = digits[i][pos];
        bool negate = (v < 0) != d.neg[i];
        const Fp12& entry = tbl[i][static_cast<std::size_t>(v < 0 ? -v : v) / 2];
        acc *= negate ? entry.conjugate() : entry;
        started = true;
      }
    }
    return acc;
  }

  static const Gt4Ctx& get() {
    static const Gt4Ctx ctx;
    return ctx;
  }
};

}  // namespace

Fp12 gt_pow(const Fp12& x, const U256& k) {
  const U256 kr = bigint::cmp(k, Fr::modulus()) < 0
                      ? k
                      : bigint::mod(k, Fr::modulus());
  return Gt4Ctx::get().pow(x, kr);
}

Fp12 gt_pow_u(const Fp12& x) {
  UCtx::get();
  return pow_u_impl(x);
}

const U256& gt_lambda() { return Gt4Ctx::get().lambda; }

Gt4Decomp decompose_gt(const U256& k) {
  if (bigint::cmp(k, Fr::modulus()) >= 0) {
    throw std::invalid_argument("decompose_gt: scalar not reduced mod r");
  }
  return Gt4Ctx::get().decompose(k);
}

}  // namespace ibbe::pairing
