#include "pairing/gt_exp.h"

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "bigint/biguint.h"
#include "bigint/int512.h"
#include "ec/wnaf.h"
#include "field/fields.h"
#include "pairing/pairing.h"

namespace ibbe::pairing {

using bigint::BigUInt;
using bigint::Limbs8;
using bigint::S512;
using bigint::U256;
using field::Fp12;
using field::Fp12Compressed;
using field::Fr;

namespace {

/// The BN parameter u = 4965661367192848881 (63 bits, positive), the same
/// constant the Miller loop and final exponentiation are built from.
constexpr std::uint64_t kBnU = 0x44e992b44a6909f1ULL;

// Init-time signed BigUInt arithmetic comes from the shared decomposition
// toolkit (bigint/int512.h, also used by ec/glv.cpp).
using bigint::SBig;
using bigint::sbig_add;
using bigint::sbig_mod;
using bigint::sbig_mul;
using bigint::sbig_sub;

// -------------------------------------------------------- NAF of u (static)

/// Signed NAF digits of u, least significant first (top digit is +1):
/// width-2 wNAF from the shared recoding helper IS the canonical NAF.
const std::vector<int>& u_naf_digits() {
  static const std::vector<int> digits =
      ec::wnaf_digits(U256::from_u64(kBnU), 2);
  return digits;
}

/// x^u over the compressed-squaring ladder; factored out of gt_pow_u so the
/// context self-checks can call it before the context finishes constructing.
Fp12 pow_u_impl(const Fp12& x) {
  const auto& naf = u_naf_digits();
  // Snapshot x^(2^i) (compressed) at every nonzero digit position i >= 1;
  // one batched decompression then recovers all of them together.
  std::vector<Fp12Compressed> snaps;
  std::vector<int> signs;
  snaps.reserve(naf.size() / 3 + 1);
  Fp12Compressed run = x.compress();
  for (std::size_t i = 1; i < naf.size(); ++i) {
    run = run.square();
    if (naf[i] != 0) {
      snaps.push_back(run);
      signs.push_back(naf[i]);
    }
  }
  std::vector<Fp12> full = Fp12Compressed::decompress_many(snaps);
  Fp12 acc = naf[0] == 1    ? x
             : naf[0] == -1 ? x.conjugate()
                            : Fp12::one();
  for (std::size_t j = 0; j < full.size(); ++j) {
    acc *= signs[j] > 0 ? full[j] : full[j].conjugate();
  }
  return acc;
}

/// Deterministic non-trivial member of the cyclotomic subgroup GPhi12(p):
/// the easy part f^((p^6-1)(p^2+1)) of a fixed element, computed with plain
/// field arithmetic so the self-checks need no pairing machinery.
Fp12 sample_cyclotomic() {
  using field::Fp;
  using field::Fp2;
  using field::Fp6;
  Fp6 c0(Fp2(Fp::from_u64(1), Fp::from_u64(2)),
         Fp2(Fp::from_u64(3), Fp::from_u64(4)),
         Fp2(Fp::from_u64(5), Fp::from_u64(6)));
  Fp6 c1(Fp2(Fp::from_u64(7), Fp::from_u64(8)),
         Fp2(Fp::from_u64(9), Fp::from_u64(10)),
         Fp2(Fp::from_u64(11), Fp::from_u64(12)));
  Fp12 f(c0, c1);
  Fp12 t = f.conjugate() * f.inverse();   // f^(p^6 - 1)
  return t.frobenius().frobenius() * t;   // ^(p^2 + 1)
}

// -------------------------------------------------- Karabina / NAF-of-u ctx

struct UCtx {
  UCtx() {
    const Fp12 x = sample_cyclotomic();
    if (x.is_one()) throw std::logic_error("gt_exp: degenerate sample element");
    if (x.compress().decompress() != x) {
      throw std::logic_error("gt_exp: Karabina decompression round-trip failed");
    }
    if (x.compress().square().decompress() != x.cyclotomic_square()) {
      throw std::logic_error("gt_exp: Karabina compressed squaring mismatch");
    }
    if (pow_u_impl(x) != x.pow_cyclotomic(U256::from_u64(kBnU))) {
      throw std::logic_error("gt_exp: NAF-of-u exponentiation mismatch");
    }
  }

  static const UCtx& get() {
    static const UCtx ctx;
    return ctx;
  }
};

// ----------------------------------------------------- 4-dim Frobenius ctx

struct Gt4Ctx {
  U256 lambda;  // p mod r = 6u^2

  // LLL-reduced basis of {(a0..a3) : sum a_i lambda^i = 0 mod r}, rows b_j;
  // every entry is +-u, +-(u+1), +-2u or +-(2u+1), so the whole basis is
  // pinned by the curve parameter. Determinant is -r (index-r sublattice).
  struct Entry {
    std::uint64_t mag;
    bool neg;
  };
  std::array<std::array<Entry, 4>, 4> basis;

  // Babai round-off reciprocals: ghat[j] = round(2^256 |C_j0| / r) with
  // C_j0 the (j,0) cofactor of the basis matrix. The Babai coefficient is
  // c_j = k C_j0 / det with det = -r, so its sign is the NEGATED cofactor
  // sign: c_j = sign_j * round(k * ghat[j] / 2^256), sign_j = -sign(C_j0).
  // The 2^-256 Barrett slack is far below the half-integer rounding margin
  // for k < 2^254.
  std::array<U256, 4> ghat;
  std::array<bool, 4> csign;

  Gt4Ctx() {
    const BigUInt n = BigUInt::from_u256(Fr::modulus());
    const BigUInt u(kBnU);
    lambda = (BigUInt(6) * u * u).to_u256();

    const std::uint64_t U = kBnU;
    basis = {{
        {{{2 * U, false}, {U + 1, false}, {U, true}, {U, false}}},
        {{{U, true}, {U, false}, {U, true}, {2 * U + 1, true}}},
        {{{U + 1, false}, {U, false}, {U, false}, {2 * U, true}}},
        {{{2 * U + 1, false}, {U, true}, {U + 1, true}, {U, true}}},
    }};

    // Every row must be a lattice vector: sum_i b_ji lambda^i = 0 (mod r).
    const BigUInt lam = BigUInt::from_u256(lambda);
    std::array<BigUInt, 4> lam_pow{BigUInt(1), lam, lam * lam % n,
                                   lam * lam % n * lam % n};
    for (const auto& row : basis) {
      SBig acc;
      for (int i = 0; i < 4; ++i) {
        acc = sbig_add(acc, sbig_mul({BigUInt(row[i].mag), row[i].neg},
                                     {lam_pow[static_cast<std::size_t>(i)],
                                      false}));
      }
      if (!sbig_mod(acc, n).is_zero()) {
        throw std::logic_error("gt_exp: basis row is not in the lattice");
      }
    }

    // Cofactors C_j0 (for the first column) and the determinant, by direct
    // 3x3 minor expansion over signed BigUInt.
    auto minor3 = [&](int drop_row) {
      std::array<std::array<SBig, 3>, 3> m;
      int rr = 0;
      for (int r_i = 0; r_i < 4; ++r_i) {
        if (r_i == drop_row) continue;
        for (int c_i = 1; c_i < 4; ++c_i) {
          m[static_cast<std::size_t>(rr)][static_cast<std::size_t>(c_i - 1)] =
              {BigUInt(basis[static_cast<std::size_t>(r_i)]
                            [static_cast<std::size_t>(c_i)].mag),
               basis[static_cast<std::size_t>(r_i)]
                    [static_cast<std::size_t>(c_i)].neg};
        }
        ++rr;
      }
      SBig det = sbig_sub(sbig_mul(m[0][0], sbig_sub(sbig_mul(m[1][1], m[2][2]),
                                                     sbig_mul(m[1][2], m[2][1]))),
                          sbig_mul(m[0][1], sbig_sub(sbig_mul(m[1][0], m[2][2]),
                                                     sbig_mul(m[1][2], m[2][0]))));
      return sbig_add(det,
                      sbig_mul(m[0][2], sbig_sub(sbig_mul(m[1][0], m[2][1]),
                                                 sbig_mul(m[1][1], m[2][0]))));
    };

    SBig det;
    for (int j = 0; j < 4; ++j) {
      SBig cof = minor3(j);
      if (j % 2 == 1) cof.neg = !cof.neg;  // (-1)^(j+0)
      // ghat[j] = round(2^256 |C_j0| / r)
      auto [quo, rem] = BigUInt::divmod(cof.v << 256, n);
      if (rem + rem >= n) quo = quo + BigUInt(1);
      ghat[static_cast<std::size_t>(j)] = quo.to_u256();
      csign[static_cast<std::size_t>(j)] = !cof.neg;
      // det = sum_j b_j0 C_j0
      det = sbig_add(det, sbig_mul({BigUInt(basis[static_cast<std::size_t>(j)]
                                                 [0].mag),
                                    basis[static_cast<std::size_t>(j)][0].neg},
                                   cof));
    }
    if (det.v != n) {
      throw std::logic_error("gt_exp: basis determinant is not +-r");
    }

    // End-to-end self-checks on a genuine order-r element (one final
    // exponentiation; its u-ladders route through the UCtx above, which is
    // independent of this context, so there is no initialization cycle).
    const Fp12 x = final_exponentiation(sample_cyclotomic());
    if (x.is_one() || !x.pow_cyclotomic(Fr::modulus()).is_one()) {
      throw std::logic_error("gt_exp: sample element is not order r");
    }
    if (x.frobenius() != x.pow_cyclotomic(lambda)) {
      throw std::logic_error("gt_exp: Frobenius does not act as [lambda]");
    }
    for (const U256& k :
         {U256::one(), U256::from_u64(0xdeadbeefcafef00dULL),
          bigint::mod(U256{{~0ull, ~0ull, ~0ull, ~0ull}}, Fr::modulus())}) {
      Gt4Decomp d = decompose(k);
      SBig lhs;
      for (int i = 0; i < 4; ++i) {
        auto idx = static_cast<std::size_t>(i);
        if (d.k[idx].bit_length() > 72) {
          throw std::logic_error("gt_exp: decomposition is not short");
        }
        lhs = sbig_add(lhs, sbig_mul({BigUInt::from_u256(d.k[idx]), d.neg[idx]},
                                     {lam_pow[idx], false}));
      }
      if (sbig_mod(lhs, n) != BigUInt::from_u256(k)) {
        throw std::logic_error("gt_exp: decomposition self-check failed");
      }
      if (pow(x, k) != x.pow_cyclotomic(k)) {
        throw std::logic_error("gt_exp: 4-dim exponentiation mismatch");
      }
    }
  }

  /// Babai round-off: c_j from the precomputed reciprocals, then
  /// eps_i = k delta_i0 - sum_j c_j b_ji over signed 512-bit limbs.
  [[nodiscard]] Gt4Decomp decompose(const U256& k) const {
    std::array<U256, 4> c;
    for (std::size_t j = 0; j < 4; ++j) {
      c[j] = bigint::round_shift_512(bigint::mul_wide(k, ghat[j]), 256);
    }
    Gt4Decomp d;
    for (std::size_t i = 0; i < 4; ++i) {
      S512 eps = i == 0 ? bigint::s512_from_u256(k) : S512{};
      for (std::size_t j = 0; j < 4; ++j) {
        const Entry& b = basis[j][i];
        S512 term{bigint::mul_wide(c[j], U256::from_u64(b.mag)),
                  // sign of -c_j * b_ji with sign(c_j) = csign[j]
                  !(csign[j] != b.neg)};
        eps = bigint::signed_add(eps, term);
      }
      if (!bigint::s512_to_u256(eps, d.k[i])) {
        throw std::logic_error("gt_exp: decomposition out of range");
      }
      d.neg[i] = eps.neg;
    }
    return d;
  }

  /// The 4-way joint wNAF ladder; callable from the constructor self-check.
  [[nodiscard]] Fp12 pow(const Fp12& x, const U256& k) const {
    if (k.is_zero()) return Fp12::one();
    Gt4Decomp d = decompose(k);

    constexpr unsigned kWindow = 4;
    std::array<std::vector<int>, 4> digits;
    std::size_t len = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      digits[i] = ec::wnaf_digits(d.k[i], kWindow);
      len = std::max(len, digits[i].size());
    }
    if (len == 0) return Fp12::one();

    // Odd-multiple tables: tbl[0] costs one squaring and three
    // multiplications; the other three are Frobenius images of it
    // (pi(x^m) = pi(x)^m, one cheap map per entry). Sub-scalar signs fold
    // into the digit sign at application time (conjugation is free).
    std::array<std::array<Fp12, 4>, 4> tbl;
    tbl[0][0] = x;
    Fp12 x2 = x.cyclotomic_square();
    for (std::size_t m = 1; m < 4; ++m) tbl[0][m] = tbl[0][m - 1] * x2;
    for (std::size_t i = 1; i < 4; ++i) {
      for (std::size_t m = 0; m < 4; ++m) tbl[i][m] = tbl[i - 1][m].frobenius();
    }

    Fp12 acc = Fp12::one();
    bool started = false;
    for (std::size_t pos = len; pos-- > 0;) {
      if (started) acc = acc.cyclotomic_square();
      for (std::size_t i = 0; i < 4; ++i) {
        if (pos >= digits[i].size() || digits[i][pos] == 0) continue;
        int v = digits[i][pos];
        bool negate = (v < 0) != d.neg[i];
        const Fp12& entry = tbl[i][static_cast<std::size_t>(v < 0 ? -v : v) / 2];
        acc *= negate ? entry.conjugate() : entry;
        started = true;
      }
    }
    return acc;
  }

  static const Gt4Ctx& get() {
    static const Gt4Ctx ctx;
    return ctx;
  }
};

}  // namespace

Fp12 gt_pow(const Fp12& x, const U256& k) {
  const U256 kr = bigint::cmp(k, Fr::modulus()) < 0
                      ? k
                      : bigint::mod(k, Fr::modulus());
  return Gt4Ctx::get().pow(x, kr);
}

Fp12 gt_pow_u(const Fp12& x) {
  UCtx::get();
  return pow_u_impl(x);
}

const U256& gt_lambda() { return Gt4Ctx::get().lambda; }

Gt4Decomp decompose_gt(const U256& k) {
  if (bigint::cmp(k, Fr::modulus()) >= 0) {
    throw std::invalid_argument("decompose_gt: scalar not reduced mod r");
  }
  return Gt4Ctx::get().decompose(k);
}

}  // namespace ibbe::pairing
