// Cyclotomic exponentiation engine for the pairing target group.
//
// Two exponentiation strategies, both built on the structure the final
// exponentiation leaves behind:
//
//  * `gt_pow` — GLS-style 4-dimensional decomposition for ORDER-r elements
//    (true GT members). The p-power Frobenius pi acts on the order-r
//    subgroup as exponentiation by lambda = p mod r = 6u^2, and lambda
//    satisfies the cyclotomic quartic lambda^4 - lambda^2 + 1 = 0 (mod r),
//    so a 254-bit exponent splits into four ~65-bit sub-scalars over the
//    bases {x, pi(x), pi^2(x), pi^3(x)} (Babai round-off through
//    bigint/lattice4.h against ec::bn_psi_lattice() — the exact lattice the
//    4-dim G2 GLS split uses, since psi shares the eigenvalue). One joint
//    width-4 wNAF
//    ladder then costs ~66 cyclotomic squarings instead of ~254, with
//    conjugation as the free inversion for negative digits.
//
//  * `gt_pow_u` — exponentiation by the fixed BN parameter u for ANY element
//    of the cyclotomic subgroup GPhi12(p) (easy-part outputs included, where
//    the 4-dim split is NOT valid because the element order exceeds r).
//    Walks the signed NAF of u over Karabina compressed squarings,
//    snapshotting the compressed ladder at nonzero digits and recovering all
//    snapshots with one batched decompression (field/fp12.h).
//
// All derived constants (the lattice basis, its determinant, the rounding
// reciprocals, the NAF of u, the Karabina formulas) are self-checked at
// first use against the naive pow / cyclotomic_square oracles, so a
// transcription error throws at startup instead of corrupting ciphertexts.
#pragma once

#include "bigint/lattice4.h"
#include "bigint/u256.h"
#include "field/fp12.h"

namespace ibbe::pairing {

/// x^k for x in the order-r subgroup of Fp12 (outputs of a final
/// exponentiation and products thereof). k is reduced mod r. For elements of
/// the cyclotomic subgroup that are NOT order r, use Fp12::pow_cyclotomic.
field::Fp12 gt_pow(const field::Fp12& x, const bigint::U256& k);

/// x^u (u = the BN254 curve parameter, 63 bits) for x anywhere in the
/// cyclotomic subgroup GPhi12(p). The final exponentiation's hard part runs
/// its three u-ladders through this.
field::Fp12 gt_pow_u(const field::Fp12& x);

/// The GT Frobenius eigenvalue lambda = p mod r = 6u^2. Exposed for tests.
const bigint::U256& gt_lambda();

/// Four-dimensional decomposition k = sum_i (-1)^neg[i] k[i] lambda^i
/// (mod r) with k[i] < ~2^66, against the psi/Frobenius lattice shared with
/// the G2 engine (ec::bn_psi_lattice). Exposed for tests; requires k < r.
using Gt4Decomp = bigint::Decomp4;
Gt4Decomp decompose_gt(const bigint::U256& k);

}  // namespace ibbe::pairing
