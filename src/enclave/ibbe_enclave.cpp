#include "enclave/ibbe_enclave.h"

#include <algorithm>
#include <stdexcept>

#include "crypto/gcm.h"
#include "crypto/sha256.h"
#include "pki/ecies.h"
#include "util/hex.h"
#include "util/thread_pool.h"

namespace ibbe::enclave {

using core::BroadcastCiphertext;
using core::Identity;
using pairing::Gt;

util::Bytes PartitionCiphertext::to_bytes() const {
  util::ByteWriter w;
  w.raw(ct.to_bytes());
  w.blob(wrapped_gk);
  w.blob(nonce);
  return w.take();
}

PartitionCiphertext PartitionCiphertext::from_bytes(
    std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  PartitionCiphertext out;
  out.ct = BroadcastCiphertext::from_bytes(
      r.raw(BroadcastCiphertext::serialized_size));
  out.wrapped_gk = r.blob();
  out.nonce = r.blob();
  r.expect_end();
  return out;
}

util::Bytes FreshnessToken::signed_payload(const std::string& group) const {
  util::ByteWriter w;
  w.str("ibbe-sgx:freshness:v1");
  w.str(group);
  w.u64(counter);
  w.u64(gk_epoch);
  w.raw(log_head);
  return w.take();
}

bool FreshnessToken::verify(const ec::P256Point& enclave_identity,
                            const std::string& group) const {
  if (counter == 0) return false;  // 0 is the "no attestation" sentinel
  return pki::ecdsa_verify(enclave_identity, signed_payload(group), signature);
}

util::Bytes FreshnessToken::to_bytes() const {
  util::ByteWriter w;
  w.u64(counter);
  w.u64(gk_epoch);
  w.raw(log_head);
  w.raw(signature.to_bytes());
  return w.take();
}

FreshnessToken FreshnessToken::from_bytes(std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  FreshnessToken token;
  token.counter = r.u64();
  token.gk_epoch = r.u64();
  auto head = r.raw(32);
  std::copy(head.begin(), head.end(), token.log_head.begin());
  token.signature =
      pki::EcdsaSignature::from_bytes(r.raw(pki::EcdsaSignature::serialized_size));
  r.expect_end();
  return token;
}

sgx::EnclaveImage IbbeEnclave::image() {
  sgx::EnclaveImage img;
  img.name = "ibbe-sgx";
  img.version = "1.0.0";
  // Stand-in for the hash of the enclave's code pages.
  auto digest = crypto::Sha256::hash("ibbe-sgx enclave code v1.0.0");
  img.code_hash.assign(digest.begin(), digest.end());
  return img;
}

IbbeEnclave::IbbeEnclave(sgx::EnclavePlatform& platform,
                         std::size_t max_partition_size)
    : sgx::EnclaveBase(platform, image()),
      keys_(core::setup(max_partition_size, enclave_rng())),
      identity_key_(pki::EcdsaKeyPair::generate(enclave_rng())) {
  // The dominant long-lived enclave allocation is the PK power table; the
  // MSK and identity key are constant-size.
  epc_alloc(keys_.pk.h_powers.size() * ec::g2_serialized_size + 4096);
}

IbbeEnclave::IbbeEnclave(sgx::EnclavePlatform& platform,
                         std::size_t max_partition_size, std::uint64_t rng_seed)
    : sgx::EnclaveBase(platform, image(), rng_seed),
      keys_(core::setup(max_partition_size, enclave_rng())),
      identity_key_(pki::EcdsaKeyPair::generate(enclave_rng())) {
  epc_alloc(keys_.pk.h_powers.size() * ec::g2_serialized_size + 4096);
}

util::Bytes IbbeEnclave::identity_public_key() const {
  return identity_key_.public_key_bytes();
}

sgx::Quote IbbeEnclave::attestation_quote() const {
  auto digest = crypto::Sha256::hash(identity_key_.public_key_bytes());
  return generate_quote(util::Bytes(digest.begin(), digest.end()));
}

util::Bytes IbbeEnclave::wrap_gk(const Gt& bk, std::span<const std::uint8_t> gk,
                                 const util::Bytes& nonce) const {
  // y_p = AES-256-GCM(key = SHA-256(bk), gk) — the paper's
  // sgx_aes(sgx_sha(b_p), gk), upgraded from raw AES to an AEAD so clients
  // can detect wrong/corrupted partition keys.
  auto key = bk.hash();
  crypto::Aes256Gcm gcm(key);
  return gcm.seal(nonce, gk);
}

namespace {

/// The randomness one partition's worth of enclaved work consumes: the IBBE
/// randomizer k and the y_p GCM nonce. Drawn on the ecall thread, in
/// partition order, BEFORE the deterministic math fans out to the pool.
struct PartitionDraw {
  field::Fr k;
  util::Bytes nonce;
};

PartitionDraw draw_partition_randomness(crypto::Drbg& rng) {
  PartitionDraw d;
  d.k = core::random_nonzero_fr(rng);
  d.nonce = rng.bytes(crypto::Aes256Gcm::nonce_size);
  return d;
}

}  // namespace

IbbeEnclave::GroupCreation IbbeEnclave::ecall_create_group(
    std::span<const std::vector<Identity>> partitions) {
  EcallScope scope(*this);
  if (partitions.empty()) {
    throw std::invalid_argument("ecall_create_group: no partitions");
  }
  util::Bytes gk = enclave_rng().bytes(group_key_size);
  std::vector<PartitionDraw> draws(partitions.size());
  for (auto& d : draws) d = draw_partition_randomness(enclave_rng());

  GroupCreation out;
  out.partitions.resize(partitions.size());
  util::ThreadPool::global().parallel_for(
      0, partitions.size(), 1, [&](std::size_t i) {
        auto enc = core::encrypt_with_msk(keys_.msk, keys_.pk, partitions[i],
                                          draws[i].k);
        PartitionCiphertext& pc = out.partitions[i];
        pc.ct = enc.ct;
        pc.nonce = std::move(draws[i].nonce);
        pc.wrapped_gk = wrap_gk(enc.bk, gk, pc.nonce);
      });
  out.sealed_gk = seal(gk);
  return out;
}

BroadcastCiphertext IbbeEnclave::ecall_add_user_to_partition(
    const BroadcastCiphertext& ct, const Identity& added) {
  EcallScope scope(*this);
  BroadcastCiphertext updated = ct;
  core::add_user_with_msk(keys_.msk, updated, added);
  return updated;
}

PartitionCiphertext IbbeEnclave::ecall_create_partition(
    std::span<const Identity> members, const sgx::SealedBlob& sealed_gk) {
  EcallScope scope(*this);
  auto gk = unseal(sealed_gk);
  if (!gk) throw std::invalid_argument("ecall_create_partition: bad sealed gk");
  auto draw = draw_partition_randomness(enclave_rng());
  auto enc = core::encrypt_with_msk(keys_.msk, keys_.pk, members, draw.k);
  PartitionCiphertext pc;
  pc.ct = enc.ct;
  pc.nonce = std::move(draw.nonce);
  pc.wrapped_gk = wrap_gk(enc.bk, *gk, pc.nonce);
  return pc;
}

IbbeEnclave::RemovalResult IbbeEnclave::ecall_remove_user(
    const BroadcastCiphertext& hosting_ct,
    std::span<const BroadcastCiphertext> other_partitions,
    const Identity& removed) {
  EcallScope scope(*this);
  // Algorithm 3, line 3: fresh group key (revocation re-keys everything).
  util::Bytes gk = enclave_rng().bytes(group_key_size);
  std::vector<PartitionDraw> draws(other_partitions.size() + 1);
  for (auto& d : draws) d = draw_partition_randomness(enclave_rng());

  RemovalResult out;
  out.partitions.resize(other_partitions.size() + 1);
  // Slot 0: line 4-5, the O(1) removal on the hosting partition; slots 1..n:
  // lines 6-8, the constant-time re-key of every other partition. Randomness
  // was drawn above; the fan-out is pure arithmetic into pre-sized slots.
  util::ThreadPool::global().parallel_for(
      0, out.partitions.size(), 1, [&](std::size_t i) {
        auto enc = (i == 0)
                       ? core::remove_user_with_msk(keys_.msk, keys_.pk,
                                                    hosting_ct, removed,
                                                    draws[0].k)
                       : core::rekey(keys_.pk, other_partitions[i - 1],
                                     draws[i].k);
        PartitionCiphertext& pc = out.partitions[i];
        pc.ct = enc.ct;
        pc.nonce = std::move(draws[i].nonce);
        pc.wrapped_gk = wrap_gk(enc.bk, gk, pc.nonce);
      });

  // Line 9: seal the new group key.
  out.sealed_gk = seal(gk);
  return out;
}

IbbeEnclave::RemovalResult IbbeEnclave::ecall_remove_users(
    std::span<const BatchRemovalSpec> hosts,
    std::span<const BroadcastCiphertext> other_partitions) {
  EcallScope scope(*this);
  util::Bytes gk = enclave_rng().bytes(group_key_size);
  const std::size_t total = hosts.size() + other_partitions.size();
  std::vector<PartitionDraw> draws(total);
  for (auto& d : draws) d = draw_partition_randomness(enclave_rng());

  RemovalResult out;
  out.partitions.resize(total);
  // Slots [0, hosts.size()): batch removal per hosting partition; the rest:
  // constant-time re-keys, in the input order.
  util::ThreadPool::global().parallel_for(0, total, 1, [&](std::size_t i) {
    auto enc = (i < hosts.size())
                   ? core::remove_users_with_msk(keys_.msk, keys_.pk,
                                                 hosts[i].ct, hosts[i].removed,
                                                 draws[i].k)
                   : core::rekey(keys_.pk,
                                 other_partitions[i - hosts.size()],
                                 draws[i].k);
    PartitionCiphertext& pc = out.partitions[i];
    pc.ct = enc.ct;
    pc.nonce = std::move(draws[i].nonce);
    pc.wrapped_gk = wrap_gk(enc.bk, gk, pc.nonce);
  });
  out.sealed_gk = seal(gk);
  return out;
}

core::UserSecretKey IbbeEnclave::ecall_extract_user_key(const Identity& id) {
  EcallScope scope(*this);
  return core::extract_user_key(keys_.msk, id);
}

util::Bytes IbbeEnclave::ecall_provision_user_key(
    const Identity& id, std::span<const std::uint8_t> user_p256_pub) {
  EcallScope scope(*this);
  auto usk = core::extract_user_key(keys_.msk, id);
  ec::P256Point recipient = ec::p256_from_bytes(user_p256_pub);
  return pki::ecies_encrypt(recipient, usk.to_bytes(), enclave_rng());
}

PartitionCiphertext IbbeEnclave::ecall_rekey_partition(
    const BroadcastCiphertext& ct, const sgx::SealedBlob& sealed_gk) {
  EcallScope scope(*this);
  auto gk = unseal(sealed_gk);
  if (!gk) throw std::invalid_argument("ecall_rekey_partition: bad sealed gk");
  auto draw = draw_partition_randomness(enclave_rng());
  auto re = core::rekey(keys_.pk, ct, draw.k);
  PartitionCiphertext pc;
  pc.ct = re.ct;
  pc.nonce = std::move(draw.nonce);
  pc.wrapped_gk = wrap_gk(re.bk, *gk, pc.nonce);
  return pc;
}

std::string IbbeEnclave::freshness_counter_name(const std::string& group) const {
  // Scoped by measurement so another enclave build on the same platform has
  // an independent counter space (like PSE counters owned per enclave).
  return "fresh:" + util::to_hex(measurement()) + ":" + group;
}

FreshnessToken IbbeEnclave::ecall_attest_freshness(
    const std::string& group, std::uint64_t floor, std::uint64_t gk_epoch,
    const std::array<std::uint8_t, 32>& log_head) {
  EcallScope scope(*this);
  FreshnessToken token;
  auto confirmed = platform().counter_read(freshness_counter_name(group));
  // One above everything committed that we know of: the platform's confirmed
  // counter AND the caller's floor (the counter of the view it last synced —
  // covers a peer admin's commits confirmed on another platform).
  token.counter = std::max(confirmed, floor) + 1;
  token.gk_epoch = gk_epoch;
  token.log_head = log_head;
  token.signature = identity_key_.sign(token.signed_payload(group));
  return token;
}

void IbbeEnclave::ecall_confirm_freshness(const std::string& group,
                                          std::uint64_t counter) {
  EcallScope scope(*this);
  platform().counter_advance(freshness_counter_name(group), counter);
}

std::uint64_t IbbeEnclave::ecall_freshness_floor(const std::string& group) const {
  EcallScope scope(*this);
  return platform().counter_read(freshness_counter_name(group));
}

}  // namespace ibbe::enclave
