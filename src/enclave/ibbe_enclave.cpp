#include "enclave/ibbe_enclave.h"

#include <stdexcept>

#include "crypto/gcm.h"
#include "crypto/sha256.h"
#include "pki/ecies.h"

namespace ibbe::enclave {

using core::BroadcastCiphertext;
using core::Identity;
using pairing::Gt;

util::Bytes PartitionCiphertext::to_bytes() const {
  util::ByteWriter w;
  w.raw(ct.to_bytes());
  w.blob(wrapped_gk);
  w.blob(nonce);
  return w.take();
}

PartitionCiphertext PartitionCiphertext::from_bytes(
    std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  PartitionCiphertext out;
  out.ct = BroadcastCiphertext::from_bytes(
      r.raw(BroadcastCiphertext::serialized_size));
  out.wrapped_gk = r.blob();
  out.nonce = r.blob();
  r.expect_end();
  return out;
}

sgx::EnclaveImage IbbeEnclave::image() {
  sgx::EnclaveImage img;
  img.name = "ibbe-sgx";
  img.version = "1.0.0";
  // Stand-in for the hash of the enclave's code pages.
  auto digest = crypto::Sha256::hash("ibbe-sgx enclave code v1.0.0");
  img.code_hash.assign(digest.begin(), digest.end());
  return img;
}

IbbeEnclave::IbbeEnclave(sgx::EnclavePlatform& platform,
                         std::size_t max_partition_size)
    : sgx::EnclaveBase(platform, image()),
      keys_(core::setup(max_partition_size, enclave_rng())),
      identity_key_(pki::EcdsaKeyPair::generate(enclave_rng())) {
  // The dominant long-lived enclave allocation is the PK power table; the
  // MSK and identity key are constant-size.
  epc_alloc(keys_.pk.h_powers.size() * ec::g2_serialized_size + 4096);
}

util::Bytes IbbeEnclave::identity_public_key() const {
  return identity_key_.public_key_bytes();
}

sgx::Quote IbbeEnclave::attestation_quote() const {
  auto digest = crypto::Sha256::hash(identity_key_.public_key_bytes());
  return generate_quote(util::Bytes(digest.begin(), digest.end()));
}

util::Bytes IbbeEnclave::wrap_gk(const Gt& bk, std::span<const std::uint8_t> gk,
                                 util::Bytes& nonce_out) {
  // y_p = AES-256-GCM(key = SHA-256(bk), gk) — the paper's
  // sgx_aes(sgx_sha(b_p), gk), upgraded from raw AES to an AEAD so clients
  // can detect wrong/corrupted partition keys.
  auto key = bk.hash();
  crypto::Aes256Gcm gcm(key);
  nonce_out = enclave_rng().bytes(crypto::Aes256Gcm::nonce_size);
  return gcm.seal(nonce_out, gk);
}

IbbeEnclave::GroupCreation IbbeEnclave::ecall_create_group(
    std::span<const std::vector<Identity>> partitions) {
  EcallScope scope(*this);
  if (partitions.empty()) {
    throw std::invalid_argument("ecall_create_group: no partitions");
  }
  util::Bytes gk = enclave_rng().bytes(group_key_size);

  GroupCreation out;
  out.partitions.reserve(partitions.size());
  for (const auto& members : partitions) {
    auto enc = core::encrypt_with_msk(keys_.msk, keys_.pk, members, enclave_rng());
    PartitionCiphertext pc;
    pc.ct = enc.ct;
    pc.wrapped_gk = wrap_gk(enc.bk, gk, pc.nonce);
    out.partitions.push_back(std::move(pc));
  }
  out.sealed_gk = seal(gk);
  return out;
}

BroadcastCiphertext IbbeEnclave::ecall_add_user_to_partition(
    const BroadcastCiphertext& ct, const Identity& added) {
  EcallScope scope(*this);
  BroadcastCiphertext updated = ct;
  core::add_user_with_msk(keys_.msk, updated, added);
  return updated;
}

PartitionCiphertext IbbeEnclave::ecall_create_partition(
    std::span<const Identity> members, const sgx::SealedBlob& sealed_gk) {
  EcallScope scope(*this);
  auto gk = unseal(sealed_gk);
  if (!gk) throw std::invalid_argument("ecall_create_partition: bad sealed gk");
  auto enc = core::encrypt_with_msk(keys_.msk, keys_.pk, members, enclave_rng());
  PartitionCiphertext pc;
  pc.ct = enc.ct;
  pc.wrapped_gk = wrap_gk(enc.bk, *gk, pc.nonce);
  return pc;
}

IbbeEnclave::RemovalResult IbbeEnclave::ecall_remove_user(
    const BroadcastCiphertext& hosting_ct,
    std::span<const BroadcastCiphertext> other_partitions,
    const Identity& removed) {
  EcallScope scope(*this);
  // Algorithm 3, line 3: fresh group key (revocation re-keys everything).
  util::Bytes gk = enclave_rng().bytes(group_key_size);

  RemovalResult out;
  out.partitions.reserve(other_partitions.size() + 1);

  // Line 4-5: O(1) removal on the hosting partition.
  auto rem =
      core::remove_user_with_msk(keys_.msk, keys_.pk, hosting_ct, removed,
                                 enclave_rng());
  PartitionCiphertext host;
  host.ct = rem.ct;
  host.wrapped_gk = wrap_gk(rem.bk, gk, host.nonce);
  out.partitions.push_back(std::move(host));

  // Lines 6-8: constant-time re-key of every other partition.
  for (const auto& ct : other_partitions) {
    auto re = core::rekey(keys_.pk, ct, enclave_rng());
    PartitionCiphertext pc;
    pc.ct = re.ct;
    pc.wrapped_gk = wrap_gk(re.bk, gk, pc.nonce);
    out.partitions.push_back(std::move(pc));
  }

  // Line 9: seal the new group key.
  out.sealed_gk = seal(gk);
  return out;
}

IbbeEnclave::RemovalResult IbbeEnclave::ecall_remove_users(
    std::span<const BatchRemovalSpec> hosts,
    std::span<const BroadcastCiphertext> other_partitions) {
  EcallScope scope(*this);
  util::Bytes gk = enclave_rng().bytes(group_key_size);

  RemovalResult out;
  out.partitions.reserve(hosts.size() + other_partitions.size());

  for (const auto& spec : hosts) {
    auto rem = core::remove_users_with_msk(keys_.msk, keys_.pk, spec.ct,
                                           spec.removed, enclave_rng());
    PartitionCiphertext pc;
    pc.ct = rem.ct;
    pc.wrapped_gk = wrap_gk(rem.bk, gk, pc.nonce);
    out.partitions.push_back(std::move(pc));
  }
  for (const auto& ct : other_partitions) {
    auto re = core::rekey(keys_.pk, ct, enclave_rng());
    PartitionCiphertext pc;
    pc.ct = re.ct;
    pc.wrapped_gk = wrap_gk(re.bk, gk, pc.nonce);
    out.partitions.push_back(std::move(pc));
  }
  out.sealed_gk = seal(gk);
  return out;
}

core::UserSecretKey IbbeEnclave::ecall_extract_user_key(const Identity& id) {
  EcallScope scope(*this);
  return core::extract_user_key(keys_.msk, id);
}

util::Bytes IbbeEnclave::ecall_provision_user_key(
    const Identity& id, std::span<const std::uint8_t> user_p256_pub) {
  EcallScope scope(*this);
  auto usk = core::extract_user_key(keys_.msk, id);
  ec::P256Point recipient = ec::p256_from_bytes(user_p256_pub);
  return pki::ecies_encrypt(recipient, usk.to_bytes(), enclave_rng());
}

PartitionCiphertext IbbeEnclave::ecall_rekey_partition(
    const BroadcastCiphertext& ct, const sgx::SealedBlob& sealed_gk) {
  EcallScope scope(*this);
  auto gk = unseal(sealed_gk);
  if (!gk) throw std::invalid_argument("ecall_rekey_partition: bad sealed gk");
  auto re = core::rekey(keys_.pk, ct, enclave_rng());
  PartitionCiphertext pc;
  pc.ct = re.ct;
  pc.wrapped_gk = wrap_gk(re.bk, *gk, pc.nonce);
  return pc;
}

}  // namespace ibbe::enclave
