// The IBBE-SGX enclave image.
//
// Holds the Master Secret Key and exposes exactly the enclaved blocks of the
// paper's Algorithms 1-3 as ECALLs. What leaves the boundary is public by
// construction: partition ciphertexts (C1, C2, C3), AEAD-wrapped group keys
// y_p, sealed gk blobs, and the system public key. Neither gk, nor any
// partition broadcast key bk, nor gamma ever cross in plaintext — this is the
// zero-knowledge property the scheme claims against curious administrators,
// enforced here by the type of the API.
#pragma once

#include <vector>

#include "ibbe/ibbe.h"
#include "pki/ecdsa.h"
#include "sgx/enclave.h"

namespace ibbe::enclave {

/// Per-partition public metadata produced inside the enclave: the broadcast
/// ciphertext plus the wrapped group key y_p = AES-GCM(SHA-256(bk_p), gk).
struct PartitionCiphertext {
  core::BroadcastCiphertext ct;
  util::Bytes wrapped_gk;  // GCM ciphertext || tag
  util::Bytes nonce;       // 12-byte GCM nonce

  [[nodiscard]] util::Bytes to_bytes() const;
  static PartitionCiphertext from_bytes(std::span<const std::uint8_t> data);
};

/// Enclave-signed freshness attestation (ROTE-style rollback defense). The
/// enclave binds a group's commit to a platform monotonic counter: the token
/// vouches "counter C was attested for group g together with gk epoch E and
/// op-log head H". It is stored INSIDE the committed index (same signature,
/// same CAS), so a Byzantine cloud cannot tear the token from the state it
/// vouches for; it can only replay a whole old (index, token) pair — which
/// any verifier with a higher-water mark, a fresher peer observation, or the
/// attesting platform itself then detects as a rollback.
struct FreshnessToken {
  std::uint64_t counter = 0;  // 0 = no attestation (pre-freshness metadata)
  std::uint64_t gk_epoch = 0;
  std::array<std::uint8_t, 32> log_head{};
  pki::EcdsaSignature signature;  // by the enclave identity key

  /// Fixed wire size: counter + gk_epoch + log_head + signature.
  static constexpr std::size_t serialized_size =
      8 + 8 + 32 + pki::EcdsaSignature::serialized_size;

  [[nodiscard]] util::Bytes signed_payload(const std::string& group) const;
  [[nodiscard]] bool verify(const ec::P256Point& enclave_identity,
                            const std::string& group) const;

  [[nodiscard]] util::Bytes to_bytes() const;
  static FreshnessToken from_bytes(std::span<const std::uint8_t> data);
};

class IbbeEnclave : public sgx::EnclaveBase {
 public:
  /// Loads the enclave and runs IBBE System Setup inside it, sized for
  /// partitions of at most `max_partition_size` users. O(m).
  IbbeEnclave(sgx::EnclavePlatform& platform, std::size_t max_partition_size);

  /// Deterministic-DRBG variant (see the seeded EnclaveBase constructor):
  /// two same-seed enclaves on one platform produce bitwise-identical
  /// partition ciphertexts, which the parallel-equivalence tests rely on.
  /// Sealed blobs still differ per call (seal nonces come from platform
  /// entropy, not the enclave DRBG).
  IbbeEnclave(sgx::EnclavePlatform& platform, std::size_t max_partition_size,
              std::uint64_t rng_seed);

  /// Build descriptor used for the expected-measurement check by auditors.
  static sgx::EnclaveImage image();

  // ---- public (untrusted-readable) outputs -------------------------------

  /// IBBE public key: usable by anyone, including non-SGX clients.
  [[nodiscard]] const core::PublicKey& public_key() const { return keys_.pk; }

  /// The enclave's provisioning/identity public key (generated inside).
  [[nodiscard]] util::Bytes identity_public_key() const;

  /// Quote binding the identity key to the measurement (report data =
  /// SHA-256 of the public key), for the Fig. 3 attestation flow.
  [[nodiscard]] sgx::Quote attestation_quote() const;

  // ---- ECALLs ------------------------------------------------------------

  struct GroupCreation {
    std::vector<PartitionCiphertext> partitions;
    sgx::SealedBlob sealed_gk;
  };
  /// Algorithm 1 (enclaved block): fresh gk, one IBBE encrypt per partition,
  /// gk wrapped under every partition broadcast key, gk sealed for the admin
  /// cache. Partition assignment itself is untrusted-side work.
  [[nodiscard]] GroupCreation ecall_create_group(
      std::span<const std::vector<core::Identity>> partitions);

  /// Algorithm 2, fast path (lines 9-12): O(1) extension of an existing
  /// partition's ciphertext; y_p is unchanged.
  [[nodiscard]] core::BroadcastCiphertext ecall_add_user_to_partition(
      const core::BroadcastCiphertext& ct, const core::Identity& added);

  /// Algorithm 2, slow path (lines 3-7): brand-new partition wrapping the
  /// *existing* group key (unsealed inside). O(|members|).
  [[nodiscard]] PartitionCiphertext ecall_create_partition(
      std::span<const core::Identity> members, const sgx::SealedBlob& sealed_gk);

  struct RemovalResult {
    /// Updated ciphertexts: index 0 is the removed user's (shrunk) partition,
    /// the rest follow the input order of `other_partitions`.
    std::vector<PartitionCiphertext> partitions;
    sgx::SealedBlob sealed_gk;
  };
  /// Algorithm 3 (enclaved block): fresh gk; the hosting partition gets the
  /// O(1) removal (C3 division + re-key) and every other partition a constant
  /// time re-key; the new gk is wrapped under every partition key.
  /// `hosting_ct` must already correspond to the set *including* `removed`.
  [[nodiscard]] RemovalResult ecall_remove_user(
      const core::BroadcastCiphertext& hosting_ct,
      std::span<const core::BroadcastCiphertext> other_partitions,
      const core::Identity& removed);

  /// Batch revocation (extension of Algorithm 3 along the paper's
  /// future-work axis): every entry of `hosts` is a partition ciphertext
  /// together with the users being revoked from it; all other partitions get
  /// one constant-time re-key. The whole batch costs ONE group-key rotation
  /// instead of one per revoked user.
  struct BatchRemovalSpec {
    core::BroadcastCiphertext ct;
    std::vector<core::Identity> removed;
  };
  [[nodiscard]] RemovalResult ecall_remove_users(
      std::span<const BatchRemovalSpec> hosts,
      std::span<const core::BroadcastCiphertext> other_partitions);

  /// Extract User Secret (paper section IV-B op 2). Raw form — callers are
  /// the provisioning path below and the test/bench harnesses.
  [[nodiscard]] core::UserSecretKey ecall_extract_user_key(
      const core::Identity& id);

  /// Fig. 3 step 4: extraction + ECIES encryption to the user's key, so the
  /// USK never crosses the boundary in plaintext.
  [[nodiscard]] util::Bytes ecall_provision_user_key(
      const core::Identity& id, std::span<const std::uint8_t> user_p256_pub);

  /// Re-wrap of the sealed group key under one partition's bk after a PK-only
  /// re-key (used by re-partitioning maintenance).
  [[nodiscard]] PartitionCiphertext ecall_rekey_partition(
      const core::BroadcastCiphertext& ct, const sgx::SealedBlob& sealed_gk);

  // ---- freshness anchoring (rollback defense, docs/fault_model.md) -------
  //
  // Two-phase protocol around the admin's index CAS:
  //   1. ecall_attest_freshness signs a TENTATIVE counter — one above the
  //      highest of the platform counter and the caller's floor — without
  //      persisting it. A CAS that then loses the race simply abandons the
  //      token; the platform counter is untouched, so no gap opens between
  //      "highest committed" and "highest confirmed".
  //   2. ecall_confirm_freshness persists the counter (raise-to semantics)
  //      only after the CAS landed. From then on any index carrying a lower
  //      counter is, to this platform, proof of rollback.
  // ecall_freshness_floor exposes the confirmed value so the untrusted admin
  // can check a freshly synced view against it after a restart.

  /// Signs a tentative freshness token for `group` binding (counter,
  /// gk_epoch, log_head). Does NOT advance the platform counter.
  [[nodiscard]] FreshnessToken ecall_attest_freshness(
      const std::string& group, std::uint64_t floor, std::uint64_t gk_epoch,
      const std::array<std::uint8_t, 32>& log_head);

  /// Persists `counter` for `group` after its index CAS committed (raises
  /// the platform counter; never lowers it).
  void ecall_confirm_freshness(const std::string& group, std::uint64_t counter);

  /// Highest counter this platform has confirmed for `group` (0 = none).
  [[nodiscard]] std::uint64_t ecall_freshness_floor(const std::string& group) const;

  /// Verification key for freshness tokens: the enclave identity key, whose
  /// genuineness clients establish once via attestation_quote().
  [[nodiscard]] const ec::P256Point& freshness_verification_key() const {
    return identity_key_.public_key();
  }

 private:
  /// y_p = AES-256-GCM(SHA-256(bk), gk) under a caller-supplied nonce. The
  /// nonce is PRE-DRAWN from the enclave DRBG on the ecall thread (together
  /// with every IBBE randomizer, in partition order) before the
  /// per-partition work fans out to the thread pool — the DRBG stays
  /// single-threaded and the draw sequence is identical at every thread
  /// count, so outputs are bitwise-reproducible for a seeded enclave.
  [[nodiscard]] util::Bytes wrap_gk(const pairing::Gt& bk,
                                    std::span<const std::uint8_t> gk,
                                    const util::Bytes& nonce) const;
  /// Platform counter name for a group, scoped by this build's measurement.
  [[nodiscard]] std::string freshness_counter_name(const std::string& group) const;

  // ---- enclave-private state (never crosses the boundary) ----
  core::SystemKeys keys_;
  pki::EcdsaKeyPair identity_key_;
};

/// Size of the group key generated inside the enclave.
constexpr std::size_t group_key_size = 32;

}  // namespace ibbe::enclave
