// Administrator API (paper §V, Algorithms 1-3 at system level).
//
// The administrator is honest-but-curious: this class runs *outside* the
// enclave and only ever handles public metadata, sealed blobs, and wrapped
// keys. All gk/bk-touching work happens in the IbbeEnclave it drives.
//
// Responsibilities:
//   * partition assignment (fixed-size partitions, random placement of
//     joiners, as in Algorithm 2 line 9);
//   * the local metadata cache that saves cloud round trips (§IV-C);
//   * pushing signed metadata to the cloud store;
//   * the re-partitioning heuristic: if more than half of the partitions are
//     under two-thirds occupancy, rebuild the group via Algorithm 1.
//
// Crash consistency (docs/fault_model.md has the full protocol): every
// mutation is shadow-paged. Changed partition records are written under
// FRESH ids (copy-on-write — partition files are immutable once written), a
// rotated group key is sealed under a FRESH epoch path, and the op-log entry
// is CAS-merged in — all BEFORE the single commit point, the CAS that
// replaces groups/<gid>/index. Nothing is erased before the commit;
// unreferenced files are swept by a post-commit garbage collector, and
// recover() rolls a torn mutation back (index CAS never landed) or forward
// (it did; finish the GC) after a crash. Transient cloud errors are retried
// under config.retry; a cloud::CrashError is never retried in place.
//
// Extensions beyond the paper's evaluation (its §VIII future work):
//   * batch revocation: remove_users() rotates gk once per batch;
//   * multi-administrator mode: CAS-protected index updates with cache
//     re-sync and retry (config.multi_admin);
//   * dynamic partition sizing: re-partitioning picks the size a cost model
//     recommends for the observed workload (config.adaptive_partitioning);
//   * a hash-chained signed membership log for auditing
//     (config.log_operations, see oplog.h), anchored against truncation by
//     the committed index's log_head field.
#pragma once

#include <map>

#include "cloud/store.h"
#include "crypto/drbg.h"
#include "enclave/ibbe_enclave.h"
#include "system/advisor.h"
#include "system/metadata.h"
#include "system/oplog.h"
#include "util/retry.h"

namespace ibbe::system {

struct AdminConfig {
  std::size_t partition_size = 1000;  // the paper's |p|
  bool repartitioning = true;

  /// Backoff discipline for transient cloud errors (every put/get/list this
  /// class issues). cloud::CrashError is never retried.
  util::RetryPolicy retry;

  // ---- multi-administrator extension ----
  /// Enables lock-free concurrent administration: index updates go through
  /// compare-and-swap, conflicts trigger a cache re-sync and retry, and the
  /// sealed group key is mirrored to the cloud so peers can pick it up.
  bool multi_admin = false;
  /// Distinguishes this administrator's partition ids and gk epochs (high 32
  /// bits) so concurrent creations never collide.
  std::uint32_t admin_nonce = 0;
  /// Verification keys (compressed P-256) of the other administrators whose
  /// signed metadata this admin accepts during re-sync.
  std::vector<util::Bytes> peer_verification_keys;

  // ---- dynamic partition sizing extension ----
  /// When re-partitioning triggers, rebuild with the PartitionAdvisor's
  /// recommendation instead of the static partition_size.
  bool adaptive_partitioning = false;
  std::size_t min_partition_size = 16;

  // ---- audit log extension ----
  /// Appends every membership change to a hash-chained signed log mirrored
  /// to the cloud (oplog.h).
  bool log_operations = false;
  std::string admin_name = "admin";
};

struct AdminStats {
  std::uint64_t groups_created = 0;
  std::uint64_t users_added = 0;
  std::uint64_t users_removed = 0;
  std::uint64_t partitions_created = 0;
  std::uint64_t repartitions = 0;
  std::uint64_t cas_conflicts = 0;      // retries caused by peers (or faults)
  std::uint64_t transient_retries = 0;  // cloud round trips retried
  std::uint64_t recoveries = 0;         // recover() invocations
  std::uint64_t rollback_rejections = 0;  // synced views below the enclave floor
};

class AdminApi {
 public:
  AdminApi(enclave::IbbeEnclave& enclave, cloud::CloudStore& cloud,
           pki::EcdsaKeyPair signing_key, AdminConfig config,
           std::uint64_t seed = 0);

  /// Algorithm 1: split into fixed-size partitions, one enclave call, push.
  void create_group(const GroupId& gid, std::span<const core::Identity> members);

  /// Algorithm 2. No-op if the user is already a member.
  void add_user(const GroupId& gid, const core::Identity& id);

  /// Algorithm 3 (+ re-partitioning heuristic). No-op if not a member.
  void remove_user(const GroupId& gid, const core::Identity& id);

  /// Batch extensions: `add_users` loops the O(1) add; `remove_users`
  /// rotates the group key ONCE for all k revocations (one enclave call, one
  /// re-key per partition) instead of k times.
  void add_users(const GroupId& gid, std::span<const core::Identity> ids);
  void remove_users(const GroupId& gid, std::span<const core::Identity> ids);

  /// Rebuilds the local cache for `gid` from signed cloud metadata (index,
  /// partitions, the sealed gk of the committed epoch). Throws on missing or
  /// unverifiable metadata; throws cloud::TransientError when the cloud
  /// serves a torn or stale view (caller may retry).
  void sync_from_cloud(const GroupId& gid);

  /// Startup crash recovery. Returns true if the group exists (its index
  /// committed): the cache is rebuilt from the committed state, id/epoch
  /// counters are advanced past every id seen on the cloud (so a restarted
  /// admin can never collide with leftovers), and orphaned partition / gk
  /// files are garbage-collected — rolling an interrupted mutation back, or
  /// finishing the sweep of one that committed (roll-forward). Returns false
  /// if no index exists: a creation died before its commit point; every
  /// torn file under the group's directory is deleted.
  bool recover(const GroupId& gid);

  /// Fetches the group's op-log from the cloud and audits it against this
  /// admin's + peers' keys, anchored on the committed index's log_head (so
  /// whole-suffix truncation is caught, not just splices).
  [[nodiscard]] MembershipLog::AuditResult audit_group_log(const GroupId& gid) const;

  [[nodiscard]] bool is_member(const GroupId& gid, const core::Identity& id) const;
  [[nodiscard]] std::size_t group_size(const GroupId& gid) const;
  [[nodiscard]] std::size_t partition_count(const GroupId& gid) const;
  /// Current partition-size target (differs from the configured size once
  /// adaptive re-partitioning has acted).
  [[nodiscard]] std::size_t partition_size_target(const GroupId& gid) const;
  /// Serialized size of all of the group's cloud metadata.
  [[nodiscard]] std::size_t metadata_size(const GroupId& gid) const;

  [[nodiscard]] const AdminStats& stats() const { return stats_; }
  /// Workload observations driving adaptive sizing. Decrypt observations are
  /// reported by the deployment (e.g. the trace replayer), since clients do
  /// not talk to the administrator on the decrypt path.
  [[nodiscard]] PartitionAdvisor& advisor() { return advisor_; }
  /// The group's audit log (empty if log_operations is off).
  [[nodiscard]] const MembershipLog& log_of(const GroupId& gid) const;

  [[nodiscard]] util::Bytes verification_key() const {
    return ec::p256_to_bytes(signing_key_.public_key());
  }
  [[nodiscard]] const ec::P256Point& verification_point() const {
    return signing_key_.public_key();
  }

 private:
  using LogHead = std::array<std::uint8_t, 32>;

  struct GroupState {
    std::vector<PartitionRecord> partitions;
    sgx::SealedBlob sealed_gk;
    std::uint64_t gk_epoch = 0;           // cloud path of the sealed gk
    std::size_t target_partition_size = 0;
    std::uint32_t partition_counter = 0;  // admin-local, see fresh_partition_id
    std::uint32_t epoch_counter = 0;      // admin-local, see fresh_gk_epoch
    std::uint64_t index_version = 0;      // cloud version at last sync/push
    // The committed index's freshness token (counter doubles as the floor
    // handed to the next attestation).
    enclave::FreshnessToken freshness;
  };

  /// What a mutation attempt did with the cached state.
  enum class OpOutcome {
    noop,       // nothing changed, nothing to publish
    published,  // partitions pushed; index still needs publishing
    rebuilt,    // rebuild_group ran and already committed everything
  };

  GroupState& state_of(const GroupId& gid);
  const GroupState& state_of(const GroupId& gid) const;
  PartitionId fresh_partition_id(GroupState& state) const;
  std::uint64_t fresh_gk_epoch(GroupState& state) const;

  void create_group_sized(const GroupId& gid,
                          std::span<const core::Identity> members,
                          std::size_t partition_size, LogOp logop,
                          const std::string& subject);
  void push_partition(const GroupId& gid, const PartitionRecord& rec);
  /// The commit point: CAS of the signed index against the cached version.
  /// The index carries an enclave-signed freshness token (tentative counter);
  /// the counter is confirmed to the platform only after the CAS lands, and
  /// the commit is announced on the gossip channel. Detects this admin's own
  /// ambiguous commits (write applied, response lost) by re-reading and
  /// comparing payloads; false means a real concurrent update.
  [[nodiscard]] bool push_index(const GroupId& gid, GroupState& state,
                                const LogHead& log_head);
  /// Verifies a synced index's freshness token: enclave signature, binding
  /// to (gk_epoch, log_head), and counter not below the platform's confirmed
  /// floor. Throws util::IntegrityError on forgery/mis-binding and
  /// cloud::TransientError on a rolled-back (or lagging) view.
  void check_index_freshness(const GroupId& gid, const GroupIndex& idx);
  /// Best-effort publication of the committed (counter, log_head) to the
  /// gossip channel, so clients can spot rollbacks served to them even
  /// before any peer client has seen the new commit.
  void publish_freshness_gossip(const GroupId& gid,
                                const enclave::FreshnessToken& token);
  void push_sealed_gk(const GroupId& gid, const GroupState& state);
  /// CAS-merge publication of one op-log entry (pre-commit): fetch, rebase
  /// our entry onto the remote head, put_cas; on conflict re-fetch and merge
  /// so no concurrent admin's entries are lost. Returns the entry's hash —
  /// the index's log_head anchor. All-zero when logging is off.
  LogHead publish_log_entry(const GroupId& gid, LogOp op,
                            const std::string& subject);
  [[nodiscard]] bool verify_envelope(const SignedEnvelope& env) const;
  /// Post-commit sweep: deletes partition and sealed-gk files that the
  /// committed index no longer references. Best-effort — a failed sweep
  /// leaves orphans for the next gc/recover, never an inconsistency.
  void gc_group(const GroupId& gid, const GroupState& state);
  /// Advances the local id/epoch counters past every id the committed index
  /// carries for this admin's nonce.
  void bump_counters_past(GroupState& state, const GroupIndex& idx) const;
  /// The heuristic from §V-A: more than half of the partitions below 2/3
  /// occupancy triggers a full rebuild.
  bool should_repartition(const GroupState& state) const;
  void rebuild_group(const GroupId& gid, GroupState& state);

  /// Retry wrapper for a whole mutation: runs `op` against the cached state,
  /// publishes the staged op-log entry, then attempts the index CAS; on
  /// conflict re-syncs and re-runs the (idempotent) op. `op` is called as
  /// op(state, staged) — `staged` lets the re-partitioning path publish its
  /// log entry before handing off to rebuild_group.
  template <typename Op>
  OpOutcome mutate_with_retry(const GroupId& gid, LogOp logop,
                              const std::string& subject, Op&& op);

  /// Retries `f` on retryable faults (transient) per config_.retry;
  /// CrashError, IntegrityError and everything else propagate.
  template <typename F>
  auto with_retries(F&& f) {
    return util::retry_faults(config_.retry, std::forward<F>(f),
                              &stats_.transient_retries);
  }

  enclave::IbbeEnclave& enclave_;
  cloud::CloudStore& cloud_;
  pki::EcdsaKeyPair signing_key_;
  AdminConfig config_;
  crypto::Drbg rng_;  // untrusted-side randomness (partition placement only)
  std::map<GroupId, GroupState> cache_;
  std::map<GroupId, MembershipLog> logs_;
  PartitionAdvisor advisor_;
  AdminStats stats_;
};

}  // namespace ibbe::system
