// Administrator API (paper §V, Algorithms 1-3 at system level).
//
// The administrator is honest-but-curious: this class runs *outside* the
// enclave and only ever handles public metadata, sealed blobs, and wrapped
// keys. All gk/bk-touching work happens in the IbbeEnclave it drives.
//
// Responsibilities:
//   * partition assignment (fixed-size partitions, random placement of
//     joiners, as in Algorithm 2 line 9);
//   * the local metadata cache that saves cloud round trips (§IV-C);
//   * pushing signed metadata to the cloud store;
//   * the re-partitioning heuristic: if more than half of the partitions are
//     under two-thirds occupancy, rebuild the group via Algorithm 1.
//
// Extensions beyond the paper's evaluation (its §VIII future work):
//   * batch revocation: remove_users() rotates gk once per batch;
//   * multi-administrator mode: CAS-protected index updates with cache
//     re-sync and retry (config.multi_admin);
//   * dynamic partition sizing: re-partitioning picks the size a cost model
//     recommends for the observed workload (config.adaptive_partitioning);
//   * a hash-chained signed membership log for auditing
//     (config.log_operations, see oplog.h).
#pragma once

#include <map>

#include "cloud/store.h"
#include "crypto/drbg.h"
#include "enclave/ibbe_enclave.h"
#include "system/advisor.h"
#include "system/metadata.h"
#include "system/oplog.h"

namespace ibbe::system {

struct AdminConfig {
  std::size_t partition_size = 1000;  // the paper's |p|
  bool repartitioning = true;

  // ---- multi-administrator extension ----
  /// Enables lock-free concurrent administration: index updates go through
  /// compare-and-swap, conflicts trigger a cache re-sync and retry, and the
  /// sealed group key is mirrored to the cloud so peers can pick it up.
  bool multi_admin = false;
  /// Distinguishes this administrator's partition ids (high 32 bits) so
  /// concurrent partition creations never collide.
  std::uint32_t admin_nonce = 0;
  /// Verification keys (compressed P-256) of the other administrators whose
  /// signed metadata this admin accepts during re-sync.
  std::vector<util::Bytes> peer_verification_keys;

  // ---- dynamic partition sizing extension ----
  /// When re-partitioning triggers, rebuild with the PartitionAdvisor's
  /// recommendation instead of the static partition_size.
  bool adaptive_partitioning = false;
  std::size_t min_partition_size = 16;

  // ---- audit log extension ----
  /// Appends every membership change to a hash-chained signed log mirrored
  /// to the cloud (oplog.h).
  bool log_operations = false;
  std::string admin_name = "admin";
};

struct AdminStats {
  std::uint64_t groups_created = 0;
  std::uint64_t users_added = 0;
  std::uint64_t users_removed = 0;
  std::uint64_t partitions_created = 0;
  std::uint64_t repartitions = 0;
  std::uint64_t cas_conflicts = 0;  // multi-admin: retries caused by peers
};

class AdminApi {
 public:
  AdminApi(enclave::IbbeEnclave& enclave, cloud::CloudStore& cloud,
           pki::EcdsaKeyPair signing_key, AdminConfig config,
           std::uint64_t seed = 0);

  /// Algorithm 1: split into fixed-size partitions, one enclave call, push.
  void create_group(const GroupId& gid, std::span<const core::Identity> members);

  /// Algorithm 2. No-op if the user is already a member.
  void add_user(const GroupId& gid, const core::Identity& id);

  /// Algorithm 3 (+ re-partitioning heuristic). No-op if not a member.
  void remove_user(const GroupId& gid, const core::Identity& id);

  /// Batch extensions: `add_users` loops the O(1) add; `remove_users`
  /// rotates the group key ONCE for all k revocations (one enclave call, one
  /// re-key per partition) instead of k times.
  void add_users(const GroupId& gid, std::span<const core::Identity> ids);
  void remove_users(const GroupId& gid, std::span<const core::Identity> ids);

  /// Multi-admin: rebuilds the local cache for `gid` from signed cloud
  /// metadata (index, partitions, mirrored sealed gk). Throws on missing or
  /// unverifiable metadata.
  void sync_from_cloud(const GroupId& gid);

  [[nodiscard]] bool is_member(const GroupId& gid, const core::Identity& id) const;
  [[nodiscard]] std::size_t group_size(const GroupId& gid) const;
  [[nodiscard]] std::size_t partition_count(const GroupId& gid) const;
  /// Current partition-size target (differs from the configured size once
  /// adaptive re-partitioning has acted).
  [[nodiscard]] std::size_t partition_size_target(const GroupId& gid) const;
  /// Serialized size of all of the group's cloud metadata.
  [[nodiscard]] std::size_t metadata_size(const GroupId& gid) const;

  [[nodiscard]] const AdminStats& stats() const { return stats_; }
  /// Workload observations driving adaptive sizing. Decrypt observations are
  /// reported by the deployment (e.g. the trace replayer), since clients do
  /// not talk to the administrator on the decrypt path.
  [[nodiscard]] PartitionAdvisor& advisor() { return advisor_; }
  /// The group's audit log (empty if log_operations is off).
  [[nodiscard]] const MembershipLog& log_of(const GroupId& gid) const;

  [[nodiscard]] util::Bytes verification_key() const {
    return ec::p256_to_bytes(signing_key_.public_key());
  }
  [[nodiscard]] const ec::P256Point& verification_point() const {
    return signing_key_.public_key();
  }

 private:
  struct GroupState {
    std::vector<PartitionRecord> partitions;
    sgx::SealedBlob sealed_gk;
    std::size_t target_partition_size = 0;
    std::uint32_t partition_counter = 0;  // admin-local, see fresh_partition_id
    std::uint64_t index_version = 0;      // cloud version at last sync/push
  };

  /// What a mutation attempt did with the cached state.
  enum class OpOutcome {
    noop,       // nothing changed, nothing to publish
    published,  // partitions pushed; index still needs publishing
    rebuilt,    // rebuild_group ran and already published everything
  };

  GroupState& state_of(const GroupId& gid);
  const GroupState& state_of(const GroupId& gid) const;
  PartitionId fresh_partition_id(GroupState& state) const;

  void create_group_sized(const GroupId& gid,
                          std::span<const core::Identity> members,
                          std::size_t partition_size);
  void push_partition(const GroupId& gid, const PartitionRecord& rec);
  /// Single-admin: unconditional put (always true). Multi-admin: CAS against
  /// the cached index version; false signals a concurrent peer update.
  [[nodiscard]] bool push_index(const GroupId& gid, GroupState& state);
  void push_sealed_gk(const GroupId& gid, const GroupState& state);
  [[nodiscard]] bool verify_envelope(const SignedEnvelope& env) const;
  /// Multi-admin partition files are copy-on-write (every content change
  /// writes under a fresh id) so a failed CAS attempt can never clobber a
  /// peer's data; this sweeps files no longer referenced by the index.
  void gc_partitions(const GroupId& gid, const GroupState& state);
  /// In multi-admin mode, gives `rec` a fresh id before re-publishing
  /// changed content (copy-on-write); no-op otherwise.
  void reassign_if_multi(GroupState& state, PartitionRecord& rec);
  /// The heuristic from §V-A: more than half of the partitions below 2/3
  /// occupancy triggers a full rebuild.
  bool should_repartition(const GroupState& state) const;
  void rebuild_group(const GroupId& gid, GroupState& state);
  void log_op(const GroupId& gid, LogOp op, const std::string& subject);

  /// Multi-admin retry wrapper: runs `op` against the cached state and
  /// publishes the index; on CAS conflict re-syncs and retries.
  template <typename Op>
  OpOutcome mutate_with_retry(const GroupId& gid, Op&& op);

  enclave::IbbeEnclave& enclave_;
  cloud::CloudStore& cloud_;
  pki::EcdsaKeyPair signing_key_;
  AdminConfig config_;
  crypto::Drbg rng_;  // untrusted-side randomness (partition placement only)
  std::map<GroupId, GroupState> cache_;
  std::map<GroupId, MembershipLog> logs_;
  PartitionAdvisor advisor_;
  AdminStats stats_;
};

}  // namespace ibbe::system
