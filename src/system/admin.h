// Administrator API (paper §V, Algorithms 1-3 at system level).
//
// The administrator is honest-but-curious: this class runs *outside* the
// enclave and only ever handles public metadata, sealed blobs, and wrapped
// keys. All gk/bk-touching work happens in the IbbeEnclave it drives.
//
// Responsibilities:
//   * partition assignment (fixed-size partitions, random placement of
//     joiners, as in Algorithm 2 line 9) and shard assignment (a few whole
//     partitions per shard, sized by the advisor's churn model);
//   * the local metadata cache that saves cloud round trips (§IV-C);
//   * pushing signed metadata to the cloud store — under the sharded
//     manifest layout a mutation touches O(1) objects: the host shard, one
//     cipher object (an overlay for adds, the rotated bundle for removes),
//     the signed delta, the op-log entry and the manifest;
//   * re-partitioning heuristics at two granularities: the global rule from
//     §V-A (more than half of ALL partitions under two-thirds occupancy →
//     full rebuild, a snapshot barrier) and the same rule applied per shard
//     (rebuild just that shard's partitions, wrapping the current gk —
//     foldable by clients as a repartition delta op).
//
// Crash consistency (docs/fault_model.md has the full protocol): every
// mutation is shadow-paged. Changed shards, cipher bundles/overlays and the
// commit's signed delta are written under FRESH object ids (copy-on-write —
// these files are immutable once written; partition ids, by contrast, are
// stable logical names), a rotated group key is sealed under a FRESH epoch
// path, and the op-log entry is CAS-merged in — all BEFORE the single commit
// point, the CAS that replaces groups/<gid>/index (the manifest). Nothing is
// erased before the commit; unreferenced files — including deltas that fell
// out of the retention window — are swept by a post-commit garbage
// collector, and recover() rolls a torn mutation back (manifest CAS never
// landed) or forward (it did; finish the GC) after a crash. Transient cloud
// errors are retried under config.retry; a cloud::CrashError is never
// retried in place.
//
// Extensions beyond the paper's evaluation (its §VIII future work):
//   * batch revocation: remove_users() rotates gk once per batch;
//   * multi-administrator mode: CAS-protected manifest updates with cache
//     re-sync and retry (config.multi_admin);
//   * dynamic partition sizing: re-partitioning picks the size a cost model
//     recommends for the observed workload (config.adaptive_partitioning);
//   * a hash-chained signed membership log for auditing
//     (config.log_operations, see oplog.h), anchored against truncation by
//     the committed manifest's log_head field — which also chains the
//     incremental deltas clients fold.
#pragma once

#include <map>
#include <unordered_map>

#include "cloud/store.h"
#include "crypto/drbg.h"
#include "enclave/ibbe_enclave.h"
#include "system/advisor.h"
#include "system/metadata.h"
#include "system/oplog.h"
#include "util/retry.h"

namespace ibbe::system {

struct AdminConfig {
  std::size_t partition_size = 1000;  // the paper's |p|
  bool repartitioning = true;

  /// Partitions per shard; 0 = let the advisor's churn model pick
  /// (PartitionAdvisor::recommend_shard_partitions) at each (re)creation.
  std::size_t shard_partitions = 0;

  /// How many incremental deltas stay on the cloud for warm clients to fold;
  /// older ones are garbage-collected and force a snapshot re-fetch.
  std::size_t delta_window = 64;

  /// Backoff discipline for transient cloud errors (every put/get/list this
  /// class issues). cloud::CrashError is never retried.
  util::RetryPolicy retry;

  // ---- multi-administrator extension ----
  /// Enables lock-free concurrent administration: manifest updates go
  /// through compare-and-swap, conflicts trigger a cache re-sync and retry,
  /// and the sealed group key is mirrored to the cloud so peers can pick it
  /// up.
  bool multi_admin = false;
  /// Distinguishes this administrator's partition/object ids and gk epochs
  /// (high 32 bits) so concurrent creations never collide.
  std::uint32_t admin_nonce = 0;
  /// Verification keys (compressed P-256) of the other administrators whose
  /// signed metadata this admin accepts during re-sync.
  std::vector<util::Bytes> peer_verification_keys;

  // ---- dynamic partition sizing extension ----
  /// When re-partitioning triggers, rebuild with the PartitionAdvisor's
  /// recommendation instead of the static partition_size.
  bool adaptive_partitioning = false;
  std::size_t min_partition_size = 16;

  // ---- audit log extension ----
  /// Appends every membership change to a hash-chained signed log mirrored
  /// to the cloud (oplog.h).
  bool log_operations = false;
  std::string admin_name = "admin";
};

struct AdminStats {
  std::uint64_t groups_created = 0;
  std::uint64_t users_added = 0;
  std::uint64_t users_removed = 0;
  std::uint64_t partitions_created = 0;
  std::uint64_t repartitions = 0;        // full (global) rebuilds
  std::uint64_t shard_repartitions = 0;  // shard-local rebuilds (delta-foldable)
  std::uint64_t deltas_published = 0;    // incremental deltas committed
  std::uint64_t cas_conflicts = 0;      // retries caused by peers (or faults)
  std::uint64_t transient_retries = 0;  // cloud round trips retried
  std::uint64_t recoveries = 0;         // recover() invocations
  std::uint64_t rollback_rejections = 0;  // synced views below the enclave floor
};

class AdminApi {
 public:
  AdminApi(enclave::IbbeEnclave& enclave, cloud::CloudStore& cloud,
           pki::EcdsaKeyPair signing_key, AdminConfig config,
           std::uint64_t seed = 0);

  /// Algorithm 1: split into fixed-size partitions, one enclave call, push.
  void create_group(const GroupId& gid, std::span<const core::Identity> members);

  /// Algorithm 2. No-op if the user is already a member.
  void add_user(const GroupId& gid, const core::Identity& id);

  /// Algorithm 3 (+ re-partitioning heuristics). No-op if not a member.
  void remove_user(const GroupId& gid, const core::Identity& id);

  /// Batch extensions: `add_users` loops the O(1) add; `remove_users`
  /// rotates the group key ONCE for all k revocations (one enclave call, one
  /// re-key per partition) instead of k times.
  void add_users(const GroupId& gid, std::span<const core::Identity> ids);
  void remove_users(const GroupId& gid, std::span<const core::Identity> ids);

  /// Rebuilds the local cache for `gid` from signed cloud metadata (the
  /// manifest, every shard — verified against the manifest's hashes — the
  /// cipher bundle + overlays, and the sealed gk of the committed epoch).
  /// Throws on missing or unverifiable metadata; throws
  /// cloud::TransientError when the cloud serves a torn or stale view
  /// (caller may retry).
  void sync_from_cloud(const GroupId& gid);

  /// Startup crash recovery. Returns true if the group exists (its manifest
  /// committed): the cache is rebuilt from the committed state, id/epoch
  /// counters are advanced past every id seen on the cloud (so a restarted
  /// admin can never collide with leftovers), and orphaned shard / cipher /
  /// delta / gk files are garbage-collected — rolling an interrupted
  /// mutation back, or finishing the sweep of one that committed
  /// (roll-forward). Returns false if no manifest exists: a creation died
  /// before its commit point; every torn file under the group's directory is
  /// deleted.
  bool recover(const GroupId& gid);

  /// Fetches the group's op-log from the cloud and audits it against this
  /// admin's + peers' keys, anchored on the committed manifest's log_head
  /// (so whole-suffix truncation is caught, not just splices).
  [[nodiscard]] MembershipLog::AuditResult audit_group_log(const GroupId& gid) const;

  [[nodiscard]] bool is_member(const GroupId& gid, const core::Identity& id) const;
  [[nodiscard]] std::size_t group_size(const GroupId& gid) const;
  [[nodiscard]] std::size_t partition_count(const GroupId& gid) const;
  [[nodiscard]] std::size_t shard_count(const GroupId& gid) const;
  /// Current partition-size target (differs from the configured size once
  /// adaptive re-partitioning has acted).
  [[nodiscard]] std::size_t partition_size_target(const GroupId& gid) const;
  /// Serialized size of all of the group's cloud metadata.
  [[nodiscard]] std::size_t metadata_size(const GroupId& gid) const;
  /// Exact number of files the committed state keeps under groups/<gid>/:
  /// manifest + sealed gk + shards + bundle + overlays + retained deltas
  /// (+ op-log when logging). The crash-consistency tests assert the cloud
  /// listing matches this after every recovery — no orphans, no omissions.
  [[nodiscard]] std::size_t cloud_object_count(const GroupId& gid) const;

  [[nodiscard]] const AdminStats& stats() const { return stats_; }
  /// Workload observations driving adaptive sizing. Decrypt observations are
  /// reported by the deployment (e.g. the trace replayer), since clients do
  /// not talk to the administrator on the decrypt path.
  [[nodiscard]] PartitionAdvisor& advisor() { return advisor_; }
  /// The group's audit log (empty if log_operations is off).
  [[nodiscard]] const MembershipLog& log_of(const GroupId& gid) const;

  [[nodiscard]] util::Bytes verification_key() const {
    return ec::p256_to_bytes(signing_key_.public_key());
  }
  [[nodiscard]] const ec::P256Point& verification_point() const {
    return signing_key_.public_key();
  }

 private:
  using LogHead = std::array<std::uint8_t, 32>;

  /// In-memory partition: a STABLE id (kept across mutations — CoW
  /// immutability lives in shard/bundle/overlay object ids now), the member
  /// list, and the current ciphertext.
  struct Partition {
    PartitionId id = 0;
    std::vector<core::Identity> members;
    enclave::PartitionCiphertext cipher;
  };
  /// One shard of the committed layout: which partitions it holds, the
  /// object id it was last written under, and the stored bytes' hash (what
  /// the manifest pins).
  struct Shard {
    std::uint64_t sid = 0;
    std::vector<PartitionId> pids;
    Hash32 hash{};
  };

  struct GroupState {
    std::vector<Partition> partitions;
    std::vector<Shard> shards;
    /// O(1) membership/host lookup, maintained incrementally by every
    /// mutation and rebuilt on sync (the linear scans were O(total members)
    /// per op).
    std::unordered_map<core::Identity, PartitionId> member_of;
    std::uint64_t cipher_set = 0;                   // live bundle object id
    std::map<PartitionId, std::uint64_t> overlays;  // pid -> overlay object id
    sgx::SealedBlob sealed_gk;
    std::uint64_t gk_epoch = 0;           // cloud path of the sealed gk
    std::size_t target_partition_size = 0;
    std::size_t shard_partition_target = 0;  // partitions per shard
    std::uint32_t partition_counter = 0;  // admin-local, see fresh_partition_id
    std::uint32_t epoch_counter = 0;      // admin-local, see fresh_gk_epoch
    std::uint32_t object_counter = 0;     // shard/bundle/overlay ids
    std::uint64_t index_version = 0;      // cloud version at last sync/push
    // The committed manifest's freshness token (counter doubles as the floor
    // handed to the next attestation, and as the last delta's seq).
    enclave::FreshnessToken freshness;
    std::uint64_t delta_base = 0;  // earliest delta retained on the cloud
    /// Delta ops staged by the current mutation attempt; consumed by
    /// push_index (empty = snapshot-barrier commit). Cleared before each
    /// retry so a re-run after a CAS conflict restages from scratch.
    std::vector<DeltaOp> pending_delta;
  };

  /// What a mutation attempt did with the cached state.
  enum class OpOutcome {
    noop,       // nothing changed, nothing to publish
    published,  // shards/ciphers pushed; manifest still needs publishing
    rebuilt,    // rebuild_group ran and already committed everything
  };

  GroupState& state_of(const GroupId& gid);
  const GroupState& state_of(const GroupId& gid) const;
  PartitionId fresh_partition_id(GroupState& state) const;
  std::uint64_t fresh_gk_epoch(GroupState& state) const;
  /// Fresh copy-on-write object id for shards, bundles and overlays (one
  /// shared counter; the path prefix disambiguates the kind).
  std::uint64_t fresh_object_id(GroupState& state) const;

  [[nodiscard]] std::size_t partition_index(const GroupState& state,
                                            PartitionId pid) const;
  [[nodiscard]] std::size_t shard_index_of(const GroupState& state,
                                           PartitionId pid) const;
  /// Places a (new) partition into the last shard with spare capacity, or a
  /// fresh shard; returns the shard index.
  std::size_t assign_to_shard(GroupState& state, PartitionId pid);

  void create_group_sized(const GroupId& gid,
                          std::span<const core::Identity> members,
                          std::size_t partition_size, LogOp logop,
                          const std::string& subject);
  /// Serializes, signs and uploads one shard under a fresh object id;
  /// updates the shard's sid + hash in the state.
  void rewrite_shard(const GroupId& gid, GroupState& state, std::size_t shard);
  /// Uploads the full cipher bundle under a fresh id (gk rotations) and
  /// clears the overlay map.
  void write_bundle(const GroupId& gid, GroupState& state);
  /// Uploads one partition's cipher as an overlay under a fresh id.
  void write_overlay(const GroupId& gid, GroupState& state, PartitionId pid);
  /// The commit point: CAS of the signed manifest against the cached
  /// version. Writes the commit's signed delta first (d<counter>, pinned by
  /// the manifest's delta_hash) unless the staged ops are empty (snapshot
  /// barrier). The manifest carries an enclave-signed freshness token
  /// (tentative counter); the counter is confirmed to the platform only
  /// after the CAS lands, and the commit is announced on the gossip channel.
  /// Detects this admin's own ambiguous commits (write applied, response
  /// lost) by re-reading and comparing payloads; false means a real
  /// concurrent update.
  [[nodiscard]] bool push_index(const GroupId& gid, GroupState& state,
                                const LogHead& log_head);
  /// Builds the manifest for the current state (shards, cipher objects,
  /// epoch, log head, freshness, delta window).
  [[nodiscard]] GroupManifest build_manifest(const GroupState& state) const;
  /// Verifies a synced manifest's freshness token: enclave signature,
  /// binding to (gk_epoch, log_head), and counter not below the platform's
  /// confirmed floor. Throws util::IntegrityError on forgery/mis-binding and
  /// cloud::TransientError on a rolled-back (or lagging) view.
  void check_index_freshness(const GroupId& gid, const GroupManifest& m);
  /// Best-effort publication of the committed (counter, log_head) to the
  /// gossip channel, so clients can spot rollbacks served to them even
  /// before any peer client has seen the new commit.
  void publish_freshness_gossip(const GroupId& gid,
                                const enclave::FreshnessToken& token);
  void push_sealed_gk(const GroupId& gid, const GroupState& state);
  /// CAS-merge publication of one op-log entry (pre-commit): fetch, rebase
  /// our entry onto the remote head, put_cas; on conflict re-fetch and merge
  /// so no concurrent admin's entries are lost. Returns the entry's hash —
  /// the manifest's log_head anchor. All-zero when logging is off.
  LogHead publish_log_entry(const GroupId& gid, LogOp op,
                            const std::string& subject);
  [[nodiscard]] bool verify_envelope(const SignedEnvelope& env) const;
  /// Post-commit sweep: deletes shard / cipher / delta / sealed-gk files
  /// that the committed manifest no longer references (deltas: anything
  /// outside [delta_base, counter]). Best-effort — a failed sweep leaves
  /// orphans for the next gc/recover, never an inconsistency.
  void gc_group(const GroupId& gid, const GroupState& state);
  /// Advances the local id/epoch/object counters past every id the
  /// committed state carries for this admin's nonce.
  void bump_counters_past(GroupState& state) const;
  /// The heuristic from §V-A: more than half of the partitions below 2/3
  /// occupancy triggers a full rebuild (snapshot barrier).
  bool should_repartition(const GroupState& state) const;
  /// The same occupancy rule applied to one shard's partitions.
  bool shard_should_repartition(const GroupState& state,
                                const Shard& shard) const;
  /// Shard-local rebuild: merges the shard's members into fresh partitions
  /// of the target size wrapping the CURRENT gk (no rotation), under fresh
  /// stable pids; stages a repartition delta op so warm clients fold it.
  /// Pure state surgery — the caller rewrites the shard and the bundle.
  void repartition_shard(GroupState& state, std::size_t shard);
  void rebuild_group(const GroupId& gid, GroupState& state);

  /// Retry wrapper for a whole mutation: runs `op` against the cached state,
  /// publishes the staged op-log entry, then attempts the manifest CAS; on
  /// conflict re-syncs and re-runs the (idempotent) op. `op` is called as
  /// op(state, staged) — `staged` lets the re-partitioning path publish its
  /// log entry before handing off to rebuild_group.
  template <typename Op>
  OpOutcome mutate_with_retry(const GroupId& gid, LogOp logop,
                              const std::string& subject, Op&& op);

  /// Retries `f` on retryable faults (transient) per config_.retry;
  /// CrashError, IntegrityError and everything else propagate.
  template <typename F>
  auto with_retries(F&& f) {
    return util::retry_faults(config_.retry, std::forward<F>(f),
                              &stats_.transient_retries);
  }

  enclave::IbbeEnclave& enclave_;
  cloud::CloudStore& cloud_;
  pki::EcdsaKeyPair signing_key_;
  AdminConfig config_;
  crypto::Drbg rng_;  // untrusted-side randomness (partition placement only)
  std::map<GroupId, GroupState> cache_;
  std::map<GroupId, MembershipLog> logs_;
  PartitionAdvisor advisor_;
  AdminStats stats_;
};

}  // namespace ibbe::system
