#include "system/advisor.h"

#include <algorithm>
#include <cmath>

namespace ibbe::system {

std::size_t PartitionAdvisor::recommend(std::size_t group_size,
                                        std::size_t min_size,
                                        std::size_t max_size) const {
  if (max_size < min_size) max_size = min_size;
  if (removes_ == 0) return min_size;
  if (decrypts_ == 0) return max_size;
  double r = static_cast<double>(removes_);
  double d = static_cast<double>(decrypts_);
  double n = static_cast<double>(std::max<std::size_t>(group_size, 1));
  double optimal = std::sqrt(r * n * model_.rekey_seconds /
                             (d * model_.decrypt_seconds_per_member));
  auto m = static_cast<std::size_t>(std::llround(optimal));
  return std::clamp(m, min_size, max_size);
}

}  // namespace ibbe::system
