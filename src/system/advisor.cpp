#include "system/advisor.h"

#include <algorithm>
#include <cmath>

namespace ibbe::system {

std::size_t PartitionAdvisor::recommend(std::size_t group_size,
                                        std::size_t min_size,
                                        std::size_t max_size) const {
  if (max_size < min_size) max_size = min_size;
  if (removes_ == 0) return min_size;
  if (decrypts_ == 0) return max_size;
  double r = static_cast<double>(removes_);
  double d = static_cast<double>(decrypts_);
  double n = static_cast<double>(std::max<std::size_t>(group_size, 1));
  double optimal = std::sqrt(r * n * model_.rekey_seconds /
                             (d * model_.decrypt_seconds_per_member));
  auto m = static_cast<std::size_t>(std::llround(optimal));
  return std::clamp(m, min_size, max_size);
}

std::size_t PartitionAdvisor::recommend_shard_partitions(
    std::size_t partition_count, std::size_t partition_size) {
  constexpr double ref_bytes = 48.0;     // u64 sid + 32-byte hash + framing
  constexpr double member_bytes = 16.0;  // u32 prefix + typical identity
  double p = static_cast<double>(std::max<std::size_t>(partition_count, 1));
  double m = static_cast<double>(std::max<std::size_t>(partition_size, 1));
  double optimal = std::sqrt(p * ref_bytes / (m * member_bytes));
  auto k = static_cast<std::size_t>(std::llround(optimal));
  return std::clamp<std::size_t>(k, 1, std::max<std::size_t>(partition_count, 1));
}

}  // namespace ibbe::system
