// Client API (paper §V): no SGX required.
//
// A client holds the system public key, its provisioned IBBE user key and
// the administrator's signature-verification key. It derives the group key
// entirely from public cloud metadata:
//
//   index -> my partition -> IBBE decrypt bk (O(|p|^2) + 2 pairings)
//         -> gk = AES-GCM-open(SHA-256(bk), y_p)
//
// Change detection uses the store's long polling on the group directory,
// mirroring the paper's Dropbox long-polling client.
#pragma once

#include <chrono>

#include "cloud/store.h"
#include "ibbe/ibbe.h"
#include "system/metadata.h"

namespace ibbe::system {

struct ClientStats {
  std::uint64_t fetches = 0;
  std::uint64_t decryptions = 0;
  std::uint64_t signature_failures = 0;
};

class ClientApi {
 public:
  ClientApi(cloud::CloudStore& cloud, core::PublicKey pk,
            core::UserSecretKey usk, ec::P256Point admin_verification_key);
  /// Multi-administrator deployments: metadata signed by any of `admin_keys`
  /// is accepted.
  ClientApi(cloud::CloudStore& cloud, core::PublicKey pk,
            core::UserSecretKey usk, std::vector<ec::P256Point> admin_keys);

  /// Validates the provisioned user key against the system public key
  /// (core::verify_user_key) — the paper's guard against a rogue issuer.
  /// Repeated calls reuse the PK's cached pairing precomputation.
  [[nodiscard]] bool verify_credentials() const;

  /// Full fetch-and-decrypt; std::nullopt if this user is not (or no longer)
  /// a member, or the metadata fails authentication.
  [[nodiscard]] std::optional<util::Bytes> fetch_group_key(const GroupId& gid);

  /// Blocks on the group's directory version until it changes relative to
  /// the last observation, then re-derives the key. std::nullopt on timeout
  /// or revocation.
  [[nodiscard]] std::optional<util::Bytes> wait_for_update(
      const GroupId& gid, std::chrono::milliseconds timeout);

  [[nodiscard]] const ClientStats& stats() const { return stats_; }
  [[nodiscard]] const core::Identity& identity() const { return usk_.id; }

 private:
  [[nodiscard]] std::optional<util::Bytes> fetch_verified(const std::string& path);

  cloud::CloudStore& cloud_;
  core::PublicKey pk_;
  core::UserSecretKey usk_;
  std::vector<ec::P256Point> admin_keys_;
  std::map<GroupId, std::uint64_t> seen_versions_;
  ClientStats stats_;
};

}  // namespace ibbe::system
