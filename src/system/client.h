// Client API (paper §V): no SGX required.
//
// A client holds the system public key, its provisioned IBBE user key and
// the administrator's signature-verification key. It derives the group key
// entirely from public cloud metadata:
//
//   manifest -> my partition (cached index) -> partition ciphertext
//            -> IBBE decrypt bk (O(|p|^2) + 2 pairings)
//            -> gk = AES-GCM-open(SHA-256(bk), y_p)
//
// The membership index is sharded (metadata.h): the manifest pins each
// shard's content hash, and every commit publishes a signed incremental
// delta. A client keeps a locally cached CachedIndex per group; on fetch it
//   * reuses the cache untouched when the manifest shows the same commit
//     (warm path — zero index bytes downloaded),
//   * folds the missing deltas when its cache is inside the manifest's
//     retention window (verifying each delta's signature, its seq/log-head
//     chain, and the last one against the manifest's delta hash),
//   * falls back to a full shard-by-shard snapshot on any gap, signature
//     failure, chain break, or fork verdict — folding can degrade service,
//     never correctness.
// Membership lookups on the cached index are O(1) via a lazily built hash
// map that delta folds keep incrementally up to date.
//
// Change detection uses the store's long polling on the group directory,
// mirroring the paper's Dropbox long-polling client.
//
// Degraded-mode behaviour (docs/fault_model.md): every cloud read retries
// transient errors under the configured RetryPolicy, stale manifest reads
// are rejected by version monotonicity (the commit point only ever raises
// the index version), and a torn snapshot — a manifest referencing a shard
// or cipher object the replica does not serve yet, a shard whose bytes do
// not match the pinned hash, an unverifiable envelope, or a ciphertext that
// fails to decrypt for a listed member — triggers a full snapshot re-fetch
// rather than an error. Only a consistent, authenticated view ever produces
// a key; only a consistent view proves non-membership.
//
// Byzantine-cloud defence (opt-in, docs/fault_model.md "Malicious tier"):
// enable_freshness() makes the client verify the enclave-signed freshness
// token every committed manifest carries — signature, binding to
// (gk_epoch, log_head), and monotonicity against a per-group high-water mark
// — so a rolled-back manifest+log pair (internally consistent, correctly
// signed, merely OLD) is rejected, not just a spliced one. enable_gossip()
// adds fork detection: clients piggyback their observed (counter, log_head)
// on an out-of-band channel and cross-check it before accepting a view, so
// two clients served divergent equal-counter views detect the fork within
// one poll round. Gossip is an unsigned HINT — it can only make this client
// refuse a view (denial of service, already in the cloud's power), never
// accept a stale one. On detection the client degrades gracefully: fetch()
// reports `stale` or `forked` and returns the last VERIFIED key read-only;
// it never silently serves unverified state.
#pragma once

#include <chrono>
#include <set>

#include "cloud/store.h"
#include "ibbe/ibbe.h"
#include "system/metadata.h"
#include "util/retry.h"

namespace ibbe::system {

struct ClientStats {
  std::uint64_t fetches = 0;
  std::uint64_t decryptions = 0;
  std::uint64_t signature_failures = 0;
  std::uint64_t transient_retries = 0;    // cloud round trips retried
  std::uint64_t stale_reads_rejected = 0; // manifest versions below the floor
  std::uint64_t degraded_refetches = 0;   // whole-snapshot re-fetches
  std::uint64_t delta_folds = 0;          // deltas folded into the cache
  std::uint64_t fold_fallbacks = 0;       // cache discarded -> full snapshot
  std::uint64_t freshness_rejections = 0; // views below the freshness HWM
  std::uint64_t forks_detected = 0;       // equal-counter divergent views
  std::uint64_t gossip_rounds = 0;        // observation scans performed
};

class ClientApi {
 public:
  ClientApi(cloud::CloudStore& cloud, core::PublicKey pk,
            core::UserSecretKey usk, ec::P256Point admin_verification_key);
  /// Multi-administrator deployments: metadata signed by any of `admin_keys`
  /// is accepted.
  ClientApi(cloud::CloudStore& cloud, core::PublicKey pk,
            core::UserSecretKey usk, std::vector<ec::P256Point> admin_keys);

  /// Backoff discipline for transient cloud errors and snapshot re-fetches.
  void set_retry_policy(util::RetryPolicy policy) { retry_ = policy; }

  /// Opts in to enclave-anchored rollback protection: every manifest must
  /// carry a freshness token verifiable under the enclave identity key,
  /// bound to the manifest's (gk_epoch, log_head), with a counter that never
  /// moves backwards per group. Without this call behaviour is unchanged.
  void enable_freshness(ec::P256Point enclave_identity_key) {
    freshness_key_ = enclave_identity_key;
  }
  /// Opts in to fork detection: publish this client's observed
  /// (counter, log_head) under gossip/<gid>/client-<id> and cross-check
  /// peers' observations before accepting any view. Requires
  /// enable_freshness to have any effect.
  void enable_gossip(std::string client_id) { gossip_id_ = std::move(client_id); }

  /// Validates the provisioned user key against the system public key
  /// (core::verify_user_key) — the paper's guard against a rogue issuer.
  /// Repeated calls reuse the PK's cached pairing precomputation.
  [[nodiscard]] bool verify_credentials() const;

  /// What a full fetch concluded about the group, beyond key-or-no-key.
  enum class FetchStatus {
    ok,           // fresh verified view; `key` holds the group key
    not_member,   // a fresh consistent view proves we are not in the group
    stale,        // every view offered was below the freshness high-water
                  // mark (rollback); `key` is the last VERIFIED key, if any
    forked,       // divergent equal-counter views proven (sticky per group);
                  // `key` is the last VERIFIED key, if any
    unavailable,  // retries exhausted without a consistent view
  };
  struct FetchResult {
    FetchStatus status = FetchStatus::unavailable;
    /// The group key on `ok`; on `stale`/`forked`, the last key this client
    /// VERIFIED — safe for reading existing data, never for new writes.
    std::optional<util::Bytes> key;
  };

  /// Full fetch-and-decrypt with the Byzantine verdict surfaced.
  [[nodiscard]] FetchResult fetch(const GroupId& gid);

  /// Full fetch-and-decrypt; std::nullopt if this user is not (or no longer)
  /// a member, or the metadata fails authentication (fetch().key iff ok).
  [[nodiscard]] std::optional<util::Bytes> fetch_group_key(const GroupId& gid);

  /// True once divergent views have been proven for the group. Sticky: a
  /// fork is an existential property of the server, not a transient fault.
  [[nodiscard]] bool is_forked(const GroupId& gid) const {
    return forked_.count(gid) != 0;
  }

  /// Blocks until the group's COMMITTED state changes relative to the last
  /// observation, then re-derives the key. std::nullopt on timeout or
  /// revocation. Directory wakes caused by an admin's pre-commit shadow
  /// writes (fresh shards, deltas, sealed gk, op-log — all pushed before the
  /// manifest CAS) do not complete the wait: only the manifest version
  /// moving past the one this client last authenticated does. Spurious
  /// long-poll timeouts and transient poll errors re-arm with the remaining
  /// budget.
  [[nodiscard]] std::optional<util::Bytes> wait_for_update(
      const GroupId& gid, std::chrono::milliseconds timeout);

  [[nodiscard]] const ClientStats& stats() const { return stats_; }
  [[nodiscard]] const core::Identity& identity() const { return usk_.id; }

 private:
  /// One snapshot attempt's verdict.
  enum class Fetch {
    ok,          // `key` holds the group key
    not_member,  // a consistent view proves we are not in the group
    degraded,    // torn/stale/unauthenticated view: re-fetch the snapshot
    forked,      // divergent equal-counter views proven — terminal
  };
  /// `fresh_rejected` is set (never cleared) when a degraded verdict was a
  /// FRESHNESS rejection, so retry exhaustion reports `stale`, not
  /// `unavailable`.
  Fetch fetch_once(const GroupId& gid, util::Bytes& key, bool& fresh_rejected);
  [[nodiscard]] bool verify_any(const SignedEnvelope& env) const;

  /// Brings this group's CachedIndex up to the manifest's commit: warm reuse
  /// -> delta fold -> full snapshot, in that order. Returns the cached view,
  /// or nullptr when even the snapshot read a torn/unauthenticated state
  /// (the fetch attempt degrades).
  CachedIndex* refresh_view(const GroupId& gid, const GroupManifest& m);
  /// Folds deltas (cached.counter, m.counter] into `view`. False on any gap,
  /// signature/parse failure, chain break, or delta-hash mismatch.
  bool fold_deltas(const GroupId& gid, const GroupManifest& m,
                   CachedIndex& view);
  /// Rebuilds the view from every shard, hash-checked against the manifest.
  bool load_snapshot(const GroupId& gid, const GroupManifest& m,
                     CachedIndex& view);
  /// The partition's current ciphertext: the manifest's overlay if one is
  /// live for `pid`, else the bundle entry. Caches by object path (objects
  /// are copy-on-write, so a path's content never changes). nullptr on a
  /// torn or unauthenticated read.
  const enclave::PartitionCiphertext* get_cipher(const GroupId& gid,
                                                 const GroupManifest& m,
                                                 PartitionId pid);
  /// Drops the group's index + cipher caches (cross-file torn snapshot: the
  /// next attempt rebuilds from scratch).
  void invalidate_caches(const GroupId& gid);

  /// Freshness-token checks + gossip cross-check for an authenticated
  /// manifest.
  Fetch check_freshness(const GroupId& gid, const GroupManifest& m,
                        bool& fresh_rejected);
  /// Raises the per-group high-water mark and gossips the advance.
  void note_fresh_view(const GroupId& gid, const enclave::FreshnessToken& tok);
  void publish_gossip(const GroupId& gid, const enclave::FreshnessToken& tok);
  [[nodiscard]] std::vector<FreshnessObservation> read_gossip(
      const GroupId& gid) const;
  [[nodiscard]] std::optional<util::Bytes> last_key(const GroupId& gid) const;

  /// Retries `f` on retryable faults (transient) per retry_; crash and
  /// integrity faults propagate.
  template <typename F>
  auto with_retries(F&& f) {
    return util::retry_faults(retry_, std::forward<F>(f),
                              &stats_.transient_retries);
  }

  cloud::CloudStore& cloud_;
  core::PublicKey pk_;
  core::UserSecretKey usk_;
  std::vector<ec::P256Point> admin_keys_;
  util::RetryPolicy retry_;
  std::map<GroupId, std::uint64_t> seen_versions_;
  // Highest authenticated manifest version seen per group: the commit point
  // only moves versions forward, so anything below is a stale replica read.
  std::map<GroupId, std::uint64_t> index_floor_;

  // ---- local index + cipher caches (the warm/fold fast paths) ----
  std::map<GroupId, CachedIndex> cache_;
  struct CipherCache {
    std::string bundle_path;  // which bundle object `bundle` was parsed from
    CipherBundle bundle;
    // overlay object path -> ciphertext; cleared when the bundle rotates
    // (a rotation supersedes every overlay of the previous epoch).
    std::map<std::string, enclave::PartitionCiphertext> overlays;
  };
  std::map<GroupId, CipherCache> cipher_cache_;

  // ---- Byzantine defence state (inert until enable_freshness) ----
  struct FreshnessHwm {
    std::uint64_t counter = 0;
    std::array<std::uint8_t, 32> log_head{};
  };
  std::optional<ec::P256Point> freshness_key_;  // enclave identity key
  std::string gossip_id_;                       // empty = gossip off
  std::map<GroupId, FreshnessHwm> freshness_hwm_;
  std::set<GroupId> forked_;                    // proven-divergent groups
  std::map<GroupId, util::Bytes> last_verified_key_;  // degraded read-only

  ClientStats stats_;
};

}  // namespace ibbe::system
