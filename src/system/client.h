// Client API (paper §V): no SGX required.
//
// A client holds the system public key, its provisioned IBBE user key and
// the administrator's signature-verification key. It derives the group key
// entirely from public cloud metadata:
//
//   index -> my partition -> IBBE decrypt bk (O(|p|^2) + 2 pairings)
//         -> gk = AES-GCM-open(SHA-256(bk), y_p)
//
// Change detection uses the store's long polling on the group directory,
// mirroring the paper's Dropbox long-polling client.
//
// Degraded-mode behaviour (docs/fault_model.md): every cloud read retries
// transient errors under the configured RetryPolicy, stale index reads are
// rejected by version monotonicity (the commit point only ever raises the
// index version), and a torn snapshot — an index referencing a partition the
// replica does not serve yet, an unverifiable envelope, or a ciphertext that
// fails to decrypt for a listed member — triggers a full snapshot re-fetch
// rather than an error. Only a consistent, authenticated view ever produces
// a key; only a consistent view proves non-membership.
#pragma once

#include <chrono>

#include "cloud/store.h"
#include "ibbe/ibbe.h"
#include "system/metadata.h"
#include "util/retry.h"

namespace ibbe::system {

struct ClientStats {
  std::uint64_t fetches = 0;
  std::uint64_t decryptions = 0;
  std::uint64_t signature_failures = 0;
  std::uint64_t transient_retries = 0;    // cloud round trips retried
  std::uint64_t stale_reads_rejected = 0; // index versions below the floor
  std::uint64_t degraded_refetches = 0;   // whole-snapshot re-fetches
};

class ClientApi {
 public:
  ClientApi(cloud::CloudStore& cloud, core::PublicKey pk,
            core::UserSecretKey usk, ec::P256Point admin_verification_key);
  /// Multi-administrator deployments: metadata signed by any of `admin_keys`
  /// is accepted.
  ClientApi(cloud::CloudStore& cloud, core::PublicKey pk,
            core::UserSecretKey usk, std::vector<ec::P256Point> admin_keys);

  /// Backoff discipline for transient cloud errors and snapshot re-fetches.
  void set_retry_policy(util::RetryPolicy policy) { retry_ = policy; }

  /// Validates the provisioned user key against the system public key
  /// (core::verify_user_key) — the paper's guard against a rogue issuer.
  /// Repeated calls reuse the PK's cached pairing precomputation.
  [[nodiscard]] bool verify_credentials() const;

  /// Full fetch-and-decrypt; std::nullopt if this user is not (or no longer)
  /// a member, or the metadata fails authentication.
  [[nodiscard]] std::optional<util::Bytes> fetch_group_key(const GroupId& gid);

  /// Blocks until the group's COMMITTED state changes relative to the last
  /// observation, then re-derives the key. std::nullopt on timeout or
  /// revocation. Directory wakes caused by an admin's pre-commit shadow
  /// writes (fresh partitions, sealed gk, op-log — all pushed before the
  /// index CAS) do not complete the wait: only the index version moving past
  /// the one this client last authenticated does. Spurious long-poll
  /// timeouts and transient poll errors re-arm with the remaining budget.
  [[nodiscard]] std::optional<util::Bytes> wait_for_update(
      const GroupId& gid, std::chrono::milliseconds timeout);

  [[nodiscard]] const ClientStats& stats() const { return stats_; }
  [[nodiscard]] const core::Identity& identity() const { return usk_.id; }

 private:
  /// One snapshot attempt's verdict.
  enum class Fetch {
    ok,          // `key` holds the group key
    not_member,  // a consistent view proves we are not in the group
    degraded,    // torn/stale/unauthenticated view: re-fetch the snapshot
  };
  Fetch fetch_once(const GroupId& gid, util::Bytes& key);
  [[nodiscard]] bool verify_any(const SignedEnvelope& env) const;

  /// Retries `f` on cloud::TransientError per retry_.
  template <typename F>
  auto with_retries(F&& f) {
    return util::retry_on<cloud::TransientError>(retry_, std::forward<F>(f),
                                                 &stats_.transient_retries);
  }

  cloud::CloudStore& cloud_;
  core::PublicKey pk_;
  core::UserSecretKey usk_;
  std::vector<ec::P256Point> admin_keys_;
  util::RetryPolicy retry_;
  std::map<GroupId, std::uint64_t> seen_versions_;
  // Highest authenticated index version seen per group: the commit point
  // only moves versions forward, so anything below is a stale replica read.
  std::map<GroupId, std::uint64_t> index_floor_;
  ClientStats stats_;
};

}  // namespace ibbe::system
