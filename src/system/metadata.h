// On-cloud metadata records for the IBBE-SGX access-control system.
//
// Layout on the store (bi-level hierarchy, as in the paper's Dropbox
// deployment where long polling works per directory):
//
//   groups/<gid>/index   — GroupIndex: partition ids + their member lists
//   groups/<gid>/p<k>    — PartitionRecord: the partition ciphertext + y_p
//
// Both files are wrapped in SignedEnvelope so clients can authenticate that
// membership changes come from an administrator (the paper's authenticity
// requirement; confidentiality of gk needs no signature — it is wrapped).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "enclave/ibbe_enclave.h"
#include "pki/ecdsa.h"

namespace ibbe::system {

using GroupId = std::string;
using PartitionId = std::uint64_t;

struct PartitionRecord {
  PartitionId id = 0;
  std::vector<core::Identity> members;
  enclave::PartitionCiphertext cipher;

  [[nodiscard]] util::Bytes to_bytes() const;
  static PartitionRecord from_bytes(std::span<const std::uint8_t> data);
};

/// User -> partition mapping, stored plainly (the model does not hide member
/// identities; see paper §II).
struct GroupIndex {
  std::vector<PartitionId> partition_ids;
  std::vector<std::vector<core::Identity>> members;  // parallel to ids

  [[nodiscard]] std::optional<std::size_t> find_user(
      const core::Identity& id) const;

  [[nodiscard]] util::Bytes to_bytes() const;
  static GroupIndex from_bytes(std::span<const std::uint8_t> data);
};

/// payload || ECDSA signature by the administrator.
struct SignedEnvelope {
  util::Bytes payload;
  pki::EcdsaSignature signature;

  [[nodiscard]] util::Bytes to_bytes() const;
  static SignedEnvelope from_bytes(std::span<const std::uint8_t> data);

  static SignedEnvelope sign(const pki::EcdsaKeyPair& key, util::Bytes payload);
  [[nodiscard]] bool verify(const ec::P256Point& admin_pub) const;
};

/// Cloud paths.
std::string group_dir(const GroupId& gid);
std::string index_path(const GroupId& gid);
std::string partition_path(const GroupId& gid, PartitionId pid);

}  // namespace ibbe::system
