// On-cloud metadata records for the IBBE-SGX access-control system.
//
// Layout on the store (sharded manifest layout; the paper's Dropbox
// deployment gives us per-directory long polling and per-file CAS):
//
//   groups/<gid>/index      — GroupManifest: shard refs (id + hash), the
//                             cipher-set id, per-partition cipher overlays,
//                             gk_epoch, op-log head, freshness token and the
//                             delta window. THE single CAS commit point.
//   groups/<gid>/s<k>       — IndexShard: the member lists of a few whole
//                             partitions. Copy-on-write (fresh id per
//                             rewrite); pinned by the manifest's shard hash.
//   groups/<gid>/c<k>       — CipherBundle: EVERY partition's ciphertext +
//                             wrapped gk, written once per gk rotation so a
//                             revocation re-uploads one object, not one per
//                             partition.
//   groups/<gid>/o<k>       — CipherOverlay: a single partition's ciphertext
//                             superseding its bundle entry (O(1) adds and
//                             shard-local re-partitions between rotations).
//                             The manifest maps pid -> live overlay id; the
//                             map is cleared whenever a rotation rewrites the
//                             bundle.
//   groups/<gid>/d<seq>     — IndexDelta: the signed membership diff of the
//                             commit whose freshness counter is <seq>,
//                             hash-chained through the op-log heads. Warm
//                             clients fold deltas into a cached index instead
//                             of re-downloading every shard; the manifest's
//                             delta_base bounds the retained window.
//   groups/<gid>/gk<e>.sealed, groups/<gid>/oplog — unchanged.
//
// Partition ids are STABLE logical names (a partition keeps its id across
// mutations); copy-on-write immutability lives in the shard / bundle /
// overlay / delta object ids instead. Everything except the sealed gk is
// wrapped in SignedEnvelope so clients can authenticate that membership
// changes come from an administrator (the paper's authenticity requirement;
// confidentiality of gk needs no signature — it is wrapped).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "enclave/ibbe_enclave.h"
#include "pki/ecdsa.h"

namespace ibbe::system {

using GroupId = std::string;
using PartitionId = std::uint64_t;
using Hash32 = std::array<std::uint8_t, 32>;

/// SHA-256 of an object's stored bytes (the manifest pins shards/deltas by
/// content, so a stale replica serving an old shard under a live name is
/// detected without trusting cloud versions).
Hash32 content_hash(std::span<const std::uint8_t> data);

/// Manifest entry pinning one shard: which object holds it and what its
/// stored bytes must hash to.
struct ShardRef {
  std::uint64_t sid = 0;
  Hash32 hash{};
};

/// The commit point of every group mutation (see the layout comment above).
/// All shard / bundle / overlay / delta / sealed-gk / op-log writes land on
/// the cloud BEFORE the CAS that publishes this record makes them reachable.
/// It anchors the state that needs the CAS'd lineage for integrity: the
/// shard hashes, which sealed-gk epoch and cipher objects are current, the
/// hash of the op-log entry that committed it (so a rolled-back log suffix
/// is detectable — see MembershipLog::audit), the enclave-signed freshness
/// token binding the commit to a platform monotonic counter (rollback of the
/// whole index+log pair is detectable too — docs/fault_model.md), and the
/// hash of this commit's delta so the chain clients fold is exactly the
/// committed one.
struct GroupManifest {
  std::vector<ShardRef> shards;
  std::uint64_t cipher_set = 0;                // live CipherBundle object id
  std::map<PartitionId, std::uint64_t> overlays;  // pid -> live overlay id
  std::uint64_t gk_epoch = 0;                  // which gk<e>.sealed is live
  std::array<std::uint8_t, 32> log_head{};     // committed op-log head (0 = none)
  enclave::FreshnessToken freshness;           // counter == 0 ⇒ not attested
  /// Earliest delta seq still retained on the cloud. A snapshot-barrier
  /// commit (creation, full re-partition) publishes no delta and sets this
  /// to counter+1; clients whose cache is older than delta_base-1 must take
  /// a full snapshot.
  std::uint64_t delta_base = 0;
  /// SHA-256 of this commit's stored delta envelope (d<freshness.counter>);
  /// all-zero on a snapshot barrier. Pins the delta a racing or Byzantine
  /// writer might have replaced.
  Hash32 delta_hash{};

  [[nodiscard]] util::Bytes to_bytes() const;
  static GroupManifest from_bytes(std::span<const std::uint8_t> data);
};

/// A few whole partitions' member lists (user -> partition mapping is stored
/// plainly; the model does not hide member identities, paper §II). Shards
/// are partition-aligned because a client needs its complete partition
/// member list to run the IBBE decrypt.
struct IndexShard {
  std::uint64_t sid = 0;
  std::vector<std::pair<PartitionId, std::vector<core::Identity>>> partitions;

  [[nodiscard]] util::Bytes to_bytes() const;
  static IndexShard from_bytes(std::span<const std::uint8_t> data);
};

/// Every partition's ciphertext + wrapped gk for one key epoch. Rewritten as
/// a single object per gk rotation — the reason a million-member revocation
/// uploads O(1) objects instead of one per partition.
struct CipherBundle {
  std::vector<std::pair<PartitionId, enclave::PartitionCiphertext>> entries;

  [[nodiscard]] const enclave::PartitionCiphertext* find(PartitionId pid) const;

  [[nodiscard]] util::Bytes to_bytes() const;
  static CipherBundle from_bytes(std::span<const std::uint8_t> data);
};

/// One partition's ciphertext superseding its bundle entry between rotations.
struct CipherOverlay {
  PartitionId pid = 0;
  enclave::PartitionCiphertext cipher;

  [[nodiscard]] util::Bytes to_bytes() const;
  static CipherOverlay from_bytes(std::span<const std::uint8_t> data);
};

/// One membership diff inside an IndexDelta.
struct DeltaOp {
  enum class Kind : std::uint8_t {
    add_member = 1,     // add `user` to partition `pid` (created if absent)
    remove_member = 2,  // remove `user` from `pid` (dropped when emptied)
    repartition = 3,    // shard-local rebuild: `dropped` pids replaced by
                        // `created` (pid, members) partitions
  };
  Kind kind = Kind::add_member;
  core::Identity user;  // add/remove
  PartitionId pid = 0;  // add/remove
  std::vector<PartitionId> dropped;  // repartition
  std::vector<std::pair<PartitionId, std::vector<core::Identity>>> created;
};

/// The signed membership diff of one commit. `seq` equals the commit's
/// freshness counter (so the file name d<seq> and the enclave counter agree
/// by construction), and consecutive deltas chain through the op-log heads
/// the commits anchored: delta d must satisfy d.prev_log_head ==
/// previous-commit.log_head, which the client verifies while folding —
/// splicing, reordering or replaying deltas breaks the chain and forces a
/// (safe) snapshot fallback.
struct IndexDelta {
  std::uint64_t seq = 0;
  std::array<std::uint8_t, 32> prev_log_head{};
  std::array<std::uint8_t, 32> log_head{};
  std::vector<DeltaOp> ops;

  [[nodiscard]] util::Bytes to_bytes() const;
  static IndexDelta from_bytes(std::span<const std::uint8_t> data);
};

/// A client's (or test's) locally cached, foldable view of a group's
/// membership: the partition -> members mapping at a known commit
/// (counter, log_head). `apply` folds one IndexDelta; `find_user` is the
/// O(1) membership lookup backed by a lazily built hash map that fold
/// operations keep incrementally up to date (the seed's linear scan was
/// O(total members) per fetch — at 10⁶ members that dominated everything).
class CachedIndex {
 public:
  std::uint64_t counter = 0;
  std::array<std::uint8_t, 32> log_head{};
  std::uint64_t gk_epoch = 0;

  [[nodiscard]] const std::vector<
      std::pair<PartitionId, std::vector<core::Identity>>>&
  partitions() const {
    return partitions_;
  }
  /// Appends a partition (snapshot assembly). Invalidates the lookup map.
  void add_partition(PartitionId pid, std::vector<core::Identity> members);

  /// O(1) membership lookup (amortized: the map is built on first use).
  [[nodiscard]] std::optional<PartitionId> find_user(
      const core::Identity& id) const;
  /// The member list of one partition; nullptr if unknown.
  [[nodiscard]] const std::vector<core::Identity>* members_of(
      PartitionId pid) const;
  [[nodiscard]] std::size_t member_count() const;

  /// Folds one delta. Returns false unless `d` is exactly the next commit
  /// (seq == counter+1 and prev_log_head chains from our log_head) and every
  /// op is structurally consistent with the current view; a replayed or
  /// duplicated delta therefore is a no-op by construction (the chain check
  /// rejects it before anything mutates). A STRUCTURAL rejection may leave a
  /// partially folded view — callers must discard the view and fall back to
  /// a snapshot, which is what the client's fold path does. On success the
  /// lookup map is updated incrementally.
  [[nodiscard]] bool apply(const IndexDelta& d);

 private:
  std::vector<std::pair<PartitionId, std::vector<core::Identity>>> partitions_;
  mutable std::unordered_map<core::Identity, PartitionId> user_map_;
  mutable bool map_built_ = false;

  [[nodiscard]] std::size_t partition_index(PartitionId pid) const;
};

/// payload || ECDSA signature by the administrator.
struct SignedEnvelope {
  util::Bytes payload;
  pki::EcdsaSignature signature;

  [[nodiscard]] util::Bytes to_bytes() const;
  static SignedEnvelope from_bytes(std::span<const std::uint8_t> data);

  static SignedEnvelope sign(const pki::EcdsaKeyPair& key, util::Bytes payload);
  [[nodiscard]] bool verify(const ec::P256Point& admin_pub) const;
};

/// One observer's view of a group's freshness, published to the gossip
/// channel (unsigned — the channel is a HINT: a forged observation can make
/// verifiers refuse service, never accept stale state). Two observations
/// with the same counter but different log heads are proof of a fork.
struct FreshnessObservation {
  std::uint64_t counter = 0;
  std::array<std::uint8_t, 32> log_head{};

  [[nodiscard]] util::Bytes to_bytes() const;
  static FreshnessObservation from_bytes(std::span<const std::uint8_t> data);
};

/// Cloud paths.
std::string group_dir(const GroupId& gid);
std::string index_path(const GroupId& gid);
std::string shard_path(const GroupId& gid, std::uint64_t sid);
std::string cipher_bundle_path(const GroupId& gid, std::uint64_t id);
std::string cipher_overlay_path(const GroupId& gid, std::uint64_t id);
std::string delta_path(const GroupId& gid, std::uint64_t seq);
/// The sealed group key is stored under an epoch-keyed name (fresh epoch per
/// rotation, allocated like object ids so concurrent admins never write the
/// same path); the committed manifest says which epoch is live.
std::string sealed_gk_path(const GroupId& gid, std::uint64_t epoch);
/// Freshness-gossip channel. Deliberately OUTSIDE groups/<gid>/: gossip
/// writes must not wake group-directory long-pollers, and the channel models
/// the out-of-band client-to-client path of ROTE-style fork detection.
std::string gossip_dir(const GroupId& gid);
std::string gossip_path(const GroupId& gid, const std::string& observer);

}  // namespace ibbe::system
