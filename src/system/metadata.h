// On-cloud metadata records for the IBBE-SGX access-control system.
//
// Layout on the store (bi-level hierarchy, as in the paper's Dropbox
// deployment where long polling works per directory):
//
//   groups/<gid>/index   — GroupIndex: partition ids + their member lists
//   groups/<gid>/p<k>    — PartitionRecord: the partition ciphertext + y_p
//
// Both files are wrapped in SignedEnvelope so clients can authenticate that
// membership changes come from an administrator (the paper's authenticity
// requirement; confidentiality of gk needs no signature — it is wrapped).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "enclave/ibbe_enclave.h"
#include "pki/ecdsa.h"

namespace ibbe::system {

using GroupId = std::string;
using PartitionId = std::uint64_t;

struct PartitionRecord {
  PartitionId id = 0;
  std::vector<core::Identity> members;
  enclave::PartitionCiphertext cipher;

  [[nodiscard]] util::Bytes to_bytes() const;
  static PartitionRecord from_bytes(std::span<const std::uint8_t> data);
};

/// User -> partition mapping, stored plainly (the model does not hide member
/// identities; see paper §II).
///
/// The index is the COMMIT POINT of every group mutation: partition records,
/// the sealed group key and the op-log entry all land on the cloud first,
/// and only the CAS that publishes this record makes them reachable. It
/// therefore also anchors the pieces of state that need the CAS'd lineage
/// for integrity: which sealed-gk epoch is current, the hash of the op-log
/// entry that committed this index (so a rolled-back log suffix is
/// detectable — see MembershipLog::audit), and the enclave-signed freshness
/// token that binds this commit to a platform monotonic counter (so a
/// wholesale rollback of the index+log pair is detectable too — see
/// docs/fault_model.md).
struct GroupIndex {
  std::vector<PartitionId> partition_ids;
  std::vector<std::vector<core::Identity>> members;  // parallel to ids
  std::uint64_t gk_epoch = 0;                // which gk<epoch>.sealed is live
  std::array<std::uint8_t, 32> log_head{};   // committed op-log head (0 = no log)
  enclave::FreshnessToken freshness;         // counter == 0 ⇒ not attested

  [[nodiscard]] std::optional<std::size_t> find_user(
      const core::Identity& id) const;

  [[nodiscard]] util::Bytes to_bytes() const;
  static GroupIndex from_bytes(std::span<const std::uint8_t> data);
};

/// payload || ECDSA signature by the administrator.
struct SignedEnvelope {
  util::Bytes payload;
  pki::EcdsaSignature signature;

  [[nodiscard]] util::Bytes to_bytes() const;
  static SignedEnvelope from_bytes(std::span<const std::uint8_t> data);

  static SignedEnvelope sign(const pki::EcdsaKeyPair& key, util::Bytes payload);
  [[nodiscard]] bool verify(const ec::P256Point& admin_pub) const;
};

/// One observer's view of a group's freshness, published to the gossip
/// channel (unsigned — the channel is a HINT: a forged observation can make
/// verifiers refuse service, never accept stale state). Two observations
/// with the same counter but different log heads are proof of a fork.
struct FreshnessObservation {
  std::uint64_t counter = 0;
  std::array<std::uint8_t, 32> log_head{};

  [[nodiscard]] util::Bytes to_bytes() const;
  static FreshnessObservation from_bytes(std::span<const std::uint8_t> data);
};

/// Cloud paths.
std::string group_dir(const GroupId& gid);
std::string index_path(const GroupId& gid);
std::string partition_path(const GroupId& gid, PartitionId pid);
/// The sealed group key is stored under an epoch-keyed name (fresh epoch per
/// rotation, allocated like partition ids so concurrent admins never write
/// the same path); the committed index says which epoch is live.
std::string sealed_gk_path(const GroupId& gid, std::uint64_t epoch);
/// Freshness-gossip channel. Deliberately OUTSIDE groups/<gid>/: gossip
/// writes must not wake group-directory long-pollers, and the channel models
/// the out-of-band client-to-client path of ROTE-style fork detection.
std::string gossip_dir(const GroupId& gid);
std::string gossip_path(const GroupId& gid, const std::string& observer);

}  // namespace ibbe::system
