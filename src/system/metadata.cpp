#include "system/metadata.h"

namespace ibbe::system {

util::Bytes PartitionRecord::to_bytes() const {
  util::ByteWriter w;
  w.u64(id);
  w.u32(static_cast<std::uint32_t>(members.size()));
  for (const auto& m : members) w.str(m);
  w.blob(cipher.to_bytes());
  return w.take();
}

PartitionRecord PartitionRecord::from_bytes(std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  PartitionRecord rec;
  rec.id = r.u64();
  std::size_t n = r.count(4);  // each member is at least a u32 str prefix
  rec.members.reserve(n);
  for (std::size_t i = 0; i < n; ++i) rec.members.push_back(r.str());
  rec.cipher = enclave::PartitionCiphertext::from_bytes(r.blob());
  r.expect_end();
  return rec;
}

std::optional<std::size_t> GroupIndex::find_user(const core::Identity& id) const {
  for (std::size_t p = 0; p < members.size(); ++p) {
    for (const auto& m : members[p]) {
      if (m == id) return p;
    }
  }
  return std::nullopt;
}

util::Bytes GroupIndex::to_bytes() const {
  util::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(partition_ids.size()));
  for (std::size_t p = 0; p < partition_ids.size(); ++p) {
    w.u64(partition_ids[p]);
    w.u32(static_cast<std::uint32_t>(members[p].size()));
    for (const auto& m : members[p]) w.str(m);
  }
  w.u64(gk_epoch);
  w.raw(log_head);
  w.raw(freshness.to_bytes());
  return w.take();
}

GroupIndex GroupIndex::from_bytes(std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  GroupIndex idx;
  std::size_t parts = r.count(12);  // each partition: u64 id + u32 count
  idx.partition_ids.reserve(parts);
  idx.members.reserve(parts);
  for (std::size_t p = 0; p < parts; ++p) {
    idx.partition_ids.push_back(r.u64());
    std::size_t n = r.count(4);  // each member is at least a u32 str prefix
    std::vector<core::Identity> ms;
    ms.reserve(n);
    for (std::size_t i = 0; i < n; ++i) ms.push_back(r.str());
    idx.members.push_back(std::move(ms));
  }
  idx.gk_epoch = r.u64();
  auto head = r.raw(32);
  std::copy(head.begin(), head.end(), idx.log_head.begin());
  idx.freshness = enclave::FreshnessToken::from_bytes(
      r.raw(enclave::FreshnessToken::serialized_size));
  r.expect_end();
  return idx;
}

util::Bytes SignedEnvelope::to_bytes() const {
  util::ByteWriter w;
  w.blob(payload);
  w.raw(signature.to_bytes());
  return w.take();
}

SignedEnvelope SignedEnvelope::from_bytes(std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  SignedEnvelope env;
  env.payload = r.blob();
  env.signature =
      pki::EcdsaSignature::from_bytes(r.raw(pki::EcdsaSignature::serialized_size));
  r.expect_end();
  return env;
}

SignedEnvelope SignedEnvelope::sign(const pki::EcdsaKeyPair& key,
                                    util::Bytes payload) {
  SignedEnvelope env;
  env.payload = std::move(payload);
  env.signature = key.sign(env.payload);
  return env;
}

bool SignedEnvelope::verify(const ec::P256Point& admin_pub) const {
  return pki::ecdsa_verify(admin_pub, payload, signature);
}

util::Bytes FreshnessObservation::to_bytes() const {
  util::ByteWriter w;
  w.u64(counter);
  w.raw(log_head);
  return w.take();
}

FreshnessObservation FreshnessObservation::from_bytes(
    std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  FreshnessObservation obs;
  obs.counter = r.u64();
  auto head = r.raw(32);
  std::copy(head.begin(), head.end(), obs.log_head.begin());
  r.expect_end();
  return obs;
}

std::string group_dir(const GroupId& gid) { return "groups/" + gid; }

std::string index_path(const GroupId& gid) { return group_dir(gid) + "/index"; }

std::string partition_path(const GroupId& gid, PartitionId pid) {
  return group_dir(gid) + "/p" + std::to_string(pid);
}

std::string sealed_gk_path(const GroupId& gid, std::uint64_t epoch) {
  return group_dir(gid) + "/gk" + std::to_string(epoch) + ".sealed";
}

std::string gossip_dir(const GroupId& gid) { return "gossip/" + gid; }

std::string gossip_path(const GroupId& gid, const std::string& observer) {
  return gossip_dir(gid) + "/" + observer;
}

}  // namespace ibbe::system
