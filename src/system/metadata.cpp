#include "system/metadata.h"

#include <algorithm>

#include "crypto/sha256.h"

namespace ibbe::system {

namespace {

void write_hash(util::ByteWriter& w, const Hash32& h) { w.raw(h); }

Hash32 read_hash(util::ByteReader& r) {
  Hash32 h;
  auto raw = r.raw(32);
  std::copy(raw.begin(), raw.end(), h.begin());
  return h;
}

void write_members(util::ByteWriter& w,
                   const std::vector<core::Identity>& members) {
  w.u32(static_cast<std::uint32_t>(members.size()));
  for (const auto& m : members) w.str(m);
}

std::vector<core::Identity> read_members(util::ByteReader& r) {
  // Every count is clamped against the remaining buffer by ByteReader::count
  // (each member is at least a u32 str prefix), so a hostile length prefix
  // fails with DeserializeError before any allocation.
  std::size_t n = r.count(4);
  std::vector<core::Identity> members;
  members.reserve(n);
  for (std::size_t i = 0; i < n; ++i) members.push_back(r.str());
  return members;
}

}  // namespace

Hash32 content_hash(std::span<const std::uint8_t> data) {
  return crypto::Sha256::hash(data);
}

// ------------------------------------------------------------ GroupManifest

util::Bytes GroupManifest::to_bytes() const {
  util::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(shards.size()));
  for (const auto& ref : shards) {
    w.u64(ref.sid);
    write_hash(w, ref.hash);
  }
  w.u64(cipher_set);
  w.u32(static_cast<std::uint32_t>(overlays.size()));
  for (const auto& [pid, oid] : overlays) {
    w.u64(pid);
    w.u64(oid);
  }
  w.u64(gk_epoch);
  w.raw(log_head);
  w.raw(freshness.to_bytes());
  w.u64(delta_base);
  write_hash(w, delta_hash);
  return w.take();
}

GroupManifest GroupManifest::from_bytes(std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  GroupManifest m;
  std::size_t shards = r.count(40);  // u64 sid + 32-byte hash each
  m.shards.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    ShardRef ref;
    ref.sid = r.u64();
    ref.hash = read_hash(r);
    m.shards.push_back(ref);
  }
  m.cipher_set = r.u64();
  std::size_t overlays = r.count(16);  // u64 pid + u64 oid each
  for (std::size_t i = 0; i < overlays; ++i) {
    auto pid = r.u64();
    m.overlays[pid] = r.u64();
  }
  m.gk_epoch = r.u64();
  m.log_head = read_hash(r);
  m.freshness = enclave::FreshnessToken::from_bytes(
      r.raw(enclave::FreshnessToken::serialized_size));
  m.delta_base = r.u64();
  m.delta_hash = read_hash(r);
  r.expect_end();
  return m;
}

// -------------------------------------------------------------- IndexShard

util::Bytes IndexShard::to_bytes() const {
  util::ByteWriter w;
  w.u64(sid);
  w.u32(static_cast<std::uint32_t>(partitions.size()));
  for (const auto& [pid, members] : partitions) {
    w.u64(pid);
    write_members(w, members);
  }
  return w.take();
}

IndexShard IndexShard::from_bytes(std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  IndexShard shard;
  shard.sid = r.u64();
  std::size_t parts = r.count(12);  // u64 pid + u32 member count each
  shard.partitions.reserve(parts);
  for (std::size_t p = 0; p < parts; ++p) {
    auto pid = r.u64();
    shard.partitions.emplace_back(pid, read_members(r));
  }
  r.expect_end();
  return shard;
}

// ------------------------------------------------------------ CipherBundle

const enclave::PartitionCiphertext* CipherBundle::find(PartitionId pid) const {
  for (const auto& [id, cipher] : entries) {
    if (id == pid) return &cipher;
  }
  return nullptr;
}

util::Bytes CipherBundle::to_bytes() const {
  util::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& [pid, cipher] : entries) {
    w.u64(pid);
    w.blob(cipher.to_bytes());
  }
  return w.take();
}

CipherBundle CipherBundle::from_bytes(std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  CipherBundle bundle;
  std::size_t n = r.count(12);  // u64 pid + u32 blob prefix each
  bundle.entries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto pid = r.u64();
    bundle.entries.emplace_back(
        pid, enclave::PartitionCiphertext::from_bytes(r.blob()));
  }
  r.expect_end();
  return bundle;
}

util::Bytes CipherOverlay::to_bytes() const {
  util::ByteWriter w;
  w.u64(pid);
  w.blob(cipher.to_bytes());
  return w.take();
}

CipherOverlay CipherOverlay::from_bytes(std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  CipherOverlay overlay;
  overlay.pid = r.u64();
  overlay.cipher = enclave::PartitionCiphertext::from_bytes(r.blob());
  r.expect_end();
  return overlay;
}

// -------------------------------------------------------------- IndexDelta

util::Bytes IndexDelta::to_bytes() const {
  util::ByteWriter w;
  w.u64(seq);
  w.raw(prev_log_head);
  w.raw(log_head);
  w.u32(static_cast<std::uint32_t>(ops.size()));
  for (const auto& op : ops) {
    w.u8(static_cast<std::uint8_t>(op.kind));
    switch (op.kind) {
      case DeltaOp::Kind::add_member:
      case DeltaOp::Kind::remove_member:
        w.str(op.user);
        w.u64(op.pid);
        break;
      case DeltaOp::Kind::repartition:
        w.u32(static_cast<std::uint32_t>(op.dropped.size()));
        for (PartitionId pid : op.dropped) w.u64(pid);
        w.u32(static_cast<std::uint32_t>(op.created.size()));
        for (const auto& [pid, members] : op.created) {
          w.u64(pid);
          write_members(w, members);
        }
        break;
    }
  }
  return w.take();
}

IndexDelta IndexDelta::from_bytes(std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  IndexDelta d;
  d.seq = r.u64();
  d.prev_log_head = read_hash(r);
  d.log_head = read_hash(r);
  std::size_t nops = r.count(1);  // each op is at least its kind byte
  d.ops.reserve(nops);
  for (std::size_t i = 0; i < nops; ++i) {
    DeltaOp op;
    auto kind = r.u8();
    switch (kind) {
      case static_cast<std::uint8_t>(DeltaOp::Kind::add_member):
      case static_cast<std::uint8_t>(DeltaOp::Kind::remove_member):
        op.kind = static_cast<DeltaOp::Kind>(kind);
        op.user = r.str();
        op.pid = r.u64();
        break;
      case static_cast<std::uint8_t>(DeltaOp::Kind::repartition): {
        op.kind = DeltaOp::Kind::repartition;
        std::size_t dropped = r.count(8);
        op.dropped.reserve(dropped);
        for (std::size_t k = 0; k < dropped; ++k) op.dropped.push_back(r.u64());
        std::size_t created = r.count(12);
        op.created.reserve(created);
        for (std::size_t k = 0; k < created; ++k) {
          auto pid = r.u64();
          op.created.emplace_back(pid, read_members(r));
        }
        break;
      }
      default:
        throw util::DeserializeError("IndexDelta: unknown op kind");
    }
    d.ops.push_back(std::move(op));
  }
  r.expect_end();
  return d;
}

// ------------------------------------------------------------- CachedIndex

void CachedIndex::add_partition(PartitionId pid,
                                std::vector<core::Identity> members) {
  partitions_.emplace_back(pid, std::move(members));
  map_built_ = false;
  user_map_.clear();
}

std::size_t CachedIndex::partition_index(PartitionId pid) const {
  for (std::size_t p = 0; p < partitions_.size(); ++p) {
    if (partitions_[p].first == pid) return p;
  }
  return partitions_.size();
}

std::optional<PartitionId> CachedIndex::find_user(
    const core::Identity& id) const {
  if (!map_built_) {
    user_map_.clear();
    std::size_t total = 0;
    for (const auto& [pid, members] : partitions_) total += members.size();
    user_map_.reserve(total);
    for (const auto& [pid, members] : partitions_) {
      for (const auto& m : members) user_map_.emplace(m, pid);
    }
    map_built_ = true;
  }
  auto it = user_map_.find(id);
  if (it == user_map_.end()) return std::nullopt;
  return it->second;
}

const std::vector<core::Identity>* CachedIndex::members_of(
    PartitionId pid) const {
  auto p = partition_index(pid);
  if (p == partitions_.size()) return nullptr;
  return &partitions_[p].second;
}

std::size_t CachedIndex::member_count() const {
  std::size_t total = 0;
  for (const auto& [pid, members] : partitions_) total += members.size();
  return total;
}

bool CachedIndex::apply(const IndexDelta& d) {
  // Chain check: exactly the next commit, chained from our log head. A
  // duplicate (seq <= counter) or a gap (seq > counter+1) is rejected
  // without touching the view.
  if (d.seq != counter + 1 || d.prev_log_head != log_head) return false;
  for (const auto& op : d.ops) {
    switch (op.kind) {
      case DeltaOp::Kind::add_member: {
        auto p = partition_index(op.pid);
        if (p == partitions_.size()) {
          partitions_.emplace_back(op.pid,
                                   std::vector<core::Identity>{op.user});
        } else {
          partitions_[p].second.push_back(op.user);
        }
        if (map_built_) user_map_.emplace(op.user, op.pid);
        break;
      }
      case DeltaOp::Kind::remove_member: {
        auto p = partition_index(op.pid);
        if (p == partitions_.size()) return false;  // inconsistent delta
        auto& members = partitions_[p].second;
        auto it = std::find(members.begin(), members.end(), op.user);
        if (it == members.end()) return false;
        members.erase(it);
        if (members.empty()) {
          partitions_.erase(partitions_.begin() +
                            static_cast<std::ptrdiff_t>(p));
        }
        if (map_built_) user_map_.erase(op.user);
        break;
      }
      case DeltaOp::Kind::repartition: {
        for (PartitionId pid : op.dropped) {
          auto p = partition_index(pid);
          if (p == partitions_.size()) return false;
          if (map_built_) {
            for (const auto& m : partitions_[p].second) user_map_.erase(m);
          }
          partitions_.erase(partitions_.begin() +
                            static_cast<std::ptrdiff_t>(p));
        }
        for (const auto& [pid, members] : op.created) {
          if (partition_index(pid) != partitions_.size()) return false;
          if (map_built_) {
            for (const auto& m : members) user_map_.emplace(m, pid);
          }
          partitions_.emplace_back(pid, members);
        }
        break;
      }
    }
  }
  counter = d.seq;
  log_head = d.log_head;
  return true;
}

// ----------------------------------------------------------- SignedEnvelope

util::Bytes SignedEnvelope::to_bytes() const {
  util::ByteWriter w;
  w.blob(payload);
  w.raw(signature.to_bytes());
  return w.take();
}

SignedEnvelope SignedEnvelope::from_bytes(std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  SignedEnvelope env;
  env.payload = r.blob();
  env.signature =
      pki::EcdsaSignature::from_bytes(r.raw(pki::EcdsaSignature::serialized_size));
  r.expect_end();
  return env;
}

SignedEnvelope SignedEnvelope::sign(const pki::EcdsaKeyPair& key,
                                    util::Bytes payload) {
  SignedEnvelope env;
  env.payload = std::move(payload);
  env.signature = key.sign(env.payload);
  return env;
}

bool SignedEnvelope::verify(const ec::P256Point& admin_pub) const {
  return pki::ecdsa_verify(admin_pub, payload, signature);
}

util::Bytes FreshnessObservation::to_bytes() const {
  util::ByteWriter w;
  w.u64(counter);
  w.raw(log_head);
  return w.take();
}

FreshnessObservation FreshnessObservation::from_bytes(
    std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  FreshnessObservation obs;
  obs.counter = r.u64();
  obs.log_head = read_hash(r);
  r.expect_end();
  return obs;
}

std::string group_dir(const GroupId& gid) { return "groups/" + gid; }

std::string index_path(const GroupId& gid) { return group_dir(gid) + "/index"; }

std::string shard_path(const GroupId& gid, std::uint64_t sid) {
  return group_dir(gid) + "/s" + std::to_string(sid);
}

std::string cipher_bundle_path(const GroupId& gid, std::uint64_t id) {
  return group_dir(gid) + "/c" + std::to_string(id);
}

std::string cipher_overlay_path(const GroupId& gid, std::uint64_t id) {
  return group_dir(gid) + "/o" + std::to_string(id);
}

std::string delta_path(const GroupId& gid, std::uint64_t seq) {
  return group_dir(gid) + "/d" + std::to_string(seq);
}

std::string sealed_gk_path(const GroupId& gid, std::uint64_t epoch) {
  return group_dir(gid) + "/gk" + std::to_string(epoch) + ".sealed";
}

std::string gossip_dir(const GroupId& gid) { return "gossip/" + gid; }

std::string gossip_path(const GroupId& gid, const std::string& observer) {
  return gossip_dir(gid) + "/" + observer;
}

}  // namespace ibbe::system
