#include "system/ibbe_scheme.h"

namespace ibbe::system {

namespace {

const GroupId kGroup = "g";

// A simulated process death mid-recovery (or a mutation that keeps crashing)
// must terminate eventually; real schedules never get close to this.
constexpr int max_restart_attempts = 1000;

AdminConfig make_config(std::size_t partition_size, bool faulty) {
  AdminConfig config;
  config.partition_size = partition_size;
  if (faulty) {
    config.log_operations = true;  // recovery tests audit the log too
    config.retry = config.retry.without_delays();
  }
  return config;
}

pki::EcdsaKeyPair make_admin_key(std::uint64_t seed) {
  crypto::Drbg key_rng(seed + 1);
  return pki::EcdsaKeyPair::generate(key_rng);
}

}  // namespace

IbbeSgxScheme::IbbeSgxScheme(std::size_t partition_size, std::uint64_t seed)
    : partition_size_(partition_size),
      seed_(seed),
      platform_(std::make_unique<sgx::EnclavePlatform>("bench-platform")),
      enclave_(std::make_unique<enclave::IbbeEnclave>(*platform_, partition_size)),
      cloud_(std::make_unique<cloud::CloudStore>()),
      admin_key_(make_admin_key(seed)),
      admin_config_(make_config(partition_size, false)) {
  admin_ = std::make_unique<AdminApi>(*enclave_, store(), admin_key_,
                                      admin_config_, seed);
}

IbbeSgxScheme::IbbeSgxScheme(std::size_t partition_size, std::uint64_t seed,
                             const cloud::FaultPlan& plan)
    : partition_size_(partition_size),
      seed_(seed),
      platform_(std::make_unique<sgx::EnclavePlatform>("bench-platform")),
      enclave_(std::make_unique<enclave::IbbeEnclave>(*platform_, partition_size)),
      cloud_(std::make_unique<cloud::CloudStore>()),
      fault_store_(std::make_unique<cloud::FaultInjectingStore>(*cloud_, plan)),
      admin_key_(make_admin_key(seed)),
      admin_config_(make_config(partition_size, true)) {
  admin_ = std::make_unique<AdminApi>(*enclave_, store(), admin_key_,
                                      admin_config_, seed);
}

IbbeSgxScheme::IbbeSgxScheme(std::size_t partition_size, std::uint64_t seed,
                             const cloud::FaultPlan& plan,
                             const cloud::MaliciousPlan& malice)
    : partition_size_(partition_size),
      seed_(seed),
      platform_(std::make_unique<sgx::EnclavePlatform>("bench-platform")),
      enclave_(std::make_unique<enclave::IbbeEnclave>(*platform_, partition_size)),
      cloud_(std::make_unique<cloud::CloudStore>()),
      malicious_store_(std::make_unique<cloud::MaliciousStore>(*cloud_, malice)),
      fault_store_(
          std::make_unique<cloud::FaultInjectingStore>(*malicious_store_, plan)),
      admin_key_(make_admin_key(seed)),
      admin_config_(make_config(partition_size, true)) {
  admin_ = std::make_unique<AdminApi>(*enclave_, store(), admin_key_,
                                      admin_config_, seed);
}

IbbeSgxScheme::IbbeSgxScheme(std::size_t partition_size, std::uint64_t seed,
                             const RemotePlan& plan)
    : partition_size_(partition_size),
      seed_(seed),
      platform_(std::make_unique<sgx::EnclavePlatform>("bench-platform")),
      enclave_(std::make_unique<enclave::IbbeEnclave>(*platform_, partition_size)),
      cloud_(std::make_unique<cloud::CloudStore>()),
      remote_plan_(plan),
      admin_key_(make_admin_key(seed)),
      admin_config_(make_config(partition_size, true)) {
  net::NetServerConfig server_cfg;
  server_cfg.identity_seed = seed + 77;  // deterministic identity per seed
  server_ = std::make_unique<net::NetServer>(*cloud_, server_cfg);
  net_schedule_ = std::make_shared<net::NetFaultSchedule>(plan.faults);
  remote_admin_ = make_remote_store();
  admin_ = std::make_unique<AdminApi>(*enclave_, store(), admin_key_,
                                      admin_config_, seed);
}

std::unique_ptr<net::RemoteStore> IbbeSgxScheme::make_remote_store() {
  net::RemoteStoreConfig cfg;
  cfg.port = server_->port();
  cfg.server_identity = server_->identity_key();
  cfg.retry.max_attempts = remote_plan_->max_attempts;
  cfg.retry = cfg.retry.without_delays();
  cfg.request_deadline = remote_plan_->request_deadline;
  cfg.faults = net_schedule_;
  return std::make_unique<net::RemoteStore>(std::move(cfg));
}

std::string IbbeSgxScheme::name() const {
  std::string base = "IBBE-SGX(|p|=" + std::to_string(partition_size_) + ")";
  if (malicious_store_) return base + "+byzantine";
  if (remote_plan_) return base + "+remote";
  return fault_store_ ? base + "+faults" : base;
}

void IbbeSgxScheme::restart_admin() {
  for (int i = 0; i < max_restart_attempts; ++i) {
    ++restarts_;
    admin_ = std::make_unique<AdminApi>(*enclave_, store(), admin_key_,
                                        admin_config_,
                                        seed_ + 1000 + restarts_);
    try {
      group_exists_ = admin_->recover(kGroup);
      return;
    } catch (const cloud::CrashError&) {
      // died during recovery as well: the next incarnation resumes
    }
  }
  throw std::runtime_error("IbbeSgxScheme: admin cannot finish recovery");
}

void IbbeSgxScheme::with_crash_recovery(const std::function<void()>& op) {
  for (int i = 0; i < max_restart_attempts; ++i) {
    try {
      op();
      return;
    } catch (const cloud::CrashError&) {
      restart_admin();
    }
  }
  throw std::runtime_error("IbbeSgxScheme: operation keeps crashing");
}

void IbbeSgxScheme::create_group(std::span<const core::Identity> members) {
  with_crash_recovery([&] {
    if (group_exists_ && admin_->group_size(kGroup) == members.size()) {
      bool all_present = true;
      for (const auto& m : members) {
        all_present = all_present && admin_->is_member(kGroup, m);
      }
      // The creation committed before a crash; re-running Algorithm 1 would
      // needlessly rotate gk (and break key-stability oracles).
      if (all_present) return;
    }
    admin_->create_group(kGroup, members);
    group_exists_ = true;
  });
}

void IbbeSgxScheme::add_user(const core::Identity& id) {
  if (!group_exists_) {
    std::vector<core::Identity> single{id};
    create_group(single);
    return;
  }
  // Idempotent across crash recovery: if the add committed before the crash,
  // the re-issued call sees the user and no-ops.
  with_crash_recovery([&] { admin_->add_user(kGroup, id); });
}

void IbbeSgxScheme::remove_user(const core::Identity& id) {
  if (!group_exists_) return;
  with_crash_recovery([&] { admin_->remove_user(kGroup, id); });
}

ClientApi& IbbeSgxScheme::client_for(const core::Identity& id) {
  auto it = clients_.find(id);
  if (it == clients_.end()) {
    // Key provisioning is out-of-band setup work (Fig. 3); the replayer only
    // times the decrypt path.
    auto usk = enclave_->ecall_extract_user_key(id);
    cloud::CloudStore* client_store = &store();
    if (remote_plan_) {
      // Each client gets its own wire connection (with its own session and
      // resume state), as real networked clients would.
      auto wire = make_remote_store();
      client_store = wire.get();
      client_wires_.emplace(id, std::move(wire));
    }
    auto client = std::make_unique<ClientApi>(*client_store,
                                              enclave_->public_key(),
                                              std::move(usk),
                                              admin_->verification_point());
    if (fault_store_ || remote_plan_) {
      client->set_retry_policy(util::RetryPolicy{}.without_delays());
    }
    if (malicious_store_) {
      // Byzantine deployments get the full defence: enclave-anchored
      // freshness plus fork-detection gossip keyed by the client identity.
      client->enable_freshness(enclave_->freshness_verification_key());
      client->enable_gossip(id);
    }
    it = clients_.emplace(id, std::move(client)).first;
  }
  return *it->second;
}

std::optional<util::Bytes> IbbeSgxScheme::user_decrypt(const core::Identity& id) {
  if (!group_exists_) return std::nullopt;
  return client_for(id).fetch_group_key(kGroup);
}

std::size_t IbbeSgxScheme::metadata_size() const {
  return group_exists_ ? admin_->metadata_size(kGroup) : 0;
}

std::size_t IbbeSgxScheme::group_size() const {
  return group_exists_ ? admin_->group_size(kGroup) : 0;
}

}  // namespace ibbe::system
