#include "system/ibbe_scheme.h"

namespace ibbe::system {

namespace {
const GroupId kGroup = "g";
}

IbbeSgxScheme::IbbeSgxScheme(std::size_t partition_size, std::uint64_t seed)
    : partition_size_(partition_size),
      platform_(std::make_unique<sgx::EnclavePlatform>("bench-platform")),
      enclave_(std::make_unique<enclave::IbbeEnclave>(*platform_, partition_size)),
      cloud_(std::make_unique<cloud::CloudStore>()) {
  crypto::Drbg key_rng(seed + 1);
  AdminConfig config;
  config.partition_size = partition_size;
  admin_ = std::make_unique<AdminApi>(*enclave_, *cloud_,
                                      pki::EcdsaKeyPair::generate(key_rng),
                                      config, seed);
}

std::string IbbeSgxScheme::name() const {
  return "IBBE-SGX(|p|=" + std::to_string(partition_size_) + ")";
}

void IbbeSgxScheme::create_group(std::span<const core::Identity> members) {
  admin_->create_group(kGroup, members);
  group_exists_ = true;
}

void IbbeSgxScheme::add_user(const core::Identity& id) {
  if (!group_exists_) {
    std::vector<core::Identity> single{id};
    create_group(single);
    return;
  }
  admin_->add_user(kGroup, id);
}

void IbbeSgxScheme::remove_user(const core::Identity& id) {
  if (group_exists_) admin_->remove_user(kGroup, id);
}

ClientApi& IbbeSgxScheme::client_for(const core::Identity& id) {
  auto it = clients_.find(id);
  if (it == clients_.end()) {
    // Key provisioning is out-of-band setup work (Fig. 3); the replayer only
    // times the decrypt path.
    auto usk = enclave_->ecall_extract_user_key(id);
    it = clients_
             .emplace(id, std::make_unique<ClientApi>(
                              *cloud_, enclave_->public_key(), std::move(usk),
                              admin_->verification_point()))
             .first;
  }
  return *it->second;
}

std::optional<util::Bytes> IbbeSgxScheme::user_decrypt(const core::Identity& id) {
  if (!group_exists_) return std::nullopt;
  return client_for(id).fetch_group_key(kGroup);
}

std::size_t IbbeSgxScheme::metadata_size() const {
  return group_exists_ ? admin_->metadata_size(kGroup) : 0;
}

std::size_t IbbeSgxScheme::group_size() const {
  return group_exists_ ? admin_->group_size(kGroup) : 0;
}

}  // namespace ibbe::system
