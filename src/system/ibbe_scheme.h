// GroupScheme adapter: the full IBBE-SGX stack (enclave + partitioning +
// cloud metadata) behind the common interface used by the trace replayer and
// the comparison benchmarks.
//
// The fault-plan constructor wraps the deployment's store in a
// FaultInjectingStore and turns the adapter into a self-healing harness:
// every membership mutation runs under with_crash_recovery(), which models a
// process death (cloud::CrashError) by discarding the AdminApi, starting a
// fresh one, running AdminApi::recover() and re-issuing the (idempotent)
// operation. The model-based differential tests drive this against the same
// oracle as the fault-free deployments.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>

#include "cloud/fault.h"
#include "cloud/store.h"
#include "he/scheme.h"
#include "net/remote_store.h"
#include "net/server.h"
#include "system/admin.h"
#include "system/client.h"

namespace ibbe::system {

/// Parameters for the networked deployment: the whole stack runs over a real
/// loopback NetServer, with every connection's wire subjected to `faults`.
struct RemotePlan {
  net::NetFaultPlan faults;
  /// Per-attempt response deadline. Small on purpose: dropped frames are
  /// detected by this, so the differential suites' wall clock scales with it.
  std::chrono::milliseconds request_deadline{250};
  /// Wire-fault retry budget per RPC (delays are zeroed, like the fault-plan
  /// deployments' store retries).
  int max_attempts = 10;
};

class IbbeSgxScheme : public he::GroupScheme {
 public:
  /// Builds a self-contained deployment: platform, enclave sized for
  /// `partition_size`, zero-latency cloud store, one administrator.
  explicit IbbeSgxScheme(std::size_t partition_size, std::uint64_t seed = 0);

  /// Same deployment, but all cloud traffic passes through a
  /// FaultInjectingStore running `plan` (crashes included), the op-log is on,
  /// and retry delays are zeroed so tests stay fast.
  IbbeSgxScheme(std::size_t partition_size, std::uint64_t seed,
                const cloud::FaultPlan& plan);

  /// The Byzantine deployment: the store is a MaliciousStore running
  /// `malice` (rollback / withhold / equivocation schedules) with a
  /// FaultInjectingStore on top for the fail-stop tier, clients verify
  /// enclave-anchored freshness and gossip their observations, and every
  /// mutation still runs under crash recovery. Differential tests hold this
  /// stack to the fault-free oracle.
  IbbeSgxScheme(std::size_t partition_size, std::uint64_t seed,
                const cloud::FaultPlan& plan,
                const cloud::MaliciousPlan& malice);

  /// The networked deployment: a NetServer over the in-process store, the
  /// admin and every client on their own RemoteStore connection (as real
  /// clients would be), all wire traffic through one seeded
  /// FaultInjectingTransport schedule — drops, duplicates, torn frames and
  /// mid-mutation disconnects included. Differential tests hold this stack
  /// to the same fault-free oracle as the in-process deployments.
  IbbeSgxScheme(std::size_t partition_size, std::uint64_t seed,
                const RemotePlan& plan);

  [[nodiscard]] std::string name() const override;
  void create_group(std::span<const core::Identity> members) override;
  void add_user(const core::Identity& id) override;
  void remove_user(const core::Identity& id) override;
  [[nodiscard]] std::optional<util::Bytes> user_decrypt(
      const core::Identity& id) override;
  [[nodiscard]] std::size_t metadata_size() const override;
  [[nodiscard]] std::size_t group_size() const override;

  [[nodiscard]] AdminApi& admin() { return *admin_; }
  [[nodiscard]] enclave::IbbeEnclave& enclave() { return *enclave_; }
  [[nodiscard]] cloud::CloudStore& cloud() { return *cloud_; }
  /// Present only for fault-plan deployments.
  [[nodiscard]] cloud::FaultInjectingStore* fault_store() {
    return fault_store_.get();
  }
  /// Present only for Byzantine deployments.
  [[nodiscard]] cloud::MaliciousStore* malicious_store() {
    return malicious_store_.get();
  }
  /// Present only for remote deployments.
  [[nodiscard]] net::NetServer* net_server() { return server_.get(); }
  [[nodiscard]] net::NetFaultSchedule* net_schedule() {
    return net_schedule_.get();
  }
  /// Simulated process deaths survived so far.
  [[nodiscard]] std::uint64_t admin_restarts() const { return restarts_; }

 private:
  /// The store the admin and the clients actually talk to.
  [[nodiscard]] cloud::CloudStore& store() {
    if (remote_admin_) return *remote_admin_;
    return fault_store_ ? static_cast<cloud::CloudStore&>(*fault_store_)
                        : *cloud_;
  }
  /// A fresh wire connection under the shared fault schedule (remote only).
  [[nodiscard]] std::unique_ptr<net::RemoteStore> make_remote_store();
  /// Runs `op`, treating every CrashError as a process death: restart the
  /// admin, recover, re-issue.
  void with_crash_recovery(const std::function<void()>& op);
  void restart_admin();
  ClientApi& client_for(const core::Identity& id);

  std::size_t partition_size_;
  std::uint64_t seed_;
  std::unique_ptr<sgx::EnclavePlatform> platform_;
  std::unique_ptr<enclave::IbbeEnclave> enclave_;
  std::unique_ptr<cloud::CloudStore> cloud_;
  std::unique_ptr<cloud::MaliciousStore> malicious_store_;  // wraps cloud_
  std::unique_ptr<cloud::FaultInjectingStore> fault_store_;  // wraps the above
  // Remote deployments only. Declaration order is destruction-critical: the
  // clients_/admin_ below (destroyed first) reference the RemoteStores,
  // which reference the server, which references cloud_.
  std::optional<RemotePlan> remote_plan_;
  std::unique_ptr<net::NetServer> server_;            // serves *cloud_
  std::shared_ptr<net::NetFaultSchedule> net_schedule_;
  std::unique_ptr<net::RemoteStore> remote_admin_;    // the admin's wire
  std::map<core::Identity, std::unique_ptr<net::RemoteStore>> client_wires_;
  pki::EcdsaKeyPair admin_key_;
  AdminConfig admin_config_;
  std::unique_ptr<AdminApi> admin_;
  std::map<core::Identity, std::unique_ptr<ClientApi>> clients_;
  bool group_exists_ = false;
  std::uint64_t restarts_ = 0;
};

}  // namespace ibbe::system
