// GroupScheme adapter: the full IBBE-SGX stack (enclave + partitioning +
// cloud metadata) behind the common interface used by the trace replayer and
// the comparison benchmarks.
#pragma once

#include <map>
#include <memory>

#include "cloud/store.h"
#include "he/scheme.h"
#include "system/admin.h"
#include "system/client.h"

namespace ibbe::system {

class IbbeSgxScheme : public he::GroupScheme {
 public:
  /// Builds a self-contained deployment: platform, enclave sized for
  /// `partition_size`, zero-latency cloud store, one administrator.
  explicit IbbeSgxScheme(std::size_t partition_size, std::uint64_t seed = 0);

  [[nodiscard]] std::string name() const override;
  void create_group(std::span<const core::Identity> members) override;
  void add_user(const core::Identity& id) override;
  void remove_user(const core::Identity& id) override;
  [[nodiscard]] std::optional<util::Bytes> user_decrypt(
      const core::Identity& id) override;
  [[nodiscard]] std::size_t metadata_size() const override;
  [[nodiscard]] std::size_t group_size() const override;

  [[nodiscard]] AdminApi& admin() { return *admin_; }
  [[nodiscard]] enclave::IbbeEnclave& enclave() { return *enclave_; }
  [[nodiscard]] cloud::CloudStore& cloud() { return *cloud_; }

 private:
  ClientApi& client_for(const core::Identity& id);

  std::size_t partition_size_;
  std::unique_ptr<sgx::EnclavePlatform> platform_;
  std::unique_ptr<enclave::IbbeEnclave> enclave_;
  std::unique_ptr<cloud::CloudStore> cloud_;
  std::unique_ptr<AdminApi> admin_;
  std::map<core::Identity, std::unique_ptr<ClientApi>> clients_;
  bool group_exists_ = false;
};

}  // namespace ibbe::system
