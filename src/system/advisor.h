// Dynamic partition sizing (the paper's first future-work item: "dynamically
// adapt the partition sizes based on the undergoing workload").
//
// Cost model. Over an observation window with R revocations and D user
// decryptions on a group of N members split into partitions of size m:
//
//   administrator cost ~= R * (N/m) * c_rekey      (one re-key per partition)
//   user cost          ~= D * m * c_decrypt        (decrypt is ~linear in m
//                                                   until the quadratic Zr
//                                                   term dominates)
//
// Minimizing the sum over m gives  m* = sqrt(R*N*c_rekey / (D*c_decrypt)).
// Removal-heavy workloads push towards large partitions (fewer to re-key);
// read-heavy ones towards small partitions (cheap decrypts) — exactly the
// trade-off of the paper's Fig. 9 discussion.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ibbe::system {

class PartitionAdvisor {
 public:
  struct CostModel {
    /// Seconds to re-key one partition inside the enclave (1 G1 + 1 G2 + 1 GT
    /// exponentiation + AEAD wrap; measure with bench_micro_crypto).
    double rekey_seconds = 3.5e-3;
    /// Client decrypt seconds per partition member (G2 exponentiation
    /// dominated at practical sizes).
    double decrypt_seconds_per_member = 1.1e-3;
  };

  PartitionAdvisor() = default;
  explicit PartitionAdvisor(const CostModel& model) : model_(model) {}

  void record_add() { ++adds_; }
  void record_remove() { ++removes_; }
  void record_decrypt() { ++decrypts_; }

  [[nodiscard]] std::uint64_t removes() const { return removes_; }
  [[nodiscard]] std::uint64_t decrypts() const { return decrypts_; }

  /// Recommended partition size for a group of `group_size` members, clamped
  /// to [min_size, max_size]. With no observed removals the advisor returns
  /// min_size (nothing to amortize); with no observed decrypts, max_size.
  [[nodiscard]] std::size_t recommend(std::size_t group_size,
                                      std::size_t min_size,
                                      std::size_t max_size) const;

  /// Forget the observation window (e.g. after acting on a recommendation).
  void reset_window() { adds_ = removes_ = decrypts_ = 0; }

  /// Shard sizing for the manifest layout (docs/fault_model.md). A mutation
  /// re-uploads the manifest (one 48-byte ShardRef per shard) plus the host
  /// shard (k partitions of ~m members at ~`member_bytes` each), so churn per
  /// op is ~ P/k * ref_bytes + k * m * member_bytes; minimizing over k gives
  /// k* = sqrt(P * ref_bytes / (m * member_bytes)), clamped to [1, P].
  /// Static: unlike partition sizing this is a pure serialization trade-off,
  /// independent of the observed workload mix.
  [[nodiscard]] static std::size_t recommend_shard_partitions(
      std::size_t partition_count, std::size_t partition_size);

 private:
  CostModel model_{};
  std::uint64_t adds_ = 0;
  std::uint64_t removes_ = 0;
  std::uint64_t decrypts_ = 0;
};

}  // namespace ibbe::system
