// Hash-chained, signed membership-operation log.
//
// The paper's future work suggests "certifying blocks of membership
// operations logs through blockchain-like technologies" for multi-admin
// setups. This is the single-chain version of that idea: every membership
// change appends an entry whose hash covers the previous entry's hash, and
// each entry is ECDSA-signed by the administrator that performed it. Anyone
// holding the admin verification keys can audit that (a) the log is intact
// (no reordering, insertion or deletion) and (b) every operation was
// performed by an authorized administrator. The cloud cannot rewrite
// history; withholding the tail is caught by the committed index's log_head
// anchor, and serving a stale index+log pair wholesale is caught by the
// enclave-anchored freshness counter the index carries (see
// docs/fault_model.md).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "pki/ecdsa.h"
#include "util/bytes.h"

namespace ibbe::system {

enum class LogOp : std::uint8_t {
  create_group = 1,
  add_user = 2,
  remove_user = 3,
  repartition = 4,
};

struct LogEntry {
  std::uint64_t seq = 0;
  LogOp op = LogOp::create_group;
  std::string subject;                       // user id or group summary
  std::string admin;                         // performing administrator
  std::array<std::uint8_t, 32> prev_hash{};  // zero for the genesis entry
  std::array<std::uint8_t, 32> hash{};       // H(seq||op||subject||admin||prev)
  pki::EcdsaSignature signature;             // over `hash`

  /// Recomputes what `hash` must be for these fields.
  [[nodiscard]] std::array<std::uint8_t, 32> compute_hash() const;

  [[nodiscard]] util::Bytes to_bytes() const;
  static LogEntry from_bytes(util::ByteReader& r);
};

class MembershipLog {
 public:
  /// Appends a signed entry chained onto the current head.
  void append(LogOp op, std::string subject, std::string admin,
              const pki::EcdsaKeyPair& key);

  [[nodiscard]] const std::vector<LogEntry>& entries() const { return entries_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  [[nodiscard]] util::Bytes to_bytes() const;
  static MembershipLog from_bytes(std::span<const std::uint8_t> data);

  struct AuditResult {
    bool ok = false;
    std::string failure;             // empty when ok
    std::size_t first_bad_index = 0; // valid when !ok
  };
  /// Verifies hashes, chaining, sequence numbers and signatures. Entries
  /// must be signed by one of `admin_keys`.
  ///
  /// Chain integrity alone cannot catch WHOLE-SUFFIX TRUNCATION: rolling the
  /// log back to any earlier prefix yields another perfectly valid chain.
  /// Passing `expected_head` — the committed head hash carried in the
  /// CAS-protected group manifest (GroupManifest::log_head) — closes that
  /// hole:
  /// the anchored entry must still be present in the log. Entries *after*
  /// the anchor are tolerated; they are the uncommitted tail of an operation
  /// whose index CAS has not landed (or did not survive a crash). A null /
  /// all-zero anchor skips the check (no log committed yet).
  [[nodiscard]] AuditResult audit(
      std::span<const ec::P256Point> admin_keys,
      const std::array<std::uint8_t, 32>* expected_head = nullptr) const;

 private:
  std::vector<LogEntry> entries_;
};

/// Cloud path for a group's log.
std::string oplog_path(const std::string& gid);

}  // namespace ibbe::system
