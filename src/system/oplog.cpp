#include "system/oplog.h"

#include "crypto/sha256.h"

namespace ibbe::system {

std::array<std::uint8_t, 32> LogEntry::compute_hash() const {
  util::ByteWriter w;
  w.u64(seq);
  w.u8(static_cast<std::uint8_t>(op));
  w.str(subject);
  w.str(admin);
  w.raw(prev_hash);
  return crypto::Sha256::hash(w.bytes());
}

util::Bytes LogEntry::to_bytes() const {
  util::ByteWriter w;
  w.u64(seq);
  w.u8(static_cast<std::uint8_t>(op));
  w.str(subject);
  w.str(admin);
  w.raw(prev_hash);
  w.raw(hash);
  w.raw(signature.to_bytes());
  return w.take();
}

LogEntry LogEntry::from_bytes(util::ByteReader& r) {
  LogEntry e;
  e.seq = r.u64();
  e.op = static_cast<LogOp>(r.u8());
  e.subject = r.str();
  e.admin = r.str();
  auto prev = r.raw(32);
  std::copy(prev.begin(), prev.end(), e.prev_hash.begin());
  auto h = r.raw(32);
  std::copy(h.begin(), h.end(), e.hash.begin());
  e.signature =
      pki::EcdsaSignature::from_bytes(r.raw(pki::EcdsaSignature::serialized_size));
  return e;
}

void MembershipLog::append(LogOp op, std::string subject, std::string admin,
                           const pki::EcdsaKeyPair& key) {
  LogEntry e;
  e.seq = entries_.size();
  e.op = op;
  e.subject = std::move(subject);
  e.admin = std::move(admin);
  if (!entries_.empty()) e.prev_hash = entries_.back().hash;
  e.hash = e.compute_hash();
  e.signature = key.sign(e.hash);
  entries_.push_back(std::move(e));
}

util::Bytes MembershipLog::to_bytes() const {
  util::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(entries_.size()));
  for (const auto& e : entries_) w.raw(e.to_bytes());
  return w.take();
}

MembershipLog MembershipLog::from_bytes(std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  MembershipLog log;
  // Minimum wire size of one entry: seq + op + two empty strings + both
  // hashes + the signature.
  constexpr std::size_t min_entry =
      8 + 1 + 4 + 4 + 32 + 32 + pki::EcdsaSignature::serialized_size;
  std::size_t n = r.count(min_entry);
  log.entries_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    log.entries_.push_back(LogEntry::from_bytes(r));
  }
  r.expect_end();
  return log;
}

MembershipLog::AuditResult MembershipLog::audit(
    std::span<const ec::P256Point> admin_keys,
    const std::array<std::uint8_t, 32>* expected_head) const {
  std::array<std::uint8_t, 32> expected_prev{};
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const auto& e = entries_[i];
    if (e.seq != i) {
      return {false, "sequence number mismatch", i};
    }
    if (e.prev_hash != expected_prev) {
      return {false, "hash chain broken", i};
    }
    if (e.hash != e.compute_hash()) {
      return {false, "entry hash does not cover its fields", i};
    }
    bool signed_by_admin = false;
    for (const auto& key : admin_keys) {
      if (pki::ecdsa_verify(key, e.hash, e.signature)) {
        signed_by_admin = true;
        break;
      }
    }
    if (!signed_by_admin) {
      return {false, "signature by unknown or forged key", i};
    }
    expected_prev = e.hash;
  }
  if (expected_head != nullptr &&
      *expected_head != std::array<std::uint8_t, 32>{}) {
    bool anchored = false;
    for (const auto& e : entries_) {
      if (e.hash == *expected_head) {
        anchored = true;
        break;
      }
    }
    if (!anchored) {
      return {false, "committed head entry missing (log suffix truncated)",
              entries_.size()};
    }
  }
  return {true, "", 0};
}

std::string oplog_path(const std::string& gid) {
  return "groups/" + gid + "/oplog";
}

}  // namespace ibbe::system
