#include "system/client.h"

#include "crypto/gcm.h"

namespace ibbe::system {

ClientApi::ClientApi(cloud::CloudStore& cloud, core::PublicKey pk,
                     core::UserSecretKey usk,
                     ec::P256Point admin_verification_key)
    : ClientApi(cloud, std::move(pk), std::move(usk),
                std::vector<ec::P256Point>{admin_verification_key}) {}

ClientApi::ClientApi(cloud::CloudStore& cloud, core::PublicKey pk,
                     core::UserSecretKey usk,
                     std::vector<ec::P256Point> admin_keys)
    : cloud_(cloud),
      pk_(std::move(pk)),
      usk_(std::move(usk)),
      admin_keys_(std::move(admin_keys)) {}

bool ClientApi::verify_credentials() const {
  return core::verify_user_key(pk_, usk_);
}

std::optional<util::Bytes> ClientApi::fetch_verified(const std::string& path) {
  auto raw = cloud_.get(path);
  if (!raw) return std::nullopt;
  SignedEnvelope env;
  try {
    env = SignedEnvelope::from_bytes(*raw);
  } catch (const util::DeserializeError&) {
    ++stats_.signature_failures;
    return std::nullopt;
  }
  for (const auto& key : admin_keys_) {
    if (env.verify(key)) return env.payload;
  }
  ++stats_.signature_failures;
  return std::nullopt;
}

std::optional<util::Bytes> ClientApi::fetch_group_key(const GroupId& gid) {
  ++stats_.fetches;
  // Record the directory version *before* reading so that a concurrent
  // update triggers the next wait_for_update rather than being missed.
  seen_versions_[gid] = cloud_.dir_version(group_dir(gid));

  auto index_payload = fetch_verified(index_path(gid));
  if (!index_payload) return std::nullopt;
  GroupIndex idx;
  try {
    idx = GroupIndex::from_bytes(*index_payload);
  } catch (const util::DeserializeError&) {
    return std::nullopt;
  }

  auto slot = idx.find_user(usk_.id);
  if (!slot) return std::nullopt;  // not a member (possibly revoked)

  auto part_payload = fetch_verified(partition_path(gid, idx.partition_ids[*slot]));
  if (!part_payload) return std::nullopt;
  PartitionRecord rec;
  try {
    rec = PartitionRecord::from_bytes(*part_payload);
  } catch (const util::DeserializeError&) {
    return std::nullopt;
  }

  ++stats_.decryptions;
  auto bk = core::decrypt(pk_, usk_, rec.members, rec.cipher.ct);
  if (!bk) return std::nullopt;
  crypto::Aes256Gcm gcm(bk->hash());
  return gcm.open(rec.cipher.nonce, rec.cipher.wrapped_gk);
}

std::optional<util::Bytes> ClientApi::wait_for_update(
    const GroupId& gid, std::chrono::milliseconds timeout) {
  std::uint64_t since = seen_versions_[gid];
  auto version = cloud_.long_poll(group_dir(gid), since, timeout);
  if (!version) return std::nullopt;
  return fetch_group_key(gid);
}

}  // namespace ibbe::system
