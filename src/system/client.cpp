#include "system/client.h"

#include <thread>

#include "crypto/gcm.h"

namespace ibbe::system {

ClientApi::ClientApi(cloud::CloudStore& cloud, core::PublicKey pk,
                     core::UserSecretKey usk,
                     ec::P256Point admin_verification_key)
    : ClientApi(cloud, std::move(pk), std::move(usk),
                std::vector<ec::P256Point>{admin_verification_key}) {}

ClientApi::ClientApi(cloud::CloudStore& cloud, core::PublicKey pk,
                     core::UserSecretKey usk,
                     std::vector<ec::P256Point> admin_keys)
    : cloud_(cloud),
      pk_(std::move(pk)),
      usk_(std::move(usk)),
      admin_keys_(std::move(admin_keys)) {}

bool ClientApi::verify_credentials() const {
  return core::verify_user_key(pk_, usk_);
}

bool ClientApi::verify_any(const SignedEnvelope& env) const {
  for (const auto& key : admin_keys_) {
    if (env.verify(key)) return true;
  }
  return false;
}

std::optional<util::Bytes> ClientApi::last_key(const GroupId& gid) const {
  auto it = last_verified_key_.find(gid);
  if (it == last_verified_key_.end()) return std::nullopt;
  return it->second;
}

void ClientApi::invalidate_caches(const GroupId& gid) {
  cache_.erase(gid);
  cipher_cache_.erase(gid);
}

std::vector<FreshnessObservation> ClientApi::read_gossip(
    const GroupId& gid) const {
  std::vector<FreshnessObservation> out;
  try {
    for (const auto& path : cloud_.list(gossip_dir(gid))) {
      auto raw = cloud_.get(path);
      if (!raw) continue;
      try {
        out.push_back(FreshnessObservation::from_bytes(*raw));
      } catch (const util::DeserializeError&) {
        // A malformed hint carries no information either way; ignore it.
      }
    }
  } catch (const cloud::TransientError&) {
    // Gossip is best-effort: an unreachable channel just means no hints.
  }
  return out;
}

void ClientApi::publish_gossip(const GroupId& gid,
                               const enclave::FreshnessToken& tok) {
  if (gossip_id_.empty()) return;
  FreshnessObservation obs;
  obs.counter = tok.counter;
  obs.log_head = tok.log_head;
  try {
    (void)cloud_.put(gossip_path(gid, "client-" + gossip_id_), obs.to_bytes());
  } catch (const util::FaultError&) {
    // Best-effort: a dropped observation only delays detection. Any injected
    // fault kind on this hint write is survivable — the client keeps its own
    // high-water mark regardless.
  }
}

void ClientApi::note_fresh_view(const GroupId& gid,
                                const enclave::FreshnessToken& tok) {
  if (!freshness_key_ || tok.counter == 0) return;
  auto& hwm = freshness_hwm_[gid];
  if (tok.counter > hwm.counter) {
    hwm.counter = tok.counter;
    hwm.log_head = tok.log_head;
    publish_gossip(gid, tok);
  }
}

ClientApi::Fetch ClientApi::check_freshness(const GroupId& gid,
                                            const GroupManifest& m,
                                            bool& fresh_rejected) {
  const auto& tok = m.freshness;
  if (tok.counter == 0 || !tok.verify(*freshness_key_, gid) ||
      tok.gk_epoch != m.gk_epoch || tok.log_head != m.log_head) {
    // Unattested, forged, or mis-bound token: indistinguishable from any
    // other unauthenticated metadata.
    ++stats_.signature_failures;
    return Fetch::degraded;
  }
  auto hwm = freshness_hwm_.find(gid);
  if (hwm != freshness_hwm_.end() && tok.counter < hwm->second.counter) {
    // We have already verified a newer commit: this view is rolled back.
    ++stats_.freshness_rejections;
    fresh_rejected = true;
    return Fetch::degraded;
  }
  if (hwm != freshness_hwm_.end() && tok.counter == hwm->second.counter &&
      tok.log_head != hwm->second.log_head) {
    // Same counter, different history: divergence. The refused token is
    // enclave-signed, so it is publishable PROOF — announce it so the
    // clients on the fork's other side detect within their next round.
    publish_gossip(gid, tok);
    return Fetch::forked;
  }
  if (!gossip_id_.empty()) {
    ++stats_.gossip_rounds;
    for (const auto& obs : read_gossip(gid)) {
      if (obs.counter > tok.counter) {
        // Someone verified a commit the cloud is hiding from us.
        ++stats_.freshness_rejections;
        fresh_rejected = true;
        return Fetch::degraded;
      }
      if (obs.counter == tok.counter && obs.log_head != tok.log_head) {
        publish_gossip(gid, tok);  // same proof-of-divergence announcement
        return Fetch::forked;
      }
    }
  }
  return Fetch::ok;
}

bool ClientApi::fold_deltas(const GroupId& gid, const GroupManifest& m,
                            CachedIndex& view) {
  const std::uint64_t target = m.freshness.counter;
  for (std::uint64_t seq = view.counter + 1; seq <= target; ++seq) {
    std::optional<util::Bytes> raw;
    try {
      raw = with_retries([&] { return cloud_.get(delta_path(gid, seq)); });
    } catch (const cloud::TransientError&) {
      return false;  // window raced the GC, or the replica is torn
    }
    if (!raw) return false;
    if (seq == target && content_hash(*raw) != m.delta_hash) {
      // The manifest pins its own commit's delta: different bytes under the
      // committed name mean a racing/Byzantine writer clobbered it.
      return false;
    }
    IndexDelta delta;
    try {
      auto env = SignedEnvelope::from_bytes(*raw);
      if (!verify_any(env)) {
        // A delta not signed by an administrator key is worthless no matter
        // how well it chains.
        ++stats_.signature_failures;
        return false;
      }
      delta = IndexDelta::from_bytes(env.payload);
    } catch (const util::DeserializeError&) {
      ++stats_.signature_failures;
      return false;
    }
    // apply() enforces seq == counter+1 and the log-head chain, and rejects
    // structurally inconsistent ops without touching the view.
    if (!view.apply(delta)) return false;
    ++stats_.delta_folds;
  }
  // The chain must land exactly on the committed head; anything else means
  // a spliced or replayed sequence survived the per-delta checks.
  if (view.counter != target || view.log_head != m.log_head) return false;
  view.gk_epoch = m.gk_epoch;
  return true;
}

bool ClientApi::load_snapshot(const GroupId& gid, const GroupManifest& m,
                              CachedIndex& view) {
  for (const auto& ref : m.shards) {
    std::optional<util::Bytes> raw;
    try {
      raw = with_retries([&] { return cloud_.get(shard_path(gid, ref.sid)); });
    } catch (const cloud::TransientError&) {
      return false;
    }
    if (!raw) {
      // The commit protocol pushes shards before the manifest references
      // them, so absence means a torn view (stale replica, or a snapshot
      // overlapping the garbage collector) — not proof of anything.
      return false;
    }
    if (content_hash(*raw) != ref.hash) {
      // Stale shard: live name, old bytes. Degrades exactly like the torn
      // snapshot above — re-fetch until the replica converges.
      return false;
    }
    try {
      auto env = SignedEnvelope::from_bytes(*raw);
      if (!verify_any(env)) {
        ++stats_.signature_failures;
        return false;
      }
      IndexShard shard = IndexShard::from_bytes(env.payload);
      for (auto& [pid, members] : shard.partitions) {
        view.add_partition(pid, std::move(members));
      }
    } catch (const util::DeserializeError&) {
      ++stats_.signature_failures;
      return false;
    }
  }
  view.counter = m.freshness.counter;
  view.log_head = m.log_head;
  view.gk_epoch = m.gk_epoch;
  return true;
}

CachedIndex* ClientApi::refresh_view(const GroupId& gid,
                                     const GroupManifest& m) {
  auto it = cache_.find(gid);
  if (it != cache_.end()) {
    CachedIndex& view = it->second;
    if (view.counter == m.freshness.counter && view.log_head == m.log_head &&
        view.gk_epoch == m.gk_epoch) {
      return &view;  // warm: same commit, zero index bytes downloaded
    }
    // Fold only when every missing commit's delta is still retained
    // (cache at counter c needs d<c+1>..d<counter>, so c+1 >= delta_base).
    if (view.counter < m.freshness.counter && m.delta_base > 0 &&
        view.counter + 1 >= m.delta_base && fold_deltas(gid, m, view)) {
      return &view;
    }
    // Gap, chain break, bad signature, or clobbered delta: discard the cache
    // and take the snapshot path. Safe — just slower.
    ++stats_.fold_fallbacks;
    cache_.erase(it);
  }
  CachedIndex view;
  if (!load_snapshot(gid, m, view)) return nullptr;
  return &(cache_[gid] = std::move(view));
}

const enclave::PartitionCiphertext* ClientApi::get_cipher(
    const GroupId& gid, const GroupManifest& m, PartitionId pid) {
  CipherCache& cc = cipher_cache_[gid];
  auto overlay_ref = m.overlays.find(pid);
  if (overlay_ref != m.overlays.end()) {
    const std::string path = cipher_overlay_path(gid, overlay_ref->second);
    if (auto it = cc.overlays.find(path); it != cc.overlays.end()) {
      return &it->second;
    }
    std::optional<util::Bytes> raw;
    try {
      raw = with_retries([&] { return cloud_.get(path); });
    } catch (const cloud::TransientError&) {
      return nullptr;
    }
    if (!raw) return nullptr;  // torn: overlay pushed before the manifest
    try {
      auto env = SignedEnvelope::from_bytes(*raw);
      if (!verify_any(env)) {
        ++stats_.signature_failures;
        return nullptr;
      }
      CipherOverlay overlay = CipherOverlay::from_bytes(env.payload);
      if (overlay.pid != pid) return nullptr;  // mis-bound object
      return &cc.overlays.emplace(path, std::move(overlay.cipher))
                  .first->second;
    } catch (const util::DeserializeError&) {
      ++stats_.signature_failures;
      return nullptr;
    }
  }
  const std::string path = cipher_bundle_path(gid, m.cipher_set);
  if (cc.bundle_path != path) {
    std::optional<util::Bytes> raw;
    try {
      raw = with_retries([&] { return cloud_.get(path); });
    } catch (const cloud::TransientError&) {
      return nullptr;
    }
    if (!raw) return nullptr;
    try {
      auto env = SignedEnvelope::from_bytes(*raw);
      if (!verify_any(env)) {
        ++stats_.signature_failures;
        return nullptr;
      }
      cc.bundle = CipherBundle::from_bytes(env.payload);
    } catch (const util::DeserializeError&) {
      ++stats_.signature_failures;
      return nullptr;
    }
    cc.bundle_path = path;
    // A fresh bundle means a rotation: every previous-epoch overlay is
    // superseded, so their cache entries can only go stale from here.
    cc.overlays.clear();
  }
  return cc.bundle.find(pid);
}

ClientApi::Fetch ClientApi::fetch_once(const GroupId& gid, util::Bytes& key,
                                       bool& fresh_rejected) {
  auto raw_index =
      with_retries([&] { return cloud_.get_versioned(index_path(gid)); });
  if (!raw_index) return Fetch::not_member;  // no such group (for us)
  // Version monotonicity rejects benign replica lag. With freshness enabled
  // the ENCLAVE-SIGNED counter subsumes it (cloud-assigned versions are
  // unauthenticated — a Byzantine store forges them freely), so the token
  // check below decides instead and the verdict says *rollback*, not just
  // *degraded*.
  auto floor = index_floor_.find(gid);
  if (!freshness_key_ && floor != index_floor_.end() &&
      raw_index->version < floor->second) {
    ++stats_.stale_reads_rejected;
    return Fetch::degraded;
  }
  GroupManifest manifest;
  try {
    auto env = SignedEnvelope::from_bytes(raw_index->value);
    if (!verify_any(env)) {
      ++stats_.signature_failures;
      return Fetch::degraded;
    }
    manifest = GroupManifest::from_bytes(env.payload);
  } catch (const util::DeserializeError&) {
    ++stats_.signature_failures;
    return Fetch::degraded;
  }
  if (freshness_key_) {
    auto verdict = check_freshness(gid, manifest, fresh_rejected);
    if (verdict != Fetch::ok) return verdict;
  }
  // Only an authenticated (and fresh, when enabled) manifest raises the
  // floor.
  index_floor_[gid] = raw_index->version;

  CachedIndex* view = refresh_view(gid, manifest);
  if (!view) return Fetch::degraded;

  auto slot = view->find_user(usk_.id);
  if (!slot) {
    // A fresh consistent view proves non-membership — still worth anchoring
    // and announcing before reporting it.
    note_fresh_view(gid, manifest.freshness);
    return Fetch::not_member;  // not a member (possibly revoked)
  }

  const auto* cipher = get_cipher(gid, manifest, *slot);
  if (!cipher) return Fetch::degraded;
  const auto* members = view->members_of(*slot);
  if (!members) return Fetch::degraded;  // cannot happen on a consistent view

  ++stats_.decryptions;
  auto bk = core::decrypt(pk_, usk_, *members, cipher->ct);
  if (!bk) {
    // The index lists us but the ciphertext excludes us: a cross-file torn
    // snapshot. Drop the caches so the retry rebuilds from scratch — a
    // consistent view will tell us which side is true.
    invalidate_caches(gid);
    return Fetch::degraded;
  }
  crypto::Aes256Gcm gcm(bk->hash());
  auto gk = gcm.open(cipher->nonce, cipher->wrapped_gk);
  if (!gk) {
    invalidate_caches(gid);
    return Fetch::degraded;  // same torn-snapshot reasoning
  }
  note_fresh_view(gid, manifest.freshness);
  key = std::move(*gk);
  return Fetch::ok;
}

ClientApi::FetchResult ClientApi::fetch(const GroupId& gid) {
  ++stats_.fetches;
  if (forked_.count(gid) != 0) {
    // Divergence was proven earlier; the server's history cannot un-fork.
    return {FetchStatus::forked, last_key(gid)};
  }
  // Record the directory version *before* reading so that a concurrent
  // update triggers the next wait_for_update rather than being missed.
  seen_versions_[gid] = cloud_.dir_version(group_dir(gid));

  bool fresh_rejected = false;
  for (int attempt = 0;; ++attempt) {
    util::Bytes key;
    switch (fetch_once(gid, key, fresh_rejected)) {
      case Fetch::ok:
        last_verified_key_[gid] = key;
        return {FetchStatus::ok, std::move(key)};
      case Fetch::not_member:
        return {FetchStatus::not_member, std::nullopt};
      case Fetch::forked:
        ++stats_.forks_detected;
        forked_.insert(gid);
        return {FetchStatus::forked, last_key(gid)};
      case Fetch::degraded:
        if (attempt + 1 >= retry_.max_attempts) {
          // Freshness rejections mean every view offered was OLD — that is a
          // rollback verdict, not mere unavailability, and the last verified
          // key stays usable read-only.
          if (fresh_rejected) return {FetchStatus::stale, last_key(gid)};
          return {FetchStatus::unavailable, std::nullopt};
        }
        ++stats_.degraded_refetches;
        std::this_thread::sleep_for(retry_.delay(attempt));
        break;
    }
  }
}

std::optional<util::Bytes> ClientApi::fetch_group_key(const GroupId& gid) {
  auto result = fetch(gid);
  if (result.status == FetchStatus::ok) return std::move(result.key);
  return std::nullopt;
}

std::optional<util::Bytes> ClientApi::wait_for_update(
    const GroupId& gid, std::chrono::milliseconds timeout) {
  std::uint64_t cursor = seen_versions_[gid];
  // The manifest version this client last authenticated. The commit protocol
  // pushes shadow shards / deltas / sealed gk / op-log entries BEFORE the
  // manifest CAS, and every one of those bumps the directory version — so a
  // directory wake alone does not mean the membership view changed yet. Only
  // the committed manifest moving past what we last saw ends the wait.
  auto floor = index_floor_.find(gid);
  const std::uint64_t index_since =
      floor == index_floor_.end() ? 0 : floor->second;
  const bool gossiping = freshness_key_.has_value() && !gossip_id_.empty();
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining <= std::chrono::milliseconds::zero()) return std::nullopt;
    if (gossiping) {
      // A rolled-back replica sits silent forever — its directory version
      // never moves — so the poll alone cannot end the wait. Peers' gossip
      // can: an observation past (or diverging from) our high-water mark
      // means committed state we are not being shown. Re-fetch; the
      // freshness checks turn it into ok / stale / forked.
      auto hwm = freshness_hwm_.find(gid);
      const std::uint64_t have_counter =
          hwm == freshness_hwm_.end() ? 0 : hwm->second.counter;
      ++stats_.gossip_rounds;
      for (const auto& obs : read_gossip(gid)) {
        if (obs.counter > have_counter ||
            (hwm != freshness_hwm_.end() && obs.counter == have_counter &&
             obs.log_head != hwm->second.log_head)) {
          return fetch_group_key(gid);
        }
      }
      // Bound the poll so gossip is re-checked even if the (possibly lying)
      // store never wakes us.
      remaining = std::min(remaining, std::chrono::milliseconds(25));
    }
    std::optional<std::uint64_t> version;
    try {
      version = cloud_.long_poll(group_dir(gid), cursor, remaining);
    } catch (const cloud::TransientError&) {
      ++stats_.transient_retries;
      continue;  // re-arm with whatever budget is left
    }
    if (!version) {
      // nullopt may be a spurious timeout: if the directory did move, the
      // wake-up was dropped, not absent.
      auto dir_now = cloud_.dir_version(group_dir(gid));
      if (dir_now <= cursor) continue;  // genuine timeout; deadline loop exits
      version = dir_now;
    }
    cursor = *version;  // don't re-wake on the writes we just observed
    if (index_since == 0 ||
        cloud_.file_version(index_path(gid)) != index_since) {
      return fetch_group_key(gid);
    }
    // Pre-commit shadow traffic, or the GC tail of an update we already
    // fetched: keep watching with the rest of the budget.
  }
}

}  // namespace ibbe::system
