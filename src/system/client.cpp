#include "system/client.h"

#include <thread>

#include "crypto/gcm.h"

namespace ibbe::system {

ClientApi::ClientApi(cloud::CloudStore& cloud, core::PublicKey pk,
                     core::UserSecretKey usk,
                     ec::P256Point admin_verification_key)
    : ClientApi(cloud, std::move(pk), std::move(usk),
                std::vector<ec::P256Point>{admin_verification_key}) {}

ClientApi::ClientApi(cloud::CloudStore& cloud, core::PublicKey pk,
                     core::UserSecretKey usk,
                     std::vector<ec::P256Point> admin_keys)
    : cloud_(cloud),
      pk_(std::move(pk)),
      usk_(std::move(usk)),
      admin_keys_(std::move(admin_keys)) {}

bool ClientApi::verify_credentials() const {
  return core::verify_user_key(pk_, usk_);
}

bool ClientApi::verify_any(const SignedEnvelope& env) const {
  for (const auto& key : admin_keys_) {
    if (env.verify(key)) return true;
  }
  return false;
}

ClientApi::Fetch ClientApi::fetch_once(const GroupId& gid, util::Bytes& key) {
  auto raw_index =
      with_retries([&] { return cloud_.get_versioned(index_path(gid)); });
  if (!raw_index) return Fetch::not_member;  // no such group (for us)
  auto floor = index_floor_.find(gid);
  if (floor != index_floor_.end() && raw_index->version < floor->second) {
    ++stats_.stale_reads_rejected;
    return Fetch::degraded;
  }
  GroupIndex idx;
  try {
    auto env = SignedEnvelope::from_bytes(raw_index->value);
    if (!verify_any(env)) {
      ++stats_.signature_failures;
      return Fetch::degraded;
    }
    idx = GroupIndex::from_bytes(env.payload);
  } catch (const util::DeserializeError&) {
    ++stats_.signature_failures;
    return Fetch::degraded;
  }
  // Only an authenticated index raises the floor.
  index_floor_[gid] = raw_index->version;

  auto slot = idx.find_user(usk_.id);
  if (!slot) return Fetch::not_member;  // not a member (possibly revoked)

  auto raw_part = with_retries(
      [&] { return cloud_.get(partition_path(gid, idx.partition_ids[*slot])); });
  if (!raw_part) {
    // The commit protocol pushes partitions before the index references
    // them, so this is a torn view (stale replica, or a snapshot overlapping
    // the garbage collector) — not proof of anything.
    return Fetch::degraded;
  }
  PartitionRecord rec;
  try {
    auto env = SignedEnvelope::from_bytes(*raw_part);
    if (!verify_any(env)) {
      ++stats_.signature_failures;
      return Fetch::degraded;
    }
    rec = PartitionRecord::from_bytes(env.payload);
  } catch (const util::DeserializeError&) {
    ++stats_.signature_failures;
    return Fetch::degraded;
  }

  ++stats_.decryptions;
  auto bk = core::decrypt(pk_, usk_, rec.members, rec.cipher.ct);
  if (!bk) {
    // The index lists us but the ciphertext excludes us: a cross-file torn
    // snapshot. A consistent one will tell us which side is true.
    return Fetch::degraded;
  }
  crypto::Aes256Gcm gcm(bk->hash());
  auto gk = gcm.open(rec.cipher.nonce, rec.cipher.wrapped_gk);
  if (!gk) return Fetch::degraded;  // same torn-snapshot reasoning
  key = std::move(*gk);
  return Fetch::ok;
}

std::optional<util::Bytes> ClientApi::fetch_group_key(const GroupId& gid) {
  ++stats_.fetches;
  // Record the directory version *before* reading so that a concurrent
  // update triggers the next wait_for_update rather than being missed.
  seen_versions_[gid] = cloud_.dir_version(group_dir(gid));

  for (int attempt = 0;; ++attempt) {
    util::Bytes key;
    switch (fetch_once(gid, key)) {
      case Fetch::ok:
        return key;
      case Fetch::not_member:
        return std::nullopt;
      case Fetch::degraded:
        if (attempt + 1 >= retry_.max_attempts) return std::nullopt;
        ++stats_.degraded_refetches;
        std::this_thread::sleep_for(retry_.delay(attempt));
        break;
    }
  }
}

std::optional<util::Bytes> ClientApi::wait_for_update(
    const GroupId& gid, std::chrono::milliseconds timeout) {
  std::uint64_t cursor = seen_versions_[gid];
  // The index version this client last authenticated. The commit protocol
  // pushes shadow partitions / sealed gk / op-log entries BEFORE the index
  // CAS, and every one of those bumps the directory version — so a directory
  // wake alone does not mean the membership view changed yet. Only the
  // committed index moving past what we last saw ends the wait.
  auto floor = index_floor_.find(gid);
  const std::uint64_t index_since =
      floor == index_floor_.end() ? 0 : floor->second;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining <= std::chrono::milliseconds::zero()) return std::nullopt;
    std::optional<std::uint64_t> version;
    try {
      version = cloud_.long_poll(group_dir(gid), cursor, remaining);
    } catch (const cloud::TransientError&) {
      ++stats_.transient_retries;
      continue;  // re-arm with whatever budget is left
    }
    if (!version) {
      // nullopt may be a spurious timeout: if the directory did move, the
      // wake-up was dropped, not absent.
      auto dir_now = cloud_.dir_version(group_dir(gid));
      if (dir_now <= cursor) continue;  // genuine timeout; deadline loop exits
      version = dir_now;
    }
    cursor = *version;  // don't re-wake on the writes we just observed
    if (index_since == 0 ||
        cloud_.file_version(index_path(gid)) != index_since) {
      return fetch_group_key(gid);
    }
    // Pre-commit shadow traffic, or the GC tail of an update we already
    // fetched: keep watching with the rest of the budget.
  }
}

}  // namespace ibbe::system
