#include "system/admin.h"

#include <algorithm>
#include <stdexcept>

namespace ibbe::system {

using core::Identity;

namespace {

std::string sealed_gk_path(const GroupId& gid) {
  return group_dir(gid) + "/gk.sealed";
}

constexpr int max_cas_retries = 8;

}  // namespace

AdminApi::AdminApi(enclave::IbbeEnclave& enclave, cloud::CloudStore& cloud,
                   pki::EcdsaKeyPair signing_key, AdminConfig config,
                   std::uint64_t seed)
    : enclave_(enclave),
      cloud_(cloud),
      signing_key_(std::move(signing_key)),
      config_(std::move(config)),
      rng_(seed) {
  if (config_.partition_size == 0) {
    throw std::invalid_argument("AdminApi: partition_size must be positive");
  }
  if (config_.partition_size > enclave_.public_key().max_receivers()) {
    throw std::invalid_argument(
        "AdminApi: partition_size exceeds the enclave's PK bound");
  }
}

AdminApi::GroupState& AdminApi::state_of(const GroupId& gid) {
  auto it = cache_.find(gid);
  if (it == cache_.end()) throw std::out_of_range("AdminApi: unknown group " + gid);
  return it->second;
}

const AdminApi::GroupState& AdminApi::state_of(const GroupId& gid) const {
  auto it = cache_.find(gid);
  if (it == cache_.end()) throw std::out_of_range("AdminApi: unknown group " + gid);
  return it->second;
}

PartitionId AdminApi::fresh_partition_id(GroupState& state) const {
  // High 32 bits distinguish administrators so concurrent creations never
  // collide; with the default nonce of 0 this degenerates to 0, 1, 2, ...
  return (static_cast<PartitionId>(config_.admin_nonce) << 32) |
         state.partition_counter++;
}

void AdminApi::push_partition(const GroupId& gid, const PartitionRecord& rec) {
  auto env = SignedEnvelope::sign(signing_key_, rec.to_bytes());
  cloud_.put(partition_path(gid, rec.id), env.to_bytes());
}

bool AdminApi::push_index(const GroupId& gid, GroupState& state) {
  GroupIndex idx;
  idx.partition_ids.reserve(state.partitions.size());
  idx.members.reserve(state.partitions.size());
  for (const auto& rec : state.partitions) {
    idx.partition_ids.push_back(rec.id);
    idx.members.push_back(rec.members);
  }
  auto env = SignedEnvelope::sign(signing_key_, idx.to_bytes());
  if (!config_.multi_admin) {
    state.index_version = cloud_.put(index_path(gid), env.to_bytes());
    return true;
  }
  auto version =
      cloud_.put_cas(index_path(gid), env.to_bytes(), state.index_version);
  if (!version) {
    ++stats_.cas_conflicts;
    return false;
  }
  state.index_version = *version;
  return true;
}

void AdminApi::push_sealed_gk(const GroupId& gid, const GroupState& state) {
  if (!config_.multi_admin) return;  // single admin keeps it in its cache
  cloud_.put(sealed_gk_path(gid), state.sealed_gk.to_bytes());
}

void AdminApi::reassign_if_multi(GroupState& state, PartitionRecord& rec) {
  if (config_.multi_admin) rec.id = fresh_partition_id(state);
}

void AdminApi::gc_partitions(const GroupId& gid, const GroupState& state) {
  if (!config_.multi_admin) return;
  std::vector<std::string> live;
  live.reserve(state.partitions.size());
  for (const auto& rec : state.partitions) {
    live.push_back(partition_path(gid, rec.id));
  }
  for (const auto& path : cloud_.list(group_dir(gid) + "/p")) {
    if (std::find(live.begin(), live.end(), path) == live.end()) {
      cloud_.erase(path);
    }
  }
}

bool AdminApi::verify_envelope(const SignedEnvelope& env) const {
  if (env.verify(signing_key_.public_key())) return true;
  for (const auto& key_bytes : config_.peer_verification_keys) {
    try {
      if (env.verify(ec::p256_from_bytes(key_bytes))) return true;
    } catch (const util::DeserializeError&) {
      // malformed configured key: skip
    }
  }
  return false;
}

void AdminApi::sync_from_cloud(const GroupId& gid) {
  auto raw_index = cloud_.get_versioned(index_path(gid));
  if (!raw_index) {
    throw std::runtime_error("sync_from_cloud: no index for group " + gid);
  }
  auto index_env = SignedEnvelope::from_bytes(raw_index->value);
  if (!verify_envelope(index_env)) {
    throw std::runtime_error("sync_from_cloud: index signature not trusted");
  }
  GroupIndex idx = GroupIndex::from_bytes(index_env.payload);

  GroupState state;
  state.index_version = raw_index->version;
  for (PartitionId pid : idx.partition_ids) {
    auto raw = cloud_.get(partition_path(gid, pid));
    if (!raw) {
      throw std::runtime_error("sync_from_cloud: missing partition file");
    }
    auto env = SignedEnvelope::from_bytes(*raw);
    if (!verify_envelope(env)) {
      throw std::runtime_error("sync_from_cloud: partition signature not trusted");
    }
    state.partitions.push_back(PartitionRecord::from_bytes(env.payload));
  }

  auto sealed = cloud_.get(sealed_gk_path(gid));
  auto old = cache_.find(gid);
  if (sealed) {
    state.sealed_gk = sgx::SealedBlob::from_bytes(*sealed);
  } else if (old != cache_.end()) {
    state.sealed_gk = old->second.sealed_gk;
  } else {
    throw std::runtime_error("sync_from_cloud: no sealed group key available");
  }
  // Admin-local fields survive the re-sync.
  if (old != cache_.end()) {
    state.partition_counter = old->second.partition_counter;
    state.target_partition_size = old->second.target_partition_size;
  } else {
    state.target_partition_size = config_.partition_size;
  }
  cache_[gid] = std::move(state);
}

template <typename Op>
AdminApi::OpOutcome AdminApi::mutate_with_retry(const GroupId& gid, Op&& op) {
  for (int attempt = 0;; ++attempt) {
    GroupState& state = state_of(gid);
    OpOutcome outcome = op(state);
    if (outcome != OpOutcome::published) return outcome;
    if (push_index(gid, state)) return outcome;
    if (attempt >= max_cas_retries) {
      throw std::runtime_error(
          "AdminApi: persistent CAS conflicts on group " + gid);
    }
    sync_from_cloud(gid);
  }
}

void AdminApi::log_op(const GroupId& gid, LogOp op, const std::string& subject) {
  if (!config_.log_operations) return;
  MembershipLog& log = logs_[gid];
  if (config_.multi_admin) {
    // Pick up entries appended by peers (last-writer-wins on the blob; full
    // multi-writer certification is the paper's blockchain future work).
    if (auto raw = cloud_.get(oplog_path(gid))) {
      auto remote = MembershipLog::from_bytes(*raw);
      if (remote.size() > log.size()) log = std::move(remote);
    }
  }
  log.append(op, subject, config_.admin_name, signing_key_);
  cloud_.put(oplog_path(gid), log.to_bytes());
}

const MembershipLog& AdminApi::log_of(const GroupId& gid) const {
  static const MembershipLog empty;
  auto it = logs_.find(gid);
  return it == logs_.end() ? empty : it->second;
}

void AdminApi::create_group(const GroupId& gid,
                            std::span<const Identity> members) {
  create_group_sized(gid, members, config_.partition_size);
  log_op(gid, LogOp::create_group,
         "members=" + std::to_string(members.size()));
}

void AdminApi::create_group_sized(const GroupId& gid,
                                  std::span<const Identity> members,
                                  std::size_t partition_size) {
  if (members.empty()) {
    throw std::invalid_argument("create_group: need at least one member");
  }
  GroupState state;
  state.target_partition_size = partition_size;
  if (auto it = cache_.find(gid); it != cache_.end()) {
    // Recreation (e.g. re-partitioning) keeps counters and CAS lineage.
    state.partition_counter = it->second.partition_counter;
    state.index_version = it->second.index_version;
  }

  // Algorithm 1, line 1: fixed-size partitions.
  std::vector<std::vector<Identity>> partitions;
  for (std::size_t i = 0; i < members.size(); i += partition_size) {
    auto last = std::min(members.size(), i + partition_size);
    partitions.emplace_back(members.begin() + static_cast<std::ptrdiff_t>(i),
                            members.begin() + static_cast<std::ptrdiff_t>(last));
  }

  // Lines 2-6 run inside the enclave.
  auto creation = enclave_.ecall_create_group(partitions);

  // Line 7: persist ciphertexts, wrapped keys and the sealed gk.
  state.sealed_gk = creation.sealed_gk;
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    PartitionRecord rec;
    rec.id = fresh_partition_id(state);
    rec.members = std::move(partitions[p]);
    rec.cipher = std::move(creation.partitions[p]);
    push_partition(gid, rec);
    state.partitions.push_back(std::move(rec));
  }
  push_sealed_gk(gid, state);
  if (!push_index(gid, state)) {
    throw std::runtime_error("create_group: concurrent modification of " + gid);
  }

  stats_.groups_created++;
  stats_.partitions_created += state.partitions.size();
  cache_[gid] = std::move(state);
}

void AdminApi::add_user(const GroupId& gid, const Identity& id) {
  bool created_partition = false;
  auto outcome = mutate_with_retry(gid, [&](GroupState& state) {
    created_partition = false;
    for (const auto& rec : state.partitions) {
      if (std::find(rec.members.begin(), rec.members.end(), id) !=
          rec.members.end()) {
        return OpOutcome::noop;  // already a member
      }
    }

    // Algorithm 2, line 1: partitions with spare capacity.
    std::vector<std::size_t> open;
    for (std::size_t p = 0; p < state.partitions.size(); ++p) {
      if (state.partitions[p].members.size() < state.target_partition_size) {
        open.push_back(p);
      }
    }

    if (open.empty()) {
      // Lines 3-7: new partition wrapping the existing gk.
      PartitionRecord rec;
      rec.id = fresh_partition_id(state);
      rec.members = {id};
      rec.cipher = enclave_.ecall_create_partition(rec.members, state.sealed_gk);
      push_partition(gid, rec);
      state.partitions.push_back(std::move(rec));
      created_partition = true;
    } else {
      // Lines 9-12: random open partition; O(1) ciphertext extension; the
      // wrapped key y_p is untouched.
      auto& rec = state.partitions[open[rng_.uniform(open.size())]];
      rec.cipher.ct = enclave_.ecall_add_user_to_partition(rec.cipher.ct, id);
      rec.members.push_back(id);
      reassign_if_multi(state, rec);
      push_partition(gid, rec);
    }
    return OpOutcome::published;
  });

  if (outcome == OpOutcome::noop) return;
  if (outcome == OpOutcome::published) gc_partitions(gid, state_of(gid));
  stats_.users_added++;
  if (created_partition) stats_.partitions_created++;
  advisor_.record_add();
  log_op(gid, LogOp::add_user, id);
}

void AdminApi::remove_user(const GroupId& gid, const Identity& id) {
  auto outcome = mutate_with_retry(gid, [&](GroupState& state) {
    // Locate the hosting partition (Algorithm 3, line 1).
    std::size_t host = state.partitions.size();
    for (std::size_t p = 0; p < state.partitions.size(); ++p) {
      const auto& ms = state.partitions[p].members;
      if (std::find(ms.begin(), ms.end(), id) != ms.end()) {
        host = p;
        break;
      }
    }
    if (host == state.partitions.size()) return OpOutcome::noop;

    // Lines 3-9 run inside the enclave: O(1) removal on the host, constant
    // time re-key everywhere else, fresh gk wrapped under every partition.
    std::vector<core::BroadcastCiphertext> others;
    others.reserve(state.partitions.size() - 1);
    for (std::size_t p = 0; p < state.partitions.size(); ++p) {
      if (p != host) others.push_back(state.partitions[p].cipher.ct);
    }
    auto result =
        enclave_.ecall_remove_user(state.partitions[host].cipher.ct, others, id);
    state.sealed_gk = result.sealed_gk;

    // Apply results: index 0 is the host, the rest follow input order.
    auto& host_rec = state.partitions[host];
    host_rec.members.erase(
        std::find(host_rec.members.begin(), host_rec.members.end(), id));
    host_rec.cipher = std::move(result.partitions[0]);
    std::size_t out = 1;
    for (std::size_t p = 0; p < state.partitions.size(); ++p) {
      if (p != host) {
        state.partitions[p].cipher = std::move(result.partitions[out++]);
      }
    }

    // Lines 10-11: push every partition (all wrapped keys changed).
    if (host_rec.members.empty()) {
      cloud_.erase(partition_path(gid, host_rec.id));
      state.partitions.erase(state.partitions.begin() +
                             static_cast<std::ptrdiff_t>(host));
    }

    if (!state.partitions.empty() && config_.repartitioning &&
        should_repartition(state)) {
      rebuild_group(gid, state);
      return OpOutcome::rebuilt;
    }
    // Every partition's ciphertext changed: copy-on-write republish.
    for (auto& rec : state.partitions) {
      reassign_if_multi(state, rec);
      push_partition(gid, rec);
    }
    push_sealed_gk(gid, state);
    return OpOutcome::published;
  });

  if (outcome == OpOutcome::noop) return;
  if (outcome == OpOutcome::published) gc_partitions(gid, state_of(gid));
  stats_.users_removed++;
  advisor_.record_remove();
  log_op(gid, LogOp::remove_user, id);
}

void AdminApi::add_users(const GroupId& gid, std::span<const Identity> ids) {
  for (const auto& id : ids) add_user(gid, id);
}

void AdminApi::remove_users(const GroupId& gid, std::span<const Identity> ids) {
  std::size_t removed_count = 0;
  auto outcome = mutate_with_retry(gid, [&](GroupState& state) {
    removed_count = 0;
    // Group the batch by hosting partition; silently skip non-members.
    std::map<std::size_t, std::vector<Identity>> by_partition;
    for (const auto& id : ids) {
      for (std::size_t p = 0; p < state.partitions.size(); ++p) {
        const auto& ms = state.partitions[p].members;
        if (std::find(ms.begin(), ms.end(), id) != ms.end()) {
          by_partition[p].push_back(id);
          break;
        }
      }
    }
    if (by_partition.empty()) return OpOutcome::noop;

    std::vector<enclave::IbbeEnclave::BatchRemovalSpec> hosts;
    std::vector<std::size_t> host_indices;
    std::vector<core::BroadcastCiphertext> others;
    std::vector<std::size_t> other_indices;
    for (std::size_t p = 0; p < state.partitions.size(); ++p) {
      auto it = by_partition.find(p);
      if (it != by_partition.end()) {
        hosts.push_back({state.partitions[p].cipher.ct, it->second});
        host_indices.push_back(p);
      } else {
        others.push_back(state.partitions[p].cipher.ct);
        other_indices.push_back(p);
      }
    }

    auto result = enclave_.ecall_remove_users(hosts, others);
    state.sealed_gk = result.sealed_gk;

    // Enclave output order: hosts first, then the others.
    for (std::size_t h = 0; h < host_indices.size(); ++h) {
      auto& rec = state.partitions[host_indices[h]];
      rec.cipher = std::move(result.partitions[h]);
      for (const auto& id : by_partition[host_indices[h]]) {
        rec.members.erase(std::find(rec.members.begin(), rec.members.end(), id));
      }
      removed_count += by_partition[host_indices[h]].size();
    }
    for (std::size_t o = 0; o < other_indices.size(); ++o) {
      state.partitions[other_indices[o]].cipher =
          std::move(result.partitions[hosts.size() + o]);
    }

    // Drop emptied partitions, largest index first.
    for (std::size_t p = state.partitions.size(); p-- > 0;) {
      if (state.partitions[p].members.empty()) {
        cloud_.erase(partition_path(gid, state.partitions[p].id));
        state.partitions.erase(state.partitions.begin() +
                               static_cast<std::ptrdiff_t>(p));
      }
    }

    if (!state.partitions.empty() && config_.repartitioning &&
        should_repartition(state)) {
      rebuild_group(gid, state);
      return OpOutcome::rebuilt;
    }
    for (auto& rec : state.partitions) {
      reassign_if_multi(state, rec);
      push_partition(gid, rec);
    }
    push_sealed_gk(gid, state);
    return OpOutcome::published;
  });

  if (outcome == OpOutcome::noop) return;
  if (outcome == OpOutcome::published) gc_partitions(gid, state_of(gid));
  stats_.users_removed += removed_count;
  for (std::size_t i = 0; i < removed_count; ++i) advisor_.record_remove();
  log_op(gid, LogOp::remove_user, "batch=" + std::to_string(removed_count));
}

bool AdminApi::should_repartition(const GroupState& state) const {
  // §V-A heuristic: "if less than half of the partitions are only two thirds
  // full, then re-partitioning is triggered."
  if (state.partitions.size() < 2) return false;
  std::size_t threshold = (state.target_partition_size * 2 + 2) / 3;  // ceil(2m/3)
  std::size_t sparse = 0;
  for (const auto& rec : state.partitions) {
    if (rec.members.size() < threshold) ++sparse;
  }
  return sparse * 2 > state.partitions.size();
}

void AdminApi::rebuild_group(const GroupId& gid, GroupState& state) {
  std::vector<Identity> all;
  for (const auto& rec : state.partitions) {
    all.insert(all.end(), rec.members.begin(), rec.members.end());
  }
  // Drop the old partition files, then re-run Algorithm 1.
  for (const auto& rec : state.partitions) {
    cloud_.erase(partition_path(gid, rec.id));
  }
  stats_.repartitions++;

  std::size_t new_size = state.target_partition_size;
  if (config_.adaptive_partitioning) {
    new_size = advisor_.recommend(all.size(), config_.min_partition_size,
                                  enclave_.public_key().max_receivers());
    advisor_.reset_window();
  }
  log_op(gid, LogOp::repartition, "partition_size=" + std::to_string(new_size));

  // create_group_sized rewrites cache_[gid]; adjust counters to not
  // double-count the group itself.
  stats_.groups_created--;
  create_group_sized(gid, all, new_size);
}

bool AdminApi::is_member(const GroupId& gid, const Identity& id) const {
  auto it = cache_.find(gid);
  if (it == cache_.end()) return false;
  for (const auto& rec : it->second.partitions) {
    if (std::find(rec.members.begin(), rec.members.end(), id) != rec.members.end()) {
      return true;
    }
  }
  return false;
}

std::size_t AdminApi::group_size(const GroupId& gid) const {
  std::size_t total = 0;
  for (const auto& rec : state_of(gid).partitions) total += rec.members.size();
  return total;
}

std::size_t AdminApi::partition_count(const GroupId& gid) const {
  return state_of(gid).partitions.size();
}

std::size_t AdminApi::partition_size_target(const GroupId& gid) const {
  return state_of(gid).target_partition_size;
}

std::size_t AdminApi::metadata_size(const GroupId& gid) const {
  const GroupState& state = state_of(gid);
  std::size_t total = 0;
  GroupIndex idx;
  for (const auto& rec : state.partitions) {
    total += rec.to_bytes().size() + pki::EcdsaSignature::serialized_size;
    idx.partition_ids.push_back(rec.id);
    idx.members.push_back(rec.members);
  }
  total += idx.to_bytes().size() + pki::EcdsaSignature::serialized_size;
  return total;
}

}  // namespace ibbe::system
