#include "system/admin.h"

#include <algorithm>
#include <charconv>
#include <stdexcept>

namespace ibbe::system {

using core::Identity;

namespace {

constexpr int max_cas_retries = 8;
constexpr int max_log_publish_attempts = 64;

/// Parses the decimal id out of a group-relative filename of the form
/// "p<digits>" or "gk<digits>.sealed". nullopt for anything else.
std::optional<std::uint64_t> parse_numbered(const std::string& name,
                                            const std::string& prefix,
                                            const std::string& suffix) {
  if (name.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return std::nullopt;
  }
  const char* first = name.data() + prefix.size();
  const char* last = name.data() + name.size() - suffix.size();
  std::uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

}  // namespace

AdminApi::AdminApi(enclave::IbbeEnclave& enclave, cloud::CloudStore& cloud,
                   pki::EcdsaKeyPair signing_key, AdminConfig config,
                   std::uint64_t seed)
    : enclave_(enclave),
      cloud_(cloud),
      signing_key_(std::move(signing_key)),
      config_(std::move(config)),
      rng_(seed) {
  if (config_.partition_size == 0) {
    throw std::invalid_argument("AdminApi: partition_size must be positive");
  }
  if (config_.partition_size > enclave_.public_key().max_receivers()) {
    throw std::invalid_argument(
        "AdminApi: partition_size exceeds the enclave's PK bound");
  }
}

AdminApi::GroupState& AdminApi::state_of(const GroupId& gid) {
  auto it = cache_.find(gid);
  if (it == cache_.end()) throw std::out_of_range("AdminApi: unknown group " + gid);
  return it->second;
}

const AdminApi::GroupState& AdminApi::state_of(const GroupId& gid) const {
  auto it = cache_.find(gid);
  if (it == cache_.end()) throw std::out_of_range("AdminApi: unknown group " + gid);
  return it->second;
}

PartitionId AdminApi::fresh_partition_id(GroupState& state) const {
  // High 32 bits distinguish administrators so concurrent creations never
  // collide; with the default nonce of 0 this degenerates to 0, 1, 2, ...
  return (static_cast<PartitionId>(config_.admin_nonce) << 32) |
         state.partition_counter++;
}

std::uint64_t AdminApi::fresh_gk_epoch(GroupState& state) const {
  // Allocated like partition ids: the epoch doubles as the sealed gk's cloud
  // filename, so two admins rotating concurrently must never share one.
  return (static_cast<std::uint64_t>(config_.admin_nonce) << 32) |
         state.epoch_counter++;
}

void AdminApi::push_partition(const GroupId& gid, const PartitionRecord& rec) {
  auto env = SignedEnvelope::sign(signing_key_, rec.to_bytes());
  auto bytes = env.to_bytes();
  // Partition files are written once and never overwritten (copy-on-write
  // ids), so a blind retry of an ambiguous put is idempotent.
  with_retries([&] {
    cloud_.put(partition_path(gid, rec.id), bytes);
    return 0;
  });
}

void AdminApi::push_sealed_gk(const GroupId& gid, const GroupState& state) {
  auto bytes = state.sealed_gk.to_bytes();
  with_retries([&] {
    cloud_.put(sealed_gk_path(gid, state.gk_epoch), bytes);
    return 0;
  });
}

bool AdminApi::push_index(const GroupId& gid, GroupState& state,
                          const LogHead& log_head) {
  GroupIndex idx;
  idx.partition_ids.reserve(state.partitions.size());
  idx.members.reserve(state.partitions.size());
  for (const auto& rec : state.partitions) {
    idx.partition_ids.push_back(rec.id);
    idx.members.push_back(rec.members);
  }
  idx.gk_epoch = state.gk_epoch;
  idx.log_head = log_head;
  // Tentative freshness attestation: the enclave signs one counter above
  // everything it (or this admin's last sync) knows committed, but persists
  // nothing yet — an abandoned CAS attempt must not open a gap between the
  // platform counter and the highest committed token.
  idx.freshness = enclave_.ecall_attest_freshness(
      gid, state.freshness.counter, state.gk_epoch, log_head);
  auto env = SignedEnvelope::sign(signing_key_, idx.to_bytes());
  auto bytes = env.to_bytes();

  auto committed = [&](std::uint64_t version) {
    state.index_version = version;
    state.freshness = idx.freshness;
    // Only now does the counter become the platform's confirmed floor; any
    // index attested below it is henceforth provably rolled back.
    enclave_.ecall_confirm_freshness(gid, idx.freshness.counter);
    publish_freshness_gossip(gid, idx.freshness);
    return true;
  };

  // Always CAS-guarded, even with a single administrator: an ambiguous put
  // retried blindly could otherwise clobber a concurrent (or our own
  // half-applied) commit.
  std::optional<std::uint64_t> version;
  try {
    version = with_retries(
        [&] { return cloud_.put_cas(index_path(gid), bytes, state.index_version); });
  } catch (const cloud::TransientError&) {
    version = std::nullopt;  // exhausted retries: resolve by re-reading below
  }
  if (version) return committed(*version);
  // Version conflict — but an ambiguous put that DID apply makes our own
  // commit look like somebody else's. Re-read and compare payloads.
  try {
    auto current =
        with_retries([&] { return cloud_.get_versioned(index_path(gid)); });
    if (current && current->value == bytes) return committed(current->version);
  } catch (const cloud::TransientError&) {
    // Treat as a real conflict; the caller re-syncs and retries the op.
  }
  ++stats_.cas_conflicts;
  return false;
}

void AdminApi::check_index_freshness(const GroupId& gid, const GroupIndex& idx) {
  if (idx.freshness.counter == 0) {
    throw util::IntegrityError(
        "sync_from_cloud: index lacks a freshness attestation");
  }
  if (!idx.freshness.verify(enclave_.freshness_verification_key(), gid)) {
    throw util::IntegrityError(
        "sync_from_cloud: index freshness token signature invalid");
  }
  if (idx.freshness.gk_epoch != idx.gk_epoch ||
      idx.freshness.log_head != idx.log_head) {
    throw util::IntegrityError(
        "sync_from_cloud: freshness token does not bind this index");
  }
  // A counter BELOW the platform's confirmed floor is a rollback (or a
  // badly lagging replica — indistinguishable, and both heal by re-reading).
  // A counter ABOVE it is legitimate: a peer admin committed, or our own
  // process died between the CAS and the confirmation; syncing it below
  // raises the floor to match.
  if (idx.freshness.counter < enclave_.ecall_freshness_floor(gid)) {
    ++stats_.rollback_rejections;
    throw cloud::TransientError(
        "sync_from_cloud: rolled-back index (freshness below enclave floor)");
  }
}

void AdminApi::publish_freshness_gossip(const GroupId& gid,
                                        const enclave::FreshnessToken& token) {
  FreshnessObservation obs;
  obs.counter = token.counter;
  obs.log_head = token.log_head;
  auto bytes = obs.to_bytes();
  try {
    with_retries([&] {
      cloud_.put(gossip_path(gid, "admin-" + config_.admin_name), bytes);
      return 0;
    });
  } catch (const cloud::TransientError&) {
    // Best-effort: the hint channel converges through the clients' own
    // observations; a missed announcement costs detection latency only.
  }
}

AdminApi::LogHead AdminApi::publish_log_entry(const GroupId& gid, LogOp op,
                                              const std::string& subject) {
  if (!config_.log_operations) return LogHead{};
  // CAS-merge: rebase our entry onto whatever head the cloud holds, so
  // concurrent administrators' entries are merged instead of overwritten
  // (the seed's last-writer-wins put lost them).
  std::optional<LogHead> attempted;
  for (int i = 0; i < max_log_publish_attempts; ++i) {
    std::optional<cloud::CloudStore::Versioned> raw;
    try {
      raw = with_retries([&] { return cloud_.get_versioned(oplog_path(gid)); });
    } catch (const cloud::TransientError&) {
      continue;
    }
    MembershipLog remote;
    std::uint64_t version = 0;
    if (raw) {
      remote = MembershipLog::from_bytes(raw->value);
      version = raw->version;
    }
    if (attempted) {
      // An earlier put_cas erred ambiguously; if our entry is already on the
      // cloud the write landed and we must not append it twice.
      for (const auto& e : remote.entries()) {
        if (e.hash == *attempted) {
          logs_[gid] = std::move(remote);
          return *attempted;
        }
      }
    }
    remote.append(op, subject, config_.admin_name, signing_key_);
    attempted = remote.entries().back().hash;
    auto bytes = remote.to_bytes();
    std::optional<std::uint64_t> result;
    try {
      result = with_retries(
          [&] { return cloud_.put_cas(oplog_path(gid), bytes, version); });
    } catch (const cloud::TransientError&) {
      continue;  // ambiguous: the next fetch resolves whether it applied
    }
    if (result) {
      logs_[gid] = std::move(remote);
      return *attempted;
    }
    ++stats_.cas_conflicts;
  }
  throw std::runtime_error("AdminApi: persistent op-log contention on " + gid);
}

bool AdminApi::verify_envelope(const SignedEnvelope& env) const {
  if (env.verify(signing_key_.public_key())) return true;
  for (const auto& key_bytes : config_.peer_verification_keys) {
    try {
      if (env.verify(ec::p256_from_bytes(key_bytes))) return true;
    } catch (const util::DeserializeError&) {
      // malformed configured key: skip
    }
  }
  return false;
}

void AdminApi::gc_group(const GroupId& gid, const GroupState& state) {
  std::vector<std::string> live;
  live.reserve(state.partitions.size() + 1);
  for (const auto& rec : state.partitions) {
    live.push_back(partition_path(gid, rec.id));
  }
  live.push_back(sealed_gk_path(gid, state.gk_epoch));

  std::vector<std::string> files;
  try {
    files = with_retries([&] { return cloud_.list(group_dir(gid) + "/"); });
  } catch (const cloud::TransientError&) {
    return;  // best-effort; the next sweep (or recover) picks the orphans up
  }
  const std::string p_prefix = group_dir(gid) + "/p";
  const std::string gk_prefix = group_dir(gid) + "/gk";
  for (const auto& path : files) {
    bool sweepable = path.compare(0, p_prefix.size(), p_prefix) == 0 ||
                     path.compare(0, gk_prefix.size(), gk_prefix) == 0;
    if (!sweepable) continue;  // never the index or the op-log
    if (std::find(live.begin(), live.end(), path) != live.end()) continue;
    try {
      with_retries([&] {
        cloud_.erase(path);
        return 0;
      });
    } catch (const cloud::TransientError&) {
      // leave the orphan for the next sweep
    }
  }
}

void AdminApi::bump_counters_past(GroupState& state,
                                  const GroupIndex& idx) const {
  for (PartitionId pid : idx.partition_ids) {
    if (static_cast<std::uint32_t>(pid >> 32) == config_.admin_nonce) {
      auto low = static_cast<std::uint32_t>(pid);
      if (low >= state.partition_counter) state.partition_counter = low + 1;
    }
  }
  if (static_cast<std::uint32_t>(idx.gk_epoch >> 32) == config_.admin_nonce) {
    auto low = static_cast<std::uint32_t>(idx.gk_epoch);
    if (low >= state.epoch_counter) state.epoch_counter = low + 1;
  }
}

void AdminApi::sync_from_cloud(const GroupId& gid) {
  auto raw_index =
      with_retries([&] { return cloud_.get_versioned(index_path(gid)); });
  if (!raw_index) {
    throw std::runtime_error("sync_from_cloud: no index for group " + gid);
  }
  auto index_env = SignedEnvelope::from_bytes(raw_index->value);
  if (!verify_envelope(index_env)) {
    throw std::runtime_error("sync_from_cloud: index signature not trusted");
  }
  GroupIndex idx = GroupIndex::from_bytes(index_env.payload);
  // The enclave-anchored freshness token subsumes the old version-
  // monotonicity heuristic: unlike the cloud-assigned version it is SIGNED,
  // survives an admin restart, and tells a Byzantine rollback apart from
  // benign replica lag (both heal by re-reading; only one is counted).
  check_index_freshness(gid, idx);
  auto old = cache_.find(gid);

  GroupState state;
  state.index_version = raw_index->version;
  state.gk_epoch = idx.gk_epoch;
  state.freshness = idx.freshness;
  for (PartitionId pid : idx.partition_ids) {
    auto raw = with_retries([&] { return cloud_.get(partition_path(gid, pid)); });
    if (!raw) {
      // Committed indexes only reference partitions that were pushed before
      // the commit, so absence means we read a torn/stale view.
      throw cloud::TransientError("sync_from_cloud: partition not yet visible");
    }
    auto env = SignedEnvelope::from_bytes(*raw);
    if (!verify_envelope(env)) {
      throw std::runtime_error("sync_from_cloud: partition signature not trusted");
    }
    state.partitions.push_back(PartitionRecord::from_bytes(env.payload));
  }

  auto sealed = with_retries(
      [&] { return cloud_.get(sealed_gk_path(gid, idx.gk_epoch)); });
  if (sealed) {
    state.sealed_gk = sgx::SealedBlob::from_bytes(*sealed);
  } else if (old != cache_.end() && old->second.gk_epoch == idx.gk_epoch) {
    state.sealed_gk = old->second.sealed_gk;  // we sealed this epoch ourselves
  } else {
    throw cloud::TransientError("sync_from_cloud: sealed gk not yet visible");
  }

  // Admin-local fields survive the re-sync.
  if (old != cache_.end()) {
    state.partition_counter = old->second.partition_counter;
    state.epoch_counter = old->second.epoch_counter;
    state.target_partition_size = old->second.target_partition_size;
  } else {
    state.target_partition_size = config_.partition_size;
  }
  bump_counters_past(state, idx);
  // Late confirmation: if our previous incarnation died between the index
  // CAS and its confirmation (or a peer committed on another platform), the
  // platform floor now catches up with the committed counter.
  enclave_.ecall_confirm_freshness(gid, idx.freshness.counter);
  cache_[gid] = std::move(state);
}

bool AdminApi::recover(const GroupId& gid) {
  ++stats_.recoveries;
  auto raw_index =
      with_retries([&] { return cloud_.get_versioned(index_path(gid)); });
  if (!raw_index) {
    // No commit point ever landed: a creation died mid-flight. Roll it back
    // by deleting every torn file under the group's directory.
    std::vector<std::string> files;
    try {
      files = with_retries([&] { return cloud_.list(group_dir(gid) + "/"); });
    } catch (const cloud::TransientError&) {
      files.clear();
    }
    for (const auto& path : files) {
      try {
        with_retries([&] {
          cloud_.erase(path);
          return 0;
        });
      } catch (const cloud::TransientError&) {
        // leave it; a later recover retries
      }
    }
    cache_.erase(gid);
    logs_.erase(gid);
    return false;
  }

  // The index committed: adopt that state (rolling an uncommitted mutation
  // back), then finish the sweep a committed mutation may have left undone
  // (roll-forward of its GC).
  with_retries([&] {
    sync_from_cloud(gid);
    return 0;
  });
  GroupState& state = state_of(gid);

  // Advance our id/epoch counters past every leftover on the cloud, not just
  // what the index references: if the GC below fails half-way, a reused id
  // could otherwise collide with a stale orphan file.
  std::vector<std::string> files;
  try {
    files = with_retries([&] { return cloud_.list(group_dir(gid) + "/"); });
  } catch (const cloud::TransientError&) {
    files.clear();
  }
  const std::string dir = group_dir(gid) + "/";
  for (const auto& path : files) {
    const std::string name = path.substr(dir.size());
    std::optional<std::uint64_t> id = parse_numbered(name, "p", "");
    if (!id) id = parse_numbered(name, "gk", ".sealed");
    if (!id) continue;
    if (static_cast<std::uint32_t>(*id >> 32) != config_.admin_nonce) continue;
    auto low = static_cast<std::uint32_t>(*id);
    bool is_epoch = name.compare(0, 2, "gk") == 0;
    auto& counter = is_epoch ? state.epoch_counter : state.partition_counter;
    if (low >= counter) counter = low + 1;
  }

  gc_group(gid, state);

  // Re-announce the committed freshness: a crash between the CAS and the
  // gossip put would otherwise leave the hint channel a commit behind.
  publish_freshness_gossip(gid, state.freshness);

  if (config_.log_operations) {
    try {
      auto raw = with_retries([&] { return cloud_.get(oplog_path(gid)); });
      if (raw) logs_[gid] = MembershipLog::from_bytes(*raw);
    } catch (const cloud::TransientError&) {
      // cache refresh only; the next publish re-fetches anyway
    }
  }
  return true;
}

template <typename Op>
AdminApi::OpOutcome AdminApi::mutate_with_retry(const GroupId& gid, LogOp logop,
                                                const std::string& subject,
                                                Op&& op) {
  std::optional<LogHead> staged;
  for (int attempt = 0;; ++attempt) {
    GroupState& state = state_of(gid);
    OpOutcome outcome = op(state, staged);
    if (outcome == OpOutcome::rebuilt) return outcome;
    if (outcome == OpOutcome::noop) {
      // Nothing to publish, but an earlier conflicted attempt (or a crashed
      // predecessor) may have left shadow files behind: sweep them.
      gc_group(gid, state);
      return outcome;
    }
    if (!staged) staged = publish_log_entry(gid, logop, subject);
    if (push_index(gid, state, *staged)) {
      gc_group(gid, state);
      return outcome;
    }
    if (attempt >= max_cas_retries) {
      throw std::runtime_error("AdminApi: persistent CAS conflicts on group " +
                               gid);
    }
    with_retries([&] {
      sync_from_cloud(gid);
      return 0;
    });
  }
}

const MembershipLog& AdminApi::log_of(const GroupId& gid) const {
  static const MembershipLog empty;
  auto it = logs_.find(gid);
  return it == logs_.end() ? empty : it->second;
}

MembershipLog::AuditResult AdminApi::audit_group_log(const GroupId& gid) const {
  // stats_ is not updated here (const audit path): use the bare retry helper.
  auto fetch = [&](const std::string& path) {
    return util::retry_faults(config_.retry, [&] { return cloud_.get(path); });
  };
  auto raw = fetch(oplog_path(gid));
  if (!raw) return {false, "no op-log stored for group", 0};
  MembershipLog log;
  try {
    log = MembershipLog::from_bytes(*raw);
  } catch (const util::DeserializeError&) {
    return {false, "op-log blob corrupted", 0};
  }

  std::vector<ec::P256Point> keys;
  keys.push_back(signing_key_.public_key());
  for (const auto& key_bytes : config_.peer_verification_keys) {
    try {
      keys.push_back(ec::p256_from_bytes(key_bytes));
    } catch (const util::DeserializeError&) {
      // malformed configured key: skip
    }
  }

  // Anchor on the committed index's log head so a rolled-back suffix — a
  // perfectly valid shorter chain — is still caught; check the index's
  // freshness token against the enclave floor so a WHOLESALE rollback of a
  // consistent old index+log pair (which the anchor alone cannot see) is
  // caught too.
  LogHead anchor{};
  const LogHead* anchor_ptr = nullptr;
  if (auto raw_index = fetch(index_path(gid))) {
    try {
      auto env = SignedEnvelope::from_bytes(*raw_index);
      if (verify_envelope(env)) {
        GroupIndex idx = GroupIndex::from_bytes(env.payload);
        if (!idx.freshness.verify(enclave_.freshness_verification_key(), gid) ||
            idx.freshness.gk_epoch != idx.gk_epoch ||
            idx.freshness.log_head != idx.log_head) {
          return {false, "index freshness attestation invalid", 0};
        }
        if (idx.freshness.counter < enclave_.ecall_freshness_floor(gid)) {
          return {false,
                  "rolled-back index+log pair (freshness below enclave floor)",
                  0};
        }
        anchor = idx.log_head;
        anchor_ptr = &anchor;
      }
    } catch (const util::DeserializeError&) {
      // unanchored audit is still better than no audit
    }
  }
  return log.audit(keys, anchor_ptr);
}

void AdminApi::create_group(const GroupId& gid,
                            std::span<const Identity> members) {
  create_group_sized(gid, members, config_.partition_size, LogOp::create_group,
                     "members=" + std::to_string(members.size()));
}

void AdminApi::create_group_sized(const GroupId& gid,
                                  std::span<const Identity> members,
                                  std::size_t partition_size, LogOp logop,
                                  const std::string& subject) {
  if (members.empty()) {
    throw std::invalid_argument("create_group: need at least one member");
  }
  GroupState state;
  state.target_partition_size = partition_size;
  if (auto it = cache_.find(gid); it != cache_.end()) {
    // Recreation (e.g. re-partitioning) keeps counters and CAS lineage.
    state.partition_counter = it->second.partition_counter;
    state.epoch_counter = it->second.epoch_counter;
    state.index_version = it->second.index_version;
    state.freshness = it->second.freshness;  // floor for the next attestation
  }

  // Algorithm 1, line 1: fixed-size partitions.
  std::vector<std::vector<Identity>> partitions;
  for (std::size_t i = 0; i < members.size(); i += partition_size) {
    auto last = std::min(members.size(), i + partition_size);
    partitions.emplace_back(members.begin() + static_cast<std::ptrdiff_t>(i),
                            members.begin() + static_cast<std::ptrdiff_t>(last));
  }

  // Lines 2-6 run inside the enclave.
  auto creation = enclave_.ecall_create_group(partitions);

  // Line 7: persist ciphertexts, wrapped keys, the sealed gk and the log
  // entry — all under fresh names, all BEFORE the index CAS commits them.
  state.sealed_gk = creation.sealed_gk;
  state.gk_epoch = fresh_gk_epoch(state);
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    PartitionRecord rec;
    rec.id = fresh_partition_id(state);
    rec.members = std::move(partitions[p]);
    rec.cipher = std::move(creation.partitions[p]);
    push_partition(gid, rec);
    state.partitions.push_back(std::move(rec));
  }
  push_sealed_gk(gid, state);
  LogHead head = publish_log_entry(gid, logop, subject);
  if (!push_index(gid, state, head)) {
    throw std::runtime_error("create_group: concurrent modification of " + gid);
  }

  stats_.groups_created++;
  stats_.partitions_created += state.partitions.size();
  GroupState& committed = (cache_[gid] = std::move(state));
  // Post-commit: sweep the previous generation's files (re-partitioning) and
  // any shadow leftovers.
  gc_group(gid, committed);
}

void AdminApi::add_user(const GroupId& gid, const Identity& id) {
  bool created_partition = false;
  auto outcome = mutate_with_retry(
      gid, LogOp::add_user, id,
      [&](GroupState& state, std::optional<LogHead>&) {
        created_partition = false;
        for (const auto& rec : state.partitions) {
          if (std::find(rec.members.begin(), rec.members.end(), id) !=
              rec.members.end()) {
            return OpOutcome::noop;  // already a member
          }
        }

        // Algorithm 2, line 1: partitions with spare capacity.
        std::vector<std::size_t> open;
        for (std::size_t p = 0; p < state.partitions.size(); ++p) {
          if (state.partitions[p].members.size() < state.target_partition_size) {
            open.push_back(p);
          }
        }

        if (open.empty()) {
          // Lines 3-7: new partition wrapping the existing gk.
          PartitionRecord rec;
          rec.id = fresh_partition_id(state);
          rec.members = {id};
          rec.cipher =
              enclave_.ecall_create_partition(rec.members, state.sealed_gk);
          push_partition(gid, rec);
          state.partitions.push_back(std::move(rec));
          created_partition = true;
        } else {
          // Lines 9-12: random open partition; O(1) ciphertext extension; the
          // wrapped key y_p is untouched. The record still moves to a fresh
          // id: partition files are immutable, the old one dies in the GC.
          auto& rec = state.partitions[open[rng_.uniform(open.size())]];
          rec.cipher.ct = enclave_.ecall_add_user_to_partition(rec.cipher.ct, id);
          rec.members.push_back(id);
          rec.id = fresh_partition_id(state);
          push_partition(gid, rec);
        }
        return OpOutcome::published;
      });

  if (outcome == OpOutcome::noop) return;
  stats_.users_added++;
  if (created_partition) stats_.partitions_created++;
  advisor_.record_add();
}

void AdminApi::remove_user(const GroupId& gid, const Identity& id) {
  auto outcome = mutate_with_retry(
      gid, LogOp::remove_user, id,
      [&](GroupState& state, std::optional<LogHead>& staged) {
        // Locate the hosting partition (Algorithm 3, line 1).
        std::size_t host = state.partitions.size();
        for (std::size_t p = 0; p < state.partitions.size(); ++p) {
          const auto& ms = state.partitions[p].members;
          if (std::find(ms.begin(), ms.end(), id) != ms.end()) {
            host = p;
            break;
          }
        }
        if (host == state.partitions.size()) return OpOutcome::noop;

        // Lines 3-9 run inside the enclave: O(1) removal on the host,
        // constant time re-key everywhere else, fresh gk wrapped under every
        // partition.
        std::vector<core::BroadcastCiphertext> others;
        others.reserve(state.partitions.size() - 1);
        for (std::size_t p = 0; p < state.partitions.size(); ++p) {
          if (p != host) others.push_back(state.partitions[p].cipher.ct);
        }
        auto result = enclave_.ecall_remove_user(state.partitions[host].cipher.ct,
                                                 others, id);
        state.sealed_gk = result.sealed_gk;
        state.gk_epoch = fresh_gk_epoch(state);

        // Apply results: index 0 is the host, the rest follow input order.
        auto& host_rec = state.partitions[host];
        host_rec.members.erase(
            std::find(host_rec.members.begin(), host_rec.members.end(), id));
        host_rec.cipher = std::move(result.partitions[0]);
        std::size_t out = 1;
        for (std::size_t p = 0; p < state.partitions.size(); ++p) {
          if (p != host) {
            state.partitions[p].cipher = std::move(result.partitions[out++]);
          }
        }

        // An emptied partition just leaves the index; its file is swept by
        // the post-commit GC (erasing it here would tear the committed view).
        if (host_rec.members.empty()) {
          state.partitions.erase(state.partitions.begin() +
                                 static_cast<std::ptrdiff_t>(host));
        }

        if (!state.partitions.empty() && config_.repartitioning &&
            should_repartition(state)) {
          // The rebuild commits on its own; our log entry must precede its
          // repartition entry on the cloud.
          if (!staged) staged = publish_log_entry(gid, LogOp::remove_user, id);
          rebuild_group(gid, state);
          return OpOutcome::rebuilt;
        }
        // Every partition's ciphertext changed: copy-on-write republish.
        for (auto& rec : state.partitions) {
          rec.id = fresh_partition_id(state);
          push_partition(gid, rec);
        }
        push_sealed_gk(gid, state);
        return OpOutcome::published;
      });

  if (outcome == OpOutcome::noop) return;
  stats_.users_removed++;
  advisor_.record_remove();
}

void AdminApi::add_users(const GroupId& gid, std::span<const Identity> ids) {
  for (const auto& id : ids) add_user(gid, id);
}

void AdminApi::remove_users(const GroupId& gid, std::span<const Identity> ids) {
  std::size_t removed_count = 0;
  // The lambda rewrites this before mutate_with_retry publishes the entry.
  std::string subject = "batch=0";
  auto outcome = mutate_with_retry(
      gid, LogOp::remove_user, subject,
      [&](GroupState& state, std::optional<LogHead>& staged) {
        removed_count = 0;
        // Group the batch by hosting partition; silently skip non-members.
        std::map<std::size_t, std::vector<Identity>> by_partition;
        for (const auto& id : ids) {
          for (std::size_t p = 0; p < state.partitions.size(); ++p) {
            const auto& ms = state.partitions[p].members;
            if (std::find(ms.begin(), ms.end(), id) != ms.end()) {
              by_partition[p].push_back(id);
              break;
            }
          }
        }
        if (by_partition.empty()) return OpOutcome::noop;

        std::vector<enclave::IbbeEnclave::BatchRemovalSpec> hosts;
        std::vector<std::size_t> host_indices;
        std::vector<core::BroadcastCiphertext> others;
        std::vector<std::size_t> other_indices;
        for (std::size_t p = 0; p < state.partitions.size(); ++p) {
          auto it = by_partition.find(p);
          if (it != by_partition.end()) {
            hosts.push_back({state.partitions[p].cipher.ct, it->second});
            host_indices.push_back(p);
          } else {
            others.push_back(state.partitions[p].cipher.ct);
            other_indices.push_back(p);
          }
        }

        auto result = enclave_.ecall_remove_users(hosts, others);
        state.sealed_gk = result.sealed_gk;
        state.gk_epoch = fresh_gk_epoch(state);

        // Enclave output order: hosts first, then the others.
        for (std::size_t h = 0; h < host_indices.size(); ++h) {
          auto& rec = state.partitions[host_indices[h]];
          rec.cipher = std::move(result.partitions[h]);
          for (const auto& id : by_partition[host_indices[h]]) {
            rec.members.erase(
                std::find(rec.members.begin(), rec.members.end(), id));
          }
          removed_count += by_partition[host_indices[h]].size();
        }
        for (std::size_t o = 0; o < other_indices.size(); ++o) {
          state.partitions[other_indices[o]].cipher =
              std::move(result.partitions[hosts.size() + o]);
        }

        // Drop emptied partitions from the index, largest offset first; the
        // files themselves are swept post-commit.
        for (std::size_t p = state.partitions.size(); p-- > 0;) {
          if (state.partitions[p].members.empty()) {
            state.partitions.erase(state.partitions.begin() +
                                   static_cast<std::ptrdiff_t>(p));
          }
        }

        subject = "batch=" + std::to_string(removed_count);
        if (!state.partitions.empty() && config_.repartitioning &&
            should_repartition(state)) {
          if (!staged) {
            staged = publish_log_entry(gid, LogOp::remove_user, subject);
          }
          rebuild_group(gid, state);
          return OpOutcome::rebuilt;
        }
        for (auto& rec : state.partitions) {
          rec.id = fresh_partition_id(state);
          push_partition(gid, rec);
        }
        push_sealed_gk(gid, state);
        return OpOutcome::published;
      });

  if (outcome == OpOutcome::noop) return;
  stats_.users_removed += removed_count;
  for (std::size_t i = 0; i < removed_count; ++i) advisor_.record_remove();
}

bool AdminApi::should_repartition(const GroupState& state) const {
  // §V-A heuristic: "if less than half of the partitions are only two thirds
  // full, then re-partitioning is triggered."
  if (state.partitions.size() < 2) return false;
  std::size_t threshold = (state.target_partition_size * 2 + 2) / 3;  // ceil(2m/3)
  std::size_t sparse = 0;
  for (const auto& rec : state.partitions) {
    if (rec.members.size() < threshold) ++sparse;
  }
  return sparse * 2 > state.partitions.size();
}

void AdminApi::rebuild_group(const GroupId& gid, GroupState& state) {
  std::vector<Identity> all;
  for (const auto& rec : state.partitions) {
    all.insert(all.end(), rec.members.begin(), rec.members.end());
  }
  stats_.repartitions++;

  std::size_t new_size = state.target_partition_size;
  if (config_.adaptive_partitioning) {
    new_size = advisor_.recommend(all.size(), config_.min_partition_size,
                                  enclave_.public_key().max_receivers());
    advisor_.reset_window();
  }

  // create_group_sized rewrites cache_[gid] (committing via the index CAS
  // and sweeping this generation's files afterwards); adjust counters to not
  // double-count the group itself.
  stats_.groups_created--;
  create_group_sized(gid, all, new_size, LogOp::repartition,
                     "partition_size=" + std::to_string(new_size));
}

bool AdminApi::is_member(const GroupId& gid, const Identity& id) const {
  auto it = cache_.find(gid);
  if (it == cache_.end()) return false;
  for (const auto& rec : it->second.partitions) {
    if (std::find(rec.members.begin(), rec.members.end(), id) != rec.members.end()) {
      return true;
    }
  }
  return false;
}

std::size_t AdminApi::group_size(const GroupId& gid) const {
  std::size_t total = 0;
  for (const auto& rec : state_of(gid).partitions) total += rec.members.size();
  return total;
}

std::size_t AdminApi::partition_count(const GroupId& gid) const {
  return state_of(gid).partitions.size();
}

std::size_t AdminApi::partition_size_target(const GroupId& gid) const {
  return state_of(gid).target_partition_size;
}

std::size_t AdminApi::metadata_size(const GroupId& gid) const {
  const GroupState& state = state_of(gid);
  std::size_t total = 0;
  GroupIndex idx;
  for (const auto& rec : state.partitions) {
    total += rec.to_bytes().size() + pki::EcdsaSignature::serialized_size;
    idx.partition_ids.push_back(rec.id);
    idx.members.push_back(rec.members);
  }
  total += idx.to_bytes().size() + pki::EcdsaSignature::serialized_size;
  total += state.sealed_gk.to_bytes().size();  // gk<epoch>.sealed
  return total;
}

}  // namespace ibbe::system
